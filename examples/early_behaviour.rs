//! Lemma 4.1 live: the early behaviour of a load-balancing process on a
//! well-clustered graph.
//!
//! Starts one unit of load at a "good" node (small `α_v`, eq. 4), runs
//! the 1-dimensional matching process, and prints the projection error
//! `‖Q y^{(0)} − y^{(t)}‖` together with the distance to the cluster
//! indicator `‖y^{(t)} − χ_S‖` (Lemma 4.3). The error collapses within
//! `T ≈ log n / gap` rounds and only then slowly re-grows as the process
//! converges to the global uniform distribution (Remark 1).
//!
//! Run with: `cargo run --release --example early_behaviour`

use graph_cluster_lb::core::analysis::{
    chi_indicator, projection_error_trajectory, ClusterAnalysis,
};
use graph_cluster_lb::core::matching::{apply_matching_dense, sample_matching, ProposalRule};
use graph_cluster_lb::distsim::NodeRng;
use graph_cluster_lb::prelude::*;

fn main() {
    let (graph, truth) = ring_of_cliques(4, 32, 0).expect("generator");
    let n = graph.n();
    let analysis = ClusterAnalysis::compute(&graph, &truth, 7);
    let good = analysis.nodes_by_alpha()[0];
    let bad = *analysis.nodes_by_alpha().last().unwrap();
    println!(
        "n = {n}; good node {good} (α = {:.2e}), worst node {bad} (α = {:.2e})",
        analysis.alphas[good as usize], analysis.alphas[bad as usize]
    );

    let rounds = 240;
    let traj =
        projection_error_trajectory(&graph, &analysis, ProposalRule::Uniform, good, rounds, 123);

    // Also track ‖y(t) − χ_S‖ for the same run.
    let chi = chi_indicator(&truth, truth.label(good), n);
    let mut rngs: Vec<NodeRng> = (0..n as u32).map(|v| NodeRng::for_node(123, v)).collect();
    let mut y = vec![0.0; n];
    y[good as usize] = 1.0;
    let mut dist_chi = vec![dist(&y, &chi)];
    for _ in 0..rounds {
        let m = sample_matching(&graph, ProposalRule::Uniform, &mut rngs);
        apply_matching_dense(&m, &mut y);
        dist_chi.push(dist(&y, &chi));
    }

    println!("\n{:>6} {:>16} {:>16}", "t", "‖Qy0 − y(t)‖", "‖y(t) − χ_S‖");
    for t in (0..=rounds).step_by(20) {
        println!("{:>6} {:>16.6} {:>16.6}", t, traj[t], dist_chi[t]);
    }
    println!("\nThe projection error collapses fast (Lemma 4.1), the distance to the");
    println!("cluster indicator bottoms out around T (Lemma 4.3), then both drift up");
    println!("as the load continues towards the global uniform vector (Remark 1).");
}

fn dist(a: &[f64], b: &[f64]) -> f64 {
    a.iter()
        .zip(b)
        .map(|(x, y)| (x - y) * (x - y))
        .sum::<f64>()
        .sqrt()
}
