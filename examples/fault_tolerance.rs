//! Fault tolerance: mid-execution crashes and message loss, with
//! per-round traffic traces.
//!
//! The paper assumes a reliable synchronous network; this example probes
//! what its algorithm actually does when that assumption breaks —
//! crashing a batch of nodes halfway through the averaging phase and
//! sweeping message-drop rates, while a round trace records how traffic
//! evolves.
//!
//! Run with: `cargo run --release --example fault_tolerance`

use graph_cluster_lb::core::{cluster_distributed, LbConfig};
use graph_cluster_lb::distsim::FaultPlan;
use graph_cluster_lb::prelude::*;

fn main() {
    let (graph, truth) = regular_cluster_graph(3, 120, 12, 3, 91).expect("generator");
    let n = graph.n();
    let rounds = 150usize;
    let cfg = LbConfig::new(1.0 / 3.0, rounds).with_seed(5);
    println!("instance: n = {n}, k = 3, T = {rounds} averaging rounds\n");

    // Crash 10% of the nodes at the halfway network round.
    let victims: Vec<u32> = (0..n as u32).step_by(10).collect();
    let crash_round = (1 + 3 * rounds / 2) as u64;
    println!(
        "== crash {} nodes at network round {crash_round} ==",
        victims.len()
    );
    let faults = FaultPlan::none().crash_nodes_at(n, &victims, crash_round);
    let (out, stats) = cluster_distributed(&graph, &cfg, Some(faults)).expect("run");
    let live: Vec<usize> = (0..n).filter(|v| v % 10 != 0).collect();
    let t: Vec<u32> = live.iter().map(|&v| truth.labels()[v]).collect();
    let p: Vec<u32> = live.iter().map(|&v| out.partition.labels()[v]).collect();
    println!(
        "accuracy among survivors = {:.4} ({} messages dropped at the crash boundary)",
        accuracy(&t, &p),
        stats.dropped_messages
    );

    // Drop sweep with seeds varied, mean of 3 runs per point.
    println!("\n== message-drop sweep (mean of 3 seeds) ==");
    println!("{:>8} {:>10} {:>12}", "drop %", "accuracy", "words lost");
    for &dp in &[0.0, 0.02, 0.08, 0.15, 0.30] {
        let mut acc = 0.0;
        let mut lost = 0u64;
        for s in 0..3u64 {
            let cfgv = cfg.clone().with_seed(5 + s);
            let f = FaultPlan::with_drops(dp, 40 + s);
            let (o, st) = cluster_distributed(&graph, &cfgv, Some(f)).expect("run");
            acc += accuracy(truth.labels(), o.partition.labels());
            lost += st.sent_words - st.delivered_words;
        }
        println!("{:>8.2} {:>10.4} {:>12}", dp * 100.0, acc / 3.0, lost / 3);
    }
    println!("\nLoad conservation breaks under faults (a dropped Update leaves the pair");
    println!("half-averaged), yet labelling degrades gracefully: the query only needs the");
    println!("per-cluster load *ordering* to survive, not the exact values.");
}
