//! The abstract's closing remark, live: the same early-behaviour
//! separation that powers the clustering algorithm shows up in other
//! gossip processes on the matching substrate — rumour spreading and
//! averaging.
//!
//! Run with: `cargo run --release --example gossip_processes`

use graph_cluster_lb::core::gossip::{gossip_average, rumour_spread};
use graph_cluster_lb::core::matching::ProposalRule;
use graph_cluster_lb::prelude::*;

fn main() {
    let (graph, truth) = ring_of_cliques(4, 64, 0).expect("generator");
    let n = graph.n();
    println!("instance: ring of 4 cliques of 64 (n = {n})\n");

    // Rumour: watch the informed count cross cluster boundaries.
    let t = rumour_spread(&graph, ProposalRule::Uniform, 0, 100_000, 11);
    println!("== rumour from node 0 ==");
    for &target in &[64usize, 128, 192, 256] {
        match t.rounds_to(target) {
            Some(r) => println!("  ≥ {target:>3} informed after {r:>6} rounds"),
            None => println!("  ≥ {target:>3} informed: never"),
        }
    }
    println!("  → the source clique saturates ~immediately; each cut crossing stalls the front.\n");

    // Averaging: start with each clique at its own level; the within-
    // cluster disagreement dies at rate ≈ d̄/4·(1−λ_k) while the
    // between-cluster disagreement persists for ≈ the global mixing time.
    let initial: Vec<f64> = (0..n).map(|v| truth.label(v as u32) as f64).collect();
    let rounds = 3000;
    let avg = gossip_average(&graph, ProposalRule::Uniform, &initial, rounds, 7);
    println!("== averaging from per-clique levels (0, 1, 2, 3) ==");
    println!("{:>8} {:>16}", "round", "max |x − mean|");
    for &r in &[0usize, 50, 200, 800, 1600, 3000] {
        println!("{:>8} {:>16.6}", r, avg.deviation[r]);
    }
    println!("\nWithin-cluster values merge quickly, but the cluster *levels* survive for");
    println!("thousands of rounds — the persistence the clustering algorithm reads out at");
    println!("its round budget T.");
}
