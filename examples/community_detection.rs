//! Community detection shoot-out on a social-network-like graph:
//! unequal community sizes, moderate noise. Compares the paper's
//! load-balancing algorithm against spectral clustering, averaging
//! dynamics, and label propagation.
//!
//! Run with: `cargo run --release --example community_detection`

use graph_cluster_lb::prelude::*;
use std::time::Instant;

fn main() {
    // Three communities of different sizes (a big one and two smaller),
    // as in real social graphs; β is set by the smallest community.
    let sizes = [400usize, 250, 150];
    let (graph, truth) = planted_partition_sizes(&sizes, 0.08, 0.002, 2026).expect("generator");
    let n: usize = sizes.iter().sum();
    let beta = truth.beta();
    println!(
        "communities {:?} (n = {n}), beta = {beta:.3}, cut edges = {}",
        sizes,
        truth.cut_edges(&graph)
    );
    println!();
    println!(
        "{:<22} {:>9} {:>9} {:>9} {:>10}",
        "method", "accuracy", "ARI", "NMI", "time(ms)"
    );

    let report = |name: &str, labels: &[u32], elapsed_ms: f64| {
        println!(
            "{:<22} {:>9.4} {:>9.4} {:>9.4} {:>10.1}",
            name,
            accuracy(truth.labels(), labels),
            adjusted_rand_index(truth.labels(), labels),
            normalized_mutual_information(truth.labels(), labels),
            elapsed_ms
        );
    };

    // Load-balancing clustering (this paper).
    let t0 = Instant::now();
    let cfg = LbConfig::from_graph(&graph, beta).with_seed(11);
    let out = cluster(&graph, &cfg).expect("clustering");
    report(
        "load-balancing (ours)",
        out.partition.labels(),
        t0.elapsed().as_secs_f64() * 1e3,
    );

    // Spectral clustering (centralised comparator).
    let t0 = Instant::now();
    let sp = spectral_clustering(&graph, 3, 5);
    report("spectral", sp.labels(), t0.elapsed().as_secs_f64() * 1e3);

    // Averaging dynamics (Becchetti et al. style).
    let t0 = Instant::now();
    let av = becchetti_averaging(&graph, 3, 120, 6, 9);
    report(
        "averaging dynamics",
        av.partition.labels(),
        t0.elapsed().as_secs_f64() * 1e3,
    );

    // Label propagation.
    let t0 = Instant::now();
    let (lp, lp_rounds) = label_propagation(&graph, 100);
    report(
        "label propagation",
        lp.labels(),
        t0.elapsed().as_secs_f64() * 1e3,
    );
    println!();
    println!(
        "label propagation stabilised in {lp_rounds} rounds; averaging dynamics shipped {} words",
        av.words
    );
}
