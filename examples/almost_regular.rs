//! Almost-regular graphs (§4.5): the `G*` self-loop emulation in action.
//!
//! Starts from a near-regular clustered graph, perturbs degrees with
//! increasing noise, and shows the algorithm holding up as long as the
//! degree ratio `Δ/δ` stays bounded — the paper's §4.5 condition.
//!
//! Run with: `cargo run --release --example almost_regular`

use graph_cluster_lb::core::{DegreeMode, LbConfig};
use graph_cluster_lb::graph::generators::perturb_degrees;
use graph_cluster_lb::prelude::*;

fn main() {
    let (base, truth) = planted_partition(3, 200, 0.08, 0.002, 55).expect("generator");
    println!(
        "{:>10} {:>8} {:>8} {:>10} {:>10}",
        "add_p", "Δ", "δ", "Δ/δ", "accuracy"
    );
    for &add_p in &[0.0, 0.02, 0.05, 0.10, 0.20] {
        let g = if add_p == 0.0 {
            base.clone()
        } else {
            perturb_degrees(&base, &truth, add_p, 0.0, 91).expect("perturb")
        };
        let cfg = LbConfig::new(1.0 / 3.0, 220)
            .with_seed(13)
            // Auto resolves to the §4.5 capped rule on irregular graphs.
            .with_degree_mode(DegreeMode::Auto);
        let out = cluster(&g, &cfg).expect("clustering");
        let acc = accuracy(truth.labels(), out.partition.labels());
        println!(
            "{:>10.2} {:>8} {:>8} {:>10.3} {:>10.4}",
            add_p,
            g.max_degree(),
            g.min_degree(),
            g.degree_ratio(),
            acc
        );
    }
    println!("\nDegree noise thickens clusters only (the planted cut is untouched),");
    println!("so accuracy should stay high while Δ/δ grows moderately — the §4.5 regime.");
}
