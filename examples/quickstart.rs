//! Quickstart: cluster a well-clustered graph with the load-balancing
//! algorithm and evaluate against ground truth.
//!
//! Run with: `cargo run --release --example quickstart`

use graph_cluster_lb::prelude::*;

fn main() {
    // A planted partition: 4 blocks of 250 nodes, dense inside (p = 0.1),
    // sparse across (q = 0.002). This is the paper's "well-clustered"
    // regime: k eigenvalues near 1, then a wide gap.
    let (graph, truth) = planted_partition(4, 250, 0.1, 0.002, 42).expect("generator");
    println!(
        "graph: n = {}, m = {}, degree range [{}, {}]",
        graph.n(),
        graph.m(),
        graph.min_degree(),
        graph.max_degree()
    );

    // The algorithm needs only β (the balance lower bound), not k.
    // `from_graph` estimates the round count T = Θ(log n / (1 − λ_{k+1}))
    // through the spectral oracle.
    let beta = truth.beta();
    let cfg = LbConfig::from_graph(&graph, beta).with_seed(7);
    println!(
        "config: beta = {beta:.3}, T = {} rounds, s̄ = {} seeding trials",
        cfg.rounds.count(),
        cfg.trials()
    );

    let out = cluster(&graph, &cfg).expect("clustering");
    println!(
        "seeds: {} (nodes {:?}…)",
        out.seeds.len(),
        out.seeds.iter().take(5).map(|s| s.node).collect::<Vec<_>>()
    );

    let acc = accuracy(truth.labels(), out.partition.labels());
    let miscl = misclassified(truth.labels(), out.partition.labels());
    let ari = adjusted_rand_index(truth.labels(), out.partition.labels());
    let nmi = normalized_mutual_information(truth.labels(), out.partition.labels());
    println!("accuracy = {acc:.4}  misclassified = {miscl}  ARI = {ari:.4}  NMI = {nmi:.4}");
    assert!(
        acc > 0.9,
        "expected high accuracy on a well-clustered graph"
    );
    println!("ok: recovered the planted clusters");
}
