//! Message complexity in the real distributed deployment.
//!
//! Runs the algorithm on the synchronous message-passing simulator,
//! measures the exact number of messages and words exchanged (Theorem
//! 1.1(2) bounds this by `O(T · n · k log k)`), compares against the
//! all-neighbours cost of averaging dynamics, and shows graceful
//! degradation under message loss.
//!
//! Run with: `cargo run --release --example message_budget`

use graph_cluster_lb::core::{cluster_distributed, LbConfig};
use graph_cluster_lb::distsim::FaultPlan;
use graph_cluster_lb::prelude::*;

fn main() {
    let (graph, truth) = regular_cluster_graph(4, 200, 16, 4, 31).expect("generator");
    let beta = 0.25;
    let rounds = 160;
    let cfg = LbConfig::new(beta, rounds).with_seed(3);
    println!(
        "graph: n = {}, m = {}, k = 4 clusters of 200; T = {rounds} averaging rounds",
        graph.n(),
        graph.m()
    );

    // Fault-free distributed run.
    let (out, stats) = cluster_distributed(&graph, &cfg, None).expect("clustering");
    let acc = accuracy(truth.labels(), out.partition.labels());
    println!("\n== fault-free ==");
    println!("accuracy            = {acc:.4}");
    println!("seeds               = {}", out.seeds.len());
    println!("messages sent       = {}", stats.sent_messages);
    println!("words sent          = {}", stats.sent_words);
    let bound = rounds as u64 * graph.n() as u64 * (out.seeds.len().max(2) as u64);
    println!(
        "T·n·s reference     = {bound}   (measured/reference = {:.3})",
        stats.sent_words as f64 / bound as f64
    );

    // Compare with the all-neighbours cost of averaging dynamics.
    let av = becchetti_averaging(&graph, 4, rounds, 6, 9);
    println!("\n== averaging dynamics (all-neighbour gossip) ==");
    println!(
        "accuracy            = {:.4}",
        accuracy(truth.labels(), av.partition.labels())
    );
    println!("words sent          = {}", av.words);
    println!(
        "matching model saves a factor of {:.1}x in words on this graph",
        av.words as f64 / stats.sent_words as f64
    );

    // Degradation under message drops.
    println!("\n== message drops ==");
    println!("{:>8} {:>10} {:>10}", "drop %", "accuracy", "dropped");
    for &p in &[0.0, 0.01, 0.05, 0.10, 0.20] {
        let faults = FaultPlan::with_drops(p, 77);
        let (out, stats) = cluster_distributed(&graph, &cfg, Some(faults)).expect("run");
        let acc = accuracy(truth.labels(), out.partition.labels());
        println!(
            "{:>8.2} {:>10.4} {:>10}",
            p * 100.0,
            acc,
            stats.dropped_messages
        );
    }
}
