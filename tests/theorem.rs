//! Theorem-level integration tests: each test pins one quantitative claim
//! of the paper on a concrete well-clustered instance (the experiment
//! suite sweeps these; here we assert a single point each so regressions
//! surface in `cargo test`).

use graph_cluster_lb::core::matching::{d_bar, sample_matching, ProposalRule};
use graph_cluster_lb::core::{cluster, cluster_distributed, LbConfig};
use graph_cluster_lb::distsim::NodeRng;
use graph_cluster_lb::eval::misclassified;
use graph_cluster_lb::prelude::*;

/// Theorem 1.1(1): on a well-clustered graph, misclassified = o(n).
/// Point check: < 5% at n = 1200 with T = Θ(log n / gap).
#[test]
fn theorem_1_1_misclassification() {
    let (g, truth) = regular_cluster_graph(4, 300, 12, 3, 5).unwrap();
    let cfg = LbConfig::from_graph(&g, 0.25).with_seed(11);
    let out = cluster(&g, &cfg).unwrap();
    let miscl = misclassified(truth.labels(), out.partition.labels());
    assert!(
        (miscl as f64) < 0.05 * g.n() as f64,
        "misclassified {miscl} of {}",
        g.n()
    );
}

/// Theorem 1.1(2): message complexity O(T·n·k log k). Point check: the
/// measured words are below 2·T·n·s̄ (the per-round payload is ≤ ~4s
/// words across a ≤ n/2-pair matching, so the constant is small).
#[test]
fn theorem_1_1_message_complexity() {
    let (g, _) = regular_cluster_graph(4, 150, 10, 3, 7).unwrap();
    let rounds = 120;
    let cfg = LbConfig::new(0.25, rounds).with_seed(3);
    let (out, stats) = cluster_distributed(&g, &cfg, None).unwrap();
    let s_bar = cfg.trials() as u64;
    let bound = 2 * rounds as u64 * g.n() as u64 * s_bar;
    assert!(
        stats.sent_words < bound,
        "words {} vs bound {bound} (s = {})",
        stats.sent_words,
        out.seeds.len()
    );
}

/// Lemma 2.1(1): E[M] = (1 − d̄/4)I + (d̄/4)P — checked through the
/// per-node matched frequency d̄/2 on a regular graph.
#[test]
fn lemma_2_1_expectation() {
    let g = graph_cluster_lb::graph::generators::random_regular(120, 6, 3).unwrap();
    // Use a node of full degree 6 (matching-union may shave a few).
    let probe = (0..120u32).find(|&v| g.degree(v) == 6).unwrap();
    let mut rngs: Vec<NodeRng> = (0..120u32).map(|v| NodeRng::for_node(9, v)).collect();
    let trials = 30_000;
    let mut matched = 0usize;
    for _ in 0..trials {
        let m = sample_matching(&g, ProposalRule::Uniform, &mut rngs);
        if m.partner(probe).is_some() {
            matched += 1;
        }
    }
    let freq = matched as f64 / trials as f64;
    let predicted = d_bar(6) / 2.0;
    assert!(
        (freq - predicted).abs() < 0.02,
        "matched frequency {freq} vs predicted {predicted}"
    );
}

/// Lemma 2.1(2): M is a projection ⇒ ‖M x‖ ≤ ‖x‖ and M(Mx) = Mx.
#[test]
fn lemma_2_1_projection() {
    use graph_cluster_lb::core::matching::apply_matching_dense;
    let g = graph_cluster_lb::graph::generators::complete(20).unwrap();
    let mut rngs: Vec<NodeRng> = (0..20u32).map(|v| NodeRng::for_node(4, v)).collect();
    let m = sample_matching(&g, ProposalRule::Uniform, &mut rngs);
    let x: Vec<f64> = (0..20).map(|i| (i as f64 * 0.7).cos()).collect();
    let mut mx = x.clone();
    apply_matching_dense(&m, &mut mx);
    let mut mmx = mx.clone();
    apply_matching_dense(&m, &mut mmx);
    assert_eq!(mx, mmx, "M must be idempotent");
    let norm = |v: &[f64]| v.iter().map(|a| a * a).sum::<f64>().sqrt();
    assert!(norm(&mx) <= norm(&x) + 1e-12, "projection must contract");
}

/// §1.2 example: k = Θ(1) expander clusters with ϕ = O(1/polylog n):
/// the algorithm finishes in O(log n) rounds. Point check at n = 2048:
/// 12·ln n rounds suffice for 95% accuracy.
#[test]
fn section_1_2_logarithmic_rounds() {
    let n = 2048usize;
    let (g, truth) = regular_cluster_graph(4, n / 4, 12, 3, 13).unwrap();
    let t = (12.0 * (n as f64).ln()).ceil() as usize;
    let cfg = LbConfig::new(0.25, t).with_seed(21);
    let out = cluster(&g, &cfg).unwrap();
    let acc = accuracy(truth.labels(), out.partition.labels());
    assert!(acc > 0.95, "accuracy {acc} after {t} rounds");
}

/// §3.2: the expected number of seeds is s̄ = (3/β)ln(1/β) and the
/// algorithm works with multiple seeds per cluster (min-ID merging).
#[test]
fn section_3_2_seed_merging() {
    let (g, truth) = ring_of_cliques(2, 40, 0).unwrap();
    // Force many seeds with 4x the trials.
    let base = LbConfig::new(0.5, 150).with_seed(2);
    let cfg = base.clone().with_seeding_trials(4 * base.trials());
    let out = cluster(&g, &cfg).unwrap();
    assert!(
        out.seeds.len() >= 10,
        "expected many seeds, got {}",
        out.seeds.len()
    );
    // Despite >> 2 seeds, the min-ID rule merges each cluster's labels.
    let acc = accuracy(truth.labels(), out.partition.labels());
    assert!(acc > 0.95, "accuracy {acc} with {} seeds", out.seeds.len());
}

/// §4.5: almost-regular graphs — the capped (G*) rule recovers clusters
/// on a degree-perturbed instance.
#[test]
fn section_4_5_almost_regular() {
    use graph_cluster_lb::core::DegreeMode;
    use graph_cluster_lb::graph::generators::perturb_degrees;
    let (base, truth) = regular_cluster_graph(3, 100, 10, 3, 17).unwrap();
    let g = perturb_degrees(&base, &truth, 0.08, 0.0, 19).unwrap();
    assert!(g.degree_ratio() > 1.5, "perturbation too weak");
    let cfg = LbConfig::new(1.0 / 3.0, 450)
        .with_seed(3)
        .with_degree_mode(DegreeMode::Capped(g.max_degree()));
    let out = cluster(&g, &cfg).unwrap();
    let acc = accuracy(truth.labels(), out.partition.labels());
    assert!(acc > 0.9, "accuracy {acc}");
}
