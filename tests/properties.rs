//! Property-based tests (proptest) for the core invariants listed in
//! DESIGN.md §3.

use graph_cluster_lb::core::matching::{apply_matching_dense, sample_matching, ProposalRule};
use graph_cluster_lb::core::{cluster, LbConfig, LoadState, QueryRule};
use graph_cluster_lb::distsim::NodeRng;
use graph_cluster_lb::eval::{accuracy, adjusted_rand_index, hungarian_max, misclassified};
use graph_cluster_lb::graph::Graph;
use proptest::prelude::*;

/// Strategy: a connected-ish random graph as an edge list over `n` nodes.
fn arb_graph() -> impl Strategy<Value = Graph> {
    (4usize..40).prop_flat_map(|n| {
        // A spanning path guarantees no isolated nodes dominate; random
        // extra edges on top.
        let extra = proptest::collection::vec((0..n as u32, 0..n as u32), 0..3 * n);
        extra.prop_map(move |pairs| {
            let mut edges: Vec<(u32, u32)> = (1..n as u32).map(|v| (v - 1, v)).collect();
            for (a, b) in pairs {
                if a != b {
                    edges.push((a, b));
                }
            }
            Graph::from_edges(n, &edges).unwrap()
        })
    })
}

fn rngs_for(n: usize, seed: u64) -> Vec<NodeRng> {
    (0..n as u32).map(|v| NodeRng::for_node(seed, v)).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn matchings_always_valid(g in arb_graph(), seed in 0u64..1000) {
        let mut rngs = rngs_for(g.n(), seed);
        for _ in 0..5 {
            let m = sample_matching(&g, ProposalRule::Uniform, &mut rngs);
            prop_assert!(m.validate(&g).is_ok());
        }
    }

    #[test]
    fn capped_matchings_always_valid(g in arb_graph(), seed in 0u64..1000) {
        let cap = g.max_degree().max(1);
        let mut rngs = rngs_for(g.n(), seed);
        for _ in 0..5 {
            let m = sample_matching(&g, ProposalRule::Capped(cap), &mut rngs);
            prop_assert!(m.validate(&g).is_ok());
        }
    }

    #[test]
    fn dense_averaging_conserves_sum_and_range(
        g in arb_graph(),
        seed in 0u64..1000,
        values in proptest::collection::vec(0.0f64..10.0, 40),
    ) {
        let n = g.n();
        let mut x: Vec<f64> = values.into_iter().take(n).collect();
        x.resize(n, 1.0);
        let sum0: f64 = x.iter().sum();
        let max0 = x.iter().cloned().fold(f64::MIN, f64::max);
        let min0 = x.iter().cloned().fold(f64::MAX, f64::min);
        let mut rngs = rngs_for(n, seed);
        for _ in 0..10 {
            let m = sample_matching(&g, ProposalRule::Uniform, &mut rngs);
            apply_matching_dense(&m, &mut x);
        }
        let sum1: f64 = x.iter().sum();
        prop_assert!((sum0 - sum1).abs() < 1e-9 * sum0.abs().max(1.0));
        // Averaging can never escape the initial range.
        prop_assert!(x.iter().all(|&v| v >= min0 - 1e-12 && v <= max0 + 1e-12));
    }

    #[test]
    fn state_average_conserves_and_commutes(
        a_entries in proptest::collection::vec((1u64..50, 0.0f64..1.0), 0..8),
        b_entries in proptest::collection::vec((51u64..100, 0.0f64..1.0), 0..8),
        shared in proptest::collection::vec((100u64..120, 0.0f64..1.0, 0.0f64..1.0), 0..5),
    ) {
        let mut av: Vec<(u64, f64)> = a_entries;
        let mut bv: Vec<(u64, f64)> = b_entries;
        let mut seen = std::collections::HashSet::new();
        av.retain(|&(id, _)| seen.insert(id));
        seen.clear();
        bv.retain(|&(id, _)| seen.insert(id));
        seen.clear();
        for &(id, x, y) in &shared {
            if seen.insert(id) {
                av.push((id, x));
                bv.push((id, y));
            }
        }
        let a = LoadState::from_entries(av);
        let b = LoadState::from_entries(bv);
        let m1 = LoadState::average(&a, &b);
        let m2 = LoadState::average(&b, &a);
        prop_assert_eq!(&m1, &m2);
        prop_assert!((2.0 * m1.total() - (a.total() + b.total())).abs() < 1e-12);
        // Idempotent: averaging equal states changes nothing.
        let mm = LoadState::average(&m1, &m1);
        prop_assert_eq!(&mm, &m1);
    }

    #[test]
    fn cluster_conserves_per_seed_load(seed in 0u64..200) {
        let (g, _) = graph_cluster_lb::graph::generators::ring_of_cliques(2, 8, 0).unwrap();
        let cfg = LbConfig::new(0.5, 15).with_seed(seed);
        if let Ok(out) = cluster(&g, &cfg) {
            for s in &out.seeds {
                let total: f64 = out.states.iter().map(|st| st.load(s.id)).sum();
                prop_assert!((total - 1.0).abs() < 1e-9);
            }
            // State sizes never exceed the number of seeds.
            for st in &out.states {
                prop_assert!(st.len() <= out.seeds.len());
            }
            // Loads are non-negative.
            for st in &out.states {
                prop_assert!(st.entries().iter().all(|&(_, x)| x >= 0.0));
            }
        }
    }

    #[test]
    fn accuracy_invariant_under_label_permutation(
        labels in proptest::collection::vec(0u32..4, 8..40),
        perm_seed in 0u64..100,
    ) {
        // Ensure all 4 labels present so permutation is well-defined.
        let mut truth = labels;
        for l in 0..4u32 {
            truth.push(l);
        }
        // Apply a permutation to produce "predictions".
        let perms: [[u32; 4]; 4] = [
            [0, 1, 2, 3],
            [1, 2, 3, 0],
            [3, 2, 1, 0],
            [2, 0, 3, 1],
        ];
        let p = perms[(perm_seed % 4) as usize];
        let pred: Vec<u32> = truth.iter().map(|&l| p[l as usize]).collect();
        prop_assert_eq!(misclassified(&truth, &pred), 0);
        prop_assert!((accuracy(&truth, &pred) - 1.0).abs() < 1e-12);
        prop_assert!((adjusted_rand_index(&truth, &pred) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn hungarian_beats_greedy(
        rows in 2usize..6,
        vals in proptest::collection::vec(0.0f64..10.0, 36),
    ) {
        let w: Vec<Vec<f64>> = (0..rows)
            .map(|r| (0..rows).map(|c| vals[(r * rows + c) % vals.len()]).collect())
            .collect();
        let (_, best) = hungarian_max(&w);
        // Greedy row-by-row assignment.
        let mut used = vec![false; rows];
        let mut greedy = 0.0;
        for row in &w {
            let mut pick = None;
            let mut pv = f64::MIN;
            for c in 0..rows {
                if !used[c] && row[c] > pv {
                    pv = row[c];
                    pick = Some(c);
                }
            }
            let c = pick.unwrap();
            used[c] = true;
            greedy += row[c];
        }
        prop_assert!(best >= greedy - 1e-9);
    }

    #[test]
    fn query_rules_label_every_node(seed in 0u64..100) {
        let (g, _) = graph_cluster_lb::graph::generators::ring_of_cliques(2, 6, 0).unwrap();
        for rule in [QueryRule::PaperThreshold, QueryRule::ArgMax, QueryRule::ScaledThreshold(1.5)] {
            let cfg = LbConfig::new(0.5, 10).with_seed(seed).with_query(rule);
            if let Ok(out) = cluster(&g, &cfg) {
                prop_assert_eq!(out.partition.labels().len(), g.n());
            }
        }
    }
}
