//! Cross-crate integration tests: the full pipeline from generator to
//! evaluated partition, agreement between the three implementations, and
//! file round-trips.

use graph_cluster_lb::core::{cluster, cluster_distributed, LbConfig, QueryRule};
use graph_cluster_lb::distsim::FaultPlan;
use graph_cluster_lb::eval::PartitionReport;
use graph_cluster_lb::graph::{generators, io};
use graph_cluster_lb::prelude::*;

#[test]
fn end_to_end_planted_partition() {
    let (g, truth) = planted_partition(3, 100, 0.1, 0.004, 77).unwrap();
    let cfg = LbConfig::from_graph(&g, truth.beta()).with_seed(5);
    let out = cluster(&g, &cfg).unwrap();
    let report = PartitionReport::evaluate(&g, &truth, &out.partition);
    assert!(report.accuracy > 0.9, "accuracy {}", report.accuracy);
    assert!(report.ari > 0.75, "ari {}", report.ari);
    // Conductance check on *major* clusters only: threshold abstainers
    // can form tiny satellite labels whose conductance is meaningless.
    let sizes = out.partition.cluster_sizes();
    let phis = out.partition.cluster_conductances(&g);
    let major_max = sizes
        .iter()
        .zip(&phis)
        .filter(|&(&s, _)| s >= g.n() / 20)
        .map(|(_, &phi)| phi)
        .fold(0.0f64, f64::max);
    assert!(major_max < 0.35, "major-cluster conductance {major_max}");
}

#[test]
fn three_implementations_agree_exactly() {
    use graph_cluster_lb::core::matrix::MultiLoadProcess;
    use graph_cluster_lb::core::seeding::run_seeding;
    use graph_cluster_lb::distsim::NodeRng;

    let (g, _) = regular_cluster_graph(3, 40, 8, 2, 9).unwrap();
    let cfg = LbConfig::new(1.0 / 3.0, 35).with_seed(42);

    // 1. sparse centralised
    let central = cluster(&g, &cfg).unwrap();
    // 2. distributed
    let (dist, stats) = cluster_distributed(&g, &cfg, None).unwrap();
    assert_eq!(central.states, dist.states);
    assert_eq!(central.partition, dist.partition);
    assert!(stats.sent_words > 0);
    // 3. dense matrix view
    let n = g.n();
    let mut rngs: Vec<NodeRng> = (0..n as u32).map(|v| NodeRng::for_node(42, v)).collect();
    let seeds = run_seeding(n, cfg.trials(), &mut rngs);
    assert_eq!(seeds, central.seeds);
    let sources: Vec<u32> = seeds.iter().map(|s| s.node).collect();
    let mut mp = MultiLoadProcess::new(&g, cfg.proposal_rule(&g), rngs, &sources);
    mp.run(35);
    for (i, s) in seeds.iter().enumerate() {
        for v in 0..n {
            assert_eq!(
                mp.vector(i)[v],
                central.states[v].load(s.id),
                "node {v} seed {i}"
            );
        }
    }
}

#[test]
fn graph_file_roundtrip_preserves_clustering() {
    let (g, truth) = ring_of_cliques(3, 20, 0).unwrap();
    let mut gbuf = Vec::new();
    io::write_edge_list(&g, &mut gbuf).unwrap();
    let mut pbuf = Vec::new();
    io::write_partition(&truth, &mut pbuf).unwrap();
    let g2 = io::read_edge_list(&gbuf[..]).unwrap();
    let truth2 = io::read_partition(&pbuf[..]).unwrap();
    assert_eq!(g, g2);
    assert_eq!(truth, truth2);
    // Same seed ⇒ identical clustering on the round-tripped graph.
    let cfg = LbConfig::new(1.0 / 3.0, 50).with_seed(3);
    let a = cluster(&g, &cfg).unwrap();
    let b = cluster(&g2, &cfg).unwrap();
    assert_eq!(a.partition, b.partition);
}

#[test]
fn all_query_rules_produce_valid_partitions() {
    let (g, _) = planted_partition(2, 60, 0.2, 0.01, 3).unwrap();
    for rule in [
        QueryRule::PaperThreshold,
        QueryRule::ScaledThreshold(1.0),
        QueryRule::ArgMax,
    ] {
        let cfg = LbConfig::new(0.5, 80).with_seed(9).with_query(rule);
        let out = cluster(&g, &cfg).unwrap();
        assert_eq!(out.partition.n(), g.n());
        assert!(out.partition.k() >= 1);
        // Every label below k.
        assert!(out
            .partition
            .labels()
            .iter()
            .all(|&l| (l as usize) < out.partition.k()));
    }
}

#[test]
fn faulty_network_still_terminates_and_labels_everyone() {
    let (g, _) = ring_of_cliques(2, 15, 0).unwrap();
    let cfg = LbConfig::new(0.5, 40).with_seed(8);
    let (out, stats) = cluster_distributed(&g, &cfg, Some(FaultPlan::with_drops(0.5, 2))).unwrap();
    assert_eq!(out.partition.n(), g.n());
    assert!(stats.dropped_messages > 0);
}

#[test]
fn crashed_majority_is_survivable() {
    let (g, _) = generators::ring_of_cliques(2, 10, 0).unwrap();
    let crashed: Vec<u32> = (0..10).map(|i| i * 2).collect();
    let faults = FaultPlan::none().crash_nodes(g.n(), &crashed);
    let cfg = LbConfig::new(0.5, 30).with_seed(6);
    // May fail with NoSeeds if all seeds crashed — both outcomes are
    // acceptable; what must not happen is a hang or panic.
    let _ = cluster_distributed(&g, &cfg, Some(faults));
}

#[test]
fn spectral_oracle_matches_clustering_difficulty() {
    // Sanity: oracle says ring-of-cliques is easier (larger Υ) than a
    // noisy planted partition, and the algorithm's accuracy agrees.
    let (easy, easy_truth) = ring_of_cliques(3, 30, 0).unwrap();
    let (hard, hard_truth) = planted_partition(3, 30, 0.2, 0.08, 4).unwrap();
    let o_easy = SpectralOracle::compute(&easy, 4, 1);
    let o_hard = SpectralOracle::compute(&hard, 4, 1);
    let u_easy = o_easy.upsilon(&easy, &easy_truth);
    let u_hard = o_hard.upsilon(&hard, &hard_truth);
    assert!(u_easy > u_hard, "Υ_easy {u_easy} vs Υ_hard {u_hard}");
}
