//! # graph-cluster-lb
//!
//! Meta-crate for the reproduction of **Sun & Zanetti, "Distributed Graph
//! Clustering by Load Balancing" (SPAA 2017)**. It re-exports the public
//! API of every workspace crate so examples and downstream users need a
//! single dependency:
//!
//! * [`graph`] — CSR graphs, generators, partitions, conductance.
//! * [`linalg`] — eigensolvers and spectral quantities (`λ_k`, `Υ`, `T`).
//! * [`eval`] — label alignment (Hungarian), accuracy, ARI, NMI.
//! * [`distsim`] — synchronous message-passing simulator with accounting.
//! * [`core`] — the paper's algorithm: matching model, seeding /
//!   averaging / query, centralised variant, almost-regular extension.
//! * [`baselines`] — spectral clustering, averaging dynamics, label
//!   propagation.
//!
//! ## Quickstart
//!
//! ```
//! use graph_cluster_lb::prelude::*;
//!
//! // A well-clustered graph: 3 blocks of 60 nodes.
//! let (g, truth) = planted_partition(3, 60, 0.5, 0.01, 42).unwrap();
//! let cfg = LbConfig::from_graph(&g, truth.beta()).with_seed(7);
//! let out = cluster(&g, &cfg).unwrap();
//! let acc = accuracy(truth.labels(), out.partition.labels());
//! assert!(acc > 0.9, "accuracy {acc}");
//! ```

pub use lbc_baselines as baselines;
pub use lbc_core as core;
pub use lbc_distsim as distsim;
pub use lbc_eval as eval;
pub use lbc_graph as graph;
pub use lbc_linalg as linalg;

/// Convenience re-exports for examples and quick experiments.
pub mod prelude {
    pub use lbc_baselines::{
        becchetti_averaging, kempe_mcsherry, label_propagation, spectral_clustering,
        walk_clustering, AveragingOutput,
    };
    pub use lbc_core::{
        cluster, cluster_adaptive, cluster_async, cluster_discrete, cluster_distributed,
        estimate_size, ClusterOutput, LbConfig, QueryRule,
    };
    pub use lbc_eval::{
        accuracy, adjusted_rand_index, misclassified, normalized_mutual_information,
    };
    pub use lbc_graph::generators::{
        dumbbell, planted_partition, planted_partition_sizes, regular_cluster_graph,
        ring_of_cliques,
    };
    pub use lbc_graph::{Graph, GraphBuilder, Partition};
    pub use lbc_linalg::spectral::{ClusterSpectrum, SpectralOracle};
}
