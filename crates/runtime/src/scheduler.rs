//! Sharded clustering scheduler: a dependency-free `std::thread` worker
//! pool executing independent `(graph, config)` clustering jobs.
//!
//! Workers pull jobs from one shared FIFO channel, so independent jobs
//! shard across cores with no static assignment and no idle worker while
//! work remains. Because [`lbc_core::cluster`] derives every random
//! decision from per-node RNG streams seeded only by `(cfg.seed, node)`,
//! a job's output does not depend on which worker ran it, whether other
//! jobs ran concurrently, or in what order jobs were popped — pool
//! output is bit-for-bit identical to the single-threaded path, a
//! property the determinism tests assert.
//!
//! Every job is tracked in a job table ([`WorkerPool::job_table`]) with
//! its state, the worker that ran it, and its wall-clock duration, which
//! is what `lbc jobs` renders.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::time::{Duration, Instant};

use lbc_core::driver::ClusterError;
use lbc_core::{cluster, ClusterOutput, LbConfig};
use lbc_graph::Graph;
use lbc_obs::{Counter, Gauge, Histogram, Obs};

use crate::error::RuntimeError;
use crate::registry::Registry;

/// Lifecycle of one clustering job.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JobState {
    Queued,
    Running,
    Done,
    Failed(ClusterError),
    /// A [`WorkerPool::submit_task`] closure panicked; the panic was
    /// contained to the job (the worker thread survives).
    TaskPanicked(String),
}

impl std::fmt::Display for JobState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            JobState::Queued => write!(f, "queued"),
            JobState::Running => write!(f, "running"),
            JobState::Done => write!(f, "done"),
            JobState::Failed(e) => write!(f, "failed: {e}"),
            JobState::TaskPanicked(msg) => write!(f, "task panicked: {msg}"),
        }
    }
}

/// Job-table row.
#[derive(Debug, Clone)]
pub struct JobRecord {
    pub id: u64,
    /// Dataset label the submitter attached (informational).
    pub dataset: String,
    /// The job's clustering seed (the most common sweep axis).
    pub seed: u64,
    pub state: JobState,
    /// Worker index that executed the job (`None` while queued).
    pub worker: Option<usize>,
    /// Wall-clock execution time (`None` until finished).
    pub duration: Option<Duration>,
}

struct Job {
    id: u64,
    kind: JobKind,
}

enum JobKind {
    Cluster {
        graph: Arc<Graph>,
        cfg: LbConfig,
        /// Cache destination for the finished output, if any.
        publish: Option<(Arc<Registry>, String)>,
        result_tx: mpsc::Sender<Result<Arc<ClusterOutput>, ClusterError>>,
    },
    /// An arbitrary completion hook: the closure runs on a worker and
    /// signals whoever cares however it likes (the network reactor
    /// pushes onto its completion queue and writes its wake pipe).
    Task(Box<dyn FnOnce() + Send + 'static>),
}

type JobTable = Arc<Mutex<BTreeMap<u64, JobRecord>>>;

/// Pool-level metric handles, shared by submitters and every worker.
/// Constructed standalone so the pool instruments itself from birth;
/// [`WorkerPool::register_obs`] adopts them into a node's registry.
#[derive(Clone)]
struct PoolMetrics {
    /// Jobs submitted but not yet popped by a worker.
    queue_depth: Arc<Gauge>,
    /// Jobs that ran to an outcome (done or failed) without panicking.
    jobs_completed: Arc<Counter>,
    /// Contained [`JobState::TaskPanicked`] outcomes.
    jobs_panicked: Arc<Counter>,
    /// Wall-clock execution time per job, in nanoseconds.
    job_service_ns: Arc<Histogram>,
}

impl PoolMetrics {
    fn new() -> PoolMetrics {
        PoolMetrics {
            queue_depth: Arc::new(Gauge::new()),
            jobs_completed: Arc::new(Counter::new()),
            jobs_panicked: Arc::new(Counter::new()),
            job_service_ns: Arc::new(Histogram::new()),
        }
    }
}

/// Best-effort text from a contained panic payload.
fn panic_message(p: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = p.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = p.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Waitable handle to a submitted job.
pub struct JobHandle {
    id: u64,
    rx: mpsc::Receiver<Result<Arc<ClusterOutput>, ClusterError>>,
}

impl JobHandle {
    /// Job id (key into [`WorkerPool::job_table`]).
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Block until the job finishes.
    pub fn wait(self) -> Result<Arc<ClusterOutput>, RuntimeError> {
        match self.rx.recv() {
            Ok(Ok(out)) => Ok(out),
            Ok(Err(e)) => Err(RuntimeError::Cluster(e)),
            Err(_) => Err(RuntimeError::PoolShutdown),
        }
    }
}

/// Fixed-size `std::thread` worker pool for clustering jobs.
pub struct WorkerPool {
    tx: Option<mpsc::Sender<Job>>,
    workers: Vec<std::thread::JoinHandle<()>>,
    table: JobTable,
    next_id: AtomicU64,
    metrics: PoolMetrics,
}

impl WorkerPool {
    /// Spawn `threads` workers (clamped to ≥ 1).
    pub fn new(threads: usize) -> Self {
        let threads = threads.max(1);
        let (tx, rx) = mpsc::channel::<Job>();
        let rx = Arc::new(Mutex::new(rx));
        let table: JobTable = Arc::new(Mutex::new(BTreeMap::new()));
        let metrics = PoolMetrics::new();
        let workers = (0..threads)
            .map(|worker_idx| {
                let rx = Arc::clone(&rx);
                let table = Arc::clone(&table);
                let metrics = metrics.clone();
                std::thread::Builder::new()
                    .name(format!("lbc-worker-{worker_idx}"))
                    .spawn(move || loop {
                        // Hold the receiver lock only for the pop; the
                        // clustering itself runs lock-free.
                        let job = match rx.lock().unwrap().recv() {
                            Ok(job) => job,
                            Err(_) => return, // pool dropped, drain done
                        };
                        metrics.queue_depth.add(-1);
                        {
                            let mut t = table.lock().unwrap();
                            if let Some(rec) = t.get_mut(&job.id) {
                                rec.state = JobState::Running;
                                rec.worker = Some(worker_idx);
                            }
                        }
                        let t0 = Instant::now();
                        match job.kind {
                            JobKind::Cluster {
                                graph,
                                cfg,
                                publish,
                                result_tx,
                            } => {
                                // Publishing jobs go through the registry's
                                // in-flight dedup (racing jobs for the same key
                                // wait for one run instead of repeating it);
                                // unpublished jobs cluster directly.
                                let result = match &publish {
                                    Some((registry, name)) => {
                                        registry.get_or_cluster_on(name, &graph, &cfg)
                                    }
                                    None => cluster(&graph, &cfg).map(Arc::new),
                                };
                                let took = t0.elapsed();
                                metrics.job_service_ns.record(took.as_nanos() as u64);
                                metrics.jobs_completed.inc();
                                {
                                    let mut t = table.lock().unwrap();
                                    if let Some(rec) = t.get_mut(&job.id) {
                                        rec.state = match &result {
                                            Ok(_) => JobState::Done,
                                            Err(e) => JobState::Failed(e.clone()),
                                        };
                                        rec.duration = Some(took);
                                    }
                                }
                                // A dropped handle is fine; the job table
                                // keeps the outcome.
                                let _ = result_tx.send(result);
                            }
                            JobKind::Task(f) => {
                                // Contain panics to the job: a hook that
                                // blows up must not take a worker (and
                                // every queued job behind it) with it.
                                let outcome =
                                    std::panic::catch_unwind(std::panic::AssertUnwindSafe(f));
                                let took = t0.elapsed();
                                metrics.job_service_ns.record(took.as_nanos() as u64);
                                match &outcome {
                                    Ok(()) => metrics.jobs_completed.inc(),
                                    Err(_) => metrics.jobs_panicked.inc(),
                                }
                                let mut t = table.lock().unwrap();
                                if let Some(rec) = t.get_mut(&job.id) {
                                    rec.state = match &outcome {
                                        Ok(()) => JobState::Done,
                                        // `&**p`: inspect the payload, not
                                        // the Box unsized into `dyn Any`.
                                        Err(p) => JobState::TaskPanicked(panic_message(&**p)),
                                    };
                                    rec.duration = Some(took);
                                }
                            }
                        }
                    })
                    .expect("spawn worker thread")
            })
            .collect();
        WorkerPool {
            tx: Some(tx),
            workers,
            table,
            next_id: AtomicU64::new(0),
            metrics,
        }
    }

    /// Number of worker threads.
    pub fn threads(&self) -> usize {
        self.workers.len()
    }

    /// Adopt the pool's metric handles into a node's metrics registry
    /// (`worker_*` names). The handles have been live since the pool was
    /// built, so counts accrued before registration are not lost.
    pub fn register_obs(&self, obs: &Obs) {
        obs.register_gauge("worker_queue_depth", Arc::clone(&self.metrics.queue_depth));
        obs.register_counter(
            "worker_jobs_completed_total",
            Arc::clone(&self.metrics.jobs_completed),
        );
        obs.register_counter(
            "worker_jobs_panicked_total",
            Arc::clone(&self.metrics.jobs_panicked),
        );
        obs.register_histogram(
            "worker_job_service_ns",
            Arc::clone(&self.metrics.job_service_ns),
        );
    }

    /// Submit a clustering job on an explicit graph.
    pub fn submit(&self, dataset: &str, graph: Arc<Graph>, cfg: LbConfig) -> JobHandle {
        self.submit_inner(dataset, graph, cfg, None)
    }

    /// Submit a job for a registered dataset; the finished output is
    /// published into `registry`'s cache. Returns an already-completed
    /// handle on a cache hit, so batch submitters get dedup for free.
    pub fn submit_cached(
        &self,
        registry: &Arc<Registry>,
        name: &str,
        cfg: &LbConfig,
    ) -> Result<JobHandle, RuntimeError> {
        if let Some(out) = registry.cached(name, cfg) {
            let (tx, rx) = mpsc::channel();
            tx.send(Ok(out)).expect("receiver held locally");
            let id = self.next_id.fetch_add(1, Ordering::Relaxed);
            self.table.lock().unwrap().insert(
                id,
                JobRecord {
                    id,
                    dataset: name.to_string(),
                    seed: cfg.seed,
                    state: JobState::Done,
                    worker: None,
                    duration: Some(Duration::ZERO),
                },
            );
            return Ok(JobHandle { id, rx });
        }
        let graph = registry.graph(name)?;
        Ok(self.submit_inner(
            name,
            graph,
            cfg.clone(),
            Some((Arc::clone(registry), name.to_string())),
        ))
    }

    fn submit_inner(
        &self,
        dataset: &str,
        graph: Arc<Graph>,
        cfg: LbConfig,
        publish: Option<(Arc<Registry>, String)>,
    ) -> JobHandle {
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let (result_tx, rx) = mpsc::channel();
        self.table.lock().unwrap().insert(
            id,
            JobRecord {
                id,
                dataset: dataset.to_string(),
                seed: cfg.seed,
                state: JobState::Queued,
                worker: None,
                duration: None,
            },
        );
        let job = Job {
            id,
            kind: JobKind::Cluster {
                graph,
                cfg,
                publish,
                result_tx,
            },
        };
        self.metrics.queue_depth.add(1);
        self.tx
            .as_ref()
            .expect("sender alive until drop")
            .send(job)
            .expect("workers alive until drop");
        JobHandle { id, rx }
    }

    /// Run an arbitrary closure on the pool, tracked in the job table
    /// under `label`. This is the completion-hook seam the network
    /// reactor uses: expensive work (delta re-clustering) runs here
    /// while the reactor keeps serving, and the closure's final act is
    /// to push its result onto the reactor's completion queue and wake
    /// it. Panics are contained to the job ([`JobState::TaskPanicked`]).
    ///
    /// Returns the job id (key into [`WorkerPool::job_table`]).
    pub fn submit_task<F>(&self, label: &str, f: F) -> u64
    where
        F: FnOnce() + Send + 'static,
    {
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        self.table.lock().unwrap().insert(
            id,
            JobRecord {
                id,
                dataset: label.to_string(),
                seed: 0,
                state: JobState::Queued,
                worker: None,
                duration: None,
            },
        );
        self.metrics.queue_depth.add(1);
        self.tx
            .as_ref()
            .expect("sender alive until drop")
            .send(Job {
                id,
                kind: JobKind::Task(Box::new(f)),
            })
            .expect("workers alive until drop");
        id
    }

    /// Snapshot of all job records, ordered by id.
    pub fn job_table(&self) -> Vec<JobRecord> {
        self.table.lock().unwrap().values().cloned().collect()
    }

    /// Render the job table as an aligned text report.
    pub fn render_job_table(&self) -> String {
        let mut s = String::from("job   dataset            seed    worker  state     ms\n");
        for rec in self.job_table() {
            let worker = rec.worker.map_or("-".to_string(), |w| w.to_string());
            let ms = rec
                .duration
                .map_or("-".to_string(), |d| format!("{:.2}", d.as_secs_f64() * 1e3));
            s.push_str(&format!(
                "{:<5} {:<18} {:<7} {:<7} {:<9} {}\n",
                rec.id,
                rec.dataset,
                rec.seed,
                worker,
                rec.state.to_string(),
                ms
            ));
        }
        s
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        // Close the channel; workers drain outstanding jobs and exit.
        drop(self.tx.take());
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lbc_graph::generators;

    #[test]
    fn pool_runs_jobs_and_tracks_them() {
        // Jobs must be a few ms each, or one worker can legitimately
        // drain the whole queue before its siblings wake up.
        let (g, _) = generators::ring_of_cliques(4, 40, 0).unwrap();
        let g = Arc::new(g);
        let pool = WorkerPool::new(4);
        let handles: Vec<JobHandle> = (0..8)
            .map(|s| {
                pool.submit(
                    "ring",
                    Arc::clone(&g),
                    LbConfig::new(0.25, 400).with_seed(s),
                )
            })
            .collect();
        for h in handles {
            h.wait().unwrap();
        }
        let table = pool.job_table();
        assert_eq!(table.len(), 8);
        assert!(table.iter().all(|r| r.state == JobState::Done));
        assert!(table.iter().all(|r| r.duration.is_some()));
        // With 8 jobs on 4 workers, at least 2 distinct workers ran.
        let mut workers: Vec<usize> = table.iter().filter_map(|r| r.worker).collect();
        workers.sort_unstable();
        workers.dedup();
        assert!(workers.len() >= 2, "jobs did not shard: {workers:?}");
    }

    #[test]
    fn failed_jobs_are_reported() {
        let g = Arc::new(Graph::from_edges(0, &[]).unwrap());
        let pool = WorkerPool::new(1);
        let h = pool.submit("empty", g, LbConfig::new(0.5, 5));
        assert!(matches!(
            h.wait(),
            Err(RuntimeError::Cluster(ClusterError::EmptyGraph))
        ));
        let table = pool.job_table();
        assert!(matches!(table[0].state, JobState::Failed(_)));
    }

    #[test]
    fn submit_cached_publishes_and_dedups() {
        let registry = Arc::new(Registry::with_capacity(4));
        let (g, _) = generators::ring_of_cliques(2, 10, 0).unwrap();
        registry.insert_graph("ring", g);
        let pool = WorkerPool::new(2);
        let cfg = LbConfig::new(0.5, 20).with_seed(1);
        let out1 = pool
            .submit_cached(&registry, "ring", &cfg)
            .unwrap()
            .wait()
            .unwrap();
        // Second submission must be served from cache (same Arc, no work).
        let h2 = pool.submit_cached(&registry, "ring", &cfg).unwrap();
        let rec = pool
            .job_table()
            .into_iter()
            .find(|r| r.id == h2.id())
            .unwrap();
        assert_eq!(rec.state, JobState::Done);
        assert_eq!(rec.duration, Some(Duration::ZERO));
        let out2 = h2.wait().unwrap();
        assert!(Arc::ptr_eq(&out1, &out2));
        assert_eq!(registry.stats().inserts, 1);
    }

    #[test]
    fn tasks_run_and_complete_in_the_job_table() {
        let pool = WorkerPool::new(2);
        let (tx, rx) = mpsc::channel();
        let id = pool.submit_task("hook", move || {
            tx.send(41 + 1).unwrap();
        });
        assert_eq!(rx.recv().unwrap(), 42);
        // The table entry reaches Done (the send happens inside the
        // closure, just before the state flip — poll briefly).
        let deadline = Instant::now() + Duration::from_secs(5);
        loop {
            let rec = pool.job_table().into_iter().find(|r| r.id == id).unwrap();
            if rec.state == JobState::Done {
                assert_eq!(rec.dataset, "hook");
                assert!(rec.duration.is_some());
                break;
            }
            assert!(
                Instant::now() < deadline,
                "task never reached Done: {rec:?}"
            );
            std::thread::yield_now();
        }
    }

    #[test]
    fn panicking_task_is_contained() {
        let pool = WorkerPool::new(1);
        let id = pool.submit_task("boom", || panic!("intentional test panic"));
        // The pool survives: a later task on the SAME worker still runs.
        let (tx, rx) = mpsc::channel();
        pool.submit_task("after", move || tx.send(()).unwrap());
        rx.recv_timeout(Duration::from_secs(5)).unwrap();
        let rec = pool.job_table().into_iter().find(|r| r.id == id).unwrap();
        match rec.state {
            JobState::TaskPanicked(msg) => assert!(msg.contains("intentional"), "{msg}"),
            other => panic!("expected TaskPanicked, got {other:?}"),
        }
    }

    #[test]
    fn drop_drains_queued_jobs() {
        let (g, _) = generators::ring_of_cliques(2, 8, 0).unwrap();
        let g = Arc::new(g);
        let pool = WorkerPool::new(2);
        let handles: Vec<JobHandle> = (0..6)
            .map(|s| pool.submit("ring", Arc::clone(&g), LbConfig::new(0.5, 10).with_seed(s)))
            .collect();
        drop(pool);
        for h in handles {
            // Every job completed (drained) rather than lost.
            h.wait().unwrap();
        }
    }
}
