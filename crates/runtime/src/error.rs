//! Error type shared by the runtime modules.

use lbc_core::driver::ClusterError;
use lbc_graph::GraphError;

/// Everything the serving engine can report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RuntimeError {
    /// No dataset registered under this name.
    UnknownDataset(String),
    /// Loading or parsing a graph failed.
    Graph(String),
    /// A clustering job failed.
    Cluster(ClusterError),
    /// The worker pool shut down before the job completed.
    PoolShutdown,
    /// A query referenced a node outside `0..n`.
    NodeOutOfRange { node: u32, n: usize },
    /// A configuration value is out of its admissible range.
    InvalidConfig(String),
    /// The attached persistence store failed (see [`lbc_store::StoreError`]).
    Store(String),
}

impl std::fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RuntimeError::UnknownDataset(name) => write!(f, "unknown dataset '{name}'"),
            RuntimeError::Graph(e) => write!(f, "graph error: {e}"),
            RuntimeError::Cluster(e) => write!(f, "clustering failed: {e}"),
            RuntimeError::PoolShutdown => write!(f, "worker pool shut down"),
            RuntimeError::NodeOutOfRange { node, n } => {
                write!(f, "node {node} out of range for graph with {n} nodes")
            }
            RuntimeError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
            RuntimeError::Store(msg) => write!(f, "store error: {msg}"),
        }
    }
}

impl std::error::Error for RuntimeError {}

impl From<GraphError> for RuntimeError {
    fn from(e: GraphError) -> Self {
        RuntimeError::Graph(e.to_string())
    }
}

impl From<ClusterError> for RuntimeError {
    fn from(e: ClusterError) -> Self {
        RuntimeError::Cluster(e)
    }
}

impl From<lbc_store::StoreError> for RuntimeError {
    fn from(e: lbc_store::StoreError) -> Self {
        RuntimeError::Store(e.to_string())
    }
}
