//! Batched membership queries over cached clustering outputs.
//!
//! Once a `(graph, config)` pair is clustered and resident, the useful
//! online operations are tiny: *which cluster is `v` in*, *are `u` and
//! `v` in the same cluster*, *how big is `v`'s cluster*. A
//! [`ClusterHandle`] answers all three from an `Arc`-shared
//! [`ClusterOutput`] with a precomputed size table — reads are lock-free
//! and safely shared across any number of serving threads.
//!
//! The handle deliberately re-uses `lbc_core`'s query machinery instead
//! of duplicating it: labels come from the [`Partition`] that
//! [`lbc_core::assign_labels`] produced, and
//! [`ClusterHandle::with_query_rule`] re-labels the resident load states
//! through that same function, so an operator can compare the paper's
//! threshold rule against argmax on a live dataset without re-running a
//! single averaging round.

use std::sync::Arc;

use lbc_core::state::SeedId;
use lbc_core::{assign_labels, ClusterOutput, LbConfig, QueryRule};
use lbc_graph::NodeId;

use crate::error::RuntimeError;
use crate::registry::Registry;
use crate::scheduler::WorkerPool;

/// One membership query.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Query {
    /// Are the two nodes in the same cluster?
    SameCluster(NodeId, NodeId),
    /// Compacted cluster label of the node.
    ClusterOf(NodeId),
    /// Size of the node's cluster.
    ClusterSize(NodeId),
}

/// Answer to one [`Query`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Answer {
    Bool(bool),
    Label(u32),
    Size(u32),
}

impl Answer {
    /// Fold the answer into a checksum word (used by the load generator
    /// to keep the optimiser honest and to cross-check determinism).
    pub fn checksum_word(self) -> u64 {
        match self {
            Answer::Bool(b) => 0x9e37 ^ u64::from(b),
            Answer::Label(l) => 0x1000_0000 ^ u64::from(l),
            Answer::Size(s) => 0x2000_0000 ^ u64::from(s),
        }
    }
}

/// A relabelling of a clustering under a different query rule; produced
/// by [`ClusterHandle::with_query_rule`] and shared behind `Arc` so the
/// expensive parts of the output (states, seeds) are never copied.
struct Relabelling {
    raw_labels: Vec<Option<SeedId>>,
    partition: lbc_graph::Partition,
}

/// Lock-free, shareable view of one cached clustering.
#[derive(Clone)]
pub struct ClusterHandle {
    output: Arc<ClusterOutput>,
    /// Override labelling from [`ClusterHandle::with_query_rule`]
    /// (`None` = the output's own labelling).
    relabel: Option<Arc<Relabelling>>,
    /// `sizes[label]` = number of nodes with that compacted label.
    sizes: Arc<Vec<u32>>,
}

fn sizes_of(partition: &lbc_graph::Partition) -> Arc<Vec<u32>> {
    let mut sizes = vec![0u32; partition.k().max(1)];
    for &l in partition.labels() {
        sizes[l as usize] += 1;
    }
    Arc::new(sizes)
}

impl ClusterHandle {
    /// Wrap a finished clustering output.
    pub fn new(output: Arc<ClusterOutput>) -> Self {
        let sizes = sizes_of(&output.partition);
        ClusterHandle {
            output,
            relabel: None,
            sizes,
        }
    }

    /// The labelling queries are answered from (the output's own, or
    /// the [`ClusterHandle::with_query_rule`] override).
    pub fn partition(&self) -> &lbc_graph::Partition {
        self.relabel
            .as_ref()
            .map_or(&self.output.partition, |r| &r.partition)
    }

    /// Per-node winning seed ids for the active labelling.
    pub fn raw_labels(&self) -> &[Option<SeedId>] {
        self.relabel
            .as_ref()
            .map_or(&self.output.raw_labels, |r| &r.raw_labels)
    }

    /// Number of nodes.
    pub fn n(&self) -> usize {
        self.partition().n()
    }

    /// Number of clusters found.
    pub fn k(&self) -> usize {
        self.partition().k()
    }

    /// The underlying clustering output (states, seeds, and the
    /// labelling the clustering run itself produced).
    pub fn output(&self) -> &ClusterOutput {
        &self.output
    }

    fn check(&self, v: NodeId) -> Result<usize, RuntimeError> {
        let idx = v as usize;
        if idx >= self.n() {
            return Err(RuntimeError::NodeOutOfRange {
                node: v,
                n: self.n(),
            });
        }
        Ok(idx)
    }

    /// Compacted cluster label of `v`.
    pub fn cluster_of(&self, v: NodeId) -> Result<u32, RuntimeError> {
        Ok(self.partition().labels()[self.check(v)?])
    }

    /// Whether `u` and `v` share a cluster.
    pub fn same_cluster(&self, u: NodeId, v: NodeId) -> Result<bool, RuntimeError> {
        let labels = self.partition().labels();
        Ok(labels[self.check(u)?] == labels[self.check(v)?])
    }

    /// Size of `v`'s cluster.
    pub fn cluster_size(&self, v: NodeId) -> Result<u32, RuntimeError> {
        let l = self.cluster_of(v)?;
        Ok(self.sizes[l as usize])
    }

    /// Winning seed id at `v` (`None` when the node's state was empty).
    pub fn raw_seed_of(&self, v: NodeId) -> Result<Option<SeedId>, RuntimeError> {
        Ok(self.raw_labels()[self.check(v)?])
    }

    /// Execute one query.
    pub fn execute(&self, q: Query) -> Result<Answer, RuntimeError> {
        match q {
            Query::SameCluster(u, v) => self.same_cluster(u, v).map(Answer::Bool),
            Query::ClusterOf(v) => self.cluster_of(v).map(Answer::Label),
            Query::ClusterSize(v) => self.cluster_size(v).map(Answer::Size),
        }
    }

    /// Execute a batch, failing fast on the first invalid query.
    pub fn execute_batch(&self, qs: &[Query]) -> Result<Vec<Answer>, RuntimeError> {
        qs.iter().map(|&q| self.execute(q)).collect()
    }

    /// Re-label the resident load states under a different query rule —
    /// the Seeding/Averaging work *and* the resident states/seeds are
    /// shared with this handle (nothing is copied); only `lbc_core`'s
    /// query step ([`assign_labels`]) runs again. (This is a one-shot
    /// relabel, so it stays on the `Vec<LoadState>` view; rebuilding a
    /// [`lbc_core::StateArena`] here would cost more than it saves —
    /// the arena path pays off where an arena already exists, i.e.
    /// inside the clustering run itself.)
    pub fn with_query_rule(&self, rule: QueryRule, beta: f64) -> ClusterHandle {
        let (raw_labels, partition) = assign_labels(&self.output.states, rule, beta);
        let sizes = sizes_of(&partition);
        ClusterHandle {
            output: Arc::clone(&self.output),
            relabel: Some(Arc::new(Relabelling {
                raw_labels,
                partition,
            })),
            sizes,
        }
    }
}

/// Front door tying the registry and worker pool together.
pub struct QueryEngine {
    registry: Arc<Registry>,
}

impl QueryEngine {
    /// Engine over a shared registry.
    pub fn new(registry: Arc<Registry>) -> Self {
        QueryEngine { registry }
    }

    /// The underlying registry.
    pub fn registry(&self) -> &Arc<Registry> {
        &self.registry
    }

    /// Handle for `(dataset, cfg)`, clustering inline on a cache miss.
    pub fn handle(&self, dataset: &str, cfg: &LbConfig) -> Result<ClusterHandle, RuntimeError> {
        Ok(ClusterHandle::new(
            self.registry.get_or_cluster(dataset, cfg)?,
        ))
    }

    /// Handle for `(dataset, cfg)`, running the clustering on `pool` on
    /// a cache miss (the sharded path).
    pub fn handle_via_pool(
        &self,
        pool: &WorkerPool,
        dataset: &str,
        cfg: &LbConfig,
    ) -> Result<ClusterHandle, RuntimeError> {
        let out = pool.submit_cached(&self.registry, dataset, cfg)?.wait()?;
        Ok(ClusterHandle::new(out))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lbc_graph::generators;

    fn engine_with_ring() -> (QueryEngine, LbConfig) {
        let registry = Arc::new(Registry::with_capacity(4));
        let (g, _) = generators::ring_of_cliques(3, 8, 0).unwrap();
        registry.insert_graph("ring", g);
        (
            QueryEngine::new(registry),
            LbConfig::new(1.0 / 3.0, 60).with_seed(2),
        )
    }

    #[test]
    fn answers_match_partition_directly() {
        let (engine, cfg) = engine_with_ring();
        let h = engine.handle("ring", &cfg).unwrap();
        let labels = h.output().partition.labels().to_vec();
        for v in 0..h.n() as NodeId {
            assert_eq!(h.cluster_of(v).unwrap(), labels[v as usize]);
            let size = labels.iter().filter(|&&l| l == labels[v as usize]).count();
            assert_eq!(h.cluster_size(v).unwrap() as usize, size);
        }
        assert_eq!(h.same_cluster(0, 1).unwrap(), labels[0] == labels[1]);
    }

    #[test]
    fn batch_and_single_agree() {
        let (engine, cfg) = engine_with_ring();
        let h = engine.handle("ring", &cfg).unwrap();
        let qs = vec![
            Query::SameCluster(0, 1),
            Query::SameCluster(0, 23),
            Query::ClusterOf(5),
            Query::ClusterSize(17),
        ];
        let batch = h.execute_batch(&qs).unwrap();
        for (q, a) in qs.iter().zip(&batch) {
            assert_eq!(h.execute(*q).unwrap(), *a);
        }
    }

    #[test]
    fn out_of_range_nodes_are_rejected() {
        let (engine, cfg) = engine_with_ring();
        let h = engine.handle("ring", &cfg).unwrap();
        let n = h.n() as NodeId;
        assert!(matches!(
            h.cluster_of(n),
            Err(RuntimeError::NodeOutOfRange { .. })
        ));
        assert!(h.same_cluster(0, n).is_err());
        assert!(h.execute_batch(&[Query::ClusterSize(n)]).is_err());
    }

    #[test]
    fn relabelling_reuses_states() {
        let (engine, cfg) = engine_with_ring();
        let h = engine.handle("ring", &cfg).unwrap();
        let argmax = h.with_query_rule(QueryRule::ArgMax, cfg.beta);
        // The resident output is *shared*, not copied: same allocation.
        assert!(std::ptr::eq(argmax.output(), h.output()));
        assert_eq!(argmax.n(), h.n());
        // Argmax never abstains, so no node may sit in an "empty" extra
        // cluster beyond the seeds that exist.
        assert!(argmax.raw_labels().iter().all(|r| r.is_some()));
        // The original handle's labelling is untouched.
        assert_eq!(h.raw_labels(), &h.output().raw_labels[..]);
    }

    #[test]
    fn arena_relabelling_matches_loadstate_relabelling() {
        // Cross-representation parity at the serving boundary: labelling
        // the resident states through a rebuilt arena must equal the
        // `Vec<LoadState>` relabel path bit-for-bit, for every rule.
        let (engine, cfg) = engine_with_ring();
        let h = engine.handle("ring", &cfg).unwrap();
        let arena = lbc_core::StateArena::from_states(&h.output().states);
        for rule in [
            QueryRule::ArgMax,
            QueryRule::PaperThreshold,
            QueryRule::ScaledThreshold(0.5),
        ] {
            let relabelled = h.with_query_rule(rule, cfg.beta);
            let (raw, part) = lbc_core::assign_labels_arena(&arena, rule, cfg.beta);
            assert_eq!(relabelled.raw_labels(), &raw[..]);
            assert_eq!(relabelled.partition(), &part);
        }
    }

    #[test]
    fn pool_path_equals_inline_path() {
        let (engine, cfg) = engine_with_ring();
        let pool = WorkerPool::new(2);
        let via_pool = engine.handle_via_pool(&pool, "ring", &cfg).unwrap();
        let inline = engine.handle("ring", &cfg).unwrap();
        assert_eq!(via_pool.output().partition, inline.output().partition);
        assert_eq!(via_pool.output().states, inline.output().states);
    }
}
