//! Dataset store and clustering cache.
//!
//! The [`Registry`] owns the resident state of the serving engine:
//!
//! * **Datasets** — named, immutable graphs behind `Arc`, loaded once
//!   (from an edge-list file via [`lbc_graph::io`] or inserted directly,
//!   e.g. from a generator) and shared by every worker and client.
//!   Mutation happens by *replacement*: [`Registry::apply_delta`] patches
//!   the graph with a [`GraphDelta`] and swaps it in atomically, then
//!   (per [`DeltaPolicy`]) warm-refreshes or invalidates the cached
//!   clusterings, so a live server absorbs graph updates without cold
//!   re-clustering and without ever serving a stale output.
//! * **Clustering cache** — finished [`ClusterOutput`]s keyed by
//!   `(dataset, config fingerprint)` with LRU eviction, so a stream of
//!   queries against the same `(graph, LbConfig)` pays for clustering
//!   once. `cluster` is deterministic in `(graph, config)`, which is what
//!   makes the cache sound: a cached output is bit-for-bit the output a
//!   fresh run would produce.
//! * **Persistence** — [`Registry::attach_store`] backs the resident
//!   state with an on-disk [`lbc_store::Store`]: cached outputs spill to
//!   binary snapshots (per [`SpillPolicy`], on insert or on evict),
//!   [`Registry::apply_delta`] appends each delta to the dataset's
//!   write-ahead log *before* swapping the patched graph in, and
//!   [`Registry::boot_from_store`] replays snapshot + WAL tail through
//!   the deterministic warm start, so a restarted (or crashed) server
//!   recovers its exact pre-shutdown labellings instead of re-clustering
//!   cold. Oversized WALs fold into a fresh snapshot
//!   ([`Registry::wal_compact`], auto-triggered past a size threshold).

use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::path::Path;
use std::sync::{Arc, Condvar, Mutex};

use lbc_core::driver::ClusterError;
use lbc_core::{cluster, warm_start, ClusterOutput, LbConfig, Rounds, WarmStartConfig};
use lbc_graph::{io, Graph, GraphDelta};
use lbc_obs::{Counter, EventKind, Obs};
use lbc_store::{encode_record, ReplayPolicy, Store, WalRecord};

use crate::error::RuntimeError;

/// Stable fingerprint of an [`LbConfig`] for cache keying.
///
/// Float fields are keyed by bit pattern, so two configs collide exactly
/// when every field (and therefore the clustering output) is identical.
pub fn config_fingerprint(cfg: &LbConfig) -> String {
    use lbc_core::QueryRule;
    let rounds = match cfg.rounds {
        Rounds::Explicit(t) => format!("e{t}"),
        Rounds::Resolved(t) => format!("r{t}"),
    };
    let query = match cfg.query {
        QueryRule::PaperThreshold => "paper".to_string(),
        QueryRule::ScaledThreshold(c) => format!("scaled:{:016x}", c.to_bits()),
        QueryRule::ArgMax => "argmax".to_string(),
    };
    let degree = match cfg.degree_mode {
        lbc_core::DegreeMode::Regular => "reg".to_string(),
        lbc_core::DegreeMode::Capped(d) => format!("cap{d}"),
        lbc_core::DegreeMode::Auto => "auto".to_string(),
    };
    format!(
        "b{:016x}-{rounds}-s{}-q{query}-d{degree}-t{}",
        cfg.beta.to_bits(),
        cfg.seed,
        cfg.seeding_trials.map_or(-1i64, |t| t as i64),
    )
}

/// Cache counters (monotonic since registry creation).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    pub hits: u64,
    pub misses: u64,
    pub inserts: u64,
    pub evictions: u64,
    /// Cached outputs warm-refreshed in place by [`Registry::apply_delta`]
    /// (each also counts as an insert).
    pub refreshes: u64,
    /// Snapshots spilled to the attached store (0 when detached).
    pub spills: u64,
    /// Cached outputs booted back in from the attached store.
    pub loads: u64,
    /// Current on-disk footprint of the attached store in bytes
    /// (snapshots + WALs; 0 when detached).
    pub store_bytes: u64,
}

impl CacheStats {
    /// Fraction of lookups served from cache, as a percentage
    /// (0 when no lookups happened yet).
    pub fn hit_ratio_percent(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            100.0 * self.hits as f64 / total as f64
        }
    }
}

type CacheKey = (String, String);

struct CacheEntry {
    output: Arc<ClusterOutput>,
    /// The config that produced `output` — kept alongside the
    /// fingerprint so [`Registry::apply_delta`] can re-cluster the
    /// entry without the original caller.
    cfg: LbConfig,
    /// Last-touch tick for LRU eviction.
    tick: u64,
}

/// What [`Registry::apply_delta`] does with the mutated dataset's
/// cached clusterings.
#[derive(Debug, Clone, PartialEq)]
pub enum DeltaPolicy {
    /// Drop them; the next query pays a cold re-clustering.
    Invalidate,
    /// Re-cluster each from its resident states via
    /// [`lbc_core::warm_start`], so the cache stays hot across the
    /// mutation. Entries whose warm start fails fall back to
    /// invalidation.
    WarmRefresh(WarmStartConfig),
}

/// Outcome of one [`Registry::apply_delta`] call.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DeltaReport {
    /// Nodes / undirected edges of the patched graph.
    pub n: usize,
    pub m: usize,
    /// Cached outputs refreshed in place (warm policy only).
    pub refreshed: usize,
    /// Cached outputs dropped (invalidate policy, warm-start failure,
    /// or a racing second mutation).
    pub invalidated: usize,
    /// Total warm rounds across all refreshed entries — the
    /// "rounds to recovery" the serving layer actually paid.
    pub warm_rounds: usize,
    /// Refreshed entries that hit the warm-start round cap without the
    /// movement criterion firing.
    pub unconverged: usize,
}

/// When an attached [`Store`] writes a dataset snapshot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpillPolicy {
    /// Every cache insert rewrites the dataset's snapshot, so the store
    /// continuously mirrors the cache (write-through; the WAL stays
    /// near-empty because each spill folds it).
    OnInsert,
    /// Snapshots are written only when an entry is about to be LRU
    /// evicted (so it survives on disk instead of dying with the
    /// eviction) or on an explicit [`Registry::spill_to_store`] /
    /// [`Registry::wal_compact`]; mutations accumulate in the WAL
    /// until the compaction threshold folds them.
    OnEvict,
}

/// One dataset recovered from the store by [`Registry::boot_from_store`].
#[derive(Debug, Clone)]
pub struct StoreBootReport {
    pub dataset: String,
    /// Nodes / undirected edges after WAL replay.
    pub n: usize,
    pub m: usize,
    /// Cached outputs recovered into the registry.
    pub entries: usize,
    /// WAL records replayed on top of the snapshot (0 = pure snapshot).
    pub wal_records: usize,
    /// Warm rounds executed across all replayed refreshes.
    pub warm_rounds: usize,
    /// Outputs dropped during replay (invalidate records / failed warm
    /// starts).
    pub invalidated: usize,
    /// Bytes of a crash-torn final WAL record that was ignored.
    pub torn_tail_bytes: usize,
    /// The configs of the recovered outputs, in snapshot order.
    pub configs: Vec<LbConfig>,
}

struct StoreAttachment {
    store: Store,
    spill: SpillPolicy,
    /// WAL size (bytes) past which [`Registry::apply_delta`] folds the
    /// log into a fresh snapshot.
    compact_bytes: u64,
}

/// A cache entry displaced by LRU eviction, captured (with the graph it
/// belongs to) so a spill-on-evict store can persist it outside the lock.
struct Evicted {
    dataset: String,
    cfg: LbConfig,
    output: Arc<ClusterOutput>,
    /// The graph registered for `dataset` at eviction time; the spill
    /// is skipped if the dataset has been swapped since (mirroring the
    /// mid-flight guard of `publish_if_current`).
    graph: Arc<Graph>,
}

struct Inner {
    datasets: BTreeMap<String, Arc<Graph>>,
    cache: BTreeMap<CacheKey, CacheEntry>,
    /// Keys currently being clustered by some thread; concurrent misses
    /// on the same key wait instead of duplicating the work.
    in_flight: BTreeSet<CacheKey>,
    tick: u64,
    /// Highest mutation sequence number applied per dataset — the WAL
    /// lineage mirrored in memory so it is observable (and streamable)
    /// even with no store attached. With a store attached the store's
    /// own seq assignment is authoritative and mirrored here.
    seqs: BTreeMap<String, u64>,
    /// Recent encoded WAL records per dataset — the in-memory tail a
    /// node serves to an election winner's promotion-time `WAL_PULL`
    /// even when no store is attached. Only populated on nodes that
    /// replicate (a commit hook is installed, or records arrive via
    /// [`Registry::apply_replicated`]); a standalone registry pays
    /// nothing.
    wal_tails: BTreeMap<String, WalTail>,
}

/// How many encoded WAL records a [`WalTail`] retains per dataset.
/// Reconciliation pulls span the gap between two replicas of the same
/// lineage — a few heartbeats' worth of records — so a few thousand
/// covers any realistic divergence while bounding memory.
const WAL_RETAIN: usize = 4096;

/// Total encoded bytes a [`WalTail`] retains per dataset. Record
/// count alone is no bound when deltas are large — 4096 records of a
/// few MiB each would pin gigabytes on every replicating node — so the
/// tail is trimmed by whichever limit bites first.
const WAL_RETAIN_BYTES: usize = 32 << 20;

/// One dataset's bounded in-memory WAL suffix: `(seq, encoded record)`
/// in seq order, trimmed from the front to respect both the record
/// and the byte cap (the newest record is always kept, even alone
/// over the byte cap — a tail that cannot hold its own latest record
/// would serve nothing).
#[derive(Default)]
struct WalTail {
    records: VecDeque<(u64, Vec<u8>)>,
    /// Sum of the encoded lengths in `records`.
    bytes: usize,
}

impl WalTail {
    fn push(&mut self, seq: u64, bytes: Vec<u8>, max_records: usize, max_bytes: usize) {
        self.bytes += bytes.len();
        self.records.push_back((seq, bytes));
        while self.records.len() > 1 && (self.records.len() > max_records || self.bytes > max_bytes)
        {
            if let Some((_, old)) = self.records.pop_front() {
                self.bytes -= old.len();
            }
        }
    }
}

/// Called under the registry's mutation lock after each committed
/// delta, in sequence order, with `(dataset, seq, encoded WAL record)`
/// — the replication primary's feed. Must not call back into the
/// registry; push the bytes somewhere and return.
pub type CommitHook = Box<dyn Fn(&str, u64, &[u8]) + Send + Sync>;

/// What [`Registry::replication_state`] captures atomically: the
/// dataset's graph, every cached `(config, output)` entry, and the
/// applied-seq watermark they correspond to.
pub type ReplicationState = (Arc<Graph>, Vec<(LbConfig, Arc<ClusterOutput>)>, u64);

/// Thread-safe dataset store + clustering LRU cache.
pub struct Registry {
    inner: Mutex<Inner>,
    /// Signalled whenever an in-flight clustering finishes (either way).
    in_flight_done: Condvar,
    capacity: usize,
    /// Attached persistence backend. Lock order: `inner` before
    /// `store`, everywhere — file I/O happens with only `store` held.
    store: Mutex<Option<StoreAttachment>>,
    /// Commit-notification hook (lock order: after `inner`/`store`).
    commit_hook: Mutex<Option<CommitHook>>,
    /// Node metrics registry these counters are adopted into (and the
    /// ring eviction events land in) once [`Registry::attach_obs`] runs.
    obs: Mutex<Option<Arc<Obs>>>,
    hits: Arc<Counter>,
    misses: Arc<Counter>,
    inserts: Arc<Counter>,
    evictions: Arc<Counter>,
    refreshes: Arc<Counter>,
    spills: Arc<Counter>,
    store_loads: Arc<Counter>,
}

impl Registry {
    /// Registry whose clustering cache holds at most `capacity` outputs.
    ///
    /// # Panics
    /// If `capacity == 0`.
    pub fn with_capacity(capacity: usize) -> Self {
        assert!(capacity > 0, "cache capacity must be positive");
        Registry {
            inner: Mutex::new(Inner {
                datasets: BTreeMap::new(),
                cache: BTreeMap::new(),
                in_flight: BTreeSet::new(),
                tick: 0,
                seqs: BTreeMap::new(),
                wal_tails: BTreeMap::new(),
            }),
            in_flight_done: Condvar::new(),
            capacity,
            store: Mutex::new(None),
            commit_hook: Mutex::new(None),
            obs: Mutex::new(None),
            hits: Arc::new(Counter::new()),
            misses: Arc::new(Counter::new()),
            inserts: Arc::new(Counter::new()),
            evictions: Arc::new(Counter::new()),
            refreshes: Arc::new(Counter::new()),
            spills: Arc::new(Counter::new()),
            store_loads: Arc::new(Counter::new()),
        }
    }

    /// Adopt this registry's cache counters into a node's metrics
    /// registry (under `cache_*` names) and route eviction events to
    /// its ring. The counters are the same atomics [`Registry::stats`]
    /// reads — one source of truth for both surfaces.
    pub fn attach_obs(&self, obs: Arc<Obs>) {
        obs.register_counter("cache_hits_total", Arc::clone(&self.hits));
        obs.register_counter("cache_misses_total", Arc::clone(&self.misses));
        obs.register_counter("cache_inserts_total", Arc::clone(&self.inserts));
        obs.register_counter("cache_evictions_total", Arc::clone(&self.evictions));
        obs.register_counter("cache_refreshes_total", Arc::clone(&self.refreshes));
        obs.register_counter("cache_spills_total", Arc::clone(&self.spills));
        obs.register_counter("cache_store_loads_total", Arc::clone(&self.store_loads));
        if let Some(att) = self.store.lock().unwrap().as_ref() {
            att.store.register_obs(Arc::clone(&obs));
        }
        *self.obs.lock().unwrap() = Some(obs);
    }

    /// Maximum number of cached clustering outputs.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Register a graph under `name`, returning the shared handle.
    /// Re-registering a name replaces the graph and drops every cached
    /// clustering of that name, so stale outputs are never served.
    pub fn insert_graph(&self, name: &str, graph: Graph) -> Arc<Graph> {
        let shared = Arc::new(graph);
        let mut inner = self.inner.lock().unwrap();
        if inner.datasets.contains_key(name) {
            inner.cache.retain(|(ds, _), _| ds != name);
        }
        inner.datasets.insert(name.to_string(), Arc::clone(&shared));
        shared
    }

    /// Load an edge-list file (see [`lbc_graph::io`]) and register it.
    pub fn load_graph_file(&self, name: &str, path: &str) -> Result<Arc<Graph>, RuntimeError> {
        let f = std::fs::File::open(path)
            .map_err(|e| RuntimeError::Graph(format!("cannot open {path}: {e}")))?;
        let g = io::read_edge_list(std::io::BufReader::new(f))?;
        Ok(self.insert_graph(name, g))
    }

    /// Shared handle to a registered graph.
    pub fn graph(&self, name: &str) -> Result<Arc<Graph>, RuntimeError> {
        self.inner
            .lock()
            .unwrap()
            .datasets
            .get(name)
            .cloned()
            .ok_or_else(|| RuntimeError::UnknownDataset(name.to_string()))
    }

    /// Names of all registered datasets.
    pub fn dataset_names(&self) -> Vec<String> {
        self.inner
            .lock()
            .unwrap()
            .datasets
            .keys()
            .cloned()
            .collect()
    }

    /// Highest mutation sequence number applied to `name` (0 for a
    /// fresh or unknown dataset) — the replication watermark a client
    /// compares across nodes to observe lag.
    pub fn applied_seq(&self, name: &str) -> u64 {
        self.inner
            .lock()
            .unwrap()
            .seqs
            .get(name)
            .copied()
            .unwrap_or(0)
    }

    /// Install the commit-notification hook: after every committed
    /// mutation (local or replicated), it is called under the mutation
    /// lock — so strictly in seq order — with the dataset name, the
    /// assigned seq, and the encoded WAL record. The replication
    /// primary uses this as its streaming feed. The hook must not call
    /// back into the registry.
    pub fn set_commit_hook(&self, hook: CommitHook) {
        *self.commit_hook.lock().unwrap() = Some(hook);
    }

    /// Remove the commit-notification hook.
    pub fn clear_commit_hook(&self) {
        *self.commit_hook.lock().unwrap() = None;
    }

    /// Adopt a complete dataset state received from a replication
    /// primary: register the graph, quietly insert every cached output
    /// (no spill hooks — this state is the primary's, not ours to
    /// persist), and pin the seq lineage at `applied_seq` so
    /// subsequently streamed records land on the exact watermark the
    /// snapshot was cut at.
    pub fn adopt_state(
        &self,
        name: &str,
        graph: Graph,
        entries: Vec<(LbConfig, ClusterOutput)>,
        applied_seq: u64,
    ) -> Arc<Graph> {
        let shared = Arc::new(graph);
        let mut inner = self.inner.lock().unwrap();
        inner.cache.retain(|(ds, _), _| ds != name);
        inner.datasets.insert(name.to_string(), Arc::clone(&shared));
        inner.seqs.insert(name.to_string(), applied_seq);
        // The adopted snapshot supersedes any retained tail: records
        // from the old lineage must not answer pulls against the new.
        inner.wal_tails.remove(name);
        for (cfg, out) in entries {
            let evicted = self.insert_locked(&mut inner, name, &cfg, Arc::new(out));
            drop(evicted);
        }
        shared
    }

    /// Atomically capture `name`'s complete resident state — graph,
    /// every cached output, applied seq — under the mutation lock, so
    /// the watermark and the state agree exactly. The replication
    /// primary cuts its streamed snapshot from this: a commit hook
    /// registered *before* the call is guaranteed to have queued every
    /// record with seq past the returned watermark. Entries come out in
    /// cache-key order (deterministic across calls).
    pub fn replication_state(&self, name: &str) -> Result<ReplicationState, RuntimeError> {
        let inner = self.inner.lock().unwrap();
        let graph = inner
            .datasets
            .get(name)
            .cloned()
            .ok_or_else(|| RuntimeError::UnknownDataset(name.to_string()))?;
        let entries = inner
            .cache
            .iter()
            .filter(|((ds, _), _)| ds == name)
            .map(|(_, e)| (e.cfg.clone(), Arc::clone(&e.output)))
            .collect();
        let seq = inner.seqs.get(name).copied().unwrap_or(0);
        Ok((graph, entries, seq))
    }

    /// WAL records with seq > `after` for `name` from the attached
    /// store, in seq order — empty when no store is attached, the
    /// dataset is not persisted, or the log has been compacted past
    /// `after`. The replication primary's reconnect catch-up: a
    /// follower that already holds a prefix of the lineage gets just
    /// the tail instead of a full snapshot (when the tail is whole).
    pub fn wal_tail_after(&self, name: &str, after: u64) -> Vec<WalRecord> {
        let guard = self.store.lock().unwrap();
        match guard.as_ref() {
            Some(att) if att.store.contains(name) => {
                att.store.wal_records_after(name, after).unwrap_or_default()
            }
            _ => Vec::new(),
        }
    }

    /// Encoded WAL records with seq > `after` for `name`, in seq
    /// order, contiguous from `after + 1` — what a node answers an
    /// election winner's promotion-time `WAL_PULL` with. Prefers the
    /// bounded in-memory tail (present on every replicating node, even
    /// storeless ones); falls back to the attached store's log.
    /// Returns empty when the suffix cannot be served contiguously —
    /// the puller treats that as "nothing usable here", never applies
    /// a gapped suffix.
    pub fn wal_suffix_after(&self, name: &str, after: u64) -> Vec<Vec<u8>> {
        {
            let inner = self.inner.lock().unwrap();
            if let Some(tail) = inner.wal_tails.get(name) {
                if let Some(&(front_seq, _)) = tail.records.front() {
                    if front_seq <= after + 1 {
                        return tail
                            .records
                            .iter()
                            .filter(|(seq, _)| *seq > after)
                            .map(|(_, bytes)| bytes.clone())
                            .collect();
                    }
                }
            }
        }
        let records = self.wal_tail_after(name, after);
        let contiguous = records.first().map(|r| r.seq == after + 1).unwrap_or(false)
            && records.windows(2).all(|w| w[1].seq == w[0].seq + 1);
        if contiguous {
            records.iter().map(encode_record).collect()
        } else {
            Vec::new()
        }
    }

    /// Cached output for `(name, cfg)`, touching its LRU slot.
    pub fn cached(&self, name: &str, cfg: &LbConfig) -> Option<Arc<ClusterOutput>> {
        let key = (name.to_string(), config_fingerprint(cfg));
        let mut inner = self.inner.lock().unwrap();
        inner.tick += 1;
        let tick = inner.tick;
        match inner.cache.get_mut(&key) {
            Some(entry) => {
                entry.tick = tick;
                self.hits.inc();
                Some(Arc::clone(&entry.output))
            }
            None => {
                self.misses.inc();
                None
            }
        }
    }

    /// Insert a finished clustering output, evicting the least-recently
    /// used entry if the cache is full.
    pub fn insert_output(&self, name: &str, cfg: &LbConfig, output: Arc<ClusterOutput>) {
        let evicted = {
            let mut inner = self.inner.lock().unwrap();
            self.insert_locked(&mut inner, name, cfg, output)
        };
        self.post_cache_change(name, evicted);
    }

    /// The insert + LRU-evict body, run under an already-held lock so
    /// callers can make it atomic with other checks (see
    /// [`Registry::publish_if_current`]). Returns the displaced entries
    /// so the caller can offer them to a spill-on-evict store once the
    /// lock is released.
    fn insert_locked(
        &self,
        inner: &mut Inner,
        name: &str,
        cfg: &LbConfig,
        output: Arc<ClusterOutput>,
    ) -> Vec<Evicted> {
        let key = (name.to_string(), config_fingerprint(cfg));
        inner.tick += 1;
        let tick = inner.tick;
        inner.cache.insert(
            key,
            CacheEntry {
                output,
                cfg: cfg.clone(),
                tick,
            },
        );
        self.inserts.inc();
        let mut evicted = Vec::new();
        while inner.cache.len() > self.capacity {
            let lru = inner
                .cache
                .iter()
                .min_by_key(|(_, e)| e.tick)
                .map(|(k, _)| k.clone())
                .expect("cache over capacity implies non-empty");
            let entry = inner.cache.remove(&lru).expect("lru key just observed");
            self.evictions.inc();
            if let Some(graph) = inner.datasets.get(&lru.0) {
                evicted.push(Evicted {
                    dataset: lru.0,
                    cfg: entry.cfg,
                    output: entry.output,
                    graph: Arc::clone(graph),
                });
            }
        }
        evicted
    }

    /// Atomically publish `output` for `(name, cfg)` **iff** `graph` is
    /// still the graph registered under `name` — the check and the
    /// insert share one lock scope, so a concurrent dataset replacement
    /// (re-registration or a racing [`Registry::apply_delta`]) can
    /// never interleave between them and leave a stale output cached.
    /// Returns whether the output was published.
    fn publish_if_current(
        &self,
        name: &str,
        graph: &Arc<Graph>,
        cfg: &LbConfig,
        output: Arc<ClusterOutput>,
    ) -> bool {
        let (still_current, evicted) = {
            let mut inner = self.inner.lock().unwrap();
            let still_current = inner
                .datasets
                .get(name)
                .is_some_and(|g| Arc::ptr_eq(g, graph));
            let evicted = if still_current {
                self.insert_locked(&mut inner, name, cfg, output)
            } else {
                Vec::new()
            };
            (still_current, evicted)
        };
        if still_current {
            self.post_cache_change(name, evicted);
        }
        still_current
    }

    /// Best-effort store maintenance after a cache mutation (runs with
    /// no lock held; takes `inner` then `store` internally). Spill
    /// failures are swallowed — persistence is a cache of the cache;
    /// use [`Registry::spill_to_store`] to surface errors explicitly.
    fn post_cache_change(&self, inserted: &str, evicted: Vec<Evicted>) {
        if !evicted.is_empty() {
            let obs = self.obs.lock().unwrap().clone();
            if let Some(obs) = obs {
                for ev in &evicted {
                    obs.events.record(
                        EventKind::Eviction,
                        format!("{} seed {}", ev.dataset, ev.cfg.seed),
                    );
                }
            }
        }
        let policy = {
            let guard = self.store.lock().unwrap();
            guard.as_ref().map(|a| a.spill)
        };
        match policy {
            None => {}
            Some(SpillPolicy::OnInsert) => {
                let _ = self.spill_dataset(inserted, &[]);
            }
            Some(SpillPolicy::OnEvict) => {
                let mut by_dataset: BTreeMap<String, Vec<Evicted>> = BTreeMap::new();
                for ev in evicted {
                    by_dataset.entry(ev.dataset.clone()).or_default().push(ev);
                }
                for (dataset, group) in by_dataset {
                    let _ = self.spill_dataset(&dataset, &group);
                }
            }
        }
    }

    /// Write a fresh snapshot of `name` (current graph + its cached
    /// outputs + any still-current `extras`) and fold the WAL prefix
    /// it covers. Returns the snapshot size in bytes.
    fn spill_dataset(&self, name: &str, extras: &[Evicted]) -> Result<u64, RuntimeError> {
        // State capture and the WAL fold point are taken under `inner`
        // (so no mutation can slip between them), but the snapshot
        // write itself runs with only the store lock held.
        let store_guard;
        let graph;
        let mut entries: Vec<(LbConfig, Arc<ClusterOutput>)>;
        let wal_mark;
        {
            let inner = self.inner.lock().unwrap();
            store_guard = self.store.lock().unwrap();
            let Some(att) = store_guard.as_ref() else {
                return Err(RuntimeError::InvalidConfig("no store attached".into()));
            };
            let Some(g) = inner.datasets.get(name) else {
                return Err(RuntimeError::UnknownDataset(name.to_string()));
            };
            graph = Arc::clone(g);
            entries = inner
                .cache
                .iter()
                .filter(|((ds, _), _)| ds == name)
                .map(|(_, e)| (e.cfg.clone(), Arc::clone(&e.output)))
                .collect();
            for ev in extras {
                let fresh = ev.dataset == name
                    && Arc::ptr_eq(&ev.graph, &graph)
                    && !entries
                        .iter()
                        .any(|(c, _)| config_fingerprint(c) == config_fingerprint(&ev.cfg));
                if fresh {
                    entries.push((ev.cfg.clone(), Arc::clone(&ev.output)));
                }
            }
            wal_mark = att.store.last_seq(name).unwrap_or(0);
        }
        let att = store_guard.as_ref().expect("checked above");
        // Under spill-on-evict the store may hold outputs that are in
        // neither the cache nor `extras` (persisted by earlier
        // evictions); a rewrite must not destroy them. Replay the
        // stored state — the store lock is held, so no append can race
        // — and merge every output that still belongs to the current
        // graph and isn't superseded by a resident entry. (Under
        // write-through spill-on-insert the store mirrors the cache by
        // design, so there is nothing extra to preserve.)
        if att.spill == SpillPolicy::OnEvict && att.store.contains(name) {
            if let Ok((stored, _)) = att.store.load(name) {
                if stored.graph == *graph {
                    for (cfg, out) in stored.entries {
                        let fp = config_fingerprint(&cfg);
                        if !entries.iter().any(|(c, _)| config_fingerprint(c) == fp) {
                            entries.push((cfg, Arc::new(out)));
                        }
                    }
                }
            }
        }
        let bytes = att
            .store
            .save(
                name,
                &graph,
                entries.iter().map(|(c, o)| (c, o.as_ref())),
                wal_mark,
            )
            .map_err(RuntimeError::from)?;
        self.spills.inc();
        Ok(bytes)
    }

    /// Cached output for `(name, cfg)`, clustering inline on a miss.
    ///
    /// Concurrent misses on the same key are deduplicated: the first
    /// caller clusters, later callers block until the result lands in
    /// the cache (if the first run fails, one waiter takes over). The
    /// worker pool ([`crate::scheduler::WorkerPool`]) runs its jobs
    /// through the same dedup and produces bit-for-bit identical
    /// outputs.
    pub fn get_or_cluster(
        &self,
        name: &str,
        cfg: &LbConfig,
    ) -> Result<Arc<ClusterOutput>, RuntimeError> {
        let graph = self.graph(name)?;
        self.get_or_cluster_on(name, &graph, cfg)
            .map_err(RuntimeError::Cluster)
    }

    /// Test hook: whether `graph` is currently registered under `name`.
    #[cfg(test)]
    fn is_current(&self, name: &str, graph: &Arc<Graph>) -> bool {
        self.inner
            .lock()
            .unwrap()
            .datasets
            .get(name)
            .is_some_and(|g| Arc::ptr_eq(g, graph))
    }

    /// [`Registry::get_or_cluster`] with the graph already resolved
    /// (the worker pool holds its own `Arc<Graph>` per job).
    ///
    /// The result is published to the cache only if `graph` is still
    /// the graph registered under `name` when the clustering finishes —
    /// a dataset replaced mid-flight gets its result returned to the
    /// caller but never cached, so the cache cannot serve outputs of a
    /// graph that is no longer registered.
    pub fn get_or_cluster_on(
        &self,
        name: &str,
        graph: &Arc<Graph>,
        cfg: &LbConfig,
    ) -> Result<Arc<ClusterOutput>, ClusterError> {
        let key = (name.to_string(), config_fingerprint(cfg));
        {
            let mut inner = self.inner.lock().unwrap();
            loop {
                inner.tick += 1;
                let tick = inner.tick;
                if let Some(entry) = inner.cache.get_mut(&key) {
                    entry.tick = tick;
                    self.hits.inc();
                    return Ok(Arc::clone(&entry.output));
                }
                if inner.in_flight.contains(&key) {
                    inner = self.in_flight_done.wait(inner).unwrap();
                    continue; // recheck: result cached, or the run failed
                }
                inner.in_flight.insert(key.clone());
                self.misses.inc();
                break;
            }
        }
        // Clear the in-flight marker however the clustering ends (even
        // on panic), so waiters never hang.
        struct InFlightGuard<'r> {
            registry: &'r Registry,
            key: CacheKey,
        }
        impl Drop for InFlightGuard<'_> {
            fn drop(&mut self) {
                self.registry
                    .inner
                    .lock()
                    .unwrap()
                    .in_flight
                    .remove(&self.key);
                self.registry.in_flight_done.notify_all();
            }
        }
        let guard = InFlightGuard {
            registry: self,
            key,
        };
        let out = Arc::new(cluster(graph.as_ref(), cfg)?);
        self.publish_if_current(name, graph, cfg, Arc::clone(&out));
        drop(guard);
        Ok(out)
    }

    /// Number of cached clustering outputs.
    pub fn cached_len(&self) -> usize {
        self.inner.lock().unwrap().cache.len()
    }

    /// Total resident footprint of the cached outputs, in machine words
    /// (see [`ClusterOutput::resident_words`]) — what the LRU cache is
    /// actually pinning in memory.
    pub fn resident_words(&self) -> usize {
        self.inner
            .lock()
            .unwrap()
            .cache
            .values()
            .map(|e| e.output.resident_words())
            .sum()
    }

    /// Cache counters.
    pub fn stats(&self) -> CacheStats {
        let store_bytes = self
            .store
            .lock()
            .unwrap()
            .as_ref()
            .map_or(0, |a| a.store.total_bytes());
        CacheStats {
            hits: self.hits.get(),
            misses: self.misses.get(),
            inserts: self.inserts.get(),
            evictions: self.evictions.get(),
            refreshes: self.refreshes.get(),
            spills: self.spills.get(),
            loads: self.store_loads.get(),
            store_bytes,
        }
    }

    /// Back this registry with an on-disk store at `dir` (created if
    /// absent), with the default 1 MiB WAL-compaction threshold.
    pub fn attach_store(
        &self,
        dir: impl AsRef<Path>,
        spill: SpillPolicy,
    ) -> Result<(), RuntimeError> {
        self.attach_store_with(dir, spill, 1 << 20)
    }

    /// [`Registry::attach_store`] with an explicit WAL size (bytes)
    /// past which [`Registry::apply_delta`] folds the log into a fresh
    /// snapshot.
    pub fn attach_store_with(
        &self,
        dir: impl AsRef<Path>,
        spill: SpillPolicy,
        compact_bytes: u64,
    ) -> Result<(), RuntimeError> {
        let store = Store::open(dir).map_err(RuntimeError::from)?;
        // An already-attached node registry flows through to the store's
        // own metric handles (and vice versa in `attach_obs`).
        if let Some(obs) = self.obs.lock().unwrap().clone() {
            store.register_obs(obs);
        }
        *self.store.lock().unwrap() = Some(StoreAttachment {
            store,
            spill,
            compact_bytes,
        });
        Ok(())
    }

    /// Whether a store is attached.
    pub fn store_attached(&self) -> bool {
        self.store.lock().unwrap().is_some()
    }

    /// Whether the attached store holds a snapshot for `name`.
    pub fn has_store_dataset(&self, name: &str) -> bool {
        self.store
            .lock()
            .unwrap()
            .as_ref()
            .is_some_and(|a| a.store.contains(name))
    }

    /// Dataset names present in the attached store.
    pub fn store_dataset_names(&self) -> Result<Vec<String>, RuntimeError> {
        let guard = self.store.lock().unwrap();
        let att = guard
            .as_ref()
            .ok_or_else(|| RuntimeError::InvalidConfig("no store attached".into()))?;
        att.store.dataset_names().map_err(RuntimeError::from)
    }

    /// Explicitly snapshot `name` (graph + its cached outputs) to the
    /// attached store, folding the covered WAL. Returns the snapshot
    /// size in bytes.
    pub fn spill_to_store(&self, name: &str) -> Result<u64, RuntimeError> {
        self.spill_dataset(name, &[])
    }

    /// Fold `name`'s WAL into a fresh snapshot of the resident state —
    /// the explicit form of the compaction [`Registry::apply_delta`]
    /// triggers automatically past the attachment's size threshold.
    pub fn wal_compact(&self, name: &str) -> Result<u64, RuntimeError> {
        self.spill_dataset(name, &[])
    }

    /// Recover dataset `name` from the attached store: read its
    /// snapshot, replay the WAL tail (patching the graph and re-running
    /// the identical deterministic warm starts), register the recovered
    /// graph, and re-insert every recovered output into the cache — the
    /// warm-restart path. With an empty WAL this runs **zero** warm
    /// rounds and the recovered outputs are bit-for-bit the saved ones.
    ///
    /// The on-disk state is left intact while entries stream into the
    /// cache (no per-insert spills), so a crash mid-boot loses nothing;
    /// once everything is resident, a replayed (or crash-torn) WAL is
    /// folded into one fresh snapshot of the *complete* recovered
    /// state, so the next boot is a pure snapshot read.
    pub fn boot_from_store(&self, name: &str) -> Result<StoreBootReport, RuntimeError> {
        let (state, replay, wal_mark) = {
            let guard = self.store.lock().unwrap();
            let att = guard
                .as_ref()
                .ok_or_else(|| RuntimeError::InvalidConfig("no store attached".into()))?;
            let (state, replay) = att.store.load(name).map_err(RuntimeError::from)?;
            let mark = state.applied_seq;
            (state, replay, mark)
        };
        let (n, m) = (state.graph.n(), state.graph.m());
        let entries: Vec<(LbConfig, Arc<ClusterOutput>)> = state
            .entries
            .into_iter()
            .map(|(cfg, out)| (cfg, Arc::new(out)))
            .collect();
        let graph_for_fold =
            (replay.wal_records > 0 || replay.torn_tail_bytes > 0).then(|| state.graph.clone());
        self.insert_graph(name, state.graph);
        // The recovered state is current to the replayed watermark;
        // future mutations (and replication streams) continue from it.
        self.inner
            .lock()
            .unwrap()
            .seqs
            .insert(name.to_string(), wal_mark);
        let mut configs = Vec::with_capacity(entries.len());
        let entry_count = entries.len();
        for (cfg, out) in &entries {
            // Quiet insert: no spill hooks — the store already holds
            // this state, and rewriting it per entry would both waste
            // N snapshot writes and, worse, narrow the durable state
            // to whatever happened to be inserted before a crash.
            let evicted = {
                let mut inner = self.inner.lock().unwrap();
                self.insert_locked(&mut inner, name, cfg, Arc::clone(out))
            };
            drop(evicted);
            self.store_loads.inc();
            configs.push(cfg.clone());
        }
        if let Some(graph) = graph_for_fold {
            // Fold the replayed records (and any torn tail) into one
            // snapshot of the complete recovered state — written from
            // the boot's own entry list, not the cache, so entries the
            // LRU displaced during the inserts above stay durable. The
            // fold point `wal_mark` protects appends racing this boot.
            let guard = self.store.lock().unwrap();
            if let Some(att) = guard.as_ref() {
                let saved = att.store.save(
                    name,
                    &graph,
                    entries.iter().map(|(c, o)| (c, o.as_ref())),
                    wal_mark,
                );
                if saved.is_ok() {
                    self.spills.inc();
                }
            }
        }
        Ok(StoreBootReport {
            dataset: name.to_string(),
            n,
            m,
            entries: entry_count,
            wal_records: replay.wal_records,
            warm_rounds: replay.warm_rounds,
            invalidated: replay.invalidated,
            torn_tail_bytes: replay.torn_tail_bytes,
            configs,
        })
    }

    /// [`Registry::boot_from_store`] for every dataset in the store.
    pub fn boot_all_from_store(&self) -> Result<Vec<StoreBootReport>, RuntimeError> {
        self.store_dataset_names()?
            .iter()
            .map(|name| self.boot_from_store(name))
            .collect()
    }

    /// Mutate the dataset `name` by `delta` and deal with its cached
    /// clusterings per `policy` — the serving path for dynamic graphs:
    /// a live registry absorbs edge/node updates without ever serving a
    /// stale output, and (under [`DeltaPolicy::WarmRefresh`]) without
    /// paying a cold `T`-round re-clustering either, because each
    /// entry's resident states seed an incremental
    /// [`lbc_core::warm_start`].
    ///
    /// The graph swap and cache take-out are atomic (one lock scope);
    /// warm refreshes then run unlocked, so concurrent readers keep
    /// being served — they see either a (valid) pre-delta output
    /// before the swap or a miss afterwards, never a stale entry. A
    /// refreshed output is published only if the patched graph is
    /// still the registered one, mirroring the mid-flight replacement
    /// guard of [`Registry::get_or_cluster_on`].
    pub fn apply_delta(
        &self,
        name: &str,
        delta: &GraphDelta,
        policy: &DeltaPolicy,
    ) -> Result<DeltaReport, RuntimeError> {
        self.apply_delta_at(name, delta, policy, None)
    }

    /// Apply a replicated WAL record exactly as the primary committed
    /// it: same delta, same policy, same seq — through the identical
    /// deterministic warm-start path, so a follower's refreshed
    /// outputs match the primary's bit for bit.
    pub fn apply_replicated(
        &self,
        name: &str,
        record: &WalRecord,
    ) -> Result<DeltaReport, RuntimeError> {
        let policy = match &record.policy {
            ReplayPolicy::Invalidate => DeltaPolicy::Invalidate,
            ReplayPolicy::WarmRefresh(wcfg) => DeltaPolicy::WarmRefresh(wcfg.clone()),
        };
        self.apply_delta_at(name, &record.delta, &policy, Some(record.seq))
    }

    fn apply_delta_at(
        &self,
        name: &str,
        delta: &GraphDelta,
        policy: &DeltaPolicy,
        forced_seq: Option<u64>,
    ) -> Result<DeltaReport, RuntimeError> {
        // Phase 1, locked: patch, log, swap, take this dataset's
        // entries out.
        let (patched, taken) = {
            let mut inner = self.inner.lock().unwrap();
            let old = inner
                .datasets
                .get(name)
                .cloned()
                .ok_or_else(|| RuntimeError::UnknownDataset(name.to_string()))?;
            let patched = Arc::new(old.apply_delta(delta)?);
            let replay = match policy {
                DeltaPolicy::Invalidate => ReplayPolicy::Invalidate,
                DeltaPolicy::WarmRefresh(wcfg) => ReplayPolicy::WarmRefresh(wcfg.clone()),
            };
            // A replicated record carries the primary's seq; local
            // mutations continue the in-memory lineage. Either way the
            // durable log's own assignment, when one happens, is
            // authoritative (it agrees by construction except after
            // out-of-band tampering with the store directory).
            let mut seq =
                forced_seq.unwrap_or_else(|| inner.seqs.get(name).copied().unwrap_or(0) + 1);
            {
                // Write-ahead: the delta reaches the WAL after it has
                // validated against the old graph but *before* the swap
                // becomes visible, under the same lock scope — so the
                // on-disk log replays to exactly the sequence of graphs
                // this registry served, and a failed append aborts the
                // mutation instead of losing it.
                let store_guard = self.store.lock().unwrap();
                if let Some(att) = store_guard.as_ref() {
                    if att.store.contains(name) {
                        let (s, _) = att
                            .store
                            .append_delta_seq(name, &replay, delta)
                            .map_err(RuntimeError::from)?;
                        seq = s;
                    }
                }
            }
            inner
                .datasets
                .insert(name.to_string(), Arc::clone(&patched));
            inner.seqs.insert(name.to_string(), seq);
            {
                // Commit notification, still under the mutation lock so
                // hooks observe records strictly in seq order — the
                // replication primary's streaming feed. Replicating
                // nodes (hook installed, or record arrived replicated)
                // also retain the encoded record in the bounded
                // in-memory tail that answers promotion-time WAL pulls.
                let hook_guard = self.commit_hook.lock().unwrap();
                if hook_guard.is_some() || forced_seq.is_some() {
                    let record = WalRecord {
                        seq,
                        policy: replay,
                        delta: delta.clone(),
                    };
                    let bytes = encode_record(&record);
                    if let Some(hook) = hook_guard.as_ref() {
                        hook(name, seq, &bytes);
                    }
                    inner.wal_tails.entry(name.to_string()).or_default().push(
                        seq,
                        bytes,
                        WAL_RETAIN,
                        WAL_RETAIN_BYTES,
                    );
                }
            }
            let keys: Vec<CacheKey> = inner
                .cache
                .keys()
                .filter(|(ds, _)| ds == name)
                .cloned()
                .collect();
            let taken: Vec<CacheEntry> = keys
                .into_iter()
                .filter_map(|k| inner.cache.remove(&k))
                .collect();
            (patched, taken)
        };
        let mut report = DeltaReport {
            n: patched.n(),
            m: patched.m(),
            ..DeltaReport::default()
        };
        // Phase 2, unlocked: refresh (or drop) each taken entry.
        match policy {
            DeltaPolicy::Invalidate => report.invalidated = taken.len(),
            DeltaPolicy::WarmRefresh(wcfg) => {
                for entry in taken {
                    match warm_start(&patched, &entry.cfg, &entry.output, delta, wcfg) {
                        Ok(w) => {
                            // Check-and-insert in one lock scope: a
                            // racing second apply_delta that swapped
                            // the graph again must invalidate, never
                            // let this older refresh land.
                            if self.publish_if_current(
                                name,
                                &patched,
                                &entry.cfg,
                                Arc::new(w.output),
                            ) {
                                self.refreshes.inc();
                                report.refreshed += 1;
                                report.warm_rounds += w.rounds_run;
                                report.unconverged += usize::from(!w.converged);
                            } else {
                                report.invalidated += 1;
                            }
                        }
                        Err(_) => report.invalidated += 1,
                    }
                }
            }
        }
        // An oversized WAL folds into a fresh snapshot of the (now
        // refreshed) resident state.
        let needs_compaction = {
            let guard = self.store.lock().unwrap();
            guard.as_ref().is_some_and(|a| {
                a.store.contains(name) && a.store.wal_bytes(name) > a.compact_bytes
            })
        };
        if needs_compaction {
            let _ = self.wal_compact(name);
        }
        Ok(report)
    }

    /// Apply a whole stream of deltas as **one** mutation: the batch is
    /// coalesced ([`GraphDelta::coalesce`]) into a single net delta, so
    /// the dataset pays one CSR patch, one WAL record, and one
    /// warm-start pass per cached entry instead of one each per delta —
    /// the amortisation the ROADMAP's "delta streams" follow-up asked
    /// for. The patched graph is exactly the graph that applying the
    /// stream one-by-one would produce (but atomically: a delta that
    /// would fail mid-stream fails the whole batch up front, leaving
    /// the dataset untouched).
    pub fn apply_delta_stream(
        &self,
        name: &str,
        deltas: &[GraphDelta],
        policy: &DeltaPolicy,
    ) -> Result<DeltaReport, RuntimeError> {
        let graph = self.graph(name)?;
        let coalesced = GraphDelta::coalesce(&graph, deltas)?;
        self.apply_delta(name, &coalesced, policy)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lbc_graph::generators;

    use crate::error::RuntimeError;

    fn registry_with_ring(name: &str) -> Registry {
        let r = Registry::with_capacity(2);
        let (g, _) = generators::ring_of_cliques(2, 10, 0).unwrap();
        r.insert_graph(name, g);
        r
    }

    #[test]
    fn fingerprint_separates_configs() {
        let a = LbConfig::new(0.5, 10).with_seed(1);
        let b = LbConfig::new(0.5, 10).with_seed(2);
        let c = LbConfig::new(0.25, 10).with_seed(1);
        assert_ne!(config_fingerprint(&a), config_fingerprint(&b));
        assert_ne!(config_fingerprint(&a), config_fingerprint(&c));
        assert_eq!(config_fingerprint(&a), config_fingerprint(&a.clone()));
    }

    #[test]
    fn unknown_dataset_is_an_error() {
        let r = Registry::with_capacity(1);
        assert!(matches!(
            r.graph("nope"),
            Err(RuntimeError::UnknownDataset(_))
        ));
        let cfg = LbConfig::new(0.5, 5);
        assert!(r.get_or_cluster("nope", &cfg).is_err());
    }

    #[test]
    fn cache_hit_after_miss() {
        let r = registry_with_ring("ring");
        let cfg = LbConfig::new(0.5, 20).with_seed(3);
        assert!(r.cached("ring", &cfg).is_none());
        let a = r.get_or_cluster("ring", &cfg).unwrap();
        let b = r.get_or_cluster("ring", &cfg).unwrap();
        assert!(Arc::ptr_eq(&a, &b), "second fetch must be the cached Arc");
        let s = r.stats();
        assert_eq!(s.hits, 1);
        assert_eq!(s.misses, 2); // explicit probe + the first get_or_cluster
        assert_eq!(s.inserts, 1);
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let r = registry_with_ring("ring");
        let cfgs: Vec<LbConfig> = (0..3)
            .map(|s| LbConfig::new(0.5, 20).with_seed(s))
            .collect();
        let _ = r.get_or_cluster("ring", &cfgs[0]).unwrap();
        let _ = r.get_or_cluster("ring", &cfgs[1]).unwrap();
        // Touch cfg 0 so cfg 1 becomes the LRU victim.
        assert!(r.cached("ring", &cfgs[0]).is_some());
        let _ = r.get_or_cluster("ring", &cfgs[2]).unwrap();
        assert_eq!(r.cached_len(), 2);
        assert!(r.cached("ring", &cfgs[0]).is_some());
        assert!(r.cached("ring", &cfgs[1]).is_none(), "cfg 1 was evicted");
        assert_eq!(r.stats().evictions, 1);
    }

    #[test]
    fn replacing_a_dataset_invalidates_its_cache() {
        let r = registry_with_ring("ring");
        let cfg = LbConfig::new(0.5, 20).with_seed(3);
        let stale = r.get_or_cluster("ring", &cfg).unwrap();
        // Replace with a different graph under the same name.
        let (g2, _) = generators::ring_of_cliques(3, 10, 0).unwrap();
        r.insert_graph("ring", g2);
        assert!(
            r.cached("ring", &cfg).is_none(),
            "stale clustering survived dataset replacement"
        );
        let fresh = r.get_or_cluster("ring", &cfg).unwrap();
        assert_ne!(stale.partition.n(), fresh.partition.n());
    }

    #[test]
    fn mid_flight_dataset_replacement_is_not_published() {
        let r = registry_with_ring("ring");
        let cfg = LbConfig::new(0.5, 20).with_seed(6);
        // Simulate a clustering that was resolved before the dataset
        // was replaced: hold the old Arc, swap the dataset, then finish.
        let old = r.graph("ring").unwrap();
        let (g2, _) = generators::ring_of_cliques(3, 10, 0).unwrap();
        r.insert_graph("ring", g2);
        assert!(!r.is_current("ring", &old));
        let out = r.get_or_cluster_on("ring", &old, &cfg).unwrap();
        // The caller gets its (old-graph) result, but the cache must
        // not serve it under the replaced dataset's name.
        assert_eq!(out.partition.n(), old.n());
        assert!(r.cached("ring", &cfg).is_none());
        // A fresh request clusters the new graph.
        let fresh = r.get_or_cluster("ring", &cfg).unwrap();
        assert_eq!(fresh.partition.n(), 30);
    }

    #[test]
    fn concurrent_misses_cluster_once() {
        let r = Arc::new(registry_with_ring("ring"));
        let cfg = LbConfig::new(0.5, 200).with_seed(4);
        let outputs: Vec<Arc<ClusterOutput>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..8)
                .map(|_| {
                    let r = Arc::clone(&r);
                    let cfg = cfg.clone();
                    scope.spawn(move || r.get_or_cluster("ring", &cfg).unwrap())
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        // Exactly one clustering ran; everyone shares its Arc.
        assert_eq!(r.stats().inserts, 1);
        for out in &outputs[1..] {
            assert!(Arc::ptr_eq(&outputs[0], out));
        }
    }

    #[test]
    fn apply_delta_invalidate_drops_cached_outputs() {
        let r = registry_with_ring("ring");
        let cfg = LbConfig::new(0.5, 20).with_seed(3);
        let _ = r.get_or_cluster("ring", &cfg).unwrap();
        let mut d = GraphDelta::new();
        d.remove_edge(0, 1).add_edge(0, 11);
        let rep = r.apply_delta("ring", &d, &DeltaPolicy::Invalidate).unwrap();
        assert_eq!(rep.invalidated, 1);
        assert_eq!(rep.refreshed, 0);
        assert_eq!(rep.n, 20);
        assert!(r.cached("ring", &cfg).is_none(), "stale output survived");
        // Graph actually mutated.
        let g = r.graph("ring").unwrap();
        assert!(!g.has_edge(0, 1));
        assert!(g.has_edge(0, 11));
    }

    #[test]
    fn apply_delta_warm_refresh_keeps_cache_hot_and_matches_direct_warm_start() {
        use lbc_core::warm_start;
        let r = Registry::with_capacity(4);
        let (g, truth) = generators::planted_partition(3, 40, 0.4, 0.01, 5).unwrap();
        r.insert_graph("pp", g.clone());
        let cfg = LbConfig::new(1.0 / 3.0, 80).with_seed(2);
        let cold = r.get_or_cluster("pp", &cfg).unwrap();
        let delta = lbc_graph::generators::k_edge_flip_delta(&g, &truth, 3, 7).unwrap();
        let wcfg = WarmStartConfig::default();
        let rep = r
            .apply_delta("pp", &delta, &DeltaPolicy::WarmRefresh(wcfg.clone()))
            .unwrap();
        assert_eq!(rep.refreshed, 1);
        assert_eq!(rep.invalidated, 0);
        assert_eq!(rep.unconverged, 0);
        assert!(rep.warm_rounds > 0 && rep.warm_rounds < 80);
        assert_eq!(r.stats().refreshes, 1);
        // Cache stayed hot: a fetch is a hit, not a re-clustering.
        let inserts_before = r.stats().inserts;
        let refreshed = r.get_or_cluster("pp", &cfg).unwrap();
        assert_eq!(r.stats().inserts, inserts_before);
        // And the refreshed output is exactly the direct warm start.
        let g2 = g.apply_delta(&delta).unwrap();
        let direct = warm_start(&g2, &cfg, &cold, &delta, &wcfg).unwrap();
        assert_eq!(refreshed.partition, direct.output.partition);
        assert_eq!(refreshed.states, direct.output.states);
        assert_eq!(refreshed.rounds, direct.output.rounds);
    }

    #[test]
    fn apply_delta_empty_refresh_is_free_and_identical() {
        let r = registry_with_ring("ring");
        let cfg = LbConfig::new(0.5, 20).with_seed(3);
        let before = r.get_or_cluster("ring", &cfg).unwrap();
        let rep = r
            .apply_delta(
                "ring",
                &GraphDelta::new(),
                &DeltaPolicy::WarmRefresh(WarmStartConfig::default()),
            )
            .unwrap();
        assert_eq!(rep.refreshed, 1);
        assert_eq!(rep.warm_rounds, 0);
        let after = r.get_or_cluster("ring", &cfg).unwrap();
        assert_eq!(before.partition, after.partition);
        assert_eq!(before.states, after.states);
    }

    #[test]
    fn apply_delta_errors_leave_everything_untouched() {
        let r = registry_with_ring("ring");
        let cfg = LbConfig::new(0.5, 20).with_seed(3);
        let _ = r.get_or_cluster("ring", &cfg).unwrap();
        let before = r.graph("ring").unwrap();
        // Unknown dataset.
        assert!(matches!(
            r.apply_delta("nope", &GraphDelta::new(), &DeltaPolicy::Invalidate),
            Err(RuntimeError::UnknownDataset(_))
        ));
        // Bad delta (removing a non-edge) fails and changes nothing.
        let mut bad = GraphDelta::new();
        bad.remove_edge(0, 19);
        assert!(matches!(
            r.apply_delta("ring", &bad, &DeltaPolicy::Invalidate),
            Err(RuntimeError::Graph(_))
        ));
        assert!(Arc::ptr_eq(&before, &r.graph("ring").unwrap()));
        assert!(r.cached("ring", &cfg).is_some(), "cache was dropped");
    }

    #[test]
    fn applied_seq_advances_with_storeless_mutations() {
        let r = registry_with_ring("ring");
        assert_eq!(r.applied_seq("ring"), 0);
        assert_eq!(r.applied_seq("nope"), 0);
        let mut d = GraphDelta::new();
        d.remove_edge(0, 1);
        r.apply_delta("ring", &d, &DeltaPolicy::Invalidate).unwrap();
        assert_eq!(r.applied_seq("ring"), 1);
        let mut d2 = GraphDelta::new();
        d2.add_edge(0, 1);
        r.apply_delta("ring", &d2, &DeltaPolicy::Invalidate)
            .unwrap();
        assert_eq!(r.applied_seq("ring"), 2);
        // A failed mutation must not advance the lineage.
        let mut bad = GraphDelta::new();
        bad.remove_edge(0, 19);
        assert!(r
            .apply_delta("ring", &bad, &DeltaPolicy::Invalidate)
            .is_err());
        assert_eq!(r.applied_seq("ring"), 2);
    }

    #[test]
    fn commit_hook_streams_decodable_records_in_seq_order() {
        let r = registry_with_ring("ring");
        type SeenRecords = Vec<(String, u64, Vec<u8>)>;
        let seen: Arc<Mutex<SeenRecords>> = Arc::new(Mutex::new(Vec::new()));
        let sink = Arc::clone(&seen);
        r.set_commit_hook(Box::new(move |name, seq, bytes| {
            sink.lock()
                .unwrap()
                .push((name.to_string(), seq, bytes.to_vec()));
        }));
        let mut d1 = GraphDelta::new();
        d1.remove_edge(0, 1);
        let mut d2 = GraphDelta::new();
        d2.add_edge(0, 1);
        r.apply_delta("ring", &d1, &DeltaPolicy::Invalidate)
            .unwrap();
        r.apply_delta(
            "ring",
            &d2,
            &DeltaPolicy::WarmRefresh(WarmStartConfig::default()),
        )
        .unwrap();
        let seen = seen.lock().unwrap();
        assert_eq!(seen.len(), 2);
        for (i, (name, seq, bytes)) in seen.iter().enumerate() {
            assert_eq!(name, "ring");
            assert_eq!(*seq, i as u64 + 1);
            let rec = lbc_store::decode_record(bytes).unwrap();
            assert_eq!(rec.seq, *seq);
        }
        assert_eq!(seen[0].2.len(), {
            let rec = lbc_store::decode_record(&seen[0].2).unwrap();
            lbc_store::encode_record(&rec).len()
        });
        drop(seen);
        r.clear_commit_hook();
        let mut d3 = GraphDelta::new();
        d3.remove_edge(2, 3);
        r.apply_delta("ring", &d3, &DeltaPolicy::Invalidate)
            .unwrap();
    }

    #[test]
    fn adopt_then_apply_replicated_matches_the_primary_bit_for_bit() {
        // Primary: cluster, then mutate twice under warm refresh.
        let primary = Registry::with_capacity(4);
        let (g, truth) = generators::planted_partition(3, 40, 0.4, 0.01, 5).unwrap();
        primary.insert_graph("pp", g.clone());
        let cfg = LbConfig::new(1.0 / 3.0, 80).with_seed(2);
        let out = primary.get_or_cluster("pp", &cfg).unwrap();
        let records: Arc<Mutex<Vec<Vec<u8>>>> = Arc::new(Mutex::new(Vec::new()));
        let sink = Arc::clone(&records);
        primary.set_commit_hook(Box::new(move |_, _, bytes| {
            sink.lock().unwrap().push(bytes.to_vec());
        }));
        // Follower adopts the pre-delta state (as if snapshot-streamed).
        let follower = Registry::with_capacity(4);
        follower.adopt_state(
            "pp",
            g.clone(),
            vec![(cfg.clone(), out.as_ref().clone())],
            primary.applied_seq("pp"),
        );
        // Primary commits two deltas; follower applies the streamed
        // records through the identical deterministic path.
        let wcfg = WarmStartConfig::default();
        let d1 = generators::k_edge_flip_delta(&g, &truth, 3, 7).unwrap();
        primary
            .apply_delta("pp", &d1, &DeltaPolicy::WarmRefresh(wcfg.clone()))
            .unwrap();
        let g1 = g.apply_delta(&d1).unwrap();
        let d2 = generators::k_edge_flip_delta(&g1, &truth, 2, 9).unwrap();
        primary
            .apply_delta("pp", &d2, &DeltaPolicy::WarmRefresh(wcfg))
            .unwrap();
        for bytes in records.lock().unwrap().iter() {
            let rec = lbc_store::decode_record(bytes).unwrap();
            follower.apply_replicated("pp", &rec).unwrap();
        }
        assert_eq!(follower.applied_seq("pp"), primary.applied_seq("pp"));
        assert_eq!(
            *follower.graph("pp").unwrap(),
            *primary.graph("pp").unwrap()
        );
        let a = primary.cached("pp", &cfg).unwrap();
        let b = follower.cached("pp", &cfg).unwrap();
        assert_eq!(a.bit_diff(&b), None, "replica diverged from primary");
    }

    #[test]
    fn resident_words_tracks_cache_contents() {
        let r = registry_with_ring("ring");
        assert_eq!(r.resident_words(), 0);
        let cfg = LbConfig::new(0.5, 20).with_seed(3);
        let out = r.get_or_cluster("ring", &cfg).unwrap();
        assert_eq!(r.resident_words(), out.resident_words());
        assert!(r.resident_words() > 0);
    }

    #[test]
    fn cached_output_matches_direct_run() {
        let r = registry_with_ring("ring");
        let cfg = LbConfig::new(0.5, 25).with_seed(7);
        let cached = r.get_or_cluster("ring", &cfg).unwrap();
        let direct = cluster(&r.graph("ring").unwrap(), &cfg).unwrap();
        assert_eq!(cached.partition, direct.partition);
        assert_eq!(cached.states, direct.states);
        assert_eq!(cached.seeds, direct.seeds);
    }

    #[test]
    fn wal_tail_is_bounded_by_records_and_bytes() {
        // Record cap: the oldest records fall off.
        let mut tail = WalTail::default();
        for seq in 1..=5 {
            tail.push(seq, vec![0u8; 8], 3, usize::MAX);
        }
        let seqs: Vec<u64> = tail.records.iter().map(|(s, _)| *s).collect();
        assert_eq!(seqs, [3, 4, 5]);
        assert_eq!(tail.bytes, 24);

        // Byte cap: large deltas trim the tail long before the record
        // cap would, so the always-on in-memory tail cannot pin
        // arbitrarily many megabytes.
        let mut tail = WalTail::default();
        for seq in 1..=10 {
            tail.push(seq, vec![0u8; 100], usize::MAX, 250);
        }
        let seqs: Vec<u64> = tail.records.iter().map(|(s, _)| *s).collect();
        assert_eq!(seqs, [9, 10]);
        assert_eq!(tail.bytes, 200);

        // A single record over the byte cap is still retained — a tail
        // that cannot hold its own newest record would serve nothing.
        let mut tail = WalTail::default();
        tail.push(1, vec![0u8; 1000], usize::MAX, 250);
        assert_eq!(tail.records.len(), 1);
        assert_eq!(tail.bytes, 1000);
        tail.push(2, vec![0u8; 1000], usize::MAX, 250);
        let seqs: Vec<u64> = tail.records.iter().map(|(s, _)| *s).collect();
        assert_eq!(seqs, [2]);
        assert_eq!(tail.bytes, 1000);
    }
}
