//! `lbc-runtime` — a sharded, multi-threaded cluster-query serving
//! engine on top of the one-shot pipeline in `lbc-core`.
//!
//! The paper's algorithm answers *offline* questions: run Seeding →
//! Averaging → Query once, read off a partition. A serving system keeps
//! clustered graphs **resident** and answers a stream of membership
//! queries against them. This crate adds exactly that layer, with no
//! dependencies beyond the workspace:
//!
//! * [`registry`] — named dataset store (graphs loaded via
//!   [`lbc_graph::io`] or inserted from generators) plus an LRU cache of
//!   [`lbc_core::ClusterOutput`]s keyed by `(dataset, config)`. Datasets
//!   mutate through [`Registry::apply_delta`]: a [`lbc_graph::GraphDelta`]
//!   patches the graph in place and cached clusterings are either
//!   invalidated or warm-refreshed from their resident states
//!   ([`lbc_core::warm_start`]), per [`DeltaPolicy`] — the serving story
//!   for dynamic graphs (`lbc update`).
//! * [`scheduler`] — a `std::thread` worker pool sharding independent
//!   `(graph, config)` clustering jobs across cores. Jobs replay the
//!   same per-node RNG streams as the single-threaded path, so pool
//!   output is **bit-for-bit identical** to [`lbc_core::cluster`] — the
//!   determinism tests assert this.
//! * [`engine`] — batched same-cluster / cluster-of / cluster-size
//!   queries served lock-free from `Arc`-shared cached outputs, reusing
//!   (not duplicating) `lbc_core`'s query machinery, including live
//!   re-labelling under a different [`lbc_core::QueryRule`].
//! * [`loadgen`] — a closed-loop load generator reporting throughput and
//!   p50/p95/p99 batch latency; the engine behind `lbc serve-bench`.
//!
//! Attaching an on-disk [`lbc_store::Store`] ([`Registry::attach_store`])
//! makes the resident state crash-safe: cached outputs spill to binary
//! snapshots, deltas are write-ahead logged, and
//! [`Registry::boot_from_store`] replays snapshot + WAL into the exact
//! pre-shutdown labellings (`lbc save` / `lbc load` /
//! `serve-bench --store`).
//!
//! # Quickstart
//!
//! ```
//! use std::sync::Arc;
//! use lbc_core::LbConfig;
//! use lbc_graph::generators::ring_of_cliques;
//! use lbc_runtime::{LoadgenConfig, QueryEngine, Registry, WorkerPool};
//!
//! let registry = Arc::new(Registry::with_capacity(8));
//! let (g, _) = ring_of_cliques(3, 12, 0).unwrap();
//! registry.insert_graph("ring", g);
//!
//! // Cluster on the pool (sharded), then serve queries from cache.
//! let pool = WorkerPool::new(4);
//! let engine = QueryEngine::new(Arc::clone(&registry));
//! let cfg = LbConfig::new(1.0 / 3.0, 60).with_seed(1);
//! let handle = engine.handle_via_pool(&pool, "ring", &cfg).unwrap();
//! assert!(handle.same_cluster(0, 1).unwrap());
//!
//! let report = lbc_runtime::run_loadgen(
//!     &handle,
//!     &LoadgenConfig { clients: 2, total_ops: 1000, batch: 16, seed: 0, ..Default::default() },
//! )
//! .unwrap();
//! assert!(report.ops >= 1000);
//! ```

pub mod engine;
pub mod error;
pub mod loadgen;
pub mod registry;
pub mod scheduler;

pub use engine::{Answer, ClusterHandle, Query, QueryEngine};
pub use error::RuntimeError;
pub use loadgen::{
    loadgen_on_output, run_loadgen, LoadMode, LoadReport, LoadgenConfig, Popularity,
};
pub use registry::{
    config_fingerprint, CacheStats, CommitHook, DeltaPolicy, DeltaReport, Registry,
    ReplicationState, SpillPolicy, StoreBootReport,
};
pub use scheduler::{JobHandle, JobRecord, JobState, WorkerPool};
