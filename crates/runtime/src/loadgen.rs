//! Closed-loop load generator for the query engine.
//!
//! `clients` threads issue batches of randomly mixed queries against one
//! shared [`ClusterHandle`] as fast as answers come back (closed loop: a
//! client never has more than one batch in flight). Per-batch latencies
//! are recorded and merged into a [`LoadReport`] with throughput and
//! p50/p95/p99 tail latency — the serving numbers `lbc serve-bench`
//! prints.
//!
//! Query streams are deterministic: client `i` draws from a SplitMix64
//! stream seeded by `(cfg.seed, i)`, and every answer is folded into a
//! checksum, so two runs with the same configuration against the same
//! clustering produce the same checksum (asserted by the integration
//! tests) while still touching a representative spread of nodes.
//!
//! Node popularity is pluggable ([`Popularity`]): uniform, or
//! Zipf-skewed so a hot set of nodes dominates the stream the way real
//! membership traffic does — the `serve-bench --zipf S` knob.

use std::sync::Arc;
use std::time::{Duration, Instant};

use lbc_graph::NodeId;
use lbc_obs::Histogram;

use crate::engine::{ClusterHandle, Query};
use crate::error::RuntimeError;

/// How query node ids are drawn.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Popularity {
    /// Every node equally likely (the original behaviour).
    Uniform,
    /// Zipf-skewed: popularity rank `r` (0-based) is drawn with
    /// probability ∝ `1/(r+1)^s`, then mapped to a node through a fixed
    /// multiplicative-hash permutation so the hot set is spread across
    /// the id space (and thus across clusters) instead of clumping at
    /// node 0. `s = 0` degenerates to uniform; realistic web/social
    /// traffic sits around `s ≈ 0.8–1.2`.
    Zipf(f64),
}

/// How batches are timed.
///
/// The **closed** loop issues the next batch as soon as the previous
/// answer returns — throughput-chasing, but its latency samples suffer
/// coordinated omission: while the server is slow, the generator sends
/// *less*, so the slow period is under-sampled and percentiles lie.
///
/// The **open** loop fixes that: batch arrivals follow a fixed global
/// schedule (`intended_i = t0 + i/rate`, dealt round-robin across
/// clients), and every latency is measured **from the intended send
/// time** — so when the system falls behind, the queueing delay the
/// schedule accumulated is charged to the samples instead of being
/// silently dropped.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LoadMode {
    /// Back-to-back batches, latency = service time only.
    Closed,
    /// Arrival-rate-driven, latency from intended send time.
    /// `rate` is the global batch arrival rate per second across all
    /// clients.
    Open { rate: f64 },
}

/// Load-generator configuration.
#[derive(Debug, Clone)]
pub struct LoadgenConfig {
    /// Client threads issuing queries.
    pub clients: usize,
    /// Total queries across all clients.
    pub total_ops: u64,
    /// Queries per batch (the latency unit is one batch).
    pub batch: usize,
    /// Seed for the per-client query streams.
    pub seed: u64,
    /// Node-popularity model for generated queries.
    pub popularity: Popularity,
    /// Closed (default) or open-loop batch timing.
    pub mode: LoadMode,
}

impl Default for LoadgenConfig {
    fn default() -> Self {
        LoadgenConfig {
            clients: 4,
            total_ops: 100_000,
            batch: 64,
            seed: 0,
            popularity: Popularity::Uniform,
            mode: LoadMode::Closed,
        }
    }
}

/// Aggregated result of one load-generation run.
#[derive(Debug, Clone)]
pub struct LoadReport {
    /// Queries actually executed (≥ the configured total).
    pub ops: u64,
    /// Batches executed.
    pub batches: u64,
    /// Client threads used.
    pub clients: usize,
    /// End-to-end wall time.
    pub wall: Duration,
    /// Queries per second over the whole run.
    pub throughput: f64,
    /// Per-batch latency percentiles.
    pub p50: Duration,
    pub p95: Duration,
    pub p99: Duration,
    pub max: Duration,
    /// Fold of every answer; equal across runs of the same config.
    pub checksum: u64,
}

impl LoadReport {
    /// Human-readable rendering (used by `lbc serve-bench`).
    pub fn render(&self) -> String {
        format!(
            "ops = {} in {:.3} s on {} clients ({} batches)\n\
             throughput = {:.0} queries/s\n\
             batch latency: p50 = {:.1} µs, p95 = {:.1} µs, p99 = {:.1} µs, max = {:.1} µs\n\
             checksum = {:016x}\n",
            self.ops,
            self.wall.as_secs_f64(),
            self.clients,
            self.batches,
            self.throughput,
            self.p50.as_secs_f64() * 1e6,
            self.p95.as_secs_f64() * 1e6,
            self.p99.as_secs_f64() * 1e6,
            self.max.as_secs_f64() * 1e6,
            self.checksum,
        )
    }
}

/// Minimal deterministic stream for query generation (SplitMix64 — the
/// same generator family `lbc_distsim::NodeRng` uses for node streams).
/// Public because it is the workspace's one query-stream generator:
/// the network load generator (`lbc-net`) keys it by batch index
/// instead of by client, but draws from the same stream family.
pub struct QueryRng(u64);

impl QueryRng {
    /// Stream `stream` of the family seeded by `seed` (the in-process
    /// loadgen uses the client index, `lbc net-bench` the batch index).
    pub fn new(seed: u64, stream: u64) -> Self {
        // Distinct odd offset per stream keeps streams disjoint.
        QueryRng(seed ^ stream.wrapping_mul(0xa076_1d64_78bd_642f) ^ 0x632b_e59b_d9b4_e019)
    }

    /// Next raw word (named to avoid colliding with `Iterator::next`).
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform node id in `0..n` (multiplicative range reduction).
    pub fn node(&mut self, n: usize) -> NodeId {
        (((self.next_u64() as u128 * n as u128) >> 64) as u64) as NodeId
    }
}

/// One uniform-popularity query with the standard serving mix
/// (same-cluster weighted double) — shared with `lbc net-bench` so
/// in-process and over-the-wire load have the same shape.
pub fn uniform_random_query(rng: &mut QueryRng, n: usize) -> Query {
    random_query(rng, &NodeSampler::Uniform, n)
}

/// One query drawn under an arbitrary [`Popularity`] model — the
/// popularity-aware generalisation of [`uniform_random_query`], shared
/// with `lbc net-bench --zipf` so in-process and over-the-wire load
/// skew the same way. Build the sampler once and reuse it: the Zipf
/// CDF costs `O(n)` to set up.
pub fn popular_random_query(rng: &mut QueryRng, sampler: &NodeSampler, n: usize) -> Query {
    random_query(rng, sampler, n)
}

/// Node sampler realising a [`Popularity`] model. Built once per client
/// (the Zipf CDF is `O(n)` to set up, `O(log n)` per draw).
pub enum NodeSampler {
    Uniform,
    Zipf { cdf: Vec<f64> },
}

impl NodeSampler {
    /// Sampler for `popularity` over a graph of `n` nodes.
    pub fn new(popularity: Popularity, n: usize) -> Self {
        match popularity {
            Popularity::Uniform => NodeSampler::Uniform,
            Popularity::Zipf(s) => {
                let mut cdf: Vec<f64> = Vec::with_capacity(n);
                let mut acc = 0.0f64;
                for r in 0..n {
                    acc += 1.0 / ((r + 1) as f64).powf(s);
                    cdf.push(acc);
                }
                let total = acc;
                for c in &mut cdf {
                    *c /= total;
                }
                NodeSampler::Zipf { cdf }
            }
        }
    }

    /// Draw one node id.
    pub fn node(&self, rng: &mut QueryRng, n: usize) -> NodeId {
        match self {
            NodeSampler::Uniform => rng.node(n),
            NodeSampler::Zipf { cdf } => {
                // 53-bit uniform in [0, 1), rank by CDF inversion, then
                // the multiplicative spread (Knuth's prime keeps the
                // map a permutation whenever n is not a multiple of it,
                // i.e. always for u32-sized graphs).
                let u = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
                let rank = cdf.partition_point(|&c| c <= u).min(n - 1);
                // rank + 1 so the hottest rank does not pin node 0.
                (((rank as u64 + 1) * 2_654_435_761) % n as u64) as NodeId
            }
        }
    }
}

fn random_query(rng: &mut QueryRng, sampler: &NodeSampler, n: usize) -> Query {
    match rng.next_u64() % 4 {
        // Same-cluster is the headline operation; weight it double.
        0 | 1 => Query::SameCluster(sampler.node(rng, n), sampler.node(rng, n)),
        2 => Query::ClusterOf(sampler.node(rng, n)),
        _ => Query::ClusterSize(sampler.node(rng, n)),
    }
}

/// Run the closed loop and aggregate the report.
///
/// Returns [`RuntimeError::InvalidConfig`] when any of `clients`,
/// `batch`, `total_ops` is zero or the clustering has no nodes;
/// otherwise fails only if the handle rejects a query, which cannot
/// happen for generated queries (nodes are drawn in-range).
pub fn run_loadgen(
    handle: &ClusterHandle,
    cfg: &LoadgenConfig,
) -> Result<LoadReport, RuntimeError> {
    if cfg.clients == 0 || cfg.batch == 0 || cfg.total_ops == 0 {
        return Err(RuntimeError::InvalidConfig(
            "loadgen clients, batch, and total_ops must all be positive".into(),
        ));
    }
    if let Popularity::Zipf(s) = cfg.popularity {
        if !s.is_finite() || s < 0.0 {
            return Err(RuntimeError::InvalidConfig(format!(
                "zipf exponent must be finite and non-negative, got {s}"
            )));
        }
    }
    if let LoadMode::Open { rate } = cfg.mode {
        if !rate.is_finite() || rate <= 0.0 {
            return Err(RuntimeError::InvalidConfig(format!(
                "open-loop rate must be finite and positive, got {rate}"
            )));
        }
    }
    let n = handle.n();
    if n == 0 {
        return Err(RuntimeError::InvalidConfig(
            "cannot generate load against an empty clustering".into(),
        ));
    }
    let per_client_batches = (cfg.total_ops as usize)
        .div_ceil(cfg.batch)
        .div_ceil(cfg.clients) as u64;

    struct ClientResult {
        checksum: u64,
        ops: u64,
    }

    // One wait-free histogram shared by every client thread: recording a
    // latency is five relaxed atomic RMWs — no per-client sample vectors
    // to allocate, grow, or merge-sort afterwards.
    let latencies = Histogram::new();

    let t0 = Instant::now();
    let results: Vec<Result<ClientResult, RuntimeError>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..cfg.clients)
            .map(|client| {
                let handle: ClusterHandle = handle.clone();
                let latencies = &latencies;
                scope.spawn(move || {
                    let mut rng = QueryRng::new(cfg.seed, client as u64);
                    let sampler = NodeSampler::new(cfg.popularity, n);
                    let mut checksum = 0u64;
                    let mut ops = 0u64;
                    let mut queries = Vec::with_capacity(cfg.batch);
                    // Open loop: this client owns every `clients`-th
                    // slot of the global arrival schedule.
                    let interval = match cfg.mode {
                        LoadMode::Closed => None,
                        LoadMode::Open { rate } => Some(Duration::from_secs_f64(1.0 / rate)),
                    };
                    for b in 0..per_client_batches {
                        queries.clear();
                        queries.extend((0..cfg.batch).map(|_| random_query(&mut rng, &sampler, n)));
                        let b0 = match interval {
                            None => Instant::now(),
                            Some(iv) => {
                                let slot = b * cfg.clients as u64 + client as u64;
                                let intended = t0 + iv.mul_f64(slot as f64);
                                // On schedule: wait for the arrival.
                                // Behind schedule: send immediately —
                                // the elapsed backlog stays charged to
                                // this sample (the whole point).
                                if let Some(wait) = intended.checked_duration_since(Instant::now())
                                {
                                    std::thread::sleep(wait);
                                }
                                intended
                            }
                        };
                        let answers = handle.execute_batch(&queries)?;
                        latencies.record(b0.elapsed().as_nanos() as u64);
                        for a in answers {
                            checksum = checksum.rotate_left(7).wrapping_add(a.checksum_word());
                        }
                        ops += cfg.batch as u64;
                    }
                    Ok(ClientResult { checksum, ops })
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("load client panicked"))
            .collect()
    });
    let wall = t0.elapsed();

    let mut checksum = 0u64;
    let mut ops = 0u64;
    // Merge in client order so the combined checksum is deterministic.
    for r in results {
        let r = r?;
        checksum = checksum.rotate_left(13) ^ r.checksum;
        ops += r.ops;
    }
    // Every client has been joined, so the snapshot sees all records.
    let lat = latencies.snapshot();
    assert!(!lat.is_empty(), "at least one batch");
    let pct = |q: f64| -> Duration { Duration::from_nanos(lat.quantile(q)) };
    Ok(LoadReport {
        ops,
        batches: lat.count,
        clients: cfg.clients,
        wall,
        throughput: ops as f64 / wall.as_secs_f64().max(1e-12),
        p50: pct(0.50),
        p95: pct(0.95),
        p99: pct(0.99),
        max: Duration::from_nanos(lat.max),
        checksum,
    })
}

/// Convenience: share `output` across clients and run the loop.
pub fn loadgen_on_output(
    output: Arc<lbc_core::ClusterOutput>,
    cfg: &LoadgenConfig,
) -> Result<LoadReport, RuntimeError> {
    run_loadgen(&ClusterHandle::new(output), cfg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::Registry;
    use lbc_core::LbConfig;
    use lbc_graph::generators;

    fn ring_handle() -> ClusterHandle {
        let registry = Registry::with_capacity(2);
        let (g, _) = generators::ring_of_cliques(3, 10, 0).unwrap();
        registry.insert_graph("ring", g);
        let out = registry
            .get_or_cluster("ring", &LbConfig::new(1.0 / 3.0, 60).with_seed(1))
            .unwrap();
        ClusterHandle::new(out)
    }

    #[test]
    fn report_is_well_formed() {
        let h = ring_handle();
        let cfg = LoadgenConfig {
            clients: 4,
            total_ops: 20_000,
            batch: 32,
            seed: 5,
            ..Default::default()
        };
        let r = run_loadgen(&h, &cfg).unwrap();
        assert!(r.ops >= 20_000);
        assert!(r.throughput > 0.0);
        assert!(r.p50 <= r.p95 && r.p95 <= r.p99 && r.p99 <= r.max);
        let text = r.render();
        assert!(text.contains("queries/s"), "{text}");
        assert!(text.contains("p99"), "{text}");
    }

    #[test]
    fn checksum_is_deterministic() {
        let h = ring_handle();
        let cfg = LoadgenConfig {
            clients: 3,
            total_ops: 9_000,
            batch: 16,
            seed: 42,
            ..Default::default()
        };
        let a = run_loadgen(&h, &cfg).unwrap();
        let b = run_loadgen(&h, &cfg).unwrap();
        assert_eq!(a.checksum, b.checksum);
        assert_eq!(a.ops, b.ops);
        // A different seed exercises different nodes.
        let c = run_loadgen(&h, &LoadgenConfig { seed: 43, ..cfg }).unwrap();
        assert_ne!(a.checksum, c.checksum);
    }

    /// Parity pin for the sorted-vector → histogram swap in
    /// `run_loadgen`: on a latency-shaped sample the histogram's
    /// p50/p95/p99 track the old `sort + round((n-1)q)` rule within the
    /// documented bucket error (1/32), and max stays bit-exact.
    #[test]
    fn histogram_percentiles_match_sorted_vector_path() {
        let h = Histogram::new();
        let mut sorted: Vec<Duration> = Vec::new();
        let mut x = 0xDEADBEEFCAFEF00Du64;
        for _ in 0..50_000 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            // Hundreds of ns to ~5 ms, like closed-loop batch latencies.
            let ns = (x >> 34) % 5_000_000 + 300;
            h.record(ns);
            sorted.push(Duration::from_nanos(ns));
        }
        sorted.sort_unstable();
        let exact = |q: f64| -> Duration {
            let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
            sorted[idx]
        };
        let snap = h.snapshot();
        for q in [0.50, 0.95, 0.99] {
            let want = exact(q).as_nanos() as f64;
            let got = snap.quantile(q) as f64;
            let err = (got - want).abs() / want;
            assert!(err <= 1.0 / 32.0, "q={q}: got {got} want {want} err {err}");
        }
        assert_eq!(Duration::from_nanos(snap.max), *sorted.last().unwrap());
    }

    #[test]
    fn zero_config_values_are_errors_not_panics() {
        let h = ring_handle();
        for cfg in [
            LoadgenConfig {
                clients: 0,
                ..Default::default()
            },
            LoadgenConfig {
                batch: 0,
                ..Default::default()
            },
            LoadgenConfig {
                total_ops: 0,
                ..Default::default()
            },
        ] {
            assert!(matches!(
                run_loadgen(&h, &cfg),
                Err(RuntimeError::InvalidConfig(_))
            ));
        }
    }

    #[test]
    fn single_client_single_batch() {
        let h = ring_handle();
        let cfg = LoadgenConfig {
            clients: 1,
            total_ops: 1,
            batch: 1,
            seed: 0,
            ..Default::default()
        };
        let r = run_loadgen(&h, &cfg).unwrap();
        assert_eq!(r.batches, 1);
        assert_eq!(r.ops, 1);
    }

    #[test]
    fn open_loop_latency_includes_queue_wait_from_intended_send_time() {
        // Coordinated-omission guard. Arrival interval ≈ 0 (absurd
        // rate) with a fat batch: every batch is "due" at t0, so batch
        // i cannot start until its i-1 predecessors finish and its
        // recorded latency must include that queue wait. A closed-loop
        // run of the same work records only per-batch service time.
        let h = ring_handle();
        let base = LoadgenConfig {
            clients: 1,
            total_ops: 64 * 2048,
            batch: 2048,
            seed: 7,
            ..Default::default()
        };
        let closed = run_loadgen(&h, &base).unwrap();
        let open = run_loadgen(
            &h,
            &LoadgenConfig {
                mode: LoadMode::Open { rate: 1e9 },
                ..base.clone()
            },
        )
        .unwrap();
        // Same queries, same answers — the mode changes timing only.
        assert_eq!(open.checksum, closed.checksum);
        assert_eq!(open.batches, closed.batches);
        // The last batch waited for (nearly) the whole run: its
        // recorded latency is on the order of the wall time, far above
        // any closed-loop sample.
        assert!(
            open.max.as_secs_f64() >= open.wall.as_secs_f64() * 0.5,
            "open-loop max {:?} lost the queue wait (wall {:?})",
            open.max,
            open.wall
        );
        assert!(
            open.max > closed.p50 * 4,
            "open max {:?} vs closed p50 {:?}: queue wait not charged",
            open.max,
            closed.p50
        );
    }

    #[test]
    fn open_loop_paces_arrivals_when_capacity_suffices() {
        // Arrival interval ≫ service time: the generator must actually
        // wait for each intended send (wall ≥ schedule span) and the
        // recorded latencies stay at service scale, not interval scale.
        let h = ring_handle();
        let cfg = LoadgenConfig {
            clients: 2,
            total_ops: 8 * 16,
            batch: 16,
            seed: 3,
            mode: LoadMode::Open { rate: 200.0 },
            ..Default::default()
        };
        let r = run_loadgen(&h, &cfg).unwrap();
        // 8 batches at 200/s globally: last slot is due at 35 ms.
        assert!(
            r.wall >= Duration::from_millis(30),
            "open loop did not pace: wall {:?}",
            r.wall
        );
        assert!(
            r.p50 < Duration::from_millis(5),
            "uncontended open-loop latency inflated: p50 {:?}",
            r.p50
        );
    }

    #[test]
    fn open_loop_bad_rates_are_errors() {
        let h = ring_handle();
        for rate in [0.0, -3.0, f64::NAN, f64::INFINITY] {
            assert!(matches!(
                run_loadgen(
                    &h,
                    &LoadgenConfig {
                        mode: LoadMode::Open { rate },
                        ..Default::default()
                    }
                ),
                Err(RuntimeError::InvalidConfig(_))
            ));
        }
    }

    #[test]
    fn zipf_sampler_is_skewed_but_spread() {
        let n = 500usize;
        let sampler = NodeSampler::new(Popularity::Zipf(1.2), n);
        let mut rng = QueryRng::new(9, 0);
        let mut counts = vec![0u32; n];
        let draws = 50_000;
        for _ in 0..draws {
            counts[sampler.node(&mut rng, n) as usize] += 1;
        }
        let max = *counts.iter().max().unwrap() as f64;
        // Rank 0 carries ~1/H ≈ 18% of the mass at s = 1.2, n = 500 —
        // vastly more than the uniform 0.2%.
        assert!(
            max / draws as f64 > 0.05,
            "hottest node got only {max} of {draws}"
        );
        // The multiplicative spread must not leave the hot mass at the
        // low ids: the hottest node is not node 0..9.
        let hottest = counts
            .iter()
            .enumerate()
            .max_by_key(|&(_, &c)| c)
            .unwrap()
            .0;
        assert!(hottest >= 10, "hot set clumped at node {hottest}");
        // Still touches a broad support.
        let touched = counts.iter().filter(|&&c| c > 0).count();
        assert!(touched > n / 4, "only {touched} nodes touched");
    }

    #[test]
    fn zipf_loadgen_is_deterministic_and_differs_from_uniform() {
        let h = ring_handle();
        let cfg = LoadgenConfig {
            clients: 2,
            total_ops: 6_000,
            batch: 16,
            seed: 11,
            popularity: Popularity::Zipf(1.0),
            mode: LoadMode::Closed,
        };
        let a = run_loadgen(&h, &cfg).unwrap();
        let b = run_loadgen(&h, &cfg).unwrap();
        assert_eq!(a.checksum, b.checksum);
        let u = run_loadgen(
            &h,
            &LoadgenConfig {
                popularity: Popularity::Uniform,
                ..cfg
            },
        )
        .unwrap();
        assert_ne!(a.checksum, u.checksum, "skew must change the stream");
        // Bad exponents are errors, not panics.
        for s in [-1.0, f64::NAN, f64::INFINITY] {
            assert!(matches!(
                run_loadgen(
                    &h,
                    &LoadgenConfig {
                        popularity: Popularity::Zipf(s),
                        ..cfg
                    }
                ),
                Err(RuntimeError::InvalidConfig(_))
            ));
        }
    }
}
