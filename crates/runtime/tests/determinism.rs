//! Pool-sharded clustering must be bit-for-bit identical to the
//! single-threaded path.
//!
//! This extends `lbc-core`'s `deterministic_in_seed` unit test (same
//! config twice → same output) to the serving engine: the *same jobs*
//! pushed through a multi-threaded worker pool — interleaved with other
//! jobs, on arbitrary workers, in arbitrary order — must reproduce the
//! single-threaded [`lbc_core::cluster`] outputs exactly: seeds, final
//! load states (every f64 bit), raw labels, and partition.

use std::sync::Arc;

use lbc_core::{cluster, ClusterOutput, LbConfig};
use lbc_graph::{generators, Graph};
use lbc_runtime::{Registry, WorkerPool};

fn assert_identical(a: &ClusterOutput, b: &ClusterOutput) {
    assert_eq!(a.seeds, b.seeds, "seed sets differ");
    assert_eq!(a.rounds, b.rounds, "round counts differ");
    assert_eq!(a.raw_labels, b.raw_labels, "raw labels differ");
    assert_eq!(a.partition, b.partition, "partitions differ");
    // LoadState: PartialEq compares the sorted (id, f64) entry vectors;
    // equality here is exact bit-for-bit float equality, not tolerance.
    assert_eq!(a.states, b.states, "load states differ");
}

fn job_matrix() -> Vec<(String, Graph, LbConfig)> {
    let mut jobs = Vec::new();
    let (ring, _) = generators::ring_of_cliques(3, 12, 0).unwrap();
    let (planted, _) = generators::planted_partition(2, 30, 0.5, 0.02, 7).unwrap();
    let (regular, _) = generators::regular_cluster_graph(2, 20, 6, 2, 9).unwrap();
    for seed in 0..6u64 {
        jobs.push((
            "ring".to_string(),
            ring.clone(),
            LbConfig::new(1.0 / 3.0, 50).with_seed(seed),
        ));
        jobs.push((
            "planted".to_string(),
            planted.clone(),
            LbConfig::new(0.5, 40).with_seed(seed),
        ));
        jobs.push((
            "regular".to_string(),
            regular.clone(),
            LbConfig::new(0.5, 60).with_seed(seed),
        ));
    }
    jobs
}

#[test]
fn pool_sharded_clustering_is_bit_identical_to_single_threaded() {
    let jobs = job_matrix();
    // Reference: strictly sequential, single-threaded.
    let reference: Vec<ClusterOutput> = jobs
        .iter()
        .map(|(_, g, cfg)| cluster(g, cfg).unwrap())
        .collect();
    // Sharded: all jobs in flight at once on a 4-thread pool.
    let pool = WorkerPool::new(4);
    let handles: Vec<_> = jobs
        .iter()
        .map(|(name, g, cfg)| pool.submit(name, Arc::new(g.clone()), cfg.clone()))
        .collect();
    for (h, want) in handles.into_iter().zip(&reference) {
        let got = h.wait().unwrap();
        assert_identical(&got, want);
    }
}

#[test]
fn registry_pool_path_is_bit_identical_too() {
    let registry = Arc::new(Registry::with_capacity(64));
    let jobs = job_matrix();
    for (name, g, _) in &jobs {
        // Re-inserting the same graph under the same name is idempotent
        // for this matrix (same generator output every time).
        registry.insert_graph(name, g.clone());
    }
    let pool = WorkerPool::new(4);
    let handles: Vec<_> = jobs
        .iter()
        .map(|(name, _, cfg)| pool.submit_cached(&registry, name, cfg).unwrap())
        .collect();
    for (h, (_, g, cfg)) in handles.into_iter().zip(&jobs) {
        let got = h.wait().unwrap();
        let want = cluster(g, cfg).unwrap();
        assert_identical(&got, &want);
    }
    // Every output is now cached; a second sweep is pure cache hits.
    let before = registry.stats();
    for (name, _, cfg) in &jobs {
        assert!(registry.cached(name, cfg).is_some());
    }
    let after = registry.stats();
    assert_eq!(after.hits - before.hits, jobs.len() as u64);
    assert_eq!(after.inserts, before.inserts);
}
