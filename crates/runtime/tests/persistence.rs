//! Crash-safe persistence acceptance tests.
//!
//! The round-trip invariant (ISSUE 4): snapshot + WAL replay reproduces
//! the pre-shutdown cached [`ClusterOutput`] **bit-for-bit** — every
//! `f64` compared by bit pattern, the same standard as
//! `crates/core/tests/warm_start.rs`. "Crash" here is simulated by
//! dropping one registry and booting a fresh one from the same store
//! directory, which exercises exactly what a killed process leaves on
//! disk (appends are flushed before the graph swap).

use lbc_core::{ClusterOutput, LbConfig, WarmStartConfig};
use lbc_graph::{generators, GraphDelta};
use lbc_runtime::{DeltaPolicy, Registry, SpillPolicy};

fn store_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir()
        .join("lbc-runtime-persistence")
        .join(format!("{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Every `f64` compared by bit pattern (via the shared
/// [`ClusterOutput::bit_diff`] standard); everything else by `==`.
fn assert_bit_identical(a: &ClusterOutput, b: &ClusterOutput) {
    if let Some(diff) = a.bit_diff(b) {
        panic!("outputs not bit-identical: {diff}");
    }
}

#[test]
fn snapshot_boot_is_bit_identical_with_zero_warm_rounds() {
    let dir = store_dir("snapshot-boot");
    let cfg = LbConfig::new(0.25, 60).with_seed(7);
    let (g, _) = generators::planted_partition(4, 30, 0.4, 0.01, 11).unwrap();

    let saved = {
        let r = Registry::with_capacity(4);
        r.attach_store(&dir, SpillPolicy::OnInsert).unwrap();
        r.insert_graph("pp", g.clone());
        let out = r.get_or_cluster("pp", &cfg).unwrap();
        assert!(r.stats().spills >= 1, "insert did not spill");
        assert!(r.stats().store_bytes > 0);
        out
        // registry dropped = process "killed"
    };

    let fresh = Registry::with_capacity(4);
    fresh.attach_store(&dir, SpillPolicy::OnInsert).unwrap();
    assert!(fresh.has_store_dataset("pp"));
    let report = fresh.boot_from_store("pp").unwrap();
    assert_eq!(report.wal_records, 0, "clean shutdown must have no WAL");
    assert_eq!(report.warm_rounds, 0, "empty WAL must replay zero rounds");
    assert_eq!(report.entries, 1);
    assert_eq!((report.n, report.m), (g.n(), g.m()));
    assert_eq!(fresh.stats().loads, 1);

    // The recovered output is the saved one, bit for bit, and it is a
    // cache *hit* — no re-clustering.
    let inserts_before = fresh.stats().inserts;
    let recovered = fresh.get_or_cluster("pp", &cfg).unwrap();
    assert_eq!(fresh.stats().inserts, inserts_before);
    assert_bit_identical(&saved, &recovered);
}

#[test]
fn wal_replay_recovers_the_exact_pre_crash_labelling() {
    let dir = store_dir("wal-replay");
    let cfg = LbConfig::new(1.0 / 3.0, 80).with_seed(2);
    let (g, truth) = generators::planted_partition(3, 40, 0.4, 0.01, 5).unwrap();
    let wcfg = WarmStartConfig::default();

    let (pre_crash, total_warm_rounds) = {
        // Spill-on-evict + huge compaction threshold: the snapshot is
        // written once (explicitly), every subsequent delta lives only
        // in the WAL — recovery must replay it.
        let r = Registry::with_capacity(4);
        r.attach_store_with(&dir, SpillPolicy::OnEvict, u64::MAX)
            .unwrap();
        r.insert_graph("pp", g.clone());
        let _ = r.get_or_cluster("pp", &cfg).unwrap();
        r.spill_to_store("pp").unwrap();

        let mut warm = 0usize;
        let mut current = g.clone();
        for flip_seed in [7u64, 9, 13] {
            let delta = generators::k_edge_flip_delta(&current, &truth, 2, flip_seed).unwrap();
            current = current.apply_delta(&delta).unwrap();
            let rep = r
                .apply_delta("pp", &delta, &DeltaPolicy::WarmRefresh(wcfg.clone()))
                .unwrap();
            assert_eq!(rep.refreshed, 1);
            warm += rep.warm_rounds;
        }
        let out = r.cached("pp", &cfg).expect("refreshed entry resident");
        (out, warm)
    };

    let fresh = Registry::with_capacity(4);
    fresh
        .attach_store_with(&dir, SpillPolicy::OnEvict, u64::MAX)
        .unwrap();
    let report = fresh.boot_from_store("pp").unwrap();
    assert_eq!(report.wal_records, 3, "all three deltas must replay");
    assert_eq!(
        report.warm_rounds, total_warm_rounds,
        "replay must pay exactly the warm rounds the live side paid"
    );
    let recovered = fresh.cached("pp", &cfg).expect("booted entry resident");
    assert_bit_identical(&pre_crash, &recovered);
    // Boot compacted the replayed WAL into a fresh snapshot: a second
    // boot is pure snapshot, zero warm rounds, same bits.
    let again = Registry::with_capacity(4);
    again
        .attach_store_with(&dir, SpillPolicy::OnEvict, u64::MAX)
        .unwrap();
    let report2 = again.boot_from_store("pp").unwrap();
    assert_eq!(report2.wal_records, 0);
    assert_eq!(report2.warm_rounds, 0);
    let recovered2 = again.cached("pp", &cfg).expect("booted entry resident");
    assert_bit_identical(&pre_crash, &recovered2);
}

#[test]
fn spill_on_evict_saves_the_displaced_entry() {
    let dir = store_dir("spill-evict");
    let (g, _) = generators::ring_of_cliques(3, 12, 0).unwrap();
    let cfg1 = LbConfig::new(1.0 / 3.0, 40).with_seed(1);
    let cfg2 = LbConfig::new(1.0 / 3.0, 40).with_seed(2);

    let (out1, out2) = {
        let r = Registry::with_capacity(1); // second insert evicts the first
        r.attach_store(&dir, SpillPolicy::OnEvict).unwrap();
        r.insert_graph("ring", g.clone());
        let out1 = r.get_or_cluster("ring", &cfg1).unwrap();
        assert_eq!(r.stats().spills, 0, "no eviction yet, no spill");
        let out2 = r.get_or_cluster("ring", &cfg2).unwrap();
        assert_eq!(r.stats().evictions, 1);
        assert!(r.stats().spills >= 1, "eviction must spill");
        (out1, out2)
    };

    // Both outputs survive: the resident one and the evicted one.
    let fresh = Registry::with_capacity(4);
    fresh.attach_store(&dir, SpillPolicy::OnEvict).unwrap();
    let report = fresh.boot_from_store("ring").unwrap();
    assert_eq!(report.entries, 2);
    assert_bit_identical(&out1, &fresh.cached("ring", &cfg1).unwrap());
    assert_bit_identical(&out2, &fresh.cached("ring", &cfg2).unwrap());
}

#[test]
fn successive_evictions_keep_every_spilled_output() {
    // Spill-on-evict must not let a later eviction's snapshot rewrite
    // destroy outputs persisted by earlier evictions.
    let dir = store_dir("spill-evict-chain");
    let (g, _) = generators::ring_of_cliques(3, 12, 0).unwrap();
    let cfgs: Vec<LbConfig> = (1..=3)
        .map(|s| LbConfig::new(1.0 / 3.0, 40).with_seed(s))
        .collect();

    let outs: Vec<_> = {
        let r = Registry::with_capacity(1); // every insert evicts the prior entry
        r.attach_store(&dir, SpillPolicy::OnEvict).unwrap();
        r.insert_graph("ring", g.clone());
        cfgs.iter()
            .map(|cfg| r.get_or_cluster("ring", cfg).unwrap())
            .collect()
    };

    let fresh = Registry::with_capacity(4);
    fresh.attach_store(&dir, SpillPolicy::OnEvict).unwrap();
    let report = fresh.boot_from_store("ring").unwrap();
    assert_eq!(report.entries, 3, "an earlier eviction's output was lost");
    for (cfg, out) in cfgs.iter().zip(&outs) {
        assert_bit_identical(out, &fresh.cached("ring", cfg).unwrap());
    }
}

#[test]
fn boot_folds_a_crash_torn_wal_tail() {
    let dir = store_dir("torn-boot");
    let (g, _) = generators::ring_of_cliques(2, 10, 0).unwrap();
    let cfg = LbConfig::new(0.5, 30).with_seed(3);
    {
        let r = Registry::with_capacity(2);
        r.attach_store_with(&dir, SpillPolicy::OnEvict, u64::MAX)
            .unwrap();
        r.insert_graph("ring", g.clone());
        let _ = r.get_or_cluster("ring", &cfg).unwrap();
        r.spill_to_store("ring").unwrap();
        let mut d = GraphDelta::new();
        d.remove_edge(0, 1);
        r.apply_delta(
            "ring",
            &d,
            &DeltaPolicy::WarmRefresh(WarmStartConfig::default()),
        )
        .unwrap();
    }
    // Crash mid-append of a second record: half a record after the
    // first complete one.
    let wal = std::path::Path::new(&dir).join("ring.wal");
    let mut bytes = std::fs::read(&wal).unwrap();
    let clone = bytes.clone();
    bytes.extend_from_slice(&clone[..clone.len() / 2]);
    std::fs::write(&wal, &bytes).unwrap();

    let fresh = Registry::with_capacity(4);
    fresh
        .attach_store_with(&dir, SpillPolicy::OnEvict, u64::MAX)
        .unwrap();
    let report = fresh.boot_from_store("ring").unwrap();
    assert_eq!(report.wal_records, 1);
    assert!(report.torn_tail_bytes > 0);
    // The boot folded record + torn tail away: the next boot is clean.
    let again = Registry::with_capacity(4);
    again
        .attach_store_with(&dir, SpillPolicy::OnEvict, u64::MAX)
        .unwrap();
    let report2 = again.boot_from_store("ring").unwrap();
    assert_eq!(report2.wal_records, 0);
    assert_eq!(report2.torn_tail_bytes, 0);
    assert_bit_identical(
        &fresh.cached("ring", &cfg).unwrap(),
        &again.cached("ring", &cfg).unwrap(),
    );
}

#[test]
fn oversized_wal_auto_compacts_into_a_fresh_snapshot() {
    let dir = store_dir("compact");
    let (g, truth) = generators::planted_partition(3, 40, 0.4, 0.01, 5).unwrap();
    let cfg = LbConfig::new(1.0 / 3.0, 80).with_seed(2);
    let r = Registry::with_capacity(4);
    // Threshold of 1 byte: every apply_delta leaves an oversized WAL
    // and must fold it.
    r.attach_store_with(&dir, SpillPolicy::OnEvict, 1).unwrap();
    r.insert_graph("pp", g.clone());
    let _ = r.get_or_cluster("pp", &cfg).unwrap();
    r.spill_to_store("pp").unwrap();
    let spills_before = r.stats().spills;

    let delta = generators::k_edge_flip_delta(&g, &truth, 2, 7).unwrap();
    let rep = r
        .apply_delta(
            "pp",
            &delta,
            &DeltaPolicy::WarmRefresh(WarmStartConfig::default()),
        )
        .unwrap();
    assert_eq!(rep.refreshed, 1);
    assert!(r.stats().spills > spills_before, "compaction must spill");

    // The fold left a snapshot that boots clean — no WAL replay.
    let live = r.cached("pp", &cfg).unwrap();
    let fresh = Registry::with_capacity(4);
    fresh.attach_store(&dir, SpillPolicy::OnEvict).unwrap();
    let report = fresh.boot_from_store("pp").unwrap();
    assert_eq!(report.wal_records, 0, "WAL must be folded away");
    assert_bit_identical(&live, &fresh.cached("pp", &cfg).unwrap());
}

#[test]
fn delta_stream_coalesces_to_one_patch_and_one_warm_pass() {
    let (g, truth) = generators::planted_partition(3, 40, 0.4, 0.01, 5).unwrap();
    let cfg = LbConfig::new(1.0 / 3.0, 80).with_seed(2);
    let wcfg = WarmStartConfig::default();

    // A stream of small deltas, including a net no-op pair.
    let d1 = generators::k_edge_flip_delta(&g, &truth, 2, 7).unwrap();
    let g1 = g.apply_delta(&d1).unwrap();
    let d2 = generators::k_edge_flip_delta(&g1, &truth, 1, 9).unwrap();
    let mut d3 = GraphDelta::new();
    d3.add_nodes(1);
    let new_node = g.n() as u32;
    for u in 0..10 {
        d3.add_edge(u, new_node);
    }
    let deltas = vec![d1, d2, d3];

    // Reference: the stream applied one delta at a time.
    let seq = Registry::with_capacity(4);
    seq.insert_graph("pp", g.clone());
    let _ = seq.get_or_cluster("pp", &cfg).unwrap();
    for d in &deltas {
        seq.apply_delta("pp", d, &DeltaPolicy::WarmRefresh(wcfg.clone()))
            .unwrap();
    }

    // One coalesced pass.
    let stream = Registry::with_capacity(4);
    stream.insert_graph("pp", g.clone());
    let resident = stream.get_or_cluster("pp", &cfg).unwrap();
    let refreshes_before = stream.stats().refreshes;
    let rep = stream
        .apply_delta_stream("pp", &deltas, &DeltaPolicy::WarmRefresh(wcfg.clone()))
        .unwrap();
    assert_eq!(rep.refreshed, 1);
    assert_eq!(
        stream.stats().refreshes,
        refreshes_before + 1,
        "the whole stream must cost one warm-start pass"
    );

    // The patched graph matches the one-by-one application exactly.
    let g_seq = seq.graph("pp").unwrap();
    let g_stream = stream.graph("pp").unwrap();
    assert_eq!(*g_seq, *g_stream, "coalesced patch diverged");
    assert_eq!((rep.n, rep.m), (g_seq.n(), g_seq.m()));

    // The coalesced refresh is bit-for-bit the direct warm start with
    // the coalesced delta (determinism), and both routes label the
    // mutated graph accurately.
    let coalesced = GraphDelta::coalesce(&g, &deltas).unwrap();
    let direct = lbc_core::warm_start(&g_stream, &cfg, &resident, &coalesced, &wcfg).unwrap();
    let stream_out = stream.cached("pp", &cfg).unwrap();
    assert_bit_identical(&direct.output, &stream_out);
    let seq_out = seq.cached("pp", &cfg).unwrap();
    for out in [&stream_out, &seq_out] {
        let acc = lbc_eval::accuracy(truth.labels(), &out.partition.labels()[..truth.n()]);
        assert!(acc > 0.9, "post-stream accuracy {acc}");
    }
    // And the new node joined the block it was wired into.
    assert_eq!(
        stream_out.partition.labels()[new_node as usize],
        stream_out.partition.labels()[0]
    );
}

#[test]
fn store_errors_are_typed_not_panics() {
    let r = Registry::with_capacity(2);
    // No store attached.
    assert!(r.boot_from_store("x").is_err());
    assert!(r.store_dataset_names().is_err());
    assert!(r.spill_to_store("x").is_err());
    assert!(!r.store_attached());
    assert!(!r.has_store_dataset("x"));
    // Attached, but unknown dataset.
    let dir = store_dir("errors");
    r.attach_store(&dir, SpillPolicy::OnEvict).unwrap();
    assert!(r.store_attached());
    assert!(r.boot_from_store("nope").is_err());
    assert!(r.spill_to_store("nope").is_err());
    assert!(r.boot_all_from_store().unwrap().is_empty());
}

#[test]
fn stats_surface_store_counters() {
    let dir = store_dir("stats");
    let (g, _) = generators::ring_of_cliques(2, 10, 0).unwrap();
    let cfg = LbConfig::new(0.5, 30).with_seed(3);
    let r = Registry::with_capacity(2);
    r.attach_store(&dir, SpillPolicy::OnInsert).unwrap();
    r.insert_graph("ring", g);
    let _ = r.get_or_cluster("ring", &cfg).unwrap();
    let s = r.stats();
    assert!(s.spills >= 1);
    assert!(s.store_bytes > 0);
    assert_eq!(s.loads, 0);
    let ratio = s.hit_ratio_percent();
    assert!((0.0..=100.0).contains(&ratio));
    // A dependent arm with hits: ratio strictly positive.
    let _ = r.get_or_cluster("ring", &cfg).unwrap();
    assert!(r.stats().hit_ratio_percent() > 0.0);
    assert_eq!(lbc_runtime::CacheStats::default().hit_ratio_percent(), 0.0);
}
