//! Symmetric operator abstraction and the graph random-walk operator.
//!
//! The paper's analysis is phrased in terms of the random walk matrix
//! `P = A/d` of a `d`-regular graph (§2.1). For almost-regular graphs,
//! §4.5 passes to the `D`-regular graph `G*` obtained by adding `D − d_v`
//! self-loops at each node, whose walk matrix is
//! `P*_{uv} = 1/D` for edges and `P*_{vv} = 1 − d_v/D`. [`WalkOperator`]
//! implements exactly this (with `D = Δ` by default), which is symmetric
//! for any unweighted graph and coincides with `P` when the graph is
//! regular.

use lbc_graph::Graph;

/// Anything that can apply a symmetric linear operator on `R^n`.
pub trait SymOp: Sync {
    /// Dimension `n`.
    fn dim(&self) -> usize;

    /// `y = A x`. `y` is fully overwritten.
    fn apply(&self, x: &[f64], y: &mut [f64]);

    /// Convenience allocation form.
    fn apply_vec(&self, x: &[f64]) -> Vec<f64> {
        let mut y = vec![0.0; self.dim()];
        self.apply(x, &mut y);
        y
    }
}

/// Random-walk operator `P*` of a graph, with the §4.5 self-loop
/// regularisation: `(P* x)(v) = (Σ_{w∈N(v)} x(w) + (D − d_v)·x(v)) / D`.
pub struct WalkOperator<'g> {
    graph: &'g Graph,
    /// Regularisation degree `D ≥ Δ`.
    cap: usize,
    /// Allow row-parallelism (scoped threads) for large graphs.
    parallel: bool,
}

/// Minimum rows per worker thread before `apply` spawns it: a spawn+join
/// costs tens of microseconds, so each thread must carry at least a
/// comparable amount of row work or the "parallel" path loses to the
/// serial one. Below `2 × MIN_ROWS_PER_WORKER` rows, `apply` stays
/// single-threaded no matter what.
const MIN_ROWS_PER_WORKER: usize = 16_384;

impl<'g> WalkOperator<'g> {
    /// Operator with `D = max(Δ, 1)` (the canonical choice).
    pub fn new(graph: &'g Graph) -> Self {
        let cap = graph.max_degree().max(1);
        WalkOperator {
            graph,
            cap,
            parallel: true,
        }
    }

    /// Operator with an explicit degree cap `D ≥ Δ`.
    ///
    /// # Panics
    /// If `cap < Δ` (the operator would not be stochastic).
    pub fn with_cap(graph: &'g Graph, cap: usize) -> Self {
        assert!(
            cap >= graph.max_degree().max(1),
            "cap {cap} below max degree {}",
            graph.max_degree()
        );
        WalkOperator {
            graph,
            cap,
            parallel: true,
        }
    }

    /// Degree cap `D`.
    pub fn cap(&self) -> usize {
        self.cap
    }

    /// Allow or forbid row-parallelism (allowed by default; the worker
    /// count is sized from the dimension, so small operators run
    /// serially either way).
    pub fn set_parallel(&mut self, parallel: bool) {
        self.parallel = parallel;
    }

    /// Worker threads `apply` will use: one per `MIN_ROWS_PER_WORKER`
    /// rows, capped by the core count.
    fn workers(&self) -> usize {
        if !self.parallel {
            return 1;
        }
        let by_size = self.graph.n() / MIN_ROWS_PER_WORKER;
        let cores = std::thread::available_parallelism().map_or(1, |p| p.get());
        by_size.clamp(1, cores)
    }

    #[inline]
    fn row(&self, v: usize, x: &[f64]) -> f64 {
        let g = self.graph;
        let d_v = g.degree(v as u32);
        let mut acc = (self.cap - d_v) as f64 * x[v];
        for &w in g.neighbours(v as u32) {
            acc += x[w as usize];
        }
        acc / self.cap as f64
    }
}

impl SymOp for WalkOperator<'_> {
    fn dim(&self) -> usize {
        self.graph.n()
    }

    fn apply(&self, x: &[f64], y: &mut [f64]) {
        debug_assert_eq!(x.len(), self.dim());
        debug_assert_eq!(y.len(), self.dim());
        let workers = self.workers();
        if workers > 1 {
            // Rows are independent: split `y` into one contiguous chunk
            // per worker and compute each chunk on its own scoped thread.
            let chunk = self.dim().div_ceil(workers);
            std::thread::scope(|scope| {
                for (c, ys) in y.chunks_mut(chunk).enumerate() {
                    let base = c * chunk;
                    scope.spawn(move || {
                        for (i, yv) in ys.iter_mut().enumerate() {
                            *yv = self.row(base + i, x);
                        }
                    });
                }
            });
        } else {
            for (v, yv) in y.iter_mut().enumerate() {
                *yv = self.row(v, x);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lbc_graph::generators;

    #[test]
    fn walk_operator_is_stochastic() {
        let g = generators::cycle(7).unwrap();
        let op = WalkOperator::new(&g);
        let ones = vec![1.0; 7];
        let y = op.apply_vec(&ones);
        for v in y {
            assert!((v - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn regular_graph_matches_adjacency_over_d() {
        let g = generators::cycle(5).unwrap();
        let op = WalkOperator::new(&g);
        let mut x = vec![0.0; 5];
        x[0] = 1.0;
        let y = op.apply_vec(&x);
        // Mass 1 at node 0 spreads half to each neighbour.
        assert_eq!(y[1], 0.5);
        assert_eq!(y[4], 0.5);
        assert_eq!(y[0], 0.0);
        assert_eq!(y[2], 0.0);
    }

    #[test]
    fn irregular_graph_keeps_lazy_mass() {
        // Path 0-1-2: Δ = 2, so P* at endpoint 0 keeps mass 1/2.
        let g = lbc_graph::Graph::from_edges(3, &[(0, 1), (1, 2)]).unwrap();
        let op = WalkOperator::new(&g);
        let y = op.apply_vec(&[1.0, 0.0, 0.0]);
        assert_eq!(y, vec![0.5, 0.5, 0.0]);
    }

    #[test]
    fn symmetry_of_operator() {
        let (g, _) = generators::planted_partition(2, 15, 0.4, 0.1, 5).unwrap();
        let op = WalkOperator::new(&g);
        let n = g.n();
        // <P e_i, e_j> == <e_i, P e_j> for a few random pairs.
        for (i, j) in [(0usize, 5usize), (3, 17), (10, 29)] {
            let mut ei = vec![0.0; n];
            ei[i] = 1.0;
            let mut ej = vec![0.0; n];
            ej[j] = 1.0;
            let pij = op.apply_vec(&ei)[j];
            let pji = op.apply_vec(&ej)[i];
            assert!((pij - pji).abs() < 1e-15);
        }
    }

    #[test]
    fn explicit_cap_increases_laziness() {
        let g = generators::cycle(4).unwrap();
        let op = WalkOperator::with_cap(&g, 4);
        let y = op.apply_vec(&[1.0, 0.0, 0.0, 0.0]);
        assert_eq!(y[0], 0.5); // (4-2)/4
        assert_eq!(y[1], 0.25);
    }

    #[test]
    #[should_panic]
    fn cap_below_max_degree_panics() {
        let g = generators::complete(5).unwrap();
        let _ = WalkOperator::with_cap(&g, 2);
    }

    #[test]
    fn parallel_and_serial_agree() {
        // Large enough that workers() actually requests several threads
        // (on multi-core machines); the outputs must match exactly.
        let g = generators::cycle(50_000).unwrap();
        let mut op = WalkOperator::new(&g);
        let x: Vec<f64> = (0..g.n()).map(|i| (i as f64).sin()).collect();
        op.set_parallel(false);
        let y1 = op.apply_vec(&x);
        op.set_parallel(true);
        let y2 = op.apply_vec(&x);
        for (a, b) in y1.iter().zip(&y2) {
            assert!((a - b).abs() < 1e-15);
        }
    }

    #[test]
    fn small_operators_never_spawn() {
        let g = generators::cycle(64).unwrap();
        let op = WalkOperator::new(&g);
        assert_eq!(op.workers(), 1, "sub-chunk operator must stay serial");
    }
}
