//! Implicit-shift QL eigensolver for symmetric tridiagonal matrices.
//!
//! This is the classic `tql2`/`tqli` algorithm (EISPACK; Numerical
//! Recipes §11.3): Wilkinson-shifted QL iterations with plane rotations,
//! accumulating the rotations into an eigenvector matrix. It is the
//! production path for the Lanczos post-solve; [`crate::jacobi`] is the
//! independent cross-check.

/// Eigendecomposition of the symmetric tridiagonal matrix with diagonal
/// `d` (length `n`) and subdiagonal `e` (length `n − 1`; `e[i]` couples
/// rows `i` and `i+1`).
///
/// Returns `(eigenvalues, eigenvectors)` sorted by *descending*
/// eigenvalue; `eigenvectors[i]` is the unit eigenvector for
/// `eigenvalues[i]` expressed in the original coordinates.
///
/// Errors if some eigenvalue fails to converge within `max_iter`
/// iterations (30 is the customary bound; we default callers to 64).
pub fn tridiag_eigen(
    d: &[f64],
    e: &[f64],
    max_iter: usize,
) -> Result<(Vec<f64>, Vec<Vec<f64>>), String> {
    let n = d.len();
    if n == 0 {
        return Ok((vec![], vec![]));
    }
    assert_eq!(e.len(), n.saturating_sub(1), "subdiagonal length mismatch");
    let mut d = d.to_vec();
    // ee[i] couples rows i and i+1; ee[n−1] is a zero sentinel.
    let mut ee = vec![0.0; n];
    if n > 1 {
        ee[..(n - 1)].copy_from_slice(e);
    }
    // z[r][c]: rotation accumulator, columns are eigenvectors.
    let mut z = vec![vec![0.0; n]; n];
    for (i, row) in z.iter_mut().enumerate() {
        row[i] = 1.0;
    }

    for l in 0..n {
        let mut iter = 0usize;
        loop {
            // Find the first decoupled block boundary m ≥ l.
            let mut m = l;
            while m + 1 < n {
                let dd = d[m].abs() + d[m + 1].abs();
                if ee[m].abs() <= f64::EPSILON * dd {
                    break;
                }
                m += 1;
            }
            if m == l {
                break;
            }
            iter += 1;
            if iter > max_iter {
                return Err(format!("tridiag_eigen: no convergence at index {l}"));
            }
            // Wilkinson-style shift.
            let mut g = (d[l + 1] - d[l]) / (2.0 * ee[l]);
            let mut r = g.hypot(1.0);
            g = d[m] - d[l] + ee[l] / (g + if g >= 0.0 { r.abs() } else { -r.abs() });
            let (mut s, mut c) = (1.0f64, 1.0f64);
            let mut p = 0.0f64;
            let mut i = m;
            while i > l {
                let i1 = i - 1;
                let mut f = s * ee[i1];
                let b = c * ee[i1];
                r = f.hypot(g);
                ee[i] = r;
                if r == 0.0 {
                    d[i] -= p;
                    ee[m] = 0.0;
                    break;
                }
                s = f / r;
                c = g / r;
                g = d[i] - p;
                r = (d[i1] - g) * s + 2.0 * c * b;
                p = s * r;
                d[i] = g + p;
                g = c * r - b;
                // Accumulate rotation into columns i-1, i of z.
                for zr in z.iter_mut() {
                    f = zr[i];
                    zr[i] = s * zr[i1] + c * f;
                    zr[i1] = c * zr[i1] - s * f;
                }
                i -= 1;
            }
            if r == 0.0 && i > l {
                continue;
            }
            d[l] -= p;
            ee[l] = g;
            ee[m] = 0.0;
        }
    }

    // Sort descending, extract columns.
    let mut idx: Vec<usize> = (0..n).collect();
    idx.sort_by(|&a, &b| d[b].partial_cmp(&d[a]).unwrap());
    let vals: Vec<f64> = idx.iter().map(|&i| d[i]).collect();
    let vecs: Vec<Vec<f64>> = idx
        .iter()
        .map(|&col| (0..n).map(|row| z[row][col]).collect())
        .collect();
    Ok((vals, vecs))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dense::DenseSym;
    use crate::jacobi::jacobi_eigen;
    use crate::{dot, norm};

    fn residual_check(d: &[f64], e: &[f64], vals: &[f64], vecs: &[Vec<f64>], tol: f64) {
        let a = DenseSym::tridiagonal(d, e);
        for (i, v) in vecs.iter().enumerate() {
            assert!((norm(v) - 1.0).abs() < tol);
            let av = a.matvec(v);
            for j in 0..d.len() {
                assert!(
                    (av[j] - vals[i] * v[j]).abs() < tol,
                    "residual pair {i}: {} vs {}",
                    av[j],
                    vals[i] * v[j]
                );
            }
        }
        for i in 0..vecs.len() {
            for j in (i + 1)..vecs.len() {
                assert!(dot(&vecs[i], &vecs[j]).abs() < tol);
            }
        }
    }

    #[test]
    fn empty_and_single() {
        let (v, w) = tridiag_eigen(&[], &[], 64).unwrap();
        assert!(v.is_empty() && w.is_empty());
        let (v, w) = tridiag_eigen(&[4.0], &[], 64).unwrap();
        assert_eq!(v, vec![4.0]);
        assert_eq!(w, vec![vec![1.0]]);
    }

    #[test]
    fn two_by_two_exact() {
        // [[1, 2], [2, 1]] → eigenvalues 3, -1.
        let (vals, vecs) = tridiag_eigen(&[1.0, 1.0], &[2.0], 64).unwrap();
        assert!((vals[0] - 3.0).abs() < 1e-12);
        assert!((vals[1] + 1.0).abs() < 1e-12);
        residual_check(&[1.0, 1.0], &[2.0], &vals, &vecs, 1e-10);
    }

    #[test]
    fn path_graph_laplacian_eigenvalues() {
        // Laplacian of path P4: known eigenvalues 2 - 2cos(jπ/4)·... use
        // the standard formula λ_j = 2 − 2 cos(jπ/n), j = 0..n−1? For a
        // path with n nodes the Laplacian eigenvalues are
        // 4 sin²(jπ/(2n)), j = 0..n−1.
        let n = 6usize;
        let d: Vec<f64> = (0..n)
            .map(|i| if i == 0 || i == n - 1 { 1.0 } else { 2.0 })
            .collect();
        let e = vec![-1.0; n - 1];
        let (mut vals, vecs) = tridiag_eigen(&d, &e, 64).unwrap();
        residual_check(&d, &e, &vals, &vecs, 1e-9);
        vals.sort_by(|a, b| a.partial_cmp(b).unwrap());
        for (j, &v) in vals.iter().enumerate() {
            let expect = 4.0
                * (j as f64 * std::f64::consts::PI / (2.0 * n as f64))
                    .sin()
                    .powi(2);
            assert!((v - expect).abs() < 1e-9, "j={j}: {v} vs {expect}");
        }
    }

    #[test]
    fn agrees_with_jacobi_on_random_tridiagonals() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(23);
        for n in [2usize, 3, 7, 20, 45] {
            let d: Vec<f64> = (0..n).map(|_| rng.random_range(-2.0..2.0)).collect();
            let e: Vec<f64> = (0..n - 1).map(|_| rng.random_range(-1.0..1.0)).collect();
            let (vals_ql, vecs_ql) = tridiag_eigen(&d, &e, 64).unwrap();
            let a = DenseSym::tridiagonal(&d, &e);
            let (vals_j, _) = jacobi_eigen(&a, 200, 1e-14);
            for (x, y) in vals_ql.iter().zip(&vals_j) {
                assert!((x - y).abs() < 1e-8, "n={n}: {x} vs {y}");
            }
            residual_check(&d, &e, &vals_ql, &vecs_ql, 1e-8);
        }
    }

    #[test]
    fn zero_coupling_decouples_blocks() {
        // diag(1, 5) with no coupling.
        let (vals, vecs) = tridiag_eigen(&[1.0, 5.0], &[0.0], 64).unwrap();
        assert_eq!(vals, vec![5.0, 1.0]);
        residual_check(&[1.0, 5.0], &[0.0], &vals, &vecs, 1e-12);
    }
}
