//! Lanczos iteration with full reorthogonalisation.
//!
//! Computes the algebraically largest eigenpairs of a symmetric operator
//! — exactly what the paper needs: the top `k+1` eigenpairs of the random
//! walk matrix `P` determine `λ_k`, `λ_{k+1}`, the gap `1 − λ_{k+1}`, the
//! projector `Q` of Lemma 4.1, and the spectral-clustering baseline.
//!
//! Full reorthogonalisation (every new Krylov vector is re-orthogonalised
//! against the whole basis, twice) costs `O(steps² · n)` but eliminates
//! the ghost-eigenvalue pathology, which matters here because
//! well-clustered graphs have `k` eigenvalues crowded together near 1.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::gram_schmidt::deflate;
use crate::ops::SymOp;
use crate::tridiag::tridiag_eigen;
use crate::{axpy, dot, normalize};

/// Result of an eigensolve: `values[i]` ↔ unit vector `vectors[i]`,
/// sorted by descending eigenvalue.
#[derive(Debug, Clone)]
pub struct EigenPairs {
    pub values: Vec<f64>,
    pub vectors: Vec<Vec<f64>>,
}

impl EigenPairs {
    /// Number of computed pairs.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether no pairs were computed.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }
}

/// Compute the top `want` eigenpairs of `op` using `steps` Lanczos steps
/// (clamped to `[want, n]`; pass e.g. `4·want + 40` for crowded spectra).
///
/// Deterministic in `seed` (start vector and breakdown restarts).
///
/// ```
/// use lbc_linalg::lanczos::lanczos_top;
/// use lbc_linalg::ops::WalkOperator;
/// use lbc_graph::generators::complete;
///
/// // K_8's walk matrix has eigenvalues 1 and −1/7.
/// let g = complete(8).unwrap();
/// let op = WalkOperator::new(&g);
/// let pairs = lanczos_top(&op, 2, 8, 42);
/// assert!((pairs.values[0] - 1.0).abs() < 1e-9);
/// assert!((pairs.values[1] + 1.0 / 7.0).abs() < 1e-9);
/// ```
///
/// # Panics
/// If `want > op.dim()` or `want == 0`.
pub fn lanczos_top(op: &dyn SymOp, want: usize, steps: usize, seed: u64) -> EigenPairs {
    let n = op.dim();
    assert!(want >= 1, "must request at least one eigenpair");
    assert!(want <= n, "requested {want} pairs from dimension {n}");
    let steps = steps.clamp(want, n);
    let mut rng = StdRng::seed_from_u64(seed);

    let mut basis: Vec<Vec<f64>> = Vec::with_capacity(steps);
    let mut alphas: Vec<f64> = Vec::with_capacity(steps);
    let mut betas: Vec<f64> = Vec::with_capacity(steps.saturating_sub(1));

    // Random unit start vector.
    let mut v = random_unit(n, &mut rng);
    let mut w = vec![0.0; n];

    for j in 0..steps {
        op.apply(&v, &mut w);
        let alpha = dot(&w, &v);
        alphas.push(alpha);
        axpy(-alpha, &v, &mut w);
        if j > 0 {
            let beta_prev = betas[j - 1];
            let prev = &basis[j - 1];
            axpy(-beta_prev, prev, &mut w);
        }
        basis.push(std::mem::replace(&mut v, vec![0.0; n]));
        // Full reorthogonalisation against the entire basis.
        deflate(&basis, &mut w);
        let beta = normalize(&mut w);
        if j + 1 == steps {
            break;
        }
        if beta <= 1e-13 {
            // Invariant subspace found: restart with a fresh random
            // direction orthogonal to everything so far.
            let mut fresh = random_unit(n, &mut rng);
            deflate(&basis, &mut fresh);
            if normalize(&mut fresh) <= 1e-13 {
                // Space exhausted (steps ≥ rank); stop early.
                break;
            }
            betas.push(0.0);
            v = fresh;
        } else {
            betas.push(beta);
            v = std::mem::replace(&mut w, vec![0.0; n]);
            w = vec![0.0; n];
        }
    }

    let q = alphas.len();
    let (tvals, tvecs) = tridiag_eigen(&alphas, &betas[..q.saturating_sub(1)], 64)
        .expect("tridiagonal solve failed");

    let take = want.min(q);
    let mut values = Vec::with_capacity(take);
    let mut vectors = Vec::with_capacity(take);
    for i in 0..take {
        values.push(tvals[i]);
        // Ritz vector: Σ_j y_j · basis_j.
        let mut ritz = vec![0.0; n];
        for (j, b) in basis.iter().enumerate() {
            axpy(tvecs[i][j], b, &mut ritz);
        }
        normalize(&mut ritz);
        vectors.push(ritz);
    }
    EigenPairs { values, vectors }
}

fn random_unit(n: usize, rng: &mut StdRng) -> Vec<f64> {
    loop {
        let mut v: Vec<f64> = (0..n).map(|_| rng.random_range(-1.0..1.0)).collect();
        if normalize(&mut v) > 1e-6 {
            return v;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dense::DenseSym;
    use crate::jacobi::jacobi_eigen;
    use crate::norm;

    #[test]
    fn recovers_diagonal_spectrum() {
        let mut a = DenseSym::zeros(5);
        for (i, &v) in [5.0, 4.0, 3.0, 2.0, 1.0].iter().enumerate() {
            a.set(i, i, v);
        }
        let pairs = lanczos_top(&a, 3, 5, 42);
        assert_eq!(pairs.len(), 3);
        for (i, expect) in [5.0, 4.0, 3.0].iter().enumerate() {
            assert!(
                (pairs.values[i] - expect).abs() < 1e-9,
                "{:?}",
                pairs.values
            );
        }
    }

    #[test]
    fn residuals_small_on_random_matrix() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(5);
        let n = 30;
        let mut a = DenseSym::zeros(n);
        for i in 0..n {
            for j in i..n {
                a.set(i, j, rng.random_range(-1.0..1.0));
            }
        }
        let pairs = lanczos_top(&a, 4, n, 1);
        let (jvals, _) = jacobi_eigen(&a, 200, 1e-14);
        for (i, (pv, jv)) in pairs.values.iter().zip(&jvals).enumerate().take(4) {
            assert!((pv - jv).abs() < 1e-7, "value {i}: {} vs {}", pv, jv);
            let av = a.matvec(&pairs.vectors[i]);
            let mut res = av.clone();
            axpy(-pairs.values[i], &pairs.vectors[i], &mut res);
            assert!(norm(&res) < 1e-7, "residual {i} = {}", norm(&res));
        }
    }

    #[test]
    fn handles_degenerate_spectrum_via_restart() {
        // Identity: every vector is an eigenvector; Lanczos breaks down
        // immediately and must restart.
        let a = DenseSym::identity(8);
        let pairs = lanczos_top(&a, 3, 8, 7);
        assert_eq!(pairs.len(), 3);
        for v in &pairs.values {
            assert!((v - 1.0).abs() < 1e-10);
        }
        // Vectors remain orthonormal.
        for i in 0..3 {
            assert!((norm(&pairs.vectors[i]) - 1.0).abs() < 1e-10);
            for j in (i + 1)..3 {
                assert!(dot(&pairs.vectors[i], &pairs.vectors[j]).abs() < 1e-8);
            }
        }
    }

    #[test]
    fn clustered_eigenvalues_are_separated() {
        // Two eigenvalues very close to 1, rest at 0.2: the regime of
        // well-clustered graphs.
        let mut a = DenseSym::zeros(40);
        a.set(0, 0, 1.0);
        a.set(1, 1, 0.999);
        for i in 2..40 {
            a.set(i, i, 0.2);
        }
        let pairs = lanczos_top(&a, 3, 40, 3);
        assert!((pairs.values[0] - 1.0).abs() < 1e-9);
        assert!((pairs.values[1] - 0.999).abs() < 1e-9);
        assert!((pairs.values[2] - 0.2).abs() < 1e-9);
    }

    #[test]
    #[should_panic]
    fn rejects_zero_request() {
        let a = DenseSym::identity(3);
        let _ = lanczos_top(&a, 0, 3, 1);
    }

    #[test]
    #[should_panic]
    fn rejects_oversized_request() {
        let a = DenseSym::identity(3);
        let _ = lanczos_top(&a, 4, 4, 1);
    }

    #[test]
    fn deterministic_in_seed() {
        let a = DenseSym::identity(6);
        let p1 = lanczos_top(&a, 2, 6, 9);
        let p2 = lanczos_top(&a, 2, 6, 9);
        assert_eq!(p1.values, p2.values);
        assert_eq!(p1.vectors, p2.vectors);
    }
}
