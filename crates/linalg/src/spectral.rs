//! The spectral oracle: `λ_i`, the gap `1 − λ_{k+1}`, the cluster
//! parameter `Υ`, and the paper's round count `T`.
//!
//! The algorithm itself never inspects the spectrum — that is the whole
//! point of the paper — but *setting its parameters* does:
//! `T = Θ(log n / (1 − λ_{k+1}))` (§1.2). Experiments also report `Υ`
//! (Peng et al.'s gap parameter, §1.1) to position each instance against
//! assumption (2). This module packages those quantities.

use lbc_graph::{Graph, Partition};

use crate::lanczos::lanczos_top;
use crate::ops::WalkOperator;

/// Top eigenpairs of the (regularised) random-walk matrix plus derived
/// cluster-structure quantities.
#[derive(Debug, Clone)]
pub struct ClusterSpectrum {
    /// `λ_1 ≥ λ_2 ≥ …` (as many as requested).
    pub lambdas: Vec<f64>,
    /// Unit eigenvectors `f_1, f_2, …` matching `lambdas`.
    pub vectors: Vec<Vec<f64>>,
}

impl ClusterSpectrum {
    /// `λ_i`, 1-indexed as in the paper.
    pub fn lambda(&self, i: usize) -> f64 {
        assert!(i >= 1 && i <= self.lambdas.len(), "λ_{i} not computed");
        self.lambdas[i - 1]
    }

    /// Spectral gap `1 − λ_{k+1}` (needs `k+1` computed pairs).
    pub fn gap(&self, k: usize) -> f64 {
        1.0 - self.lambda(k + 1)
    }
}

/// Computes and caches spectral quantities for one graph.
pub struct SpectralOracle {
    n: usize,
    spectrum: ClusterSpectrum,
}

impl SpectralOracle {
    /// Compute the top `q` eigenpairs of the graph's walk operator
    /// (regularised to `D = Δ` self-loops per §4.5 when irregular).
    ///
    /// `q` must satisfy `1 ≤ q ≤ n`. For clustering use `q = k + 1`.
    pub fn compute(graph: &Graph, q: usize, seed: u64) -> Self {
        let op = WalkOperator::new(graph);
        // Crowded spectra near 1 need generous Krylov space.
        let steps = (4 * q + 40).min(graph.n());
        let pairs = lanczos_top(&op, q, steps, seed);
        SpectralOracle {
            n: graph.n(),
            spectrum: ClusterSpectrum {
                lambdas: pairs.values,
                vectors: pairs.vectors,
            },
        }
    }

    /// The underlying spectrum.
    pub fn spectrum(&self) -> &ClusterSpectrum {
        &self.spectrum
    }

    /// `λ_i`, 1-indexed.
    pub fn lambda(&self, i: usize) -> f64 {
        self.spectrum.lambda(i)
    }

    /// Gap `1 − λ_{k+1}`.
    pub fn gap(&self, k: usize) -> f64 {
        self.spectrum.gap(k)
    }

    /// The paper's round count `T = ⌈c · ln n / (1 − λ_{k+1})⌉` (§1.2).
    ///
    /// `c` is the hidden constant; experiments use small values (1–4).
    /// The gap is floored at `1e-9` so pathological inputs produce a
    /// large-but-finite round count instead of a panic.
    pub fn rounds(&self, k: usize, c: f64) -> usize {
        rounds_for_gap(self.n, self.gap(k), c)
    }

    /// `Υ = (1 − λ_{k+1}) / ρ(k)`, with `ρ(k)` *approximated from above*
    /// by the conductance the reference partition achieves
    /// (`max_i ϕ_G(S_i)`). Computing the exact `ρ(k)` is coNP-hard
    /// (§1.1), so this is the standard proxy: the reported `Υ` is a
    /// lower bound on the true value.
    pub fn upsilon(&self, graph: &Graph, reference: &Partition) -> f64 {
        let rho = reference.max_conductance(graph);
        if rho <= 0.0 {
            return f64::INFINITY;
        }
        self.gap(reference.k()) / rho
    }
}

/// `T = ⌈c · ln n / gap⌉`, floored gap, minimum 1 round.
pub fn rounds_for_gap(n: usize, gap: f64, c: f64) -> usize {
    let gap = gap.max(1e-9);
    let t = c * (n.max(2) as f64).ln() / gap;
    t.ceil().max(1.0) as usize
}

#[cfg(test)]
mod tests {
    use super::*;
    use lbc_graph::generators;

    #[test]
    fn cycle_spectrum_matches_closed_form() {
        // Cycle C_n: walk matrix eigenvalues cos(2πj/n).
        let n = 12;
        let g = generators::cycle(n).unwrap();
        let oracle = SpectralOracle::compute(&g, 4, 1);
        let tau = 2.0 * std::f64::consts::PI / n as f64;
        // λ_1 = 1, λ_2 = λ_3 = cos(2π/n), λ_4 = cos(4π/n).
        assert!((oracle.lambda(1) - 1.0).abs() < 1e-8);
        assert!((oracle.lambda(2) - tau.cos()).abs() < 1e-8);
        assert!((oracle.lambda(3) - tau.cos()).abs() < 1e-8);
        assert!((oracle.lambda(4) - (2.0 * tau).cos()).abs() < 1e-8);
    }

    #[test]
    fn complete_graph_spectrum() {
        // K_n: eigenvalues 1 and −1/(n−1) (multiplicity n−1).
        let g = generators::complete(8).unwrap();
        let oracle = SpectralOracle::compute(&g, 3, 2);
        assert!((oracle.lambda(1) - 1.0).abs() < 1e-9);
        assert!((oracle.lambda(2) + 1.0 / 7.0).abs() < 1e-9);
        assert!((oracle.lambda(3) + 1.0 / 7.0).abs() < 1e-9);
    }

    #[test]
    fn well_clustered_graph_has_k_eigenvalues_near_one() {
        let (g, p) = generators::ring_of_cliques(4, 12, 0).unwrap();
        let oracle = SpectralOracle::compute(&g, 5, 3);
        // λ_1..λ_4 near 1, λ_5 bounded away.
        for i in 1..=4 {
            assert!(oracle.lambda(i) > 0.9, "λ_{i} = {}", oracle.lambda(i));
        }
        assert!(oracle.lambda(5) < 0.5, "λ_5 = {}", oracle.lambda(5));
        let upsilon = oracle.upsilon(&g, &p);
        assert!(upsilon > 10.0, "Υ = {upsilon}");
    }

    #[test]
    fn poorly_clustered_graph_has_small_upsilon() {
        let g = generators::cycle(64).unwrap();
        let p = Partition::from_sizes(&[32, 32]);
        let oracle = SpectralOracle::compute(&g, 3, 4);
        let upsilon = oracle.upsilon(&g, &p);
        // Cycle halves: gap tiny, conductance moderate.
        assert!(upsilon < 5.0, "Υ = {upsilon}");
    }

    #[test]
    fn rounds_scale_inversely_with_gap() {
        assert_eq!(rounds_for_gap(100, 1.0, 1.0), 5);
        let slow = rounds_for_gap(100, 0.01, 1.0);
        let fast = rounds_for_gap(100, 0.5, 1.0);
        assert!(slow > 50 * fast / 2, "slow={slow} fast={fast}");
        // Zero gap is floored, not a panic.
        assert!(rounds_for_gap(100, 0.0, 1.0) > 1_000_000);
        // Minimum one round.
        assert_eq!(rounds_for_gap(2, 1e9, 1.0), 1);
    }

    #[test]
    fn upsilon_with_zero_conductance_is_infinite() {
        // Two disjoint cliques: perfect clusters, ρ = 0.
        let (g, p) = generators::planted_partition(2, 6, 1.0, 0.0, 1).unwrap();
        let oracle = SpectralOracle::compute(&g, 3, 5);
        assert!(oracle.upsilon(&g, &p).is_infinite());
    }

    #[test]
    #[should_panic]
    fn lambda_out_of_range_panics() {
        let g = generators::complete(4).unwrap();
        let oracle = SpectralOracle::compute(&g, 2, 1);
        let _ = oracle.lambda(3);
    }
}
