//! Small dense symmetric matrices (row-major, flat storage).
//!
//! Used for the Lanczos tridiagonal problem, the Jacobi reference solver,
//! and test fixtures. These are `O(q²)` objects with `q ≪ n`, so clarity
//! beats blocking/SIMD here.

use crate::ops::SymOp;

/// Dense symmetric matrix. Stores the full square for simplicity; the
/// constructor enforces symmetry.
#[derive(Debug, Clone, PartialEq)]
pub struct DenseSym {
    n: usize,
    data: Vec<f64>,
}

impl DenseSym {
    /// Zero matrix of size `n × n`.
    pub fn zeros(n: usize) -> Self {
        DenseSym {
            n,
            data: vec![0.0; n * n],
        }
    }

    /// Identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n);
        for i in 0..n {
            m.set(i, i, 1.0);
        }
        m
    }

    /// Build from a row-major slice, checking symmetry to `tol`.
    pub fn from_rows(n: usize, data: Vec<f64>, tol: f64) -> Result<Self, String> {
        if data.len() != n * n {
            return Err(format!("expected {} entries, got {}", n * n, data.len()));
        }
        for i in 0..n {
            for j in (i + 1)..n {
                if (data[i * n + j] - data[j * n + i]).abs() > tol {
                    return Err(format!("asymmetric at ({i}, {j})"));
                }
            }
        }
        Ok(DenseSym { n, data })
    }

    /// Symmetric tridiagonal matrix from diagonal `d` and subdiagonal `e`
    /// (`e[i]` couples `i` and `i+1`).
    pub fn tridiagonal(d: &[f64], e: &[f64]) -> Self {
        assert!(e.len() + 1 == d.len() || (d.is_empty() && e.is_empty()));
        let n = d.len();
        let mut m = Self::zeros(n);
        for (i, &di) in d.iter().enumerate() {
            m.set(i, i, di);
        }
        for (i, &ei) in e.iter().enumerate() {
            m.set(i, i + 1, ei);
            m.set(i + 1, i, ei);
        }
        m
    }

    /// Dimension.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Entry `(i, j)`.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> f64 {
        self.data[i * self.n + j]
    }

    /// Set entry `(i, j)` *and* `(j, i)`.
    #[inline]
    pub fn set(&mut self, i: usize, j: usize, v: f64) {
        self.data[i * self.n + j] = v;
        self.data[j * self.n + i] = v;
    }

    /// Row `i` as a slice.
    pub fn row(&self, i: usize) -> &[f64] {
        &self.data[i * self.n..(i + 1) * self.n]
    }

    /// `y = A x` into a fresh vector.
    pub fn matvec(&self, x: &[f64]) -> Vec<f64> {
        let mut y = vec![0.0; self.n];
        self.apply(x, &mut y);
        y
    }

    /// Frobenius norm of the off-diagonal part (Jacobi convergence
    /// criterion).
    pub fn offdiag_norm(&self) -> f64 {
        let mut s = 0.0;
        for i in 0..self.n {
            for j in 0..self.n {
                if i != j {
                    let v = self.get(i, j);
                    s += v * v;
                }
            }
        }
        s.sqrt()
    }
}

impl SymOp for DenseSym {
    fn dim(&self) -> usize {
        self.n
    }

    fn apply(&self, x: &[f64], y: &mut [f64]) {
        debug_assert_eq!(x.len(), self.n);
        debug_assert_eq!(y.len(), self.n);
        for (i, yi) in y.iter_mut().enumerate() {
            *yi = crate::dot(self.row(i), x);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_access() {
        let mut m = DenseSym::zeros(3);
        m.set(0, 1, 2.0);
        assert_eq!(m.get(1, 0), 2.0);
        let id = DenseSym::identity(2);
        assert_eq!(id.get(0, 0), 1.0);
        assert_eq!(id.get(0, 1), 0.0);
    }

    #[test]
    fn from_rows_checks_symmetry() {
        assert!(DenseSym::from_rows(2, vec![1.0, 2.0, 2.0, 3.0], 1e-12).is_ok());
        assert!(DenseSym::from_rows(2, vec![1.0, 2.0, 2.5, 3.0], 1e-12).is_err());
        assert!(DenseSym::from_rows(2, vec![1.0], 1e-12).is_err());
    }

    #[test]
    fn tridiagonal_layout() {
        let t = DenseSym::tridiagonal(&[1.0, 2.0, 3.0], &[0.5, 0.25]);
        assert_eq!(t.get(0, 0), 1.0);
        assert_eq!(t.get(0, 1), 0.5);
        assert_eq!(t.get(1, 2), 0.25);
        assert_eq!(t.get(0, 2), 0.0);
    }

    #[test]
    fn matvec_matches_manual() {
        let m = DenseSym::from_rows(2, vec![2.0, 1.0, 1.0, 3.0], 0.0).unwrap();
        let y = m.matvec(&[1.0, 2.0]);
        assert_eq!(y, vec![4.0, 7.0]);
    }

    #[test]
    fn offdiag_norm_zero_for_diagonal() {
        let id = DenseSym::identity(4);
        assert_eq!(id.offdiag_norm(), 0.0);
        let t = DenseSym::tridiagonal(&[0.0, 0.0], &[3.0]);
        assert!((t.offdiag_norm() - (18.0f64).sqrt()).abs() < 1e-12);
    }
}
