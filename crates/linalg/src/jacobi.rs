//! Cyclic Jacobi eigensolver for dense symmetric matrices.
//!
//! Robust reference solver: every rotation is orthogonal, so the computed
//! basis is orthonormal to machine precision and convergence is
//! unconditional for symmetric input. Used directly for small systems and
//! as the cross-check for the tridiagonal QL solver.

use crate::dense::DenseSym;

/// Full eigendecomposition `A = V diag(λ) Vᵀ` of a dense symmetric matrix.
///
/// Returns `(eigenvalues, eigenvectors)` sorted by *descending*
/// eigenvalue; `eigenvectors[i]` is the unit eigenvector for
/// `eigenvalues[i]`.
pub fn jacobi_eigen(a: &DenseSym, max_sweeps: usize, tol: f64) -> (Vec<f64>, Vec<Vec<f64>>) {
    let n = a.n();
    let mut m = a.clone();
    // v[i][j]: j-th component of the i-th column eigenvector accumulator.
    let mut v = vec![vec![0.0; n]; n];
    for (i, row) in v.iter_mut().enumerate() {
        row[i] = 1.0;
    }
    for _sweep in 0..max_sweeps {
        if m.offdiag_norm() <= tol {
            break;
        }
        for p in 0..n {
            for q in (p + 1)..n {
                let apq = m.get(p, q);
                if apq.abs() <= tol / (n as f64).max(1.0) {
                    continue;
                }
                let app = m.get(p, p);
                let aqq = m.get(q, q);
                // Standard stable rotation formulas (Golub & Van Loan §8.5).
                let tau = (aqq - app) / (2.0 * apq);
                let t = if tau >= 0.0 {
                    1.0 / (tau + (1.0 + tau * tau).sqrt())
                } else {
                    -1.0 / (-tau + (1.0 + tau * tau).sqrt())
                };
                let c = 1.0 / (1.0 + t * t).sqrt();
                let s = t * c;
                // Apply rotation G(p, q, θ)ᵀ · M · G(p, q, θ).
                for i in 0..n {
                    let mip = m.get(i, p);
                    let miq = m.get(i, q);
                    if i != p && i != q {
                        m.set(i, p, c * mip - s * miq);
                        m.set(i, q, s * mip + c * miq);
                    }
                }
                let new_pp = c * c * app - 2.0 * s * c * apq + s * s * aqq;
                let new_qq = s * s * app + 2.0 * s * c * apq + c * c * aqq;
                m.set(p, p, new_pp);
                m.set(q, q, new_qq);
                m.set(p, q, 0.0);
                // Accumulate eigenvectors (columns p, q of V).
                for vi in v.iter_mut() {
                    let vip = vi[p];
                    let viq = vi[q];
                    vi[p] = c * vip - s * viq;
                    vi[q] = s * vip + c * viq;
                }
            }
        }
    }
    // Extract and sort.
    let mut idx: Vec<usize> = (0..n).collect();
    let eigenvalues: Vec<f64> = (0..n).map(|i| m.get(i, i)).collect();
    idx.sort_by(|&a, &b| eigenvalues[b].partial_cmp(&eigenvalues[a]).unwrap());
    let sorted_vals: Vec<f64> = idx.iter().map(|&i| eigenvalues[i]).collect();
    let sorted_vecs: Vec<Vec<f64>> = idx
        .iter()
        .map(|&col| (0..n).map(|row| v[row][col]).collect())
        .collect();
    (sorted_vals, sorted_vecs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{dot, norm};

    fn check_decomposition(a: &DenseSym, vals: &[f64], vecs: &[Vec<f64>], tol: f64) {
        let n = a.n();
        assert_eq!(vals.len(), n);
        assert_eq!(vecs.len(), n);
        for i in 0..n {
            assert!((norm(&vecs[i]) - 1.0).abs() < tol, "vec {i} not unit");
            // A v = λ v
            let av = a.matvec(&vecs[i]);
            for j in 0..n {
                assert!(
                    (av[j] - vals[i] * vecs[i][j]).abs() < tol,
                    "eigen residual for pair {i}"
                );
            }
            for j in (i + 1)..n {
                assert!(
                    dot(&vecs[i], &vecs[j]).abs() < tol,
                    "vectors {i},{j} not orthogonal"
                );
            }
        }
        // Descending order.
        for w in vals.windows(2) {
            assert!(w[0] >= w[1] - tol);
        }
    }

    #[test]
    fn two_by_two_known() {
        let a = DenseSym::from_rows(2, vec![2.0, 1.0, 1.0, 2.0], 0.0).unwrap();
        let (vals, vecs) = jacobi_eigen(&a, 50, 1e-14);
        assert!((vals[0] - 3.0).abs() < 1e-12);
        assert!((vals[1] - 1.0).abs() < 1e-12);
        check_decomposition(&a, &vals, &vecs, 1e-10);
    }

    #[test]
    fn diagonal_matrix_is_fixed_point() {
        let mut a = DenseSym::zeros(3);
        a.set(0, 0, 5.0);
        a.set(1, 1, -1.0);
        a.set(2, 2, 2.0);
        let (vals, vecs) = jacobi_eigen(&a, 50, 1e-14);
        assert_eq!(vals, vec![5.0, 2.0, -1.0]);
        check_decomposition(&a, &vals, &vecs, 1e-12);
    }

    #[test]
    fn random_symmetric_decomposition() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(17);
        for n in [3usize, 5, 8, 12] {
            let mut a = DenseSym::zeros(n);
            for i in 0..n {
                for j in i..n {
                    a.set(i, j, rng.random_range(-1.0..1.0));
                }
            }
            let (vals, vecs) = jacobi_eigen(&a, 100, 1e-13);
            check_decomposition(&a, &vals, &vecs, 1e-8);
        }
    }

    #[test]
    fn trace_is_preserved() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(3);
        let n = 6;
        let mut a = DenseSym::zeros(n);
        for i in 0..n {
            for j in i..n {
                a.set(i, j, rng.random_range(-2.0..2.0));
            }
        }
        let trace: f64 = (0..n).map(|i| a.get(i, i)).sum();
        let (vals, _) = jacobi_eigen(&a, 100, 1e-13);
        let sum: f64 = vals.iter().sum();
        assert!((trace - sum).abs() < 1e-9);
    }

    #[test]
    fn one_by_one() {
        let mut a = DenseSym::zeros(1);
        a.set(0, 0, 7.0);
        let (vals, vecs) = jacobi_eigen(&a, 10, 1e-14);
        assert_eq!(vals, vec![7.0]);
        assert_eq!(vecs, vec![vec![1.0]]);
    }
}
