//! Numeric substrate for the load-balancing clustering reproduction.
//!
//! The paper sets its round count from spectral quantities of the random
//! walk matrix `P` (`T = Θ(log n / (1 − λ_{k+1}))`, §1.2) and its analysis
//! lives entirely in the top-`k` eigenspace of `P` (Lemmas 4.1–4.4).
//! Reproducing the experiments therefore needs a real eigensolver; this
//! crate implements one from scratch:
//!
//! * [`dense`] — flat row-major symmetric matrices and vector kernels.
//! * [`ops`] — the [`ops::SymOp`] abstraction (anything that can apply a
//!   symmetric operator) and the graph random-walk operator, including
//!   the §4.5 `G*` self-loop regularisation for non-regular graphs.
//! * [`jacobi`] — cyclic Jacobi eigensolver for small dense matrices.
//! * [`tridiag`] — implicit-shift QL for symmetric tridiagonal matrices.
//! * [`lanczos`] — Lanczos with full reorthogonalisation for the top
//!   eigenpairs of large sparse operators.
//! * [`spectral`] — [`spectral::SpectralOracle`]: `λ_i`, gap, `Υ`, and
//!   the paper's theoretical round count `T`.
//! * [`gram_schmidt`] — orthonormalisation (used by Lemma 4.2's
//!   construction and by the Lanczos basis).

pub mod dense;
pub mod gram_schmidt;
pub mod jacobi;
pub mod lanczos;
pub mod ops;
pub mod power;
pub mod spectral;
pub mod tridiag;

pub use dense::DenseSym;
pub use lanczos::{lanczos_top, EigenPairs};
pub use ops::{SymOp, WalkOperator};
pub use spectral::SpectralOracle;

/// Machine tolerance used across the crate for convergence checks.
pub const EPS: f64 = 1e-12;

/// Dot product.
#[inline]
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// Euclidean norm.
#[inline]
pub fn norm(a: &[f64]) -> f64 {
    dot(a, a).sqrt()
}

/// `y += alpha * x`.
#[inline]
pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    debug_assert_eq!(x.len(), y.len());
    for (yi, xi) in y.iter_mut().zip(x) {
        *yi += alpha * xi;
    }
}

/// Scale a vector in place.
#[inline]
pub fn scale(a: &mut [f64], s: f64) {
    for x in a {
        *x *= s;
    }
}

/// Normalise `a` to unit Euclidean norm; returns the original norm.
/// Leaves zero vectors untouched.
pub fn normalize(a: &mut [f64]) -> f64 {
    let n = norm(a);
    if n > 0.0 {
        scale(a, 1.0 / n);
    }
    n
}

/// `‖a − b‖`.
pub fn dist(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    a.iter()
        .zip(b)
        .map(|(x, y)| (x - y) * (x - y))
        .sum::<f64>()
        .sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vector_kernels() {
        let a = [1.0, 2.0, 2.0];
        let b = [3.0, 0.0, 4.0];
        assert_eq!(dot(&a, &b), 11.0);
        assert_eq!(norm(&a), 3.0);
        let mut y = [1.0, 1.0, 1.0];
        axpy(2.0, &a, &mut y);
        assert_eq!(y, [3.0, 5.0, 5.0]);
        let mut v = [3.0, 4.0];
        let n = normalize(&mut v);
        assert_eq!(n, 5.0);
        assert!((norm(&v) - 1.0).abs() < EPS);
    }

    #[test]
    fn normalize_zero_vector_is_noop() {
        let mut v = [0.0, 0.0];
        assert_eq!(normalize(&mut v), 0.0);
        assert_eq!(v, [0.0, 0.0]);
    }

    #[test]
    fn dist_matches_norm_of_difference() {
        let a = [1.0, 2.0];
        let b = [4.0, 6.0];
        assert!((dist(&a, &b) - 5.0).abs() < EPS);
    }
}
