//! Modified Gram–Schmidt orthonormalisation.
//!
//! Used twice in this workspace: to keep the Lanczos basis orthogonal
//! (full reorthogonalisation), and to reproduce Lemma 4.2's construction
//! of the orthonormal set `{χ̂_i}` from the near-orthonormal projections
//! `{χ̃_i}`.

use crate::{axpy, dot, normalize};

/// Orthonormalise `vectors` in place with modified Gram–Schmidt.
///
/// Vectors that become (numerically) zero — i.e. were linearly dependent
/// on their predecessors — are dropped. Returns the number of vectors
/// kept.
pub fn orthonormalize(vectors: &mut Vec<Vec<f64>>, tol: f64) -> usize {
    let mut kept: Vec<Vec<f64>> = Vec::with_capacity(vectors.len());
    for mut v in vectors.drain(..) {
        for u in &kept {
            let c = dot(u, &v);
            axpy(-c, u, &mut v);
        }
        // Second pass for numerical robustness (classic "twice is enough").
        for u in &kept {
            let c = dot(u, &v);
            axpy(-c, u, &mut v);
        }
        if normalize(&mut v) > tol {
            kept.push(v);
        }
    }
    let n = kept.len();
    *vectors = kept;
    n
}

/// Project `v` onto the orthonormal set `basis` (in-place subtraction of
/// the projection is NOT performed; the projection itself is returned).
pub fn project(basis: &[Vec<f64>], v: &[f64]) -> Vec<f64> {
    let mut out = vec![0.0; v.len()];
    for u in basis {
        let c = dot(u, v);
        axpy(c, u, &mut out);
    }
    out
}

/// Subtract from `v` its components along the orthonormal set `basis`
/// (two passes).
pub fn deflate(basis: &[Vec<f64>], v: &mut [f64]) {
    for _ in 0..2 {
        for u in basis {
            let c = dot(u, v);
            axpy(-c, u, v);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::norm;

    #[test]
    fn orthonormalizes_independent_set() {
        let mut vs = vec![
            vec![1.0, 1.0, 0.0],
            vec![1.0, 0.0, 1.0],
            vec![0.0, 1.0, 1.0],
        ];
        let kept = orthonormalize(&mut vs, 1e-10);
        assert_eq!(kept, 3);
        for i in 0..3 {
            assert!((norm(&vs[i]) - 1.0).abs() < 1e-12);
            for j in (i + 1)..3 {
                assert!(dot(&vs[i], &vs[j]).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn drops_dependent_vectors() {
        let mut vs = vec![
            vec![1.0, 0.0],
            vec![2.0, 0.0], // dependent
            vec![0.0, 3.0],
        ];
        let kept = orthonormalize(&mut vs, 1e-10);
        assert_eq!(kept, 2);
    }

    #[test]
    fn empty_input() {
        let mut vs: Vec<Vec<f64>> = vec![];
        assert_eq!(orthonormalize(&mut vs, 1e-10), 0);
    }

    #[test]
    fn projection_recovers_in_span_component() {
        let mut basis = vec![vec![1.0, 0.0, 0.0], vec![0.0, 1.0, 0.0]];
        orthonormalize(&mut basis, 1e-10);
        let v = vec![3.0, 4.0, 5.0];
        let p = project(&basis, &v);
        assert_eq!(p, vec![3.0, 4.0, 0.0]);
    }

    #[test]
    fn deflate_leaves_orthogonal_component() {
        let basis = vec![vec![1.0, 0.0, 0.0]];
        let mut v = vec![3.0, 4.0, 0.0];
        deflate(&basis, &mut v);
        assert!((v[0]).abs() < 1e-12);
        assert_eq!(v[1], 4.0);
    }
}
