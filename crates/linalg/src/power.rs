//! Power iteration with deflation — an independent second path to the
//! top eigenpairs.
//!
//! Lanczos ([`crate::lanczos`]) is the production solver; power
//! iteration is algorithmically unrelated (no Krylov recurrence, no
//! tridiagonal solve), which makes agreement between the two a strong
//! correctness signal. The spectral oracle's tests cross-check them on
//! clustered graphs, where the near-degenerate top eigenvalues are
//! exactly the hard case.
//!
//! Deflation note: plain power iteration converges to the *dominant in
//! magnitude* eigenvalue. Walk matrices can have `λ_n` close to `−1`;
//! callers who need the *algebraically* largest values should apply the
//! standard shift `(A + I)/2` (see [`ShiftedOp`]).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::gram_schmidt::deflate;
use crate::lanczos::EigenPairs;
use crate::ops::SymOp;
use crate::{dot, normalize};

/// `B = (A + I)/2`: maps eigenvalue `λ` to `(λ+1)/2 ∈ \[0, 1\]` for walk
/// matrices, making the algebraically-largest eigenvalue dominant in
/// magnitude.
pub struct ShiftedOp<'a> {
    inner: &'a dyn SymOp,
}

impl<'a> ShiftedOp<'a> {
    /// Wrap `inner` as `(inner + I)/2`.
    pub fn new(inner: &'a dyn SymOp) -> Self {
        ShiftedOp { inner }
    }

    /// Map a shifted eigenvalue back: `λ = 2μ − 1`.
    pub fn unshift(mu: f64) -> f64 {
        2.0 * mu - 1.0
    }
}

impl SymOp for ShiftedOp<'_> {
    fn dim(&self) -> usize {
        self.inner.dim()
    }

    fn apply(&self, x: &[f64], y: &mut [f64]) {
        self.inner.apply(x, y);
        for (yi, xi) in y.iter_mut().zip(x) {
            *yi = 0.5 * (*yi + xi);
        }
    }
}

/// Top `want` eigenpairs (by magnitude) via deflated power iteration.
///
/// Each pair runs up to `max_iters` iterations, stopping early when the
/// Rayleigh quotient stabilises to `tol`. Deterministic in `seed`.
///
/// # Panics
/// If `want == 0` or `want > op.dim()`.
pub fn power_top(op: &dyn SymOp, want: usize, max_iters: usize, tol: f64, seed: u64) -> EigenPairs {
    let n = op.dim();
    assert!(want >= 1 && want <= n, "want = {want} out of range");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut values = Vec::with_capacity(want);
    let mut vectors: Vec<Vec<f64>> = Vec::with_capacity(want);
    let mut w = vec![0.0; n];
    for _ in 0..want {
        let mut v: Vec<f64> = (0..n).map(|_| rng.random_range(-1.0..1.0)).collect();
        deflate(&vectors, &mut v);
        if normalize(&mut v) <= 1e-12 {
            break; // space exhausted
        }
        let mut lambda = 0.0f64;
        for _ in 0..max_iters {
            op.apply(&v, &mut w);
            deflate(&vectors, &mut w);
            let norm = normalize(&mut w);
            if norm <= 1e-300 {
                break;
            }
            std::mem::swap(&mut v, &mut w);
            let new_lambda = {
                op.apply(&v, &mut w);
                dot(&v, &w)
            };
            let done = (new_lambda - lambda).abs() <= tol * new_lambda.abs().max(1.0);
            lambda = new_lambda;
            if done {
                break;
            }
        }
        values.push(lambda);
        vectors.push(v);
    }
    EigenPairs { values, vectors }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dense::DenseSym;
    use crate::lanczos::lanczos_top;
    use crate::ops::WalkOperator;
    use lbc_graph::generators;

    #[test]
    fn diagonal_matrix_exact() {
        let mut a = DenseSym::zeros(4);
        for (i, &v) in [9.0, 5.0, 2.0, 1.0].iter().enumerate() {
            a.set(i, i, v);
        }
        let p = power_top(&a, 2, 500, 1e-13, 3);
        assert!((p.values[0] - 9.0).abs() < 1e-8, "{:?}", p.values);
        assert!((p.values[1] - 5.0).abs() < 1e-6, "{:?}", p.values);
    }

    #[test]
    fn agrees_with_lanczos_on_clustered_graph() {
        let (g, _) = generators::ring_of_cliques(3, 12, 0).unwrap();
        let op = WalkOperator::new(&g);
        let shifted = ShiftedOp::new(&op);
        let p = power_top(&shifted, 4, 4000, 1e-12, 7);
        let l = lanczos_top(&op, 4, g.n(), 7);
        for i in 0..4 {
            let unshifted = ShiftedOp::unshift(p.values[i]);
            assert!(
                (unshifted - l.values[i]).abs() < 1e-5,
                "pair {i}: power {unshifted} vs lanczos {}",
                l.values[i]
            );
        }
    }

    #[test]
    fn shifted_operator_maps_spectrum() {
        let g = generators::cycle(8).unwrap();
        let op = WalkOperator::new(&g);
        let shifted = ShiftedOp::new(&op);
        // Top of the shifted spectrum is (1+1)/2 = 1.
        let p = power_top(&shifted, 1, 2000, 1e-13, 1);
        assert!((ShiftedOp::unshift(p.values[0]) - 1.0).abs() < 1e-6);
        // Eigenvector is the uniform vector.
        let v = &p.vectors[0];
        let first = v[0];
        assert!(v.iter().all(|x| (x - first).abs() < 1e-5));
    }

    #[test]
    fn deflated_vectors_are_orthonormal() {
        let mut a = DenseSym::zeros(6);
        for i in 0..6 {
            a.set(i, i, (6 - i) as f64);
        }
        let p = power_top(&a, 3, 300, 1e-13, 9);
        for i in 0..3 {
            assert!((crate::norm(&p.vectors[i]) - 1.0).abs() < 1e-9);
            for j in (i + 1)..3 {
                assert!(dot(&p.vectors[i], &p.vectors[j]).abs() < 1e-8);
            }
        }
    }

    #[test]
    #[should_panic]
    fn zero_request_panics() {
        let a = DenseSym::identity(3);
        let _ = power_top(&a, 0, 10, 1e-10, 1);
    }
}
