//! Property-based tests for the numeric substrate.

use lbc_linalg::dense::DenseSym;
use lbc_linalg::gram_schmidt::orthonormalize;
use lbc_linalg::jacobi::jacobi_eigen;
use lbc_linalg::lanczos::lanczos_top;
use lbc_linalg::ops::{SymOp, WalkOperator};
use lbc_linalg::tridiag::tridiag_eigen;
use lbc_linalg::{dot, norm};
use proptest::prelude::*;

fn dense_from(vals: &[f64], n: usize) -> DenseSym {
    let mut a = DenseSym::zeros(n);
    let mut it = vals.iter().cycle();
    for i in 0..n {
        for j in i..n {
            a.set(i, j, *it.next().unwrap());
        }
    }
    a
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// Jacobi reconstructs A = V diag(λ) Vᵀ for random symmetric input.
    #[test]
    fn jacobi_reconstructs(
        n in 2usize..8,
        vals in proptest::collection::vec(-2.0f64..2.0, 36),
    ) {
        let a = dense_from(&vals, n);
        let (lam, vecs) = jacobi_eigen(&a, 200, 1e-13);
        for i in 0..n {
            for j in 0..n {
                let mut rec = 0.0;
                for (l, v) in lam.iter().zip(&vecs) {
                    rec += l * v[i] * v[j];
                }
                prop_assert!((rec - a.get(i, j)).abs() < 1e-7,
                    "entry ({i},{j}): {} vs {}", rec, a.get(i, j));
            }
        }
    }

    /// Eigenvalue sum equals the trace; spectral radius bounds entries.
    #[test]
    fn jacobi_trace_identity(
        n in 2usize..9,
        vals in proptest::collection::vec(-3.0f64..3.0, 45),
    ) {
        let a = dense_from(&vals, n);
        let (lam, _) = jacobi_eigen(&a, 200, 1e-13);
        let trace: f64 = (0..n).map(|i| a.get(i, i)).sum();
        prop_assert!((lam.iter().sum::<f64>() - trace).abs() < 1e-8);
    }

    /// QL on random tridiagonals agrees with Jacobi on the embedded
    /// dense matrix.
    #[test]
    fn ql_matches_jacobi(
        n in 2usize..12,
        d in proptest::collection::vec(-2.0f64..2.0, 12),
        e in proptest::collection::vec(-1.0f64..1.0, 11),
    ) {
        let d = &d[..n];
        let e = &e[..n - 1];
        let (ql_vals, _) = tridiag_eigen(d, e, 64).unwrap();
        let dense = DenseSym::tridiagonal(d, e);
        let (j_vals, _) = jacobi_eigen(&dense, 200, 1e-13);
        for (a, b) in ql_vals.iter().zip(&j_vals) {
            prop_assert!((a - b).abs() < 1e-7, "{a} vs {b}");
        }
    }

    /// Lanczos' top Ritz value upper-bounds every Rayleigh quotient of
    /// probe vectors (within tolerance) and is attained by its vector.
    #[test]
    fn lanczos_dominates_rayleigh(
        n in 4usize..12,
        vals in proptest::collection::vec(-1.0f64..1.0, 78),
        probe in proptest::collection::vec(-1.0f64..1.0, 12),
    ) {
        let a = dense_from(&vals, n);
        let pairs = lanczos_top(&a, 1, n, 7);
        let top = pairs.values[0];
        let mut x = probe[..n].to_vec();
        let nrm = norm(&x);
        prop_assume!(nrm > 1e-6);
        for xi in &mut x {
            *xi /= nrm;
        }
        let rayleigh = dot(&x, &a.apply_vec(&x));
        prop_assert!(top >= rayleigh - 1e-6, "top {top} < rayleigh {rayleigh}");
    }

    /// Gram–Schmidt output is always orthonormal.
    #[test]
    fn gram_schmidt_orthonormal(
        n in 3usize..10,
        raw in proptest::collection::vec(-1.0f64..1.0, 50),
    ) {
        let count = 4.min(n);
        let mut vs: Vec<Vec<f64>> = (0..count)
            .map(|i| (0..n).map(|j| raw[(i * n + j) % raw.len()]).collect())
            .collect();
        orthonormalize(&mut vs, 1e-8);
        for i in 0..vs.len() {
            prop_assert!((norm(&vs[i]) - 1.0).abs() < 1e-9);
            for j in (i + 1)..vs.len() {
                prop_assert!(dot(&vs[i], &vs[j]).abs() < 1e-8);
            }
        }
    }

    /// The walk operator is always row-stochastic and symmetric, so
    /// `λ_1 = 1` on any connected graph and all Ritz values lie in
    /// [−1, 1].
    #[test]
    fn walk_operator_spectrum_in_range(seed in 0u64..300) {
        let (g, _) = lbc_graph::generators::planted_partition(2, 8, 0.6, 0.2, seed).unwrap();
        prop_assume!(g.is_connected());
        let op = WalkOperator::new(&g);
        let pairs = lanczos_top(&op, 3, g.n(), seed);
        prop_assert!((pairs.values[0] - 1.0).abs() < 1e-8, "λ1 = {}", pairs.values[0]);
        for &v in &pairs.values {
            prop_assert!((-1.0 - 1e-9..=1.0 + 1e-9).contains(&v));
        }
    }
}
