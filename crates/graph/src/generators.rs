//! Synthetic graph families for the experiment suite.
//!
//! The paper's guarantees apply to *well-clustered* graphs: `k` clusters
//! of size ≥ `βn`, each internally expanding, joined by sparse cuts
//! (§1.1–1.2). These generators realise that family in controlled ways:
//!
//! * [`planted_partition`] — the classic stochastic block model
//!   `G(n; p, q)` with equal-size blocks; tuning `q` sweeps the gap
//!   parameter `Υ`.
//! * [`regular_cluster_graph`] — near-regular clusters built as unions of
//!   random perfect matchings, joined by sparse inter-cluster matchings;
//!   the closest realisation of the paper's `d`-regular assumption.
//! * [`ring_of_cliques`] — the extreme well-clustered instance
//!   (`ϕ` inside = max, cut minimal); used for Lemma 4.1 trajectories.
//! * [`dumbbell`] — two expanders and a thin bridge (`k = 2`).
//! * [`random_regular`], [`cycle`], [`complete`], [`grid_2d`] — controls
//!   and building blocks.
//! * [`perturb_degrees`] — degree-noise wrapper for the §4.5
//!   almost-regular experiments.
//!
//! Every generator is deterministic in its `seed` and returns the ground
//! truth [`Partition`] where one exists.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

use crate::builder::GraphBuilder;
use crate::csr::Graph;
use crate::delta::GraphDelta;
use crate::error::GraphError;
use crate::partition::Partition;
use crate::NodeId;

/// Planted partition (equal-block stochastic block model).
///
/// `k` blocks of `block_size` nodes; each intra-block pair is an edge with
/// probability `p_in`, each inter-block pair with probability `p_out`.
pub fn planted_partition(
    k: usize,
    block_size: usize,
    p_in: f64,
    p_out: f64,
    seed: u64,
) -> Result<(Graph, Partition), GraphError> {
    if k == 0 || block_size == 0 {
        return Err(GraphError::InvalidParameter(
            "k and block_size must be positive".into(),
        ));
    }
    if !(0.0..=1.0).contains(&p_in) || !(0.0..=1.0).contains(&p_out) {
        return Err(GraphError::InvalidParameter(
            "probabilities must lie in [0, 1]".into(),
        ));
    }
    let n = k * block_size;
    let mut rng = StdRng::seed_from_u64(seed);
    let mut edges: Vec<(NodeId, NodeId)> = Vec::new();
    for u in 0..n {
        for v in (u + 1)..n {
            let same = u / block_size == v / block_size;
            let p = if same { p_in } else { p_out };
            if rng.random::<f64>() < p {
                edges.push((u as NodeId, v as NodeId));
            }
        }
    }
    let g = Graph::from_edges(n, &edges)?;
    let p = Partition::from_sizes(&vec![block_size; k]);
    Ok((g, p))
}

/// Planted partition with unequal block sizes (same edge law as
/// [`planted_partition`]).
pub fn planted_partition_sizes(
    sizes: &[usize],
    p_in: f64,
    p_out: f64,
    seed: u64,
) -> Result<(Graph, Partition), GraphError> {
    if sizes.is_empty() || sizes.contains(&0) {
        return Err(GraphError::InvalidParameter(
            "all block sizes must be positive".into(),
        ));
    }
    let n: usize = sizes.iter().sum();
    let part = Partition::from_sizes(sizes);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut edges = Vec::new();
    for u in 0..n {
        for v in (u + 1)..n {
            let same = part.label(u as NodeId) == part.label(v as NodeId);
            let p = if same { p_in } else { p_out };
            if rng.random::<f64>() < p {
                edges.push((u as NodeId, v as NodeId));
            }
        }
    }
    Ok((Graph::from_edges(n, &edges)?, part))
}

/// Visit each of `total` Bernoulli(`p`) slots that comes up heads,
/// without touching the misses: geometric skip-sampling (O(hits) draws
/// instead of O(total)). Slot indices are emitted in increasing order.
fn skip_sample(total: u64, p: f64, rng: &mut StdRng, mut emit: impl FnMut(u64)) {
    if p <= 0.0 || total == 0 {
        return;
    }
    if p >= 1.0 {
        for t in 0..total {
            emit(t);
        }
        return;
    }
    // ln(1 − p) via ln_1p: for p below ~1e-16, `(1.0 - p).ln()` rounds
    // to 0 and the skip becomes -inf → 0, which would emit *every* slot.
    let ln_q = (-p).ln_1p();
    let mut t: u64 = 0;
    loop {
        // Geometric(p) number of misses before the next hit. `1 − u` is
        // in (0, 1], so the log is finite unless u == 1.0-ulp, where the
        // saturating cast below ends the walk — the correct tail event.
        let u: f64 = rng.random();
        let skip = ((1.0 - u).ln() / ln_q).floor();
        t = t.saturating_add(if skip >= u64::MAX as f64 {
            u64::MAX
        } else {
            skip as u64
        });
        if t >= total {
            return;
        }
        emit(t);
        t += 1;
        if t >= total {
            return;
        }
    }
}

/// Sparse planted partition: same edge law as [`planted_partition`]
/// (`k` equal blocks, intra-block probability `p_in`, inter-block
/// `p_out`) but sampled in `O(n + m)` expected time by geometric
/// skip-sampling over the pair space, instead of the dense generator's
/// `O(n²)` coin flips. Use this for large instances (the `rounds`
/// benchmark builds n = 100 000 graphs with it); the draws differ from
/// [`planted_partition`]'s, so the two generators produce different
/// (equally distributed) graphs for the same seed.
pub fn planted_partition_sparse(
    k: usize,
    block_size: usize,
    p_in: f64,
    p_out: f64,
    seed: u64,
) -> Result<(Graph, Partition), GraphError> {
    if k == 0 || block_size == 0 {
        return Err(GraphError::InvalidParameter(
            "k and block_size must be positive".into(),
        ));
    }
    if !(0.0..=1.0).contains(&p_in) || !(0.0..=1.0).contains(&p_out) {
        return Err(GraphError::InvalidParameter(
            "probabilities must lie in [0, 1]".into(),
        ));
    }
    let b = block_size as u64;
    let mut rng = StdRng::seed_from_u64(seed);
    let mut edges: Vec<(NodeId, NodeId)> = Vec::new();
    // Intra-block pairs: the triangle {(u, v) : u < v} of each block,
    // linearised row by row (row u holds pairs (u, u+1..b)).
    for blk in 0..k as u64 {
        let base = blk * b;
        let total = b * (b - 1) / 2;
        // Invert the row-major triangle index with a running cursor:
        // hits arrive in increasing order, so each inversion only walks
        // forward — O(b + hits) per block overall.
        let mut row = 0u64;
        let mut row_start = 0u64; // triangle index where `row` begins
        skip_sample(total, p_in, &mut rng, |t| {
            while t >= row_start + (b - 1 - row) {
                row_start += b - 1 - row;
                row += 1;
            }
            let u = base + row;
            let v = base + row + 1 + (t - row_start);
            edges.push((u as NodeId, v as NodeId));
        });
    }
    // Inter-block pairs: the full b × b grid for each block pair i < j.
    for i in 0..k as u64 {
        for j in (i + 1)..k as u64 {
            let (bi, bj) = (i * b, j * b);
            skip_sample(b * b, p_out, &mut rng, |t| {
                edges.push(((bi + t / b) as NodeId, (bj + t % b) as NodeId));
            });
        }
    }
    let n = k * block_size;
    let g = Graph::from_edges(n, &edges)?;
    Ok((g, Partition::from_sizes(&vec![block_size; k])))
}

/// Union of `d` random perfect matchings on an even number of nodes.
///
/// Produces a (multi-edge-deduplicated) graph with maximum degree `d`;
/// for `nodes.len() ≫ d` the result is an expander with high probability
/// and degree very close to `d` everywhere.
fn matching_union(
    builder: &mut GraphBuilder,
    nodes: &[NodeId],
    d: usize,
    rng: &mut StdRng,
) -> Result<(), GraphError> {
    if !nodes.len().is_multiple_of(2) {
        return Err(GraphError::InvalidParameter(
            "matching_union requires an even number of nodes".into(),
        ));
    }
    let m = nodes.len();
    let mut degree = vec![0usize; m];
    let mut present = std::collections::HashSet::new();
    fn add_once(
        a: usize,
        b: usize,
        nodes: &[NodeId],
        degree: &mut [usize],
        present: &mut std::collections::HashSet<(usize, usize)>,
        builder: &mut GraphBuilder,
    ) -> Result<bool, GraphError> {
        let key = (a.min(b), a.max(b));
        if a == b || !present.insert(key) {
            return Ok(false);
        }
        degree[a] += 1;
        degree[b] += 1;
        builder.add_edge(nodes[a], nodes[b])?;
        Ok(true)
    }
    let mut perm: Vec<usize> = (0..m).collect();
    for _ in 0..d {
        perm.shuffle(rng);
        for pair in perm.chunks_exact(2) {
            add_once(pair[0], pair[1], nodes, &mut degree, &mut present, builder)?;
        }
    }
    // Duplicate edges across matchings are dropped, which would leave
    // some degrees below `d`. Top up by re-matching the deficient nodes
    // among themselves until no further progress is possible, so the
    // result concentrates tightly at degree `d`.
    for _ in 0..d {
        let mut deficient: Vec<usize> = (0..m).filter(|&v| degree[v] < d).collect();
        if deficient.len() < 2 {
            break;
        }
        deficient.shuffle(rng);
        let mut progressed = false;
        for pair in deficient.chunks_exact(2) {
            progressed |= add_once(pair[0], pair[1], nodes, &mut degree, &mut present, builder)?;
        }
        if !progressed {
            break;
        }
    }
    Ok(())
}

/// Near-`d`-regular well-clustered graph: each of `k` clusters (even
/// `cluster_size`) is a union of `d_in` random perfect matchings; each
/// adjacent cluster pair on a ring is joined by `bridge_edges` random
/// disjoint inter-cluster edges.
///
/// This is the closest constructive realisation of the paper's standing
/// assumption (d-regular, every `G[S_i]` an expander, `ϕ_G(S_i)` small).
pub fn regular_cluster_graph(
    k: usize,
    cluster_size: usize,
    d_in: usize,
    bridge_edges: usize,
    seed: u64,
) -> Result<(Graph, Partition), GraphError> {
    if k == 0 {
        return Err(GraphError::InvalidParameter("k must be positive".into()));
    }
    if !cluster_size.is_multiple_of(2) || cluster_size == 0 {
        return Err(GraphError::InvalidParameter(
            "cluster_size must be positive and even".into(),
        ));
    }
    if d_in == 0 || d_in >= cluster_size {
        return Err(GraphError::InvalidParameter(
            "need 0 < d_in < cluster_size".into(),
        ));
    }
    if bridge_edges > cluster_size {
        return Err(GraphError::InvalidParameter(
            "bridge_edges must be at most cluster_size".into(),
        ));
    }
    let n = k * cluster_size;
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = GraphBuilder::new(n);
    for c in 0..k {
        let nodes: Vec<NodeId> =
            ((c * cluster_size) as NodeId..((c + 1) * cluster_size) as NodeId).collect();
        matching_union(&mut b, &nodes, d_in, &mut rng)?;
    }
    // Ring of sparse bridges (for k == 1 there is nothing to join; for
    // k == 2 a single bridge bundle suffices).
    let pairs: Vec<(usize, usize)> = match k {
        0 | 1 => vec![],
        2 => vec![(0, 1)],
        _ => (0..k).map(|c| (c, (c + 1) % k)).collect(),
    };
    for (a, c) in pairs {
        let mut left: Vec<NodeId> =
            ((a * cluster_size) as NodeId..((a + 1) * cluster_size) as NodeId).collect();
        let mut right: Vec<NodeId> =
            ((c * cluster_size) as NodeId..((c + 1) * cluster_size) as NodeId).collect();
        left.shuffle(&mut rng);
        right.shuffle(&mut rng);
        for i in 0..bridge_edges {
            b.add_edge(left[i], right[i])?;
        }
    }
    let p = Partition::from_sizes(&vec![cluster_size; k]);
    Ok((b.build(), p))
}

/// Ring of `k` cliques of `clique_size` nodes, consecutive cliques joined
/// by a single edge. The canonical "extremely well-clustered" instance.
pub fn ring_of_cliques(
    k: usize,
    clique_size: usize,
    seed_offset: u64,
) -> Result<(Graph, Partition), GraphError> {
    let _ = seed_offset; // deterministic construction; parameter kept for API symmetry
    if k < 2 || clique_size < 2 {
        return Err(GraphError::InvalidParameter(
            "need k >= 2 cliques of size >= 2".into(),
        ));
    }
    let n = k * clique_size;
    let mut b = GraphBuilder::new(n);
    for c in 0..k {
        let base = (c * clique_size) as NodeId;
        for i in 0..clique_size as NodeId {
            for j in (i + 1)..clique_size as NodeId {
                b.add_edge(base + i, base + j)?;
            }
        }
    }
    for c in 0..k {
        let next = (c + 1) % k;
        // Join the "last" node of clique c to the "first" node of clique
        // c+1; for k == 2 avoid inserting the same edge twice (harmless —
        // builder dedups — but keep the cut at exactly k edges for k > 2
        // and 1 edge for k == 2).
        if k == 2 && c == 1 {
            break;
        }
        let from = (c * clique_size + clique_size - 1) as NodeId;
        let to = (next * clique_size) as NodeId;
        b.add_edge(from, to)?;
    }
    let p = Partition::from_sizes(&vec![clique_size; k]);
    Ok((b.build(), p))
}

/// Two random-regular expanders of `half_size` nodes joined by
/// `bridge_edges` disjoint edges (`k = 2` dumbbell).
pub fn dumbbell(
    half_size: usize,
    d: usize,
    bridge_edges: usize,
    seed: u64,
) -> Result<(Graph, Partition), GraphError> {
    if !half_size.is_multiple_of(2) || half_size == 0 {
        return Err(GraphError::InvalidParameter(
            "half_size must be positive and even".into(),
        ));
    }
    if bridge_edges > half_size {
        return Err(GraphError::InvalidParameter(
            "bridge_edges must be at most half_size".into(),
        ));
    }
    let n = 2 * half_size;
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = GraphBuilder::new(n);
    let left: Vec<NodeId> = (0..half_size as NodeId).collect();
    let right: Vec<NodeId> = (half_size as NodeId..n as NodeId).collect();
    matching_union(&mut b, &left, d, &mut rng)?;
    matching_union(&mut b, &right, d, &mut rng)?;
    let mut l = left.clone();
    let mut r = right.clone();
    l.shuffle(&mut rng);
    r.shuffle(&mut rng);
    for i in 0..bridge_edges {
        b.add_edge(l[i], r[i])?;
    }
    Ok((b.build(), Partition::from_sizes(&[half_size, half_size])))
}

/// Random `d`-regular-ish graph on `n` (even) nodes: union of `d` random
/// perfect matchings (degrees ≤ d; = d except for rare collisions).
pub fn random_regular(n: usize, d: usize, seed: u64) -> Result<Graph, GraphError> {
    if !n.is_multiple_of(2) || n == 0 {
        return Err(GraphError::InvalidParameter(
            "n must be positive and even".into(),
        ));
    }
    if d >= n {
        return Err(GraphError::InvalidParameter("need d < n".into()));
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = GraphBuilder::new(n);
    let nodes: Vec<NodeId> = (0..n as NodeId).collect();
    matching_union(&mut b, &nodes, d, &mut rng)?;
    Ok(b.build())
}

/// Cycle on `n ≥ 3` nodes — a connected, 2-regular, *poorly* clustered
/// control (slow mixing).
pub fn cycle(n: usize) -> Result<Graph, GraphError> {
    if n < 3 {
        return Err(GraphError::InvalidParameter("cycle needs n >= 3".into()));
    }
    let edges: Vec<(NodeId, NodeId)> = (0..n)
        .map(|i| (i as NodeId, ((i + 1) % n) as NodeId))
        .collect();
    Graph::from_edges(n, &edges)
}

/// Complete graph on `n ≥ 2` nodes — a single perfect cluster.
pub fn complete(n: usize) -> Result<Graph, GraphError> {
    if n < 2 {
        return Err(GraphError::InvalidParameter("complete needs n >= 2".into()));
    }
    let mut edges = Vec::with_capacity(n * (n - 1) / 2);
    for u in 0..n as NodeId {
        for v in (u + 1)..n as NodeId {
            edges.push((u, v));
        }
    }
    Graph::from_edges(n, &edges)
}

/// `rows × cols` grid — a connected almost-regular control without
/// cluster structure.
pub fn grid_2d(rows: usize, cols: usize) -> Result<Graph, GraphError> {
    if rows == 0 || cols == 0 {
        return Err(GraphError::InvalidParameter(
            "grid dimensions must be positive".into(),
        ));
    }
    let id = |r: usize, c: usize| (r * cols + c) as NodeId;
    let mut edges = Vec::new();
    for r in 0..rows {
        for c in 0..cols {
            if c + 1 < cols {
                edges.push((id(r, c), id(r, c + 1)));
            }
            if r + 1 < rows {
                edges.push((id(r, c), id(r + 1, c)));
            }
        }
    }
    Graph::from_edges(rows * cols, &edges)
}

/// Degree-noise wrapper for §4.5 experiments: independently add each
/// non-edge with probability `add_p` *within the same cluster only*, and
/// (optionally) delete each existing intra-cluster edge with probability
/// `del_p`, then restore connectivity of each cluster is NOT enforced —
/// callers should keep `del_p` small.
///
/// Inter-cluster edges are left untouched so the planted cut (and thus
/// `Υ`) changes only through volumes, letting experiments isolate the
/// effect of degree irregularity `Δ/δ`.
pub fn perturb_degrees(
    g: &Graph,
    part: &Partition,
    add_p: f64,
    del_p: f64,
    seed: u64,
) -> Result<Graph, GraphError> {
    if !(0.0..=1.0).contains(&add_p) || !(0.0..=1.0).contains(&del_p) {
        return Err(GraphError::InvalidParameter(
            "probabilities must lie in [0, 1]".into(),
        ));
    }
    let n = g.n();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = GraphBuilder::new(n);
    for (u, v) in g.edges() {
        let same = part.label(u) == part.label(v);
        if same && rng.random::<f64>() < del_p {
            continue;
        }
        b.add_edge(u, v)?;
    }
    if add_p > 0.0 {
        for u in 0..n as NodeId {
            for v in (u + 1)..n as NodeId {
                if part.label(u) == part.label(v)
                    && !g.has_edge(u, v)
                    && rng.random::<f64>() < add_p
                {
                    b.add_edge(u, v)?;
                }
            }
        }
    }
    Ok(b.build())
}

/// `k`-edge-flip perturbation of a clustered graph, as a [`GraphDelta`]:
/// remove `k` uniformly random intra-cluster edges and add `k` uniformly
/// random inter-cluster non-edges. Each flip weakens the planted
/// structure from both sides (thins a cluster, thickens a cut), which
/// makes sweeping `k` the canonical dynamic-graph workload for measuring
/// how many warm-start rounds re-clustering actually needs.
///
/// Deterministic in `seed`. Fails when the graph has fewer than `k`
/// intra-cluster edges or (after bounded rejection sampling) fewer than
/// `k` available inter-cluster non-edges.
pub fn k_edge_flip_delta(
    g: &Graph,
    part: &Partition,
    k: usize,
    seed: u64,
) -> Result<GraphDelta, GraphError> {
    if part.n() != g.n() {
        return Err(GraphError::InvalidParameter(format!(
            "partition covers {} nodes, graph has {}",
            part.n(),
            g.n()
        )));
    }
    let mut delta = GraphDelta::new();
    if k == 0 {
        return Ok(delta);
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let mut intra: Vec<(NodeId, NodeId)> = g
        .edges()
        .filter(|&(u, v)| part.label(u) == part.label(v))
        .collect();
    if intra.len() < k {
        return Err(GraphError::InvalidParameter(format!(
            "cannot flip {k} edges: only {} intra-cluster edges",
            intra.len()
        )));
    }
    // Partial Fisher–Yates: the first k slots become the removals.
    for i in 0..k {
        let j = i + rng.random_range(0..intra.len() - i);
        intra.swap(i, j);
        let (u, v) = intra[i];
        delta.remove_edge(u, v);
    }
    let n = g.n();
    let mut added = std::collections::BTreeSet::new();
    let mut attempts = 0usize;
    let max_attempts = 100 * k + 1000;
    while added.len() < k {
        attempts += 1;
        if attempts > max_attempts {
            return Err(GraphError::InvalidParameter(format!(
                "could not find {k} inter-cluster non-edges (placed {})",
                added.len()
            )));
        }
        let u = rng.random_range(0..n) as NodeId;
        let v = rng.random_range(0..n) as NodeId;
        if u == v || part.label(u) == part.label(v) || g.has_edge(u, v) {
            continue;
        }
        let key = (u.min(v), u.max(v));
        if added.insert(key) {
            delta.add_edge(key.0, key.1);
        }
    }
    Ok(delta)
}

/// Preferential-attachment (Barabási–Albert-style) graph: start from a
/// clique on `m0 = m_edges + 1` nodes; each new node attaches to
/// `m_edges` distinct existing nodes chosen proportionally to degree.
///
/// A *heavy-tailed, strongly irregular* control: `Δ/δ` is unbounded, so
/// this family sits **outside** the §4.5 almost-regular regime —
/// experiments use it to probe where the assumptions genuinely matter.
pub fn barabasi_albert(n: usize, m_edges: usize, seed: u64) -> Result<Graph, GraphError> {
    if m_edges == 0 {
        return Err(GraphError::InvalidParameter(
            "m_edges must be positive".into(),
        ));
    }
    let m0 = m_edges + 1;
    if n < m0 + 1 {
        return Err(GraphError::InvalidParameter(format!(
            "need n > m_edges + 1 (= {m0})"
        )));
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = GraphBuilder::new(n);
    // Seed clique.
    for u in 0..m0 as NodeId {
        for v in (u + 1)..m0 as NodeId {
            b.add_edge(u, v)?;
        }
    }
    // Endpoint multiset for degree-proportional sampling.
    let mut endpoints: Vec<NodeId> = Vec::with_capacity(2 * n * m_edges);
    for u in 0..m0 as NodeId {
        for _ in 0..(m0 - 1) {
            endpoints.push(u);
        }
    }
    for v in m0..n {
        let v = v as NodeId;
        let mut chosen: Vec<NodeId> = Vec::with_capacity(m_edges);
        let mut guard = 0usize;
        while chosen.len() < m_edges {
            let t = endpoints[rng.random_range(0..endpoints.len())];
            if t != v && !chosen.contains(&t) {
                chosen.push(t);
            }
            guard += 1;
            if guard > 100 * m_edges {
                // Extremely unlikely; fall back to lowest-id fill.
                for u in 0..v {
                    if chosen.len() == m_edges {
                        break;
                    }
                    if !chosen.contains(&u) {
                        chosen.push(u);
                    }
                }
            }
        }
        for &t in &chosen {
            b.add_edge(v, t)?;
            endpoints.push(v);
            endpoints.push(t);
        }
    }
    Ok(b.build())
}

/// Watts–Strogatz small world: ring lattice where each node connects to
/// its `k_half` nearest neighbours on each side, then each edge is
/// rewired with probability `rewire_p` to a uniform non-neighbour.
///
/// Near-regular but (for small `rewire_p`) *not* well-clustered into a
/// bounded number of parts — a useful negative control.
pub fn watts_strogatz(
    n: usize,
    k_half: usize,
    rewire_p: f64,
    seed: u64,
) -> Result<Graph, GraphError> {
    if k_half == 0 || 2 * k_half >= n {
        return Err(GraphError::InvalidParameter("need 0 < 2·k_half < n".into()));
    }
    if !(0.0..=1.0).contains(&rewire_p) {
        return Err(GraphError::InvalidParameter(
            "rewire_p must lie in [0, 1]".into(),
        ));
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = GraphBuilder::new(n);
    for u in 0..n {
        for off in 1..=k_half {
            let v = (u + off) % n;
            let (mut a, mut c) = (u as NodeId, v as NodeId);
            if rng.random::<f64>() < rewire_p {
                // Rewire: keep u, pick a fresh target.
                let mut guard = 0;
                loop {
                    let t = rng.random_range(0..n) as NodeId;
                    if t != a && !b.has_edge(a, t) {
                        c = t;
                        break;
                    }
                    guard += 1;
                    if guard > 10 * n {
                        break; // saturated neighbourhood; keep original
                    }
                }
            }
            if a == c {
                continue;
            }
            if a > c {
                std::mem::swap(&mut a, &mut c);
            }
            let _ = b.add_edge(a, c)?;
        }
    }
    Ok(b.build())
}

/// LFR-flavoured benchmark: cluster sizes follow a truncated power law
/// (exponent `tau`), then edges are planted with `p_in`/`p_out` as in
/// [`planted_partition_sizes`]. Returns the graph and ground truth.
///
/// This realises the "unbalanced communities" stress case: `β` is set by
/// the smallest community and can be far below `1/k`.
pub fn lfr_like(
    n: usize,
    k: usize,
    tau: f64,
    min_size: usize,
    p_in: f64,
    p_out: f64,
    seed: u64,
) -> Result<(Graph, Partition), GraphError> {
    if k == 0 || min_size == 0 || n < k * min_size {
        return Err(GraphError::InvalidParameter(
            "need k ≥ 1 communities of at least min_size".into(),
        ));
    }
    if tau <= 0.0 {
        return Err(GraphError::InvalidParameter("tau must be positive".into()));
    }
    let mut rng = StdRng::seed_from_u64(seed);
    // Power-law weights w_i = (i+1)^{-tau}, scaled onto the surplus.
    let weights: Vec<f64> = (0..k).map(|i| ((i + 1) as f64).powf(-tau)).collect();
    let wsum: f64 = weights.iter().sum();
    let surplus = n - k * min_size;
    let mut sizes: Vec<usize> = weights
        .iter()
        .map(|w| min_size + (surplus as f64 * w / wsum).floor() as usize)
        .collect();
    // Distribute rounding leftovers.
    let mut assigned: usize = sizes.iter().sum();
    let mut i = 0usize;
    while assigned < n {
        sizes[i % k] += 1;
        assigned += 1;
        i += 1;
    }
    // Shuffle sizes so cluster index doesn't encode size rank.
    sizes.shuffle(&mut rng);
    planted_partition_sizes(&sizes, p_in, p_out, rng.random())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn planted_partition_shape() {
        let (g, p) = planted_partition(3, 40, 0.5, 0.01, 42).unwrap();
        assert_eq!(g.n(), 120);
        assert_eq!(p.k(), 3);
        assert_eq!(p.cluster_sizes(), vec![40, 40, 40]);
        // Dense inside, sparse outside.
        let phis = p.cluster_conductances(&g);
        assert!(phis.iter().all(|&phi| phi < 0.2), "phis = {phis:?}");
        assert!(g.is_connected());
    }

    #[test]
    fn planted_partition_deterministic_in_seed() {
        let (g1, _) = planted_partition(2, 30, 0.4, 0.02, 7).unwrap();
        let (g2, _) = planted_partition(2, 30, 0.4, 0.02, 7).unwrap();
        let (g3, _) = planted_partition(2, 30, 0.4, 0.02, 8).unwrap();
        assert_eq!(g1, g2);
        assert_ne!(g1, g3);
    }

    #[test]
    fn planted_partition_extreme_probabilities() {
        let (g, _) = planted_partition(2, 5, 1.0, 0.0, 1).unwrap();
        // Two disjoint 5-cliques.
        assert_eq!(g.m(), 2 * 10);
        assert!(!g.is_connected());
        let (g0, _) = planted_partition(2, 5, 0.0, 0.0, 1).unwrap();
        assert_eq!(g0.m(), 0);
    }

    #[test]
    fn planted_partition_rejects_bad_params() {
        assert!(planted_partition(0, 10, 0.5, 0.1, 1).is_err());
        assert!(planted_partition(2, 0, 0.5, 0.1, 1).is_err());
        assert!(planted_partition(2, 10, 1.5, 0.1, 1).is_err());
        assert!(planted_partition(2, 10, 0.5, -0.1, 1).is_err());
    }

    #[test]
    fn sparse_planted_partition_matches_dense_statistics() {
        // Same law as the dense generator: edge counts inside/outside
        // blocks should land near their expectations.
        let (k, b, p_in, p_out) = (3usize, 200usize, 0.1f64, 0.005f64);
        let (g, p) = planted_partition_sparse(k, b, p_in, p_out, 9).unwrap();
        assert_eq!(g.n(), k * b);
        assert_eq!(p.cluster_sizes(), vec![b; k]);
        let mut intra = 0usize;
        let mut inter = 0usize;
        for (u, v) in g.edges() {
            if p.label(u) == p.label(v) {
                intra += 1;
            } else {
                inter += 1;
            }
        }
        let e_intra = k as f64 * (b * (b - 1) / 2) as f64 * p_in;
        let e_inter = (k * (k - 1) / 2) as f64 * (b * b) as f64 * p_out;
        assert!(
            (intra as f64 - e_intra).abs() < 4.0 * e_intra.sqrt() + 10.0,
            "intra {intra} vs expected {e_intra}"
        );
        assert!(
            (inter as f64 - e_inter).abs() < 4.0 * e_inter.sqrt() + 10.0,
            "inter {inter} vs expected {e_inter}"
        );
    }

    #[test]
    fn sparse_planted_partition_deterministic_and_validated() {
        let (g1, _) = planted_partition_sparse(2, 50, 0.2, 0.01, 5).unwrap();
        let (g2, _) = planted_partition_sparse(2, 50, 0.2, 0.01, 5).unwrap();
        let (g3, _) = planted_partition_sparse(2, 50, 0.2, 0.01, 6).unwrap();
        assert_eq!(g1, g2);
        assert_ne!(g1, g3);
        assert!(planted_partition_sparse(0, 10, 0.5, 0.1, 1).is_err());
        assert!(planted_partition_sparse(2, 10, 1.5, 0.1, 1).is_err());
    }

    #[test]
    fn sparse_planted_partition_extreme_probabilities() {
        // p = 1 inside, 0 outside: two disjoint cliques, every pair hit
        // exactly once (the skip-sampler's p >= 1 fast path).
        let (g, _) = planted_partition_sparse(2, 6, 1.0, 0.0, 1).unwrap();
        assert_eq!(g.m(), 2 * 15);
        assert!(!g.is_connected());
        let (g0, _) = planted_partition_sparse(2, 6, 0.0, 0.0, 1).unwrap();
        assert_eq!(g0.m(), 0);
        // Sub-epsilon probabilities behave like ~0, not like 1 (the
        // ln(1−p) precision trap).
        let (g_tiny, _) = planted_partition_sparse(2, 100, 1e-17, 1e-17, 3).unwrap();
        assert_eq!(g_tiny.m(), 0);
        // Degenerate single-node blocks: no intra pairs at all.
        let (g1, _) = planted_partition_sparse(3, 1, 0.9, 1.0, 1).unwrap();
        assert_eq!(g1.m(), 3);
    }

    #[test]
    fn unequal_sizes_variant() {
        let (g, p) = planted_partition_sizes(&[20, 60], 0.5, 0.01, 3).unwrap();
        assert_eq!(g.n(), 80);
        assert_eq!(p.cluster_sizes(), vec![20, 60]);
        assert!((p.beta() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn regular_cluster_graph_is_near_regular() {
        let (g, p) = regular_cluster_graph(4, 50, 8, 2, 11).unwrap();
        assert_eq!(g.n(), 200);
        assert_eq!(p.k(), 4);
        assert!(g.is_connected());
        // Degrees concentrate near d_in (+ up to 2 bridge endpoints).
        assert!(g.min_degree() >= 5, "min degree {}", g.min_degree());
        assert!(g.max_degree() <= 8 + 4, "max degree {}", g.max_degree());
        // Cut per cluster is at most 2 bridge bundles of 2 edges.
        for phi in p.cluster_conductances(&g) {
            assert!(phi < 0.05, "phi = {phi}");
        }
    }

    #[test]
    fn regular_cluster_graph_k1_and_k2() {
        let (g1, _) = regular_cluster_graph(1, 20, 4, 0, 5).unwrap();
        assert_eq!(g1.n(), 20);
        let (g2, p2) = regular_cluster_graph(2, 20, 4, 3, 5).unwrap();
        assert_eq!(p2.cut_edges(&g2), 3);
    }

    #[test]
    fn regular_cluster_graph_rejects_bad_params() {
        assert!(regular_cluster_graph(0, 10, 3, 1, 1).is_err());
        assert!(regular_cluster_graph(2, 11, 3, 1, 1).is_err()); // odd size
        assert!(regular_cluster_graph(2, 10, 0, 1, 1).is_err());
        assert!(regular_cluster_graph(2, 10, 10, 1, 1).is_err());
        assert!(regular_cluster_graph(2, 10, 3, 11, 1).is_err());
    }

    #[test]
    fn ring_of_cliques_structure() {
        let (g, p) = ring_of_cliques(4, 10, 0).unwrap();
        assert_eq!(g.n(), 40);
        assert!(g.is_connected());
        assert_eq!(p.cut_edges(&g), 4);
        for c in 0..4 {
            assert_eq!(p.internal_edges(&g, c), 45);
        }
    }

    #[test]
    fn ring_of_two_cliques_has_single_bridge() {
        let (g, p) = ring_of_cliques(2, 5, 0).unwrap();
        assert_eq!(p.cut_edges(&g), 1);
        assert!(g.is_connected());
    }

    #[test]
    fn dumbbell_structure() {
        let (g, p) = dumbbell(50, 6, 3, 9).unwrap();
        assert_eq!(g.n(), 100);
        assert_eq!(p.k(), 2);
        assert_eq!(p.cut_edges(&g), 3);
        assert!(g.is_connected());
    }

    #[test]
    fn random_regular_degree_bounds() {
        let g = random_regular(100, 6, 13).unwrap();
        assert!(g.max_degree() <= 6);
        // Collisions between matchings are rare: average degree close to 6.
        assert!(g.total_volume() as f64 >= 0.9 * 600.0);
    }

    #[test]
    fn controls() {
        let c = cycle(5).unwrap();
        assert_eq!(c.m(), 5);
        assert!(c.is_regular());
        let k5 = complete(5).unwrap();
        assert_eq!(k5.m(), 10);
        let grid = grid_2d(3, 4).unwrap();
        assert_eq!(grid.n(), 12);
        assert_eq!(grid.m(), 3 * 3 + 2 * 4);
        assert!(grid.is_connected());
        assert!(cycle(2).is_err());
        assert!(complete(1).is_err());
        assert!(grid_2d(0, 3).is_err());
    }

    #[test]
    fn perturb_preserves_cut() {
        let (g, p) = ring_of_cliques(3, 8, 0).unwrap();
        let g2 = perturb_degrees(&g, &p, 0.0, 0.3, 21).unwrap();
        assert_eq!(p.cut_edges(&g2), p.cut_edges(&g));
        assert!(g2.m() < g.m());
        let g3 = perturb_degrees(&g, &p, 0.5, 0.0, 21).unwrap();
        // Cliques cannot gain intra edges; nothing to add.
        assert_eq!(g3.m(), g.m());
    }

    #[test]
    fn perturb_adds_only_intra_cluster() {
        let (g, p) = planted_partition(2, 20, 0.3, 0.0, 2).unwrap();
        let g2 = perturb_degrees(&g, &p, 0.5, 0.0, 3).unwrap();
        assert_eq!(p.cut_edges(&g2), 0);
        assert!(g2.m() > g.m());
    }

    #[test]
    fn barabasi_albert_structure() {
        let g = barabasi_albert(300, 3, 7).unwrap();
        assert_eq!(g.n(), 300);
        assert!(g.is_connected());
        // Every non-seed node attaches with exactly 3 edges; m ≈ 3n.
        assert!(g.m() >= 3 * (300 - 4));
        // Heavy tail: the max degree should dwarf the minimum.
        assert!(g.degree_ratio() > 5.0, "ratio {}", g.degree_ratio());
        assert!(g.min_degree() >= 3);
    }

    #[test]
    fn barabasi_albert_deterministic_and_validated() {
        assert_eq!(
            barabasi_albert(100, 2, 5).unwrap(),
            barabasi_albert(100, 2, 5).unwrap()
        );
        assert!(barabasi_albert(3, 3, 1).is_err());
        assert!(barabasi_albert(10, 0, 1).is_err());
    }

    #[test]
    fn watts_strogatz_zero_rewire_is_lattice() {
        let g = watts_strogatz(20, 2, 0.0, 1).unwrap();
        assert!(g.is_regular());
        assert_eq!(g.min_degree(), 4);
        assert_eq!(g.m(), 40);
        assert!(g.is_connected());
    }

    #[test]
    fn watts_strogatz_rewiring_perturbs_lattice() {
        let lattice = watts_strogatz(100, 3, 0.0, 2).unwrap();
        let rewired = watts_strogatz(100, 3, 0.3, 2).unwrap();
        assert_ne!(lattice, rewired);
        // Edge count is preserved up to rare rewire failures.
        assert!(rewired.m() >= lattice.m() - 5);
        assert!(watts_strogatz(10, 5, 0.1, 1).is_err());
        assert!(watts_strogatz(10, 2, 1.5, 1).is_err());
    }

    #[test]
    fn lfr_like_power_law_sizes() {
        let (g, p) = lfr_like(600, 4, 1.5, 50, 0.2, 0.004, 9).unwrap();
        assert_eq!(g.n(), 600);
        assert_eq!(p.k(), 4);
        let sizes = p.cluster_sizes();
        assert_eq!(sizes.iter().sum::<usize>(), 600);
        assert!(sizes.iter().all(|&s| s >= 50));
        // Unbalanced: the largest is much bigger than the smallest.
        let max = *sizes.iter().max().unwrap();
        let min = *sizes.iter().min().unwrap();
        assert!(max > min + 50, "sizes {sizes:?}");
        assert!(lfr_like(100, 4, 1.5, 50, 0.2, 0.01, 1).is_err());
        assert!(lfr_like(600, 4, -1.0, 10, 0.2, 0.01, 1).is_err());
    }

    #[test]
    fn k_edge_flips_swap_intra_for_inter() {
        let (g, truth) = planted_partition(3, 30, 0.4, 0.01, 7).unwrap();
        let k = 5;
        let d = k_edge_flip_delta(&g, &truth, k, 11).unwrap();
        assert_eq!(d.removed_edges().len(), k);
        assert_eq!(d.added_edges().len(), k);
        for &(u, v) in d.removed_edges() {
            assert_eq!(truth.label(u), truth.label(v), "removal must be intra");
            assert!(g.has_edge(u, v));
        }
        for &(u, v) in d.added_edges() {
            assert_ne!(truth.label(u), truth.label(v), "addition must be inter");
            assert!(!g.has_edge(u, v));
        }
        let h = g.apply_delta(&d).unwrap();
        assert_eq!(h.m(), g.m());
        // Deterministic in seed.
        assert_eq!(d, k_edge_flip_delta(&g, &truth, k, 11).unwrap());
        assert_ne!(d, k_edge_flip_delta(&g, &truth, k, 12).unwrap());
        // Degenerate requests fail loudly.
        assert!(k_edge_flip_delta(&g, &truth, 100_000, 1).is_err());
        assert!(k_edge_flip_delta(&g, &truth, 0, 1).unwrap().is_empty());
    }
}
