//! Plain-text graph and partition (de)serialisation.
//!
//! Format: first line `n m`, then one `u v` pair per line (0-based,
//! undirected, each edge once). Partitions: first line `n k`, then one
//! label per line. Lines starting with `#` are comments.

use std::io::{BufRead, BufReader, Read, Write};

use crate::csr::Graph;
use crate::delta::GraphDelta;
use crate::error::GraphError;
use crate::partition::Partition;
use crate::NodeId;

/// Serialise `g` as an edge list.
pub fn write_edge_list<W: Write>(g: &Graph, mut w: W) -> Result<(), GraphError> {
    writeln!(w, "{} {}", g.n(), g.m())?;
    for (u, v) in g.edges() {
        writeln!(w, "{u} {v}")?;
    }
    Ok(())
}

/// Parse an edge list produced by [`write_edge_list`].
pub fn read_edge_list<R: Read>(r: R) -> Result<Graph, GraphError> {
    let reader = BufReader::new(r);
    let mut lines = reader.lines();
    let header = loop {
        match lines.next() {
            Some(line) => {
                let line = line?;
                let t = line.trim();
                if t.is_empty() || t.starts_with('#') {
                    continue;
                }
                break t.to_string();
            }
            None => return Err(GraphError::Io("missing header line".into())),
        }
    };
    let mut it = header.split_whitespace();
    let n: usize = it
        .next()
        .ok_or_else(|| GraphError::Io("header missing n".into()))?
        .parse()
        .map_err(|e| GraphError::Io(format!("bad n: {e}")))?;
    let m: usize = it
        .next()
        .ok_or_else(|| GraphError::Io("header missing m".into()))?
        .parse()
        .map_err(|e| GraphError::Io(format!("bad m: {e}")))?;
    let mut edges = Vec::with_capacity(m);
    for line in lines {
        let line = line?;
        let t = line.trim();
        if t.is_empty() || t.starts_with('#') {
            continue;
        }
        let mut it = t.split_whitespace();
        let u: NodeId = it
            .next()
            .ok_or_else(|| GraphError::Io("edge line missing u".into()))?
            .parse()
            .map_err(|e| GraphError::Io(format!("bad u: {e}")))?;
        let v: NodeId = it
            .next()
            .ok_or_else(|| GraphError::Io("edge line missing v".into()))?
            .parse()
            .map_err(|e| GraphError::Io(format!("bad v: {e}")))?;
        edges.push((u, v));
    }
    if edges.len() != m {
        return Err(GraphError::Io(format!(
            "header declared {m} edges, found {}",
            edges.len()
        )));
    }
    Graph::from_edges(n, &edges)
}

/// Serialise a partition: header `n k`, then one label per line.
pub fn write_partition<W: Write>(p: &Partition, mut w: W) -> Result<(), GraphError> {
    writeln!(w, "{} {}", p.n(), p.k())?;
    for &l in p.labels() {
        writeln!(w, "{l}")?;
    }
    Ok(())
}

/// Parse a partition produced by [`write_partition`].
pub fn read_partition<R: Read>(r: R) -> Result<Partition, GraphError> {
    let reader = BufReader::new(r);
    let mut labels = Vec::new();
    let mut header: Option<(usize, usize)> = None;
    for line in reader.lines() {
        let line = line?;
        let t = line.trim();
        if t.is_empty() || t.starts_with('#') {
            continue;
        }
        match header {
            None => {
                let mut it = t.split_whitespace();
                let n: usize = it
                    .next()
                    .ok_or_else(|| GraphError::Io("header missing n".into()))?
                    .parse()
                    .map_err(|e| GraphError::Io(format!("bad n: {e}")))?;
                let k: usize = it
                    .next()
                    .ok_or_else(|| GraphError::Io("header missing k".into()))?
                    .parse()
                    .map_err(|e| GraphError::Io(format!("bad k: {e}")))?;
                header = Some((n, k));
                labels.reserve(n);
            }
            Some(_) => {
                let l: u32 = t
                    .parse()
                    .map_err(|e| GraphError::Io(format!("bad label: {e}")))?;
                labels.push(l);
            }
        }
    }
    let (n, k) = header.ok_or_else(|| GraphError::Io("missing header line".into()))?;
    if labels.len() != n {
        return Err(GraphError::Io(format!(
            "header declared {n} labels, found {}",
            labels.len()
        )));
    }
    Partition::with_k(labels, k)
}

/// Serialise a [`GraphDelta`]: header `add_nodes added removed`, then
/// one `+ u v` line per added edge and one `- u v` line per removal.
pub fn write_delta<W: Write>(d: &GraphDelta, mut w: W) -> Result<(), GraphError> {
    writeln!(
        w,
        "{} {} {}",
        d.added_nodes(),
        d.added_edges().len(),
        d.removed_edges().len()
    )?;
    for &(u, v) in d.added_edges() {
        writeln!(w, "+ {u} {v}")?;
    }
    for &(u, v) in d.removed_edges() {
        writeln!(w, "- {u} {v}")?;
    }
    Ok(())
}

/// Parse a delta produced by [`write_delta`].
pub fn read_delta<R: Read>(r: R) -> Result<GraphDelta, GraphError> {
    let reader = BufReader::new(r);
    let mut delta = GraphDelta::new();
    let mut header: Option<(usize, usize)> = None;
    let mut seen = (0usize, 0usize);
    for line in reader.lines() {
        let line = line?;
        let t = line.trim();
        if t.is_empty() || t.starts_with('#') {
            continue;
        }
        let mut it = t.split_whitespace();
        match header {
            None => {
                let mut field = |what: &str| -> Result<usize, GraphError> {
                    it.next()
                        .ok_or_else(|| GraphError::Io(format!("delta header missing {what}")))?
                        .parse()
                        .map_err(|e| GraphError::Io(format!("bad {what}: {e}")))
                };
                let add_nodes = field("add_nodes")?;
                let added = field("added")?;
                let removed = field("removed")?;
                delta.add_nodes(add_nodes);
                header = Some((added, removed));
            }
            Some(_) => {
                let op = it
                    .next()
                    .ok_or_else(|| GraphError::Io("delta line missing op".into()))?;
                let mut endpoint = |what: &str| -> Result<NodeId, GraphError> {
                    it.next()
                        .ok_or_else(|| GraphError::Io(format!("delta line missing {what}")))?
                        .parse()
                        .map_err(|e| GraphError::Io(format!("bad {what}: {e}")))
                };
                let u = endpoint("u")?;
                let v = endpoint("v")?;
                match op {
                    "+" => {
                        delta.add_edge(u, v);
                        seen.0 += 1;
                    }
                    "-" => {
                        delta.remove_edge(u, v);
                        seen.1 += 1;
                    }
                    other => {
                        return Err(GraphError::Io(format!(
                            "delta op must be + or -, got '{other}'"
                        )))
                    }
                }
            }
        }
    }
    let (added, removed) = header.ok_or_else(|| GraphError::Io("missing header line".into()))?;
    if seen != (added, removed) {
        return Err(GraphError::Io(format!(
            "header declared {added}+/{removed}- edges, found {}+/{}-",
            seen.0, seen.1
        )));
    }
    Ok(delta)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn graph_roundtrip() {
        let (g, _) = generators::planted_partition(2, 15, 0.4, 0.05, 99).unwrap();
        let mut buf = Vec::new();
        write_edge_list(&g, &mut buf).unwrap();
        let g2 = read_edge_list(&buf[..]).unwrap();
        assert_eq!(g, g2);
    }

    #[test]
    fn partition_roundtrip() {
        let p = Partition::from_sizes(&[3, 4, 5]);
        let mut buf = Vec::new();
        write_partition(&p, &mut buf).unwrap();
        let p2 = read_partition(&buf[..]).unwrap();
        assert_eq!(p, p2);
    }

    #[test]
    fn delta_roundtrip() {
        let mut d = GraphDelta::new();
        d.add_nodes(2)
            .add_edge(0, 5)
            .add_edge(3, 4)
            .remove_edge(1, 2);
        let mut buf = Vec::new();
        write_delta(&d, &mut buf).unwrap();
        let d2 = read_delta(&buf[..]).unwrap();
        assert_eq!(d, d2);
        // Empty delta also round-trips.
        let mut buf = Vec::new();
        write_delta(&GraphDelta::new(), &mut buf).unwrap();
        assert!(read_delta(&buf[..]).unwrap().is_empty());
    }

    #[test]
    fn delta_malformed_inputs_are_errors() {
        assert!(read_delta("".as_bytes()).is_err());
        assert!(read_delta("0 1 0\n* 0 1\n".as_bytes()).is_err());
        assert!(read_delta("0 1 0\n+ 0\n".as_bytes()).is_err());
        assert!(read_delta("0 2 0\n+ 0 1\n".as_bytes()).is_err());
        assert!(read_delta("0 0 0\n+ 0 1\n".as_bytes()).is_err());
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let text = "# a graph\n\n3 2\n0 1\n# middle comment\n1 2\n";
        let g = read_edge_list(text.as_bytes()).unwrap();
        assert_eq!(g.n(), 3);
        assert_eq!(g.m(), 2);
    }

    #[test]
    fn header_mismatch_detected() {
        let text = "3 5\n0 1\n";
        assert!(matches!(
            read_edge_list(text.as_bytes()),
            Err(GraphError::Io(_))
        ));
    }

    #[test]
    fn empty_input_is_error() {
        assert!(read_edge_list("".as_bytes()).is_err());
        assert!(read_partition("".as_bytes()).is_err());
    }

    #[test]
    fn malformed_lines_are_errors() {
        assert!(read_edge_list("2 1\n0\n".as_bytes()).is_err());
        assert!(read_edge_list("x y\n".as_bytes()).is_err());
        assert!(read_partition("2 1\n0\nbanana\n".as_bytes()).is_err());
    }
}
