//! Immutable undirected graph in compressed sparse row (CSR) form.
//!
//! The algorithm layer only ever needs: node count, degree, neighbour
//! iteration, and the conductance quantities of the paper. CSR gives all
//! of these with two flat arrays and no per-node allocation, which keeps
//! the simulator's inner loop (random neighbour sampling during matching
//! generation) branch-light and cache-friendly.

use crate::error::GraphError;
use crate::NodeId;

/// An immutable, undirected, simple graph in CSR form.
///
/// Invariants (enforced at construction):
/// * adjacency is symmetric — `u ∈ N(v)` iff `v ∈ N(u)`;
/// * neighbour lists are sorted and duplicate-free;
/// * no self-loops.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Graph {
    /// `offsets[v]..offsets[v+1]` indexes `neighbours` for node `v`.
    offsets: Vec<usize>,
    /// Concatenated sorted neighbour lists.
    neighbours: Vec<NodeId>,
}

impl Graph {
    /// Build a graph with `n` nodes from an undirected edge list.
    ///
    /// Duplicate edges are deduplicated; self-loops are an error.
    ///
    /// ```
    /// use lbc_graph::Graph;
    /// let g = Graph::from_edges(3, &[(0, 1), (1, 2), (1, 0)]).unwrap();
    /// assert_eq!(g.m(), 2);
    /// assert_eq!(g.neighbours(1), &[0, 2]);
    /// assert!(Graph::from_edges(2, &[(0, 0)]).is_err());
    /// ```
    pub fn from_edges(n: usize, edges: &[(NodeId, NodeId)]) -> Result<Self, GraphError> {
        for &(u, v) in edges {
            if u as usize >= n {
                return Err(GraphError::NodeOutOfRange { node: u, n });
            }
            if v as usize >= n {
                return Err(GraphError::NodeOutOfRange { node: v, n });
            }
            if u == v {
                return Err(GraphError::SelfLoop { node: u });
            }
        }
        // Count directed degrees, then fill.
        let mut deg = vec![0usize; n];
        for &(u, v) in edges {
            deg[u as usize] += 1;
            deg[v as usize] += 1;
        }
        let mut offsets = Vec::with_capacity(n + 1);
        let mut acc = 0usize;
        offsets.push(0);
        for d in &deg {
            acc += d;
            offsets.push(acc);
        }
        let mut cursor = offsets.clone();
        let mut neighbours = vec![0 as NodeId; acc];
        for &(u, v) in edges {
            neighbours[cursor[u as usize]] = v;
            cursor[u as usize] += 1;
            neighbours[cursor[v as usize]] = u;
            cursor[v as usize] += 1;
        }
        // Sort and dedup each list in place.
        let mut dedup_neighbours = Vec::with_capacity(acc);
        let mut new_offsets = Vec::with_capacity(n + 1);
        new_offsets.push(0);
        for v in 0..n {
            let lo = offsets[v];
            let hi = offsets[v + 1];
            let list = &mut neighbours[lo..hi];
            list.sort_unstable();
            let mut prev: Option<NodeId> = None;
            for &w in list.iter() {
                if prev != Some(w) {
                    dedup_neighbours.push(w);
                    prev = Some(w);
                }
            }
            new_offsets.push(dedup_neighbours.len());
        }
        Ok(Graph {
            offsets: new_offsets,
            neighbours: dedup_neighbours,
        })
    }

    /// Assemble a graph from already-validated CSR arrays (the
    /// [`crate::delta`] patch path, which maintains the invariants
    /// incrementally instead of re-deriving them from an edge list).
    pub(crate) fn from_parts(offsets: Vec<usize>, neighbours: Vec<NodeId>) -> Self {
        debug_assert!(!offsets.is_empty() && *offsets.last().unwrap() == neighbours.len());
        Graph {
            offsets,
            neighbours,
        }
    }

    /// Assemble a graph from raw CSR arrays, **checking every invariant**
    /// (offsets monotone and anchored, neighbour lists sorted and
    /// duplicate-free, no self-loops, adjacency symmetric). This is the
    /// deserialisation entry point for binary formats that persist the
    /// CSR arrays directly (`lbc-store` snapshots): a corrupted or
    /// hand-forged file comes back as a [`GraphError`], never a graph
    /// that violates the invariants the algorithm layer relies on.
    pub fn from_csr(offsets: Vec<usize>, neighbours: Vec<NodeId>) -> Result<Self, GraphError> {
        let invalid = |msg: String| GraphError::InvalidParameter(format!("csr: {msg}"));
        if offsets.is_empty() {
            return Err(invalid("offsets array is empty".into()));
        }
        if offsets[0] != 0 {
            return Err(invalid(format!("offsets[0] = {}, expected 0", offsets[0])));
        }
        if *offsets.last().unwrap() != neighbours.len() {
            return Err(invalid(format!(
                "final offset {} does not match {} neighbours",
                offsets.last().unwrap(),
                neighbours.len()
            )));
        }
        let n = offsets.len() - 1;
        for w in offsets.windows(2) {
            if w[0] > w[1] {
                return Err(invalid(format!("offsets decrease: {} > {}", w[0], w[1])));
            }
        }
        for v in 0..n {
            let list = &neighbours[offsets[v]..offsets[v + 1]];
            for pair in list.windows(2) {
                if pair[0] >= pair[1] {
                    return Err(invalid(format!(
                        "node {v}: neighbour list unsorted or duplicated at {}",
                        pair[1]
                    )));
                }
            }
            for &w in list {
                if w as usize >= n {
                    return Err(GraphError::NodeOutOfRange { node: w, n });
                }
                if w as usize == v {
                    return Err(GraphError::SelfLoop { node: w });
                }
            }
        }
        // Symmetry in O(n + m): build the transpose with a counting
        // sort (iterating sources ascending fills each head's region in
        // ascending order) — the adjacency is symmetric iff the
        // transpose equals the original arrays.
        let mut cursor: Vec<usize> = offsets[..n].to_vec();
        let mut transpose: Vec<NodeId> = vec![0; neighbours.len()];
        for v in 0..n {
            for &w in &neighbours[offsets[v]..offsets[v + 1]] {
                let c = cursor[w as usize];
                if c >= offsets[w as usize + 1] {
                    return Err(invalid(format!("asymmetric adjacency around node {w}")));
                }
                transpose[c] = v as NodeId;
                cursor[w as usize] = c + 1;
            }
        }
        if transpose != neighbours {
            return Err(invalid("asymmetric adjacency".into()));
        }
        Ok(Graph {
            offsets,
            neighbours,
        })
    }

    /// The raw CSR arrays `(offsets, neighbours)` — the serialisation
    /// seam for binary formats; [`Graph::from_csr`] is the validated
    /// inverse.
    pub fn csr_parts(&self) -> (&[usize], &[NodeId]) {
        (&self.offsets, &self.neighbours)
    }

    /// Start of node `v`'s slice in the flat neighbour array (the CSR
    /// offset; `v` may be `n`, giving the end sentinel).
    #[inline]
    pub(crate) fn neighbour_offset(&self, v: NodeId) -> usize {
        self.offsets[v as usize]
    }

    /// Raw slice `lo..hi` of the flat neighbour array — the bulk-copy
    /// seam for the delta patch's untouched runs.
    #[inline]
    pub(crate) fn neighbour_range(&self, lo: usize, hi: usize) -> &[NodeId] {
        &self.neighbours[lo..hi]
    }

    /// Number of nodes.
    #[inline]
    pub fn n(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of undirected edges.
    #[inline]
    pub fn m(&self) -> usize {
        self.neighbours.len() / 2
    }

    /// Degree of node `v`.
    #[inline]
    pub fn degree(&self, v: NodeId) -> usize {
        let v = v as usize;
        self.offsets[v + 1] - self.offsets[v]
    }

    /// Sorted neighbour slice of node `v`.
    #[inline]
    pub fn neighbours(&self, v: NodeId) -> &[NodeId] {
        let v = v as usize;
        &self.neighbours[self.offsets[v]..self.offsets[v + 1]]
    }

    /// `i`-th neighbour of `v` (0-based); used for O(1) uniform neighbour
    /// sampling during matching generation.
    #[inline]
    pub fn neighbour_at(&self, v: NodeId, i: usize) -> NodeId {
        self.neighbours[self.offsets[v as usize] + i]
    }

    /// Whether `{u, v}` is an edge (binary search on the shorter list).
    pub fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        if u == v {
            return false;
        }
        let (a, b) = if self.degree(u) <= self.degree(v) {
            (u, v)
        } else {
            (v, u)
        };
        self.neighbours(a).binary_search(&b).is_ok()
    }

    /// Maximum degree `Δ`.
    pub fn max_degree(&self) -> usize {
        (0..self.n() as NodeId)
            .map(|v| self.degree(v))
            .max()
            .unwrap_or(0)
    }

    /// Minimum degree `δ`.
    pub fn min_degree(&self) -> usize {
        (0..self.n() as NodeId)
            .map(|v| self.degree(v))
            .min()
            .unwrap_or(0)
    }

    /// Whether every node has the same degree.
    pub fn is_regular(&self) -> bool {
        self.max_degree() == self.min_degree()
    }

    /// Degree ratio `Δ/δ`; `∞` when some node is isolated.
    pub fn degree_ratio(&self) -> f64 {
        let dmin = self.min_degree();
        if dmin == 0 {
            f64::INFINITY
        } else {
            self.max_degree() as f64 / dmin as f64
        }
    }

    /// Volume of a node set: number of edge endpoints in `S`
    /// (`vol(S) = Σ_{v∈S} d_v`), matching the paper's convention for
    /// regular graphs where `vol(S) = d·|S|`.
    pub fn volume(&self, set: &[bool]) -> usize {
        debug_assert_eq!(set.len(), self.n());
        (0..self.n())
            .filter(|&v| set[v])
            .map(|v| self.degree(v as NodeId))
            .sum()
    }

    /// Number of edges crossing from `S` to its complement.
    pub fn cut_size(&self, set: &[bool]) -> usize {
        debug_assert_eq!(set.len(), self.n());
        let mut cut = 0usize;
        for v in 0..self.n() {
            if !set[v] {
                continue;
            }
            for &w in self.neighbours(v as NodeId) {
                if !set[w as usize] {
                    cut += 1;
                }
            }
        }
        cut
    }

    /// Conductance `ϕ_G(S) = |E(S, V\S)| / min(vol(S), vol(V\S))`.
    ///
    /// The paper defines `ϕ_G(S) = |E(S, V\S)| / vol(S)` and always
    /// evaluates it on cluster-sized sets; we use the symmetric
    /// `min`-normalised version, which coincides on sets with at most half
    /// the volume and is the standard definition elsewhere. The raw
    /// one-sided value is available as [`Graph::conductance_one_sided`].
    pub fn conductance(&self, set: &[bool]) -> f64 {
        let vol_s = self.volume(set);
        let vol_total = 2 * self.m();
        let vol_c = vol_total - vol_s;
        let denom = vol_s.min(vol_c);
        if denom == 0 {
            return f64::INFINITY;
        }
        self.cut_size(set) as f64 / denom as f64
    }

    /// The paper's one-sided conductance `|E(S, V\S)| / vol(S)`.
    pub fn conductance_one_sided(&self, set: &[bool]) -> f64 {
        let vol_s = self.volume(set);
        if vol_s == 0 {
            return f64::INFINITY;
        }
        self.cut_size(set) as f64 / vol_s as f64
    }

    /// Whether the graph is connected (BFS from node 0; empty graphs are
    /// connected by convention).
    pub fn is_connected(&self) -> bool {
        let n = self.n();
        if n == 0 {
            return true;
        }
        let mut seen = vec![false; n];
        let mut queue = std::collections::VecDeque::new();
        seen[0] = true;
        queue.push_back(0 as NodeId);
        let mut count = 1usize;
        while let Some(v) = queue.pop_front() {
            for &w in self.neighbours(v) {
                if !seen[w as usize] {
                    seen[w as usize] = true;
                    count += 1;
                    queue.push_back(w);
                }
            }
        }
        count == n
    }

    /// Iterate all undirected edges `(u, v)` with `u < v`.
    pub fn edges(&self) -> impl Iterator<Item = (NodeId, NodeId)> + '_ {
        (0..self.n() as NodeId).flat_map(move |u| {
            self.neighbours(u)
                .iter()
                .copied()
                .filter(move |&v| u < v)
                .map(move |v| (u, v))
        })
    }

    /// Sum of degrees (`2m`).
    #[inline]
    pub fn total_volume(&self) -> usize {
        self.neighbours.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle_plus_pendant() -> Graph {
        // 0-1, 1-2, 2-0 triangle; 3 pendant on 0.
        Graph::from_edges(4, &[(0, 1), (1, 2), (2, 0), (0, 3)]).unwrap()
    }

    #[test]
    fn basic_counts() {
        let g = triangle_plus_pendant();
        assert_eq!(g.n(), 4);
        assert_eq!(g.m(), 4);
        assert_eq!(g.degree(0), 3);
        assert_eq!(g.degree(3), 1);
        assert_eq!(g.total_volume(), 8);
    }

    #[test]
    fn neighbours_sorted_and_symmetric() {
        let g = triangle_plus_pendant();
        assert_eq!(g.neighbours(0), &[1, 2, 3]);
        assert_eq!(g.neighbours(3), &[0]);
        for u in 0..g.n() as NodeId {
            for &v in g.neighbours(u) {
                assert!(g.neighbours(v).contains(&u));
            }
        }
    }

    #[test]
    fn duplicate_edges_are_removed() {
        let g = Graph::from_edges(3, &[(0, 1), (1, 0), (0, 1), (1, 2)]).unwrap();
        assert_eq!(g.m(), 2);
        assert_eq!(g.degree(0), 1);
    }

    #[test]
    fn self_loop_rejected() {
        assert_eq!(
            Graph::from_edges(2, &[(1, 1)]),
            Err(GraphError::SelfLoop { node: 1 })
        );
    }

    #[test]
    fn out_of_range_rejected() {
        assert!(matches!(
            Graph::from_edges(2, &[(0, 5)]),
            Err(GraphError::NodeOutOfRange { node: 5, n: 2 })
        ));
    }

    #[test]
    fn has_edge_works() {
        let g = triangle_plus_pendant();
        assert!(g.has_edge(0, 1));
        assert!(g.has_edge(1, 0));
        assert!(!g.has_edge(1, 3));
        assert!(!g.has_edge(2, 2));
    }

    #[test]
    fn cut_and_conductance() {
        let g = triangle_plus_pendant();
        let set = vec![true, true, true, false]; // triangle
        assert_eq!(g.cut_size(&set), 1);
        assert_eq!(g.volume(&set), 7);
        // min(vol) side is the pendant with volume 1.
        assert!((g.conductance(&set) - 1.0).abs() < 1e-12);
        assert!((g.conductance_one_sided(&set) - 1.0 / 7.0).abs() < 1e-12);
    }

    #[test]
    fn conductance_of_empty_set_is_infinite() {
        let g = triangle_plus_pendant();
        let set = vec![false; 4];
        assert!(g.conductance(&set).is_infinite());
        assert!(g.conductance_one_sided(&set).is_infinite());
    }

    #[test]
    fn connectivity() {
        let g = triangle_plus_pendant();
        assert!(g.is_connected());
        let g2 = Graph::from_edges(4, &[(0, 1), (2, 3)]).unwrap();
        assert!(!g2.is_connected());
        let empty = Graph::from_edges(0, &[]).unwrap();
        assert!(empty.is_connected());
    }

    #[test]
    fn regularity_queries() {
        let cycle = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]).unwrap();
        assert!(cycle.is_regular());
        assert_eq!(cycle.degree_ratio(), 1.0);
        let g = triangle_plus_pendant();
        assert!(!g.is_regular());
        assert_eq!(g.max_degree(), 3);
        assert_eq!(g.min_degree(), 1);
    }

    #[test]
    fn edges_iterator_yields_each_edge_once() {
        let g = triangle_plus_pendant();
        let mut e: Vec<_> = g.edges().collect();
        e.sort_unstable();
        assert_eq!(e, vec![(0, 1), (0, 2), (0, 3), (1, 2)]);
    }

    #[test]
    fn isolated_node_degree_ratio_infinite() {
        let g = Graph::from_edges(3, &[(0, 1)]).unwrap();
        assert!(g.degree_ratio().is_infinite());
    }

    #[test]
    fn from_csr_round_trips_and_validates() {
        let g = triangle_plus_pendant();
        let (offsets, neighbours) = g.csr_parts();
        let h = Graph::from_csr(offsets.to_vec(), neighbours.to_vec()).unwrap();
        assert_eq!(g, h);
        // Empty graph round-trips too.
        assert_eq!(
            Graph::from_csr(vec![0], vec![]).unwrap(),
            Graph::from_edges(0, &[]).unwrap()
        );
    }

    #[test]
    fn from_csr_rejects_structural_corruption() {
        // Empty offsets.
        assert!(Graph::from_csr(vec![], vec![]).is_err());
        // Bad anchor.
        assert!(Graph::from_csr(vec![1, 2], vec![1, 0]).is_err());
        // Final offset / neighbour count mismatch.
        assert!(Graph::from_csr(vec![0, 1, 3], vec![1, 0]).is_err());
        // Decreasing offsets.
        assert!(Graph::from_csr(vec![0, 2, 1, 3], vec![1, 2, 0]).is_err());
        // Unsorted neighbour list.
        assert!(Graph::from_csr(vec![0, 2, 3, 4], vec![2, 1, 0, 0]).is_err());
        // Duplicate neighbour.
        assert!(matches!(
            Graph::from_csr(vec![0, 2, 4], vec![1, 1, 0, 0]),
            Err(GraphError::InvalidParameter(_))
        ));
        // Out-of-range endpoint.
        assert!(matches!(
            Graph::from_csr(vec![0, 1, 2], vec![1, 5]),
            Err(GraphError::NodeOutOfRange { node: 5, n: 2 })
        ));
        // Self-loop.
        assert!(matches!(
            Graph::from_csr(vec![0, 1], vec![0]),
            Err(GraphError::SelfLoop { node: 0 })
        ));
        // Asymmetric adjacency: 0 -> 1 without 1 -> 0.
        assert!(Graph::from_csr(vec![0, 1, 1], vec![1]).is_err());
    }
}
