//! Batched graph mutations and the CSR patch that applies them.
//!
//! Served graphs mutate: edges appear and disappear, nodes join. The
//! [`Graph`] representation is deliberately immutable CSR, so updates go
//! through a [`GraphDelta`] — a batch of edge insertions/deletions plus
//! node additions — and [`Graph::apply_delta`], which produces the
//! patched graph while rebuilding **only the touched adjacency regions**:
//! untouched nodes' neighbour slices are copied wholesale (one `memcpy`
//! per maximal untouched run), and only nodes incident to a mutated edge
//! pay a sorted merge of their old list against the delta's per-node
//! operations. For a delta touching `t` nodes this is
//! `O(m + Σ_{v touched} deg(v) + |δ| log |δ|)` with the `O(m)` part pure
//! copying — the patch that the incremental re-clustering subsystem
//! (`lbc_core::warm_start`, `lbc_runtime`'s `apply_delta`) rides on.

use crate::csr::Graph;
use crate::error::GraphError;
use crate::NodeId;

/// A batch of mutations to apply to a [`Graph`].
///
/// Semantics (all applied atomically by [`Graph::apply_delta`]):
///
/// * **Removals** refer to edges of the *pre-delta* graph; removing an
///   edge that is not present is an error ([`GraphError::MissingEdge`]),
///   which catches a delta drifting out of sync with its graph.
/// * **Additions** apply after removals, so a delta that removes and
///   re-adds the same pair round-trips to an identical graph. Adding an
///   edge that is already present is deduplicated silently, matching
///   [`Graph::from_edges`].
/// * **Node additions** extend the id space by `count` isolated nodes
///   (`old_n..old_n+count`); added edges may reference them.
///
/// ```
/// use lbc_graph::{Graph, GraphDelta};
/// let g = Graph::from_edges(3, &[(0, 1), (1, 2)]).unwrap();
/// let mut d = GraphDelta::new();
/// d.remove_edge(1, 2);
/// d.add_nodes(1);
/// d.add_edge(2, 3);
/// let h = g.apply_delta(&d).unwrap();
/// assert_eq!(h.n(), 4);
/// assert!(!h.has_edge(1, 2));
/// assert!(h.has_edge(2, 3));
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct GraphDelta {
    add_nodes: usize,
    add_edges: Vec<(NodeId, NodeId)>,
    remove_edges: Vec<(NodeId, NodeId)>,
}

impl GraphDelta {
    /// Empty delta (applying it is the identity).
    pub fn new() -> Self {
        GraphDelta::default()
    }

    /// Extend the graph by `count` isolated nodes.
    pub fn add_nodes(&mut self, count: usize) -> &mut Self {
        self.add_nodes += count;
        self
    }

    /// Queue insertion of edge `{u, v}` (validated at apply time).
    pub fn add_edge(&mut self, u: NodeId, v: NodeId) -> &mut Self {
        self.add_edges.push(if u < v { (u, v) } else { (v, u) });
        self
    }

    /// Queue removal of edge `{u, v}` (must exist at apply time).
    pub fn remove_edge(&mut self, u: NodeId, v: NodeId) -> &mut Self {
        self.remove_edges.push(if u < v { (u, v) } else { (v, u) });
        self
    }

    /// Number of nodes this delta appends.
    pub fn added_nodes(&self) -> usize {
        self.add_nodes
    }

    /// Queued edge insertions, normalised `u < v`, in insertion order.
    pub fn added_edges(&self) -> &[(NodeId, NodeId)] {
        &self.add_edges
    }

    /// Queued edge removals, normalised `u < v`, in insertion order.
    pub fn removed_edges(&self) -> &[(NodeId, NodeId)] {
        &self.remove_edges
    }

    /// Whether applying this delta is the identity.
    pub fn is_empty(&self) -> bool {
        self.add_nodes == 0 && self.add_edges.is_empty() && self.remove_edges.is_empty()
    }

    /// Coalesce an ordered stream of deltas into one delta whose
    /// application to `base` yields the same graph as applying the
    /// stream one by one — the substrate of
    /// `Registry::apply_delta_stream`, which pays a single CSR patch
    /// and a single warm-start pass for a whole batch of small updates.
    ///
    /// Per edge pair only the *net* effect survives: add-then-remove
    /// cancels to nothing, remove-then-add of a pre-existing edge
    /// cancels to nothing, repeated additions dedup. Node additions
    /// accumulate. Validation matches sequential application: removing
    /// an edge that is absent *at that point in the stream* is
    /// [`GraphError::MissingEdge`], and endpoints must be in range for
    /// the node count *at that point* — but unlike sequential
    /// application the coalesced delta is all-or-nothing (an error
    /// leaves `base` untouched rather than half the stream applied).
    pub fn coalesce(base: &Graph, deltas: &[GraphDelta]) -> Result<GraphDelta, GraphError> {
        use std::collections::BTreeMap;
        let base_n = base.n();
        let base_has = |&(u, v): &(NodeId, NodeId)| {
            (u as usize) < base_n && (v as usize) < base_n && base.has_edge(u, v)
        };
        let mut n = base_n;
        let mut added_nodes = 0usize;
        // Touched pairs (normalised u < v) -> present after the stream
        // so far. Untouched pairs keep their base presence.
        let mut present: BTreeMap<(NodeId, NodeId), bool> = BTreeMap::new();
        for d in deltas {
            n += d.added_nodes();
            added_nodes += d.added_nodes();
            // Repeated removals of one pair *within* a single delta
            // collapse (as `apply_delta`'s op dedup does); only a
            // removal in a *later* delta re-validates.
            let removals: std::collections::BTreeSet<(NodeId, NodeId)> =
                d.removed_edges().iter().copied().collect();
            for &(u, v) in &removals {
                if u as usize >= n {
                    return Err(GraphError::NodeOutOfRange { node: u, n });
                }
                if v as usize >= n {
                    return Err(GraphError::NodeOutOfRange { node: v, n });
                }
                if u == v {
                    return Err(GraphError::SelfLoop { node: u });
                }
                let p = present.entry((u, v)).or_insert_with(|| base_has(&(u, v)));
                if !*p {
                    return Err(GraphError::MissingEdge { u, v });
                }
                *p = false;
            }
            for &(u, v) in d.added_edges() {
                if u as usize >= n {
                    return Err(GraphError::NodeOutOfRange { node: u, n });
                }
                if v as usize >= n {
                    return Err(GraphError::NodeOutOfRange { node: v, n });
                }
                if u == v {
                    return Err(GraphError::SelfLoop { node: u });
                }
                present.insert((u, v), true);
            }
        }
        let mut out = GraphDelta::new();
        out.add_nodes(added_nodes);
        for (&(u, v), &p) in &present {
            match (base_has(&(u, v)), p) {
                (false, true) => {
                    out.add_edge(u, v);
                }
                (true, false) => {
                    out.remove_edge(u, v);
                }
                _ => {} // net no-op
            }
        }
        Ok(out)
    }

    /// Number of distinct nodes incident to a queued edge mutation.
    pub fn touched_nodes(&self) -> usize {
        let mut nodes: Vec<NodeId> = self
            .add_edges
            .iter()
            .chain(&self.remove_edges)
            .flat_map(|&(u, v)| [u, v])
            .collect();
        nodes.sort_unstable();
        nodes.dedup();
        nodes.len()
    }
}

impl Graph {
    /// Apply a [`GraphDelta`], producing the patched graph.
    ///
    /// Only the adjacency regions of touched nodes are rebuilt (sorted
    /// merge of the old list against the node's delta operations);
    /// untouched regions are copied verbatim in maximal runs. See the
    /// [`GraphDelta`] docs for the mutation semantics and error cases.
    pub fn apply_delta(&self, delta: &GraphDelta) -> Result<Graph, GraphError> {
        let old_n = self.n();
        let n = old_n + delta.added_nodes();

        for &(u, v) in delta.added_edges().iter().chain(delta.removed_edges()) {
            if u as usize >= n {
                return Err(GraphError::NodeOutOfRange { node: u, n });
            }
            if v as usize >= n {
                return Err(GraphError::NodeOutOfRange { node: v, n });
            }
            if u == v {
                return Err(GraphError::SelfLoop { node: u });
            }
        }
        for &(u, v) in delta.removed_edges() {
            if u as usize >= old_n || v as usize >= old_n || !self.has_edge(u, v) {
                return Err(GraphError::MissingEdge { u, v });
            }
        }

        // Per-node operation list, both directions, sorted by
        // (node, partner); same-pair duplicates collapse below.
        let mut ops: Vec<(NodeId, NodeId, bool)> =
            Vec::with_capacity(2 * (delta.added_edges().len() + delta.removed_edges().len()));
        for &(u, v) in delta.removed_edges() {
            ops.push((u, v, false));
            ops.push((v, u, false));
        }
        for &(u, v) in delta.added_edges() {
            ops.push((u, v, true));
            ops.push((v, u, true));
        }
        ops.sort_unstable();
        ops.dedup();

        let mut offsets = Vec::with_capacity(n + 1);
        offsets.push(0usize);
        let mut neighbours: Vec<NodeId> =
            Vec::with_capacity(self.total_volume() + 2 * delta.added_edges().len());
        let mut op_i = 0usize;
        let mut v = 0usize;
        while v < n {
            // Maximal run of untouched old nodes: one bulk copy.
            let run_start = v;
            while v < old_n && (op_i >= ops.len() || ops[op_i].0 as usize != v) {
                offsets.push(0); // placeholder, fixed after the copy
                v += 1;
            }
            if v > run_start {
                let lo = self.neighbour_offset(run_start as NodeId);
                let hi = self.neighbour_offset(v as NodeId);
                let base = neighbours.len();
                neighbours.extend_from_slice(self.neighbour_range(lo, hi));
                for u in run_start..v {
                    let end = base + (self.neighbour_offset((u + 1) as NodeId) - lo);
                    offsets[u + 1] = end;
                }
                debug_assert_eq!(neighbours.len(), base + (hi - lo));
            }
            if v >= n {
                break;
            }
            // Touched (or brand-new) node: merge old list with its ops.
            let old: &[NodeId] = if v < old_n {
                self.neighbours(v as NodeId)
            } else {
                &[]
            };
            let op_lo = op_i;
            while op_i < ops.len() && ops[op_i].0 as usize == v {
                op_i += 1;
            }
            let vops = &ops[op_lo..op_i];
            let mut i = 0usize;
            let mut j = 0usize;
            while j < vops.len() {
                let w = vops[j].1;
                while i < old.len() && old[i] < w {
                    neighbours.push(old[i]);
                    i += 1;
                }
                let mut removed = false;
                let mut added = false;
                while j < vops.len() && vops[j].1 == w {
                    if vops[j].2 {
                        added = true;
                    } else {
                        removed = true;
                    }
                    j += 1;
                }
                let present = i < old.len() && old[i] == w;
                if present {
                    i += 1;
                }
                if added || (present && !removed) {
                    neighbours.push(w);
                }
            }
            neighbours.extend_from_slice(&old[i..]);
            offsets.push(neighbours.len());
            v += 1;
        }
        debug_assert_eq!(offsets.len(), n + 1);
        Ok(Graph::from_parts(offsets, neighbours))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle_plus_pendant() -> Graph {
        Graph::from_edges(4, &[(0, 1), (1, 2), (2, 0), (0, 3)]).unwrap()
    }

    #[test]
    fn empty_delta_is_identity() {
        let g = triangle_plus_pendant();
        let d = GraphDelta::new();
        assert!(d.is_empty());
        assert_eq!(g.apply_delta(&d).unwrap(), g);
    }

    #[test]
    fn add_and_remove_edges() {
        let g = triangle_plus_pendant();
        let mut d = GraphDelta::new();
        d.remove_edge(0, 1).add_edge(1, 3);
        assert_eq!(d.touched_nodes(), 3);
        let h = g.apply_delta(&d).unwrap();
        assert_eq!(h.n(), 4);
        assert_eq!(h.m(), 4);
        assert!(!h.has_edge(0, 1));
        assert!(h.has_edge(1, 3));
        // Untouched node 2's list is unchanged.
        assert_eq!(h.neighbours(2), g.neighbours(2));
        // Patched graph equals a cold rebuild from the same edge set.
        let mut edges: Vec<_> = h.edges().collect();
        edges.sort_unstable();
        assert_eq!(h, Graph::from_edges(4, &edges).unwrap());
    }

    #[test]
    fn node_additions_extend_the_id_space() {
        let g = triangle_plus_pendant();
        let mut d = GraphDelta::new();
        d.add_nodes(2).add_edge(3, 4).add_edge(4, 5);
        let h = g.apply_delta(&d).unwrap();
        assert_eq!(h.n(), 6);
        assert_eq!(h.neighbours(4), &[3, 5]);
        assert_eq!(h.degree(5), 1);
        // Without the node additions the same edges are out of range.
        let mut bad = GraphDelta::new();
        bad.add_edge(3, 4);
        assert!(matches!(
            g.apply_delta(&bad),
            Err(GraphError::NodeOutOfRange { node: 4, n: 4 })
        ));
    }

    #[test]
    fn removing_a_missing_edge_is_an_error() {
        let g = triangle_plus_pendant();
        let mut d = GraphDelta::new();
        d.remove_edge(1, 3);
        assert_eq!(
            g.apply_delta(&d),
            Err(GraphError::MissingEdge { u: 1, v: 3 })
        );
        // Removing an edge into the appended-node range cannot exist.
        let mut d2 = GraphDelta::new();
        d2.add_nodes(1).remove_edge(0, 4);
        assert_eq!(
            g.apply_delta(&d2),
            Err(GraphError::MissingEdge { u: 0, v: 4 })
        );
    }

    #[test]
    fn self_loops_and_duplicates_rejected_or_deduped() {
        let g = triangle_plus_pendant();
        let mut d = GraphDelta::new();
        d.add_edge(2, 2);
        assert_eq!(g.apply_delta(&d), Err(GraphError::SelfLoop { node: 2 }));
        // Adding a present edge (or the same edge twice) dedups.
        let mut d2 = GraphDelta::new();
        d2.add_edge(0, 1)
            .add_edge(1, 0)
            .add_edge(1, 3)
            .add_edge(1, 3);
        let h = g.apply_delta(&d2).unwrap();
        assert_eq!(h.m(), 5);
        assert_eq!(h.neighbours(1), &[0, 2, 3]);
    }

    #[test]
    fn remove_then_add_same_pair_round_trips() {
        let g = triangle_plus_pendant();
        let mut d = GraphDelta::new();
        d.remove_edge(0, 2).add_edge(2, 0);
        assert_eq!(g.apply_delta(&d).unwrap(), g);
    }

    #[test]
    fn coalesce_matches_sequential_application() {
        let g = triangle_plus_pendant();
        let mut d1 = GraphDelta::new();
        d1.remove_edge(0, 1).add_nodes(1).add_edge(3, 4);
        let mut d2 = GraphDelta::new();
        d2.add_edge(0, 1).remove_edge(3, 4).add_edge(2, 4);
        let mut d3 = GraphDelta::new();
        d3.add_nodes(1)
            .add_edge(4, 5)
            .remove_edge(2, 4)
            .add_edge(2, 4);
        let deltas = [d1, d2, d3];
        let sequential = deltas
            .iter()
            .fold(g.clone(), |acc, d| acc.apply_delta(d).unwrap());
        let coalesced = GraphDelta::coalesce(&g, &deltas).unwrap();
        assert_eq!(g.apply_delta(&coalesced).unwrap(), sequential);
        // Net no-ops vanished: 0-1 was removed then re-added, 3-4 added
        // then removed, 2-4 removed and re-added after its addition.
        assert_eq!(coalesced.added_nodes(), 2);
        assert_eq!(coalesced.added_edges(), &[(2, 4), (4, 5)]);
        assert!(coalesced.removed_edges().is_empty());
    }

    #[test]
    fn coalesce_validates_like_sequential_application() {
        let g = triangle_plus_pendant();
        // Removing an edge twice without re-adding it errors, exactly
        // as the second sequential apply_delta would.
        let mut d1 = GraphDelta::new();
        d1.remove_edge(0, 1);
        let mut d2 = GraphDelta::new();
        d2.remove_edge(0, 1);
        assert_eq!(
            GraphDelta::coalesce(&g, &[d1.clone(), d2]),
            Err(GraphError::MissingEdge { u: 0, v: 1 })
        );
        // Removing an edge added earlier in the stream is fine.
        let mut d3 = GraphDelta::new();
        d3.add_edge(1, 3);
        let mut d4 = GraphDelta::new();
        d4.remove_edge(1, 3);
        let net = GraphDelta::coalesce(&g, &[d3, d4]).unwrap();
        assert!(net.is_empty());
        // Endpoints must be in range for the node count at that point
        // in the stream: referencing node 4 before any add_nodes errors
        // even if a later delta would have added it.
        let mut early = GraphDelta::new();
        early.add_edge(0, 4);
        let mut late = GraphDelta::new();
        late.add_nodes(1);
        assert_eq!(
            GraphDelta::coalesce(&g, &[early, late]),
            Err(GraphError::NodeOutOfRange { node: 4, n: 4 })
        );
        // Self-loops rejected.
        let mut looped = GraphDelta::new();
        looped.add_edge(2, 2);
        assert_eq!(
            GraphDelta::coalesce(&g, &[looped]),
            Err(GraphError::SelfLoop { node: 2 })
        );
        // Empty stream coalesces to the empty delta.
        assert!(GraphDelta::coalesce(&g, &[]).unwrap().is_empty());
        // A duplicated removal *within one* delta collapses, exactly as
        // apply_delta's op dedup does…
        let mut dup = GraphDelta::new();
        dup.remove_edge(0, 1).remove_edge(0, 1);
        assert_eq!(g.apply_delta(&dup).unwrap().m(), g.m() - 1);
        let net = GraphDelta::coalesce(&g, &[dup]).unwrap();
        assert_eq!(net.removed_edges(), &[(0, 1)]);
        // …while the same duplication across two deltas stays an error
        // (the second sequential apply would fail too).
    }

    #[test]
    fn patch_matches_cold_rebuild_on_a_bigger_graph() {
        // Deterministic pseudo-random graph + delta, cross-checked
        // against Graph::from_edges of the mutated edge set.
        let n = 60u32;
        let mut edges = Vec::new();
        for u in 0..n {
            for v in (u + 1)..n {
                if (u
                    .wrapping_mul(2654435761)
                    .wrapping_add(v.wrapping_mul(40503)))
                    % 7
                    == 0
                {
                    edges.push((u, v));
                }
            }
        }
        let g = Graph::from_edges(n as usize, &edges).unwrap();
        let mut d = GraphDelta::new();
        d.add_nodes(3);
        let mut expect: Vec<(u32, u32)> = edges.clone();
        // Remove every 5th edge, add a fan from the new nodes.
        for (i, &(u, v)) in edges.iter().enumerate() {
            if i % 5 == 0 {
                d.remove_edge(u, v);
                expect.retain(|&e| e != (u, v));
            }
        }
        for t in 0..3u32 {
            for u in (t * 7..n).step_by(11) {
                d.add_edge(u, n + t);
                expect.push((u, n + t));
            }
        }
        let h = g.apply_delta(&d).unwrap();
        assert_eq!(h, Graph::from_edges(n as usize + 3, &expect).unwrap());
    }
}
