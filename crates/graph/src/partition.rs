//! `k`-way partitions and the paper's cluster-structure quantities.
//!
//! A [`Partition`] stores one cluster label per node. It serves both as
//! ground truth attached to generated graphs and as algorithm output. The
//! conductance machinery here computes `ϕ_G(S_i)` for each cluster and
//! `max_i ϕ_G(S_i)` — the quantity whose minimum over partitions is the
//! paper's `k`-way expansion constant `ρ(k)` (§1.1).

use crate::csr::Graph;
use crate::error::GraphError;
use crate::NodeId;

/// A `k`-way partition of `{0, …, n−1}`: `labels[v] ∈ {0, …, k−1}`.
///
/// Serialisation goes through the plain-text format in [`crate::io`]
/// (`write_partition` / `read_partition`) rather than a serde derive, so
/// the workspace stays free of external (de)serialisation dependencies.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Partition {
    labels: Vec<u32>,
    k: usize,
}

impl Partition {
    /// Construct from labels; `k` is inferred as `max(label) + 1`.
    ///
    /// Every label must be `< k` and every cluster `0..k` must be
    /// non-empty, so that `k` is meaningful.
    pub fn new(labels: Vec<u32>) -> Result<Self, GraphError> {
        if labels.is_empty() {
            return Ok(Partition { labels, k: 0 });
        }
        let k = *labels.iter().max().unwrap() as usize + 1;
        let mut seen = vec![false; k];
        for &l in &labels {
            seen[l as usize] = true;
        }
        if !seen.iter().all(|&s| s) {
            return Err(GraphError::InvalidParameter(
                "partition has empty cluster indices below max label".into(),
            ));
        }
        Ok(Partition { labels, k })
    }

    /// Construct from labels that may leave some of `0..k` empty (e.g. an
    /// algorithm output that used fewer labels than allowed).
    pub fn with_k(labels: Vec<u32>, k: usize) -> Result<Self, GraphError> {
        if let Some(&l) = labels.iter().find(|&&l| l as usize >= k) {
            return Err(GraphError::InvalidParameter(format!(
                "label {l} out of range for k = {k}"
            )));
        }
        Ok(Partition { labels, k })
    }

    /// Partition with consecutive blocks of the given sizes:
    /// cluster 0 gets nodes `0..sizes\[0\]`, cluster 1 the next block, etc.
    pub fn from_sizes(sizes: &[usize]) -> Self {
        let mut labels = Vec::with_capacity(sizes.iter().sum());
        for (c, &s) in sizes.iter().enumerate() {
            labels.extend(std::iter::repeat_n(c as u32, s));
        }
        Partition {
            labels,
            k: sizes.len(),
        }
    }

    /// Number of nodes.
    pub fn n(&self) -> usize {
        self.labels.len()
    }

    /// Number of clusters.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Label of node `v`.
    #[inline]
    pub fn label(&self, v: NodeId) -> u32 {
        self.labels[v as usize]
    }

    /// All labels.
    pub fn labels(&self) -> &[u32] {
        &self.labels
    }

    /// Size of each cluster.
    pub fn cluster_sizes(&self) -> Vec<usize> {
        let mut sizes = vec![0usize; self.k];
        for &l in &self.labels {
            sizes[l as usize] += 1;
        }
        sizes
    }

    /// Members of cluster `c`.
    pub fn cluster_members(&self, c: u32) -> Vec<NodeId> {
        self.labels
            .iter()
            .enumerate()
            .filter(|&(_, &l)| l == c)
            .map(|(v, _)| v as NodeId)
            .collect()
    }

    /// Indicator mask of cluster `c`.
    pub fn indicator(&self, c: u32) -> Vec<bool> {
        self.labels.iter().map(|&l| l == c).collect()
    }

    /// The balance parameter `β = min_i |S_i| / n` (paper §1.1 assumes
    /// `|S_i| ≥ βn`). Returns 0 for empty partitions.
    pub fn beta(&self) -> f64 {
        if self.labels.is_empty() || self.k == 0 {
            return 0.0;
        }
        let min = *self.cluster_sizes().iter().min().unwrap();
        min as f64 / self.labels.len() as f64
    }

    /// One-sided conductance `ϕ_G(S_c)` of each cluster (paper's
    /// definition: `|E(S, V\S)| / vol(S)`).
    pub fn cluster_conductances(&self, g: &Graph) -> Vec<f64> {
        assert_eq!(g.n(), self.n(), "graph/partition size mismatch");
        (0..self.k as u32)
            .map(|c| g.conductance_one_sided(&self.indicator(c)))
            .collect()
    }

    /// `max_i ϕ_G(S_i)` — the value this partition achieves towards the
    /// `k`-way expansion constant `ρ(k)`.
    pub fn max_conductance(&self, g: &Graph) -> f64 {
        self.cluster_conductances(g)
            .into_iter()
            .fold(f64::NEG_INFINITY, f64::max)
    }

    /// Number of edges inside cluster `c`.
    pub fn internal_edges(&self, g: &Graph, c: u32) -> usize {
        g.edges()
            .filter(|&(u, v)| self.label(u) == c && self.label(v) == c)
            .count()
    }

    /// Number of edges crossing between different clusters.
    pub fn cut_edges(&self, g: &Graph) -> usize {
        g.edges()
            .filter(|&(u, v)| self.label(u) != self.label(v))
            .count()
    }
}

/// Exact `k`-way expansion constant
/// `ρ(k) = min over k-way partitions of max_i ϕ_G(S_i)` (paper §1.1,
/// one-sided conductance), by exhaustive enumeration.
///
/// Computing `ρ(k)` is coNP-hard, so this is exponential (`k^n`
/// labellings, canonicalised) and intended for *validating* the
/// partition-based upper bound on graphs with `n ≲ 12`. Returns the
/// optimum value and one optimal partition.
///
/// # Panics
/// If `k == 0`, `k > n`, or `n > 16` (guard against accidental blow-up).
pub fn exact_rho_k(g: &Graph, k: usize) -> (f64, Partition) {
    let n = g.n();
    assert!(k >= 1 && k <= n, "k = {k} out of range");
    assert!(n <= 16, "exact_rho_k is exponential; n = {n} > 16");
    let mut best = f64::INFINITY;
    let mut best_labels: Option<Vec<u32>> = None;
    let mut labels = vec![0u32; n];
    // Canonical form: node 0 is always in cluster 0, and a node may open
    // cluster c only if clusters 0..c are already open (restricted
    // growth strings), so each set partition is enumerated once.
    fn rec(
        g: &Graph,
        k: usize,
        labels: &mut Vec<u32>,
        v: usize,
        used: u32,
        best: &mut f64,
        best_labels: &mut Option<Vec<u32>>,
    ) {
        let n = g.n();
        if v == n {
            if used as usize != k {
                return;
            }
            let p = Partition::with_k(labels.clone(), k).expect("labels in range");
            let value = p.max_conductance(g);
            if value < *best {
                *best = value;
                *best_labels = Some(labels.clone());
            }
            return;
        }
        // Prune: not enough nodes left to open the remaining clusters.
        if (k - used as usize) > n - v {
            return;
        }
        let open_limit = (used + 1).min(k as u32);
        for c in 0..open_limit {
            labels[v] = c;
            let new_used = used.max(c + 1);
            rec(g, k, labels, v + 1, new_used, best, best_labels);
        }
    }
    rec(g, k, &mut labels, 0, 0, &mut best, &mut best_labels);
    let labels = best_labels.expect("at least one k-way partition exists");
    (best, Partition::with_k(labels, k).expect("labels in range"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_triangles_bridge() -> (Graph, Partition) {
        // Triangle {0,1,2}, triangle {3,4,5}, bridge 2-3.
        let g = Graph::from_edges(6, &[(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3), (2, 3)])
            .unwrap();
        let p = Partition::from_sizes(&[3, 3]);
        (g, p)
    }

    #[test]
    fn from_sizes_layout() {
        let p = Partition::from_sizes(&[2, 3]);
        assert_eq!(p.labels(), &[0, 0, 1, 1, 1]);
        assert_eq!(p.k(), 2);
        assert_eq!(p.cluster_sizes(), vec![2, 3]);
        assert_eq!(p.cluster_members(1), vec![2, 3, 4]);
    }

    #[test]
    fn new_rejects_empty_intermediate_cluster() {
        assert!(Partition::new(vec![0, 2]).is_err());
        assert!(Partition::new(vec![0, 1, 2]).is_ok());
    }

    #[test]
    fn with_k_allows_unused_labels() {
        let p = Partition::with_k(vec![0, 0, 2], 3).unwrap();
        assert_eq!(p.k(), 3);
        assert_eq!(p.cluster_sizes(), vec![2, 0, 1]);
        assert!(Partition::with_k(vec![0, 3], 3).is_err());
    }

    #[test]
    fn beta_is_min_fraction() {
        let p = Partition::from_sizes(&[1, 3]);
        assert!((p.beta() - 0.25).abs() < 1e-12);
        let empty = Partition::new(vec![]).unwrap();
        assert_eq!(empty.beta(), 0.0);
    }

    #[test]
    fn conductances_on_bridge_graph() {
        let (g, p) = two_triangles_bridge();
        let phis = p.cluster_conductances(&g);
        // Each triangle: cut 1, volume 7.
        assert!((phis[0] - 1.0 / 7.0).abs() < 1e-12);
        assert!((phis[1] - 1.0 / 7.0).abs() < 1e-12);
        assert!((p.max_conductance(&g) - 1.0 / 7.0).abs() < 1e-12);
    }

    #[test]
    fn edge_counting() {
        let (g, p) = two_triangles_bridge();
        assert_eq!(p.internal_edges(&g, 0), 3);
        assert_eq!(p.internal_edges(&g, 1), 3);
        assert_eq!(p.cut_edges(&g), 1);
    }

    #[test]
    fn reconstruction_from_parts_is_identity() {
        let p = Partition::from_sizes(&[2, 2]);
        let q = Partition::with_k(p.labels().to_vec(), p.k()).unwrap();
        assert_eq!(p, q);
    }

    #[test]
    fn exact_rho_finds_planted_cut() {
        // Two triangles + bridge: the optimal 2-way split is the obvious
        // one with ϕ = 1/7 on both sides.
        let (g, planted) = two_triangles_bridge();
        let (rho, best) = exact_rho_k(&g, 2);
        assert!((rho - 1.0 / 7.0).abs() < 1e-12, "rho = {rho}");
        // Optimal partition separates the triangles (up to label swap).
        assert_eq!(best.cut_edges(&g), 1);
        assert_eq!(planted.max_conductance(&g), rho);
    }

    #[test]
    fn exact_rho_k1_is_zero_cut() {
        let (g, _) = two_triangles_bridge();
        let (rho, p) = exact_rho_k(&g, 1);
        assert_eq!(rho, 0.0);
        assert_eq!(p.k(), 1);
    }

    #[test]
    fn planted_partition_upper_bounds_exact_rho() {
        // The experiment suite approximates ρ(k) by the planted
        // partition's conductance; on a small noisy instance the exact
        // optimum must be ≤ that proxy.
        use crate::generators;
        let (g, planted) = generators::planted_partition(2, 6, 0.9, 0.15, 4).unwrap();
        let (rho, _) = exact_rho_k(&g, 2);
        assert!(rho <= planted.max_conductance(&g) + 1e-12);
    }

    #[test]
    fn exact_rho_complete_graph_two_way() {
        // K4 split 2|2: cut 4, vol 6 → 2/3; split 1|3: cut 3, vol 3 → 1.
        let g = crate::generators::complete(4).unwrap();
        let (rho, best) = exact_rho_k(&g, 2);
        assert!((rho - 2.0 / 3.0).abs() < 1e-12, "rho = {rho}");
        assert_eq!(best.cluster_sizes(), vec![2, 2]);
    }

    #[test]
    #[should_panic]
    fn exact_rho_guards_large_n() {
        let g = crate::generators::cycle(17).unwrap();
        let _ = exact_rho_k(&g, 2);
    }
}
