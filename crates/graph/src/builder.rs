//! Incremental graph construction with deduplication.

use std::collections::BTreeSet;

use crate::csr::Graph;
use crate::error::GraphError;
use crate::NodeId;

/// Deduplicating builder for undirected simple graphs.
///
/// Generators accumulate edges here (unordered, possibly repeated) and
/// [`GraphBuilder::build`] produces the canonical CSR [`Graph`].
#[derive(Debug, Clone, Default)]
pub struct GraphBuilder {
    n: usize,
    edges: BTreeSet<(NodeId, NodeId)>,
}

impl GraphBuilder {
    /// New builder for a graph on `n` nodes.
    pub fn new(n: usize) -> Self {
        GraphBuilder {
            n,
            edges: BTreeSet::new(),
        }
    }

    /// Number of nodes.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of distinct edges inserted so far.
    pub fn m(&self) -> usize {
        self.edges.len()
    }

    /// Insert edge `{u, v}`; returns `true` if it was new.
    ///
    /// Self-loops and out-of-range endpoints are errors.
    pub fn add_edge(&mut self, u: NodeId, v: NodeId) -> Result<bool, GraphError> {
        if u as usize >= self.n {
            return Err(GraphError::NodeOutOfRange { node: u, n: self.n });
        }
        if v as usize >= self.n {
            return Err(GraphError::NodeOutOfRange { node: v, n: self.n });
        }
        if u == v {
            return Err(GraphError::SelfLoop { node: u });
        }
        let key = if u < v { (u, v) } else { (v, u) };
        Ok(self.edges.insert(key))
    }

    /// Whether `{u, v}` is already present.
    pub fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        let key = if u < v { (u, v) } else { (v, u) };
        self.edges.contains(&key)
    }

    /// Remove edge `{u, v}`; returns `true` if it was present.
    pub fn remove_edge(&mut self, u: NodeId, v: NodeId) -> bool {
        let key = if u < v { (u, v) } else { (v, u) };
        self.edges.remove(&key)
    }

    /// Current degree of `v` (O(m) scan; intended for generator-internal
    /// bookkeeping on small builders, not hot paths).
    pub fn degree(&self, v: NodeId) -> usize {
        self.edges
            .iter()
            .filter(|&&(a, b)| a == v || b == v)
            .count()
    }

    /// Finalise into a CSR [`Graph`].
    pub fn build(self) -> Graph {
        let edges: Vec<_> = self.edges.into_iter().collect();
        // Endpoints were validated on insertion.
        Graph::from_edges(self.n, &edges).expect("builder invariants guarantee valid edges")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dedup_and_orientation() {
        let mut b = GraphBuilder::new(3);
        assert!(b.add_edge(0, 1).unwrap());
        assert!(!b.add_edge(1, 0).unwrap());
        assert!(b.add_edge(1, 2).unwrap());
        assert_eq!(b.m(), 2);
        let g = b.build();
        assert_eq!(g.m(), 2);
        assert!(g.has_edge(0, 1));
    }

    #[test]
    fn rejects_bad_edges() {
        let mut b = GraphBuilder::new(2);
        assert!(b.add_edge(0, 0).is_err());
        assert!(b.add_edge(0, 2).is_err());
    }

    #[test]
    fn remove_edge_roundtrip() {
        let mut b = GraphBuilder::new(3);
        b.add_edge(0, 1).unwrap();
        assert!(b.has_edge(1, 0));
        assert!(b.remove_edge(1, 0));
        assert!(!b.has_edge(0, 1));
        assert!(!b.remove_edge(0, 1));
    }

    #[test]
    fn degree_counts_both_endpoints() {
        let mut b = GraphBuilder::new(4);
        b.add_edge(0, 1).unwrap();
        b.add_edge(0, 2).unwrap();
        b.add_edge(0, 3).unwrap();
        assert_eq!(b.degree(0), 3);
        assert_eq!(b.degree(1), 1);
    }
}
