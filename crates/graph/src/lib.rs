//! Graph substrate for the load-balancing clustering reproduction.
//!
//! This crate provides everything the algorithm layer needs from a graph:
//!
//! * [`Graph`] — an immutable, undirected graph in CSR (compressed sparse
//!   row) form with `O(1)` degree queries and cache-friendly neighbour
//!   iteration.
//! * [`GraphBuilder`] — incremental, deduplicating construction.
//! * [`GraphDelta`] — batched edge insertions/deletions + node
//!   additions, applied by [`Graph::apply_delta`] as a CSR patch that
//!   rebuilds only the touched adjacency regions (the dynamic-graph
//!   seam the incremental re-clustering subsystem rides on).
//! * [`Partition`] — ground-truth and output `k`-way partitions, plus the
//!   conductance machinery of the paper (`ϕ_G(S)`, `ρ(k)`; §1.1 of
//!   Sun & Zanetti, SPAA'17).
//! * [`generators`] — the synthetic well-clustered families used by every
//!   experiment: planted partitions, rings of cliques, regular cluster
//!   graphs built from perfect matchings, dumbbells, and controls.
//! * [`io`] — plain-text edge-list serialisation so experiments can be
//!   re-run on external graphs.
//!
//! All randomised generators take explicit seeds and are fully
//! deterministic for a given seed.

pub mod builder;
pub mod csr;
pub mod delta;
pub mod error;
pub mod generators;
pub mod io;
pub mod partition;
pub mod stats;

pub use builder::GraphBuilder;
pub use csr::Graph;
pub use delta::GraphDelta;
pub use error::GraphError;
pub use partition::{exact_rho_k, Partition};

/// Node identifier. Graphs in this workspace are indexed `0..n`.
pub type NodeId = u32;
