//! Descriptive graph statistics for experiment reporting.
//!
//! Experiments report the structural context of each instance (degree
//! spread for §4.5, triangle density as an expander sanity check); this
//! module computes those summaries.

use crate::csr::Graph;
use crate::NodeId;

/// Summary statistics of a graph.
#[derive(Debug, Clone, PartialEq)]
pub struct GraphStats {
    pub n: usize,
    pub m: usize,
    pub min_degree: usize,
    pub max_degree: usize,
    pub mean_degree: f64,
    /// Number of triangles (each counted once).
    pub triangles: usize,
    /// Global clustering coefficient: `3·triangles / #wedges`
    /// (0 when there are no wedges).
    pub global_clustering: f64,
    pub connected: bool,
}

impl GraphStats {
    /// Compute all statistics (triangle counting is `O(Σ d_v²)` via
    /// neighbour-list merging — fine for experiment-sized graphs).
    pub fn compute(g: &Graph) -> Self {
        let n = g.n();
        let m = g.m();
        let triangles = count_triangles(g);
        let wedges: usize = (0..n as NodeId)
            .map(|v| {
                let d = g.degree(v);
                d * d.saturating_sub(1) / 2
            })
            .sum();
        GraphStats {
            n,
            m,
            min_degree: g.min_degree(),
            max_degree: g.max_degree(),
            mean_degree: if n == 0 {
                0.0
            } else {
                2.0 * m as f64 / n as f64
            },
            triangles,
            global_clustering: if wedges == 0 {
                0.0
            } else {
                3.0 * triangles as f64 / wedges as f64
            },
            connected: g.is_connected(),
        }
    }

    /// Degree histogram: `hist[d]` = number of nodes with degree `d`.
    pub fn degree_histogram(g: &Graph) -> Vec<usize> {
        let max = g.max_degree();
        let mut hist = vec![0usize; max + 1];
        for v in 0..g.n() as NodeId {
            hist[g.degree(v)] += 1;
        }
        hist
    }
}

/// Count triangles by intersecting sorted neighbour lists along each
/// edge `(u, v)` with `u < v`, counting common neighbours `w > v`.
fn count_triangles(g: &Graph) -> usize {
    let mut count = 0usize;
    for (u, v) in g.edges() {
        let (mut i, mut j) = (0usize, 0usize);
        let nu = g.neighbours(u);
        let nv = g.neighbours(v);
        while i < nu.len() && j < nv.len() {
            let (a, b) = (nu[i], nv[j]);
            if a == b {
                if a > v {
                    count += 1;
                }
                i += 1;
                j += 1;
            } else if a < b {
                i += 1;
            } else {
                j += 1;
            }
        }
    }
    count
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn triangle_count_on_known_graphs() {
        let k4 = generators::complete(4).unwrap();
        let s = GraphStats::compute(&k4);
        assert_eq!(s.triangles, 4);
        assert!((s.global_clustering - 1.0).abs() < 1e-12);

        let c5 = generators::cycle(5).unwrap();
        let s = GraphStats::compute(&c5);
        assert_eq!(s.triangles, 0);
        assert_eq!(s.global_clustering, 0.0);
    }

    #[test]
    fn clique_ring_stats() {
        let (g, _) = generators::ring_of_cliques(3, 5, 0).unwrap();
        let s = GraphStats::compute(&g);
        assert_eq!(s.n, 15);
        assert!(s.connected);
        // Each K5 has C(5,3) = 10 triangles; bridges add none.
        assert_eq!(s.triangles, 30);
        assert!(s.global_clustering > 0.7);
    }

    #[test]
    fn degree_histogram_sums_to_n() {
        let (g, _) = generators::planted_partition(2, 30, 0.3, 0.05, 3).unwrap();
        let hist = GraphStats::degree_histogram(&g);
        assert_eq!(hist.iter().sum::<usize>(), g.n());
        assert_eq!(hist.len(), g.max_degree() + 1);
    }

    #[test]
    fn empty_graph_stats() {
        let g = Graph::from_edges(0, &[]).unwrap();
        let s = GraphStats::compute(&g);
        assert_eq!(s.n, 0);
        assert_eq!(s.mean_degree, 0.0);
        assert!(s.connected);
    }

    use crate::Graph;

    #[test]
    fn mean_degree() {
        let g = generators::cycle(6).unwrap();
        let s = GraphStats::compute(&g);
        assert!((s.mean_degree - 2.0).abs() < 1e-12);
    }
}
