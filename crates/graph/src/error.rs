//! Error type for graph construction and I/O.

use std::fmt;

/// Errors produced while building, generating, or (de)serialising graphs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphError {
    /// An edge endpoint was `>= n`.
    NodeOutOfRange { node: u32, n: usize },
    /// A self-loop `{v, v}` was inserted where none are allowed.
    SelfLoop { node: u32 },
    /// A delta removed edge `{u, v}`, but the graph does not have it.
    MissingEdge { u: u32, v: u32 },
    /// Generator parameters are inconsistent (message explains why).
    InvalidParameter(String),
    /// Parse or I/O failure while reading a graph file.
    Io(String),
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::NodeOutOfRange { node, n } => {
                write!(f, "node {node} out of range for graph with {n} nodes")
            }
            GraphError::SelfLoop { node } => write!(f, "self-loop at node {node} not allowed"),
            GraphError::MissingEdge { u, v } => {
                write!(f, "cannot remove edge {{{u}, {v}}}: not in the graph")
            }
            GraphError::InvalidParameter(msg) => write!(f, "invalid parameter: {msg}"),
            GraphError::Io(msg) => write!(f, "graph i/o error: {msg}"),
        }
    }
}

impl std::error::Error for GraphError {}

impl From<std::io::Error> for GraphError {
    fn from(e: std::io::Error) -> Self {
        GraphError::Io(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_mention_offender() {
        let e = GraphError::NodeOutOfRange { node: 7, n: 5 };
        assert!(e.to_string().contains('7'));
        assert!(e.to_string().contains('5'));
        let e = GraphError::SelfLoop { node: 3 };
        assert!(e.to_string().contains('3'));
        let e = GraphError::InvalidParameter("k must divide n".into());
        assert!(e.to_string().contains("k must divide n"));
    }

    #[test]
    fn io_error_converts() {
        let ioe = std::io::Error::new(std::io::ErrorKind::NotFound, "gone");
        let e: GraphError = ioe.into();
        assert!(matches!(e, GraphError::Io(_)));
    }
}
