//! Property-based tests for graph construction, generators, and I/O.

use lbc_graph::{generators, io, Graph};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// CSR invariants hold for any deduplicated edge list.
    #[test]
    fn csr_invariants(
        n in 2usize..30,
        pairs in proptest::collection::vec((0u32..30, 0u32..30), 0..120),
    ) {
        let edges: Vec<(u32, u32)> = pairs
            .into_iter()
            .map(|(a, b)| (a % n as u32, b % n as u32))
            .filter(|(a, b)| a != b)
            .collect();
        let g = Graph::from_edges(n, &edges).unwrap();
        // Symmetry + sortedness + no self loops.
        let mut volume = 0usize;
        for v in 0..n as u32 {
            let neigh = g.neighbours(v);
            volume += neigh.len();
            for w in neigh.windows(2) {
                prop_assert!(w[0] < w[1], "unsorted or duplicate neighbour");
            }
            for &w in neigh {
                prop_assert!(w != v);
                prop_assert!(g.neighbours(w).contains(&v));
            }
        }
        prop_assert_eq!(volume, 2 * g.m());
        prop_assert_eq!(volume, g.total_volume());
    }

    /// Conductance is within [0, 1] for proper cuts and complementary
    /// sets give the same (min-normalised) value.
    #[test]
    fn conductance_bounds_and_symmetry(
        seed in 0u64..500,
        mask_bits in 1u32..((1u32 << 12) - 1),
    ) {
        let (g, _) = generators::planted_partition(2, 6, 0.6, 0.2, seed).unwrap();
        let set: Vec<bool> = (0..12).map(|i| mask_bits & (1 << i) != 0).collect();
        let comp: Vec<bool> = set.iter().map(|b| !b).collect();
        let phi = g.conductance(&set);
        if phi.is_finite() {
            prop_assert!((0.0..=1.0).contains(&phi), "phi = {phi}");
            prop_assert!((phi - g.conductance(&comp)).abs() < 1e-12);
        }
    }

    /// Edge-list round-trips are lossless for arbitrary graphs.
    #[test]
    fn io_roundtrip(seed in 0u64..300) {
        let (g, p) = generators::planted_partition_sizes(&[7, 9, 5], 0.5, 0.1, seed).unwrap();
        let mut gbuf = Vec::new();
        io::write_edge_list(&g, &mut gbuf).unwrap();
        prop_assert_eq!(&io::read_edge_list(&gbuf[..]).unwrap(), &g);
        let mut pbuf = Vec::new();
        io::write_partition(&p, &mut pbuf).unwrap();
        prop_assert_eq!(&io::read_partition(&pbuf[..]).unwrap(), &p);
    }

    /// ring_of_cliques has exactly the prescribed cut for any (k, size).
    #[test]
    fn ring_of_cliques_cut_is_exact(k in 2usize..7, size in 3usize..9) {
        let (g, p) = generators::ring_of_cliques(k, size, 0).unwrap();
        let expected_cut = if k == 2 { 1 } else { k };
        prop_assert_eq!(p.cut_edges(&g), expected_cut);
        prop_assert_eq!(
            g.m(),
            k * size * (size - 1) / 2 + expected_cut
        );
        prop_assert!(g.is_connected());
    }

    /// regular_cluster_graph respects its degree envelope.
    #[test]
    fn regular_cluster_degree_envelope(
        k in 1usize..5,
        half_size in 4usize..12,
        d_in in 2usize..6,
        seed in 0u64..100,
    ) {
        let size = 2 * half_size;
        prop_assume!(d_in < size);
        let bridges = 2usize.min(size);
        let (g, p) = generators::regular_cluster_graph(k, size, d_in, bridges, seed).unwrap();
        prop_assert_eq!(g.n(), k * size);
        prop_assert_eq!(p.k(), k);
        // Max degree ≤ d_in + one endpoint per incident bridge bundle
        // (≤ 2 bundles around the ring, each contributing ≤ bridges).
        prop_assert!(g.max_degree() <= d_in + 2 * bridges);
    }

    /// Degree perturbation never touches the planted cut.
    #[test]
    fn perturbation_preserves_cut(seed in 0u64..200, add_p in 0.0f64..0.4) {
        let (g, p) = generators::planted_partition(2, 10, 0.5, 0.1, seed).unwrap();
        let g2 = generators::perturb_degrees(&g, &p, add_p, 0.1, seed + 1).unwrap();
        prop_assert_eq!(p.cut_edges(&g2), p.cut_edges(&g));
    }
}
