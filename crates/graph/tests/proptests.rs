//! Property-based tests for graph construction, generators, and I/O.

use lbc_graph::{generators, io, Graph};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// CSR invariants hold for any deduplicated edge list.
    #[test]
    fn csr_invariants(
        n in 2usize..30,
        pairs in proptest::collection::vec((0u32..30, 0u32..30), 0..120),
    ) {
        let edges: Vec<(u32, u32)> = pairs
            .into_iter()
            .map(|(a, b)| (a % n as u32, b % n as u32))
            .filter(|(a, b)| a != b)
            .collect();
        let g = Graph::from_edges(n, &edges).unwrap();
        // Symmetry + sortedness + no self loops.
        let mut volume = 0usize;
        for v in 0..n as u32 {
            let neigh = g.neighbours(v);
            volume += neigh.len();
            for w in neigh.windows(2) {
                prop_assert!(w[0] < w[1], "unsorted or duplicate neighbour");
            }
            for &w in neigh {
                prop_assert!(w != v);
                prop_assert!(g.neighbours(w).contains(&v));
            }
        }
        prop_assert_eq!(volume, 2 * g.m());
        prop_assert_eq!(volume, g.total_volume());
    }

    /// Conductance is within [0, 1] for proper cuts and complementary
    /// sets give the same (min-normalised) value.
    #[test]
    fn conductance_bounds_and_symmetry(
        seed in 0u64..500,
        mask_bits in 1u32..((1u32 << 12) - 1),
    ) {
        let (g, _) = generators::planted_partition(2, 6, 0.6, 0.2, seed).unwrap();
        let set: Vec<bool> = (0..12).map(|i| mask_bits & (1 << i) != 0).collect();
        let comp: Vec<bool> = set.iter().map(|b| !b).collect();
        let phi = g.conductance(&set);
        if phi.is_finite() {
            prop_assert!((0.0..=1.0).contains(&phi), "phi = {phi}");
            prop_assert!((phi - g.conductance(&comp)).abs() < 1e-12);
        }
    }

    /// Edge-list round-trips are lossless for arbitrary graphs.
    #[test]
    fn io_roundtrip(seed in 0u64..300) {
        let (g, p) = generators::planted_partition_sizes(&[7, 9, 5], 0.5, 0.1, seed).unwrap();
        let mut gbuf = Vec::new();
        io::write_edge_list(&g, &mut gbuf).unwrap();
        prop_assert_eq!(&io::read_edge_list(&gbuf[..]).unwrap(), &g);
        let mut pbuf = Vec::new();
        io::write_partition(&p, &mut pbuf).unwrap();
        prop_assert_eq!(&io::read_partition(&pbuf[..]).unwrap(), &p);
    }

    /// ring_of_cliques has exactly the prescribed cut for any (k, size).
    #[test]
    fn ring_of_cliques_cut_is_exact(k in 2usize..7, size in 3usize..9) {
        let (g, p) = generators::ring_of_cliques(k, size, 0).unwrap();
        let expected_cut = if k == 2 { 1 } else { k };
        prop_assert_eq!(p.cut_edges(&g), expected_cut);
        prop_assert_eq!(
            g.m(),
            k * size * (size - 1) / 2 + expected_cut
        );
        prop_assert!(g.is_connected());
    }

    /// regular_cluster_graph respects its degree envelope.
    #[test]
    fn regular_cluster_degree_envelope(
        k in 1usize..5,
        half_size in 4usize..12,
        d_in in 2usize..6,
        seed in 0u64..100,
    ) {
        let size = 2 * half_size;
        prop_assume!(d_in < size);
        let bridges = 2usize.min(size);
        let (g, p) = generators::regular_cluster_graph(k, size, d_in, bridges, seed).unwrap();
        prop_assert_eq!(g.n(), k * size);
        prop_assert_eq!(p.k(), k);
        // Max degree ≤ d_in + one endpoint per incident bridge bundle
        // (≤ 2 bundles around the ring, each contributing ≤ bridges).
        prop_assert!(g.max_degree() <= d_in + 2 * bridges);
    }

    /// Degree perturbation never touches the planted cut.
    #[test]
    fn perturbation_preserves_cut(seed in 0u64..200, add_p in 0.0f64..0.4) {
        let (g, p) = generators::planted_partition(2, 10, 0.5, 0.1, seed).unwrap();
        let g2 = generators::perturb_degrees(&g, &p, add_p, 0.1, seed + 1).unwrap();
        prop_assert_eq!(p.cut_edges(&g2), p.cut_edges(&g));
    }

    /// The dense and sparse (skip-sampling) planted-partition generators
    /// realise the same edge law: identical node count and ground truth,
    /// no self-loops or duplicate edges, and intra/inter edge counts
    /// within a 5σ binomial envelope of the common expectation.
    #[test]
    fn sparse_and_dense_planted_partition_agree(
        k in 2usize..5,
        block in 8usize..24,
        p_in in 0.2f64..0.7,
        p_out in 0.0f64..0.15,
        seed in 0u64..1000,
    ) {
        let (gd, pd) = generators::planted_partition(k, block, p_in, p_out, seed).unwrap();
        let (gs, ps) = generators::planted_partition_sparse(k, block, p_in, p_out, seed).unwrap();
        prop_assert_eq!(gd.n(), k * block);
        prop_assert_eq!(gs.n(), k * block);
        prop_assert_eq!(&pd, &ps, "ground truths differ");

        // CSR invariants: sorted, duplicate-free, loop-free adjacency.
        for g in [&gd, &gs] {
            for v in 0..g.n() as u32 {
                let neigh = g.neighbours(v);
                prop_assert!(neigh.windows(2).all(|w| w[0] < w[1]), "dup/unsorted at {v}");
                prop_assert!(!neigh.contains(&v), "self-loop at {v}");
            }
        }

        // Edge-probability statistics: both generators' intra- and
        // inter-block edge counts sit in the same binomial envelope.
        let intra_slots = (k * block * (block - 1) / 2) as f64;
        let inter_slots = (k * (k - 1) / 2 * block * block) as f64;
        let count = |g: &Graph, intra: bool| {
            g.edges()
                .filter(|&(u, v)| {
                    (pd.label(u) == pd.label(v)) == intra
                })
                .count() as f64
        };
        for (what, slots, p) in [("intra", intra_slots, p_in), ("inter", inter_slots, p_out)] {
            let sigma = (slots * p * (1.0 - p)).sqrt();
            let want = slots * p;
            for (name, g) in [("dense", &gd), ("sparse", &gs)] {
                let got = count(g, what == "intra");
                prop_assert!(
                    (got - want).abs() <= 5.0 * sigma + 3.0,
                    "{name} {what}: {got} edges vs expected {want:.1} (sigma {sigma:.1})"
                );
            }
        }
    }

    /// `GraphBuilder::remove_edge` + `add_edge` of the same pair is an
    /// identity on the built CSR graph — byte-identical adjacency
    /// ordering — and the `GraphDelta` patch path agrees (this guards
    /// the touched-region CSR rebuild).
    #[test]
    fn remove_add_roundtrip_preserves_adjacency_order(
        n in 4usize..24,
        pairs in proptest::collection::vec((0u32..24, 0u32..24), 1..80),
        pick in 0usize..80,
    ) {
        let mut b = lbc_graph::GraphBuilder::new(n);
        for (a0, b0) in pairs {
            let (u, v) = (a0 % n as u32, b0 % n as u32);
            if u != v {
                b.add_edge(u, v).unwrap();
            }
        }
        prop_assume!(b.m() > 0);
        let baseline = b.clone().build();
        // Pick one existing edge, remove it, re-add it flipped.
        let edges: Vec<(u32, u32)> = baseline.edges().collect();
        let (u, v) = edges[pick % edges.len()];
        prop_assert!(b.remove_edge(u, v));
        prop_assert!(!b.has_edge(u, v));
        prop_assert!(b.add_edge(v, u).unwrap());
        let rebuilt = b.build();
        prop_assert_eq!(&rebuilt, &baseline, "builder round-trip changed the CSR");

        // Same round-trip through the CSR patch.
        let mut d = lbc_graph::GraphDelta::new();
        d.remove_edge(u, v).add_edge(v, u);
        prop_assert_eq!(&baseline.apply_delta(&d).unwrap(), &baseline);
    }

    /// `Graph::apply_delta` equals a cold `from_edges` rebuild of the
    /// mutated edge set, for arbitrary graphs and arbitrary deltas.
    #[test]
    fn apply_delta_matches_cold_rebuild(
        n in 2usize..20,
        pairs in proptest::collection::vec((0u32..20, 0u32..20), 0..60),
        removals in proptest::collection::vec(0usize..60, 0..8),
        additions in proptest::collection::vec((0u32..26, 0u32..26), 0..8),
        extra_nodes in 0usize..3,
    ) {
        let edges: Vec<(u32, u32)> = pairs
            .into_iter()
            .map(|(a, b)| (a % n as u32, b % n as u32))
            .filter(|(a, b)| a != b)
            .collect();
        let g = Graph::from_edges(n, &edges).unwrap();
        let new_n = n + extra_nodes;
        let mut d = lbc_graph::GraphDelta::new();
        d.add_nodes(extra_nodes);
        let mut expect: std::collections::BTreeSet<(u32, u32)> =
            g.edges().collect();
        let current: Vec<(u32, u32)> = g.edges().collect();
        for r in removals {
            if current.is_empty() { break; }
            let (u, v) = current[r % current.len()];
            if expect.remove(&(u, v)) {
                d.remove_edge(u, v);
            }
        }
        for (a, b) in additions {
            let (u, v) = (a % new_n as u32, b % new_n as u32);
            if u != v {
                let key = (u.min(v), u.max(v));
                d.add_edge(key.0, key.1);
                expect.insert(key);
            }
        }
        let patched = g.apply_delta(&d).unwrap();
        let expect_edges: Vec<(u32, u32)> = expect.into_iter().collect();
        let rebuilt = Graph::from_edges(new_n, &expect_edges).unwrap();
        prop_assert_eq!(&patched, &rebuilt);
    }
}
