//! Coverage for `lbc_graph::io`: round-trips, comment and blank-line
//! handling, and the malformed-header / malformed-line error paths of
//! both the edge-list and partition formats.

use lbc_graph::io::{read_edge_list, read_partition, write_edge_list, write_partition};
use lbc_graph::{generators, Graph, GraphError, Partition};

fn roundtrip_graph(g: &Graph) -> Graph {
    let mut buf = Vec::new();
    write_edge_list(g, &mut buf).unwrap();
    read_edge_list(&buf[..]).unwrap()
}

#[test]
fn edge_list_roundtrip_across_families() {
    let cases: Vec<Graph> = vec![
        generators::ring_of_cliques(3, 8, 0).unwrap().0,
        generators::planted_partition(2, 20, 0.4, 0.05, 7)
            .unwrap()
            .0,
        generators::cycle(17).unwrap(),
        generators::complete(6).unwrap(),
    ];
    for g in cases {
        assert_eq!(roundtrip_graph(&g), g);
    }
}

#[test]
fn edgeless_and_singleton_graphs_roundtrip() {
    // n > 0, m = 0: header only.
    let lonely = Graph::from_edges(3, &[]).unwrap();
    assert_eq!(roundtrip_graph(&lonely), lonely);
    let single = Graph::from_edges(1, &[]).unwrap();
    assert_eq!(roundtrip_graph(&single), single);
}

#[test]
fn partition_roundtrip_through_text() {
    let p = Partition::from_sizes(&[5, 2, 9]);
    let mut buf = Vec::new();
    write_partition(&p, &mut buf).unwrap();
    let text = String::from_utf8(buf).unwrap();
    assert!(text.starts_with("16 3\n"), "{text}");
    assert_eq!(read_partition(text.as_bytes()).unwrap(), p);
}

#[test]
fn comments_and_blank_lines_everywhere() {
    let graph_text = "\n# leading comment\n\n  \n3 2\n# after header\n0 1\n\n1 2\n# trailing\n";
    let g = read_edge_list(graph_text.as_bytes()).unwrap();
    assert_eq!((g.n(), g.m()), (3, 2));

    let part_text = "# truth labels\n\n4 2\n0\n# middle\n0\n1\n\n1\n";
    let p = read_partition(part_text.as_bytes()).unwrap();
    assert_eq!(p.labels(), &[0, 0, 1, 1]);
    assert_eq!(p.k(), 2);
}

#[test]
fn whitespace_variants_are_tolerated() {
    // Indented lines and tab separators both parse.
    let g = read_edge_list("  3 2  \n0\t1\n\t1 2\n".as_bytes()).unwrap();
    assert_eq!((g.n(), g.m()), (3, 2));
}

fn expect_io_err(r: Result<impl std::fmt::Debug, GraphError>, what: &str) {
    match r {
        Err(GraphError::Io(msg)) => {
            assert!(!msg.is_empty(), "{what}: empty error message")
        }
        other => panic!("{what}: expected Io error, got {other:?}"),
    }
}

#[test]
fn malformed_edge_list_headers() {
    // Entirely missing (empty / comment-only input).
    expect_io_err(read_edge_list("".as_bytes()), "empty input");
    expect_io_err(
        read_edge_list("# only a comment\n\n".as_bytes()),
        "comments only",
    );
    // Missing m.
    expect_io_err(read_edge_list("5\n".as_bytes()), "header missing m");
    // Non-numeric fields.
    expect_io_err(read_edge_list("x 2\n0 1\n".as_bytes()), "bad n");
    expect_io_err(read_edge_list("3 y\n0 1\n".as_bytes()), "bad m");
    // Negative counts don't parse as usize.
    expect_io_err(read_edge_list("-3 1\n0 1\n".as_bytes()), "negative n");
    // Declared edge count disagreeing with the body, both directions.
    expect_io_err(read_edge_list("3 5\n0 1\n".as_bytes()), "too few edges");
    expect_io_err(
        read_edge_list("3 1\n0 1\n1 2\n".as_bytes()),
        "too many edges",
    );
}

#[test]
fn malformed_edge_lines() {
    expect_io_err(read_edge_list("2 1\n0\n".as_bytes()), "lone endpoint");
    expect_io_err(read_edge_list("2 1\n0 banana\n".as_bytes()), "bad endpoint");
    // Endpoint out of the declared node range is a construction error.
    assert!(read_edge_list("2 1\n0 7\n".as_bytes()).is_err());
}

#[test]
fn malformed_partition_headers_and_labels() {
    expect_io_err(read_partition("".as_bytes()), "empty input");
    expect_io_err(read_partition("# nothing\n".as_bytes()), "comments only");
    expect_io_err(read_partition("4\n0\n0\n1\n1\n".as_bytes()), "missing k");
    expect_io_err(read_partition("x 2\n".as_bytes()), "bad n");
    expect_io_err(read_partition("2 z\n".as_bytes()), "bad k");
    // Label count disagreeing with the header.
    expect_io_err(read_partition("3 2\n0\n1\n".as_bytes()), "too few labels");
    expect_io_err(read_partition("1 1\n0\n0\n".as_bytes()), "too many labels");
    // Non-numeric label.
    expect_io_err(read_partition("2 1\n0\nbanana\n".as_bytes()), "bad label");
    // Label ≥ k violates the partition invariant (not an Io error).
    assert!(read_partition("2 2\n0\n5\n".as_bytes()).is_err());
}

#[test]
fn file_roundtrip_matches_in_memory() {
    // The CLI path: write to an actual file, read it back.
    let dir = std::env::temp_dir().join("lbc-graph-io-tests");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("roundtrip.txt");
    let (g, truth) = generators::ring_of_cliques(2, 6, 0).unwrap();
    write_edge_list(&g, std::fs::File::create(&path).unwrap()).unwrap();
    let g2 = read_edge_list(std::fs::File::open(&path).unwrap()).unwrap();
    assert_eq!(g, g2);
    let ppath = dir.join("labels.txt");
    write_partition(&truth, std::fs::File::create(&ppath).unwrap()).unwrap();
    let t2 = read_partition(std::fs::File::open(&ppath).unwrap()).unwrap();
    assert_eq!(truth, t2);
}
