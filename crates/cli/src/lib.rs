//! Library backing the `lbc` command-line tool.
//!
//! Subcommands:
//!
//! * `lbc gen --family <planted|ring|regular|dumbbell|ba|ws|lfr> …` —
//!   generate a benchmark graph (and ground-truth labels where the
//!   family has them).
//! * `lbc cluster --graph g.txt --beta 0.25 [--rounds N] [--distributed]`
//!   — run the load-balancing algorithm; optionally on the simulated
//!   network with message accounting.
//! * `lbc eval --truth t.txt --found f.txt [--graph g.txt]` — score a
//!   labelling (misclassified/accuracy/ARI/NMI, plus conductance when
//!   the graph is given).
//! * `lbc spectrum --graph g.txt --top 5` — top eigenvalues, gaps, and
//!   the paper's suggested round counts.
//! * `lbc stats --graph g.txt` — structural summary; `lbc stats
//!   --connect ADDR` — live node metrics over the STATS wire opcode
//!   (counters, gauges, latency histograms, event ring; optionally
//!   Prometheus text exposition).
//! * `lbc update --graph g.txt (--delta d.txt | --flips K)` — apply a
//!   dynamic-graph delta through the serving registry and warm-start
//!   re-cluster from the resident states.
//! * `lbc serve --listen ADDR` / `lbc net-bench --connect ADDR` — put
//!   the query engine on a socket (one epoll reactor thread, framed
//!   checksummed protocol) and drive it with an open-loop,
//!   coordinated-omission-safe network load generator.
//! * `lbc serve --repl-listen B` / `lbc serve --follow B` /
//!   `lbc repl-status --connect B` — primary/follower replication:
//!   snapshot handshake, live WAL streaming, deterministic promotion
//!   when the primary dies.
//! * `lbc save g.txt dir/` / `lbc load dir/` — persist a clustered
//!   dataset as a checksummed binary snapshot (+ delta write-ahead log)
//!   and warm-boot it back, bit-for-bit.
//!
//! Everything returns its report as a `String` (so tests drive the CLI
//! end-to-end without spawning processes); `main` just prints it.

pub mod args;
pub mod commands;

pub use commands::run;

/// Usage text shown on errors and `lbc help`.
pub const USAGE: &str = "\
lbc — distributed graph clustering by load balancing (Sun & Zanetti, SPAA'17)

USAGE:
  lbc gen --family planted --k 4 --block 250 --p-in 0.1 --p-out 0.002 \\
          --out graph.txt [--labels-out truth.txt] [--seed 42]
  lbc gen --family ring --k 4 --size 32 --out graph.txt [--labels-out t.txt]
  lbc gen --family regular --k 4 --size 250 --d-in 12 --bridges 3 --out g.txt
  lbc gen --family dumbbell --half 200 --d 8 --bridges 2 --out g.txt
  lbc gen --family ba --n 1000 --m 4 --out g.txt
  lbc gen --family ws --n 1000 --k-half 3 --p 0.05 --out g.txt
  lbc gen --family lfr --n 1000 --k 4 --tau 1.5 --min-size 80 \\
          --p-in 0.1 --p-out 0.002 --out g.txt [--labels-out t.txt]

  lbc cluster --graph g.txt --beta 0.25 [--rounds N] [--seed S]
              [--query paper|argmax|scaled:C] [--distributed]
              [--out labels.txt] [--truth truth.txt]

  lbc eval --truth truth.txt --found labels.txt [--graph g.txt]
  lbc spectrum --graph g.txt [--top 5] [--seed S]
  lbc stats --graph g.txt
  lbc stats --connect HOST:PORT [--watch SECS] [--events] [--metrics-text]
      With --graph: structural summary of an edge list. With --connect:
      fetch a serving node's metrics snapshot over the STATS opcode —
      counters (cache, WAL, replication), gauges (queue depth, follower
      lag), and latency histograms (count/p50/p95/p99/max, bucket error
      <= 3.125%). --events appends the structured event ring (role
      transitions, elections, evictions, backpressure). --watch SECS
      re-polls every SECS forever. --metrics-text emits Prometheus text
      exposition for scrapers.

  lbc serve-bench [--graph g.txt | --family ring|planted --k 4 --size 64]
                  [--beta B] [--rounds T] [--seed S] [--threads 4]
                  [--clients N] [--ops 200000] [--batch 64] [--cache 8]
                  [--zipf S] [--store DIR] [--rate R]
      Cluster on a worker pool, keep the output resident, then drive a
      closed-loop query load (same-cluster / cluster-of / cluster-size)
      and print throughput + p50/p95/p99 batch latency. --zipf S skews
      query node popularity (Zipf exponent S; 0 = uniform). --store DIR
      attaches crash-safe persistence: the dataset warm-boots from its
      snapshot when present and spills to it otherwise. --rate R drives
      the loop open (R batch arrivals/s, latency from intended send
      time; 0 = closed loop).

  lbc serve --listen 127.0.0.1:4100
            [--graph g.txt | --family ring|planted --k 4 --size 64]
            [--beta B] [--rounds T] [--seed S] [--threads 4] [--cache 8]
            [--outbox-cap BYTES] [--max-conns N] [--addr-file PATH]
            [--repl-listen ADDR [--repl-addr-file PATH]]
            [--follow ADDR [--follower-id N]]
            [--members id@addr,... [--ack-quorum]] [--store DIR]
      Cluster the dataset, then serve the framed wire protocol (batched
      same-cluster / cluster-of / cluster-size queries, delta
      submission, cache stats) from ONE epoll reactor thread with
      per-connection backpressure, until the process is killed.
      --addr-file writes the resolved listen address (for --listen
      127.0.0.1:0 scripting). --repl-listen makes the node a
      replication primary: followers sync a snapshot of the resident
      state over ADDR, then tail the delta WAL live. --follow makes it
      a follower of the primary's repl port: it adopts the primary's
      state bit-for-bit, serves reads from its own reactor (deltas
      bounce with a typed read-only error), and on primary death runs
      a failover election — live-polling the roster, deterministic
      order (max applied_seq, ties to the lowest --follower-id), plus
      confirmation votes from every live peer before promoting; losers
      re-follow the winner. --follower-id defaults to the pid; the
      primary rejects duplicate ids. A follower may also pass
      --repl-listen: it pre-binds and advertises that port, and starts
      replicating from it if it ever wins promotion. Elections are
      term-numbered: every grant is one-candidate-per-term, persisted
      to --store across kill -9, and every replication frame carries
      the term so a deposed primary fences on first contact with the
      successor generation. --ack-quorum (needs --members) holds each
      delta's response until a majority of the electorate acks the WAL
      record, so no acked write can be lost to a failover.

  lbc net-bench --connect HOST:PORT [--conns 64] [--rate 5000]
                [--batches 10000] [--batch 32] [--seed S] [--zipf S]
                [--deadline-secs 60]
      Open-loop network load generator: batch arrivals follow the fixed
      --rate schedule across --conns connections and latency is
      measured from each batch's INTENDED send time, so queueing delay
      under overload shows up in p50/p95/p99 instead of being
      coordinated-omission'd away. --zipf S skews query node popularity
      (Zipf exponent S; 0 = uniform).

  lbc repl-status --connect HOST:PORT
      Probe a replication port: prints the node's role
      (primary/follower/promoted), its applied_seq watermark, its
      replication term, and per connected follower its acked progress,
      records behind, and ms since its last ack.

  lbc jobs [--graph g.txt | --family ring|planted --k 4 --size 64]
           [--beta B] [--rounds T] [--seed S0] [--jobs 8] [--threads 4]
      Shard a seed sweep of independent clustering jobs across the pool
      and print the job table (worker, state, per-job wall time).

  lbc update [--graph g.txt | --family ring|planted …] [--beta B]
             [--rounds T] [--seed S]
             (--delta d.txt | --flips K [--flip-seed S])
             [--policy warm|invalidate] [--tolerance X] [--min-decay X]
             [--patience N] [--max-warm-rounds N] [--no-cold]
      Cluster, mutate the graph by a batched delta (from a file, or K
      random edge flips against the resident labelling), and refresh
      the cached clustering: warm policy re-clusters incrementally from
      the resident load states until the load-movement criterion fires;
      prints warm rounds-to-recovery vs the cold T and, unless
      --no-cold, a cold re-cluster reference with warm/cold agreement.

  lbc save <graph-file> <store-dir> [--name N] [--beta B] [--rounds T]
           [--seed S] [--query paper|argmax|scaled:C] [--k K]
      Cluster the graph and persist graph + output (config, partition,
      load states bit-for-bit) as a checksummed binary snapshot.

  lbc load <store-dir> [--verify]
      Boot every dataset in the store: read its snapshot and replay the
      delta write-ahead log through the deterministic warm start,
      recovering the exact pre-shutdown labellings. --verify cold
      re-clusters each (graph, config) pair and asserts the recovered
      output is bit-for-bit identical (clean, empty-wal stores only).
";
