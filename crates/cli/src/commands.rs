//! Subcommand implementations.

use std::fs::File;
use std::io::{BufReader, BufWriter};

use std::sync::Arc;

use lbc_core::{cluster, cluster_distributed, LbConfig, QueryRule, WarmStartConfig};
use lbc_eval::PartitionReport;
use lbc_graph::stats::GraphStats;
use lbc_graph::{generators, io, Graph, Partition};
use lbc_linalg::spectral::SpectralOracle;
use lbc_runtime::{
    CacheStats, DeltaPolicy, LoadgenConfig, Popularity, QueryEngine, Registry, SpillPolicy,
    WorkerPool,
};

use crate::args::Args;
use crate::USAGE;

/// Dispatch a full command line (without the program name). Returns the
/// report to print.
pub fn run(argv: &[String]) -> Result<String, String> {
    let Some((cmd, rest)) = argv.split_first() else {
        return Err(USAGE.to_string());
    };
    match cmd.as_str() {
        "gen" => cmd_gen(rest),
        "cluster" => cmd_cluster(rest),
        "eval" => cmd_eval(rest),
        "spectrum" => cmd_spectrum(rest),
        "stats" => cmd_stats(rest),
        "serve-bench" => cmd_serve_bench(rest),
        "serve" => cmd_serve(rest),
        "net-bench" => cmd_net_bench(rest),
        "repl-status" => cmd_repl_status(rest),
        "jobs" => cmd_jobs(rest),
        "update" => cmd_update(rest),
        "save" => cmd_save(rest),
        "load" => cmd_load(rest),
        "help" | "--help" | "-h" => Ok(USAGE.to_string()),
        other => Err(format!("unknown subcommand '{other}'\n\n{USAGE}")),
    }
}

fn load_graph(path: &str) -> Result<Graph, String> {
    let f = File::open(path).map_err(|e| format!("cannot open {path}: {e}"))?;
    io::read_edge_list(BufReader::new(f)).map_err(|e| format!("{path}: {e}"))
}

fn load_partition(path: &str) -> Result<Partition, String> {
    let f = File::open(path).map_err(|e| format!("cannot open {path}: {e}"))?;
    io::read_partition(BufReader::new(f)).map_err(|e| format!("{path}: {e}"))
}

fn save_graph(g: &Graph, path: &str) -> Result<(), String> {
    let f = File::create(path).map_err(|e| format!("cannot create {path}: {e}"))?;
    io::write_edge_list(g, BufWriter::new(f)).map_err(|e| format!("{path}: {e}"))
}

fn save_partition(p: &Partition, path: &str) -> Result<(), String> {
    let f = File::create(path).map_err(|e| format!("cannot create {path}: {e}"))?;
    io::write_partition(p, BufWriter::new(f)).map_err(|e| format!("{path}: {e}"))
}

fn cmd_gen(rest: &[String]) -> Result<String, String> {
    let a = Args::parse(rest, &[])?;
    let family = a.require("family")?;
    let seed: u64 = a.get_or("seed", 42)?;
    let out = a.require("out")?;
    let labels_out = a.get("labels-out");
    let (g, truth): (Graph, Option<Partition>) = match family.as_str() {
        "planted" => {
            let k: usize = a.require_as("k")?;
            let block: usize = a.require_as("block")?;
            let p_in: f64 = a.require_as("p-in")?;
            let p_out: f64 = a.require_as("p-out")?;
            let (g, t) = generators::planted_partition(k, block, p_in, p_out, seed)
                .map_err(|e| e.to_string())?;
            (g, Some(t))
        }
        "ring" => {
            let k: usize = a.require_as("k")?;
            let size: usize = a.require_as("size")?;
            let (g, t) = generators::ring_of_cliques(k, size, seed).map_err(|e| e.to_string())?;
            (g, Some(t))
        }
        "regular" => {
            let k: usize = a.require_as("k")?;
            let size: usize = a.require_as("size")?;
            let d_in: usize = a.require_as("d-in")?;
            let bridges: usize = a.require_as("bridges")?;
            let (g, t) = generators::regular_cluster_graph(k, size, d_in, bridges, seed)
                .map_err(|e| e.to_string())?;
            (g, Some(t))
        }
        "dumbbell" => {
            let half: usize = a.require_as("half")?;
            let d: usize = a.require_as("d")?;
            let bridges: usize = a.require_as("bridges")?;
            let (g, t) = generators::dumbbell(half, d, bridges, seed).map_err(|e| e.to_string())?;
            (g, Some(t))
        }
        "ba" => {
            let n: usize = a.require_as("n")?;
            let m: usize = a.require_as("m")?;
            let g = generators::barabasi_albert(n, m, seed).map_err(|e| e.to_string())?;
            (g, None)
        }
        "ws" => {
            let n: usize = a.require_as("n")?;
            let k_half: usize = a.require_as("k-half")?;
            let p: f64 = a.require_as("p")?;
            let g = generators::watts_strogatz(n, k_half, p, seed).map_err(|e| e.to_string())?;
            (g, None)
        }
        "lfr" => {
            let n: usize = a.require_as("n")?;
            let k: usize = a.require_as("k")?;
            let tau: f64 = a.require_as("tau")?;
            let min_size: usize = a.require_as("min-size")?;
            let p_in: f64 = a.require_as("p-in")?;
            let p_out: f64 = a.require_as("p-out")?;
            let (g, t) = generators::lfr_like(n, k, tau, min_size, p_in, p_out, seed)
                .map_err(|e| e.to_string())?;
            (g, Some(t))
        }
        other => return Err(format!("unknown family '{other}'")),
    };
    a.reject_unknown()?;
    save_graph(&g, &out)?;
    let mut report = format!(
        "generated {family}: n = {}, m = {}, degrees [{}, {}] -> {out}\n",
        g.n(),
        g.m(),
        g.min_degree(),
        g.max_degree()
    );
    match (truth, labels_out) {
        (Some(t), Some(path)) => {
            save_partition(&t, &path)?;
            report.push_str(&format!(
                "ground truth: k = {}, beta = {:.4} -> {path}\n",
                t.k(),
                t.beta()
            ));
        }
        (None, Some(_)) => {
            return Err(format!("family '{family}' has no ground-truth labels"));
        }
        _ => {}
    }
    Ok(report)
}

fn parse_query(spec: &str) -> Result<QueryRule, String> {
    match spec {
        "paper" => Ok(QueryRule::PaperThreshold),
        "argmax" => Ok(QueryRule::ArgMax),
        other => match other.strip_prefix("scaled:") {
            Some(c) => c
                .parse()
                .map(QueryRule::ScaledThreshold)
                .map_err(|e| format!("bad scaled threshold '{c}': {e}")),
            None => Err(format!("unknown query rule '{other}'")),
        },
    }
}

fn cmd_cluster(rest: &[String]) -> Result<String, String> {
    let a = Args::parse(rest, &["distributed"])?;
    let graph_path = a.require("graph")?;
    let beta: f64 = a.require_as("beta")?;
    let seed: u64 = a.get_or("seed", 0)?;
    let query = parse_query(&a.get_or("query", "paper".to_string())?)?;
    let rounds: Option<usize> = match a.get("rounds") {
        Some(v) => Some(v.parse().map_err(|e| format!("bad --rounds: {e}"))?),
        None => None,
    };
    let distributed = a.has("distributed");
    let out = a.get("out");
    let truth_path = a.get("truth");
    a.reject_unknown()?;

    let g = load_graph(&graph_path)?;
    let cfg = match rounds {
        Some(t) => LbConfig::new(beta, t),
        None => LbConfig::from_graph(&g, beta),
    }
    .with_seed(seed)
    .with_query(query);

    let mut report = format!(
        "graph: n = {}, m = {}; beta = {beta}, T = {}, s̄ = {} trials\n",
        g.n(),
        g.m(),
        cfg.rounds.count(),
        cfg.trials()
    );
    let output = if distributed {
        let (o, stats) = cluster_distributed(&g, &cfg, None).map_err(|e| e.to_string())?;
        report.push_str(&format!(
            "distributed run: {} messages, {} words across {} network rounds\n",
            stats.sent_messages, stats.sent_words, stats.rounds
        ));
        o
    } else {
        cluster(&g, &cfg).map_err(|e| e.to_string())?
    };
    report.push_str(&format!(
        "seeds = {}, clusters found = {}\n",
        output.seeds.len(),
        output.partition.k()
    ));
    if let Some(tp) = truth_path {
        let truth = load_partition(&tp)?;
        let r = PartitionReport::evaluate(&g, &truth, &output.partition);
        report.push_str(&format!("{}\n{}\n", PartitionReport::header(), r.row()));
    }
    if let Some(path) = out {
        save_partition(&output.partition, &path)?;
        report.push_str(&format!("labels -> {path}\n"));
    }
    Ok(report)
}

fn cmd_eval(rest: &[String]) -> Result<String, String> {
    let a = Args::parse(rest, &[])?;
    let truth = load_partition(&a.require("truth")?)?;
    let found = load_partition(&a.require("found")?)?;
    let graph = a.get("graph");
    a.reject_unknown()?;
    if truth.n() != found.n() {
        return Err(format!(
            "partition sizes differ: truth {} vs found {}",
            truth.n(),
            found.n()
        ));
    }
    let mut report = String::new();
    match graph {
        Some(gp) => {
            let g = load_graph(&gp)?;
            let r = PartitionReport::evaluate(&g, &truth, &found);
            report.push_str(&format!("{}\n{}\n", PartitionReport::header(), r.row()));
        }
        None => {
            use lbc_eval::{
                accuracy, adjusted_rand_index, misclassified, normalized_mutual_information,
            };
            report.push_str(&format!(
                "n = {}, misclassified = {}, accuracy = {:.4}, ARI = {:.4}, NMI = {:.4}\n",
                truth.n(),
                misclassified(truth.labels(), found.labels()),
                accuracy(truth.labels(), found.labels()),
                adjusted_rand_index(truth.labels(), found.labels()),
                normalized_mutual_information(truth.labels(), found.labels()),
            ));
        }
    }
    Ok(report)
}

fn cmd_spectrum(rest: &[String]) -> Result<String, String> {
    let a = Args::parse(rest, &[])?;
    let g = load_graph(&a.require("graph")?)?;
    let top: usize = a.get_or("top", 5)?;
    let seed: u64 = a.get_or("seed", 1)?;
    a.reject_unknown()?;
    let q = top.clamp(1, g.n().max(1));
    let oracle = SpectralOracle::compute(&g, q, seed);
    let mut report = format!("top {q} eigenvalues of the walk matrix (n = {}):\n", g.n());
    for i in 1..=q {
        report.push_str(&format!("  λ_{i} = {:+.6}\n", oracle.lambda(i)));
    }
    for k in 1..q {
        report.push_str(&format!(
            "  k = {k}: gap 1 − λ_{} = {:.6}, suggested T(c=2) = {}\n",
            k + 1,
            oracle.gap(k),
            oracle.rounds(k, 2.0)
        ));
    }
    Ok(report)
}

/// `lbc stats`: with `--graph`, static graph statistics; with
/// `--connect`, the live metrics snapshot a serving node answers the
/// STATS opcode with — counters, gauges, and latency percentiles,
/// plus the structured event ring under `--events`. `--watch SECS`
/// re-polls forever (one snapshot per interval); `--metrics-text`
/// switches to Prometheus text exposition for scrapers.
fn cmd_stats(rest: &[String]) -> Result<String, String> {
    let a = Args::parse(rest, &["events", "metrics-text"])?;
    let Some(connect) = a.get("connect") else {
        let g = load_graph(&a.require("graph")?)?;
        a.reject_unknown()?;
        let s = GraphStats::compute(&g);
        return Ok(format!(
            "n = {}\nm = {}\ndegrees: min {}, max {}, mean {:.3}\ntriangles = {}\nglobal clustering = {:.4}\nconnected = {}\n",
            s.n, s.m, s.min_degree, s.max_degree, s.mean_degree, s.triangles, s.global_clustering, s.connected
        ));
    };
    let watch: u64 = a.get_or("watch", 0)?;
    let events = a.has("events");
    let text = a.has("metrics-text");
    a.reject_unknown()?;
    let max_events: u32 = if events { 256 } else { 0 };
    let fetch = || -> Result<lbc_obs::ObsSnapshot, String> {
        let mut client = lbc_net::NetClient::connect(connect.as_str())
            .map_err(|e| format!("cannot connect to {connect}: {e}"))?;
        client
            .stats(max_events)
            .map_err(|e| format!("{connect}: {e}"))
    };
    let render = |snap: &lbc_obs::ObsSnapshot| -> String {
        if text {
            lbc_obs::render_text(snap)
        } else {
            render_stats(&connect, snap, events)
        }
    };
    if watch > 0 {
        loop {
            println!("{}", render(&fetch()?));
            use std::io::Write as _;
            std::io::stdout().flush().ok();
            std::thread::sleep(std::time::Duration::from_secs(watch));
        }
    }
    Ok(render(&fetch()?))
}

/// Human layout for a [`lbc_obs::ObsSnapshot`]: counters and gauges
/// one per line, histograms as count/p50/p95/p99/max, events (when
/// requested) oldest first with ring seq and relative timestamp.
fn render_stats(connect: &str, snap: &lbc_obs::ObsSnapshot, events: bool) -> String {
    let mut out = format!("{connect}:\n");
    if snap.counters.is_empty() && snap.gauges.is_empty() && snap.hists.is_empty() {
        out.push_str("  (no metrics registered)\n");
    }
    for (name, v) in &snap.counters {
        out.push_str(&format!("  {name} {v}\n"));
    }
    for (name, v) in &snap.gauges {
        out.push_str(&format!("  {name} {v}\n"));
    }
    for (name, h) in &snap.hists {
        if h.is_empty() {
            out.push_str(&format!("  {name}: empty\n"));
        } else {
            out.push_str(&format!(
                "  {name}: count {}, p50 {}, p95 {}, p99 {}, max {}\n",
                h.count,
                h.quantile(0.50),
                h.quantile(0.95),
                h.quantile(0.99),
                h.max,
            ));
        }
    }
    if events {
        if snap.events.is_empty() {
            out.push_str("events: none\n");
        } else {
            out.push_str("events:\n");
            for e in &snap.events {
                out.push_str(&format!(
                    "  [{}] +{}ms {:?}: {}\n",
                    e.seq, e.at_ms, e.kind, e.detail
                ));
            }
        }
    }
    out
}

/// Resolve the serving dataset: an edge-list file (`--graph`) or an
/// inline generator family (`--family ring|planted`, with the same
/// shape flags as `lbc gen`). Returns `(name, graph)`.
fn serving_dataset(a: &Args) -> Result<(String, Graph), String> {
    match (a.get("graph"), a.get("family")) {
        (Some(path), None) => Ok((path.clone(), load_graph(&path)?)),
        (None, family) => {
            let family = family.unwrap_or_else(|| "ring".to_string());
            let seed: u64 = a.get_or("gen-seed", 42)?;
            match family.as_str() {
                "ring" => {
                    let k: usize = a.get_or("k", 4)?;
                    let size: usize = a.get_or("size", 64)?;
                    let (g, _) =
                        generators::ring_of_cliques(k, size, seed).map_err(|e| e.to_string())?;
                    Ok((format!("ring-{k}x{size}"), g))
                }
                "planted" => {
                    let k: usize = a.get_or("k", 4)?;
                    let block: usize = a.get_or("block", 64)?;
                    let p_in: f64 = a.get_or("p-in", 0.3)?;
                    let p_out: f64 = a.get_or("p-out", 0.005)?;
                    let (g, _) = generators::planted_partition(k, block, p_in, p_out, seed)
                        .map_err(|e| e.to_string())?;
                    Ok((format!("planted-{k}x{block}"), g))
                }
                other => Err(format!(
                    "unknown serving family '{other}' (use ring or planted, or --graph)"
                )),
            }
        }
        (Some(_), Some(_)) => Err("--graph and --family are mutually exclusive".into()),
    }
}

fn serving_config(a: &Args, g: &Graph, k_hint: usize) -> Result<LbConfig, String> {
    let beta: f64 = a.get_or("beta", 1.0 / k_hint.max(2) as f64)?;
    let seed: u64 = a.get_or("seed", 0)?;
    let query = parse_query(&a.get_or("query", "paper".to_string())?)?;
    Ok(match a.get("rounds") {
        Some(v) => {
            let t: usize = v.parse().map_err(|e| format!("bad --rounds: {e}"))?;
            LbConfig::new(beta, t)
        }
        None => LbConfig::from_graph(g, beta),
    }
    .with_seed(seed)
    .with_query(query))
}

fn cmd_serve_bench(rest: &[String]) -> Result<String, String> {
    let a = Args::parse(rest, &[])?;
    let (name, g) = serving_dataset(&a)?;
    let k_hint: usize = a.get_or("k", 4)?;
    let cfg = serving_config(&a, &g, k_hint)?;
    let threads: usize = a.get_or("threads", 4)?;
    let clients: usize = a.get_or("clients", threads)?;
    let ops: u64 = a.get_or("ops", 200_000)?;
    let batch: usize = a.get_or("batch", 64)?;
    let cache: usize = a.get_or("cache", 8)?;
    let zipf: f64 = a.get_or("zipf", 0.0)?;
    let rate: f64 = a.get_or("rate", 0.0)?;
    let store_dir = a.get("store");
    a.reject_unknown()?;
    if !(zipf.is_finite() && zipf >= 0.0) {
        return Err(format!("--zipf must be finite and >= 0, got {zipf}"));
    }
    if !(rate.is_finite() && rate >= 0.0) {
        return Err(format!("--rate must be finite and >= 0, got {rate}"));
    }
    let mode = if rate > 0.0 {
        lbc_runtime::LoadMode::Open { rate }
    } else {
        lbc_runtime::LoadMode::Closed
    };
    let popularity = if zipf > 0.0 {
        Popularity::Zipf(zipf)
    } else {
        Popularity::Uniform
    };
    for (name, v) in [
        ("threads", threads),
        ("clients", clients),
        ("ops", ops as usize),
        ("batch", batch),
        ("cache", cache),
    ] {
        if v == 0 {
            return Err(format!("--{name} must be positive"));
        }
    }

    let registry = Arc::new(Registry::with_capacity(cache));
    let mut report = String::new();
    let mut booted = false;
    if let Some(dir) = &store_dir {
        registry
            .attach_store(dir, SpillPolicy::OnInsert)
            .map_err(|e| e.to_string())?;
        if registry.has_store_dataset(&name) {
            let t0 = std::time::Instant::now();
            let boot = registry.boot_from_store(&name).map_err(|e| e.to_string())?;
            report.push_str(&format!(
                "warm boot from store '{dir}' in {:.1} ms: {} cached outputs, \
                 {} wal records replayed ({} warm rounds)\n",
                t0.elapsed().as_secs_f64() * 1e3,
                boot.entries,
                boot.wal_records,
                boot.warm_rounds,
            ));
            booted = true;
        }
    }
    if booted {
        // The stored snapshot wins over the --graph/--family input;
        // surface any divergence instead of silently serving stale data.
        let stored = registry.graph(&name).map_err(|e| e.to_string())?;
        if *stored != g {
            report.push_str(
                "note: stored snapshot differs from the --graph/--family input; \
                 serving the stored graph (use a fresh --store dir to re-cluster)\n",
            );
        }
    } else {
        registry.insert_graph(&name, g);
    }
    let graph = registry.graph(&name).map_err(|e| e.to_string())?;
    report.push_str(&format!(
        "dataset '{name}': n = {}, m = {}; beta = {}, T = {}, seed = {}\n",
        graph.n(),
        graph.m(),
        cfg.beta,
        cfg.rounds.count(),
        cfg.seed
    ));

    let pool = WorkerPool::new(threads);
    let engine = QueryEngine::new(Arc::clone(&registry));
    let t0 = std::time::Instant::now();
    let handle = engine
        .handle_via_pool(&pool, &name, &cfg)
        .map_err(|e| e.to_string())?;
    report.push_str(&format!(
        "clustered on {}-thread pool in {:.1} ms: {} seeds, {} clusters (cached for serving)\n",
        pool.threads(),
        t0.elapsed().as_secs_f64() * 1e3,
        handle.output().seeds.len(),
        handle.k()
    ));

    let lg = LoadgenConfig {
        clients,
        total_ops: ops,
        batch,
        seed: cfg.seed,
        popularity,
        mode,
    };
    if let Popularity::Zipf(s) = popularity {
        report.push_str(&format!("query popularity: zipf(s = {s})\n"));
    }
    if let lbc_runtime::LoadMode::Open { rate } = mode {
        report.push_str(&format!(
            "open loop: {rate} batch arrivals/s, latency from intended send time\n"
        ));
    }
    let load = lbc_runtime::run_loadgen(&handle, &lg).map_err(|e| e.to_string())?;
    report.push_str(&load.render());
    report.push_str(&render_cache_line(&registry));
    Ok(report)
}

/// `lbc serve --listen ADDR`: cluster the dataset up front, then serve
/// the framed wire protocol from one epoll reactor thread until the
/// process is killed. Prints the listening line (and optionally writes
/// the resolved address to `--addr-file`, which is how scripts and the
/// e2e tests find a `--listen 127.0.0.1:0` server) *before* parking, so
/// callers can synchronise on it.
fn cmd_serve(rest: &[String]) -> Result<String, String> {
    let a = Args::parse(rest, &["ack-quorum"])?;
    let listen = a.require("listen")?;
    let (name, g) = serving_dataset(&a)?;
    let k_hint: usize = a.get_or("k", 4)?;
    let mut cfg = serving_config(&a, &g, k_hint)?;
    let threads: usize = a.get_or("threads", 4)?;
    let cache: usize = a.get_or("cache", 8)?;
    let outbox_cap: usize = a.get_or("outbox-cap", 256 * 1024)?;
    let max_conns: usize = a.get_or("max-conns", 1024)?;
    let addr_file = a.get("addr-file");
    let repl_listen = a.get("repl-listen");
    let repl_addr_file = a.get("repl-addr-file");
    let follow = a.get("follow");
    let members_spec = a.get("members");
    let store_dir = a.get("store");
    let ack_quorum = a.has("ack-quorum");
    // Default to the pid, not a constant: two followers launched with
    // bare flags must not collide on the id that is their election
    // identity (the primary rejects duplicates outright).
    let follower_id: u64 = a.get_or("follower-id", std::process::id() as u64)?;
    a.reject_unknown()?;
    if repl_addr_file.is_some() && repl_listen.is_none() {
        return Err("--repl-addr-file needs --repl-listen".into());
    }
    for (flag, v) in [
        ("threads", threads),
        ("cache", cache),
        ("outbox-cap", outbox_cap),
        ("max-conns", max_conns),
    ] {
        if v == 0 {
            return Err(format!("--{flag} must be positive"));
        }
    }

    let registry = Arc::new(Registry::with_capacity(cache));
    let mut repl_cfg = lbc_repl::ReplConfig::default();
    // Quorum membership: an explicit `--members id@addr,...` wins and
    // is persisted to `--store` (so a restarted node rejoins the same
    // electorate without re-flagging); without the flag a previously
    // persisted membership is loaded. `--store` here holds replication
    // configuration only — dataset spill/boot stays with `serve-bench`.
    let membership_store = match &store_dir {
        Some(dir) => Some(Arc::new(
            lbc_store::Store::open(dir).map_err(|e| format!("cannot open store {dir}: {e}"))?,
        )),
        None => None,
    };
    if let Some(spec) = &members_spec {
        repl_cfg.members = lbc_repl::Membership::parse(spec)?;
        if let Some(store) = &membership_store {
            store
                .save_membership(&repl_cfg.members.to_spec())
                .map_err(|e| format!("cannot persist membership: {e}"))?;
        }
    } else if let Some(store) = &membership_store {
        if let Some(spec) = store
            .load_membership()
            .map_err(|e| format!("cannot load persisted membership: {e}"))?
        {
            repl_cfg.members = lbc_repl::Membership::parse(&spec)?;
            println!("membership loaded from store: {spec}");
        }
    }
    if !repl_cfg.members.is_empty() && !repl_cfg.members.contains(follower_id) {
        return Err(format!(
            "--members {} does not include this node's id {follower_id} (set --follower-id to one of the member ids)",
            repl_cfg.members.to_spec()
        ));
    }
    if ack_quorum && repl_cfg.members.is_empty() {
        return Err(
            "--ack-quorum needs a fixed electorate: pass --members (or a --store holding one)"
                .into(),
        );
    }
    repl_cfg.ack_quorum = ack_quorum;

    // Bind the query (and optional replication) listeners up front, so
    // a follower's `Hello` advertises the addresses it really serves
    // from — peers poll the query port during failover elections and
    // re-follow the replication port after losing one.
    let query_listener =
        std::net::TcpListener::bind(&listen).map_err(|e| format!("cannot bind {listen}: {e}"))?;
    let addr = query_listener
        .local_addr()
        .map_err(|e| e.to_string())?
        .to_string();
    let mut repl_listener = match &repl_listen {
        Some(rl) => {
            Some(std::net::TcpListener::bind(rl).map_err(|e| format!("cannot bind {rl}: {e}"))?)
        }
        None => None,
    };
    let identity = lbc_repl::FollowerIdentity {
        id: follower_id,
        addr: addr.clone(),
        repl_addr: repl_listener
            .as_ref()
            .and_then(|l| l.local_addr().ok())
            .map(|a| a.to_string())
            .unwrap_or_default(),
    };

    // The gate exists before any socket does: the persisted term/vote
    // pair must be reloaded (and the durability hook installed) before
    // this node can answer a single vote request or stamp a Hello —
    // otherwise a kill -9 between grant and persist re-opens the
    // double-vote window this ordering closes.
    let role = if follow.is_some() {
        lbc_net::Role::Follower
    } else {
        lbc_net::Role::Primary
    };
    let gate = Arc::new(lbc_net::ReplGate::with_id(role, follower_id));
    if let Some(store) = &membership_store {
        match store.load_vote() {
            Ok(Some((term, voted_for))) => {
                gate.seed_term_vote(term, voted_for);
                println!("replication term {term} restored from store");
            }
            Ok(None) => {}
            Err(e) => return Err(format!("cannot load persisted term/vote: {e}")),
        }
        let vote_store = Arc::clone(store);
        gate.set_vote_persist(Box::new(move |term, voted_for| {
            if let Err(e) = vote_store.save_vote(term, voted_for) {
                eprintln!("cannot persist term/vote ({term}, {voted_for}): {e}");
            }
        }));
    }

    // A follower syncs BEFORE starting its reactor: the handshake
    // adopts the primary's graph and cached clustering bit-for-bit, so
    // the reactor's initial `handle_via_pool` is a cache hit on
    // replicated state rather than an independent (divergent) local
    // clustering.
    let follower_conn = if let Some(follow) = &follow {
        let t0 = std::time::Instant::now();
        let (conn, report) = lbc_repl::FollowerConn::sync(
            follow.as_str(),
            Arc::clone(&registry),
            &name,
            identity.clone(),
            lbc_repl::HAVE_NOTHING,
            gate.term(),
            repl_cfg.clone(),
        )
        .map_err(|e| format!("cannot sync from {follow}: {e}"))?;
        println!(
            "follower {follower_id}: adopted dataset '{name}' from {follow} in {:.1} ms ({} snapshot bytes, {} cached entries, applied_seq {})",
            t0.elapsed().as_secs_f64() * 1e3,
            report.snapshot_bytes,
            report.entries,
            report.applied_seq,
        );
        // Serve the configuration the primary replicated, not whatever
        // the local flags happened to default to.
        if let Ok((_, entries, _)) = registry.replication_state(&name) {
            if let Some((adopted_cfg, _)) = entries.first() {
                cfg = adopted_cfg.clone();
            }
        }
        Some(conn)
    } else {
        registry.insert_graph(&name, g);
        None
    };
    let pool = Arc::new(WorkerPool::new(threads));
    // One Obs per node, threaded through every layer: the reactor
    // answers STATS from it, the registry/store/pool adopt their
    // counters into it, and serve_listener hands it to the ReplGate so
    // the replication plane records elections against the same ring.
    let obs = Arc::new(lbc_obs::Obs::new());
    registry.attach_obs(Arc::clone(&obs));
    pool.register_obs(&obs);
    if let Some(store) = &membership_store {
        store.register_obs(Arc::clone(&obs));
    }
    let ctx = lbc_net::ServeContext {
        registry: Arc::clone(&registry),
        pool,
        dataset: name.clone(),
        cfg: cfg.clone(),
        obs,
    };
    let server_cfg = lbc_net::ServerConfig {
        outbox_cap,
        max_conns,
        ..Default::default()
    };
    // A node without a pre-bound replication listener can never serve
    // as primary; advertising that in votes lets a higher-seq but
    // unpromotable node concede instead of deadlocking an election.
    gate.set_promotable(!identity.repl_addr.is_empty());
    gate.set_member_count(repl_cfg.members.len());
    gate.set_repl_addr(&identity.repl_addr);
    let t0 = std::time::Instant::now();
    let handle =
        lbc_net::NetServer::serve_listener(query_listener, ctx, server_cfg, Arc::clone(&gate))
            .map_err(|e| e.to_string())?;
    let addr = handle.addr();
    if follower_conn.is_none() {
        println!(
            "dataset '{name}': clustered in {:.1} ms (beta = {}, T = {}, seed = {})",
            t0.elapsed().as_secs_f64() * 1e3,
            cfg.beta,
            cfg.rounds.count(),
            cfg.seed,
        );
    }
    println!("listening on {addr} ({threads}-thread pool behind one reactor thread)");
    // A primary starts replicating now; a follower keeps its pre-bound
    // listener idle until (if ever) it wins a failover election.
    let mut repl_server = match repl_listener.take() {
        Some(listener) if follower_conn.is_none() => {
            let srv = lbc_repl::ReplServer::from_listener(
                listener,
                Arc::clone(&registry),
                &name,
                repl_cfg.clone(),
            )
            .map_err(|e| e.to_string())?;
            // The server flips this gate to read-only if quorum-mode
            // step-down ever fires.
            srv.set_gate(Arc::clone(&gate));
            println!(
                "replicating on {} (snapshot handshake + live WAL stream)",
                srv.addr()
            );
            if let Some(path) = &repl_addr_file {
                write_addr_file(path, &srv.addr().to_string())?;
            }
            Some(srv)
        }
        other => {
            repl_listener = other;
            None
        }
    };
    use std::io::Write as _;
    std::io::stdout().flush().ok();
    if let Some(path) = addr_file {
        write_addr_file(&path, &addr.to_string())?;
    }
    // The repl thread applies each streamed record through the
    // registry, then swaps the refreshed handle into the reactor so
    // the next batch reads the new state. The factory is re-invoked on
    // every re-follow generation.
    let handle = Arc::new(handle);
    let swap_handle = Arc::clone(&handle);
    let swap_registry = Arc::clone(&registry);
    let swap_name = name.clone();
    let swap_cfg = cfg.clone();
    let make_on_apply = move || {
        let handle = Arc::clone(&swap_handle);
        let registry = Arc::clone(&swap_registry);
        let name = swap_name.clone();
        let cfg = swap_cfg.clone();
        move |_seq: u64| {
            if let Some(out) = registry.cached(&name, &cfg) {
                handle.install_handle(lbc_runtime::ClusterHandle::new(out));
            }
        }
    };
    let mut fh_opt = follower_conn.map(|conn| conn.run(Arc::clone(&gate), make_on_apply()));
    // Re-follow from scratch (HAVE_NOTHING) whenever this node may
    // hold a diverged suffix: after serving as a primary that stepped
    // down, or after sitting out a partition without quorum. An
    // incremental re-follow would splice two lineages.
    let mut from_scratch = false;
    // Node lifecycle: stream as a follower until the primary dies,
    // then either promote (and start replicating to the others) or
    // re-follow the winner; serve as a primary until quorum loss steps
    // us down, then rejoin as a follower. Never park read-only forever
    // on a lost election — that would freeze this node's lineage while
    // the cluster moves on.
    let _repl_server: Option<lbc_repl::ReplServer> = 'generations: loop {
        let (mut target_repl, members) = if let Some(fh) = &fh_opt {
            let outcome = loop {
                if let Some(o) = fh.wait_outcome(std::time::Duration::from_secs(1)) {
                    break o;
                }
                // While streaming, fold any membership the follower
                // thread adopted from heartbeats into this loop's
                // election config and persist it, so a node booted
                // without --members re-elects under the quorum rule
                // and a restart rejoins the same electorate.
                adopt_membership(&mut repl_cfg, &gate, membership_store.as_deref());
            };
            // Once more: the adoption may have landed in the final
            // beat before the stream died.
            adopt_membership(&mut repl_cfg, &gate, membership_store.as_deref());
            match outcome {
                lbc_repl::FailoverOutcome::Promoted { applied_seq } => {
                    println!(
                        "primary lost: promoted to primary at applied_seq {applied_seq}; accepting writes"
                    );
                    repl_server = start_promotion_listener(
                        repl_listener.take(),
                        &registry,
                        &name,
                        &repl_cfg,
                        repl_addr_file.as_ref(),
                        &gate,
                    );
                    fh_opt = None;
                    std::io::stdout().flush().ok();
                    continue 'generations;
                }
                lbc_repl::FailoverOutcome::Stopped { applied_seq } => {
                    println!("replication stream stopped at applied_seq {applied_seq}");
                    break 'generations None;
                }
                lbc_repl::FailoverOutcome::Error(e) => {
                    println!("replication stream failed: {e}");
                    break 'generations None;
                }
                lbc_repl::FailoverOutcome::NotPromoted {
                    winner,
                    applied_seq,
                    winner_repl,
                    members,
                    ..
                } => {
                    println!(
                        "primary lost: follower {winner} won promotion; re-following at applied_seq {applied_seq}"
                    );
                    (winner_repl, members)
                }
                lbc_repl::FailoverOutcome::Undecided {
                    applied_seq,
                    members,
                } => {
                    println!(
                        "primary lost: election inconclusive at applied_seq {applied_seq}; serving read-only and retrying"
                    );
                    (String::new(), members)
                }
                lbc_repl::FailoverOutcome::NoQuorum {
                    applied_seq,
                    members,
                    votes_seen,
                    votes_needed,
                } => {
                    println!(
                        "primary lost: no quorum ({votes_seen} of {votes_needed} needed votes reachable) at applied_seq {applied_seq}; serving read-only until the partition heals"
                    );
                    // Our suffix may be minority lineage — resync from
                    // scratch once a quorum-elected primary reappears.
                    from_scratch = true;
                    (String::new(), members)
                }
            }
        } else if repl_server.is_some() && !repl_cfg.members.is_empty() {
            // Serving as a quorum-mode primary: watch for the lease
            // ticker stepping us down after losing contact with the
            // majority. Jittered so a chaos run's nodes don't poll in
            // lockstep; no growth (this is a monitor, not a retry).
            {
                let srv = repl_server.as_ref().unwrap();
                let mut pause = lbc_repl::Backoff::new(
                    repl_cfg.heartbeat_interval,
                    repl_cfg.heartbeat_interval,
                    follower_id,
                );
                while !srv.stepped_down() {
                    pause.sleep();
                }
            }
            println!(
                "quorum lost: stepped down from primary at applied_seq {}; rejoining as a follower",
                registry.applied_seq(&name)
            );
            // Dropping the server closes its listener and stops the
            // fan-out threads; re-bind the advertised address so a
            // future re-election can still promote this node.
            repl_server = None;
            if !identity.repl_addr.is_empty() {
                let mut bind_retry = lbc_repl::Backoff::new(
                    repl_cfg.heartbeat_interval,
                    repl_cfg.heartbeat_timeout,
                    follower_id ^ 0xb1bd,
                )
                .with_deadline(std::time::Instant::now() + repl_cfg.heartbeat_timeout * 2);
                loop {
                    match std::net::TcpListener::bind(&identity.repl_addr) {
                        Ok(l) => {
                            repl_listener = Some(l);
                            break;
                        }
                        Err(e) => {
                            if !bind_retry.sleep() {
                                eprintln!(
                                    "cannot re-bind {}: {e}; this node can no longer be promoted",
                                    identity.repl_addr
                                );
                                gate.set_promotable(false);
                                break;
                            }
                        }
                    }
                }
            }
            from_scratch = true;
            (String::new(), Vec::new())
        } else {
            // Plain primary (no quorum membership): nothing left to
            // supervise — the reactor and replication threads carry
            // the process until it is killed.
            break 'generations repl_server.take();
        };
        std::io::stdout().flush().ok();
        // Recovery: re-follow the winner when it advertises a
        // replication port, falling back to re-election when it does
        // not (or never comes up).
        let mut election_pause = lbc_repl::Backoff::new(
            repl_cfg.heartbeat_timeout,
            repl_cfg.heartbeat_timeout * 4,
            follower_id ^ 0xe1ec7,
        );
        loop {
            if !target_repl.is_empty() {
                // The winner needs a beat to open its listener.
                let mut retry = lbc_repl::Backoff::new(
                    repl_cfg.heartbeat_interval,
                    repl_cfg.heartbeat_timeout,
                    follower_id ^ 0x5eed,
                )
                .with_deadline(std::time::Instant::now() + repl_cfg.heartbeat_timeout * 4);
                loop {
                    let resume_seq = if from_scratch {
                        lbc_repl::HAVE_NOTHING
                    } else {
                        registry.applied_seq(&name)
                    };
                    match lbc_repl::FollowerConn::sync(
                        target_repl.as_str(),
                        Arc::clone(&registry),
                        &name,
                        identity.clone(),
                        resume_seq,
                        gate.term(),
                        repl_cfg.clone(),
                    ) {
                        Ok((conn, report)) => {
                            println!(
                                "re-following {target_repl} from applied_seq {}",
                                report.applied_seq
                            );
                            std::io::stdout().flush().ok();
                            from_scratch = false;
                            fh_opt = Some(conn.run(Arc::clone(&gate), make_on_apply()));
                            continue 'generations;
                        }
                        Err(e) => {
                            if !retry.sleep() {
                                println!("cannot re-follow {target_repl}: {e}; re-electing");
                                break;
                            }
                        }
                    }
                }
            }
            election_pause.sleep();
            match lbc_repl::run_election(
                follower_id,
                registry.applied_seq(&name),
                Some(&gate),
                &members,
                &repl_cfg,
            ) {
                lbc_repl::ElectionOutcome::Won { term } => {
                    // Pull any WAL suffix a live loser holds beyond us
                    // *before* opening the gate for writes, so records
                    // the dead primary fanned elsewhere survive.
                    let seq = lbc_repl::reconcile(
                        &registry,
                        &name,
                        follower_id,
                        registry.applied_seq(&name),
                        &members,
                        &repl_cfg,
                    );
                    gate.set_quorum_status(0, 0, false);
                    gate.set_role(lbc_net::Role::Promoted);
                    println!(
                        "re-election won: promoted to primary at applied_seq {seq} (term {term}); accepting writes"
                    );
                    repl_server = start_promotion_listener(
                        repl_listener.take(),
                        &registry,
                        &name,
                        &repl_cfg,
                        repl_addr_file.as_ref(),
                        &gate,
                    );
                    fh_opt = None;
                    std::io::stdout().flush().ok();
                    continue 'generations;
                }
                lbc_repl::ElectionOutcome::Lost {
                    winner,
                    winner_repl,
                    ..
                } => {
                    println!("re-election: follower {winner} wins; deferring");
                    target_repl = winner_repl;
                }
                lbc_repl::ElectionOutcome::Inconclusive => {
                    target_repl.clear();
                }
                lbc_repl::ElectionOutcome::NoQuorum {
                    votes_seen,
                    votes_needed,
                } => {
                    gate.set_quorum_status(votes_seen, votes_needed, true);
                    println!(
                        "re-election: no quorum ({votes_seen} of {votes_needed} needed votes reachable); serving read-only and retrying"
                    );
                    from_scratch = true;
                    target_repl.clear();
                }
            }
            std::io::stdout().flush().ok();
        }
    };
    std::io::stdout().flush().ok();
    // Keep serving whatever state we hold until killed.
    loop {
        std::thread::park();
    }
}

/// Fold a membership the follower thread adopted from the primary's
/// heartbeats (surfaced via the gate) into the serve loop's election
/// config, and persist it when a store is configured — so the CLI's
/// re-election path enforces the same quorum rule as the stream's
/// failover path, and a restarted node rejoins the same electorate. A
/// locally configured membership is never overridden.
fn adopt_membership(
    repl_cfg: &mut lbc_repl::ReplConfig,
    gate: &lbc_net::ReplGate,
    store: Option<&lbc_store::Store>,
) {
    if !repl_cfg.members.is_empty() {
        return;
    }
    let (adopted_term, adopted) = gate.adopted_members_at();
    if adopted.is_empty() {
        return;
    }
    repl_cfg.members = lbc_repl::Membership::from_members(adopted);
    gate.set_member_count(repl_cfg.members.len());
    println!(
        "membership adopted from primary: {}",
        repl_cfg.members.to_spec()
    );
    use std::io::Write as _;
    std::io::stdout().flush().ok();
    if let Some(store) = store {
        // This poll loop lags the stream by up to a second; an
        // election can land in that gap. Persist only a roster whose
        // source generation is still current — a heartbeat term below
        // the gate's means the roster came from a now-deposed primary,
        // and writing it would resurrect the pre-election membership
        // on the next restart.
        if adopted_term < gate.term() {
            println!(
                "adopted membership from term {adopted_term} is stale (gate at term {}); not persisting",
                gate.term()
            );
            return;
        }
        if let Err(e) = store.save_membership(&repl_cfg.members.to_spec()) {
            eprintln!("cannot persist adopted membership: {e}");
        }
    }
}

/// A freshly promoted follower starts serving replication from the
/// listener it pre-bound (and advertised) at startup, so the losers can
/// re-follow the address the roster already names. Failure is reported
/// but non-fatal: the node still serves queries and accepts writes.
fn start_promotion_listener(
    listener: Option<std::net::TcpListener>,
    registry: &Arc<Registry>,
    name: &str,
    repl_cfg: &lbc_repl::ReplConfig,
    repl_addr_file: Option<&String>,
    gate: &Arc<lbc_net::ReplGate>,
) -> Option<lbc_repl::ReplServer> {
    let listener = listener?;
    match lbc_repl::ReplServer::from_listener(
        listener,
        Arc::clone(registry),
        name,
        repl_cfg.clone(),
    ) {
        Ok(srv) => {
            srv.set_gate(Arc::clone(gate));
            println!(
                "replicating on {} (snapshot handshake + live WAL stream)",
                srv.addr()
            );
            if let Some(path) = repl_addr_file {
                if let Err(e) = write_addr_file(path, &srv.addr().to_string()) {
                    eprintln!("{e}");
                }
            }
            Some(srv)
        }
        Err(e) => {
            eprintln!("cannot start replicating after promotion: {e}");
            None
        }
    }
}

/// Write-then-rename so watchers never read a half-written file.
fn write_addr_file(path: &str, addr: &str) -> Result<(), String> {
    let tmp = format!("{path}.tmp");
    std::fs::write(&tmp, addr).map_err(|e| format!("cannot write {tmp}: {e}"))?;
    std::fs::rename(&tmp, path).map_err(|e| format!("cannot rename to {path}: {e}"))
}

/// `lbc net-bench --connect ADDR`: drive a running `lbc serve` with the
/// open-loop (arrival-rate-driven) network load generator.
fn cmd_net_bench(rest: &[String]) -> Result<String, String> {
    let a = Args::parse(rest, &[])?;
    let connect = a.require("connect")?;
    let zipf: f64 = a.get_or("zipf", 0.0)?;
    let cfg = lbc_net::NetBenchConfig {
        conns: a.get_or("conns", 64)?,
        rate: a.get_or("rate", 5_000.0)?,
        batches: a.get_or("batches", 10_000)?,
        batch: a.get_or("batch", 32)?,
        seed: a.get_or("seed", 0)?,
        deadline: std::time::Duration::from_secs_f64(a.get_or("deadline-secs", 60.0)?),
        popularity: if zipf > 0.0 {
            Popularity::Zipf(zipf)
        } else {
            Popularity::Uniform
        },
    };
    a.reject_unknown()?;
    if !(zipf.is_finite() && zipf >= 0.0) {
        return Err(format!("--zipf must be finite and >= 0, got {zipf}"));
    }
    let addrs: Vec<std::net::SocketAddr> = std::net::ToSocketAddrs::to_socket_addrs(&connect)
        .map_err(|e| format!("cannot resolve {connect}: {e}"))?
        .collect();
    let addr = *addrs
        .first()
        .ok_or_else(|| format!("{connect} resolves to nothing"))?;
    let r = lbc_net::net_bench(addr, &cfg).map_err(|e| e.to_string())?;
    let mut out = format!("target {connect} ({addr})\n");
    if let Popularity::Zipf(s) = cfg.popularity {
        out.push_str(&format!("query popularity: zipf(s = {s})\n"));
    }
    out.push_str(&r.render());
    Ok(out)
}

/// `lbc repl-status --connect ADDR`: probe a replication port for the
/// node's role, applied watermark, and follower roster.
fn cmd_repl_status(rest: &[String]) -> Result<String, String> {
    let a = Args::parse(rest, &[])?;
    let connect = a.require("connect")?;
    a.reject_unknown()?;
    use std::io::{Read as _, Write as _};
    let mut stream = std::net::TcpStream::connect(&connect)
        .map_err(|e| format!("cannot connect to {connect}: {e}"))?;
    stream
        .set_read_timeout(Some(std::time::Duration::from_secs(10)))
        .ok();
    let mut buf = Vec::new();
    lbc_net::ReplMsg::Status
        .encode(&mut buf, 1)
        .map_err(|e| e.to_string())?;
    stream.write_all(&buf).map_err(|e| e.to_string())?;
    let mut dec = lbc_net::FrameDecoder::new();
    let mut scratch = [0u8; 4096];
    let status = loop {
        if let Some(frame) = dec.next_frame().map_err(|e| e.to_string())? {
            match lbc_net::ReplMsg::from_frame(&frame).map_err(|e| e.to_string())? {
                lbc_net::ReplMsg::StatusResp(s) => break s,
                other => return Err(format!("unexpected reply to status probe: {other:?}")),
            }
        }
        let n = stream.read(&mut scratch).map_err(|e| e.to_string())?;
        if n == 0 {
            return Err(format!("{connect} closed the connection mid-status"));
        }
        dec.push(&scratch[..n]);
    };
    let role = match status.role {
        lbc_net::Role::Primary => "primary",
        lbc_net::Role::Follower => "follower",
        lbc_net::Role::Promoted => "promoted",
    };
    let mut out = format!(
        "{connect}: role {role}, applied_seq {}\nterm: {}\n",
        status.applied_seq, status.term
    );
    if !status.members.is_empty() {
        let spec = status
            .members
            .iter()
            .map(|m| format!("{}@{}", m.id, m.addr))
            .collect::<Vec<_>>()
            .join(",");
        out.push_str(&format!(
            "membership: {} nodes, quorum {}: {spec}\n",
            status.members.len(),
            status.members.len() / 2 + 1
        ));
    }
    if status.no_quorum {
        out.push_str(&format!(
            "quorum: LOST — {} of {} needed votes reachable (read-only)\n",
            status.votes_seen, status.votes_needed
        ));
    } else if status.votes_needed > 0 {
        out.push_str(&format!(
            "quorum: held — {} of {} needed votes reachable\n",
            status.votes_seen, status.votes_needed
        ));
    }
    if status.peers.is_empty() {
        out.push_str("followers: none\n");
    } else {
        for p in &status.peers {
            out.push_str(&format!(
                "follower {}: acked_seq {} ({} records behind",
                p.follower_id,
                p.applied_seq,
                status.applied_seq.saturating_sub(p.applied_seq)
            ));
            if let Some(&(_, ms)) = status.ack_ages.iter().find(|(id, _)| *id == p.follower_id) {
                out.push_str(&format!(", {ms} ms since last ack"));
            }
            out.push(')');
            if !p.addr.is_empty() {
                out.push_str(&format!(" at {}", p.addr));
            }
            out.push('\n');
        }
    }
    Ok(out)
}

/// The registry's cache counters + resident footprint, one line —
/// shared by `serve-bench`, `jobs`, and `update` so warm-refresh
/// effectiveness is visible wherever the cache is in play. When a
/// store is attached a second line reports its spill/load counters and
/// on-disk footprint.
fn render_cache_line(registry: &Registry) -> String {
    let s: CacheStats = registry.stats();
    let mut line = format!(
        "cache: {} hits, {} misses ({:.1}% hit ratio), {} evictions, {} warm refreshes ({} resident, {} words pinned)\n",
        s.hits,
        s.misses,
        s.hit_ratio_percent(),
        s.evictions,
        s.refreshes,
        registry.cached_len(),
        registry.resident_words()
    );
    if registry.store_attached() {
        line.push_str(&format!(
            "store: {} spills, {} loads, {} bytes on disk\n",
            s.spills, s.loads, s.store_bytes
        ));
    }
    line
}

fn cmd_jobs(rest: &[String]) -> Result<String, String> {
    let a = Args::parse(rest, &[])?;
    let (name, g) = serving_dataset(&a)?;
    let k_hint: usize = a.get_or("k", 4)?;
    let cfg = serving_config(&a, &g, k_hint)?;
    let threads: usize = a.get_or("threads", 4)?;
    let jobs: u64 = a.get_or("jobs", 8)?;
    if jobs == 0 || threads == 0 {
        return Err("--jobs and --threads must be positive".into());
    }
    a.reject_unknown()?;

    let registry = Arc::new(Registry::with_capacity((jobs as usize).max(1)));
    registry.insert_graph(&name, g);
    let pool = WorkerPool::new(threads);
    let t0 = std::time::Instant::now();
    // Seed sweep: the canonical batch of independent (graph, config)
    // jobs. Each job is deterministic in its seed, so this is also a
    // reproducibility sweep.
    let handles: Result<Vec<_>, _> = (0..jobs)
        .map(|s| {
            pool.submit_cached(
                &registry,
                &name,
                &cfg.clone().with_seed(cfg.seed.wrapping_add(s)),
            )
        })
        .collect();
    let handles = handles.map_err(|e| e.to_string())?;
    let mut failures = 0usize;
    for h in handles {
        if h.wait().is_err() {
            failures += 1;
        }
    }
    let wall = t0.elapsed();
    let table = pool.job_table();
    let busy: std::time::Duration = table.iter().filter_map(|r| r.duration).sum();
    let mut report = format!(
        "{jobs} clustering jobs over dataset '{name}' on {} workers\n\n",
        pool.threads()
    );
    report.push_str(&pool.render_job_table());
    report.push_str(&format!(
        "\nwall = {:.1} ms, worker-busy = {:.1} ms, parallel speedup = {:.2}x, failures = {failures}\n",
        wall.as_secs_f64() * 1e3,
        busy.as_secs_f64() * 1e3,
        busy.as_secs_f64() / wall.as_secs_f64().max(1e-12),
    ));
    report.push_str(&render_cache_line(&registry));
    Ok(report)
}

fn cmd_update(rest: &[String]) -> Result<String, String> {
    let a = Args::parse(rest, &["no-cold"])?;
    let (name, g) = serving_dataset(&a)?;
    let k_hint: usize = a.get_or("k", 4)?;
    let cfg = serving_config(&a, &g, k_hint)?;
    let delta_path = a.get("delta");
    let flips: usize = a.get_or("flips", 0)?;
    let flip_seed: u64 = a.get_or("flip-seed", 1)?;
    let policy_name = a.get_or("policy", "warm".to_string())?;
    let wdefault = WarmStartConfig::default();
    let wcfg = WarmStartConfig {
        tolerance: a.get_or("tolerance", wdefault.tolerance)?,
        min_decay: a.get_or("min-decay", wdefault.min_decay)?,
        patience: a.get_or("patience", wdefault.patience)?,
        max_rounds: a.get_or("max-warm-rounds", wdefault.max_rounds)?,
    };
    let no_cold = a.has("no-cold");
    a.reject_unknown()?;
    // Validate here so bad flags come back as a usage error, not the
    // warm-start assertion's panic.
    if !(wcfg.tolerance.is_finite() && wcfg.tolerance >= 0.0) {
        return Err(format!(
            "--tolerance must be finite and >= 0, got {}",
            wcfg.tolerance
        ));
    }
    if !(0.0..1.0).contains(&wcfg.min_decay) {
        return Err(format!(
            "--min-decay must lie in [0, 1), got {}",
            wcfg.min_decay
        ));
    }
    if wcfg.patience == 0 || wcfg.max_rounds == 0 {
        return Err("--patience and --max-warm-rounds must be positive".into());
    }

    let registry = Registry::with_capacity(4);
    registry.insert_graph(&name, g.clone());
    let mut report = format!(
        "dataset '{name}': n = {}, m = {}; beta = {}, T = {}, seed = {}\n",
        g.n(),
        g.m(),
        cfg.beta,
        cfg.rounds.count(),
        cfg.seed
    );
    let t0 = std::time::Instant::now();
    let resident = registry
        .get_or_cluster(&name, &cfg)
        .map_err(|e| e.to_string())?;
    let cold_ms = t0.elapsed().as_secs_f64() * 1e3;
    report.push_str(&format!(
        "resident clustering: {} seeds, {} clusters in {cold_ms:.1} ms (T = {} rounds, cold)\n",
        resident.seeds.len(),
        resident.partition.k(),
        resident.rounds,
    ));

    let delta = match (delta_path, flips) {
        (Some(_), f) if f > 0 => {
            return Err("--delta and --flips are mutually exclusive".into());
        }
        (Some(path), _) => {
            let f = File::open(&path).map_err(|e| format!("cannot open {path}: {e}"))?;
            io::read_delta(BufReader::new(f)).map_err(|e| format!("{path}: {e}"))?
        }
        (None, f) if f > 0 => {
            // No ground truth needed: flip against the resident
            // labelling, which is what a live server would do.
            generators::k_edge_flip_delta(&g, &resident.partition, f, flip_seed)
                .map_err(|e| e.to_string())?
        }
        (None, _) => {
            return Err("provide a mutation: --delta file or --flips K".into());
        }
    };
    report.push_str(&format!(
        "delta: +{} nodes, +{} edges, -{} edges ({} nodes touched)\n",
        delta.added_nodes(),
        delta.added_edges().len(),
        delta.removed_edges().len(),
        delta.touched_nodes(),
    ));

    let policy = match policy_name.as_str() {
        "warm" => DeltaPolicy::WarmRefresh(wcfg),
        "invalidate" => DeltaPolicy::Invalidate,
        other => return Err(format!("unknown policy '{other}' (use warm or invalidate)")),
    };
    let t1 = std::time::Instant::now();
    let rep = registry
        .apply_delta(&name, &delta, &policy)
        .map_err(|e| e.to_string())?;
    let update_ms = t1.elapsed().as_secs_f64() * 1e3;
    report.push_str(&format!(
        "update applied in {update_ms:.1} ms: n = {}, m = {}; {} refreshed, {} invalidated\n",
        rep.n, rep.m, rep.refreshed, rep.invalidated,
    ));
    if rep.refreshed > 0 {
        report.push_str(&format!(
            "warm rounds to recovery = {} vs cold T = {} ({:.1}x fewer rounds{})\n",
            rep.warm_rounds,
            cfg.rounds.count(),
            cfg.rounds.count() as f64 / (rep.warm_rounds.max(1)) as f64,
            if rep.unconverged > 0 {
                ", hit round cap"
            } else {
                ""
            },
        ));
    }

    if !no_cold && rep.refreshed > 0 {
        // Reference: what a cold run on the mutated graph would cost,
        // and how closely the warm labelling agrees with it.
        let patched = registry.graph(&name).map_err(|e| e.to_string())?;
        let t2 = std::time::Instant::now();
        let cold2 = cluster(&patched, &cfg).map_err(|e| e.to_string())?;
        let cold2_ms = t2.elapsed().as_secs_f64() * 1e3;
        let warm_out = registry
            .cached(&name, &cfg)
            .ok_or("warm-refreshed output missing from cache")?;
        let ari =
            lbc_eval::adjusted_rand_index(cold2.partition.labels(), warm_out.partition.labels());
        report.push_str(&format!(
            "cold re-cluster reference: {cold2_ms:.1} ms for {} rounds; \
             warm vs cold agreement ARI = {ari:.4}\n",
            cold2.rounds,
        ));
        report.push_str(&format!(
            "wall-clock: warm update {update_ms:.1} ms vs cold re-cluster {cold2_ms:.1} ms\n"
        ));
    }
    report.push_str(&render_cache_line(&registry));
    Ok(report)
}

/// Split the leading non-`--` arguments off as positionals.
fn split_positionals(rest: &[String]) -> (Vec<String>, &[String]) {
    let cut = rest
        .iter()
        .position(|a| a.starts_with("--"))
        .unwrap_or(rest.len());
    (rest[..cut].to_vec(), &rest[cut..])
}

/// `lbc save <graph-file> <dir>`: cluster the graph and persist the
/// dataset (graph CSR + cached output, bit-for-bit) as a binary
/// snapshot in `<dir>`, ready for `lbc load` / `serve-bench --store`.
fn cmd_save(rest: &[String]) -> Result<String, String> {
    let (pos, flags) = split_positionals(rest);
    let [graph_path, dir] = pos.as_slice() else {
        return Err("usage: lbc save <graph-file> <store-dir> [--name N] [--beta B] …".into());
    };
    let a = Args::parse(flags, &[])?;
    let name = a.get("name").unwrap_or_else(|| graph_path.clone());
    let k_hint: usize = a.get_or("k", 4)?;
    let g = load_graph(graph_path)?;
    let cfg = serving_config(&a, &g, k_hint)?;
    a.reject_unknown()?;

    let registry = Registry::with_capacity(4);
    registry
        .attach_store(dir, SpillPolicy::OnInsert)
        .map_err(|e| e.to_string())?;
    registry.insert_graph(&name, g);
    let t0 = std::time::Instant::now();
    let out = registry
        .get_or_cluster(&name, &cfg)
        .map_err(|e| e.to_string())?;
    let cluster_ms = t0.elapsed().as_secs_f64() * 1e3;
    // The insert already spilled (write-through policy); spill again
    // explicitly so any I/O error surfaces here rather than being
    // swallowed by the best-effort hook.
    let bytes = registry.spill_to_store(&name).map_err(|e| e.to_string())?;
    Ok(format!(
        "dataset '{name}': n = {}, m = {}; clustered in {cluster_ms:.1} ms \
         ({} seeds, {} clusters, T = {})\n\
         snapshot -> {dir} ({bytes} bytes, checksummed binary, empty wal)\n",
        out.partition.n(),
        registry.graph(&name).map_err(|e| e.to_string())?.m(),
        out.seeds.len(),
        out.partition.k(),
        cfg.rounds.count(),
    ))
}

/// `lbc load <dir>`: boot every dataset in the store (snapshot + WAL
/// replay through the deterministic warm start) into a fresh registry.
/// `--verify` re-clusters each recovered `(graph, config)` pair cold
/// and asserts the recovered output is **bit-for-bit** identical —
/// valid only for clean (empty-WAL) stores, where the snapshot holds
/// cold outputs.
fn cmd_load(rest: &[String]) -> Result<String, String> {
    let (pos, flags) = split_positionals(rest);
    let [dir] = pos.as_slice() else {
        return Err("usage: lbc load <store-dir> [--verify]".into());
    };
    let a = Args::parse(flags, &["verify"])?;
    let verify = a.has("verify");
    a.reject_unknown()?;

    // Effectively unbounded: the boot must never LRU-evict recovered
    // outputs, or --verify would report a healthy store as drifted.
    let registry = Registry::with_capacity(usize::MAX);
    registry
        .attach_store(dir, SpillPolicy::OnEvict)
        .map_err(|e| e.to_string())?;
    let t0 = std::time::Instant::now();
    let boots = registry.boot_all_from_store().map_err(|e| e.to_string())?;
    let boot_ms = t0.elapsed().as_secs_f64() * 1e3;
    if boots.is_empty() {
        return Err(format!("store '{dir}' holds no datasets"));
    }
    let mut report = format!(
        "booted {} dataset(s) from '{dir}' in {boot_ms:.1} ms\n",
        boots.len()
    );
    for b in &boots {
        report.push_str(&format!(
            "dataset '{}': n = {}, m = {}; {} cached outputs, \
             {} wal records replayed, warm rounds = {}\n",
            b.dataset, b.n, b.m, b.entries, b.wal_records, b.warm_rounds,
        ));
        if verify {
            if b.wal_records > 0 {
                return Err(format!(
                    "--verify requires an empty wal (dataset '{}' replayed {} records; \
                     warm-started outputs differ from cold runs by design)",
                    b.dataset, b.wal_records
                ));
            }
            let graph = registry.graph(&b.dataset).map_err(|e| e.to_string())?;
            for cfg in &b.configs {
                let recovered = registry
                    .cached(&b.dataset, cfg)
                    .ok_or_else(|| format!("recovered output missing for '{}'", b.dataset))?;
                let cold = cluster(&graph, cfg).map_err(|e| e.to_string())?;
                verify_bit_identical(&cold, &recovered)
                    .map_err(|e| format!("dataset '{}': {e}", b.dataset))?;
            }
            report.push_str(&format!(
                "verified bit-for-bit: {} output(s) identical to a cold re-cluster, \
                 zero warm rounds\n",
                b.configs.len()
            ));
        }
    }
    report.push_str(&render_cache_line(&registry));
    Ok(report)
}

/// Compare a recovered output against a reference with every `f64`
/// checked by bit pattern (the shared [`lbc_core::ClusterOutput::bit_diff`]
/// standard, same as the warm-start identity tests).
fn verify_bit_identical(
    reference: &lbc_core::ClusterOutput,
    recovered: &lbc_core::ClusterOutput,
) -> Result<(), String> {
    match reference.bit_diff(recovered) {
        None => Ok(()),
        Some(diff) => Err(format!(
            "recovered output drifted from cold re-cluster: {diff}"
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn raw(xs: &[&str]) -> Vec<String> {
        xs.iter().map(|s| s.to_string()).collect()
    }

    fn tmp(name: &str) -> String {
        let dir = std::env::temp_dir().join("lbc-cli-tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name).to_string_lossy().into_owned()
    }

    #[test]
    fn gen_cluster_eval_roundtrip() {
        let g = tmp("g1.txt");
        let t = tmp("t1.txt");
        let l = tmp("l1.txt");
        let r = run(&raw(&[
            "gen",
            "--family",
            "ring",
            "--k",
            "3",
            "--size",
            "20",
            "--out",
            &g,
            "--labels-out",
            &t,
        ]))
        .unwrap();
        assert!(r.contains("n = 60"));
        let r = run(&raw(&[
            "cluster", "--graph", &g, "--beta", "0.33", "--rounds", "80", "--seed", "3", "--out",
            &l, "--truth", &t,
        ]))
        .unwrap();
        assert!(r.contains("seeds ="), "{r}");
        let r = run(&raw(&["eval", "--truth", &t, "--found", &l, "--graph", &g])).unwrap();
        assert!(r.contains("acc"), "{r}");
    }

    #[test]
    fn distributed_flag_reports_traffic() {
        let g = tmp("g2.txt");
        run(&raw(&[
            "gen", "--family", "ring", "--k", "2", "--size", "12", "--out", &g,
        ]))
        .unwrap();
        let r = run(&raw(&[
            "cluster",
            "--graph",
            &g,
            "--beta",
            "0.5",
            "--rounds",
            "30",
            "--distributed",
        ]))
        .unwrap();
        assert!(r.contains("words"), "{r}");
    }

    #[test]
    fn spectrum_and_stats() {
        let g = tmp("g3.txt");
        run(&raw(&[
            "gen",
            "--family",
            "regular",
            "--k",
            "2",
            "--size",
            "20",
            "--d-in",
            "6",
            "--bridges",
            "2",
            "--out",
            &g,
        ]))
        .unwrap();
        let r = run(&raw(&["spectrum", "--graph", &g, "--top", "3"])).unwrap();
        assert!(r.contains("λ_1"), "{r}");
        assert!(r.contains("suggested T"), "{r}");
        let r = run(&raw(&["stats", "--graph", &g])).unwrap();
        assert!(r.contains("connected = true"), "{r}");
    }

    #[test]
    fn all_families_generate() {
        for (family, extra) in [
            (
                "planted",
                vec![
                    "--k", "2", "--block", "10", "--p-in", "0.5", "--p-out", "0.05",
                ],
            ),
            (
                "dumbbell",
                vec!["--half", "10", "--d", "4", "--bridges", "2"],
            ),
            ("ba", vec!["--n", "30", "--m", "2"]),
            ("ws", vec!["--n", "30", "--k-half", "2", "--p", "0.1"]),
            (
                "lfr",
                vec![
                    "--n",
                    "60",
                    "--k",
                    "3",
                    "--tau",
                    "1.5",
                    "--min-size",
                    "10",
                    "--p-in",
                    "0.4",
                    "--p-out",
                    "0.02",
                ],
            ),
        ] {
            let g = tmp(&format!("g_{family}.txt"));
            let mut args = raw(&["gen", "--family", family, "--out", &g]);
            args.extend(raw(&extra));
            let r = run(&args).unwrap_or_else(|e| panic!("{family}: {e}"));
            assert!(r.contains("generated"), "{family}: {r}");
        }
    }

    #[test]
    fn errors_are_reported() {
        assert!(run(&raw(&["bogus"])).is_err());
        assert!(run(&raw(&["gen", "--family", "nope", "--out", "/tmp/x"])).is_err());
        assert!(run(&raw(&[
            "cluster",
            "--graph",
            "/nonexistent",
            "--beta",
            "0.5"
        ]))
        .is_err());
        // ba has no ground truth.
        let g = tmp("g4.txt");
        assert!(run(&raw(&[
            "gen",
            "--family",
            "ba",
            "--n",
            "30",
            "--m",
            "2",
            "--out",
            &g,
            "--labels-out",
            &tmp("t4.txt"),
        ]))
        .is_err());
        // Unknown flag.
        assert!(run(&raw(&["stats", "--graph", &g, "--wat", "1"])).is_err());
    }

    #[test]
    fn query_rule_parsing() {
        assert!(matches!(
            parse_query("paper"),
            Ok(QueryRule::PaperThreshold)
        ));
        assert!(matches!(parse_query("argmax"), Ok(QueryRule::ArgMax)));
        assert!(matches!(
            parse_query("scaled:1.5"),
            Ok(QueryRule::ScaledThreshold(c)) if (c - 1.5).abs() < 1e-12
        ));
        assert!(parse_query("other").is_err());
        assert!(parse_query("scaled:x").is_err());
    }

    #[test]
    fn help_is_available() {
        assert!(run(&raw(&["help"])).unwrap().contains("USAGE"));
    }

    #[test]
    fn serve_bench_reports_throughput_and_percentiles() {
        // Acceptance: ≥ 100k queries against a cached clustering on a
        // ≥ 4-thread pool, with throughput and p50/p95/p99 printed.
        let r = run(&raw(&[
            "serve-bench",
            "--family",
            "ring",
            "--k",
            "3",
            "--size",
            "24",
            "--rounds",
            "60",
            "--threads",
            "4",
            "--ops",
            "100000",
            "--batch",
            "64",
        ]))
        .unwrap();
        assert!(r.contains("4-thread pool"), "{r}");
        assert!(r.contains("throughput ="), "{r}");
        for pct in ["p50", "p95", "p99"] {
            assert!(r.contains(pct), "missing {pct}: {r}");
        }
        let ops: u64 = r
            .lines()
            .find(|l| l.starts_with("ops = "))
            .and_then(|l| l.split_whitespace().nth(2))
            .and_then(|w| w.parse().ok())
            .unwrap_or_else(|| panic!("no ops line in: {r}"));
        assert!(ops >= 100_000, "served only {ops} queries");
    }

    #[test]
    fn serve_bench_on_a_graph_file() {
        let g = tmp("g_serve.txt");
        run(&raw(&[
            "gen", "--family", "ring", "--k", "2", "--size", "16", "--out", &g,
        ]))
        .unwrap();
        let r = run(&raw(&[
            "serve-bench",
            "--graph",
            &g,
            "--beta",
            "0.5",
            "--rounds",
            "40",
            "--threads",
            "2",
            "--ops",
            "5000",
        ]))
        .unwrap();
        assert!(r.contains("throughput ="), "{r}");
        assert!(r.contains("cache: "), "{r}");
    }

    #[test]
    fn jobs_renders_a_sharded_table() {
        let r = run(&raw(&[
            "jobs",
            "--family",
            "ring",
            "--k",
            "2",
            "--size",
            "16",
            "--rounds",
            "30",
            "--jobs",
            "6",
            "--threads",
            "3",
        ]))
        .unwrap();
        assert!(r.contains("6 clustering jobs"), "{r}");
        assert!(r.contains("on 3 workers"), "{r}");
        // All six rows present and done.
        assert_eq!(r.matches(" done ").count(), 6, "{r}");
        assert!(r.contains("failures = 0"), "{r}");
        assert!(r.contains("parallel speedup"), "{r}");
    }

    #[test]
    fn serve_bench_zipf_popularity() {
        let r = run(&raw(&[
            "serve-bench",
            "--family",
            "ring",
            "--k",
            "2",
            "--size",
            "16",
            "--rounds",
            "30",
            "--threads",
            "2",
            "--ops",
            "4000",
            "--zipf",
            "1.1",
        ]))
        .unwrap();
        assert!(r.contains("zipf(s = 1.1)"), "{r}");
        assert!(r.contains("throughput ="), "{r}");
        assert!(run(&raw(&["serve-bench", "--zipf", "-1"])).is_err());
    }

    #[test]
    fn serve_and_repl_flag_validation() {
        // --follow plus --repl-listen is a follower that can serve
        // replication after winning a failover; it still needs a live
        // primary to sync from first.
        let e = run(&raw(&[
            "serve",
            "--listen",
            "127.0.0.1:0",
            "--repl-listen",
            "127.0.0.1:0",
            "--follow",
            "127.0.0.1:1",
        ]))
        .unwrap_err();
        assert!(e.contains("cannot sync from"), "{e}");
        let e = run(&raw(&[
            "serve",
            "--listen",
            "127.0.0.1:0",
            "--repl-addr-file",
            "/tmp/x",
        ]))
        .unwrap_err();
        assert!(e.contains("needs --repl-listen"), "{e}");
        // A follower needs a live primary to sync from.
        let e = run(&raw(&[
            "serve",
            "--listen",
            "127.0.0.1:0",
            "--follow",
            "127.0.0.1:1",
        ]))
        .unwrap_err();
        assert!(e.contains("cannot sync from"), "{e}");
    }

    #[test]
    fn net_bench_rejects_bad_zipf() {
        let e = run(&raw(&[
            "net-bench",
            "--connect",
            "127.0.0.1:1",
            "--zipf",
            "-0.5",
        ]))
        .unwrap_err();
        assert!(e.contains("--zipf must be finite"), "{e}");
    }

    #[test]
    fn repl_status_requires_connect_and_a_listener() {
        assert!(run(&raw(&["repl-status"])).is_err());
        let e = run(&raw(&["repl-status", "--connect", "127.0.0.1:1"])).unwrap_err();
        assert!(e.contains("cannot connect"), "{e}");
    }

    #[test]
    fn stats_connect_mode_flags() {
        // Dead port: typed connection error, not a hang or panic.
        let e = run(&raw(&["stats", "--connect", "127.0.0.1:1"])).unwrap_err();
        assert!(e.contains("cannot connect"), "{e}");
        // The snapshot switches belong to --connect mode only; in
        // --graph mode they are unknown flags.
        assert!(run(&raw(&["stats", "--graph", "g.txt", "--events"])).is_err());
        // Neither --graph nor --connect: the usual missing-flag error.
        assert!(run(&raw(&["stats"])).is_err());
    }

    #[test]
    fn stats_snapshot_renders_counters_hists_and_events() {
        let obs = lbc_obs::Obs::new();
        obs.counter("cache_hits_total").add(41);
        obs.gauge("worker_queue_depth").set(3);
        let h = obs.histogram("batch_ns");
        for v in [100, 200, 400, 800] {
            h.record(v);
        }
        obs.events
            .record(lbc_obs::EventKind::RoleChange, "follower->promoted");
        let snap = obs.snapshot(16);
        let r = render_stats("127.0.0.1:9", &snap, true);
        assert!(r.contains("cache_hits_total 41"), "{r}");
        assert!(r.contains("worker_queue_depth 3"), "{r}");
        assert!(r.contains("batch_ns: count 4"), "{r}");
        assert!(r.contains("max 800"), "{r}");
        assert!(r.contains("RoleChange: follower->promoted"), "{r}");
        // Empty snapshot says so instead of printing a bare header.
        let empty = lbc_obs::Obs::new().snapshot(0);
        let r = render_stats("x", &empty, false);
        assert!(r.contains("no metrics registered"), "{r}");
    }

    #[test]
    fn jobs_prints_cache_stats() {
        let r = run(&raw(&[
            "jobs",
            "--family",
            "ring",
            "--k",
            "2",
            "--size",
            "16",
            "--rounds",
            "20",
            "--jobs",
            "3",
            "--threads",
            "2",
        ]))
        .unwrap();
        assert!(r.contains("cache: "), "{r}");
        assert!(r.contains("words pinned"), "{r}");
        assert!(r.contains("warm refreshes"), "{r}");
    }

    #[test]
    fn update_with_flips_recovers_warm() {
        let r = run(&raw(&[
            "update", "--family", "planted", "--k", "3", "--block", "40", "--p-in", "0.4",
            "--p-out", "0.01", "--beta", "0.33", "--rounds", "80", "--seed", "2", "--flips", "4",
        ]))
        .unwrap();
        assert!(r.contains("+4 edges, -4 edges"), "{r}");
        assert!(r.contains("1 refreshed, 0 invalidated"), "{r}");
        assert!(r.contains("warm rounds to recovery ="), "{r}");
        assert!(r.contains("ARI ="), "{r}");
        assert!(r.contains("warm refreshes"), "{r}");
        // Acceptance: the printed recovery beats the cold T.
        let warm_rounds: usize = r
            .lines()
            .find(|l| l.starts_with("warm rounds to recovery"))
            .and_then(|l| l.split_whitespace().nth(5))
            .and_then(|w| w.parse().ok())
            .unwrap_or_else(|| panic!("no warm rounds line in: {r}"));
        assert!(warm_rounds < 80, "warm took {warm_rounds} rounds");
    }

    #[test]
    fn update_from_a_delta_file_with_invalidate_policy() {
        let g = tmp("g_upd.txt");
        run(&raw(&[
            "gen", "--family", "ring", "--k", "2", "--size", "12", "--out", &g,
        ]))
        .unwrap();
        // Add one edge between the cliques (0 and 12 are in different
        // cliques; they may already be bridged — use fresh node ids).
        let d = tmp("d_upd.txt");
        std::fs::write(&d, "2 1 0\n+ 24 25\n").unwrap();
        let r = run(&raw(&[
            "update",
            "--graph",
            &g,
            "--beta",
            "0.5",
            "--rounds",
            "30",
            "--delta",
            &d,
            "--policy",
            "invalidate",
        ]))
        .unwrap();
        assert!(r.contains("+2 nodes, +1 edges, -0 edges"), "{r}");
        assert!(r.contains("0 refreshed, 1 invalidated"), "{r}");
        assert!(!r.contains("warm rounds to recovery"), "{r}");
    }

    #[test]
    fn update_flag_errors() {
        // Delta source is required and exclusive.
        assert!(run(&raw(&["update", "--family", "ring"])).is_err());
        assert!(run(&raw(&[
            "update",
            "--family",
            "ring",
            "--flips",
            "2",
            "--delta",
            "/nonexistent",
        ]))
        .is_err());
        // Unknown policy.
        assert!(run(&raw(&[
            "update", "--family", "ring", "--flips", "2", "--policy", "lukewarm",
        ]))
        .is_err());
        // Out-of-range warm-start knobs are usage errors, not panics.
        for (flag, bad) in [
            ("--patience", "0"),
            ("--min-decay", "1.0"),
            ("--max-warm-rounds", "0"),
            ("--tolerance", "-0.5"),
        ] {
            let e = run(&raw(&[
                "update", "--family", "ring", "--flips", "2", flag, bad,
            ]))
            .unwrap_err();
            assert!(e.contains("must"), "{flag}: {e}");
        }
        // A delta referencing nodes outside the graph surfaces the
        // graph error through the registry.
        let d = tmp("d_bad.txt");
        std::fs::write(&d, "0 1 0\n+ 900 901\n").unwrap();
        let e = run(&raw(&[
            "update", "--family", "ring", "--k", "2", "--size", "10", "--rounds", "20", "--delta",
            &d,
        ]))
        .unwrap_err();
        assert!(e.contains("out of range"), "{e}");
    }

    fn tmp_store_dir(tag: &str) -> String {
        let dir = std::env::temp_dir()
            .join("lbc-cli-store-tests")
            .join(format!("{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir.to_string_lossy().into_owned()
    }

    #[test]
    fn save_then_load_round_trips_bit_for_bit() {
        let g = tmp("g_save.txt");
        run(&raw(&[
            "gen", "--family", "planted", "--k", "3", "--block", "20", "--p-in", "0.4", "--p-out",
            "0.02", "--out", &g,
        ]))
        .unwrap();
        let dir = tmp_store_dir("save-load");
        let r = run(&raw(&[
            "save", &g, &dir, "--name", "pp", "--beta", "0.33", "--rounds", "60", "--seed", "4",
        ]))
        .unwrap();
        assert!(r.contains("dataset 'pp'"), "{r}");
        assert!(r.contains("snapshot ->"), "{r}");
        assert!(r.contains("bytes"), "{r}");
        // Fresh "process": a new registry boots from disk and verifies
        // against a cold re-cluster, every f64 by bit pattern.
        let r = run(&raw(&["load", &dir, "--verify"])).unwrap();
        assert!(r.contains("dataset 'pp'"), "{r}");
        assert!(r.contains("0 wal records replayed, warm rounds = 0"), "{r}");
        assert!(r.contains("verified bit-for-bit"), "{r}");
        assert!(r.contains("store: "), "{r}");
    }

    #[test]
    fn serve_bench_warm_boots_from_a_store() {
        let g = tmp("g_store_serve.txt");
        run(&raw(&[
            "gen", "--family", "ring", "--k", "2", "--size", "16", "--out", &g,
        ]))
        .unwrap();
        let dir = tmp_store_dir("serve");
        // First run: nothing in the store, clusters and spills.
        let r = run(&raw(&[
            "serve-bench",
            "--graph",
            &g,
            "--beta",
            "0.5",
            "--rounds",
            "40",
            "--threads",
            "2",
            "--ops",
            "4000",
            "--store",
            &dir,
        ]))
        .unwrap();
        assert!(!r.contains("warm boot"), "{r}");
        assert!(r.contains("store: "), "{r}");
        assert!(r.contains("hit ratio"), "{r}");
        // Second run: warm boot, the clustering is a cache hit.
        let r = run(&raw(&[
            "serve-bench",
            "--graph",
            &g,
            "--beta",
            "0.5",
            "--rounds",
            "40",
            "--threads",
            "2",
            "--ops",
            "4000",
            "--store",
            &dir,
        ]))
        .unwrap();
        assert!(r.contains("warm boot from store"), "{r}");
        assert!(r.contains("0 wal records replayed"), "{r}");
        assert!(r.contains("throughput ="), "{r}");
    }

    #[test]
    fn save_load_flag_errors() {
        // Missing positionals.
        assert!(run(&raw(&["save"])).is_err());
        assert!(run(&raw(&["save", "/nonexistent"])).is_err());
        assert!(run(&raw(&["load"])).is_err());
        // Nonexistent graph file.
        let dir = tmp_store_dir("errors");
        assert!(run(&raw(&["save", "/nonexistent", &dir])).is_err());
        // Empty store.
        assert!(run(&raw(&["load", &dir])).is_err());
        // Unknown flag.
        let g = tmp("g_save_err.txt");
        run(&raw(&[
            "gen", "--family", "ring", "--k", "2", "--size", "10", "--out", &g,
        ]))
        .unwrap();
        assert!(run(&raw(&["save", &g, &dir, "--wat", "1"])).is_err());
    }

    #[test]
    fn serving_flag_errors() {
        // Mutually exclusive dataset sources.
        assert!(run(&raw(&[
            "serve-bench",
            "--graph",
            "/nonexistent",
            "--family",
            "ring",
        ]))
        .is_err());
        // Unknown family.
        assert!(run(&raw(&["serve-bench", "--family", "nope"])).is_err());
        // Zero jobs rejected.
        assert!(run(&raw(&["jobs", "--jobs", "0"])).is_err());
        // Zero thread/client/op/batch counts rejected, not panicking.
        for flag in ["threads", "clients", "ops", "batch", "cache"] {
            let e = run(&raw(&["serve-bench", &format!("--{flag}"), "0"])).unwrap_err();
            assert!(e.contains("must be positive"), "{flag}: {e}");
        }
        assert!(run(&raw(&["jobs", "--threads", "0"])).is_err());
    }
}
