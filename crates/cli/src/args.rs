//! Minimal flag parser for the `lbc` binary.
//!
//! Deliberately dependency-free (the workspace's external crates are
//! pinned to the algorithmic allowlist): flags are `--name value` pairs
//! plus boolean switches, with typed accessors and an
//! unknown-flag check.

use std::collections::BTreeMap;

/// Parsed `--flag value` / `--switch` arguments.
#[derive(Debug, Clone, Default)]
pub struct Args {
    values: BTreeMap<String, String>,
    switches: Vec<String>,
    consumed: std::cell::RefCell<Vec<String>>,
}

impl Args {
    /// Parse raw arguments. `switch_names` lists the boolean flags (no
    /// value follows them); everything else starting with `--` expects a
    /// value.
    pub fn parse(raw: &[String], switch_names: &[&str]) -> Result<Self, String> {
        let mut values = BTreeMap::new();
        let mut switches = Vec::new();
        let mut i = 0usize;
        while i < raw.len() {
            let a = &raw[i];
            let Some(name) = a.strip_prefix("--") else {
                return Err(format!("unexpected positional argument '{a}'"));
            };
            if switch_names.contains(&name) {
                switches.push(name.to_string());
                i += 1;
            } else {
                let Some(v) = raw.get(i + 1) else {
                    return Err(format!("flag --{name} expects a value"));
                };
                values.insert(name.to_string(), v.clone());
                i += 2;
            }
        }
        Ok(Args {
            values,
            switches,
            consumed: std::cell::RefCell::new(Vec::new()),
        })
    }

    /// Required string flag.
    pub fn require(&self, name: &str) -> Result<String, String> {
        self.consumed.borrow_mut().push(name.to_string());
        self.values
            .get(name)
            .cloned()
            .ok_or_else(|| format!("missing required flag --{name}"))
    }

    /// Optional string flag.
    pub fn get(&self, name: &str) -> Option<String> {
        self.consumed.borrow_mut().push(name.to_string());
        self.values.get(name).cloned()
    }

    /// Optional typed flag with default.
    pub fn get_or<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, String>
    where
        T::Err: std::fmt::Display,
    {
        match self.get(name) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|e| format!("flag --{name}: invalid value '{v}' ({e})")),
        }
    }

    /// Required typed flag.
    pub fn require_as<T: std::str::FromStr>(&self, name: &str) -> Result<T, String>
    where
        T::Err: std::fmt::Display,
    {
        let v = self.require(name)?;
        v.parse()
            .map_err(|e| format!("flag --{name}: invalid value '{v}' ({e})"))
    }

    /// Whether a boolean switch was given.
    pub fn has(&self, name: &str) -> bool {
        self.consumed.borrow_mut().push(name.to_string());
        self.switches.iter().any(|s| s == name)
    }

    /// Error on flags nobody asked about (typo protection). Call after
    /// all accessors.
    pub fn reject_unknown(&self) -> Result<(), String> {
        let consumed = self.consumed.borrow();
        for k in self.values.keys() {
            if !consumed.contains(k) {
                return Err(format!("unknown flag --{k}"));
            }
        }
        for s in &self.switches {
            if !consumed.contains(s) {
                return Err(format!("unknown switch --{s}"));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn raw(xs: &[&str]) -> Vec<String> {
        xs.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parses_values_and_switches() {
        let a = Args::parse(
            &raw(&["--n", "100", "--verbose", "--seed", "7"]),
            &["verbose"],
        )
        .unwrap();
        assert_eq!(a.require("n").unwrap(), "100");
        assert_eq!(a.require_as::<u64>("seed").unwrap(), 7);
        assert!(a.has("verbose"));
        assert!(!a.has("quiet"));
        assert!(a.reject_unknown().is_ok());
    }

    #[test]
    fn missing_value_is_error() {
        assert!(Args::parse(&raw(&["--n"]), &[]).is_err());
        assert!(Args::parse(&raw(&["oops"]), &[]).is_err());
    }

    #[test]
    fn missing_required_flag() {
        let a = Args::parse(&raw(&[]), &[]).unwrap();
        assert!(a.require("graph").is_err());
        assert_eq!(a.get_or("rounds", 5usize).unwrap(), 5);
    }

    #[test]
    fn bad_typed_value() {
        let a = Args::parse(&raw(&["--n", "banana"]), &[]).unwrap();
        assert!(a.require_as::<usize>("n").is_err());
        assert!(a.get_or("n", 0usize).is_err());
    }

    #[test]
    fn unknown_flags_rejected() {
        let a = Args::parse(&raw(&["--tpyo", "1"]), &[]).unwrap();
        let _ = a.get("n");
        assert!(a.reject_unknown().is_err());
    }
}
