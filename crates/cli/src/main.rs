//! `lbc` — command-line front end. See [`lbc_cli::USAGE`].

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match lbc_cli::run(&argv) {
        Ok(report) => print!("{report}"),
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    }
}
