//! End-to-end: a real `lbc serve` child process, real TCP clients.
//!
//! 1. Spawn the `lbc` binary serving a deterministic generated dataset
//!    and discover its port through `--addr-file`.
//! 2. Connect several clients; verify batched query answers
//!    **bit-for-bit** against an in-process `QueryEngine` over the same
//!    `(dataset, config)` — the network layer must be a transparent
//!    window onto the same clustering.
//! 3. `kill -9` the server; every client must surface a clean, typed
//!    disconnect error (no panic, no hang), and reconnecting must fail
//!    with a typed error too.

use std::process::{Child, Command, Stdio};
use std::sync::Arc;
use std::time::{Duration, Instant};

use lbc_core::LbConfig;
use lbc_graph::generators;
use lbc_net::{NetClient, NetError};
use lbc_runtime::{ClusterHandle, Query, Registry};

/// Matches `lbc serve --family ring --k 3 --size 16` name/shape/config
/// derivation in `serving_dataset` / `serving_config` (gen-seed
/// defaults to 42, beta to 1/k).
const K: usize = 3;
const SIZE: usize = 16;
const ROUNDS: usize = 60;
const SEED: u64 = 5;

fn expected_handle() -> ClusterHandle {
    let registry = Registry::with_capacity(4);
    let (g, _) = generators::ring_of_cliques(K, SIZE, 42).unwrap();
    registry.insert_graph("ring", g);
    let cfg = LbConfig::new(1.0 / K as f64, ROUNDS).with_seed(SEED);
    ClusterHandle::new(registry.get_or_cluster("ring", &cfg).unwrap())
}

struct ServerProc {
    child: Child,
    addr: std::net::SocketAddr,
    addr_file: std::path::PathBuf,
}

impl Drop for ServerProc {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
        let _ = std::fs::remove_file(&self.addr_file);
    }
}

fn spawn_server(tag: &str) -> ServerProc {
    let addr_file =
        std::env::temp_dir().join(format!("lbc-serve-e2e-{tag}-{}.addr", std::process::id()));
    let _ = std::fs::remove_file(&addr_file);
    let child = Command::new(env!("CARGO_BIN_EXE_lbc"))
        .args([
            "serve",
            "--listen",
            "127.0.0.1:0",
            "--family",
            "ring",
            "--k",
            &K.to_string(),
            "--size",
            &SIZE.to_string(),
            "--rounds",
            &ROUNDS.to_string(),
            "--seed",
            &SEED.to_string(),
            "--threads",
            "2",
            "--addr-file",
            addr_file.to_str().unwrap(),
        ])
        .stdout(Stdio::null())
        .stderr(Stdio::inherit())
        .spawn()
        .expect("spawn lbc serve");
    // Wait for the resolved address to appear (clustering runs first).
    let deadline = Instant::now() + Duration::from_secs(60);
    let addr = loop {
        if let Ok(text) = std::fs::read_to_string(&addr_file) {
            if let Ok(addr) = text.trim().parse() {
                break addr;
            }
        }
        assert!(
            Instant::now() < deadline,
            "server never wrote its address file"
        );
        std::thread::sleep(Duration::from_millis(25));
    };
    ServerProc {
        child,
        addr,
        addr_file,
    }
}

/// A deterministic spread of queries, including the interesting shapes
/// (same-clique pairs, cross-clique pairs, boundary ids).
fn query_battery(n: u32) -> Vec<Vec<Query>> {
    let mut batches = Vec::new();
    for round in 0..8u32 {
        let mut qs = Vec::new();
        for i in 0..32u32 {
            let a = (i * 7 + round * 13) % n;
            let b = (i * 11 + round * 3) % n;
            qs.push(match i % 4 {
                0 => Query::SameCluster(a, b),
                1 => Query::SameCluster(a, a),
                2 => Query::ClusterOf(b),
                _ => Query::ClusterSize(a),
            });
        }
        // Boundary nodes exactly at the edges of the id space.
        qs.push(Query::ClusterOf(0));
        qs.push(Query::ClusterOf(n - 1));
        qs.push(Query::SameCluster(0, n - 1));
        batches.push(qs);
    }
    batches
}

#[test]
fn child_process_serves_bit_identical_answers_then_dies_cleanly() {
    let server = spawn_server("main");
    let expected = expected_handle();
    let n = expected.n() as u32;

    // N real TCP clients against the child process.
    const CLIENTS: usize = 4;
    let mut clients: Vec<NetClient> = (0..CLIENTS)
        .map(|_| {
            NetClient::connect_timeout(&server.addr, Duration::from_secs(10))
                .expect("connect to child server")
        })
        .collect();

    // Info must describe the very same dataset.
    let info = clients[0].info().unwrap();
    assert_eq!(info.dataset, format!("ring-{K}x{SIZE}"));
    assert_eq!(info.n, expected.n() as u64);
    assert_eq!(info.k, expected.k() as u32);

    // Every batch from every client: answers bit-for-bit equal to the
    // in-process engine's (Answer is a plain enum of u32/bool, so ==
    // is exactly bitwise agreement).
    let battery = query_battery(n);
    for (ci, client) in clients.iter_mut().enumerate() {
        for (bi, qs) in battery.iter().enumerate() {
            let got = client.query_batch(qs).unwrap();
            let want = expected.execute_batch(qs).unwrap();
            assert_eq!(
                got, want,
                "client {ci} batch {bi} diverged from in-process engine"
            );
        }
    }

    // Concurrent load from all clients in parallel threads, still
    // through one reactor.
    std::thread::scope(|scope| {
        let addr = server.addr;
        let expected = &expected;
        for _ in 0..CLIENTS {
            scope.spawn(move || {
                let mut c = NetClient::connect_timeout(&addr, Duration::from_secs(10)).unwrap();
                for qs in query_battery(n) {
                    assert_eq!(
                        c.query_batch(&qs).unwrap(),
                        expected.execute_batch(&qs).unwrap()
                    );
                }
            });
        }
    });

    // kill -9: Child::kill is SIGKILL on unix — no shutdown handler
    // runs, the sockets just die.
    let mut server = server;
    server.child.kill().expect("SIGKILL the server");
    server.child.wait().expect("reap the server");

    // Every client surfaces a clean typed disconnect — not a panic,
    // not a hang, not garbage data.
    for (ci, client) in clients.iter_mut().enumerate() {
        let t0 = Instant::now();
        let mut saw_disconnect = false;
        // The first call after SIGKILL may still succeed if its answer
        // was in flight before the kill; a couple of retries must hit
        // the wall.
        for _ in 0..3 {
            match client.query_batch(&[Query::ClusterOf(0)]) {
                Ok(_) => continue,
                Err(NetError::Disconnected) => {
                    saw_disconnect = true;
                    break;
                }
                Err(other) => panic!("client {ci}: expected Disconnected, got {other:?}"),
            }
        }
        assert!(
            saw_disconnect,
            "client {ci} never observed the server dying"
        );
        assert!(
            t0.elapsed() < Duration::from_secs(10),
            "client {ci} hung on a dead server"
        );
    }

    // Fresh connections are refused with a typed error.
    match NetClient::connect_timeout(&server.addr, Duration::from_secs(5)) {
        Err(NetError::Io(_)) | Err(NetError::Disconnected) => {}
        Ok(_) => panic!("connected to a SIGKILLed server"),
        Err(other) => panic!("unexpected connect error: {other:?}"),
    }
}

#[test]
fn delta_submission_over_the_wire_matches_in_process_recluster() {
    let server = spawn_server("delta");
    let mut client = NetClient::connect_timeout(&server.addr, Duration::from_secs(10)).unwrap();
    let n0 = client.info().unwrap().n;

    // Grow the graph by one node tied into clique 0, over the wire.
    let mut delta = lbc_graph::GraphDelta::new();
    delta.add_nodes(1);
    delta.add_edge(0, n0 as u32);
    delta.add_edge(1, n0 as u32);
    let summary = client.submit_delta(&delta).unwrap();
    assert_eq!(summary.n, n0 + 1);
    assert_eq!(summary.refreshed, 1);

    // The server now answers for the patched graph.
    let info = client.info().unwrap();
    assert_eq!(info.n, n0 + 1);
    let a = client
        .query_batch(&[Query::SameCluster(0, n0 as u32)])
        .unwrap();

    // In-process reference: the same delta through the same registry
    // machinery produces the same labelling, hence the same answer.
    let registry = Arc::new(Registry::with_capacity(4));
    let (g, _) = generators::ring_of_cliques(K, SIZE, 42).unwrap();
    registry.insert_graph("ring", g);
    let cfg = LbConfig::new(1.0 / K as f64, ROUNDS).with_seed(SEED);
    registry.get_or_cluster("ring", &cfg).unwrap();
    registry
        .apply_delta(
            "ring",
            &delta,
            &lbc_runtime::DeltaPolicy::WarmRefresh(Default::default()),
        )
        .unwrap();
    let expected = ClusterHandle::new(registry.cached("ring", &cfg).unwrap());
    let want = expected
        .execute_batch(&[Query::SameCluster(0, n0 as u32)])
        .unwrap();
    assert_eq!(
        a, want,
        "post-delta answer diverged from in-process warm refresh"
    );
}
