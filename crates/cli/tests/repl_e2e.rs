//! Two-node replication end-to-end: real `lbc serve` child processes,
//! real TCP, a real `kill -9`.
//!
//! 1. Spawn a primary (`--repl-listen`) and a follower (`--follow`)
//!    as separate processes; both serve the query protocol.
//! 2. Stream deltas through the primary; wait for the follower's
//!    `applied_seq` to catch up and assert its answers are bit-for-bit
//!    identical to the primary's.
//! 3. `kill -9` the primary. Clients of the primary surface typed
//!    disconnects; the follower detects the death, promotes itself
//!    (deterministic rule), flips to writable, and keeps answering
//!    exactly what the pre-crash primary answered.

use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

use lbc_net::{ErrorCode, NetClient, NetError, Role};
use lbc_runtime::Query;

const K: usize = 3;
const SIZE: usize = 16;
const ROUNDS: usize = 60;
const SEED: u64 = 5;

struct Proc {
    child: Child,
    files: Vec<std::path::PathBuf>,
}

impl Drop for Proc {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
        for f in &self.files {
            let _ = std::fs::remove_file(f);
        }
    }
}

fn addr_path(tag: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("lbc-repl-e2e-{tag}-{}.addr", std::process::id()))
}

fn read_addr(path: &std::path::Path) -> std::net::SocketAddr {
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        if let Ok(text) = std::fs::read_to_string(path) {
            if let Ok(addr) = text.trim().parse() {
                return addr;
            }
        }
        assert!(
            Instant::now() < deadline,
            "no address file at {}",
            path.display()
        );
        std::thread::sleep(Duration::from_millis(25));
    }
}

fn dataset_args() -> Vec<String> {
    [
        "--family",
        "ring",
        "--k",
        &K.to_string(),
        "--size",
        &SIZE.to_string(),
        "--rounds",
        &ROUNDS.to_string(),
        "--seed",
        &SEED.to_string(),
        "--threads",
        "2",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect()
}

fn spawn_primary() -> (Proc, std::net::SocketAddr, std::net::SocketAddr) {
    let addr_file = addr_path("primary");
    let repl_file = addr_path("primary-repl");
    let _ = std::fs::remove_file(&addr_file);
    let _ = std::fs::remove_file(&repl_file);
    let child = Command::new(env!("CARGO_BIN_EXE_lbc"))
        .args(["serve", "--listen", "127.0.0.1:0"])
        .args(dataset_args())
        .args([
            "--repl-listen",
            "127.0.0.1:0",
            "--addr-file",
            addr_file.to_str().unwrap(),
            "--repl-addr-file",
            repl_file.to_str().unwrap(),
        ])
        .stdout(Stdio::null())
        .stderr(Stdio::inherit())
        .spawn()
        .expect("spawn primary");
    let addr = read_addr(&addr_file);
    let repl = read_addr(&repl_file);
    (
        Proc {
            child,
            files: vec![addr_file, repl_file],
        },
        addr,
        repl,
    )
}

fn spawn_follower(repl: std::net::SocketAddr, id: u64) -> (Proc, std::net::SocketAddr) {
    let addr_file = addr_path(&format!("follower-{id}"));
    let _ = std::fs::remove_file(&addr_file);
    let child = Command::new(env!("CARGO_BIN_EXE_lbc"))
        .args(["serve", "--listen", "127.0.0.1:0"])
        .args(dataset_args())
        .args([
            "--follow",
            &repl.to_string(),
            "--follower-id",
            &id.to_string(),
            "--addr-file",
            addr_file.to_str().unwrap(),
        ])
        .stdout(Stdio::null())
        .stderr(Stdio::inherit())
        .spawn()
        .expect("spawn follower");
    let addr = read_addr(&addr_file);
    (
        Proc {
            child,
            files: vec![addr_file],
        },
        addr,
    )
}

fn wait_info(
    addr: &std::net::SocketAddr,
    deadline: Duration,
    mut cond: impl FnMut(&lbc_net::ServerInfo) -> bool,
) -> lbc_net::ServerInfo {
    let start = Instant::now();
    let mut last = None;
    while start.elapsed() < deadline {
        if let Ok(mut c) = NetClient::connect_timeout(addr, Duration::from_secs(5)) {
            if let Ok(info) = c.info() {
                if cond(&info) {
                    return info;
                }
                last = Some(info);
            }
        }
        std::thread::sleep(Duration::from_millis(50));
    }
    panic!("condition never met; last info: {last:?}");
}

fn battery(n: u32) -> Vec<Query> {
    let mut qs = Vec::new();
    for i in 0..64u32 {
        let a = (i * 7) % n;
        let b = (i * 11 + 3) % n;
        qs.push(match i % 4 {
            0 => Query::SameCluster(a, b),
            1 => Query::ClusterOf(a),
            2 => Query::ClusterOf(b),
            _ => Query::ClusterSize(a),
        });
    }
    qs
}

#[test]
fn follower_mirrors_primary_and_promotes_on_kill9() {
    let (mut primary, paddr, prepl) = spawn_primary();
    let (_follower, faddr) = spawn_follower(prepl, 7);

    // The follower came up read-only, serving the adopted dataset.
    let finfo = wait_info(&faddr, Duration::from_secs(60), |i| {
        i.role == Role::Follower
    });
    assert_eq!(finfo.dataset, format!("ring-{K}x{SIZE}"));
    let n0 = finfo.n;

    // Writes bounce off the follower with the typed read-only error.
    let mut fclient = NetClient::connect_timeout(&faddr, Duration::from_secs(10)).unwrap();
    let mut delta = lbc_graph::GraphDelta::new();
    delta.add_edge(0, (n0 - 1) as u32);
    match fclient.submit_delta(&delta) {
        Err(NetError::Server { code, .. }) => {
            assert_eq!(code, ErrorCode::ReadOnly as u16, "wrong error code");
        }
        other => panic!("follower accepted a delta: {other:?}"),
    }

    // Stream three deltas through the primary.
    let mut pclient = NetClient::connect_timeout(&paddr, Duration::from_secs(10)).unwrap();
    for i in 0..3u32 {
        let mut d = lbc_graph::GraphDelta::new();
        d.add_edge(i % 5, (SIZE as u32) + (i % 7));
        pclient.submit_delta(&d).unwrap();
    }
    assert_eq!(pclient.info().unwrap().applied_seq, 3);

    // The follower catches up and answers bit-for-bit what the primary
    // answers.
    wait_info(&faddr, Duration::from_secs(60), |i| i.applied_seq == 3);
    let qs = battery(n0 as u32);
    let pre_crash = pclient.query_batch(&qs).unwrap();
    assert_eq!(
        fclient.query_batch(&qs).unwrap(),
        pre_crash,
        "follower answers diverged from primary"
    );

    // The repl-status probe sees the follower's acked progress.
    let status = Command::new(env!("CARGO_BIN_EXE_lbc"))
        .args(["repl-status", "--connect", &prepl.to_string()])
        .output()
        .expect("run repl-status");
    let status = String::from_utf8_lossy(&status.stdout).to_string();
    assert!(status.contains("role primary"), "{status}");
    assert!(status.contains("follower 7"), "{status}");

    // kill -9 the primary: no shutdown handler runs, sockets just die.
    primary.child.kill().expect("SIGKILL the primary");
    primary.child.wait().expect("reap the primary");

    // Primary clients surface a clean typed disconnect.
    let mut saw_disconnect = false;
    for _ in 0..3 {
        match pclient.query_batch(&[Query::ClusterOf(0)]) {
            Ok(_) => continue,
            Err(NetError::Disconnected) | Err(NetError::Io(_)) => {
                saw_disconnect = true;
                break;
            }
            Err(other) => panic!("expected a disconnect, got {other:?}"),
        }
    }
    assert!(saw_disconnect, "primary death never surfaced to its client");

    // Clients re-resolve to the follower, which promotes itself (sole
    // follower at max applied_seq) and flips to writable.
    let info = wait_info(&faddr, Duration::from_secs(60), |i| {
        i.role == Role::Promoted
    });
    assert_eq!(info.applied_seq, 3);

    // The promoted labelling is exactly the pre-crash primary's.
    let mut c = NetClient::connect_timeout(&faddr, Duration::from_secs(10)).unwrap();
    assert_eq!(
        c.query_batch(&qs).unwrap(),
        pre_crash,
        "promotion changed the served labelling"
    );

    // And the promoted node now accepts writes, continuing the lineage.
    let mut d = lbc_graph::GraphDelta::new();
    d.add_edge(1, (SIZE as u32) + 2);
    let summary = c.submit_delta(&d).unwrap();
    assert_eq!(summary.n, n0);
    assert_eq!(c.info().unwrap().applied_seq, 4);
}

/// Reserve `n` distinct loopback addresses by binding and immediately
/// releasing them — a quorum membership spec needs every node's query
/// address pinned before any process starts.
fn free_addrs(n: usize) -> Vec<std::net::SocketAddr> {
    let listeners: Vec<_> = (0..n)
        .map(|_| std::net::TcpListener::bind("127.0.0.1:0").expect("reserve port"))
        .collect();
    listeners.iter().map(|l| l.local_addr().unwrap()).collect()
}

fn spawn_member(
    id: u64,
    listen: &std::net::SocketAddr,
    members: &str,
    follow: Option<&std::net::SocketAddr>,
) -> (Proc, std::path::PathBuf) {
    // Every member pre-binds a replication listener: the file only
    // appears once the node actually replicates (at boot for the
    // primary, at promotion for a follower that wins an election).
    let repl_file = addr_path(&format!("member-{id}-repl"));
    let _ = std::fs::remove_file(&repl_file);
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_lbc"));
    cmd.args(["serve", "--listen", &listen.to_string()])
        .args(dataset_args())
        .args([
            "--repl-listen",
            "127.0.0.1:0",
            "--repl-addr-file",
            repl_file.to_str().unwrap(),
            "--members",
            members,
            "--follower-id",
            &id.to_string(),
        ]);
    if let Some(f) = follow {
        cmd.args(["--follow", &f.to_string()]);
    }
    let child = cmd
        .stdout(Stdio::null())
        .stderr(Stdio::inherit())
        .spawn()
        .expect("spawn member");
    (
        Proc {
            child,
            files: vec![repl_file.clone()],
        },
        repl_file,
    )
}

#[test]
fn three_node_quorum_elects_exactly_one_writer_on_kill9() {
    let addrs = free_addrs(3);
    let members = format!("1@{},2@{},3@{}", addrs[0], addrs[1], addrs[2]);

    let (mut primary, prepl_file) = spawn_member(1, &addrs[0], &members, None);
    let prepl = read_addr(&prepl_file);
    let (_f2, repl_file_2) = spawn_member(2, &addrs[1], &members, Some(&prepl));
    let (_f3, repl_file_3) = spawn_member(3, &addrs[2], &members, Some(&prepl));

    // Both followers adopt the dataset and report the fixed electorate.
    for addr in [&addrs[1], &addrs[2]] {
        let info = wait_info(addr, Duration::from_secs(60), |i| i.role == Role::Follower);
        assert_eq!(info.member_count, 3, "membership not carried to {addr}");
    }

    // Stream three deltas; both followers converge bit-for-bit.
    let mut pclient = NetClient::connect_timeout(&addrs[0], Duration::from_secs(10)).unwrap();
    let n0 = pclient.info().unwrap().n;
    for i in 0..3u32 {
        let mut d = lbc_graph::GraphDelta::new();
        d.add_edge(i % 5, (SIZE as u32) + (i % 7));
        pclient.submit_delta(&d).unwrap();
    }
    let qs = battery(n0 as u32);
    let pre_crash = pclient.query_batch(&qs).unwrap();
    for addr in [&addrs[1], &addrs[2]] {
        wait_info(addr, Duration::from_secs(60), |i| i.applied_seq == 3);
        let mut c = NetClient::connect_timeout(addr, Duration::from_secs(10)).unwrap();
        assert_eq!(c.query_batch(&qs).unwrap(), pre_crash, "{addr} diverged");
    }

    // kill -9 the primary. Two of three members survive — a strict
    // majority — so exactly one of them must win promotion and the
    // other must re-follow the winner.
    primary.child.kill().expect("SIGKILL the primary");
    primary.child.wait().expect("reap the primary");

    let deadline = Instant::now() + Duration::from_secs(120);
    let (winner, loser) = 'found: loop {
        assert!(Instant::now() < deadline, "no survivor promoted");
        for (w, l) in [(&addrs[1], &addrs[2]), (&addrs[2], &addrs[1])] {
            if let Ok(mut c) = NetClient::connect_timeout(w, Duration::from_secs(5)) {
                if let Ok(info) = c.info() {
                    if info.role == Role::Promoted {
                        break 'found (*w, *l);
                    }
                }
            }
        }
        std::thread::sleep(Duration::from_millis(50));
    };

    // The loser re-follows the winner and drops back to read-only;
    // the winner serves the pre-crash answers unchanged.
    wait_info(&loser, Duration::from_secs(60), |i| {
        i.role == Role::Follower && i.applied_seq == 3
    });
    let mut wc = NetClient::connect_timeout(&winner, Duration::from_secs(10)).unwrap();
    let mut lc = NetClient::connect_timeout(&loser, Duration::from_secs(10)).unwrap();
    assert_eq!(wc.query_batch(&qs).unwrap(), pre_crash, "winner diverged");
    assert_eq!(lc.query_batch(&qs).unwrap(), pre_crash, "loser diverged");

    // Exactly one writer: the loser refuses, the winner extends the
    // lineage, and the loser's re-follow stream carries the new record.
    let mut d = lbc_graph::GraphDelta::new();
    d.add_edge(1, (SIZE as u32) + 2);
    match lc.submit_delta(&d) {
        Err(NetError::Server { code, .. }) => {
            assert_eq!(code, ErrorCode::ReadOnly as u16, "wrong error code");
        }
        other => panic!("election loser accepted a delta: {other:?}"),
    }
    wc.submit_delta(&d).unwrap();
    assert_eq!(wc.info().unwrap().applied_seq, 4);
    wait_info(&loser, Duration::from_secs(60), |i| i.applied_seq == 4);

    // The winner's promotion listener went live and reports the
    // quorum-mode status, membership included.
    let wrepl_file = if winner == addrs[1] {
        repl_file_2
    } else {
        repl_file_3
    };
    let wrepl = read_addr(&wrepl_file);
    let status = Command::new(env!("CARGO_BIN_EXE_lbc"))
        .args(["repl-status", "--connect", &wrepl.to_string()])
        .output()
        .expect("run repl-status");
    let status = String::from_utf8_lossy(&status.stdout).to_string();
    assert!(status.contains("role primary"), "{status}");
    assert!(status.contains("quorum 2"), "{status}");
    assert!(status.contains("quorum: held"), "{status}");
}
