//! Prometheus text exposition rendering of an [`ObsSnapshot`].
//!
//! Counters and gauges render as plain samples; histograms render as
//! summaries (`{quantile="..."}` samples plus `_sum`/`_count`/`_min`/
//! `_max`), which scrape cleanly and avoid shipping 1920 cumulative
//! buckets per series. Metric names are sanitised to the Prometheus
//! charset (`[a-zA-Z0-9_:]`, non-digit first char).

use crate::metrics::ObsSnapshot;

fn sanitise(name: &str) -> String {
    let mut out = String::with_capacity(name.len());
    for (i, ch) in name.chars().enumerate() {
        let ok =
            ch.is_ascii_alphabetic() || ch == '_' || ch == ':' || (i > 0 && ch.is_ascii_digit());
        out.push(if ok { ch } else { '_' });
    }
    out
}

/// Render the snapshot in Prometheus text exposition format.
pub fn render_text(snap: &ObsSnapshot) -> String {
    let mut out = String::new();
    for (name, v) in &snap.counters {
        let name = sanitise(name);
        out.push_str(&format!("# TYPE {name} counter\n{name} {v}\n"));
    }
    for (name, v) in &snap.gauges {
        let name = sanitise(name);
        out.push_str(&format!("# TYPE {name} gauge\n{name} {v}\n"));
    }
    for (name, h) in &snap.hists {
        let name = sanitise(name);
        out.push_str(&format!("# TYPE {name} summary\n"));
        for (label, q) in [("0.5", 0.5), ("0.95", 0.95), ("0.99", 0.99)] {
            out.push_str(&format!(
                "{name}{{quantile=\"{label}\"}} {}\n",
                h.quantile(q)
            ));
        }
        out.push_str(&format!("{name}_sum {}\n", h.sum));
        out.push_str(&format!("{name}_count {}\n", h.count));
        if !h.is_empty() {
            out.push_str(&format!("{name}_min {}\n", h.min));
            out.push_str(&format!("{name}_max {}\n", h.max));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hist::Histogram;
    use crate::metrics::Obs;

    #[test]
    fn renders_all_kinds() {
        let obs = Obs::new();
        obs.counter("net_frames_in_total").add(7);
        obs.gauge("worker_queue_depth").set(3);
        let h = Histogram::new();
        for v in 1..=100u64 {
            h.record(v * 1000);
        }
        obs.register_histogram("rpc_service_ns", std::sync::Arc::new(h));
        let text = render_text(&obs.snapshot(0));
        assert!(text.contains("# TYPE net_frames_in_total counter\nnet_frames_in_total 7\n"));
        assert!(text.contains("# TYPE worker_queue_depth gauge\nworker_queue_depth 3\n"));
        assert!(text.contains("# TYPE rpc_service_ns summary\n"));
        assert!(text.contains("rpc_service_ns{quantile=\"0.99\"}"));
        assert!(text.contains("rpc_service_ns_count 100\n"));
        assert!(text.contains("rpc_service_ns_max 100000\n"));
    }

    #[test]
    fn sanitises_names() {
        assert_eq!(sanitise("repl.peer-5/lag ms"), "repl_peer_5_lag_ms");
        assert_eq!(sanitise("9lives"), "_lives");
    }
}
