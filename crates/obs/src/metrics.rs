//! The per-node metrics registry: named counters, gauges, and histograms.
//!
//! Handles are `Arc`-shared atomics. Components either ask the registry
//! for a handle by name (`counter`/`gauge`/`histogram`, get-or-create) or
//! construct a handle standalone and adopt it into a node's registry
//! later (`register_*`) — the latter supports components that are built
//! before the node's `Obs` exists. Lookup/registration is the cold path
//! (a mutexed `BTreeMap` keyed by `String`); every record afterwards goes
//! straight through the `Arc` without touching the registry.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering::Relaxed};
use std::sync::{Arc, Mutex};

use crate::events::{Event, EventRing};
use crate::hist::{HistSnapshot, Histogram};

/// Monotonically increasing `u64` counter.
#[derive(Default)]
pub struct Counter(AtomicU64);

impl Counter {
    pub fn new() -> Counter {
        Counter(AtomicU64::new(0))
    }

    #[inline]
    pub fn inc(&self) {
        self.0.fetch_add(1, Relaxed);
    }

    #[inline]
    pub fn add(&self, v: u64) {
        self.0.fetch_add(v, Relaxed);
    }

    pub fn get(&self) -> u64 {
        self.0.load(Relaxed)
    }
}

/// Settable signed gauge (queue depths, lags, high-water marks).
#[derive(Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    pub fn new() -> Gauge {
        Gauge(AtomicI64::new(0))
    }

    #[inline]
    pub fn set(&self, v: i64) {
        self.0.store(v, Relaxed);
    }

    #[inline]
    pub fn add(&self, v: i64) {
        self.0.fetch_add(v, Relaxed);
    }

    /// Raise the gauge to `v` if it is below it (high-water marks).
    #[inline]
    pub fn fetch_max(&self, v: i64) {
        self.0.fetch_max(v, Relaxed);
    }

    pub fn get(&self) -> i64 {
        self.0.load(Relaxed)
    }
}

enum Metric {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

/// A node's metric registry plus its event ring. Create once per serving
/// node (`Obs::new()`), share via `Arc`.
pub struct Obs {
    metrics: Mutex<BTreeMap<String, Metric>>,
    /// Structured transition log; record with `obs.events.record(..)`.
    pub events: EventRing,
}

/// Default event-ring capacity per node.
pub const DEFAULT_EVENT_CAP: usize = 256;

impl std::fmt::Debug for Obs {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let n = self.metrics.lock().map(|m| m.len()).unwrap_or(0);
        f.debug_struct("Obs")
            .field("metrics", &n)
            .field("events", &self.events.total())
            .finish()
    }
}

impl Default for Obs {
    fn default() -> Self {
        Self::new()
    }
}

impl Obs {
    pub fn new() -> Obs {
        Obs::with_event_cap(DEFAULT_EVENT_CAP)
    }

    pub fn with_event_cap(cap: usize) -> Obs {
        Obs {
            metrics: Mutex::new(BTreeMap::new()),
            events: EventRing::new(cap),
        }
    }

    /// Get-or-create the named counter. A name already registered as a
    /// different kind is replaced (last writer wins; names are
    /// per-component and collisions indicate a bug, not a runtime case
    /// worth panicking over).
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut m = self.metrics.lock().unwrap();
        if let Some(Metric::Counter(c)) = m.get(name) {
            return c.clone();
        }
        let c = Arc::new(Counter::new());
        m.insert(name.to_string(), Metric::Counter(c.clone()));
        c
    }

    /// Get-or-create the named gauge.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        let mut m = self.metrics.lock().unwrap();
        if let Some(Metric::Gauge(g)) = m.get(name) {
            return g.clone();
        }
        let g = Arc::new(Gauge::new());
        m.insert(name.to_string(), Metric::Gauge(g.clone()));
        g
    }

    /// Get-or-create the named histogram.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        let mut m = self.metrics.lock().unwrap();
        if let Some(Metric::Histogram(h)) = m.get(name) {
            return h.clone();
        }
        let h = Arc::new(Histogram::new());
        m.insert(name.to_string(), Metric::Histogram(h.clone()));
        h
    }

    /// Adopt an existing counter handle under `name`.
    pub fn register_counter(&self, name: &str, c: Arc<Counter>) {
        self.metrics
            .lock()
            .unwrap()
            .insert(name.to_string(), Metric::Counter(c));
    }

    /// Adopt an existing gauge handle under `name`.
    pub fn register_gauge(&self, name: &str, g: Arc<Gauge>) {
        self.metrics
            .lock()
            .unwrap()
            .insert(name.to_string(), Metric::Gauge(g));
    }

    /// Adopt an existing histogram handle under `name`.
    pub fn register_histogram(&self, name: &str, h: Arc<Histogram>) {
        self.metrics
            .lock()
            .unwrap()
            .insert(name.to_string(), Metric::Histogram(h));
    }

    /// Capture every registered metric plus the most recent `max_events`
    /// ring events, name-sorted (the map is a `BTreeMap`, so iteration is
    /// already deterministic).
    pub fn snapshot(&self, max_events: usize) -> ObsSnapshot {
        let m = self.metrics.lock().unwrap();
        let mut snap = ObsSnapshot::default();
        for (name, metric) in m.iter() {
            match metric {
                Metric::Counter(c) => snap.counters.push((name.clone(), c.get())),
                Metric::Gauge(g) => snap.gauges.push((name.clone(), g.get())),
                Metric::Histogram(h) => snap.hists.push((name.clone(), h.snapshot())),
            }
        }
        drop(m);
        snap.events = self.events.recent(max_events);
        snap
    }
}

/// A serialisable point-in-time view of one node's metrics and recent
/// events. `lbc-net` carries this over the `STATS` opcode; the CLI and
/// the Prometheus text renderer consume it.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ObsSnapshot {
    /// `(name, value)`, ascending by name.
    pub counters: Vec<(String, u64)>,
    /// `(name, value)`, ascending by name.
    pub gauges: Vec<(String, i64)>,
    /// `(name, snapshot)`, ascending by name.
    pub hists: Vec<(String, HistSnapshot)>,
    /// Most recent events, oldest first.
    pub events: Vec<Event>,
}

impl ObsSnapshot {
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, v)| v)
    }

    pub fn gauge(&self, name: &str) -> Option<i64> {
        self.gauges.iter().find(|(n, _)| n == name).map(|&(_, v)| v)
    }

    pub fn hist(&self, name: &str) -> Option<&HistSnapshot> {
        self.hists.iter().find(|(n, _)| n == name).map(|(_, h)| h)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::events::EventKind;

    #[test]
    fn get_or_create_returns_same_handle() {
        let obs = Obs::new();
        let a = obs.counter("net_accepts_total");
        let b = obs.counter("net_accepts_total");
        a.inc();
        b.add(2);
        assert_eq!(a.get(), 3);
        let snap = obs.snapshot(0);
        assert_eq!(snap.counter("net_accepts_total"), Some(3));
    }

    #[test]
    fn register_existing_handle() {
        let h = Arc::new(Histogram::new());
        h.record(100);
        let obs = Obs::new();
        obs.register_histogram("rpc_service_ns", h.clone());
        h.record(200);
        let snap = obs.snapshot(0);
        let hs = snap.hist("rpc_service_ns").unwrap();
        assert_eq!(hs.count, 2);
        assert_eq!(hs.max, 200);
    }

    #[test]
    fn snapshot_is_name_sorted_and_carries_events() {
        let obs = Obs::new();
        obs.counter("zz");
        obs.counter("aa");
        obs.gauge("mid");
        obs.events
            .record(EventKind::RoleChange, "follower->primary");
        obs.events.record(EventKind::ElectionWon, "epoch 3");
        let snap = obs.snapshot(10);
        assert_eq!(
            snap.counters
                .iter()
                .map(|(n, _)| n.as_str())
                .collect::<Vec<_>>(),
            vec!["aa", "zz"]
        );
        assert_eq!(snap.gauge("mid"), Some(0));
        assert_eq!(snap.events.len(), 2);
        assert_eq!(snap.events[0].kind, EventKind::RoleChange);
        assert_eq!(snap.events[1].detail, "epoch 3");
    }

    #[test]
    fn gauge_ops() {
        let g = Gauge::new();
        g.set(5);
        g.add(-2);
        assert_eq!(g.get(), 3);
        g.fetch_max(10);
        g.fetch_max(7);
        assert_eq!(g.get(), 10);
    }
}
