//! Fixed-capacity, seq-stamped structured event ring.
//!
//! Each node keeps one ring; components push [`Event`]s on state changes
//! (role transitions, elections, evictions, membership adoptions,
//! backpressure engage/release). The ring holds the last `cap` events;
//! `seq` is monotone per ring so a reader can tell how many were dropped.
//! Recording takes a mutex — these are rare control-plane transitions,
//! not data-plane records — and timestamps are milliseconds since ring
//! creation (monotonic, wire-safe).

use std::collections::VecDeque;
use std::sync::Mutex;
use std::time::Instant;

/// What happened. Stable `u8` codes cross the wire; keep values append-only.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum EventKind {
    /// A node changed role; detail is `"<from>-><to>"`, e.g.
    /// `"follower->promoted"`.
    RoleChange = 1,
    ElectionStarted = 2,
    ElectionWon = 3,
    ElectionLost = 4,
    /// An election or write was refused for lack of quorum.
    NoQuorum = 5,
    /// A cache entry was evicted (detail names the dataset/key).
    Eviction = 6,
    MembershipAdopted = 7,
    BackpressureOn = 8,
    BackpressureOff = 9,
    /// A quorum primary stepped down after losing its majority lease.
    StepDown = 10,
    /// A torn WAL tail was detected and healed on open.
    WalTornHealed = 11,
    /// A node refused or severed traffic from a replication term below
    /// one it has already observed (deposed-primary fencing).
    TermFenced = 12,
}

impl EventKind {
    pub fn from_u8(v: u8) -> Option<EventKind> {
        Some(match v {
            1 => EventKind::RoleChange,
            2 => EventKind::ElectionStarted,
            3 => EventKind::ElectionWon,
            4 => EventKind::ElectionLost,
            5 => EventKind::NoQuorum,
            6 => EventKind::Eviction,
            7 => EventKind::MembershipAdopted,
            8 => EventKind::BackpressureOn,
            9 => EventKind::BackpressureOff,
            10 => EventKind::StepDown,
            11 => EventKind::WalTornHealed,
            12 => EventKind::TermFenced,
            _ => return None,
        })
    }

    pub fn as_str(&self) -> &'static str {
        match self {
            EventKind::RoleChange => "role_change",
            EventKind::ElectionStarted => "election_started",
            EventKind::ElectionWon => "election_won",
            EventKind::ElectionLost => "election_lost",
            EventKind::NoQuorum => "no_quorum",
            EventKind::Eviction => "eviction",
            EventKind::MembershipAdopted => "membership_adopted",
            EventKind::BackpressureOn => "backpressure_on",
            EventKind::BackpressureOff => "backpressure_off",
            EventKind::StepDown => "step_down",
            EventKind::WalTornHealed => "wal_torn_healed",
            EventKind::TermFenced => "term_fenced",
        }
    }
}

/// One recorded transition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Event {
    /// Monotone per-ring sequence number, starting at 0.
    pub seq: u64,
    /// Milliseconds since the ring was created (monotonic clock).
    pub at_ms: u64,
    pub kind: EventKind,
    pub detail: String,
}

struct RingInner {
    next_seq: u64,
    buf: VecDeque<Event>,
}

/// Fixed-capacity ring of [`Event`]s. Oldest entries are dropped once
/// `cap` is exceeded; `seq` keeps counting so drops are visible.
pub struct EventRing {
    cap: usize,
    epoch: Instant,
    inner: Mutex<RingInner>,
}

impl EventRing {
    pub fn new(cap: usize) -> EventRing {
        EventRing {
            cap: cap.max(1),
            epoch: Instant::now(),
            inner: Mutex::new(RingInner {
                next_seq: 0,
                buf: VecDeque::new(),
            }),
        }
    }

    /// Append an event, evicting the oldest if the ring is full.
    pub fn record(&self, kind: EventKind, detail: impl Into<String>) {
        let at_ms = self.epoch.elapsed().as_millis() as u64;
        let mut inner = self.inner.lock().unwrap();
        let seq = inner.next_seq;
        inner.next_seq += 1;
        if inner.buf.len() == self.cap {
            inner.buf.pop_front();
        }
        inner.buf.push_back(Event {
            seq,
            at_ms,
            kind,
            detail: detail.into(),
        });
    }

    /// The most recent `n` events, oldest first.
    pub fn recent(&self, n: usize) -> Vec<Event> {
        let inner = self.inner.lock().unwrap();
        let skip = inner.buf.len().saturating_sub(n);
        inner.buf.iter().skip(skip).cloned().collect()
    }

    /// Total events ever recorded (including dropped ones).
    pub fn total(&self) -> u64 {
        self.inner.lock().unwrap().next_seq
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_drops_oldest_and_keeps_seq() {
        let r = EventRing::new(3);
        for i in 0..5 {
            r.record(EventKind::Eviction, format!("k{i}"));
        }
        let ev = r.recent(10);
        assert_eq!(ev.len(), 3);
        assert_eq!(ev[0].seq, 2);
        assert_eq!(ev[2].seq, 4);
        assert_eq!(ev[2].detail, "k4");
        assert_eq!(r.total(), 5);
    }

    #[test]
    fn recent_limits_count() {
        let r = EventRing::new(8);
        for _ in 0..6 {
            r.record(EventKind::BackpressureOn, "");
        }
        assert_eq!(r.recent(2).len(), 2);
        assert_eq!(r.recent(2)[0].seq, 4);
    }

    #[test]
    fn kind_codes_round_trip() {
        for code in 0..=u8::MAX {
            if let Some(k) = EventKind::from_u8(code) {
                assert_eq!(k as u8, code);
                assert!(!k.as_str().is_empty());
            }
        }
        assert_eq!(EventKind::from_u8(0), None);
        assert_eq!(EventKind::from_u8(13), None);
    }
}
