//! `lbc-obs` — dependency-free observability primitives for the serving
//! stack.
//!
//! Three building blocks, all safe to share across threads via `Arc` and
//! all wait-free on their hot paths:
//!
//! * [`Histogram`] — a fixed-footprint, log-bucketed, HDR-style latency
//!   histogram. Buckets are plain `AtomicU64`s; [`Histogram::record`] is a
//!   handful of relaxed atomic RMWs — no locks, no allocation, no
//!   branches that can park a thread. Quantiles come from a
//!   [`HistSnapshot`] and carry a documented relative bucket error of at
//!   most `2^-5` (3.125%); the true observed min and max are tracked
//!   exactly. Snapshots are mergeable, so per-thread or per-node
//!   histograms can be combined loss-free.
//! * [`Obs`] — a per-node metrics registry mapping names to atomic
//!   [`Counter`]s, [`Gauge`]s, and [`Histogram`]s. Components create
//!   their handles up front (cold path, may allocate) and record through
//!   the `Arc` afterwards (hot path, never allocates). The registry is
//!   instance-based rather than process-global so multi-node tests (the
//!   chaos harness runs 3–5 nodes in one process) each get their own.
//! * [`EventRing`] — a fixed-capacity, seq-stamped ring of structured
//!   [`Event`]s (role transitions, elections, evictions, membership
//!   adoptions, backpressure engage/release). Post-mortems of chaos-run
//!   failures read from the node itself.
//!
//! Export paths live elsewhere: `lbc-net` serialises [`ObsSnapshot`] over
//! the `STATS` wire opcode, and [`render_text`] emits Prometheus text
//! exposition for scraping.

mod events;
mod hist;
mod metrics;
mod text;

pub use events::{Event, EventKind, EventRing};
pub use hist::{HistSnapshot, Histogram, HIST_BUCKETS, HIST_SUB_BITS};
pub use metrics::{Counter, Gauge, Obs, ObsSnapshot};
pub use text::render_text;
