//! Log-bucketed HDR-style histogram with atomic buckets.
//!
//! Layout: values below `2^SUB_BITS` (= 32) land in exact unit-width
//! buckets. Above that, each power-of-two octave is split into 32
//! sub-buckets, so a bucket's width is at most `value / 32` — quantile
//! estimates are within a relative error of `2^-5` = 3.125% of the true
//! sample (exact below 32). With `SUB_BITS = 5` the whole `u64` range
//! needs `(64 - 5) * 32 + 32 = 1920` buckets: a fixed ~15 KiB footprint,
//! no resizing, no allocation after construction.
//!
//! `record` is wait-free: one relaxed `fetch_add` on the bucket, plus
//! relaxed RMWs for count/sum/min/max. Relaxed ordering is fine — the
//! counters are statistics, not synchronization edges; a snapshot taken
//! concurrently with records sees some consistent-enough prefix, and a
//! snapshot taken after the recording thread is quiescent (joined or
//! otherwise synchronized-with) sees everything.

use std::sync::atomic::{AtomicU64, Ordering::Relaxed};

/// Sub-bucket resolution: each octave is split into `2^HIST_SUB_BITS`
/// buckets, bounding relative quantile error at `2^-HIST_SUB_BITS`.
pub const HIST_SUB_BITS: u32 = 5;
const SUB: u64 = 1 << HIST_SUB_BITS; // 32 sub-buckets per octave

/// Total bucket count covering the full `u64` value range.
pub const HIST_BUCKETS: usize =
    ((64 - HIST_SUB_BITS as usize) << HIST_SUB_BITS as usize) + (1 << HIST_SUB_BITS as usize); // 1920

/// Index of the bucket holding `v`. Total order: bucket(i) holds values
/// strictly below everything in bucket(i+1).
#[inline]
fn bucket_index(v: u64) -> usize {
    if v < SUB {
        v as usize
    } else {
        let msb = 63 - v.leading_zeros(); // >= HIST_SUB_BITS
        let shift = msb - HIST_SUB_BITS;
        let sub = ((v >> shift) & (SUB - 1)) as usize;
        ((((msb - HIST_SUB_BITS) as usize) + 1) << HIST_SUB_BITS as usize) + sub
    }
}

/// Midpoint representative of bucket `idx` (inverse of [`bucket_index`]).
#[inline]
fn bucket_mid(idx: usize) -> u64 {
    let octave = idx >> HIST_SUB_BITS as usize;
    if octave == 0 {
        idx as u64 // exact unit buckets
    } else {
        let shift = (octave - 1) as u32;
        let lower = (SUB + (idx as u64 & (SUB - 1))) << shift;
        lower + ((1u64 << shift) >> 1)
    }
}

/// A fixed-footprint concurrent latency histogram. All methods take
/// `&self`; share via `Arc` and record from any thread.
pub struct Histogram {
    buckets: Box<[AtomicU64; HIST_BUCKETS]>,
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    pub fn new() -> Self {
        let buckets: Vec<AtomicU64> = (0..HIST_BUCKETS).map(|_| AtomicU64::new(0)).collect();
        let buckets: Box<[AtomicU64; HIST_BUCKETS]> = match buckets.into_boxed_slice().try_into() {
            Ok(b) => b,
            Err(_) => unreachable!("length is HIST_BUCKETS by construction"),
        };
        Histogram {
            buckets,
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }

    /// Record one observation. Wait-free: five relaxed atomic RMWs, no
    /// allocation, no locks.
    #[inline]
    pub fn record(&self, v: u64) {
        self.buckets[bucket_index(v)].fetch_add(1, Relaxed);
        self.count.fetch_add(1, Relaxed);
        self.sum.fetch_add(v, Relaxed);
        self.min.fetch_min(v, Relaxed);
        self.max.fetch_max(v, Relaxed);
    }

    /// Number of recorded observations.
    pub fn count(&self) -> u64 {
        self.count.load(Relaxed)
    }

    /// Capture a point-in-time copy (sparse: only non-zero buckets).
    pub fn snapshot(&self) -> HistSnapshot {
        let mut buckets = Vec::new();
        for (i, b) in self.buckets.iter().enumerate() {
            let c = b.load(Relaxed);
            if c != 0 {
                buckets.push((i as u32, c));
            }
        }
        HistSnapshot {
            count: self.count.load(Relaxed),
            sum: self.sum.load(Relaxed),
            min: self.min.load(Relaxed),
            max: self.max.load(Relaxed),
            buckets,
        }
    }

    /// Reset all buckets and summary stats to empty.
    pub fn reset(&self) {
        for b in self.buckets.iter() {
            b.store(0, Relaxed);
        }
        self.count.store(0, Relaxed);
        self.sum.store(0, Relaxed);
        self.min.store(u64::MAX, Relaxed);
        self.max.store(0, Relaxed);
    }
}

/// Point-in-time copy of a [`Histogram`]: summary stats plus the sparse
/// list of `(bucket index, count)` pairs. This is the unit that crosses
/// the wire and the unit of merging.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct HistSnapshot {
    pub count: u64,
    pub sum: u64,
    /// Exact smallest recorded value; `u64::MAX` when empty.
    pub min: u64,
    /// Exact largest recorded value; 0 when empty.
    pub max: u64,
    /// Sparse `(bucket index, count)` pairs, ascending by index.
    pub buckets: Vec<(u32, u64)>,
}

impl HistSnapshot {
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Exact mean of recorded values (0 when empty).
    pub fn mean(&self) -> u64 {
        self.sum.checked_div(self.count).unwrap_or(0)
    }

    /// Estimate the `q`-quantile (`0.0 ..= 1.0`) using the same rank rule
    /// as the sorted-vector path it replaces: the sample at index
    /// `round((count - 1) * q)` of the sorted samples. The returned value
    /// is the midpoint of the bucket containing that rank, clamped to the
    /// exact observed `[min, max]`, so the relative error versus the true
    /// sample is at most `2^-HIST_SUB_BITS` (3.125%).
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((self.count - 1) as f64 * q.clamp(0.0, 1.0)).round() as u64;
        let mut seen = 0u64;
        for &(idx, c) in &self.buckets {
            seen += c;
            if seen > rank {
                return bucket_mid(idx as usize).clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Merge another snapshot into this one (loss-free on buckets; min and
    /// max stay exact).
    pub fn merge(&mut self, other: &HistSnapshot) {
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        let mut merged: Vec<(u32, u64)> =
            Vec::with_capacity(self.buckets.len() + other.buckets.len());
        let (mut i, mut j) = (0usize, 0usize);
        while i < self.buckets.len() || j < other.buckets.len() {
            let take_left = j >= other.buckets.len()
                || (i < self.buckets.len() && self.buckets[i].0 <= other.buckets[j].0);
            if take_left {
                let (idx, mut c) = self.buckets[i];
                i += 1;
                if j < other.buckets.len() && other.buckets[j].0 == idx {
                    c += other.buckets[j].1;
                    j += 1;
                }
                merged.push((idx, c));
            } else {
                merged.push(other.buckets[j]);
                j += 1;
            }
        }
        self.buckets = merged;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_is_monotone_and_in_range() {
        let mut last = 0usize;
        let mut probes: Vec<u64> = (0..2048).collect();
        for p in 1..63 {
            let v = 1u64 << p;
            probes.extend([v - 1, v, v + 1, v + (v >> 1)]);
        }
        probes.push(u64::MAX);
        probes.sort_unstable();
        for v in probes {
            let idx = bucket_index(v);
            assert!(idx < HIST_BUCKETS, "idx {idx} out of range for {v}");
            assert!(idx >= last, "bucket index not monotone at {v}");
            last = idx;
        }
        assert_eq!(bucket_index(u64::MAX), HIST_BUCKETS - 1);
    }

    #[test]
    fn bucket_mid_lands_in_own_bucket() {
        for idx in 0..HIST_BUCKETS {
            let mid = bucket_mid(idx);
            assert_eq!(
                bucket_index(mid),
                idx,
                "mid {mid} of bucket {idx} maps elsewhere"
            );
        }
    }

    #[test]
    fn small_values_are_exact() {
        let h = Histogram::new();
        for v in 0..SUB {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, SUB);
        assert_eq!(s.min, 0);
        assert_eq!(s.max, SUB - 1);
        assert_eq!(s.quantile(0.0), 0);
        assert_eq!(s.quantile(1.0), SUB - 1);
        // Exact unit buckets below 32: every quantile is the true sample.
        for rank in 0..SUB {
            let q = rank as f64 / (SUB - 1) as f64;
            assert_eq!(s.quantile(q), rank);
        }
    }

    #[test]
    fn quantiles_match_sorted_vector_within_bucket_error() {
        // Deterministic LCG so the test needs no external RNG.
        let mut x = 0x2545F4914F6CDD1Du64;
        let mut samples: Vec<u64> = Vec::new();
        let h = Histogram::new();
        for _ in 0..100_000 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            // Spread across ~6 orders of magnitude like real latencies.
            let v = (x >> 33) % 3_000_000_000 + 50;
            samples.push(v);
            h.record(v);
        }
        samples.sort_unstable();
        let s = h.snapshot();
        assert_eq!(s.count, samples.len() as u64);
        assert_eq!(s.min, samples[0]);
        assert_eq!(s.max, *samples.last().unwrap());
        for q in [0.0, 0.1, 0.25, 0.5, 0.9, 0.95, 0.99, 0.999, 1.0] {
            let exact = samples[((samples.len() - 1) as f64 * q).round() as usize];
            let approx = s.quantile(q);
            let err = (approx as f64 - exact as f64).abs() / exact as f64;
            assert!(
                err <= 1.0 / SUB as f64,
                "q={q}: approx {approx} vs exact {exact} (err {err})"
            );
        }
    }

    #[test]
    fn merge_equals_recording_into_one() {
        let a = Histogram::new();
        let b = Histogram::new();
        let all = Histogram::new();
        for v in 0..10_000u64 {
            let v = v * 37 + 11;
            if v % 2 == 0 {
                a.record(v);
            } else {
                b.record(v);
            }
            all.record(v);
        }
        let mut merged = a.snapshot();
        merged.merge(&b.snapshot());
        assert_eq!(merged, all.snapshot());
    }

    #[test]
    fn concurrent_records_all_land() {
        let h = std::sync::Arc::new(Histogram::new());
        let threads: Vec<_> = (0..4)
            .map(|t| {
                let h = h.clone();
                std::thread::spawn(move || {
                    for i in 0..50_000u64 {
                        h.record(t * 1_000_000 + i);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        let s = h.snapshot();
        assert_eq!(s.count, 200_000);
        assert_eq!(s.buckets.iter().map(|&(_, c)| c).sum::<u64>(), 200_000);
        assert_eq!(s.min, 0);
        assert_eq!(s.max, 3 * 1_000_000 + 49_999);
    }

    #[test]
    fn empty_and_reset() {
        let h = Histogram::new();
        assert!(h.snapshot().is_empty());
        assert_eq!(h.snapshot().quantile(0.5), 0);
        h.record(42);
        assert_eq!(h.count(), 1);
        h.reset();
        let s = h.snapshot();
        assert!(s.is_empty());
        assert!(s.buckets.is_empty());
        assert_eq!(s.min, u64::MAX);
        assert_eq!(s.max, 0);
    }
}
