//! The steady-state round loop must not touch the heap.
//!
//! This is the acceptance check for the flat-arena refactor: once the
//! [`StateArena`] and [`MatchingScratch`] are built, running averaging
//! rounds (`sample_matching_into` + `StateArena::average_into`) performs
//! **zero** allocations. Verified with a counting global allocator
//! rather than by inspection: the test binary installs an allocator that
//! counts every `alloc`/`realloc`, warms the loop up, then asserts the
//! counter does not move across 50 further rounds.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use lbc_core::{run_seeding, sample_matching_into, LbConfig, MatchingScratch, StateArena};
use lbc_distsim::NodeRng;
use lbc_graph::generators;

struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// The counter is process-global, so the two tests in this binary must
/// not run concurrently: one test's setup allocations would land inside
/// the other's measured window and flip the assertion spuriously.
static SERIAL: std::sync::Mutex<()> = std::sync::Mutex::new(());

#[test]
fn steady_state_round_loop_is_allocation_free() {
    let _serial = SERIAL.lock().unwrap();
    let (g, _) = generators::ring_of_cliques(4, 25, 0).unwrap();
    let n = g.n();
    let cfg = LbConfig::new(0.25, 10).with_seed(7);
    let mut rngs: Vec<NodeRng> = (0..n as u32)
        .map(|v| NodeRng::for_node(cfg.seed, v))
        .collect();
    let seeds = run_seeding(n, cfg.trials(), &mut rngs);
    assert!(!seeds.is_empty());
    let rule = cfg.proposal_rule(&g);

    let mut arena = StateArena::new(n, &seeds);
    let mut scratch = MatchingScratch::new(n);

    // Warm-up: a few rounds so any lazily-grown buffer reaches its
    // steady-state capacity (there should be none, but the claim under
    // test is about the steady state).
    for _ in 0..5 {
        sample_matching_into(&g, rule, &mut rngs, &mut scratch);
        arena.average_matched(&scratch);
    }

    let before = ALLOCS.load(Ordering::SeqCst);
    for _ in 0..50 {
        sample_matching_into(&g, rule, &mut rngs, &mut scratch);
        arena.average_matched(&scratch);
    }
    let after = ALLOCS.load(Ordering::SeqCst);
    assert_eq!(
        after - before,
        0,
        "round loop allocated {} times in 50 steady-state rounds",
        after - before
    );

    // Sanity: the states actually evolved (the loop did real work).
    let total: f64 = (0..n).map(|v| arena.to_load_state(v).total()).sum();
    assert!((total - seeds.len() as f64).abs() < 1e-9);
}

#[test]
fn warm_start_steady_state_rounds_are_allocation_free() {
    // The incremental subsystem's round loop — `sample_matching_into`
    // plus the movement-tracked merge `average_matched_tracked` (the
    // extra L1-distance pass is read-only) — must be as allocation-free
    // as the cold loop. Set up exactly what `lbc_core::warm_start` sets
    // up: a prior clustering, a mutated graph, an arena rebuilt from the
    // resident states.
    use lbc_core::{cluster, warm_start, WarmStartConfig};
    use lbc_graph::generators::k_edge_flip_delta;

    let _serial = SERIAL.lock().unwrap();
    let (g, truth) = generators::planted_partition(2, 50, 0.4, 0.01, 3).unwrap();
    let cfg = LbConfig::new(0.5, 60).with_seed(5);
    let prior = cluster(&g, &cfg).unwrap();
    let delta = k_edge_flip_delta(&g, &truth, 4, 9).unwrap();
    let g2 = g.apply_delta(&delta).unwrap();

    let n = g2.n();
    let mut arena = StateArena::from_states(&prior.states);
    let mut scratch = MatchingScratch::new(n);
    let mut rngs: Vec<NodeRng> = (0..n as u32)
        .map(|v| NodeRng::for_node(cfg.seed, v))
        .collect();
    let rule = cfg.proposal_rule(&g2);

    // Warm-up, then count across 50 steady-state warm rounds.
    let mut moved = 0.0f64;
    for _ in 0..5 {
        sample_matching_into(&g2, rule, &mut rngs, &mut scratch);
        moved += arena.average_matched_tracked(&scratch);
    }
    let before = ALLOCS.load(Ordering::SeqCst);
    for _ in 0..50 {
        sample_matching_into(&g2, rule, &mut rngs, &mut scratch);
        moved += arena.average_matched_tracked(&scratch);
    }
    let after = ALLOCS.load(Ordering::SeqCst);
    assert_eq!(
        after - before,
        0,
        "warm round loop allocated {} times in 50 steady-state rounds",
        after - before
    );
    assert!(moved > 0.0, "tracked movement should be positive");

    // And the public driver agrees end-to-end on the same inputs.
    let warm = warm_start(&g2, &cfg, &prior, &delta, &WarmStartConfig::default()).unwrap();
    assert!(warm.rounds_run > 0);
}

#[test]
fn histogram_record_in_round_loop_is_allocation_free() {
    // The observability claim: timing each round into an
    // `lbc_obs::Histogram` adds **zero** allocations to the loop it
    // instruments — `record` is a fixed handful of relaxed atomic RMWs
    // into preallocated buckets. Same harness as above, with the
    // instrumented loop measured under the counting allocator.
    let _serial = SERIAL.lock().unwrap();
    let (g, _) = generators::ring_of_cliques(4, 25, 0).unwrap();
    let n = g.n();
    let cfg = LbConfig::new(0.25, 10).with_seed(7);
    let mut rngs: Vec<NodeRng> = (0..n as u32)
        .map(|v| NodeRng::for_node(cfg.seed, v))
        .collect();
    let seeds = run_seeding(n, cfg.trials(), &mut rngs);
    let rule = cfg.proposal_rule(&g);
    let mut arena = StateArena::new(n, &seeds);
    let mut scratch = MatchingScratch::new(n);

    // Histogram construction is the cold path and may allocate; it
    // happens before the measured window, like every real handle.
    let hist = lbc_obs::Histogram::new();
    for _ in 0..5 {
        let t0 = std::time::Instant::now();
        sample_matching_into(&g, rule, &mut rngs, &mut scratch);
        arena.average_matched(&scratch);
        hist.record(t0.elapsed().as_nanos() as u64);
    }

    let before = ALLOCS.load(Ordering::SeqCst);
    for _ in 0..50 {
        let t0 = std::time::Instant::now();
        sample_matching_into(&g, rule, &mut rngs, &mut scratch);
        arena.average_matched(&scratch);
        hist.record(t0.elapsed().as_nanos() as u64);
    }
    let after = ALLOCS.load(Ordering::SeqCst);
    assert_eq!(
        after - before,
        0,
        "instrumented round loop allocated {} times in 50 rounds",
        after - before
    );

    // The histogram really saw every round (snapshotting may allocate;
    // it is outside the measured window by design).
    let snap = hist.snapshot();
    assert_eq!(snap.count, 55);
    assert!(snap.max >= snap.quantile(0.5));
}
