//! Acceptance test for the incremental subsystem's identity guarantee:
//! a warm start with an **empty** [`GraphDelta`] must reproduce the
//! cached [`ClusterOutput`] **bit-for-bit** — every `f64` compared by
//! bit pattern, not tolerance. This pins the whole no-op path:
//! `StateArena::from_states` → `assign_labels_arena` →
//! `to_load_states` is a lossless round trip, so a registry
//! warm-refresh can never perturb a served clustering it didn't need
//! to touch.

use lbc_core::{cluster, warm_start, ClusterOutput, LbConfig, QueryRule, WarmStartConfig};
use lbc_graph::{generators, GraphDelta};

fn assert_bit_identical(a: &ClusterOutput, b: &ClusterOutput) {
    assert_eq!(a.partition, b.partition, "partition differs");
    assert_eq!(a.raw_labels, b.raw_labels, "raw labels differ");
    assert_eq!(a.seeds, b.seeds, "seeds differ");
    assert_eq!(a.rounds, b.rounds, "round counts differ");
    assert_eq!(a.states.len(), b.states.len(), "state counts differ");
    for (v, (sa, sb)) in a.states.iter().zip(&b.states).enumerate() {
        assert_eq!(
            sa.entries().len(),
            sb.entries().len(),
            "node {v}: support size differs"
        );
        for (&(ida, xa), &(idb, xb)) in sa.entries().iter().zip(sb.entries()) {
            assert_eq!(ida, idb, "node {v}: seed id differs");
            assert_eq!(
                xa.to_bits(),
                xb.to_bits(),
                "node {v}, seed {ida}: load {xa} vs {xb} (bit patterns differ)"
            );
        }
    }
}

#[test]
fn empty_delta_reproduces_output_bit_for_bit() {
    let (g, _) = generators::planted_partition(3, 40, 0.4, 0.01, 5).unwrap();
    let cfg = LbConfig::new(1.0 / 3.0, 80).with_seed(2);
    let cold = cluster(&g, &cfg).unwrap();
    let warm = warm_start(
        &g,
        &cfg,
        &cold,
        &GraphDelta::new(),
        &WarmStartConfig::default(),
    )
    .unwrap();
    assert_eq!(warm.rounds_run, 0);
    assert!(warm.converged);
    assert_bit_identical(&cold, &warm.output);
}

#[test]
fn identity_holds_across_query_rules_and_graph_families() {
    let cases: Vec<(lbc_graph::Graph, LbConfig)> = vec![
        {
            let (g, _) = generators::ring_of_cliques(4, 20, 0).unwrap();
            (g, LbConfig::new(0.25, 60).with_seed(3))
        },
        {
            let (g, _) = generators::ring_of_cliques(3, 16, 0).unwrap();
            (
                g,
                LbConfig::new(1.0 / 3.0, 50)
                    .with_seed(8)
                    .with_query(QueryRule::ArgMax),
            )
        },
        {
            // Irregular graph exercises the almost-regular degree mode.
            let (g0, t) = generators::planted_partition(2, 40, 0.5, 0.01, 13).unwrap();
            let g = generators::perturb_degrees(&g0, &t, 0.1, 0.1, 14).unwrap();
            (g, LbConfig::new(0.5, 70).with_seed(4))
        },
    ];
    for (i, (g, cfg)) in cases.into_iter().enumerate() {
        let cold = cluster(&g, &cfg).unwrap();
        let warm = warm_start(
            &g,
            &cfg,
            &cold,
            &GraphDelta::new(),
            &WarmStartConfig::default(),
        )
        .unwrap_or_else(|e| panic!("case {i}: {e}"));
        assert_bit_identical(&cold, &warm.output);
    }
}

#[test]
fn warm_refresh_then_empty_delta_is_also_an_identity() {
    // The identity must hold for *any* resident output, including one a
    // warm start itself produced (a chain of deltas ends with quiet
    // periods; each quiet refresh must be free).
    let (g, truth) = generators::planted_partition(3, 40, 0.4, 0.01, 5).unwrap();
    let cfg = LbConfig::new(1.0 / 3.0, 80).with_seed(2);
    let cold = cluster(&g, &cfg).unwrap();
    let delta = generators::k_edge_flip_delta(&g, &truth, 3, 41).unwrap();
    let g2 = g.apply_delta(&delta).unwrap();
    let w1 = warm_start(&g2, &cfg, &cold, &delta, &WarmStartConfig::default()).unwrap();
    assert!(w1.rounds_run > 0);
    let w2 = warm_start(
        &g2,
        &cfg,
        &w1.output,
        &GraphDelta::new(),
        &WarmStartConfig::default(),
    )
    .unwrap();
    assert_eq!(w2.rounds_run, 0);
    assert_bit_identical(&w1.output, &w2.output);
}
