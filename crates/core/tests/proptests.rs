//! Property-based tests for the algorithm core: protocol equivalences
//! and variant invariants that must hold for *any* seed.

use lbc_core::matching::ProposalRule;
use lbc_core::{
    cluster, cluster_async, cluster_discrete, cluster_distributed, estimate_size, LbConfig,
};
use lbc_graph::generators;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The distributed and centralised implementations agree bit-for-bit
    /// for every seed (not just the hand-picked ones in unit tests).
    #[test]
    fn distributed_equals_centralised_for_all_seeds(seed in 0u64..10_000) {
        let (g, _) = generators::ring_of_cliques(2, 8, 0).unwrap();
        let cfg = LbConfig::new(0.5, 12).with_seed(seed);
        match (cluster(&g, &cfg), cluster_distributed(&g, &cfg, None)) {
            (Ok(c), Ok((d, _))) => {
                prop_assert_eq!(c.seeds, d.seeds);
                prop_assert_eq!(c.states, d.states);
                prop_assert_eq!(c.partition, d.partition);
            }
            (Err(a), Err(b)) => prop_assert_eq!(format!("{a:?}"), format!("{b:?}")),
            (a, b) => prop_assert!(false, "outcome mismatch: {:?} vs {:?}", a.is_ok(), b.is_ok()),
        }
    }

    /// Discrete tokens are conserved exactly per seed, for any seed and
    /// resolution.
    #[test]
    fn discrete_token_conservation(seed in 0u64..5_000, res_pow in 0u32..16) {
        let (g, _) = generators::ring_of_cliques(2, 8, 0).unwrap();
        let resolution = 1u64 << res_pow;
        let cfg = LbConfig::new(0.5, 10).with_seed(seed);
        if let Ok(out) = cluster_discrete(&g, &cfg, resolution) {
            for s in &out.seeds {
                let total: u64 = out.states.iter().map(|st| st.tokens(s.id)).sum();
                prop_assert_eq!(total, resolution);
            }
        }
    }

    /// Async gossip conserves per-seed load for any tick budget.
    #[test]
    fn async_load_conservation(seed in 0u64..5_000, ticks in 0usize..600) {
        let (g, _) = generators::ring_of_cliques(2, 6, 0).unwrap();
        let cfg = LbConfig::new(0.5, 1).with_seed(seed);
        if let Ok(out) = cluster_async(&g, &cfg, ticks) {
            for s in &out.seeds {
                let total: f64 = out.states.iter().map(|st| st.load(s.id)).sum();
                prop_assert!((total - 1.0).abs() < 1e-9);
            }
        }
    }

    /// Size estimates are positive, finite, and identical at all nodes
    /// once converged.
    #[test]
    fn size_estimates_well_formed(seed in 0u64..2_000) {
        let g = generators::complete(24).unwrap();
        let est = estimate_size(&g, ProposalRule::Uniform, 8, 300, seed);
        for &e in &est.estimates {
            prop_assert!(e.is_finite() && e > 0.0);
        }
        if est.converged {
            let first = est.estimates[0];
            prop_assert!(est.estimates.iter().all(|&e| e == first));
        }
    }

    /// Changing only the query rule never changes seeds, states, or the
    /// number of labelled nodes.
    #[test]
    fn query_rule_does_not_affect_process(seed in 0u64..3_000) {
        use lbc_core::QueryRule;
        let (g, _) = generators::ring_of_cliques(2, 8, 0).unwrap();
        let base = LbConfig::new(0.5, 15).with_seed(seed);
        let a = cluster(&g, &base.clone().with_query(QueryRule::PaperThreshold));
        let b = cluster(&g, &base.with_query(QueryRule::ArgMax));
        if let (Ok(a), Ok(b)) = (a, b) {
            prop_assert_eq!(a.seeds, b.seeds);
            prop_assert_eq!(a.states, b.states);
            prop_assert_eq!(a.partition.n(), b.partition.n());
        }
    }
}
