//! Property-based tests for the algorithm core: protocol equivalences
//! and variant invariants that must hold for *any* seed.

use lbc_core::matching::ProposalRule;
use lbc_core::state::SeedId;
use lbc_core::{
    cluster, cluster_async, cluster_discrete, cluster_distributed, estimate_size, LbConfig,
    LoadState, StateArena,
};
use lbc_graph::generators;
use proptest::prelude::*;

/// Strategy: one sparse load state over a small id universe, with loads
/// spanning many binades (so `(x + y) / 2` vs `x / 2` rounding paths are
/// genuinely exercised).
fn state_strategy() -> impl Strategy<Value = LoadState> {
    collection::vec((1u64..40, 0u32..64, -30i32..4), 0..12).prop_map(|raw| {
        let mut entries: Vec<(SeedId, f64)> = Vec::new();
        for (id, mantissa, exp) in raw {
            if entries.iter().all(|&(i, _)| i != id) {
                entries.push((id, (1.0 + mantissa as f64 / 64.0) * (exp as f64).exp2()));
            }
        }
        LoadState::from_entries(entries)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The distributed and centralised implementations agree bit-for-bit
    /// for every seed (not just the hand-picked ones in unit tests).
    #[test]
    fn distributed_equals_centralised_for_all_seeds(seed in 0u64..10_000) {
        let (g, _) = generators::ring_of_cliques(2, 8, 0).unwrap();
        let cfg = LbConfig::new(0.5, 12).with_seed(seed);
        match (cluster(&g, &cfg), cluster_distributed(&g, &cfg, None)) {
            (Ok(c), Ok((d, _))) => {
                prop_assert_eq!(c.seeds, d.seeds);
                prop_assert_eq!(c.states, d.states);
                prop_assert_eq!(c.partition, d.partition);
            }
            (Err(a), Err(b)) => prop_assert_eq!(format!("{a:?}"), format!("{b:?}")),
            (a, b) => prop_assert!(false, "outcome mismatch: {:?} vs {:?}", a.is_ok(), b.is_ok()),
        }
    }

    /// Discrete tokens are conserved exactly per seed, for any seed and
    /// resolution.
    #[test]
    fn discrete_token_conservation(seed in 0u64..5_000, res_pow in 0u32..16) {
        let (g, _) = generators::ring_of_cliques(2, 8, 0).unwrap();
        let resolution = 1u64 << res_pow;
        let cfg = LbConfig::new(0.5, 10).with_seed(seed);
        if let Ok(out) = cluster_discrete(&g, &cfg, resolution) {
            for s in &out.seeds {
                let total: u64 = out.states.iter().map(|st| st.tokens(s.id)).sum();
                prop_assert_eq!(total, resolution);
            }
        }
    }

    /// Async gossip conserves per-seed load for any tick budget.
    #[test]
    fn async_load_conservation(seed in 0u64..5_000, ticks in 0usize..600) {
        let (g, _) = generators::ring_of_cliques(2, 6, 0).unwrap();
        let cfg = LbConfig::new(0.5, 1).with_seed(seed);
        if let Ok(out) = cluster_async(&g, &cfg, ticks) {
            for s in &out.seeds {
                let total: f64 = out.states.iter().map(|st| st.load(s.id)).sum();
                prop_assert!((total - 1.0).abs() < 1e-9);
            }
        }
    }

    /// Size estimates are positive, finite, and identical at all nodes
    /// once converged.
    #[test]
    fn size_estimates_well_formed(seed in 0u64..2_000) {
        let g = generators::complete(24).unwrap();
        let est = estimate_size(&g, ProposalRule::Uniform, 8, 300, seed);
        for &e in &est.estimates {
            prop_assert!(e.is_finite() && e > 0.0);
        }
        if est.converged {
            let first = est.estimates[0];
            prop_assert!(est.estimates.iter().all(|&e| e == first));
        }
    }

    /// Arena merges are bit-identical (`==` on every f64) to
    /// `LoadState::average` for arbitrary state pairs — the property
    /// that makes the flat-arena round loop a drop-in replacement.
    #[test]
    fn arena_average_bit_identical_to_load_state(pair in (state_strategy(), state_strategy())) {
        let (a, b) = pair;
        let want = LoadState::average(&a, &b);
        let mut arena = StateArena::from_states(&[a.clone(), b.clone()]);
        arena.average_into(0, 1);
        prop_assert_eq!(&arena.to_load_state(0), &want, "endpoint u diverged");
        prop_assert_eq!(&arena.to_load_state(1), &want, "endpoint v diverged");
        // And again with a warm scratch (second merge reuses buffers).
        arena.average_into(1, 0);
        let want2 = LoadState::average(&want, &want);
        prop_assert_eq!(&arena.to_load_state(0), &want2, "warm-scratch merge diverged");
    }

    /// The arena-backed `cluster` is bit-identical to a reference round
    /// loop written against the original `Vec<LoadState>` +
    /// `sample_matching` + `LoadState::average` path, for any seed.
    #[test]
    fn cluster_bit_identical_to_load_state_reference(seed in 0u64..10_000) {
        use lbc_core::{assign_labels, sample_matching};
        use lbc_distsim::NodeRng;

        let (g, _) = generators::ring_of_cliques(2, 8, 0).unwrap();
        let cfg = LbConfig::new(0.5, 12).with_seed(seed);

        // Reference: the pre-arena implementation, verbatim.
        let n = g.n();
        let mut rngs: Vec<NodeRng> = (0..n as u32)
            .map(|v| NodeRng::for_node(cfg.seed, v))
            .collect();
        let seeds = lbc_core::run_seeding(n, cfg.trials(), &mut rngs);
        prop_assume!(!seeds.is_empty());
        let mut states: Vec<LoadState> = vec![LoadState::empty(); n];
        for s in &seeds {
            states[s.node as usize] = LoadState::seed(s.id);
        }
        let rule = cfg.proposal_rule(&g);
        for _ in 0..cfg.rounds.count() {
            let m = sample_matching(&g, rule, &mut rngs);
            for (u, v) in m.pairs() {
                let merged = LoadState::average(&states[u as usize], &states[v as usize]);
                states[u as usize] = merged.clone();
                states[v as usize] = merged;
            }
        }
        let (raw, part) = assign_labels(&states, cfg.query, cfg.beta);

        let out = cluster(&g, &cfg).unwrap();
        prop_assert_eq!(out.seeds, seeds);
        prop_assert_eq!(out.states, states, "states diverged from reference");
        prop_assert_eq!(out.raw_labels, raw);
        prop_assert_eq!(out.partition, part);
    }

    /// Changing only the query rule never changes seeds, states, or the
    /// number of labelled nodes.
    #[test]
    fn query_rule_does_not_affect_process(seed in 0u64..3_000) {
        use lbc_core::QueryRule;
        let (g, _) = generators::ring_of_cliques(2, 8, 0).unwrap();
        let base = LbConfig::new(0.5, 15).with_seed(seed);
        let a = cluster(&g, &base.clone().with_query(QueryRule::PaperThreshold));
        let b = cluster(&g, &base.with_query(QueryRule::ArgMax));
        if let (Ok(a), Ok(b)) = (a, b) {
            prop_assert_eq!(a.seeds, b.seeds);
            prop_assert_eq!(a.states, b.states);
            prop_assert_eq!(a.partition.n(), b.partition.n());
        }
    }
}
