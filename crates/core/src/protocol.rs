//! The fully distributed implementation on the synchronous network.
//!
//! Each paper round is realised as a three-message handshake, so one
//! averaging round costs three network rounds:
//!
//! * **phase 0** — (first: adopt any `Update` delivered from the previous
//!   paper round); flip the activation coin; active nodes send `Propose`
//!   to a random neighbour (or a `G*` self-loop slot in §4.5 mode).
//! * **phase 1** — non-active nodes that received exactly one `Propose`
//!   reply `Accept` carrying their full state.
//! * **phase 2** — the proposer merges the two states with the paper's
//!   averaging rule and ships the merged state back as `Update`.
//!
//! Network round 0 runs the seeding procedure locally at every node.
//! Message sizes follow Theorem 1.1(2)'s word model: `Propose` is one
//! word, `Accept`/`Update` carry two words per state entry.
//!
//! The per-node random draws (seeding, activation coin, slot draw) happen
//! in exactly the order the centralised implementation replays them, so
//! in a fault-free network [`cluster_distributed`] produces bit-for-bit
//! the same states as [`crate::cluster`] — enforced by tests.

use lbc_distsim::{Ctx, FaultPlan, MessageStats, Node, Payload, SyncNetwork};
use lbc_graph::{Graph, NodeId};

use crate::config::LbConfig;
use crate::driver::{ClusterError, ClusterOutput};
use crate::matching::ProposalRule;
use crate::query::assign_labels;
use crate::seeding::{node_seeding, Seed};
use crate::state::{LoadState, SeedId};

/// Protocol messages.
#[derive(Debug, Clone, PartialEq)]
pub enum LbMsg {
    /// "I am active and chose you" (phase 0 → 1).
    Propose,
    /// "I accept; here is my state" (phase 1 → 2).
    Accept(Vec<(SeedId, f64)>),
    /// "Here is our merged state" (phase 2 → 0).
    Update(Vec<(SeedId, f64)>),
}

impl Payload for LbMsg {
    fn words(&self) -> usize {
        match self {
            LbMsg::Propose => 1,
            LbMsg::Accept(e) | LbMsg::Update(e) => 1 + 2 * e.len(),
        }
    }
}

/// One node's program.
pub struct LbNode {
    n: usize,
    trials: usize,
    rule: ProposalRule,
    paper_rounds: usize,
    state: LoadState,
    seed_id: Option<SeedId>,
    active: bool,
    /// Reusable merge scratch: the averaging step writes here instead of
    /// allocating a fresh vector every paper round (the *message* payloads
    /// still allocate — they are owned by the network).
    merge_buf: Vec<(SeedId, f64)>,
    /// Reusable parking spot for the accepted peer state.
    peer_state: LoadState,
}

impl LbNode {
    fn new(n: usize, trials: usize, rule: ProposalRule, paper_rounds: usize) -> Self {
        LbNode {
            n,
            trials,
            rule,
            paper_rounds,
            state: LoadState::empty(),
            seed_id: None,
            active: false,
            merge_buf: Vec::new(),
            peer_state: LoadState::empty(),
        }
    }

    /// Final state (after the run).
    pub fn state(&self) -> &LoadState {
        &self.state
    }

    /// This node's seed id, if it became a seed.
    pub fn seed_id(&self) -> Option<SeedId> {
        self.seed_id
    }
}

impl Node for LbNode {
    type Msg = LbMsg;

    fn on_round(&mut self, ctx: &mut Ctx<'_, LbMsg>) {
        if ctx.round == 0 {
            // Seeding procedure, entirely local.
            self.seed_id = node_seeding(ctx.id, self.n, self.trials, ctx.rng);
            if let Some(id) = self.seed_id {
                self.state = LoadState::seed(id);
            }
            return;
        }
        let phase = (ctx.round - 1) % 3;
        let paper_round = ((ctx.round - 1) / 3) as usize;
        match phase {
            0 => {
                // Adopt the merged state from the previous paper round.
                // Merged states arrive sorted (the merge preserves order),
                // so adopt in place without re-sorting or reallocating.
                for (_, msg) in ctx.inbox().iter() {
                    if let LbMsg::Update(entries) = msg {
                        self.state.assign_from_sorted(entries);
                    }
                }
                if paper_round >= self.paper_rounds {
                    return; // all averaging rounds done; no new proposal
                }
                let (neighbours, rng) = ctx.neighbours_and_rng();
                let (active, target) = self.rule.draw(neighbours, rng);
                self.active = active;
                if let Some(t) = target {
                    ctx.send(t, LbMsg::Propose);
                }
            }
            1 => {
                if self.active {
                    return; // active nodes ignore proposals
                }
                let proposers: Vec<NodeId> = ctx
                    .inbox()
                    .iter()
                    .filter(|(_, m)| matches!(m, LbMsg::Propose))
                    .map(|&(from, _)| from)
                    .collect();
                if let [u] = proposers[..] {
                    ctx.send(u, LbMsg::Accept(self.state.entries().to_vec()));
                }
            }
            2 => {
                // At most one Accept can arrive (only our proposal target
                // could have accepted, and it accepts one proposer).
                let accept = ctx.inbox().iter().find_map(|(from, m)| match m {
                    LbMsg::Accept(entries) => Some((*from, entries.clone())),
                    _ => None,
                });
                if let Some((from, entries)) = accept {
                    self.peer_state.assign_from_sorted(&entries);
                    LoadState::average_into(&self.state, &self.peer_state, &mut self.merge_buf);
                    self.state.assign_from_sorted(&self.merge_buf);
                    ctx.send(from, LbMsg::Update(self.merge_buf.clone()));
                }
            }
            _ => unreachable!(),
        }
    }
}

/// Run the full algorithm on the synchronous message-passing network.
///
/// Returns the clustering output plus the measured traffic statistics
/// (`stats.sent_words` is the Theorem 1.1(2) quantity). An optional
/// fault plan injects message drops / crashed nodes; with faults the
/// distributed execution may legitimately diverge from the centralised
/// one.
///
/// ```
/// use lbc_core::{cluster, cluster_distributed, LbConfig};
/// use lbc_graph::generators::ring_of_cliques;
///
/// let (g, _) = ring_of_cliques(2, 10, 0).unwrap();
/// let cfg = LbConfig::new(0.5, 20).with_seed(7);
/// let (dist, stats) = cluster_distributed(&g, &cfg, None).unwrap();
/// // Fault-free distributed ≡ centralised, bit for bit.
/// let central = cluster(&g, &cfg).unwrap();
/// assert_eq!(dist.states, central.states);
/// assert!(stats.sent_words > 0);
/// ```
pub fn cluster_distributed(
    graph: &Graph,
    cfg: &LbConfig,
    faults: Option<FaultPlan>,
) -> Result<(ClusterOutput, MessageStats), ClusterError> {
    let n = graph.n();
    if n == 0 {
        return Err(ClusterError::EmptyGraph);
    }
    let rule = cfg.proposal_rule(graph);
    let paper_rounds = cfg.rounds.count();
    let trials = cfg.trials();
    let mut net = SyncNetwork::new(graph, cfg.seed, |_| {
        LbNode::new(n, trials, rule, paper_rounds)
    });
    if let Some(f) = faults {
        net.set_faults(f);
    }
    // Round 0 (seeding) + 3 per paper round + 1 to deliver final Update.
    net.run(1 + 3 * paper_rounds + 1);

    let seeds: Vec<Seed> = net
        .nodes()
        .iter()
        .enumerate()
        .filter_map(|(v, node)| {
            node.seed_id().map(|id| Seed {
                node: v as NodeId,
                id,
            })
        })
        .collect();
    if seeds.is_empty() {
        return Err(ClusterError::NoSeeds);
    }
    let states: Vec<LoadState> = net.nodes().iter().map(|nd| nd.state().clone()).collect();
    let (raw_labels, partition) = assign_labels(&states, cfg.query, cfg.beta);
    let stats = *net.stats();
    Ok((
        ClusterOutput {
            partition,
            raw_labels,
            seeds,
            rounds: paper_rounds,
            states,
        },
        stats,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::cluster;
    use lbc_eval::accuracy;
    use lbc_graph::generators;

    #[test]
    fn message_word_counts() {
        assert_eq!(LbMsg::Propose.words(), 1);
        assert_eq!(LbMsg::Accept(vec![(1, 0.5)]).words(), 3);
        assert_eq!(LbMsg::Update(vec![(1, 0.5), (2, 0.25)]).words(), 5);
    }

    #[test]
    fn distributed_matches_centralised_bit_for_bit() {
        let (g, _) = generators::ring_of_cliques(3, 12, 0).unwrap();
        let cfg = LbConfig::new(1.0 / 3.0, 30).with_seed(17);
        let central = cluster(&g, &cfg).unwrap();
        let (dist, stats) = cluster_distributed(&g, &cfg, None).unwrap();
        assert_eq!(central.seeds, dist.seeds);
        assert_eq!(central.states, dist.states, "states diverged");
        assert_eq!(central.partition, dist.partition);
        assert!(stats.sent_messages > 0);
        assert_eq!(stats.dropped_messages, 0);
    }

    #[test]
    fn distributed_matches_centralised_on_irregular_graph() {
        let (g, truth) = generators::planted_partition(2, 30, 0.4, 0.02, 5).unwrap();
        // Capped (G*) mode voids many proposals, so matchings are
        // sparser; give the process enough rounds to mix.
        let cfg = LbConfig::new(0.5, 150).with_seed(23);
        let central = cluster(&g, &cfg).unwrap();
        let (dist, _) = cluster_distributed(&g, &cfg, None).unwrap();
        assert_eq!(central.states, dist.states);
        let acc = accuracy(truth.labels(), dist.partition.labels());
        assert!(acc > 0.9, "accuracy {acc}");
    }

    #[test]
    fn traffic_scales_with_rounds() {
        let (g, _) = generators::ring_of_cliques(2, 16, 0).unwrap();
        let run = |t: usize| {
            let cfg = LbConfig::new(0.5, t).with_seed(3);
            cluster_distributed(&g, &cfg, None).unwrap().1
        };
        let short = run(10);
        let long = run(40);
        assert!(long.sent_words > 2 * short.sent_words);
        // 1 seeding + 3T + 1 final delivery rounds.
        assert_eq!(short.rounds, 1 + 3 * 10 + 1);
    }

    #[test]
    fn message_complexity_within_theorem_bound_shape() {
        // Theorem 1.1(2): O(T · n · k log k) words. Conservative sanity
        // check: per paper round, words ≤ n · (3 + 4·s) where s = #seeds.
        let (g, _) = generators::ring_of_cliques(2, 40, 0).unwrap();
        let cfg = LbConfig::new(0.5, 25).with_seed(9);
        let (out, stats) = cluster_distributed(&g, &cfg, None).unwrap();
        let s = out.seeds.len() as u64;
        let bound = 25u64 * g.n() as u64 * (3 + 4 * s);
        assert!(
            stats.sent_words < bound,
            "sent {} vs bound {bound}",
            stats.sent_words
        );
    }

    #[test]
    fn survives_message_drops_with_degraded_accuracy() {
        // Dropped `Update`s make averaging one-sided, so load is no
        // longer conserved; the claim tested is *graceful* degradation —
        // mean accuracy across runs stays well above chance.
        let (g, truth) = generators::ring_of_cliques(3, 20, 0).unwrap();
        let mut total_acc = 0.0;
        let mut dropped = 0u64;
        let runs = 5u64;
        for s in 0..runs {
            let cfg = LbConfig::new(1.0 / 3.0, 60).with_seed(7 + s);
            let (out, stats) =
                cluster_distributed(&g, &cfg, Some(FaultPlan::with_drops(0.05, 11 + s))).unwrap();
            dropped += stats.dropped_messages;
            total_acc += accuracy(truth.labels(), out.partition.labels());
        }
        assert!(dropped > 0);
        let mean = total_acc / runs as f64;
        assert!(mean > 0.75, "mean accuracy under drops {mean}");
    }

    #[test]
    fn crashed_nodes_do_not_stop_the_rest() {
        let (g, truth) = generators::ring_of_cliques(2, 20, 0).unwrap();
        let cfg = LbConfig::new(0.5, 120).with_seed(13);
        let faults = FaultPlan::none().crash_nodes(g.n(), &[5, 25]);
        let (out, _) = cluster_distributed(&g, &cfg, Some(faults)).unwrap();
        // Evaluate only live nodes.
        let live: Vec<usize> = (0..g.n()).filter(|&v| v != 5 && v != 25).collect();
        let t: Vec<u32> = live.iter().map(|&v| truth.labels()[v]).collect();
        let p: Vec<u32> = live.iter().map(|&v| out.partition.labels()[v]).collect();
        let acc = accuracy(&t, &p);
        assert!(acc > 0.8, "accuracy among live nodes {acc}");
    }

    #[test]
    fn empty_graph_rejected() {
        let g = Graph::from_edges(0, &[]).unwrap();
        let cfg = LbConfig::new(0.5, 5);
        assert!(matches!(
            cluster_distributed(&g, &cfg, None),
            Err(ClusterError::EmptyGraph)
        ));
    }

    use lbc_graph::Graph;
}
