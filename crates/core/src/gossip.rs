//! Other gossip processes on the random matching substrate.
//!
//! The paper's abstract: *"we present a purely algebraic result
//! characterising the early behaviours of load balancing processes …
//! we believe that this result can be further applied to analyse other
//! gossip processes, such as rumour spreading and averaging processes."*
//! This module implements those two processes on the same matching model
//! so the experiment suite can exhibit the connection:
//!
//! * [`rumour_spread`] — a rumour starting at one node is forwarded
//!   whenever a matched pair straddles the informed/uninformed boundary.
//!   On a well-clustered graph the informed count shows a two-phase
//!   curve: fast saturation of the source's cluster, then a long wait to
//!   cross the sparse cut — the same `T`-vs-mixing-time separation the
//!   clustering algorithm exploits.
//! * [`gossip_average`] — plain 1-dimensional averaging from arbitrary
//!   initial values; its deviation from the mean contracts per round at
//!   a rate governed by `d̄/4 · (1 − λ_2)` (Lemma 2.1's expectation).

use lbc_distsim::NodeRng;
use lbc_graph::{Graph, NodeId};

use crate::matching::{sample_matching_into, MatchingScratch, ProposalRule};

/// Trajectory of a rumour-spreading run.
#[derive(Debug, Clone)]
pub struct RumourTrajectory {
    /// `informed[t]` = number of informed nodes after `t` rounds
    /// (`informed\[0\] == 1`).
    pub informed: Vec<usize>,
    /// Round at which everyone was informed (`None` if the budget ran
    /// out first — e.g. a disconnected graph).
    pub completed_at: Option<usize>,
}

impl RumourTrajectory {
    /// First round with at least `target` informed nodes.
    pub fn rounds_to(&self, target: usize) -> Option<usize> {
        self.informed.iter().position(|&c| c >= target)
    }
}

/// Spread a rumour from `source` through matching rounds: when a matched
/// pair contains exactly one informed node, both end the round informed.
pub fn rumour_spread(
    g: &Graph,
    rule: ProposalRule,
    source: NodeId,
    max_rounds: usize,
    seed: u64,
) -> RumourTrajectory {
    let n = g.n();
    assert!((source as usize) < n, "source out of range");
    let mut rngs: Vec<NodeRng> = (0..n as u32).map(|v| NodeRng::for_node(seed, v)).collect();
    let mut informed = vec![false; n];
    informed[source as usize] = true;
    let mut count = 1usize;
    let mut trajectory = vec![count];
    let mut completed_at = if n == 1 { Some(0) } else { None };
    let mut scratch = MatchingScratch::new(n);
    for t in 1..=max_rounds {
        if completed_at.is_some() {
            break;
        }
        sample_matching_into(g, rule, &mut rngs, &mut scratch);
        // Compact O(|M|) pair list: forwarding is per-pair independent
        // (pairs are disjoint), so iteration order is free.
        for &(u, v) in scratch.matched() {
            let (iu, iv) = (informed[u as usize], informed[v as usize]);
            if iu != iv {
                informed[u as usize] = true;
                informed[v as usize] = true;
                count += 1;
            }
        }
        trajectory.push(count);
        if count == n {
            completed_at = Some(t);
        }
    }
    RumourTrajectory {
        informed: trajectory,
        completed_at,
    }
}

/// Trajectory of a gossip-averaging run.
#[derive(Debug, Clone)]
pub struct AveragingTrajectory {
    /// Max absolute deviation from the mean after each round
    /// (`deviation\[0\]` is the initial deviation).
    pub deviation: Vec<f64>,
    /// The exact mean (conserved by the process).
    pub mean: f64,
    /// Final values.
    pub values: Vec<f64>,
}

impl AveragingTrajectory {
    /// First round with deviation ≤ `eps` (None if never reached).
    pub fn rounds_to_eps(&self, eps: f64) -> Option<usize> {
        self.deviation.iter().position(|&d| d <= eps)
    }
}

/// Run 1-dimensional gossip averaging from `initial` values for
/// `rounds` rounds, recording the max deviation from the (conserved)
/// mean each round.
pub fn gossip_average(
    g: &Graph,
    rule: ProposalRule,
    initial: &[f64],
    rounds: usize,
    seed: u64,
) -> AveragingTrajectory {
    let n = g.n();
    assert_eq!(initial.len(), n, "initial values length mismatch");
    let mut rngs: Vec<NodeRng> = (0..n as u32).map(|v| NodeRng::for_node(seed, v)).collect();
    let mut x = initial.to_vec();
    let mean = x.iter().sum::<f64>() / n.max(1) as f64;
    let dev = |x: &[f64]| x.iter().map(|v| (v - mean).abs()).fold(0.0f64, f64::max);
    let mut deviation = Vec::with_capacity(rounds + 1);
    deviation.push(dev(&x));
    let mut scratch = MatchingScratch::new(n);
    for _ in 0..rounds {
        sample_matching_into(g, rule, &mut rngs, &mut scratch);
        scratch.apply_dense(&mut x);
        deviation.push(dev(&x));
    }
    AveragingTrajectory {
        deviation,
        mean,
        values: x,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lbc_graph::generators;

    #[test]
    fn rumour_reaches_everyone_on_connected_graph() {
        let g = generators::complete(64).unwrap();
        let t = rumour_spread(&g, ProposalRule::Uniform, 0, 1000, 3);
        assert!(t.completed_at.is_some());
        assert_eq!(*t.informed.last().unwrap(), 64);
        // Monotone non-decreasing.
        for w in t.informed.windows(2) {
            assert!(w[1] >= w[0]);
        }
    }

    #[test]
    fn rumour_is_logarithmic_on_expanders() {
        // On K_n the informed set roughly doubles per O(1) rounds.
        let g = generators::complete(256).unwrap();
        let t = rumour_spread(&g, ProposalRule::Uniform, 0, 2000, 5);
        let done = t.completed_at.unwrap();
        assert!(done < 120, "rumour took {done} rounds on K_256");
    }

    #[test]
    fn rumour_is_slow_on_cycle() {
        // Cycle: informed set grows by O(1) per round ⇒ Ω(n) rounds.
        let g = generators::cycle(256).unwrap();
        let t = rumour_spread(&g, ProposalRule::Uniform, 0, 4000, 5);
        let done = t.completed_at.unwrap();
        assert!(done > 256, "rumour took only {done} rounds on C_256");
    }

    #[test]
    fn cluster_structure_shows_as_two_phase_spreading() {
        // Ring of 2 cliques with one bridge: the source clique saturates
        // fast; crossing the bridge dominates the completion time.
        let (g, _) = generators::ring_of_cliques(2, 64, 0).unwrap();
        let t = rumour_spread(&g, ProposalRule::Uniform, 0, 50_000, 9);
        let half = t.rounds_to(64).unwrap();
        let full = t.completed_at.unwrap();
        assert!(
            full > 3 * half,
            "expected long cut-crossing phase: half at {half}, full at {full}"
        );
    }

    #[test]
    fn rumour_never_completes_on_disconnected_graph() {
        let g = lbc_graph::Graph::from_edges(4, &[(0, 1), (2, 3)]).unwrap();
        let t = rumour_spread(&g, ProposalRule::Uniform, 0, 500, 2);
        assert_eq!(t.completed_at, None);
        assert_eq!(*t.informed.last().unwrap(), 2);
    }

    #[test]
    fn averaging_conserves_mean_and_contracts() {
        let g = generators::complete(32).unwrap();
        let initial: Vec<f64> = (0..32).map(|i| i as f64).collect();
        let t = gossip_average(&g, ProposalRule::Uniform, &initial, 300, 7);
        assert!((t.mean - 15.5).abs() < 1e-12);
        let sum: f64 = t.values.iter().sum();
        assert!((sum - 32.0 * 15.5).abs() < 1e-9, "mean not conserved");
        assert!(t.deviation[0] == 15.5);
        assert!(*t.deviation.last().unwrap() < 0.01 * t.deviation[0]);
    }

    #[test]
    fn averaging_rate_tracks_spectral_gap() {
        // Expander averages geometrically; cycle of the same size is far
        // slower.
        let fast = generators::complete(64).unwrap();
        let slow = generators::cycle(64).unwrap();
        let initial: Vec<f64> = (0..64).map(|i| if i < 32 { 1.0 } else { 0.0 }).collect();
        let tf = gossip_average(&fast, ProposalRule::Uniform, &initial, 2000, 3);
        let ts = gossip_average(&slow, ProposalRule::Uniform, &initial, 2000, 3);
        let rf = tf.rounds_to_eps(0.05).expect("expander should converge");
        // None would mean even slower: never reached in budget.
        if let Some(rs) = ts.rounds_to_eps(0.05) {
            assert!(rs > 5 * rf, "cycle {rs} vs expander {rf}");
        }
    }

    #[test]
    fn uniform_initial_values_are_a_fixed_point() {
        let g = generators::cycle(10).unwrap();
        let t = gossip_average(&g, ProposalRule::Uniform, &[3.0; 10], 50, 1);
        assert!(t.deviation.iter().all(|&d| d < 1e-15));
        assert!(t.values.iter().all(|&v| v == 3.0));
    }
}
