//! Flat, allocation-free state storage for the averaging round loop.
//!
//! [`crate::state::LoadState`] is the right *interface* for a per-node
//! state — sorted `(seed id, load)` pairs — but a `Vec<LoadState>` is the
//! wrong *layout* for the hot loop: every merge allocates a fresh vector
//! (plus a clone for the second endpoint), and the states themselves are
//! scattered across the heap. [`StateArena`] keeps the same logical
//! content in one contiguous buffer:
//!
//! * the sparse `u64` seed ids are compacted once, after seeding, into
//!   dense `u32` indices `0..s` — **in ascending id order**, so a merge
//!   by dense index visits entries in exactly the order a merge by raw
//!   id would, and produces bit-identical floats;
//! * every node owns a fixed-stride region of `s` entry slots (an entry's
//!   key is one of the `s` seeds, so no state can ever exceed `s`
//!   entries — the CSR offset degenerates to `v · s` and every merge fits
//!   in its own region);
//! * [`StateArena::average_into`] is the same deterministic two-pointer
//!   merge as [`LoadState::average`], performed **in place** inside `u`'s
//!   region (writing toward whichever end of the region the live entries
//!   don't occupy — the classic merge-into-the-gap trick) and then copied
//!   once into `v`'s region. No scratch buffer, no allocation, one copy
//!   instead of the `LoadState` path's two.
//!
//! After seeding, a full averaging round therefore performs **zero heap
//! allocation** (enforced by `tests/zero_alloc.rs`), and the resident
//! footprint is a flat `n · s` table instead of `n` little vectors —
//! the substrate the ROADMAP's incremental re-clustering item needs.

use crate::matching::MatchingScratch;
use crate::seeding::Seed;
use crate::state::{LoadState, SeedId};

/// Flat per-node load states over a dense seed-index universe.
///
/// Node `v` owns entry slots `[v·s, (v+1)·s)`; its live entries sit at
/// `[v·s + start[v], v·s + start[v] + len[v])`, sorted by dense index.
/// `start[v]` is 0 (left-aligned) or `s − len[v]` (right-aligned) — the
/// alignment alternates as merges bounce the state between the two ends
/// of its region, which is what lets every merge run in place.
#[derive(Debug, Clone, PartialEq)]
pub struct StateArena {
    /// Sorted, duplicate-free seed ids; dense index = position.
    ids: Vec<SeedId>,
    /// Per-entry dense seed index, `n · s` slots.
    idx: Vec<u32>,
    /// Per-entry load, parallel to `idx`.
    load: Vec<f64>,
    /// First live slot of each node's region (see type docs).
    start: Vec<u32>,
    /// Live entries per node (`len[v] ≤ s`).
    len: Vec<u32>,
}

impl StateArena {
    fn with_universe(ids: Vec<SeedId>, n: usize) -> Self {
        let s = ids.len();
        StateArena {
            ids,
            idx: vec![0; n * s],
            load: vec![0.0; n * s],
            start: vec![0; n],
            len: vec![0; n],
        }
    }

    /// Arena for `n` nodes seeded by `seeds`: each seed node starts with
    /// unit load on its own id, every other node starts empty — the same
    /// initial condition as [`crate::cluster`]'s `Vec<LoadState>` setup.
    ///
    /// Seeds with colliding ids (possible in principle, the id space is
    /// `[1, n³]`) share a dense index, exactly as two `LoadState`s with
    /// the same id merge into one entry.
    ///
    /// Memory trade-off: the full `n · s` table (~12 bytes per slot) is
    /// allocated up front, where the `Vec<LoadState>` layout grew with
    /// each node's actual support. That is what buys allocation-free
    /// in-place merges; at the usual `s = Θ((1/β)·ln(1/β))` (tens of
    /// seeds) it is a few hundred MB even at n = 10⁷. Extreme
    /// small-β/large-n combinations (s in the thousands, n in the tens
    /// of millions) should bound `seeding_trials` accordingly — the
    /// states converge to full support after `T` rounds anyway, so the
    /// steady-state footprint is the same; only the *up-front* cost
    /// differs.
    pub fn new(n: usize, seeds: &[Seed]) -> Self {
        let mut ids: Vec<SeedId> = seeds.iter().map(|s| s.id).collect();
        ids.sort_unstable();
        ids.dedup();
        let mut arena = StateArena::with_universe(ids, n);
        let s = arena.ids.len();
        for seed in seeds {
            let v = seed.node as usize;
            let d = arena.dense_index(seed.id).expect("seed id was interned");
            arena.idx[v * s] = d;
            arena.load[v * s] = 1.0;
            arena.len[v] = 1;
        }
        arena
    }

    /// Arena holding copies of arbitrary existing states (the id universe
    /// is the union of all entry ids). This is the seam for warm-starting
    /// from resident states — e.g. re-labelling a cached clustering, or
    /// the ROADMAP's incremental re-clustering.
    pub fn from_states(states: &[LoadState]) -> Self {
        let mut ids: Vec<SeedId> = states
            .iter()
            .flat_map(|st| st.entries().iter().map(|&(id, _)| id))
            .collect();
        ids.sort_unstable();
        ids.dedup();
        let mut arena = StateArena::with_universe(ids, states.len());
        let s = arena.ids.len();
        for (v, st) in states.iter().enumerate() {
            let off = v * s;
            for (k, &(id, x)) in st.entries().iter().enumerate() {
                arena.idx[off + k] = arena.ids.binary_search(&id).expect("interned") as u32;
                arena.load[off + k] = x;
            }
            arena.len[v] = st.len() as u32;
        }
        arena
    }

    /// Number of nodes.
    pub fn n(&self) -> usize {
        self.len.len()
    }

    /// Number of distinct seed ids (= per-node entry capacity).
    pub fn seed_count(&self) -> usize {
        self.ids.len()
    }

    /// Sorted seed ids; `ids()[d]` is the raw id of dense index `d`.
    pub fn ids(&self) -> &[SeedId] {
        &self.ids
    }

    /// Dense index of a raw seed id, if interned.
    pub fn dense_index(&self, id: SeedId) -> Option<u32> {
        self.ids.binary_search(&id).ok().map(|p| p as u32)
    }

    /// Node `v`'s entries as parallel `(dense idx, load)` slices, sorted
    /// by dense index (equivalently: by raw seed id).
    pub fn entries(&self, v: usize) -> (&[u32], &[f64]) {
        let lo = v * self.ids.len() + self.start[v] as usize;
        let hi = lo + self.len[v] as usize;
        (&self.idx[lo..hi], &self.load[lo..hi])
    }

    /// Load of seed `id` at node `v` (0 if absent).
    pub fn load_of(&self, v: usize, id: SeedId) -> f64 {
        let Some(d) = self.dense_index(id) else {
            return 0.0;
        };
        let (idx, load) = self.entries(v);
        match idx.binary_search(&d) {
            Ok(p) => load[p],
            Err(_) => 0.0,
        }
    }

    /// The paper's averaging rule applied in place to the matched pair
    /// `(u, v)`: both nodes adopt the merged state.
    ///
    /// Same two-pointer merge, same per-entry arithmetic, as
    /// [`LoadState::average`] — dense indices are assigned in ascending
    /// id order and each output is computed from its operands alone, so
    /// the floats are bit-for-bit equal (see the parity property test in
    /// `tests/proptests.rs`). The merge writes into the unoccupied end
    /// of `u`'s region (backward when the live entries are left-aligned,
    /// forward when right-aligned; the result can never outgrow the
    /// region, so the write cursor cannot overrun the unread entries)
    /// and the result is then copied once into `v`'s region.
    pub fn average_into(&mut self, u: usize, v: usize) {
        debug_assert_ne!(u, v, "cannot average a node with itself");
        let s = self.ids.len();
        let (ou, ov) = (u * s, v * s);
        let (su, sv) = (self.start[u] as usize, self.start[v] as usize);
        let (lu, lv) = (self.len[u] as usize, self.len[v] as usize);
        let k = if su == 0 {
            self.merge_backward(ou, lu, ov + sv, lv)
        } else {
            self.merge_forward(ou + su, lu, ov + sv, lv)
        };
        let ns = if su == 0 { s - k } else { 0 };
        self.idx.copy_within(ou + ns..ou + ns + k, ov + ns);
        self.load.copy_within(ou + ns..ou + ns + k, ov + ns);
        self.start[u] = ns as u32;
        self.start[v] = ns as u32;
        self.len[u] = k as u32;
        self.len[v] = k as u32;
    }

    /// Merge `u`'s left-aligned entries (`au..au+lu`) with `v`'s entries
    /// (`av..av+lv`) into the right end of `u`'s region, scanning from
    /// the largest dense index down. Returns the merged length.
    ///
    /// Writes stay clear of unread input: with `t` outputs written and
    /// `i` of `u`'s entries still unread, the outputs still to come
    /// number at least `i` (`u`'s unread entries all produce one), so
    /// `k − t > i − 1` and the write slot `au + s − 1 − t ≥ au + k − 1 − t
    /// > au + i − 1`, the slot of `u`'s next unread entry.
    fn merge_backward(&mut self, au: usize, lu: usize, av: usize, lv: usize) -> usize {
        let s = self.ids.len();
        let (mut i, mut j, mut w) = (lu, lv, s);
        while i > 0 && j > 0 {
            let ia = self.idx[au + i - 1];
            let ib = self.idx[av + j - 1];
            let (id, x) = if ia == ib {
                let x = (self.load[au + i - 1] + self.load[av + j - 1]) / 2.0;
                i -= 1;
                j -= 1;
                (ia, x)
            } else if ia > ib {
                let x = self.load[au + i - 1] / 2.0;
                i -= 1;
                (ia, x)
            } else {
                let x = self.load[av + j - 1] / 2.0;
                j -= 1;
                (ib, x)
            };
            w -= 1;
            self.idx[au + w] = id;
            self.load[au + w] = x;
        }
        while i > 0 {
            w -= 1;
            self.idx[au + w] = self.idx[au + i - 1];
            self.load[au + w] = self.load[au + i - 1] / 2.0;
            i -= 1;
        }
        while j > 0 {
            w -= 1;
            self.idx[au + w] = self.idx[av + j - 1];
            self.load[au + w] = self.load[av + j - 1] / 2.0;
            j -= 1;
        }
        s - w
    }

    /// Mirror of [`StateArena::merge_backward`]: `u`'s entries are
    /// right-aligned (`au..au+lu` with `au + lu` = region end), merge
    /// into the left end of `u`'s region scanning from the smallest
    /// dense index up. Returns the merged length.
    fn merge_forward(&mut self, au: usize, lu: usize, av: usize, lv: usize) -> usize {
        let base = au + lu - self.ids.len(); // region start (= au − start)
        let (mut i, mut j, mut w) = (0, 0, 0);
        while i < lu && j < lv {
            let ia = self.idx[au + i];
            let ib = self.idx[av + j];
            let (id, x) = if ia == ib {
                let x = (self.load[au + i] + self.load[av + j]) / 2.0;
                i += 1;
                j += 1;
                (ia, x)
            } else if ia < ib {
                let x = self.load[au + i] / 2.0;
                i += 1;
                (ia, x)
            } else {
                let x = self.load[av + j] / 2.0;
                j += 1;
                (ib, x)
            };
            self.idx[base + w] = id;
            self.load[base + w] = x;
            w += 1;
        }
        while i < lu {
            self.idx[base + w] = self.idx[au + i];
            self.load[base + w] = self.load[au + i] / 2.0;
            i += 1;
            w += 1;
        }
        while j < lv {
            self.idx[base + w] = self.idx[av + j];
            self.load[base + w] = self.load[av + j] / 2.0;
            j += 1;
            w += 1;
        }
        w
    }

    /// Hint the cache that node `v`'s region is about to be merged: its
    /// start/len metadata plus the first and last line of each entry row
    /// (the in-place merge starts from one of the two ends; the hardware
    /// next-line prefetcher follows the stream from there).
    #[inline]
    fn prefetch_node(&self, v: usize) {
        use crate::matching::prefetch_read;
        let s = self.ids.len();
        if s == 0 {
            return;
        }
        let off = v * s;
        // In bounds: v < n and off + s - 1 < n·s.
        unsafe {
            prefetch_read(self.start.as_ptr().add(v));
            prefetch_read(self.len.as_ptr().add(v));
            prefetch_read(self.idx.as_ptr().add(off));
            prefetch_read(self.load.as_ptr().add(off));
            prefetch_read(self.load.as_ptr().add(off + s - 1));
        }
    }

    /// Merge every matched pair of the sampled matching — the batched
    /// form of [`StateArena::average_into`] used by the round loops.
    /// Walks the scratch's compact pair list (pairs are disjoint, so
    /// processing order cannot affect the result) with a small prefetch
    /// window running ahead of the merge cursor, so the randomly
    /// scattered pair regions are already in cache when their merge
    /// starts.
    pub fn average_matched(&mut self, m: &MatchingScratch) {
        const LOOKAHEAD: usize = 8;
        let pairs = m.matched();
        for (i, &(u, v)) in pairs.iter().enumerate() {
            if let Some(&(pu, pv)) = pairs.get(i + LOOKAHEAD) {
                self.prefetch_node(pu as usize);
                self.prefetch_node(pv as usize);
            }
            self.average_into(u as usize, v as usize);
        }
    }

    /// L1 distance `Σ_i |x_u(i) − x_v(i)|` between two nodes' states
    /// over the union of their supports (absent entries count as 0).
    ///
    /// This is exactly the total load the averaging rule moves when the
    /// pair is merged: each endpoint shifts every coordinate by
    /// `|a − b| / 2`, so the pair's movement is `|a − b|` per
    /// coordinate. The warm-start driver sums it per round as its
    /// convergence signal. Read-only, allocation-free.
    pub fn l1_distance(&self, u: usize, v: usize) -> f64 {
        let (iu, lu) = self.entries(u);
        let (iv, lv) = self.entries(v);
        let (mut i, mut j, mut d) = (0usize, 0usize, 0.0f64);
        while i < iu.len() && j < iv.len() {
            if iu[i] == iv[j] {
                d += (lu[i] - lv[j]).abs();
                i += 1;
                j += 1;
            } else if iu[i] < iv[j] {
                d += lu[i];
                i += 1;
            } else {
                d += lv[j];
                j += 1;
            }
        }
        d += lu[i..].iter().sum::<f64>();
        d += lv[j..].iter().sum::<f64>();
        d
    }

    /// [`StateArena::average_matched`] plus movement tracking: returns
    /// the total load moved this round, `Σ_{(u,v) ∈ M} ‖x_u − x_v‖₁`
    /// (see [`StateArena::l1_distance`]). Same merges, same order, same
    /// floats as the untracked loop — the distance pass is read-only —
    /// and still allocation-free (the warm-start steady state is covered
    /// by `tests/zero_alloc.rs`).
    pub fn average_matched_tracked(&mut self, m: &MatchingScratch) -> f64 {
        const LOOKAHEAD: usize = 8;
        let pairs = m.matched();
        let mut moved = 0.0f64;
        for (i, &(u, v)) in pairs.iter().enumerate() {
            if let Some(&(pu, pv)) = pairs.get(i + LOOKAHEAD) {
                self.prefetch_node(pu as usize);
                self.prefetch_node(pv as usize);
            }
            moved += self.l1_distance(u as usize, v as usize);
            self.average_into(u as usize, v as usize);
        }
        moved
    }

    /// Total load across all nodes (`Σ_v Σ_i x_v(i)`); conserved by
    /// averaging, so one seed contributes exactly 1 forever. The warm
    /// start normalises per-round movement by this.
    pub fn total_load(&self) -> f64 {
        (0..self.n())
            .map(|v| self.entries(v).1.iter().sum::<f64>())
            .sum()
    }

    /// Materialise node `v` as a [`LoadState`] (raw ids restored).
    pub fn to_load_state(&self, v: usize) -> LoadState {
        let (idx, load) = self.entries(v);
        LoadState::from_sorted_entries(
            idx.iter()
                .zip(load)
                .map(|(&d, &x)| (self.ids[d as usize], x))
                .collect(),
        )
    }

    /// Materialise every node — the [`crate::ClusterOutput`] boundary
    /// conversion, done once per clustering run.
    pub fn to_load_states(&self) -> Vec<LoadState> {
        (0..self.n()).map(|v| self.to_load_state(v)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seed(node: u32, id: SeedId) -> Seed {
        Seed { node, id }
    }

    #[test]
    fn new_places_unit_loads_at_seed_nodes() {
        let a = StateArena::new(4, &[seed(1, 500), seed(3, 20)]);
        assert_eq!(a.n(), 4);
        assert_eq!(a.seed_count(), 2);
        assert_eq!(a.ids(), &[20, 500]);
        assert_eq!(a.load_of(1, 500), 1.0);
        assert_eq!(a.load_of(3, 20), 1.0);
        assert_eq!(a.load_of(0, 500), 0.0);
        assert!(a.to_load_state(0).is_empty());
        assert_eq!(a.to_load_state(3).entries(), &[(20, 1.0)]);
    }

    #[test]
    fn dense_indices_follow_id_order() {
        let a = StateArena::new(3, &[seed(0, 99), seed(1, 7), seed(2, 42)]);
        assert_eq!(a.dense_index(7), Some(0));
        assert_eq!(a.dense_index(42), Some(1));
        assert_eq!(a.dense_index(99), Some(2));
        assert_eq!(a.dense_index(8), None);
    }

    #[test]
    fn average_matches_load_state_average_bitwise() {
        let sa = LoadState::from_entries(vec![(7, 0.3), (42, 0.5)]);
        let sb = LoadState::from_entries(vec![(42, 0.1), (99, 0.25)]);
        let mut a = StateArena::from_states(&[sa.clone(), sb.clone()]);
        a.average_into(0, 1);
        let want = LoadState::average(&sa, &sb);
        assert_eq!(a.to_load_state(0), want);
        assert_eq!(a.to_load_state(1), want);
        // The second merge exercises the opposite (right-aligned →
        // forward) in-place direction.
        a.average_into(0, 1);
        let want2 = LoadState::average(&want, &want);
        assert_eq!(a.to_load_state(0), want2);
        assert_eq!(a.to_load_state(1), want2);
    }

    #[test]
    fn repeated_merges_stay_within_capacity() {
        // Worst case: every node ends up tracking every seed.
        let seeds: Vec<Seed> = (0..4).map(|v| seed(v, 1000 - v as u64)).collect();
        let mut a = StateArena::new(4, &seeds);
        for _ in 0..8 {
            a.average_into(0, 1);
            a.average_into(2, 3);
            a.average_into(1, 2);
            a.average_into(3, 0);
        }
        for v in 0..4 {
            let st = a.to_load_state(v);
            assert_eq!(st.len(), 4);
            // Entries stay sorted by raw id through in-place merges.
            assert!(st.entries().windows(2).all(|w| w[0].0 < w[1].0));
        }
        // Total load per seed is conserved.
        for s in &seeds {
            let total: f64 = (0..4).map(|v| a.load_of(v, s.id)).sum();
            assert!((total - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn merges_against_empty_states_halve() {
        let mut a = StateArena::new(3, &[seed(0, 9), seed(1, 4)]);
        a.average_into(0, 2); // seeded vs empty
        assert_eq!(a.load_of(0, 9), 0.5);
        assert_eq!(a.load_of(2, 9), 0.5);
        a.average_into(2, 0); // right-aligned vs right-aligned
        assert_eq!(a.load_of(0, 9), 0.5);
        let mut b = StateArena::new(2, &[]);
        b.average_into(0, 1); // zero-seed universe: still well-defined
        assert_eq!(b.to_load_state(0).len(), 0);
    }

    #[test]
    fn duplicate_seed_ids_share_a_dense_slot() {
        let a = StateArena::new(3, &[seed(0, 5), seed(1, 5)]);
        assert_eq!(a.seed_count(), 1);
        assert_eq!(a.load_of(0, 5), 1.0);
        assert_eq!(a.load_of(1, 5), 1.0);
    }

    #[test]
    fn l1_distance_over_union_support() {
        let sa = LoadState::from_entries(vec![(7, 0.3), (42, 0.5)]);
        let sb = LoadState::from_entries(vec![(42, 0.1), (99, 0.25)]);
        let mut a = StateArena::from_states(&[sa, sb]);
        // |0.3 − 0| + |0.5 − 0.1| + |0 − 0.25| = 0.95.
        assert!((a.l1_distance(0, 1) - 0.95).abs() < 1e-15);
        assert_eq!(a.l1_distance(0, 1).to_bits(), a.l1_distance(1, 0).to_bits());
        assert!((a.total_load() - 1.15).abs() < 1e-15);
        // Averaging the pair collapses the distance to zero and
        // conserves the total.
        a.average_into(0, 1);
        assert_eq!(a.l1_distance(0, 1), 0.0);
        assert!((a.total_load() - 1.15).abs() < 1e-15);
    }

    #[test]
    fn from_states_round_trips() {
        let states = vec![
            LoadState::from_entries(vec![(3, 0.25), (9, 0.5)]),
            LoadState::empty(),
            LoadState::from_entries(vec![(9, 0.125)]),
        ];
        let a = StateArena::from_states(&states);
        assert_eq!(a.to_load_states(), states);
    }
}
