//! Warm-start incremental re-clustering for dynamic graphs.
//!
//! The paper's pipeline is defined over a static graph: seed, run a
//! fixed `T = Θ(log n / (1 − λ_{k+1}))` rounds, query. A serving system
//! sees the graph *mutate* — and after a small [`GraphDelta`] the
//! resident load states are almost converged already, so re-running all
//! `T` rounds from fresh seeds throws away exactly the work the states
//! encode. [`warm_start`] instead:
//!
//! 1. rebuilds the flat round-loop arena from the prior run's resident
//!    states ([`StateArena::from_states`] — the substrate PR 2 landed),
//!    appending empty states for any nodes the delta added (they absorb
//!    load from their neighbours through the averaging rule itself);
//! 2. runs averaging rounds on the *mutated* graph until a
//!    **convergence criterion** on the relative per-round load movement
//!    `r_t = Σ_{(u,v) ∈ M_t} ‖x_u − x_v‖₁ / Σ_v ‖x_v‖₁` fires, instead
//!    of a fixed `T`. On a well-clustered graph `r_t` does **not** decay
//!    to zero — matched cut edges keep leaking load at a quasi-
//!    stationary plateau set by the outer conductance — so the criterion
//!    is *re-entry to the plateau*: stop once `r_t` has failed to
//!    improve the best observed movement by at least `min_decay` for
//!    `patience` consecutive rounds (or, fast path, once `r_t` drops
//!    under an absolute `tolerance`, which only truly quiet rounds hit);
//! 3. re-runs the query procedure on the final states.
//!
//! Two properties the tests pin down:
//!
//! * **Identity:** a warm start with an *empty* delta runs zero rounds
//!   and reproduces the cached [`ClusterOutput`] bit-for-bit (every
//!   `f64` equal) — `from_states` → query → `to_load_states` is a
//!   lossless round trip, so a no-op update can never perturb a served
//!   clustering.
//! * **Recovery is cheap:** after a small `k`-edge-flip perturbation the
//!   movement criterion fires after far fewer rounds than the cold `T`
//!   (the `incremental` bench sweeps `k` and records the ratio).
//!
//! Warm-start rounds draw from a fresh per-node stream family keyed by
//! `(cfg.seed, prior.rounds)`, so repeated warm starts over a chain of
//! deltas never replay earlier matchings, while the whole chain stays
//! deterministic.

use lbc_distsim::NodeRng;
use lbc_graph::{Graph, GraphDelta};

use crate::arena::StateArena;
use crate::config::LbConfig;
use crate::driver::{ClusterError, ClusterOutput};
use crate::matching::{sample_matching_into, MatchingScratch};
use crate::query::assign_labels_arena;
use crate::state::LoadState;

/// Convergence policy for [`warm_start`].
#[derive(Debug, Clone, PartialEq)]
pub struct WarmStartConfig {
    /// Fast exit: a round whose relative movement is ≤ this is
    /// converged outright (only near-empty matchings or fully mixed
    /// states get here; the plateau criterion below is the usual stop).
    pub tolerance: f64,
    /// A round counts as *still recovering* only if it improves the
    /// best observed relative movement by at least this fraction
    /// (`r_t < best · (1 − min_decay)`); anything else is plateau.
    pub min_decay: f64,
    /// Consecutive plateau rounds required before stopping (per-round
    /// matchings are random, so single quiet rounds are noise).
    pub patience: usize,
    /// Hard cap on warm rounds; hitting it reports `converged = false`.
    pub max_rounds: usize,
}

impl Default for WarmStartConfig {
    /// Movement must keep improving by ≥ 2% per round; five stalled
    /// rounds in a row end the recovery. Capped at 512 rounds. The
    /// absolute floor (`1e-4`) only short-circuits genuinely quiet
    /// rounds.
    fn default() -> Self {
        WarmStartConfig {
            tolerance: 1e-4,
            min_decay: 0.02,
            patience: 5,
            max_rounds: 512,
        }
    }
}

/// What a warm start did, and its refreshed output.
#[derive(Debug, Clone)]
pub struct WarmStartOutput {
    /// The refreshed clustering. `rounds` accumulates across the chain
    /// (prior rounds + warm rounds), so successive warm starts keep
    /// drawing fresh matching streams.
    pub output: ClusterOutput,
    /// Warm averaging rounds actually executed ("rounds to recovery").
    pub rounds_run: usize,
    /// Whether the movement criterion fired (vs. the `max_rounds` cap).
    pub converged: bool,
    /// Relative movement of the final executed round (0 when no rounds
    /// ran, i.e. the delta was empty).
    pub last_movement: f64,
}

/// Fresh stream family for warm rounds: SplitMix64-style mix of the
/// config seed with the prior's accumulated round count.
fn warm_stream_seed(seed: u64, prior_rounds: usize) -> u64 {
    let mut z =
        seed ^ 0x77a6_1571_2e5f_3bd1u64 ^ (prior_rounds as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Incrementally re-cluster `graph` from a prior run's resident states.
///
/// `graph` must be the prior run's graph with `delta` already applied
/// ([`Graph::apply_delta`]); `prior` is the cached output of that run
/// under the same `cfg`. See the module docs for the algorithm and the
/// identity/recovery guarantees.
///
/// ```
/// use lbc_core::{cluster, warm_start, LbConfig, WarmStartConfig};
/// use lbc_graph::{generators, GraphDelta};
///
/// let (g, truth) = generators::planted_partition(3, 40, 0.4, 0.01, 5).unwrap();
/// let cfg = LbConfig::new(1.0 / 3.0, 80).with_seed(2);
/// let cold = cluster(&g, &cfg).unwrap();
///
/// let delta = generators::k_edge_flip_delta(&g, &truth, 3, 9).unwrap();
/// let g2 = g.apply_delta(&delta).unwrap();
/// let warm = warm_start(&g2, &cfg, &cold, &delta, &WarmStartConfig::default()).unwrap();
/// assert!(warm.rounds_run < 80, "recovered in {} rounds", warm.rounds_run);
/// ```
pub fn warm_start(
    graph: &Graph,
    cfg: &LbConfig,
    prior: &ClusterOutput,
    delta: &GraphDelta,
    wcfg: &WarmStartConfig,
) -> Result<WarmStartOutput, ClusterError> {
    assert!(
        wcfg.tolerance >= 0.0
            && (0.0..1.0).contains(&wcfg.min_decay)
            && wcfg.patience >= 1
            && wcfg.max_rounds >= 1,
        "warm-start config out of range"
    );
    let n = graph.n();
    if n == 0 {
        return Err(ClusterError::EmptyGraph);
    }
    let prior_n = prior.states.len();
    if prior_n + delta.added_nodes() != n || prior.partition.n() != prior_n {
        return Err(ClusterError::PriorMismatch { prior_n, n });
    }

    // Rebuild the arena from the resident states; delta-added nodes
    // start empty (they pull load in through their first merges).
    let mut arena = if delta.added_nodes() == 0 {
        StateArena::from_states(&prior.states)
    } else {
        let mut states = prior.states.clone();
        states.resize(n, LoadState::empty());
        StateArena::from_states(&states)
    };

    let mut rounds_run = 0usize;
    let mut converged = true;
    let mut last_movement = 0.0f64;
    if !delta.is_empty() {
        // Recovery cannot be declared while a delta-added node that
        // *can* absorb load still carries an empty state — it has not
        // been matched yet and cannot be labelled. "Can absorb" means
        // reachable from some node with a non-empty state: an isolated
        // added node, or a whole new component wired only to other
        // empty-state nodes, will stay empty forever (merging empties
        // yields empty), so waiting on it would burn `max_rounds` for
        // nothing — those nodes land in the query's empty cluster, as
        // they would in a cold run without a seed.
        let mut pending: Vec<usize> = {
            let mut reachable = vec![false; n];
            let mut queue = std::collections::VecDeque::new();
            for (v, r) in reachable.iter_mut().enumerate() {
                if !arena.entries(v).0.is_empty() {
                    *r = true;
                    queue.push_back(v as u32);
                }
            }
            while let Some(v) = queue.pop_front() {
                for &w in graph.neighbours(v) {
                    if !reachable[w as usize] {
                        reachable[w as usize] = true;
                        queue.push_back(w);
                    }
                }
            }
            (prior_n..n).filter(|&v| reachable[v]).collect()
        };
        let total = arena.total_load();
        let stream_seed = warm_stream_seed(cfg.seed, prior.rounds);
        let mut rngs: Vec<NodeRng> = (0..n as u32)
            .map(|v| NodeRng::for_node(stream_seed, v))
            .collect();
        let mut scratch = MatchingScratch::new(n);
        let rule = cfg.proposal_rule(graph);
        converged = false;
        let mut best = f64::INFINITY;
        let mut streak = 0usize;
        for t in 1..=wcfg.max_rounds {
            sample_matching_into(graph, rule, &mut rngs, &mut scratch);
            let moved = arena.average_matched_tracked(&scratch);
            rounds_run = t;
            last_movement = if total > 0.0 { moved / total } else { 0.0 };
            let had_pending = pending.len();
            pending.retain(|&v| arena.entries(v).0.is_empty());
            if pending.len() != had_pending {
                // A new node just absorbed its first load; give its
                // neighbourhood fresh patience to settle.
                streak = 0;
            }
            if !pending.is_empty() {
                continue;
            }
            if last_movement <= wcfg.tolerance {
                converged = true;
                break;
            }
            if last_movement < best * (1.0 - wcfg.min_decay) {
                best = last_movement;
                streak = 0;
            } else {
                streak += 1;
                if streak >= wcfg.patience {
                    converged = true;
                    break;
                }
            }
        }
    }

    let (raw_labels, partition) = assign_labels_arena(&arena, cfg.query, cfg.beta);
    Ok(WarmStartOutput {
        output: ClusterOutput {
            partition,
            raw_labels,
            seeds: prior.seeds.clone(),
            rounds: prior.rounds + rounds_run,
            states: arena.to_load_states(),
        },
        rounds_run,
        converged,
        last_movement,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster;
    use lbc_eval::accuracy;
    use lbc_graph::generators;

    fn planted() -> (Graph, lbc_graph::Partition, LbConfig) {
        let (g, truth) = generators::planted_partition(3, 40, 0.4, 0.01, 5).unwrap();
        let cfg = LbConfig::new(1.0 / 3.0, 80).with_seed(2);
        (g, truth, cfg)
    }

    #[test]
    fn empty_delta_runs_zero_rounds() {
        let (g, _, cfg) = planted();
        let cold = cluster(&g, &cfg).unwrap();
        let warm = warm_start(
            &g,
            &cfg,
            &cold,
            &GraphDelta::new(),
            &WarmStartConfig::default(),
        )
        .unwrap();
        assert_eq!(warm.rounds_run, 0);
        assert!(warm.converged);
        assert_eq!(warm.last_movement, 0.0);
        assert_eq!(warm.output.rounds, cold.rounds);
    }

    #[test]
    fn recovers_flips_in_fewer_rounds_than_cold() {
        let (g, truth, cfg) = planted();
        let cold = cluster(&g, &cfg).unwrap();
        let delta = generators::k_edge_flip_delta(&g, &truth, 4, 17).unwrap();
        let g2 = g.apply_delta(&delta).unwrap();
        let warm = warm_start(&g2, &cfg, &cold, &delta, &WarmStartConfig::default()).unwrap();
        assert!(warm.converged, "movement never settled");
        assert!(
            warm.rounds_run < cfg.rounds.count(),
            "warm took {} rounds, cold T = {}",
            warm.rounds_run,
            cfg.rounds.count()
        );
        let acc = accuracy(truth.labels(), warm.output.partition.labels());
        assert!(acc > 0.95, "post-recovery accuracy {acc}");
    }

    #[test]
    fn added_nodes_join_the_cluster_they_attach_to() {
        let (g, truth, cfg) = planted();
        let cold = cluster(&g, &cfg).unwrap();
        let mut delta = GraphDelta::new();
        // One new node, wired densely into ground-truth block 0
        // (nodes 0..40).
        delta.add_nodes(1);
        let new = g.n() as u32;
        for u in 0..12 {
            delta.add_edge(u, new);
        }
        let g2 = g.apply_delta(&delta).unwrap();
        let warm = warm_start(&g2, &cfg, &cold, &delta, &WarmStartConfig::default()).unwrap();
        assert_eq!(warm.output.partition.n(), g2.n());
        assert!(warm.rounds_run >= 1);
        let labels = warm.output.partition.labels();
        // The new node must land in the same cluster as block 0's bulk.
        let block0_label = labels[0];
        assert_eq!(
            labels[new as usize], block0_label,
            "new node labelled {} but block 0 is {}",
            labels[new as usize], block0_label
        );
        // Old nodes keep high agreement with the truth (the paper's
        // threshold rule drifts a little with extra rounds even on a
        // static graph, so this is looser than the recovery test).
        let acc = accuracy(truth.labels(), &labels[..truth.n()]);
        assert!(acc > 0.9, "accuracy {acc}");
    }

    #[test]
    fn load_free_new_component_does_not_stall_convergence() {
        // Two new nodes joined only to each other can never absorb
        // load (empty ∪ empty = empty); the pending gate must not wait
        // on them, and they end up in the query's empty cluster.
        let (g, _, cfg) = planted();
        let cold = cluster(&g, &cfg).unwrap();
        let mut delta = GraphDelta::new();
        delta.add_nodes(2);
        let a = g.n() as u32;
        delta.add_edge(a, a + 1);
        let g2 = g.apply_delta(&delta).unwrap();
        let warm = warm_start(&g2, &cfg, &cold, &delta, &WarmStartConfig::default()).unwrap();
        assert!(warm.converged, "stalled on a load-free component");
        assert!(
            warm.rounds_run < 100,
            "burned {} rounds waiting on unreachable nodes",
            warm.rounds_run
        );
        let labels = warm.output.partition.labels();
        assert_eq!(labels[a as usize], labels[a as usize + 1]);
        assert_eq!(
            labels[a as usize] as usize,
            warm.output.partition.k() - 1,
            "load-free nodes must take the empty-cluster label"
        );
    }

    #[test]
    fn warm_start_is_deterministic() {
        let (g, truth, cfg) = planted();
        let cold = cluster(&g, &cfg).unwrap();
        let delta = generators::k_edge_flip_delta(&g, &truth, 3, 23).unwrap();
        let g2 = g.apply_delta(&delta).unwrap();
        let wcfg = WarmStartConfig::default();
        let a = warm_start(&g2, &cfg, &cold, &delta, &wcfg).unwrap();
        let b = warm_start(&g2, &cfg, &cold, &delta, &wcfg).unwrap();
        assert_eq!(a.rounds_run, b.rounds_run);
        assert_eq!(a.output.partition, b.output.partition);
        assert_eq!(a.output.states, b.output.states);
        assert_eq!(a.last_movement.to_bits(), b.last_movement.to_bits());
    }

    #[test]
    fn chained_warm_starts_draw_fresh_streams() {
        let (g, truth, cfg) = planted();
        let cold = cluster(&g, &cfg).unwrap();
        let d1 = generators::k_edge_flip_delta(&g, &truth, 2, 31).unwrap();
        let g1 = g.apply_delta(&d1).unwrap();
        let w1 = warm_start(&g1, &cfg, &cold, &d1, &WarmStartConfig::default()).unwrap();
        assert!(w1.output.rounds > cold.rounds);
        let d2 = generators::k_edge_flip_delta(&g1, &truth, 2, 37).unwrap();
        let g2 = g1.apply_delta(&d2).unwrap();
        let w2 = warm_start(&g2, &cfg, &w1.output, &d2, &WarmStartConfig::default()).unwrap();
        assert!(w2.converged);
        let acc = accuracy(truth.labels(), w2.output.partition.labels());
        assert!(acc > 0.9, "accuracy after two warm starts {acc}");
    }

    #[test]
    fn mismatched_prior_is_an_error() {
        let (g, _, cfg) = planted();
        let cold = cluster(&g, &cfg).unwrap();
        // Delta adds a node but the caller passes the un-patched graph.
        let mut delta = GraphDelta::new();
        delta.add_nodes(1);
        assert!(matches!(
            warm_start(&g, &cfg, &cold, &delta, &WarmStartConfig::default()),
            Err(ClusterError::PriorMismatch { .. })
        ));
        let empty = Graph::from_edges(0, &[]).unwrap();
        assert!(matches!(
            warm_start(
                &empty,
                &cfg,
                &cold,
                &GraphDelta::new(),
                &WarmStartConfig::default()
            ),
            Err(ClusterError::EmptyGraph)
        ));
    }
}
