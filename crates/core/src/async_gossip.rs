//! Asynchronous (pairwise) gossip variant — the Boyd et al. \[5\] time
//! model.
//!
//! The paper works in the synchronous random matching model; the
//! original gossip framework it builds on is *asynchronous*: each node
//! carries a rate-1 Poisson clock, and when a clock fires the node
//! contacts one uniform neighbour and the pair averages immediately. In
//! expectation `n` ticks correspond to one unit of global time, during
//! which roughly as much averaging happens as in `Θ(1)` synchronous
//! matching rounds.
//!
//! This module runs the full clustering pipeline in that model: same
//! seeding, same per-pair state averaging, same query — only the
//! communication schedule differs. A tick costs one message exchange
//! (two state payloads), so the experiment suite can compare the two
//! models at equal communication budgets.

use lbc_distsim::NodeRng;
use lbc_graph::{Graph, Partition};

use crate::arena::StateArena;
use crate::config::LbConfig;
use crate::driver::ClusterError;
use crate::query::assign_labels_arena;
use crate::seeding::{run_seeding, Seed};
use crate::state::LoadState;

/// Output of an asynchronous clustering run.
#[derive(Debug, Clone)]
pub struct AsyncOutput {
    pub partition: Partition,
    pub seeds: Vec<Seed>,
    /// Pairwise exchanges performed.
    pub ticks: usize,
    /// Exchanges skipped because the woken node was isolated.
    pub idle_ticks: usize,
    pub states: Vec<LoadState>,
}

/// Run the algorithm in the asynchronous pairwise model for `ticks`
/// clock firings. `ticks ≈ n · T` corresponds to `T` synchronous rounds
/// of global time.
///
/// The Poisson clock race is simulated by drawing a uniformly random
/// node per tick (the jump chain of `n` independent rate-1 clocks);
/// randomness comes from a dedicated scheduler stream so the seeding
/// stays aligned with the synchronous implementations.
pub fn cluster_async(
    graph: &Graph,
    cfg: &LbConfig,
    ticks: usize,
) -> Result<AsyncOutput, ClusterError> {
    let n = graph.n();
    if n == 0 {
        return Err(ClusterError::EmptyGraph);
    }
    let mut rngs: Vec<NodeRng> = (0..n as u32)
        .map(|v| NodeRng::for_node(cfg.seed, v))
        .collect();
    let seeds = run_seeding(n, cfg.trials(), &mut rngs);
    if seeds.is_empty() {
        return Err(ClusterError::NoSeeds);
    }
    // Tick loop on the flat arena: each pairwise exchange is an in-place
    // merge, so the steady state allocates nothing per tick.
    let mut arena = StateArena::new(n, &seeds);
    let mut scheduler = NodeRng::from_seed(cfg.seed ^ 0xA5A5_A5A5_A5A5_A5A5);
    let mut idle_ticks = 0usize;
    for _ in 0..ticks {
        let u = scheduler.below(n);
        let deg = graph.degree(u as u32);
        if deg == 0 {
            idle_ticks += 1;
            continue;
        }
        let v = graph.neighbour_at(u as u32, scheduler.below(deg)) as usize;
        arena.average_into(u, v);
    }
    let (_, partition) = assign_labels_arena(&arena, cfg.query, cfg.beta);
    Ok(AsyncOutput {
        partition,
        seeds,
        ticks,
        idle_ticks,
        states: arena.to_load_states(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use lbc_eval::accuracy;
    use lbc_graph::generators;

    #[test]
    fn recovers_clusters_at_n_t_ticks() {
        let (g, truth) = generators::ring_of_cliques(3, 20, 0).unwrap();
        let cfg = LbConfig::new(1.0 / 3.0, 1).with_seed(4);
        // ~60 synchronous rounds' worth of global time.
        let out = cluster_async(&g, &cfg, g.n() * 60).unwrap();
        let acc = accuracy(truth.labels(), out.partition.labels());
        assert!(acc > 0.95, "accuracy {acc}");
        assert_eq!(out.idle_ticks, 0);
    }

    #[test]
    fn conserves_per_seed_load() {
        let (g, _) = generators::ring_of_cliques(2, 12, 0).unwrap();
        let cfg = LbConfig::new(0.5, 1).with_seed(7);
        let out = cluster_async(&g, &cfg, 2_000).unwrap();
        for s in &out.seeds {
            let total: f64 = out.states.iter().map(|st| st.load(s.id)).sum();
            assert!((total - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn matches_synchronous_quality_at_equal_exchange_budget() {
        // Synchronous T rounds perform ≈ T·n·d̄/4 pair exchanges; the
        // async model at that many ticks should land in the same quality
        // band.
        let (g, truth) = generators::ring_of_cliques(4, 16, 0).unwrap();
        let t = 160usize;
        let cfg = LbConfig::new(0.25, t).with_seed(12);
        let sync_out = crate::driver::cluster(&g, &cfg).unwrap();
        let exchanges = (t * g.n()) / 4; // conservative d̄/4 estimate
        let async_out = cluster_async(&g, &cfg, exchanges).unwrap();
        let sync_acc = accuracy(truth.labels(), sync_out.partition.labels());
        let async_acc = accuracy(truth.labels(), async_out.partition.labels());
        assert!(
            sync_acc > 0.9 && async_acc > 0.9,
            "sync {sync_acc} async {async_acc}"
        );
    }

    #[test]
    fn isolated_nodes_cause_idle_ticks() {
        let g = lbc_graph::Graph::from_edges(3, &[(0, 1)]).unwrap();
        let cfg = LbConfig::new(0.5, 1).with_seed(1).with_seeding_trials(20);
        let out = cluster_async(&g, &cfg, 300).unwrap();
        assert!(out.idle_ticks > 0);
    }

    #[test]
    fn deterministic_in_seed() {
        let (g, _) = generators::ring_of_cliques(2, 8, 0).unwrap();
        let cfg = LbConfig::new(0.5, 1).with_seed(3);
        let a = cluster_async(&g, &cfg, 500).unwrap();
        let b = cluster_async(&g, &cfg, 500).unwrap();
        assert_eq!(a.states, b.states);
        assert_eq!(a.partition, b.partition);
    }
}
