//! The seeding procedure (§3.1).
//!
//! `s̄ = ⌈(3/β) ln(1/β)⌉` trials; in each trial, every node independently
//! activates with probability `1/n`. A node active in *at least one*
//! trial becomes a seed and draws a random ID uniform in `[1, n³]` which
//! identifies its unit of load. The analysis (proof of Theorem 1.1)
//! shows each cluster receives a seed with probability ≥ 1 − e^{-3} and
//! the number of seeds is `O(s̄)` with constant probability.
//!
//! Randomness discipline: node `v` first draws its ID, then performs its
//! `s̄` activation coins, all from its own stream — the distributed
//! implementation does exactly the same, keeping executions identical.

use lbc_distsim::NodeRng;
use lbc_graph::NodeId;

use crate::state::SeedId;

/// One seed: the node that activated and the random ID it drew.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Seed {
    pub node: NodeId,
    pub id: SeedId,
}

/// `s̄ = ⌈(3/β) ln(1/β)⌉` (minimum 1).
///
/// # Panics
/// If `beta ∉ (0, 1]`.
pub fn expected_trials(beta: f64) -> usize {
    assert!(beta > 0.0 && beta <= 1.0, "beta {beta} out of (0, 1]");
    let s = (3.0 / beta) * (1.0 / beta).ln();
    (s.ceil() as usize).max(1)
}

/// Draw node `v`'s seed ID: uniform in `[1, n³]`.
pub fn draw_seed_id(n: usize, rng: &mut NodeRng) -> SeedId {
    let cube = (n as u128).pow(3).min(u64::MAX as u128) as u64;
    (rng.next_u64() % cube.max(1)) + 1
}

/// Perform node `v`'s entire local seeding procedure (ID draw + `trials`
/// coins at probability `1/n`); returns `Some(id)` if `v` became a seed.
///
/// Always consumes the same amount of randomness regardless of outcome,
/// so downstream draws stay aligned across implementations.
pub fn node_seeding(v: NodeId, n: usize, trials: usize, rng: &mut NodeRng) -> Option<SeedId> {
    let _ = v;
    let id = draw_seed_id(n, rng);
    let p = 1.0 / n as f64;
    let mut active = false;
    for _ in 0..trials {
        if rng.bernoulli(p) {
            active = true;
        }
    }
    active.then_some(id)
}

/// Run the seeding procedure for all nodes (centralised replay).
/// Returns seeds ordered by node id.
pub fn run_seeding(n: usize, trials: usize, rngs: &mut [NodeRng]) -> Vec<Seed> {
    debug_assert_eq!(rngs.len(), n);
    let mut seeds = Vec::new();
    for (v, rng) in rngs.iter_mut().enumerate() {
        if let Some(id) = node_seeding(v as NodeId, n, trials, rng) {
            seeds.push(Seed {
                node: v as NodeId,
                id,
            });
        }
    }
    seeds
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rngs_for(n: usize, seed: u64) -> Vec<NodeRng> {
        (0..n as u32).map(|v| NodeRng::for_node(seed, v)).collect()
    }

    #[test]
    fn trial_count_formula() {
        // β = 1/2: (3/0.5)·ln 2 ≈ 4.16 → 5.
        assert_eq!(expected_trials(0.5), 5);
        // β = 1/4: 12·ln 4 ≈ 16.64 → 17.
        assert_eq!(expected_trials(0.25), 17);
        // β = 1 gives ln 1 = 0 → floor at 1 trial.
        assert_eq!(expected_trials(1.0), 1);
    }

    #[test]
    #[should_panic]
    fn invalid_beta_panics() {
        let _ = expected_trials(0.0);
    }

    #[test]
    fn seed_count_concentrates_near_expected() {
        // E[#seeds] ≈ s̄ (slightly less due to multi-activation overlap).
        let n = 2_000;
        let trials = 20;
        let mut total = 0usize;
        for rep in 0..30 {
            let mut rngs = rngs_for(n, rep);
            total += run_seeding(n, trials, &mut rngs).len();
        }
        let mean = total as f64 / 30.0;
        assert!(
            (mean - trials as f64).abs() < 3.0,
            "mean seeds {mean} vs expected ≈ {trials}"
        );
    }

    #[test]
    fn seed_ids_in_range_and_distinct_whp() {
        let n = 500;
        let mut rngs = rngs_for(n, 77);
        let seeds = run_seeding(n, 30, &mut rngs);
        assert!(!seeds.is_empty());
        let cube = (n as u64).pow(3);
        let mut ids: Vec<u64> = seeds.iter().map(|s| s.id).collect();
        for &id in &ids {
            assert!(id >= 1 && id <= cube);
        }
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), seeds.len(), "seed id collision");
    }

    #[test]
    fn deterministic_given_streams() {
        let n = 300;
        let mut a = rngs_for(n, 5);
        let mut b = rngs_for(n, 5);
        assert_eq!(run_seeding(n, 10, &mut a), run_seeding(n, 10, &mut b));
    }

    #[test]
    fn randomness_consumption_is_outcome_independent() {
        // After seeding, every node's stream must be at the same position
        // whether or not it activated: next draws must match a manual
        // replay that skips the outcome.
        let n = 100;
        let trials = 12;
        let mut rngs = rngs_for(n, 9);
        let _ = run_seeding(n, trials, &mut rngs);
        let mut manual = rngs_for(n, 9);
        for rng in manual.iter_mut() {
            let _ = rng.next_u64(); // id draw
            for _ in 0..trials {
                let _ = rng.bernoulli(1.0 / n as f64);
            }
        }
        for v in 0..n {
            assert_eq!(
                rngs[v].next_u64(),
                manual[v].next_u64(),
                "node {v} desynced"
            );
        }
    }

    #[test]
    fn every_cluster_seeded_with_good_probability() {
        // Theorem 1.1's seeding lemma: with s̄ = (3/β)ln(1/β) trials and
        // clusters of size βn, each cluster misses with prob ≤ e^{-3}.
        let n = 1_000;
        let beta = 0.25; // 4 clusters of 250
        let trials = expected_trials(beta);
        let mut all_covered = 0usize;
        let reps = 200;
        for rep in 0..reps {
            let mut rngs = rngs_for(n, 1000 + rep);
            let seeds = run_seeding(n, trials, &mut rngs);
            let covered = (0..4).all(|c| seeds.iter().any(|s| (s.node as usize) / 250 == c));
            if covered {
                all_covered += 1;
            }
        }
        let rate = all_covered as f64 / reps as f64;
        // Union bound gives ≥ 1 − 4e^{-3} ≈ 0.80; in practice higher.
        assert!(rate > 0.8, "coverage rate {rate}");
    }
}
