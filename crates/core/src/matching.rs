//! The random matching model (§2.2) and its §4.5 almost-regular variant.
//!
//! Protocol (Boyd et al. \[5\], as used by the paper):
//! 1. every node flips a fair coin: *active* or *non-active*;
//! 2. every active node proposes to a uniformly random neighbour;
//! 3. every non-active node that received **exactly one** proposal is
//!    matched with its proposer.
//!
//! For almost-regular graphs the paper passes to the `D`-regular graph
//! `G*` with `D − d_v` self-loops at `v`; an active node then proposes
//! into one of its `D` slots, and a self-loop slot voids the proposal.
//! [`ProposalRule`] implements both the plain rule and this emulation.
//!
//! The centralised sampler ([`sample_matching`]) replays exactly the per-
//! node random draws the distributed protocol makes (activation coin,
//! then slot draw if active), in node-id order, from the same
//! [`NodeRng`] streams — this is what makes the centralised and
//! distributed implementations bit-identical.

use lbc_distsim::NodeRng;
use lbc_graph::{Graph, NodeId};

/// `d̄ = (1 − 1/(2d))^{d−1}` from Lemma 2.1.
pub fn d_bar(d: usize) -> f64 {
    assert!(d >= 1, "d_bar needs d >= 1");
    (1.0 - 1.0 / (2.0 * d as f64)).powi(d as i32 - 1)
}

/// Per-edge inclusion probability `d̄ / (2d)` for a `d`-regular graph
/// (Lemma 2.1's proof: `2 · ¼ · (1/d)(1 − 1/(2d))^{d−1}`).
pub fn edge_match_probability(d: usize) -> f64 {
    d_bar(d) / (2.0 * d as f64)
}

/// How an active node chooses its proposal target.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProposalRule {
    /// Uniform over real neighbours (the paper's rule for regular
    /// graphs).
    Uniform,
    /// `G*` emulation with degree cap `D`: draw a slot in `0..D`; slots
    /// `≥ d_v` are self-loops and void the proposal (§4.5).
    Capped(usize),
}

impl ProposalRule {
    /// One node's phase-0 randomness with the neighbour lookup deferred:
    /// `(active, Some(slot))` where `slot` indexes the neighbour list
    /// (already validated against `degree`; a voided `G*` self-loop slot
    /// comes back as `None`).
    ///
    /// Consumes exactly one coin, plus one slot draw if active — in this
    /// order — from `rng`. Every sampler (centralised, scratch-based,
    /// distributed node program) draws through here, which is what keeps
    /// their random streams aligned.
    #[inline]
    pub fn draw_slot(self, degree: usize, rng: &mut NodeRng) -> (bool, Option<usize>) {
        let active = ProposalRule::draw_coin(rng);
        if !active {
            return (false, None);
        }
        (true, self.draw_target_slot(degree, rng))
    }

    /// The activation coin alone — the first draw of a node's phase-0
    /// randomness.
    #[inline]
    pub fn draw_coin(rng: &mut NodeRng) -> bool {
        rng.bernoulli(0.5)
    }

    /// The slot draw alone — the second draw, made only by active nodes.
    /// Splitting the two lets the centralised sampler run the coins as
    /// one branch-free sweep and the slot draws as a second sweep over
    /// the active nodes; each node's stream still sees coin-then-slot,
    /// so the executions stay aligned with the distributed protocol.
    #[inline]
    pub fn draw_target_slot(self, degree: usize, rng: &mut NodeRng) -> Option<usize> {
        if degree == 0 {
            return None;
        }
        match self {
            ProposalRule::Uniform => Some(rng.below(degree)),
            ProposalRule::Capped(cap) => {
                debug_assert!(cap >= degree);
                let slot = rng.below(cap);
                // Slots ≥ degree are self-loops: proposal voided.
                (slot < degree).then_some(slot)
            }
        }
    }

    /// One node's phase-0 randomness: `(active, proposal_target)`.
    /// [`ProposalRule::draw_slot`] with the neighbour lookup applied.
    pub fn draw(self, neighbours: &[NodeId], rng: &mut NodeRng) -> (bool, Option<NodeId>) {
        let (active, slot) = self.draw_slot(neighbours.len(), rng);
        (active, slot.map(|s| neighbours[s]))
    }
}

/// Prefetch hint for a read that is a known number of iterations away
/// (no-op on non-x86-64 targets). Shared by the matching sampler and
/// the state arena's merge loop.
#[inline]
pub(crate) fn prefetch_read<T>(p: *const T) {
    #[cfg(target_arch = "x86_64")]
    unsafe {
        use std::arch::x86_64::{_mm_prefetch, _MM_HINT_T0};
        _mm_prefetch(p as *const i8, _MM_HINT_T0);
    }
    #[cfg(not(target_arch = "x86_64"))]
    let _ = p;
}

/// Matched pairs `(u, v)` with `u < v`, in canonical ascending order,
/// from a partner array — the one definition both [`MatchingOutcome`]
/// and [`MatchingScratch`] expose.
fn pairs_of(partner: &[Option<NodeId>]) -> impl Iterator<Item = (NodeId, NodeId)> + '_ {
    partner
        .iter()
        .enumerate()
        .filter_map(|(u, &p)| p.map(|v| (u as NodeId, v)))
        .filter(|&(u, v)| u < v)
}

/// One sampled matching: `partner[v]` is `v`'s matched neighbour, or
/// `None` if `v` is unmatched this round.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MatchingOutcome {
    partner: Vec<Option<NodeId>>,
}

impl MatchingOutcome {
    /// Partner of `v` this round.
    #[inline]
    pub fn partner(&self, v: NodeId) -> Option<NodeId> {
        self.partner[v as usize]
    }

    /// All partners (indexed by node).
    pub fn partners(&self) -> &[Option<NodeId>] {
        &self.partner
    }

    /// Matched pairs `(u, v)` with `u < v`.
    pub fn pairs(&self) -> impl Iterator<Item = (NodeId, NodeId)> + '_ {
        pairs_of(&self.partner)
    }

    /// Number of matched pairs: one pass over the partner slots (each
    /// pair occupies exactly two), no pair materialisation.
    pub fn size(&self) -> usize {
        self.partner.iter().filter(|p| p.is_some()).count() / 2
    }

    /// Validate the matching invariants: symmetry, adjacency, and that
    /// nobody is matched to themselves. Used by tests and debug builds.
    pub fn validate(&self, g: &Graph) -> Result<(), String> {
        for (u, p) in self.partner.iter().enumerate() {
            if let Some(v) = *p {
                if v as usize == u {
                    return Err(format!("node {u} matched to itself"));
                }
                if self.partner[v as usize] != Some(u as NodeId) {
                    return Err(format!("matching not symmetric at ({u}, {v})"));
                }
                if !g.has_edge(u as NodeId, v) {
                    return Err(format!("matched pair ({u}, {v}) is not an edge"));
                }
            }
        }
        Ok(())
    }
}

/// Reusable per-round buffers for matching sampling.
///
/// [`sample_matching`] allocates five fresh `n`-sized vectors per call;
/// in a `T`-round loop that is `5T` large allocations for buffers whose
/// shape never changes. A `MatchingScratch` owns them once and
/// [`sample_matching_into`] refills them in place — after construction
/// the steady-state round loop performs no heap allocation (see
/// `tests/zero_alloc.rs`). The sampled matching is exposed through the
/// same accessors as [`MatchingOutcome`] (`partner`, `partners`,
/// `pairs`) plus an O(1) [`MatchingScratch::matched_pairs`] counter
/// maintained during sampling.
#[derive(Debug, Clone)]
pub struct MatchingScratch {
    active: Vec<bool>,
    /// Drawn (but unresolved) proposals, `(proposer, neighbour slot)`:
    /// the draw pass records slots only, so the dependent random reads
    /// into the adjacency array can run as a separate pass with a
    /// prefetch window.
    slots: Vec<(NodeId, u32)>,
    /// Proposals of this round, `(proposer, target)`, in proposer order —
    /// a compact list (≈ n/2 entries) instead of an `n`-slot array, so
    /// the scatter/match phases only touch nodes that actually received
    /// a proposal.
    pending: Vec<(NodeId, NodeId)>,
    /// Per target node: proposals received this round (the match pass
    /// takes the proposer from `pending`, so only the count is stored).
    /// Reset via `pending` (cheaper than an `n`-word memset once the
    /// lines are hot).
    received: Vec<u32>,
    partner: Vec<Option<NodeId>>,
    /// Matched pairs `(min, max)`, in discovery (proposer) order — the
    /// compact form the merge loop iterates (pairs are disjoint, so
    /// merge order is free), and the undo list that resets `partner`
    /// without an `n`-slot memset.
    matched: Vec<(NodeId, NodeId)>,
}

impl MatchingScratch {
    /// Scratch for `n`-node graphs (any graph of that size can reuse it).
    pub fn new(n: usize) -> Self {
        MatchingScratch {
            active: vec![false; n],
            slots: vec![(0, 0); n],
            pending: Vec::with_capacity(n),
            received: vec![0; n],
            partner: vec![None; n],
            matched: Vec::with_capacity(n / 2 + 1),
        }
    }

    /// Number of nodes the buffers are sized for.
    pub fn n(&self) -> usize {
        self.partner.len()
    }

    /// Partner of `v` in the most recently sampled matching.
    #[inline]
    pub fn partner(&self, v: NodeId) -> Option<NodeId> {
        self.partner[v as usize]
    }

    /// All partners (indexed by node).
    pub fn partners(&self) -> &[Option<NodeId>] {
        &self.partner
    }

    /// Matched pairs `(u, v)` with `u < v`, in canonical ascending order
    /// (same definition as [`MatchingOutcome::pairs`]).
    pub fn pairs(&self) -> impl Iterator<Item = (NodeId, NodeId)> + '_ {
        pairs_of(&self.partner)
    }

    /// Number of matched pairs in the last sample (O(1): the compact
    /// pair list is built while the matching forms).
    pub fn matched_pairs(&self) -> usize {
        self.matched.len()
    }

    /// The matched pairs as a compact `(min, max)` list, in discovery
    /// order (pairs are disjoint, so any processing order yields the
    /// same result). [`MatchingScratch::pairs`] gives the same set in
    /// canonical ascending order.
    pub fn matched(&self) -> &[(NodeId, NodeId)] {
        &self.matched
    }

    /// Average a dense load vector along the sampled matching (same
    /// operation as [`apply_matching_dense`], via the O(|M|) compact
    /// pair list rather than an O(n) partner sweep — pairs are disjoint,
    /// so processing order cannot affect the result).
    pub fn apply_dense(&self, x: &mut [f64]) {
        for &(u, v) in &self.matched {
            let avg = (x[u as usize] + x[v as usize]) / 2.0;
            x[u as usize] = avg;
            x[v as usize] = avg;
        }
    }

    /// Copy the sampled matching into an owned [`MatchingOutcome`].
    pub fn to_outcome(&self) -> MatchingOutcome {
        MatchingOutcome {
            partner: self.partner.clone(),
        }
    }
}

/// Sample one round's matching into reusable buffers, replaying every
/// node's private stream in node-id order (phase 0 of the distributed
/// handshake). Consumes exactly the randomness [`sample_matching`]
/// consumes and produces the identical matching; it just doesn't
/// allocate.
pub fn sample_matching_into(
    g: &Graph,
    rule: ProposalRule,
    rngs: &mut [NodeRng],
    scratch: &mut MatchingScratch,
) {
    let n = g.n();
    // Hard contract (as in the original array-indexed sampler): a short
    // rng slice or a mis-sized scratch would otherwise leave stale
    // per-node state behind and return a plausible-but-wrong matching.
    assert_eq!(rngs.len(), n, "one rng stream per node");
    assert_eq!(scratch.n(), n, "scratch sized for a different graph");
    // Reset `received` and `partner` through last round's compact lists:
    // only the slots that were touched (and are therefore hot in cache)
    // are dirty — no `n`-sized memsets.
    for &(_, t) in &scratch.pending {
        scratch.received[t as usize] = 0;
    }
    scratch.pending.clear();
    for &(u, v) in &scratch.matched {
        scratch.partner[u as usize] = None;
        scratch.partner[v as usize] = None;
    }
    scratch.matched.clear();
    // Draw pass: consume every node's randomness in node-id order,
    // recording only the chosen neighbour *slot* — the adjacency lookups
    // are data-dependent random reads, so they run in the next pass
    // behind a prefetch window instead of stalling this one.
    // Coin pass: every node's activation coin, as one branch-free sweep
    // (the coin is 50/50, so a conditional here would mispredict half
    // the time). The active nodes land in a compact prefix of the
    // fixed-size `slots` buffer via an unconditionally-written cursor.
    let mut active_count = 0usize;
    for (v, rng) in rngs.iter_mut().enumerate() {
        let a = ProposalRule::draw_coin(rng);
        scratch.active[v] = a;
        scratch.slots[active_count] = (v as NodeId, 0);
        active_count += usize::from(a);
    }
    // Slot pass: the second draw of each *active* node's stream — the
    // per-node coin-then-slot order (what the distributed protocol
    // replays) is unaffected by running it as a separate sweep.
    let mut proposal_count = 0usize;
    for i in 0..active_count {
        let v = scratch.slots[i].0;
        let slot = rule.draw_target_slot(g.degree(v), &mut rngs[v as usize]);
        scratch.slots[proposal_count] = (v, slot.unwrap_or(0) as u32);
        proposal_count += usize::from(slot.is_some());
    }
    // Resolve + scatter pass: look the targets up and count proposals
    // arriving at each node.
    const LOOKAHEAD: usize = 16;
    let slots = &scratch.slots[..proposal_count];
    for (i, &(v, s)) in slots.iter().enumerate() {
        if let Some(&(pv, ps)) = slots.get(i + LOOKAHEAD) {
            // In bounds: the slot was validated against pv's degree.
            prefetch_read(unsafe { g.neighbours(pv).as_ptr().add(ps as usize) });
        }
        let t = g.neighbours(v)[s as usize];
        scratch.pending.push((v, t));
        scratch.received[t as usize] += 1;
    }
    // A target with exactly one proposal appears exactly once in
    // `pending`, so sweeping the list visits each match once; matches
    // are disjoint (a proposer proposes once), so assignment order does
    // not matter and the resulting partner array is identical to the
    // full 0..n sweep of the original sampler.
    for &(u, t) in &scratch.pending {
        if !scratch.active[t as usize] && scratch.received[t as usize] == 1 {
            scratch.partner[t as usize] = Some(u);
            scratch.partner[u as usize] = Some(t);
            scratch.matched.push((u.min(t), u.max(t)));
        }
    }
}

/// Sample one round's matching by replaying every node's private stream
/// in node-id order. Thin compatibility wrapper over
/// [`sample_matching_into`] for callers that want an owned outcome and
/// don't care about per-round allocations.
pub fn sample_matching(g: &Graph, rule: ProposalRule, rngs: &mut [NodeRng]) -> MatchingOutcome {
    let mut scratch = MatchingScratch::new(g.n());
    sample_matching_into(g, rule, rngs, &mut scratch);
    MatchingOutcome {
        partner: scratch.partner,
    }
}

/// Average a dense load vector along the matching (the 1-dimensional
/// process `y^{(t)} = M^{(t)} y^{(t−1)}` of §4).
pub fn apply_matching_dense(m: &MatchingOutcome, x: &mut [f64]) {
    for (u, v) in m.pairs() {
        let avg = (x[u as usize] + x[v as usize]) / 2.0;
        x[u as usize] = avg;
        x[v as usize] = avg;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lbc_graph::generators;

    fn rngs_for(n: usize, seed: u64) -> Vec<NodeRng> {
        (0..n as u32).map(|v| NodeRng::for_node(seed, v)).collect()
    }

    #[test]
    fn d_bar_values() {
        assert_eq!(d_bar(1), 1.0);
        assert!((d_bar(2) - 0.75).abs() < 1e-12);
        // d̄ → e^{-1/2} as d → ∞.
        assert!((d_bar(10_000) - (-0.5f64).exp()).abs() < 1e-4);
    }

    #[test]
    fn matchings_are_valid_on_various_graphs() {
        for (name, g) in [
            ("cycle", generators::cycle(31).unwrap()),
            ("complete", generators::complete(20).unwrap()),
            ("regular", generators::random_regular(100, 6, 4).unwrap()),
        ] {
            let mut rngs = rngs_for(g.n(), 7);
            for _ in 0..20 {
                let m = sample_matching(&g, ProposalRule::Uniform, &mut rngs);
                m.validate(&g).unwrap_or_else(|e| panic!("{name}: {e}"));
            }
        }
    }

    #[test]
    fn capped_rule_also_valid() {
        let (g, _) = generators::planted_partition(2, 30, 0.3, 0.05, 3).unwrap();
        let cap = g.max_degree();
        let mut rngs = rngs_for(g.n(), 9);
        for _ in 0..20 {
            let m = sample_matching(&g, ProposalRule::Capped(cap), &mut rngs);
            m.validate(&g).unwrap();
        }
    }

    #[test]
    fn edge_probability_matches_lemma_2_1() {
        // Monte Carlo on a d-regular graph: every edge should be matched
        // with probability d̄/(2d).
        let g = generators::cycle(40).unwrap(); // 2-regular
        let expect = edge_match_probability(2);
        let trials = 20_000;
        let mut rngs = rngs_for(g.n(), 123);
        let mut hit = 0usize;
        for _ in 0..trials {
            let m = sample_matching(&g, ProposalRule::Uniform, &mut rngs);
            if m.partner(0) == Some(1) {
                hit += 1;
            }
        }
        let freq = hit as f64 / trials as f64;
        assert!(
            (freq - expect).abs() < 0.01,
            "freq {freq} vs expected {expect}"
        );
    }

    #[test]
    fn expected_matrix_diagonal_matches_lemma_2_1() {
        // P[v matched] = d̄/2 ⇒ E[M_vv] = 1 − d̄/4 on regular graphs.
        let g = generators::complete(8).unwrap(); // 7-regular
        let db = d_bar(7);
        let trials = 30_000;
        let mut rngs = rngs_for(g.n(), 5);
        let mut matched = 0usize;
        for _ in 0..trials {
            let m = sample_matching(&g, ProposalRule::Uniform, &mut rngs);
            if m.partner(3).is_some() {
                matched += 1;
            }
        }
        let freq = matched as f64 / trials as f64;
        assert!(
            (freq - db / 2.0).abs() < 0.01,
            "match freq {freq} vs d̄/2 = {}",
            db / 2.0
        );
    }

    #[test]
    fn isolated_node_never_matched() {
        let g = lbc_graph::Graph::from_edges(3, &[(0, 1)]).unwrap();
        let mut rngs = rngs_for(3, 2);
        for _ in 0..50 {
            let m = sample_matching(&g, ProposalRule::Uniform, &mut rngs);
            assert_eq!(m.partner(2), None);
            m.validate(&g).unwrap();
        }
    }

    #[test]
    fn dense_application_conserves_sum_and_contracts() {
        let g = generators::random_regular(60, 4, 8).unwrap();
        let mut rngs = rngs_for(60, 3);
        let mut x: Vec<f64> = (0..60).map(|i| (i % 7) as f64).collect();
        let sum0: f64 = x.iter().sum();
        let norm0: f64 = x.iter().map(|v| v * v).sum::<f64>();
        for _ in 0..30 {
            let m = sample_matching(&g, ProposalRule::Uniform, &mut rngs);
            apply_matching_dense(&m, &mut x);
        }
        let sum1: f64 = x.iter().sum();
        let norm1: f64 = x.iter().map(|v| v * v).sum::<f64>();
        assert!((sum0 - sum1).abs() < 1e-9, "sum not conserved");
        assert!(norm1 <= norm0 + 1e-12, "projection must contract norm");
    }

    #[test]
    fn capped_rule_reduces_match_rate() {
        // With a huge cap, most proposals hit self-loop slots.
        let g = generators::complete(10).unwrap();
        let mut rngs_a = rngs_for(10, 4);
        let mut rngs_b = rngs_for(10, 4);
        let mut uniform = 0usize;
        let mut capped = 0usize;
        for _ in 0..2_000 {
            uniform += sample_matching(&g, ProposalRule::Uniform, &mut rngs_a).size();
            capped += sample_matching(&g, ProposalRule::Capped(90), &mut rngs_b).size();
        }
        assert!(capped * 3 < uniform, "capped {capped} vs uniform {uniform}");
    }

    #[test]
    fn deterministic_given_streams() {
        let g = generators::cycle(16).unwrap();
        let mut r1 = rngs_for(16, 11);
        let mut r2 = rngs_for(16, 11);
        for _ in 0..10 {
            let a = sample_matching(&g, ProposalRule::Uniform, &mut r1);
            let b = sample_matching(&g, ProposalRule::Uniform, &mut r2);
            assert_eq!(a, b);
        }
    }

    #[test]
    fn reused_scratch_equals_fresh_sampling() {
        let g = generators::random_regular(80, 4, 6).unwrap();
        let mut r1 = rngs_for(80, 13);
        let mut r2 = rngs_for(80, 13);
        let mut scratch = MatchingScratch::new(80);
        for _ in 0..25 {
            sample_matching_into(&g, ProposalRule::Uniform, &mut r1, &mut scratch);
            let fresh = sample_matching(&g, ProposalRule::Uniform, &mut r2);
            assert_eq!(scratch.partners(), fresh.partners());
            assert_eq!(scratch.to_outcome(), fresh);
            assert_eq!(scratch.matched_pairs(), fresh.size());
            assert!(scratch.pairs().zip(fresh.pairs()).all(|(a, b)| a == b));
            // The compact list is the same set of pairs as the canonical
            // iterator, in some order.
            let mut compact: Vec<_> = scratch.matched().to_vec();
            compact.sort_unstable();
            let canonical: Vec<_> = scratch.pairs().collect();
            assert_eq!(compact, canonical);
        }
    }

    #[test]
    fn size_counts_pairs() {
        let g = generators::complete(20).unwrap();
        let mut rngs = rngs_for(20, 1);
        for _ in 0..20 {
            let m = sample_matching(&g, ProposalRule::Uniform, &mut rngs);
            assert_eq!(m.size(), m.pairs().count());
        }
    }

    #[test]
    fn scratch_apply_dense_matches_outcome_apply() {
        let g = generators::random_regular(40, 4, 2).unwrap();
        let mut r1 = rngs_for(40, 8);
        let mut r2 = rngs_for(40, 8);
        let mut scratch = MatchingScratch::new(40);
        let mut x1: Vec<f64> = (0..40).map(|i| i as f64).collect();
        let mut x2 = x1.clone();
        for _ in 0..10 {
            sample_matching_into(&g, ProposalRule::Uniform, &mut r1, &mut scratch);
            scratch.apply_dense(&mut x1);
            let m = sample_matching(&g, ProposalRule::Uniform, &mut r2);
            apply_matching_dense(&m, &mut x2);
            assert_eq!(x1, x2);
        }
    }
}
