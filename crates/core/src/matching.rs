//! The random matching model (§2.2) and its §4.5 almost-regular variant.
//!
//! Protocol (Boyd et al. \[5\], as used by the paper):
//! 1. every node flips a fair coin: *active* or *non-active*;
//! 2. every active node proposes to a uniformly random neighbour;
//! 3. every non-active node that received **exactly one** proposal is
//!    matched with its proposer.
//!
//! For almost-regular graphs the paper passes to the `D`-regular graph
//! `G*` with `D − d_v` self-loops at `v`; an active node then proposes
//! into one of its `D` slots, and a self-loop slot voids the proposal.
//! [`ProposalRule`] implements both the plain rule and this emulation.
//!
//! The centralised sampler ([`sample_matching`]) replays exactly the per-
//! node random draws the distributed protocol makes (activation coin,
//! then slot draw if active), in node-id order, from the same
//! [`NodeRng`] streams — this is what makes the centralised and
//! distributed implementations bit-identical.

use lbc_distsim::NodeRng;
use lbc_graph::{Graph, NodeId};

/// `d̄ = (1 − 1/(2d))^{d−1}` from Lemma 2.1.
pub fn d_bar(d: usize) -> f64 {
    assert!(d >= 1, "d_bar needs d >= 1");
    (1.0 - 1.0 / (2.0 * d as f64)).powi(d as i32 - 1)
}

/// Per-edge inclusion probability `d̄ / (2d)` for a `d`-regular graph
/// (Lemma 2.1's proof: `2 · ¼ · (1/d)(1 − 1/(2d))^{d−1}`).
pub fn edge_match_probability(d: usize) -> f64 {
    d_bar(d) / (2.0 * d as f64)
}

/// How an active node chooses its proposal target.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProposalRule {
    /// Uniform over real neighbours (the paper's rule for regular
    /// graphs).
    Uniform,
    /// `G*` emulation with degree cap `D`: draw a slot in `0..D`; slots
    /// `≥ d_v` are self-loops and void the proposal (§4.5).
    Capped(usize),
}

impl ProposalRule {
    /// One node's phase-0 randomness: `(active, proposal_target)`.
    ///
    /// Consumes exactly one coin, plus one slot draw if active — in this
    /// order — from `rng`. Both the centralised sampler and the
    /// distributed node program call this single function.
    pub fn draw(self, neighbours: &[NodeId], rng: &mut NodeRng) -> (bool, Option<NodeId>) {
        let active = rng.bernoulli(0.5);
        if !active {
            return (false, None);
        }
        if neighbours.is_empty() {
            return (true, None);
        }
        let target = match self {
            ProposalRule::Uniform => Some(neighbours[rng.below(neighbours.len())]),
            ProposalRule::Capped(cap) => {
                debug_assert!(cap >= neighbours.len());
                let slot = rng.below(cap);
                if slot < neighbours.len() {
                    Some(neighbours[slot])
                } else {
                    None // self-loop slot: proposal voided
                }
            }
        };
        (active, target)
    }
}

/// One sampled matching: `partner[v]` is `v`'s matched neighbour, or
/// `None` if `v` is unmatched this round.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MatchingOutcome {
    partner: Vec<Option<NodeId>>,
}

impl MatchingOutcome {
    /// Partner of `v` this round.
    #[inline]
    pub fn partner(&self, v: NodeId) -> Option<NodeId> {
        self.partner[v as usize]
    }

    /// All partners (indexed by node).
    pub fn partners(&self) -> &[Option<NodeId>] {
        &self.partner
    }

    /// Matched pairs `(u, v)` with `u < v`.
    pub fn pairs(&self) -> impl Iterator<Item = (NodeId, NodeId)> + '_ {
        self.partner
            .iter()
            .enumerate()
            .filter_map(|(u, &p)| p.map(|v| (u as NodeId, v)))
            .filter(|&(u, v)| u < v)
    }

    /// Number of matched pairs.
    pub fn size(&self) -> usize {
        self.pairs().count()
    }

    /// Validate the matching invariants: symmetry, adjacency, and that
    /// nobody is matched to themselves. Used by tests and debug builds.
    pub fn validate(&self, g: &Graph) -> Result<(), String> {
        for (u, p) in self.partner.iter().enumerate() {
            if let Some(v) = *p {
                if v as usize == u {
                    return Err(format!("node {u} matched to itself"));
                }
                if self.partner[v as usize] != Some(u as NodeId) {
                    return Err(format!("matching not symmetric at ({u}, {v})"));
                }
                if !g.has_edge(u as NodeId, v) {
                    return Err(format!("matched pair ({u}, {v}) is not an edge"));
                }
            }
        }
        Ok(())
    }
}

/// Sample one round's matching by replaying every node's private stream
/// in node-id order (phase 0 of the distributed handshake).
pub fn sample_matching(g: &Graph, rule: ProposalRule, rngs: &mut [NodeRng]) -> MatchingOutcome {
    let n = g.n();
    debug_assert_eq!(rngs.len(), n);
    let mut active = vec![false; n];
    let mut proposal: Vec<Option<NodeId>> = vec![None; n];
    for v in 0..n {
        let (a, target) = rule.draw(g.neighbours(v as NodeId), &mut rngs[v]);
        active[v] = a;
        proposal[v] = target;
    }
    // Count proposals arriving at each non-active node.
    let mut proposals_received = vec![0u32; n];
    let mut proposer_of: Vec<NodeId> = vec![0; n];
    for (u, &t) in proposal.iter().enumerate() {
        if let Some(t) = t {
            proposals_received[t as usize] += 1;
            proposer_of[t as usize] = u as NodeId;
        }
    }
    let mut partner: Vec<Option<NodeId>> = vec![None; n];
    for v in 0..n {
        if !active[v] && proposals_received[v] == 1 {
            let u = proposer_of[v];
            partner[v] = Some(u);
            partner[u as usize] = Some(v as NodeId);
        }
    }
    MatchingOutcome { partner }
}

/// Average a dense load vector along the matching (the 1-dimensional
/// process `y^{(t)} = M^{(t)} y^{(t−1)}` of §4).
pub fn apply_matching_dense(m: &MatchingOutcome, x: &mut [f64]) {
    for (u, v) in m.pairs() {
        let avg = (x[u as usize] + x[v as usize]) / 2.0;
        x[u as usize] = avg;
        x[v as usize] = avg;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lbc_graph::generators;

    fn rngs_for(n: usize, seed: u64) -> Vec<NodeRng> {
        (0..n as u32).map(|v| NodeRng::for_node(seed, v)).collect()
    }

    #[test]
    fn d_bar_values() {
        assert_eq!(d_bar(1), 1.0);
        assert!((d_bar(2) - 0.75).abs() < 1e-12);
        // d̄ → e^{-1/2} as d → ∞.
        assert!((d_bar(10_000) - (-0.5f64).exp()).abs() < 1e-4);
    }

    #[test]
    fn matchings_are_valid_on_various_graphs() {
        for (name, g) in [
            ("cycle", generators::cycle(31).unwrap()),
            ("complete", generators::complete(20).unwrap()),
            ("regular", generators::random_regular(100, 6, 4).unwrap()),
        ] {
            let mut rngs = rngs_for(g.n(), 7);
            for _ in 0..20 {
                let m = sample_matching(&g, ProposalRule::Uniform, &mut rngs);
                m.validate(&g).unwrap_or_else(|e| panic!("{name}: {e}"));
            }
        }
    }

    #[test]
    fn capped_rule_also_valid() {
        let (g, _) = generators::planted_partition(2, 30, 0.3, 0.05, 3).unwrap();
        let cap = g.max_degree();
        let mut rngs = rngs_for(g.n(), 9);
        for _ in 0..20 {
            let m = sample_matching(&g, ProposalRule::Capped(cap), &mut rngs);
            m.validate(&g).unwrap();
        }
    }

    #[test]
    fn edge_probability_matches_lemma_2_1() {
        // Monte Carlo on a d-regular graph: every edge should be matched
        // with probability d̄/(2d).
        let g = generators::cycle(40).unwrap(); // 2-regular
        let expect = edge_match_probability(2);
        let trials = 20_000;
        let mut rngs = rngs_for(g.n(), 123);
        let mut hit = 0usize;
        for _ in 0..trials {
            let m = sample_matching(&g, ProposalRule::Uniform, &mut rngs);
            if m.partner(0) == Some(1) {
                hit += 1;
            }
        }
        let freq = hit as f64 / trials as f64;
        assert!(
            (freq - expect).abs() < 0.01,
            "freq {freq} vs expected {expect}"
        );
    }

    #[test]
    fn expected_matrix_diagonal_matches_lemma_2_1() {
        // P[v matched] = d̄/2 ⇒ E[M_vv] = 1 − d̄/4 on regular graphs.
        let g = generators::complete(8).unwrap(); // 7-regular
        let db = d_bar(7);
        let trials = 30_000;
        let mut rngs = rngs_for(g.n(), 5);
        let mut matched = 0usize;
        for _ in 0..trials {
            let m = sample_matching(&g, ProposalRule::Uniform, &mut rngs);
            if m.partner(3).is_some() {
                matched += 1;
            }
        }
        let freq = matched as f64 / trials as f64;
        assert!(
            (freq - db / 2.0).abs() < 0.01,
            "match freq {freq} vs d̄/2 = {}",
            db / 2.0
        );
    }

    #[test]
    fn isolated_node_never_matched() {
        let g = lbc_graph::Graph::from_edges(3, &[(0, 1)]).unwrap();
        let mut rngs = rngs_for(3, 2);
        for _ in 0..50 {
            let m = sample_matching(&g, ProposalRule::Uniform, &mut rngs);
            assert_eq!(m.partner(2), None);
            m.validate(&g).unwrap();
        }
    }

    #[test]
    fn dense_application_conserves_sum_and_contracts() {
        let g = generators::random_regular(60, 4, 8).unwrap();
        let mut rngs = rngs_for(60, 3);
        let mut x: Vec<f64> = (0..60).map(|i| (i % 7) as f64).collect();
        let sum0: f64 = x.iter().sum();
        let norm0: f64 = x.iter().map(|v| v * v).sum::<f64>();
        for _ in 0..30 {
            let m = sample_matching(&g, ProposalRule::Uniform, &mut rngs);
            apply_matching_dense(&m, &mut x);
        }
        let sum1: f64 = x.iter().sum();
        let norm1: f64 = x.iter().map(|v| v * v).sum::<f64>();
        assert!((sum0 - sum1).abs() < 1e-9, "sum not conserved");
        assert!(norm1 <= norm0 + 1e-12, "projection must contract norm");
    }

    #[test]
    fn capped_rule_reduces_match_rate() {
        // With a huge cap, most proposals hit self-loop slots.
        let g = generators::complete(10).unwrap();
        let mut rngs_a = rngs_for(10, 4);
        let mut rngs_b = rngs_for(10, 4);
        let mut uniform = 0usize;
        let mut capped = 0usize;
        for _ in 0..2_000 {
            uniform += sample_matching(&g, ProposalRule::Uniform, &mut rngs_a).size();
            capped += sample_matching(&g, ProposalRule::Capped(90), &mut rngs_b).size();
        }
        assert!(capped * 3 < uniform, "capped {capped} vs uniform {uniform}");
    }

    #[test]
    fn deterministic_given_streams() {
        let g = generators::cycle(16).unwrap();
        let mut r1 = rngs_for(16, 11);
        let mut r2 = rngs_for(16, 11);
        for _ in 0..10 {
            let a = sample_matching(&g, ProposalRule::Uniform, &mut r1);
            let b = sample_matching(&g, ProposalRule::Uniform, &mut r2);
            assert_eq!(a, b);
        }
    }
}
