//! The query procedure (§3.1) and its threshold variants.
//!
//! The paper labels node `v` with the *minimum* seed ID whose load at `v`
//! is at least `1/(√(2β)·n)`; if no entry clears the threshold the label
//! is arbitrary. The threshold comes from the misclassification analysis
//! (a node is misclassified only if some coordinate deviates from its
//! target `χ_{S(v_i)}(v)` by at least `1/(√(2β)·n)`), with untuned
//! constants — so we also expose the natural practical rule (argmax) and
//! a scaled-threshold variant for the ablation benches.

use lbc_graph::Partition;

use crate::arena::StateArena;
use crate::state::{LoadState, SeedId};

/// Label assignment rule applied to each node's final state.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum QueryRule {
    /// Paper rule: min seed ID with load ≥ `1/(√(2β)·n)`.
    PaperThreshold,
    /// Min seed ID with load ≥ `c/n` (ablation knob).
    ScaledThreshold(f64),
    /// Seed ID with the maximum load (practical rule; never abstains).
    ArgMax,
}

impl QueryRule {
    /// The load threshold this rule uses (`None` for ArgMax).
    pub fn threshold(self, beta: f64, n: usize) -> Option<f64> {
        match self {
            QueryRule::PaperThreshold => Some(1.0 / ((2.0 * beta).sqrt() * n as f64)),
            QueryRule::ScaledThreshold(c) => Some(c / n as f64),
            QueryRule::ArgMax => None,
        }
    }

    /// Label one node. Returns `None` when the rule abstains (threshold
    /// rules with no qualifying entry, or an empty state).
    pub fn label(self, state: &LoadState, beta: f64, n: usize) -> Option<SeedId> {
        match self.threshold(beta, n) {
            Some(tau) => state
                .entries()
                .iter()
                .find(|&&(_, x)| x >= tau)
                .map(|&(id, _)| id),
            None => state
                .entries()
                .iter()
                .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
                .map(|&(id, _)| id),
        }
    }
}

/// Apply the query rule to every node and compact the raw seed-ID labels
/// into a [`Partition`] with labels `0..k'`.
///
/// Abstaining nodes fall back to the argmax entry (the paper allows an
/// arbitrary label there; argmax is the deterministic choice). Nodes
/// whose state is completely empty are grouped into one extra cluster.
pub fn assign_labels(
    states: &[LoadState],
    rule: QueryRule,
    beta: f64,
) -> (Vec<Option<SeedId>>, Partition) {
    let n = states.len();
    let raw: Vec<Option<SeedId>> = states
        .iter()
        .map(|st| {
            rule.label(st, beta, n)
                .or_else(|| QueryRule::ArgMax.label(st, beta, n))
        })
        .collect();
    // Compact seed ids → 0..k'−1 (sorted for determinism); empties last.
    let mut ids: Vec<SeedId> = raw.iter().flatten().copied().collect();
    ids.sort_unstable();
    ids.dedup();
    let index_of = |id: SeedId| ids.binary_search(&id).unwrap() as u32;
    let empty_label = ids.len() as u32;
    let labels: Vec<u32> = raw
        .iter()
        .map(|r| r.map_or(empty_label, index_of))
        .collect();
    let any_empty = raw.iter().any(Option::is_none);
    let k = ids.len() + usize::from(any_empty);
    let partition = Partition::with_k(labels, k.max(1)).expect("labels constructed in range");
    (raw, partition)
}

/// [`assign_labels`] over a [`StateArena`] — same rule, same output,
/// bit-for-bit (the arena's dense indices are in ascending seed-id
/// order, so "min id above threshold" is "first qualifying entry" and
/// the argmax tie-break visits entries in the identical order).
///
/// Where the `LoadState` path binary-searches the winning id of *every
/// node* into the compacted label space, here the winners are already
/// dense `u32` indices `< s`, so compaction is one `O(s)` remap table
/// plus an `O(n)` sweep.
pub fn assign_labels_arena(
    arena: &StateArena,
    rule: QueryRule,
    beta: f64,
) -> (Vec<Option<SeedId>>, Partition) {
    let n = arena.n();
    let s = arena.seed_count();
    let tau = rule.threshold(beta, n);
    // Winner per node, as a dense seed index (None = empty state).
    let mut winners: Vec<Option<u32>> = Vec::with_capacity(n);
    for v in 0..n {
        let (idx, load) = arena.entries(v);
        let thresholded = tau.and_then(|t| load.iter().position(|&x| x >= t).map(|p| idx[p]));
        // `Iterator::max_by` keeps the *last* of equal maxima; replicate
        // that with a `>=` update so ties resolve identically.
        let argmax = || {
            let mut best: Option<(u32, f64)> = None;
            for (&d, &x) in idx.iter().zip(load) {
                match best {
                    Some((_, bx)) if x < bx => {}
                    _ => best = Some((d, x)),
                }
            }
            best.map(|(d, _)| d)
        };
        winners.push(thresholded.or_else(argmax));
    }
    // Compact the used dense indices to 0..k'−1; dense order == id order,
    // so this is exactly the sorted-id compaction of `assign_labels`.
    let mut used = vec![false; s];
    for w in winners.iter().flatten() {
        used[*w as usize] = true;
    }
    let mut remap = vec![0u32; s];
    let mut next = 0u32;
    for (d, &u) in used.iter().enumerate() {
        if u {
            remap[d] = next;
            next += 1;
        }
    }
    let empty_label = next;
    let labels: Vec<u32> = winners
        .iter()
        .map(|w| w.map_or(empty_label, |d| remap[d as usize]))
        .collect();
    let raw: Vec<Option<SeedId>> = winners
        .iter()
        .map(|w| w.map(|d| arena.ids()[d as usize]))
        .collect();
    let any_empty = winners.iter().any(Option::is_none);
    let k = next as usize + usize::from(any_empty);
    let partition = Partition::with_k(labels, k.max(1)).expect("labels constructed in range");
    (raw, partition)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn st(entries: &[(SeedId, f64)]) -> LoadState {
        LoadState::from_entries(entries.to_vec())
    }

    #[test]
    fn paper_threshold_value() {
        // β = 1/2, n = 100: τ = 1/(√1 · 100) = 0.01.
        let tau = QueryRule::PaperThreshold.threshold(0.5, 100).unwrap();
        assert!((tau - 0.01).abs() < 1e-15);
    }

    #[test]
    fn min_id_above_threshold_wins() {
        // Both ids clear τ; the smaller id is chosen even with less load.
        let s = st(&[(3, 0.5), (9, 0.9)]);
        let l = QueryRule::ScaledThreshold(1.0).label(&s, 0.5, 10);
        assert_eq!(l, Some(3));
    }

    #[test]
    fn below_threshold_abstains() {
        let s = st(&[(3, 0.001)]);
        assert_eq!(QueryRule::ScaledThreshold(1.0).label(&s, 0.5, 10), None);
    }

    #[test]
    fn argmax_never_abstains_on_nonempty() {
        let s = st(&[(3, 0.001), (9, 0.002)]);
        assert_eq!(QueryRule::ArgMax.label(&s, 0.5, 10), Some(9));
        assert_eq!(QueryRule::ArgMax.label(&LoadState::empty(), 0.5, 10), None);
    }

    #[test]
    fn assign_labels_compacts_ids() {
        let states = vec![
            st(&[(100, 0.9)]),
            st(&[(100, 0.8)]),
            st(&[(7, 0.7)]),
            st(&[(7, 0.9), (100, 0.1)]),
        ];
        let (raw, part) = assign_labels(&states, QueryRule::ArgMax, 0.5);
        assert_eq!(raw, vec![Some(100), Some(100), Some(7), Some(7)]);
        // id 7 < 100 so it compacts to label 0.
        assert_eq!(part.labels(), &[1, 1, 0, 0]);
        assert_eq!(part.k(), 2);
    }

    #[test]
    fn abstainers_fall_back_to_argmax() {
        let states = vec![st(&[(5, 1.0)]), st(&[(5, 1e-9)])];
        let (raw, part) = assign_labels(&states, QueryRule::PaperThreshold, 0.5);
        // Node 1 is under τ but falls back to its argmax entry (id 5).
        assert_eq!(raw, vec![Some(5), Some(5)]);
        assert_eq!(part.labels(), &[0, 0]);
    }

    #[test]
    fn empty_states_get_their_own_cluster() {
        let states = vec![st(&[(5, 1.0)]), LoadState::empty()];
        let (raw, part) = assign_labels(&states, QueryRule::ArgMax, 0.5);
        assert_eq!(raw[1], None);
        assert_eq!(part.labels(), &[0, 1]);
        assert_eq!(part.k(), 2);
    }

    #[test]
    fn all_empty_states_single_cluster() {
        let states = vec![LoadState::empty(), LoadState::empty()];
        let (_, part) = assign_labels(&states, QueryRule::ArgMax, 0.5);
        assert_eq!(part.labels(), &[0, 0]);
        assert_eq!(part.k(), 1);
    }
}
