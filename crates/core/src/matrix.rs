//! Dense matrix view of the multi-dimensional load-balancing process
//! (§3.2): `s` load vectors `x^{(t,i)} ∈ R^n`, all updated by the same
//! matching matrix `M^{(t)}` each round.
//!
//! This representation is what the analysis experiments need (whole load
//! vectors, their projections `Q y`, distances to `χ_{S_j}`), and it
//! doubles as an independent implementation for cross-checking the
//! sparse centralised path.

use lbc_distsim::NodeRng;
use lbc_graph::{Graph, NodeId};

use crate::matching::{sample_matching_into, MatchingOutcome, MatchingScratch, ProposalRule};

/// The multi-dimensional process: `vectors[i]` is `x^{(t,i)}`.
pub struct MultiLoadProcess<'g> {
    graph: &'g Graph,
    rule: ProposalRule,
    rngs: Vec<NodeRng>,
    vectors: Vec<Vec<f64>>,
    round: usize,
    scratch: MatchingScratch,
}

impl<'g> MultiLoadProcess<'g> {
    /// Start a process with unit loads at `sources` (vector `i` is
    /// `χ_{sources[i]}`, i.e. 1 at that node).
    ///
    /// `rngs` should be the per-node streams *after* seeding so the
    /// matchings replay identically to [`crate::cluster`]; for standalone
    /// analysis just pass fresh streams.
    pub fn new(
        graph: &'g Graph,
        rule: ProposalRule,
        rngs: Vec<NodeRng>,
        sources: &[NodeId],
    ) -> Self {
        assert_eq!(rngs.len(), graph.n(), "one rng stream per node");
        let n = graph.n();
        let vectors = sources
            .iter()
            .map(|&v| {
                let mut x = vec![0.0; n];
                x[v as usize] = 1.0;
                x
            })
            .collect();
        MultiLoadProcess {
            graph,
            rule,
            rngs,
            vectors,
            round: 0,
            scratch: MatchingScratch::new(n),
        }
    }

    fn step_inner(&mut self) {
        sample_matching_into(self.graph, self.rule, &mut self.rngs, &mut self.scratch);
        for x in &mut self.vectors {
            self.scratch.apply_dense(x);
        }
        self.round += 1;
    }

    /// Execute one round: sample a matching, average every vector along
    /// it. Returns the matching for callers that track trajectories.
    pub fn step(&mut self) -> MatchingOutcome {
        self.step_inner();
        self.scratch.to_outcome()
    }

    /// Run `rounds` rounds (without materialising the matchings).
    pub fn run(&mut self, rounds: usize) {
        for _ in 0..rounds {
            self.step_inner();
        }
    }

    /// Current round.
    pub fn round(&self) -> usize {
        self.round
    }

    /// Load vector `i`.
    pub fn vector(&self, i: usize) -> &[f64] {
        &self.vectors[i]
    }

    /// All load vectors.
    pub fn vectors(&self) -> &[Vec<f64>] {
        &self.vectors
    }

    /// Node `v`'s coordinates across all vectors
    /// (`x^{(t,1)}(v), …, x^{(t,s)}(v)`).
    pub fn node_profile(&self, v: NodeId) -> Vec<f64> {
        self.vectors.iter().map(|x| x[v as usize]).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lbc_graph::generators;

    fn rngs_for(n: usize, seed: u64) -> Vec<NodeRng> {
        (0..n as u32).map(|v| NodeRng::for_node(seed, v)).collect()
    }

    #[test]
    fn conserves_each_vector_sum() {
        let (g, _) = generators::ring_of_cliques(2, 12, 0).unwrap();
        let mut p = MultiLoadProcess::new(&g, ProposalRule::Uniform, rngs_for(g.n(), 3), &[0, 15]);
        p.run(40);
        for x in p.vectors() {
            let s: f64 = x.iter().sum();
            assert!((s - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn loads_stay_nonnegative() {
        let (g, _) = generators::ring_of_cliques(3, 8, 0).unwrap();
        let mut p =
            MultiLoadProcess::new(&g, ProposalRule::Uniform, rngs_for(g.n(), 5), &[0, 8, 16]);
        p.run(60);
        for x in p.vectors() {
            assert!(x.iter().all(|&v| v >= 0.0));
        }
    }

    #[test]
    fn converges_towards_uniform_on_expander() {
        let g = generators::complete(32).unwrap();
        let mut p = MultiLoadProcess::new(&g, ProposalRule::Uniform, rngs_for(32, 7), &[0]);
        p.run(200);
        let x = p.vector(0);
        let target = 1.0 / 32.0;
        for &v in x {
            assert!((v - target).abs() < 0.02, "value {v} vs {target}");
        }
    }

    #[test]
    fn localises_on_cluster_before_global_mixing() {
        // At T ≈ log n / gap rounds, the load from a cluster node should
        // be mostly inside its own clique.
        let (g, truth) = generators::ring_of_cliques(4, 16, 0).unwrap();
        let mut p = MultiLoadProcess::new(&g, ProposalRule::Uniform, rngs_for(g.n(), 9), &[0]);
        p.run(40);
        let x = p.vector(0);
        let inside: f64 = (0..g.n())
            .filter(|&v| truth.label(v as u32) == 0)
            .map(|v| x[v])
            .sum();
        assert!(inside > 0.8, "mass inside own cluster = {inside}");
    }

    #[test]
    fn node_profile_reads_columns() {
        let (g, _) = generators::ring_of_cliques(2, 6, 0).unwrap();
        let p = MultiLoadProcess::new(&g, ProposalRule::Uniform, rngs_for(12, 1), &[2, 9]);
        assert_eq!(p.node_profile(2), vec![1.0, 0.0]);
        assert_eq!(p.node_profile(9), vec![0.0, 1.0]);
        assert_eq!(p.node_profile(0), vec![0.0, 0.0]);
    }

    #[test]
    fn matches_sparse_driver_states() {
        // The matrix process and the sparse driver must agree exactly
        // when fed the same post-seeding rng streams.
        use crate::config::LbConfig;
        use crate::driver::cluster;
        let (g, _) = generators::ring_of_cliques(2, 10, 0).unwrap();
        let cfg = LbConfig::new(0.5, 25).with_seed(21);
        let out = cluster(&g, &cfg).unwrap();
        // Replay seeding to advance fresh streams to the same point.
        let mut rngs = rngs_for(g.n(), 21);
        let seeds = crate::seeding::run_seeding(g.n(), cfg.trials(), &mut rngs);
        assert_eq!(seeds, out.seeds);
        let sources: Vec<u32> = seeds.iter().map(|s| s.node).collect();
        let mut p = MultiLoadProcess::new(&g, cfg.proposal_rule(&g), rngs, &sources);
        p.run(25);
        for (i, s) in seeds.iter().enumerate() {
            for v in 0..g.n() {
                let dense = p.vector(i)[v];
                let sparse = out.states[v].load(s.id);
                assert_eq!(dense, sparse, "mismatch at node {v}, seed {i}");
            }
        }
    }
}
