//! Centralised end-to-end pipeline: Seeding → Averaging → Query.
//!
//! This is the paper's §1.2 "natural centralised algorithm": per round it
//! samples a matching (replaying per-node random streams) and merges the
//! sparse states of matched pairs. Cost per round is `O(n + |M| · s)`
//! where `s` is the number of seeds — with a random-neighbour oracle this
//! is the `O(n log n)` total the paper advertises, independent of the
//! edge count `m`.

use lbc_distsim::NodeRng;
use lbc_graph::{Graph, Partition};

use crate::arena::StateArena;
use crate::config::LbConfig;
use crate::matching::{sample_matching_into, MatchingScratch};
use crate::query::assign_labels_arena;
use crate::seeding::{run_seeding, Seed};
use crate::state::{LoadState, SeedId};

/// Everything a clustering run produces.
#[derive(Debug, Clone)]
pub struct ClusterOutput {
    /// Compacted labelling (labels `0..k'`).
    pub partition: Partition,
    /// Raw per-node label: the winning seed id (None = empty state).
    pub raw_labels: Vec<Option<SeedId>>,
    /// The seeds chosen by the seeding procedure.
    pub seeds: Vec<Seed>,
    /// Averaging rounds executed.
    pub rounds: usize,
    /// Final per-node load states (useful for inspection/analysis).
    pub states: Vec<LoadState>,
}

impl ClusterOutput {
    /// Resident footprint of this output in machine words, dominated by
    /// the load states (two words per entry, as in [`LoadState::words`]),
    /// plus the labelling: two words per node for `raw_labels`
    /// (`Option<SeedId>` is 16 bytes) and half a word per node for the
    /// partition's `u32` labels. Used by the serving registry to report
    /// how much state its cache pins.
    pub fn resident_words(&self) -> usize {
        let states: usize = self.states.iter().map(LoadState::words).sum();
        let n = self.partition.n();
        states + 2 * n + n.div_ceil(2)
    }

    /// First difference from `other` at the **bit level** — every `f64`
    /// state word compared by bit pattern (so NaN payloads, negative
    /// zero and subnormals all count), everything else by `==`; `None`
    /// when the outputs are identical. The single source of truth for
    /// the "bit-for-bit" standard the warm-start identity and the
    /// persistence round trip are held to.
    pub fn bit_diff(&self, other: &ClusterOutput) -> Option<String> {
        if self.partition != other.partition {
            return Some("partitions differ".into());
        }
        if self.raw_labels != other.raw_labels {
            return Some("raw labels differ".into());
        }
        if self.seeds != other.seeds {
            return Some("seeds differ".into());
        }
        if self.rounds != other.rounds {
            return Some(format!(
                "round counts differ: {} vs {}",
                self.rounds, other.rounds
            ));
        }
        if self.states.len() != other.states.len() {
            return Some(format!(
                "state counts differ: {} vs {}",
                self.states.len(),
                other.states.len()
            ));
        }
        for (v, (a, b)) in self.states.iter().zip(&other.states).enumerate() {
            if a.entries().len() != b.entries().len() {
                return Some(format!(
                    "node {v}: state sizes differ: {} vs {}",
                    a.entries().len(),
                    b.entries().len()
                ));
            }
            for (&(ia, xa), &(ib, xb)) in a.entries().iter().zip(b.entries()) {
                if ia != ib {
                    return Some(format!("node {v}: seed ids differ: {ia} vs {ib}"));
                }
                if xa.to_bits() != xb.to_bits() {
                    return Some(format!(
                        "node {v}, seed {ia}: state word differs at the bit level \
                         ({xa} vs {xb})"
                    ));
                }
            }
        }
        None
    }
}

/// Errors a clustering run can report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClusterError {
    /// The seeding procedure produced no seeds (can happen with tiny
    /// graphs / few trials); re-run with another seed or more trials.
    NoSeeds,
    /// The graph has no nodes.
    EmptyGraph,
    /// A warm start's prior output does not line up with the graph:
    /// `prior_n + added` nodes were expected, the graph has `n`.
    PriorMismatch { prior_n: usize, n: usize },
}

impl std::fmt::Display for ClusterError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClusterError::NoSeeds => write!(f, "seeding produced no seeds"),
            ClusterError::EmptyGraph => write!(f, "graph has no nodes"),
            ClusterError::PriorMismatch { prior_n, n } => write!(
                f,
                "warm-start prior covers {prior_n} nodes but the graph has {n} \
                 (delta node additions included)"
            ),
        }
    }
}

impl std::error::Error for ClusterError {}

/// Run the full algorithm (centralised implementation).
///
/// ```
/// use lbc_core::{cluster, LbConfig};
/// use lbc_eval::accuracy;
/// use lbc_graph::generators::ring_of_cliques;
///
/// let (g, truth) = ring_of_cliques(3, 20, 0).unwrap();
/// let cfg = LbConfig::new(1.0 / 3.0, 60).with_seed(3);
/// let out = cluster(&g, &cfg).unwrap();
/// assert!(accuracy(truth.labels(), out.partition.labels()) > 0.9);
/// ```
pub fn cluster(graph: &Graph, cfg: &LbConfig) -> Result<ClusterOutput, ClusterError> {
    let n = graph.n();
    if n == 0 {
        return Err(ClusterError::EmptyGraph);
    }
    let mut rngs: Vec<NodeRng> = (0..n as u32)
        .map(|v| NodeRng::for_node(cfg.seed, v))
        .collect();

    // Seeding.
    let seeds = run_seeding(n, cfg.trials(), &mut rngs);
    if seeds.is_empty() {
        return Err(ClusterError::NoSeeds);
    }

    // Averaging, on the flat arena: after this point the round loop is
    // allocation-free — matchings refill `scratch`, merges go through
    // the arena's in-place two-pointer merge (bit-identical to
    // `LoadState::average`; see `tests/proptests.rs`).
    let mut arena = StateArena::new(n, &seeds);
    let mut scratch = MatchingScratch::new(n);
    let rule = cfg.proposal_rule(graph);
    let rounds = cfg.rounds.count();
    for _ in 0..rounds {
        sample_matching_into(graph, rule, &mut rngs, &mut scratch);
        arena.average_matched(&scratch);
    }

    // Query (dense-index compaction) + boundary conversion to the
    // `Vec<LoadState>` representation `ClusterOutput` exposes.
    let (raw_labels, partition) = assign_labels_arena(&arena, cfg.query, cfg.beta);
    Ok(ClusterOutput {
        partition,
        raw_labels,
        seeds,
        rounds,
        states: arena.to_load_states(),
    })
}

/// Adaptive variant: run averaging until the labelling stabilises
/// (identical partitions at `patience` consecutive checkpoints, checked
/// every `check_every` rounds), up to `max_rounds`.
///
/// This removes the need for the spectral oracle when `λ_{k+1}` is
/// unknown: the query labelling itself is the convergence signal. The
/// paper sets `T` from the spectrum (§1.2); adaptivity is the natural
/// deployment extension and is exercised by the ablation benches.
///
/// Returns the output plus the round at which it stopped.
pub fn cluster_adaptive(
    graph: &Graph,
    cfg: &LbConfig,
    check_every: usize,
    patience: usize,
    max_rounds: usize,
) -> Result<(ClusterOutput, usize), ClusterError> {
    assert!(check_every >= 1 && patience >= 1 && max_rounds >= 1);
    let n = graph.n();
    if n == 0 {
        return Err(ClusterError::EmptyGraph);
    }
    let mut rngs: Vec<NodeRng> = (0..n as u32)
        .map(|v| NodeRng::for_node(cfg.seed, v))
        .collect();
    let seeds = run_seeding(n, cfg.trials(), &mut rngs);
    if seeds.is_empty() {
        return Err(ClusterError::NoSeeds);
    }
    let mut arena = StateArena::new(n, &seeds);
    let mut scratch = MatchingScratch::new(n);
    let rule = cfg.proposal_rule(graph);
    let mut last: Option<Partition> = None;
    let mut stable = 0usize;
    let mut executed = 0usize;
    for t in 1..=max_rounds {
        sample_matching_into(graph, rule, &mut rngs, &mut scratch);
        arena.average_matched(&scratch);
        executed = t;
        if t % check_every == 0 {
            let (_, part) = assign_labels_arena(&arena, cfg.query, cfg.beta);
            if last.as_ref() == Some(&part) {
                stable += 1;
                if stable >= patience {
                    break;
                }
            } else {
                stable = 0;
                last = Some(part);
            }
        }
    }
    let (raw_labels, partition) = assign_labels_arena(&arena, cfg.query, cfg.beta);
    Ok((
        ClusterOutput {
            partition,
            raw_labels,
            seeds,
            rounds: executed,
            states: arena.to_load_states(),
        },
        executed,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::DegreeMode;
    use crate::query::QueryRule;
    use lbc_eval::accuracy;
    use lbc_graph::generators;

    #[test]
    fn recovers_ring_of_cliques() {
        let (g, truth) = generators::ring_of_cliques(4, 30, 0).unwrap();
        let cfg = LbConfig::new(0.25, 60).with_seed(3);
        let out = cluster(&g, &cfg).unwrap();
        let acc = accuracy(truth.labels(), out.partition.labels());
        assert!(acc > 0.95, "accuracy {acc}");
        assert_eq!(out.rounds, 60);
        assert!(!out.seeds.is_empty());
    }

    #[test]
    fn recovers_planted_partition_with_auto_rounds() {
        let (g, truth) = generators::planted_partition(3, 60, 0.4, 0.005, 11).unwrap();
        let cfg = LbConfig::from_graph(&g, 1.0 / 3.0).with_seed(5);
        let out = cluster(&g, &cfg).unwrap();
        let acc = accuracy(truth.labels(), out.partition.labels());
        assert!(acc > 0.9, "accuracy {acc} after {} rounds", out.rounds);
    }

    #[test]
    fn argmax_rule_yields_pure_clusters() {
        // ArgMax may *split* a cluster that received several seeds (each
        // sub-region sticks to its nearest seed), so accuracy against k
        // ground-truth labels is not the right check — purity is: every
        // found cluster should sit inside one true cluster.
        let (g, truth) = generators::ring_of_cliques(3, 24, 0).unwrap();
        let cfg = LbConfig::new(1.0 / 3.0, 80)
            .with_seed(8)
            .with_query(QueryRule::ArgMax);
        let out = cluster(&g, &cfg).unwrap();
        let labels = out.partition.labels();
        let kf = out.partition.k();
        let mut pure = 0usize;
        for c in 0..kf as u32 {
            let members: Vec<usize> = (0..g.n()).filter(|&v| labels[v] == c).collect();
            if members.is_empty() {
                continue;
            }
            let mut counts = vec![0usize; truth.k()];
            for &v in &members {
                counts[truth.labels()[v] as usize] += 1;
            }
            pure += counts.iter().max().copied().unwrap_or(0);
        }
        let purity = pure as f64 / g.n() as f64;
        assert!(purity > 0.95, "purity {purity}");
    }

    #[test]
    fn total_load_is_conserved() {
        let (g, _) = generators::ring_of_cliques(3, 20, 0).unwrap();
        let cfg = LbConfig::new(1.0 / 3.0, 40).with_seed(2);
        let out = cluster(&g, &cfg).unwrap();
        // Each seed injected exactly 1 unit of load.
        let total: f64 = out.states.iter().map(LoadState::total).sum();
        assert!(
            (total - out.seeds.len() as f64).abs() < 1e-9,
            "total {total} vs {} seeds",
            out.seeds.len()
        );
        // Per-seed conservation.
        for s in &out.seeds {
            let seed_total: f64 = out.states.iter().map(|st| st.load(s.id)).sum();
            assert!(
                (seed_total - 1.0).abs() < 1e-9,
                "seed {} total {seed_total}",
                s.id
            );
        }
    }

    #[test]
    fn deterministic_in_seed() {
        let (g, _) = generators::ring_of_cliques(2, 16, 0).unwrap();
        let cfg = LbConfig::new(0.5, 30).with_seed(7);
        let a = cluster(&g, &cfg).unwrap();
        let b = cluster(&g, &cfg).unwrap();
        assert_eq!(a.partition, b.partition);
        assert_eq!(a.states, b.states);
        let c = cluster(&g, &cfg.clone().with_seed(8)).unwrap();
        assert!(a.seeds != c.seeds || a.states != c.states);
    }

    #[test]
    fn empty_graph_is_an_error() {
        let g = Graph::from_edges(0, &[]).unwrap();
        let cfg = LbConfig::new(0.5, 5);
        assert!(matches!(cluster(&g, &cfg), Err(ClusterError::EmptyGraph)));
    }

    #[test]
    fn no_seeds_is_an_error() {
        // One trial on a large graph: activation probability 1/n per
        // node, so usually ≥1 seed — force failure with trials = 1 and a
        // seed chosen to produce none.
        let (g, _) = generators::ring_of_cliques(2, 10, 0).unwrap();
        let mut found_error = false;
        for s in 0..50 {
            let cfg = LbConfig::new(0.5, 5).with_seed(s).with_seeding_trials(1);
            if matches!(cluster(&g, &cfg), Err(ClusterError::NoSeeds)) {
                found_error = true;
                break;
            }
        }
        assert!(
            found_error,
            "expected at least one seedless run in 50 tries"
        );
    }

    #[test]
    fn adaptive_variant_stops_early_and_matches_quality() {
        let (g, truth) = generators::ring_of_cliques(3, 24, 0).unwrap();
        let cfg = LbConfig::new(1.0 / 3.0, 1).with_seed(6);
        let (out, stopped) = cluster_adaptive(&g, &cfg, 10, 3, 2000).unwrap();
        assert!(stopped < 2000, "should stabilise before the cap");
        let acc = accuracy(truth.labels(), out.partition.labels());
        assert!(acc > 0.95, "accuracy {acc} at round {stopped}");
        assert_eq!(out.rounds, stopped);
    }

    #[test]
    fn adaptive_variant_respects_max_rounds() {
        // A poorly-clustered graph may never stabilise; the cap holds.
        let g = generators::cycle(30).unwrap();
        let cfg = LbConfig::new(0.5, 1).with_seed(2).with_seeding_trials(30);
        let (_, stopped) = cluster_adaptive(&g, &cfg, 7, 50, 40).unwrap();
        assert!(stopped <= 40);
    }

    #[test]
    fn almost_regular_mode_on_irregular_graph() {
        let (g0, truth) = generators::planted_partition(2, 50, 0.5, 0.01, 13).unwrap();
        let g = generators::perturb_degrees(&g0, &truth, 0.1, 0.1, 14).unwrap();
        assert!(!g.is_regular());
        let cfg = LbConfig::new(0.5, 80)
            .with_seed(4)
            .with_degree_mode(DegreeMode::Auto);
        let out = cluster(&g, &cfg).unwrap();
        let acc = accuracy(truth.labels(), out.partition.labels());
        assert!(acc > 0.9, "accuracy {acc}");
    }

    use lbc_graph::Graph;
}
