//! The paper's algorithm: distributed graph clustering by load balancing.
//!
//! Three mutually-consistent implementations of the Seeding → Averaging →
//! Query pipeline of §3 (Sun & Zanetti, SPAA'17):
//!
//! 1. **Sparse centralised** ([`cluster`]) — per-node sparse load states,
//!    matchings sampled by replaying each node's private random stream.
//!    This is the `O(n log n)`-flavour variant of §1.2 and the fast path
//!    for experiments.
//! 2. **Dense matrix view** ([`matrix::MultiLoadProcess`]) — the §3.2
//!    formulation `x^{(t,i)} = M^{(t)} x^{(t−1,i)}`; used by the
//!    Lemma 4.1/4.3 analysis experiments which need whole load vectors.
//! 3. **Fully distributed** ([`cluster_distributed`]) — every paper round
//!    is a three-message handshake (propose → accept → update) on the
//!    [`lbc_distsim`] synchronous network, with exact word accounting
//!    against Theorem 1.1(2).
//!
//! All three consume per-node [`lbc_distsim::NodeRng`] streams in the
//! same order, so for a given `(graph, config)` they produce *bit-for-bit
//! identical* load states — a property the test suite enforces.
//!
//! Module map:
//! * [`state`] — sparse load states and the paper's averaging rule.
//! * [`arena`] — [`StateArena`]: flat, allocation-free storage for the
//!   round loop (dense seed indices, in-place merges); the hot path of
//!   [`cluster`] runs on it and converts back to [`LoadState`]s at the
//!   [`ClusterOutput`] boundary.
//! * [`matching`] — the random matching model (§2.2): activation,
//!   proposal, acceptance; regular and §4.5 almost-regular modes;
//!   [`MatchingScratch`] holds the per-round buffers for reuse.
//! * [`seeding`] — the seeding procedure (`s̄ = (3/β) ln(1/β)` trials).
//! * [`query`] — the query procedure and its threshold variants.
//! * [`config`] — [`LbConfig`]: `β`, rounds, query rule, degree mode.
//! * [`driver`] — [`cluster`] (centralised) end-to-end pipeline.
//! * [`incremental`] — [`warm_start`]: dynamic-graph re-clustering from
//!   resident states, with a load-movement convergence criterion in
//!   place of the fixed `T`.
//! * [`matrix`] — dense multi-dimensional load-balancing process.
//! * [`protocol`] — the distributed node program and
//!   [`cluster_distributed`].
//! * [`analysis`] — Lemma 4.1/4.2/4.3 quantities (`Q`, `χ̂_i`, `α_v`)
//!   for the early-behaviour experiments.

pub mod analysis;
pub mod arena;
pub mod async_gossip;
pub mod config;
pub mod discrete;
pub mod driver;
pub mod estimation;
pub mod gossip;
pub mod incremental;
pub mod matching;
pub mod matrix;
pub mod protocol;
pub mod query;
pub mod seeding;
pub mod state;

pub use arena::StateArena;
pub use async_gossip::{cluster_async, AsyncOutput};
pub use config::{DegreeMode, LbConfig, Rounds};
pub use discrete::{cluster_discrete, DiscreteOutput, TokenState};
pub use driver::{cluster, cluster_adaptive, ClusterOutput};
pub use estimation::{estimate_size, SizeEstimate};
pub use gossip::{gossip_average, rumour_spread, AveragingTrajectory, RumourTrajectory};
pub use incremental::{warm_start, WarmStartConfig, WarmStartOutput};
pub use matching::{
    d_bar, sample_matching, sample_matching_into, MatchingOutcome, MatchingScratch,
};
pub use protocol::cluster_distributed;
pub use query::{assign_labels, assign_labels_arena, QueryRule};
pub use seeding::{expected_trials, run_seeding, Seed};
pub use state::LoadState;
