//! Discrete (indivisible-token) load balancing — an extension in the
//! spirit of the paper's related work \[4, 11, 15\].
//!
//! The paper's process averages *divisible* loads; real token-based
//! systems ship indivisible units. Here each seed injects `resolution`
//! tokens at its node; when a matched pair averages, each side takes
//! `⌊total/2⌋` tokens per seed and the odd token (if any) goes to a
//! random side — Friedrich & Sauerwald's randomised-rounding scheme
//! ("near-perfect load balancing by randomized rounding", STOC'09),
//! which keeps the discrete process within `O(√log n)`-ish of the
//! continuous one. The query procedure thresholds token counts exactly
//! as the continuous algorithm thresholds loads.
//!
//! At large `resolution` the output converges to [`crate::cluster`]'s;
//! at tiny resolution quantisation noise dominates — the
//! `expt_ext_discrete` experiment sweeps this trade-off (tokens are
//! *messages*, so resolution is a genuine communication knob).

use lbc_distsim::NodeRng;
use lbc_graph::{Graph, Partition};

use crate::config::LbConfig;
use crate::driver::ClusterError;
use crate::matching::{sample_matching_into, MatchingScratch};
use crate::query::assign_labels;
use crate::seeding::{run_seeding, Seed};
use crate::state::{LoadState, SeedId};

/// Sparse integer token state: sorted, duplicate-free, zero-free.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct TokenState {
    entries: Vec<(SeedId, u64)>,
}

impl TokenState {
    /// Empty state.
    pub fn empty() -> Self {
        TokenState::default()
    }

    /// Seed state holding all `resolution` tokens of `id`.
    pub fn seed(id: SeedId, resolution: u64) -> Self {
        TokenState {
            entries: vec![(id, resolution)],
        }
    }

    /// Tokens held for `id`.
    pub fn tokens(&self, id: SeedId) -> u64 {
        match self.entries.binary_search_by_key(&id, |&(i, _)| i) {
            Ok(pos) => self.entries[pos].1,
            Err(_) => 0,
        }
    }

    /// All entries.
    pub fn entries(&self) -> &[(SeedId, u64)] {
        &self.entries
    }

    /// Total tokens across seeds.
    pub fn total(&self) -> u64 {
        self.entries.iter().map(|&(_, t)| t).sum()
    }

    /// Split `a + b` between two nodes: each side gets `⌊total/2⌋` per
    /// seed; odd tokens go to the first side when `coin` is true.
    /// Returns the two successor states.
    pub fn split(
        a: &TokenState,
        b: &TokenState,
        mut coin: impl FnMut() -> bool,
    ) -> (TokenState, TokenState) {
        let mut left = Vec::new();
        let mut right = Vec::new();
        let (mut i, mut j) = (0usize, 0usize);
        let push = |id: SeedId,
                    total: u64,
                    c: bool,
                    left: &mut Vec<(SeedId, u64)>,
                    right: &mut Vec<(SeedId, u64)>| {
            let half = total / 2;
            let odd = total % 2;
            let (l, r) = if c {
                (half + odd, half)
            } else {
                (half, half + odd)
            };
            if l > 0 {
                left.push((id, l));
            }
            if r > 0 {
                right.push((id, r));
            }
        };
        while i < a.entries.len() && j < b.entries.len() {
            let (ia, xa) = a.entries[i];
            let (ib, xb) = b.entries[j];
            if ia == ib {
                push(ia, xa + xb, coin(), &mut left, &mut right);
                i += 1;
                j += 1;
            } else if ia < ib {
                push(ia, xa, coin(), &mut left, &mut right);
                i += 1;
            } else {
                push(ib, xb, coin(), &mut left, &mut right);
                j += 1;
            }
        }
        while i < a.entries.len() {
            let (id, x) = a.entries[i];
            push(id, x, coin(), &mut left, &mut right);
            i += 1;
        }
        while j < b.entries.len() {
            let (id, x) = b.entries[j];
            push(id, x, coin(), &mut left, &mut right);
            j += 1;
        }
        (TokenState { entries: left }, TokenState { entries: right })
    }

    /// View as a continuous [`LoadState`] with loads `tokens/resolution`
    /// (for the shared query machinery).
    pub fn to_load_state(&self, resolution: u64) -> LoadState {
        LoadState::from_entries(
            self.entries
                .iter()
                .map(|&(id, t)| (id, t as f64 / resolution as f64))
                .collect(),
        )
    }
}

/// Output of a discrete clustering run.
#[derive(Debug, Clone)]
pub struct DiscreteOutput {
    pub partition: Partition,
    pub seeds: Vec<Seed>,
    pub rounds: usize,
    /// Final token states.
    pub states: Vec<TokenState>,
}

/// Run the token-based algorithm. `resolution` = tokens injected per
/// seed (≥ 1). Uses the same seeding/matching random streams as
/// [`crate::cluster`]; rounding coins come from a dedicated stream.
pub fn cluster_discrete(
    graph: &Graph,
    cfg: &LbConfig,
    resolution: u64,
) -> Result<DiscreteOutput, ClusterError> {
    assert!(resolution >= 1, "resolution must be at least 1");
    let n = graph.n();
    if n == 0 {
        return Err(ClusterError::EmptyGraph);
    }
    let mut rngs: Vec<NodeRng> = (0..n as u32)
        .map(|v| NodeRng::for_node(cfg.seed, v))
        .collect();
    let seeds = run_seeding(n, cfg.trials(), &mut rngs);
    if seeds.is_empty() {
        return Err(ClusterError::NoSeeds);
    }
    let mut states: Vec<TokenState> = vec![TokenState::empty(); n];
    for s in &seeds {
        states[s.node as usize] = TokenState::seed(s.id, resolution);
    }
    let rule = cfg.proposal_rule(graph);
    let mut coin_rng = NodeRng::from_seed(cfg.seed ^ 0xD15C_0000_0000_0001);
    let rounds = cfg.rounds.count();
    let mut scratch = MatchingScratch::new(n);
    for _ in 0..rounds {
        sample_matching_into(graph, rule, &mut rngs, &mut scratch);
        for (u, v) in scratch.pairs() {
            let (a, b) = TokenState::split(&states[u as usize], &states[v as usize], || {
                coin_rng.bernoulli(0.5)
            });
            states[u as usize] = a;
            states[v as usize] = b;
        }
    }
    let load_states: Vec<LoadState> = states.iter().map(|t| t.to_load_state(resolution)).collect();
    let (_, partition) = assign_labels(&load_states, cfg.query, cfg.beta);
    Ok(DiscreteOutput {
        partition,
        seeds,
        rounds,
        states,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use lbc_eval::accuracy;
    use lbc_graph::generators;

    #[test]
    fn split_conserves_tokens_exactly() {
        let a = TokenState::seed(1, 101);
        let b = TokenState::seed(2, 7);
        let mut flip = true;
        let (l, r) = TokenState::split(&a, &b, || {
            flip = !flip;
            flip
        });
        assert_eq!(l.tokens(1) + r.tokens(1), 101);
        assert_eq!(l.tokens(2) + r.tokens(2), 7);
        assert_eq!(l.total() + r.total(), 108);
        // Each side holds ⌊total/2⌋ or ⌈total/2⌉ per seed.
        assert!(l.tokens(1) == 50 || l.tokens(1) == 51);
    }

    #[test]
    fn split_drops_zero_entries() {
        let a = TokenState::seed(1, 1);
        let (l, r) = TokenState::split(&a, &TokenState::empty(), || true);
        assert_eq!(l.tokens(1), 1);
        assert!(r.entries().is_empty());
    }

    #[test]
    fn even_totals_each_side_gets_half() {
        let a = TokenState::seed(9, 10);
        let b = TokenState::seed(9, 6);
        let (l, r) = TokenState::split(&a, &b, || true);
        assert_eq!(l.tokens(9), 8);
        assert_eq!(r.tokens(9), 8);
    }

    #[test]
    fn high_resolution_recovers_clusters() {
        let (g, truth) = generators::ring_of_cliques(3, 20, 0).unwrap();
        let cfg = LbConfig::new(1.0 / 3.0, 80).with_seed(5);
        let out = cluster_discrete(&g, &cfg, 1 << 20).unwrap();
        let acc = accuracy(truth.labels(), out.partition.labels());
        assert!(acc > 0.95, "accuracy {acc}");
        // Exact conservation per seed.
        for s in &out.seeds {
            let total: u64 = out.states.iter().map(|st| st.tokens(s.id)).sum();
            assert_eq!(total, 1 << 20, "seed {}", s.id);
        }
    }

    #[test]
    fn tiny_resolution_degrades() {
        let (g, truth) = generators::ring_of_cliques(3, 20, 0).unwrap();
        let cfg = LbConfig::new(1.0 / 3.0, 80).with_seed(5);
        let hi = cluster_discrete(&g, &cfg, 1 << 20).unwrap();
        let lo = cluster_discrete(&g, &cfg, 4).unwrap();
        let acc_hi = accuracy(truth.labels(), hi.partition.labels());
        let acc_lo = accuracy(truth.labels(), lo.partition.labels());
        assert!(
            acc_lo < acc_hi,
            "expected quantisation damage: hi {acc_hi} vs lo {acc_lo}"
        );
    }

    #[test]
    fn converges_to_continuous_as_resolution_grows() {
        let (g, _) = generators::ring_of_cliques(2, 12, 0).unwrap();
        let cfg = LbConfig::new(0.5, 40).with_seed(9);
        let cont = crate::driver::cluster(&g, &cfg).unwrap();
        let disc = cluster_discrete(&g, &cfg, 1 << 30).unwrap();
        assert_eq!(cont.seeds, disc.seeds);
        // Token fractions approximate continuous loads coordinate-wise.
        for v in 0..g.n() {
            for s in &cont.seeds {
                let c = cont.states[v].load(s.id);
                let d = disc.states[v].tokens(s.id) as f64 / (1u64 << 30) as f64;
                assert!(
                    (c - d).abs() < 1e-3,
                    "node {v} seed {}: cont {c} vs disc {d}",
                    s.id
                );
            }
        }
    }

    #[test]
    #[should_panic]
    fn zero_resolution_rejected() {
        let (g, _) = generators::ring_of_cliques(2, 6, 0).unwrap();
        let cfg = LbConfig::new(0.5, 5);
        let _ = cluster_discrete(&g, &cfg, 0);
    }
}
