//! Algorithm configuration.
//!
//! The algorithm needs only two problem inputs: the balance lower bound
//! `β` (the paper stresses that `k` itself is *not* needed, §3.2) and a
//! round count `T`. `T = Θ(log n / (1 − λ_{k+1}))` in theory; callers
//! either supply it explicitly or let [`LbConfig::from_graph`] estimate
//! it through the spectral oracle (the parameter-setting step the paper
//! treats as given).

use lbc_graph::Graph;
use lbc_linalg::spectral::{rounds_for_gap, SpectralOracle};

use crate::query::QueryRule;

/// How many averaging rounds to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Rounds {
    /// Run exactly this many rounds.
    Explicit(usize),
    /// `T = ⌈c·ln n / (1 − λ̂)⌉` where `λ̂` is estimated from the
    /// spectrum at configuration time (stored here once resolved).
    Resolved(usize),
}

impl Rounds {
    /// The concrete round count.
    pub fn count(self) -> usize {
        match self {
            Rounds::Explicit(t) | Rounds::Resolved(t) => t,
        }
    }
}

/// Degree regime (§2 vs §4.5).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DegreeMode {
    /// Plain rule: active nodes propose uniformly over neighbours.
    /// Matches the paper's analysis for regular graphs.
    Regular,
    /// Almost-regular mode: emulate the `D`-regular graph `G*` with
    /// self-loop slots (§4.5). `D` must be ≥ the maximum degree.
    Capped(usize),
    /// Pick `Capped(Δ)` when the graph is irregular, `Regular` otherwise.
    Auto,
}

/// Full configuration for one clustering run.
#[derive(Debug, Clone, PartialEq)]
pub struct LbConfig {
    /// Balance lower bound: every cluster has ≥ `βn` nodes.
    pub beta: f64,
    /// Averaging rounds.
    pub rounds: Rounds,
    /// Global seed for all per-node streams.
    pub seed: u64,
    /// Query rule (default: the paper's threshold).
    pub query: QueryRule,
    /// Degree regime (default: auto).
    pub degree_mode: DegreeMode,
    /// Override for the number of seeding trials (default:
    /// `s̄ = ⌈(3/β) ln(1/β)⌉`).
    pub seeding_trials: Option<usize>,
}

impl LbConfig {
    /// Minimal configuration with an explicit round count.
    ///
    /// # Panics
    /// If `beta ∉ (0, 1]` or `rounds == 0`.
    pub fn new(beta: f64, rounds: usize) -> Self {
        assert!(beta > 0.0 && beta <= 1.0, "beta {beta} out of (0, 1]");
        assert!(rounds > 0, "need at least one round");
        LbConfig {
            beta,
            rounds: Rounds::Explicit(rounds),
            seed: 0,
            query: QueryRule::PaperThreshold,
            degree_mode: DegreeMode::Auto,
            seeding_trials: None,
        }
    }

    /// Configuration with `T` estimated from the graph's spectrum.
    ///
    /// Computes `q = min(⌊1/β⌋ + 1, n)` top eigenvalues, finds the widest
    /// consecutive gap `λ_i − λ_{i+1}` (the spectral signature of the
    /// cluster count), and sets
    /// `T = ⌈c · ln n / ((d̄/4)(1 − λ_{i+1}))⌉` with `c = 2`.
    ///
    /// The `d̄/4` factor is the matching model's laziness: one round
    /// performs in expectation the lazy step
    /// `E[M] = (1 − d̄/4) I + (d̄/4) P` (Lemma 2.1), so the effective
    /// per-round spectral gap is `d̄/4 · (1 − λ_{k+1})`. The paper's
    /// `T = Θ(log n / (1 − λ_{k+1}))` absorbs this constant into the Θ;
    /// an implementation cannot.
    pub fn from_graph(graph: &Graph, beta: f64) -> Self {
        assert!(beta > 0.0 && beta <= 1.0, "beta {beta} out of (0, 1]");
        let n = graph.n().max(2);
        let q = (((1.0 / beta).floor() as usize) + 1).clamp(2, n);
        let oracle = SpectralOracle::compute(graph, q, 0x5eed);
        // Widest gap over candidate cluster counts 1..q−1.
        let mut best_i = 1usize;
        let mut best_gap = f64::NEG_INFINITY;
        for i in 1..q {
            let gap = oracle.lambda(i) - oracle.lambda(i + 1);
            if gap > best_gap {
                best_gap = gap;
                best_i = i;
            }
        }
        let avg_degree = (graph.total_volume() as f64 / n as f64).max(1.0);
        let laziness = crate::matching::d_bar(avg_degree.round() as usize) / 4.0;
        let t = rounds_for_gap(n, laziness * (1.0 - oracle.lambda(best_i + 1)), 2.0);
        LbConfig {
            beta,
            rounds: Rounds::Resolved(t),
            seed: 0,
            query: QueryRule::PaperThreshold,
            degree_mode: DegreeMode::Auto,
            seeding_trials: None,
        }
    }

    /// Builder: set the RNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Builder: set the query rule.
    pub fn with_query(mut self, query: QueryRule) -> Self {
        self.query = query;
        self
    }

    /// Builder: set the degree mode.
    pub fn with_degree_mode(mut self, mode: DegreeMode) -> Self {
        self.degree_mode = mode;
        self
    }

    /// Builder: override the seeding trial count.
    pub fn with_seeding_trials(mut self, trials: usize) -> Self {
        self.seeding_trials = Some(trials);
        self
    }

    /// Resolve the seeding trial count (`s̄` unless overridden).
    pub fn trials(&self) -> usize {
        self.seeding_trials
            .unwrap_or_else(|| crate::seeding::expected_trials(self.beta))
    }

    /// Resolve the proposal rule for `graph` under the degree mode.
    ///
    /// # Panics
    /// If `Capped(D)` is configured with `D < Δ`.
    pub fn proposal_rule(&self, graph: &Graph) -> crate::matching::ProposalRule {
        use crate::matching::ProposalRule;
        match self.degree_mode {
            DegreeMode::Regular => ProposalRule::Uniform,
            DegreeMode::Capped(cap) => {
                assert!(
                    cap >= graph.max_degree(),
                    "cap {cap} below max degree {}",
                    graph.max_degree()
                );
                ProposalRule::Capped(cap)
            }
            DegreeMode::Auto => {
                if graph.is_regular() {
                    ProposalRule::Uniform
                } else {
                    ProposalRule::Capped(graph.max_degree().max(1))
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matching::ProposalRule;
    use lbc_graph::generators;

    #[test]
    fn explicit_config_basics() {
        let cfg = LbConfig::new(0.25, 40).with_seed(9);
        assert_eq!(cfg.rounds.count(), 40);
        assert_eq!(cfg.seed, 9);
        assert_eq!(cfg.trials(), crate::seeding::expected_trials(0.25));
        let cfg2 = cfg.clone().with_seeding_trials(5);
        assert_eq!(cfg2.trials(), 5);
    }

    #[test]
    #[should_panic]
    fn zero_rounds_rejected() {
        let _ = LbConfig::new(0.5, 0);
    }

    #[test]
    #[should_panic]
    fn bad_beta_rejected() {
        let _ = LbConfig::new(0.0, 10);
    }

    #[test]
    fn from_graph_resolves_reasonable_rounds() {
        let (g, _) = generators::ring_of_cliques(3, 20, 0).unwrap();
        let cfg = LbConfig::from_graph(&g, 1.0 / 3.0);
        let t = cfg.rounds.count();
        // Well-clustered: gap below the cluster eigenvalues is large, so
        // T should be modest (tens, not thousands).
        assert!((2..500).contains(&t), "T = {t}");
    }

    #[test]
    fn from_graph_slow_mixing_needs_more_rounds() {
        let fast = generators::complete(64).unwrap();
        let slow = generators::cycle(64).unwrap();
        let t_fast = LbConfig::from_graph(&fast, 0.5).rounds.count();
        let t_slow = LbConfig::from_graph(&slow, 0.5).rounds.count();
        assert!(t_slow > 4 * t_fast, "slow {t_slow} vs fast {t_fast}");
    }

    #[test]
    fn auto_degree_mode_resolution() {
        let reg = generators::cycle(10).unwrap();
        let cfg = LbConfig::new(0.5, 5);
        assert_eq!(cfg.proposal_rule(&reg), ProposalRule::Uniform);
        let irr = lbc_graph::Graph::from_edges(3, &[(0, 1), (1, 2)]).unwrap();
        assert_eq!(cfg.proposal_rule(&irr), ProposalRule::Capped(2));
    }

    #[test]
    #[should_panic]
    fn capped_below_max_degree_panics() {
        let g = generators::complete(6).unwrap();
        let cfg = LbConfig::new(0.5, 5).with_degree_mode(DegreeMode::Capped(2));
        let _ = cfg.proposal_rule(&g);
    }
}
