//! Sparse load states and the paper's averaging rule (§3.1).
//!
//! A node's state is a set of `(seed id, load)` pairs, kept sorted by id.
//! When two matched nodes `u, v` average:
//!
//! * ids present in both states: both get `(x + y) / 2`;
//! * ids present in only one: both get `x / 2` (the other side's load is
//!   implicitly 0).
//!
//! The result is the same for both endpoints, which is what makes the
//! process a projection (Lemma 2.1(2)). Entries are never removed — once
//! a node has heard of a seed, its load stays (possibly tiny) — matching
//! the paper, where the state size is bounded by the number of seeds `s`.

/// Identifier of a seed: the random ID drawn by the seed node (paper:
/// uniform in `[1, n³]`).
pub type SeedId = u64;

/// Sparse per-node load state: sorted by seed id, duplicate-free.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct LoadState {
    entries: Vec<(SeedId, f64)>,
}

impl LoadState {
    /// Empty state (non-seed nodes at round 0).
    pub fn empty() -> Self {
        LoadState::default()
    }

    /// Seed initial state: unit load on the node's own seed id
    /// (`x^{(0,i)} = χ_{v_i}`, §3.2).
    pub fn seed(id: SeedId) -> Self {
        LoadState {
            entries: vec![(id, 1.0)],
        }
    }

    /// Build from entries; sorts and asserts duplicate-free ids.
    pub fn from_entries(mut entries: Vec<(SeedId, f64)>) -> Self {
        entries.sort_unstable_by_key(|&(id, _)| id);
        for w in entries.windows(2) {
            assert!(w[0].0 != w[1].0, "duplicate seed id {}", w[0].0);
        }
        LoadState { entries }
    }

    /// Build from entries that are already sorted and duplicate-free
    /// (checked only in debug builds). Used on hot paths where the
    /// entries come from a prior merge and are sorted by construction.
    pub fn from_sorted_entries(entries: Vec<(SeedId, f64)>) -> Self {
        debug_assert!(entries.windows(2).all(|w| w[0].0 < w[1].0));
        LoadState { entries }
    }

    /// Replace this state's entries from a sorted, duplicate-free slice,
    /// reusing the existing allocation (no heap traffic once the backing
    /// vector has grown to its steady-state capacity).
    pub fn assign_from_sorted(&mut self, entries: &[(SeedId, f64)]) {
        debug_assert!(entries.windows(2).all(|w| w[0].0 < w[1].0));
        self.entries.clear();
        self.entries.extend_from_slice(entries);
    }

    /// Sorted `(seed id, load)` view.
    pub fn entries(&self) -> &[(SeedId, f64)] {
        &self.entries
    }

    /// Number of tracked seeds.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no seeds are tracked.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Load for `id` (0 if absent).
    pub fn load(&self, id: SeedId) -> f64 {
        match self.entries.binary_search_by_key(&id, |&(i, _)| i) {
            Ok(pos) => self.entries[pos].1,
            Err(_) => 0.0,
        }
    }

    /// Total load across seeds.
    pub fn total(&self) -> f64 {
        self.entries.iter().map(|&(_, x)| x).sum()
    }

    /// The paper's averaging rule; returns the state both endpoints adopt.
    ///
    /// Implemented as a sorted two-pointer merge so the arithmetic order
    /// is deterministic — the centralised, matrix, and distributed
    /// implementations all produce bit-identical results.
    pub fn average(a: &LoadState, b: &LoadState) -> LoadState {
        let mut merged = Vec::with_capacity(a.len().max(b.len()));
        LoadState::average_into(a, b, &mut merged);
        LoadState { entries: merged }
    }

    /// [`LoadState::average`] writing into a caller-owned buffer, so a
    /// round loop can reuse one scratch vector across thousands of
    /// merges. `out` is cleared first; on return it holds the merged
    /// entries, sorted and duplicate-free, bit-identical to what
    /// [`LoadState::average`] would produce.
    pub fn average_into(a: &LoadState, b: &LoadState, out: &mut Vec<(SeedId, f64)>) {
        out.clear();
        let merged = out;
        let (mut i, mut j) = (0usize, 0usize);
        while i < a.entries.len() && j < b.entries.len() {
            let (ia, xa) = a.entries[i];
            let (ib, xb) = b.entries[j];
            if ia == ib {
                merged.push((ia, (xa + xb) / 2.0));
                i += 1;
                j += 1;
            } else if ia < ib {
                merged.push((ia, xa / 2.0));
                i += 1;
            } else {
                merged.push((ib, xb / 2.0));
                j += 1;
            }
        }
        while i < a.entries.len() {
            let (id, x) = a.entries[i];
            merged.push((id, x / 2.0));
            i += 1;
        }
        while j < b.entries.len() {
            let (id, x) = b.entries[j];
            merged.push((id, x / 2.0));
            j += 1;
        }
    }

    /// Message size in machine words when this state is shipped: one word
    /// per id plus one per load.
    pub fn words(&self) -> usize {
        2 * self.entries.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seed_state_has_unit_load() {
        let s = LoadState::seed(42);
        assert_eq!(s.load(42), 1.0);
        assert_eq!(s.load(7), 0.0);
        assert_eq!(s.total(), 1.0);
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn average_shared_key() {
        let a = LoadState::from_entries(vec![(1, 0.5)]);
        let b = LoadState::from_entries(vec![(1, 0.25)]);
        let m = LoadState::average(&a, &b);
        assert_eq!(m.load(1), 0.375);
    }

    #[test]
    fn average_disjoint_keys_halves_each() {
        let a = LoadState::from_entries(vec![(1, 1.0)]);
        let b = LoadState::from_entries(vec![(2, 0.5)]);
        let m = LoadState::average(&a, &b);
        assert_eq!(m.load(1), 0.5);
        assert_eq!(m.load(2), 0.25);
        assert_eq!(m.len(), 2);
    }

    #[test]
    fn average_with_empty_halves_everything() {
        let a = LoadState::from_entries(vec![(1, 1.0), (5, 0.25)]);
        let m = LoadState::average(&a, &LoadState::empty());
        assert_eq!(m.load(1), 0.5);
        assert_eq!(m.load(5), 0.125);
    }

    #[test]
    fn average_is_symmetric() {
        let a = LoadState::from_entries(vec![(1, 0.7), (3, 0.1)]);
        let b = LoadState::from_entries(vec![(2, 0.4), (3, 0.5)]);
        assert_eq!(LoadState::average(&a, &b), LoadState::average(&b, &a));
    }

    #[test]
    fn average_conserves_total_pairwise() {
        let a = LoadState::from_entries(vec![(1, 0.7), (3, 0.1)]);
        let b = LoadState::from_entries(vec![(2, 0.4), (3, 0.5)]);
        let m = LoadState::average(&a, &b);
        // Both endpoints adopt m, so pair total = 2·total(m).
        assert!((2.0 * m.total() - (a.total() + b.total())).abs() < 1e-15);
    }

    #[test]
    fn average_is_idempotent_on_equal_states() {
        let a = LoadState::from_entries(vec![(1, 0.3), (2, 0.6)]);
        let m = LoadState::average(&a, &a);
        assert_eq!(m, a);
    }

    #[test]
    fn from_entries_sorts() {
        let s = LoadState::from_entries(vec![(5, 0.1), (1, 0.2)]);
        assert_eq!(s.entries(), &[(1, 0.2), (5, 0.1)]);
    }

    #[test]
    #[should_panic(expected = "duplicate seed id")]
    fn duplicate_ids_panic() {
        let _ = LoadState::from_entries(vec![(1, 0.1), (1, 0.2)]);
    }

    #[test]
    fn average_into_reuses_buffer_and_matches_average() {
        let a = LoadState::from_entries(vec![(1, 0.7), (3, 0.1)]);
        let b = LoadState::from_entries(vec![(2, 0.4), (3, 0.5)]);
        let mut buf = Vec::new();
        LoadState::average_into(&a, &b, &mut buf);
        assert_eq!(&buf[..], LoadState::average(&a, &b).entries());
        // A second merge into the same buffer replaces its contents.
        LoadState::average_into(&b, &a, &mut buf);
        assert_eq!(&buf[..], LoadState::average(&b, &a).entries());
    }

    #[test]
    fn assign_from_sorted_replaces_contents() {
        let mut s = LoadState::from_entries(vec![(9, 1.0)]);
        s.assign_from_sorted(&[(1, 0.5), (4, 0.25)]);
        assert_eq!(s.entries(), &[(1, 0.5), (4, 0.25)]);
        assert_eq!(LoadState::from_sorted_entries(vec![(1, 0.5), (4, 0.25)]), s);
    }

    #[test]
    fn word_count() {
        assert_eq!(LoadState::empty().words(), 0);
        assert_eq!(LoadState::seed(1).words(), 2);
        let s = LoadState::from_entries(vec![(1, 0.1), (2, 0.2), (3, 0.3)]);
        assert_eq!(s.words(), 6);
    }
}
