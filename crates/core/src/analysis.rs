//! Quantities from the paper's analysis (§4): the projector `Q`, the
//! orthonormal set `{χ̂_i}` of Lemma 4.2, the per-node error `α_v`
//! (eq. 4), and the Lemma 4.1 projection-error trajectory.
//!
//! These are *not* used by the algorithm — they exist so the experiment
//! suite can reproduce the paper's structural claims empirically
//! (experiment E8) and so tests can check Lemmas 4.1–4.3 on concrete
//! graphs.

use lbc_distsim::NodeRng;
use lbc_graph::{Graph, NodeId, Partition};
use lbc_linalg::gram_schmidt::orthonormalize;
use lbc_linalg::spectral::SpectralOracle;
use lbc_linalg::{axpy, dist, dot};

use crate::matching::{apply_matching_dense, sample_matching, ProposalRule};

/// Spectral/cluster structure bundle for one `(graph, partition)` pair.
pub struct ClusterAnalysis {
    /// Top-`k` eigenvectors `f_1 … f_k` of the walk matrix.
    pub eigvecs: Vec<Vec<f64>>,
    /// Lemma 4.2's orthonormal set `χ̂_1 … χ̂_k` in
    /// `span{χ_{S_1}, …, χ_{S_k}}`.
    pub chi_hat: Vec<Vec<f64>>,
    /// `α_v = √(Σ_i (f_i(v) − χ̂_i(v))²)` (eq. 4).
    pub alphas: Vec<f64>,
}

impl ClusterAnalysis {
    /// Compute the bundle; `k` is taken from the partition.
    pub fn compute(graph: &Graph, partition: &Partition, seed: u64) -> Self {
        let n = graph.n();
        let k = partition.k();
        assert!(k >= 1 && k <= n);
        let oracle = SpectralOracle::compute(graph, k, seed);
        let eigvecs: Vec<Vec<f64>> = oracle.spectrum().vectors.clone();

        // Unit indicator basis u_j = χ_{S_j} / ‖χ_{S_j}‖ (value
        // 1/√|S_j| on the cluster).
        let sizes = partition.cluster_sizes();
        let units: Vec<Vec<f64>> = (0..k)
            .map(|c| {
                let s = sizes[c].max(1) as f64;
                let val = 1.0 / s.sqrt();
                (0..n)
                    .map(|v| {
                        if partition.label(v as NodeId) == c as u32 {
                            val
                        } else {
                            0.0
                        }
                    })
                    .collect()
            })
            .collect();

        // χ̃_i: projection of f_i onto span{u_1..u_k}; then
        // Gram–Schmidt → χ̂_i (Lemma 4.2's construction).
        let mut chi_tilde: Vec<Vec<f64>> = eigvecs
            .iter()
            .map(|f| {
                let mut p = vec![0.0; n];
                for u in &units {
                    let c = dot(u, f);
                    axpy(c, u, &mut p);
                }
                p
            })
            .collect();
        orthonormalize(&mut chi_tilde, 1e-10);
        let chi_hat = chi_tilde;

        // α_v over however many χ̂ survived (degenerate partitions may
        // collapse some; pad conceptually with zero vectors).
        let alphas: Vec<f64> = (0..n)
            .map(|v| {
                let mut s = 0.0;
                for (i, ev) in eigvecs.iter().enumerate().take(k) {
                    let f = ev[v];
                    let c = chi_hat.get(i).map_or(0.0, |x| x[v]);
                    s += (f - c) * (f - c);
                }
                s.sqrt()
            })
            .collect();
        ClusterAnalysis {
            eigvecs,
            chi_hat,
            alphas,
        }
    }

    /// `Q y`: projection of `y` onto `span{f_1, …, f_k}`.
    pub fn project_top_k(&self, y: &[f64]) -> Vec<f64> {
        let mut out = vec![0.0; y.len()];
        for f in &self.eigvecs {
            let c = dot(f, y);
            axpy(c, f, &mut out);
        }
        out
    }

    /// Total squared error `Σ_i ‖χ̂_i − f_i‖² (= Σ_v α_v²)`, the quantity
    /// Lemma 4.2 bounds by `k · E²`.
    pub fn total_error(&self) -> f64 {
        self.alphas.iter().map(|a| a * a).sum()
    }

    /// Nodes sorted by `α_v` ascending — prefix elements are the paper's
    /// "good" nodes.
    pub fn nodes_by_alpha(&self) -> Vec<NodeId> {
        let mut idx: Vec<NodeId> = (0..self.alphas.len() as u32).collect();
        idx.sort_by(|&a, &b| {
            self.alphas[a as usize]
                .partial_cmp(&self.alphas[b as usize])
                .unwrap()
        });
        idx
    }
}

/// The normalised indicator `χ_S` of the paper (§2.1): value `1/|S|` on
/// `S`, 0 elsewhere.
pub fn chi_indicator(partition: &Partition, cluster: u32, n: usize) -> Vec<f64> {
    let size = partition.cluster_sizes()[cluster as usize].max(1) as f64;
    (0..n)
        .map(|v| {
            if partition.label(v as NodeId) == cluster {
                1.0 / size
            } else {
                0.0
            }
        })
        .collect()
}

/// Lemma 4.1 trajectory: run the 1-dimensional process `y^{(t)} =
/// M^{(t)} y^{(t−1)}` from `y^{(0)} = χ_{start}` (unit mass) and record
/// `‖Q y^{(0)} − y^{(t)}‖` for `t = 0..rounds`.
pub fn projection_error_trajectory(
    graph: &Graph,
    analysis: &ClusterAnalysis,
    rule: ProposalRule,
    start: NodeId,
    rounds: usize,
    seed: u64,
) -> Vec<f64> {
    let n = graph.n();
    let mut rngs: Vec<NodeRng> = (0..n as u32).map(|v| NodeRng::for_node(seed, v)).collect();
    let mut y = vec![0.0; n];
    y[start as usize] = 1.0;
    let q_y0 = analysis.project_top_k(&y);
    let mut traj = Vec::with_capacity(rounds + 1);
    traj.push(dist(&q_y0, &y));
    for _ in 0..rounds {
        let m = sample_matching(graph, rule, &mut rngs);
        apply_matching_dense(&m, &mut y);
        traj.push(dist(&q_y0, &y));
    }
    traj
}

#[cfg(test)]
mod tests {
    use super::*;
    use lbc_graph::generators;
    use lbc_linalg::norm;

    #[test]
    fn lemma_4_2_chi_hat_close_to_eigenvectors_when_well_clustered() {
        let (g, p) = generators::ring_of_cliques(3, 16, 0).unwrap();
        let a = ClusterAnalysis::compute(&g, &p, 1);
        assert_eq!(a.chi_hat.len(), 3);
        for i in 0..3 {
            let d = dist(&a.eigvecs[i], &a.chi_hat[i]);
            assert!(d < 0.35, "‖χ̂_{i} − f_{i}‖ = {d}");
        }
        // Orthonormality of χ̂.
        for i in 0..3 {
            assert!((norm(&a.chi_hat[i]) - 1.0).abs() < 1e-9);
            for j in (i + 1)..3 {
                assert!(dot(&a.chi_hat[i], &a.chi_hat[j]).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn total_error_identity_with_alphas() {
        let (g, p) = generators::ring_of_cliques(2, 10, 0).unwrap();
        let a = ClusterAnalysis::compute(&g, &p, 2);
        let direct: f64 = (0..2)
            .map(|i| {
                let mut d = a.eigvecs[i].clone();
                for (x, y) in d.iter_mut().zip(&a.chi_hat[i]) {
                    *x -= y;
                }
                norm(&d).powi(2)
            })
            .sum();
        assert!((a.total_error() - direct).abs() < 1e-9);
    }

    #[test]
    fn poorly_clustered_graph_has_larger_error() {
        let (g_good, p_good) = generators::ring_of_cliques(2, 16, 0).unwrap();
        let a_good = ClusterAnalysis::compute(&g_good, &p_good, 3);
        // Cycle split in halves: the indicator space poorly matches the
        // top eigenvectors.
        let g_bad = generators::cycle(32).unwrap();
        let p_bad = Partition::from_sizes(&[16, 16]);
        let a_bad = ClusterAnalysis::compute(&g_bad, &p_bad, 3);
        assert!(
            a_bad.total_error() > 2.0 * a_good.total_error(),
            "bad {} vs good {}",
            a_bad.total_error(),
            a_good.total_error()
        );
    }

    use lbc_graph::Partition;

    #[test]
    fn projection_is_idempotent() {
        let (g, p) = generators::ring_of_cliques(2, 8, 0).unwrap();
        let a = ClusterAnalysis::compute(&g, &p, 4);
        let y: Vec<f64> = (0..16).map(|i| (i as f64 * 0.37).sin()).collect();
        let qy = a.project_top_k(&y);
        let qqy = a.project_top_k(&qy);
        assert!(dist(&qy, &qqy) < 1e-9);
    }

    #[test]
    fn chi_indicator_values() {
        let p = Partition::from_sizes(&[2, 3]);
        let chi0 = chi_indicator(&p, 0, 5);
        assert_eq!(chi0, vec![0.5, 0.5, 0.0, 0.0, 0.0]);
        let chi1 = chi_indicator(&p, 1, 5);
        assert!((chi1[2] - 1.0 / 3.0).abs() < 1e-15);
    }

    #[test]
    fn lemma_4_1_error_drops_then_plateaus() {
        // Start from a clique node: the projection error should fall
        // sharply within the first ~T rounds and stay small (Remark 1:
        // it eventually re-grows, but slowly).
        let (g, p) = generators::ring_of_cliques(4, 16, 0).unwrap();
        let a = ClusterAnalysis::compute(&g, &p, 5);
        let good = a.nodes_by_alpha()[0];
        let traj = projection_error_trajectory(&g, &a, ProposalRule::Uniform, good, 80, 7);
        let start = traj[0];
        let mid = traj[40];
        assert!(
            mid < 0.35 * start,
            "error should shrink: t=0 {start}, t=40 {mid}"
        );
    }

    #[test]
    fn lemma_4_3_load_approaches_cluster_indicator() {
        let (g, p) = generators::ring_of_cliques(3, 16, 0).unwrap();
        let a = ClusterAnalysis::compute(&g, &p, 6);
        let good = a.nodes_by_alpha()[0];
        let cluster = p.label(good);
        let n = g.n();
        let chi = chi_indicator(&p, cluster, n);
        // Average the final distance over several runs (the lemma bounds
        // an expectation).
        let mut total = 0.0;
        let runs = 8;
        for r in 0..runs {
            let mut rngs: Vec<NodeRng> = (0..n as u32)
                .map(|v| NodeRng::for_node(100 + r, v))
                .collect();
            let mut y = vec![0.0; n];
            y[good as usize] = 1.0;
            for _ in 0..50 {
                let m = sample_matching(&g, ProposalRule::Uniform, &mut rngs);
                apply_matching_dense(&m, &mut y);
            }
            total += dist(&y, &chi);
        }
        let mean = total / runs as f64;
        // ‖χ_{S_j}‖ = 1/√16 = 0.25; the residual should be well below.
        assert!(mean < 0.15, "E‖y(T) − χ_S‖ ≈ {mean}");
    }
}
