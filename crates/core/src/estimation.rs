//! Distributed estimation of `n` on the matching substrate.
//!
//! The algorithm's seeding step activates each node with probability
//! `1/n` (§3.1) — the paper treats `n` as known. In a real deployment it
//! can be estimated with the classic exponential-minimum sketch
//! (Mosk-Aoyama & Shah): every node draws `k` independent
//! `Exponential(1)` variables; the network computes the coordinate-wise
//! *minimum* by gossip (min is idempotent, so matching-pair exchanges
//! converge to the global minimum); then
//! `n̂ = (k − 1) / Σ_i m_i` where `m_i` is the `i`-th global minimum —
//! an unbiased-up-to-`1/(k−2)` estimator with relative error
//! `O(1/√k)`.
//!
//! Min-gossip over random matchings spreads like the rumour process, so
//! `O(log n)` rounds suffice on expanders and `O(log n / Φ)`-ish on
//! graphs of conductance `Φ` — the same early-behaviour story as the
//! clustering algorithm, but for an idempotent aggregate.

use lbc_distsim::NodeRng;
use lbc_graph::Graph;

use crate::matching::{sample_matching_into, MatchingScratch, ProposalRule};

/// Result of a distributed size-estimation run.
#[derive(Debug, Clone)]
pub struct SizeEstimate {
    /// Per-node estimates `n̂_v` after the gossip rounds.
    pub estimates: Vec<f64>,
    /// Rounds executed.
    pub rounds: usize,
    /// Whether all nodes agree (their sketches all reached the global
    /// minima).
    pub converged: bool,
}

impl SizeEstimate {
    /// The (agreed) estimate at node `v`.
    pub fn at(&self, v: u32) -> f64 {
        self.estimates[v as usize]
    }
}

/// Run the exponential-minimum size estimator for `rounds` matching
/// rounds with `k ≥ 3` sketch coordinates.
///
/// # Panics
/// If `k < 3` (the estimator needs `k − 1 > 1` for finite variance) or
/// the graph is empty.
pub fn estimate_size(
    g: &Graph,
    rule: ProposalRule,
    k: usize,
    rounds: usize,
    seed: u64,
) -> SizeEstimate {
    let n = g.n();
    assert!(n > 0, "empty graph");
    assert!(k >= 3, "need k >= 3 sketch coordinates");
    let mut rngs: Vec<NodeRng> = (0..n as u32).map(|v| NodeRng::for_node(seed, v)).collect();
    // Each node draws its k exponentials from its own stream.
    let mut sketch: Vec<Vec<f64>> = rngs
        .iter_mut()
        .map(|rng| {
            (0..k)
                .map(|_| {
                    // Exponential(1) via inverse CDF; guard log(0).
                    let u = rng.next_f64().max(f64::MIN_POSITIVE);
                    -u.ln()
                })
                .collect()
        })
        .collect();
    let mut scratch = MatchingScratch::new(n);
    for _ in 0..rounds {
        sample_matching_into(g, rule, &mut rngs, &mut scratch);
        // Compact O(|M|) pair list: min-merges on disjoint pairs are
        // order-independent.
        for &(u, v) in scratch.matched() {
            let (lo, hi) = (u.min(v) as usize, u.max(v) as usize);
            let (head, tail) = sketch.split_at_mut(hi);
            for (x, y) in head[lo].iter_mut().zip(tail[0].iter_mut()) {
                let min = x.min(*y);
                *x = min;
                *y = min;
            }
        }
    }
    let estimates: Vec<f64> = sketch
        .iter()
        .map(|s| {
            let sum: f64 = s.iter().sum();
            (k as f64 - 1.0) / sum
        })
        .collect();
    let converged = sketch.windows(2).all(|w| w[0] == w[1]);
    SizeEstimate {
        estimates,
        rounds,
        converged,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lbc_graph::generators;

    #[test]
    fn estimates_n_within_relative_error() {
        let g = generators::complete(200).unwrap();
        // k = 256 coordinates → ~6% relative error; generous tolerance.
        let est = estimate_size(&g, ProposalRule::Uniform, 256, 200, 3);
        assert!(est.converged, "sketches did not converge");
        let nhat = est.at(0);
        assert!(
            (nhat - 200.0).abs() < 0.25 * 200.0,
            "estimate {nhat} for n = 200"
        );
    }

    #[test]
    fn all_nodes_agree_after_convergence() {
        let (g, _) = generators::ring_of_cliques(3, 16, 0).unwrap();
        let est = estimate_size(&g, ProposalRule::Uniform, 64, 2000, 5);
        assert!(est.converged);
        let first = est.at(0);
        assert!(est.estimates.iter().all(|&e| e == first));
    }

    #[test]
    fn insufficient_rounds_leave_disagreement() {
        let (g, _) = generators::ring_of_cliques(4, 32, 0).unwrap();
        let est = estimate_size(&g, ProposalRule::Uniform, 32, 2, 7);
        assert!(!est.converged);
    }

    #[test]
    fn estimator_is_scale_sensitive() {
        // Bigger graph ⇒ bigger estimate (same sketch size).
        let small = generators::complete(50).unwrap();
        let large = generators::complete(400).unwrap();
        let e_small = estimate_size(&small, ProposalRule::Uniform, 128, 200, 9).at(0);
        let e_large = estimate_size(&large, ProposalRule::Uniform, 128, 400, 9).at(0);
        assert!(
            e_large > 3.0 * e_small,
            "small {e_small} vs large {e_large}"
        );
    }

    #[test]
    fn deterministic_in_seed() {
        let g = generators::complete(40).unwrap();
        let a = estimate_size(&g, ProposalRule::Uniform, 16, 100, 11);
        let b = estimate_size(&g, ProposalRule::Uniform, 16, 100, 11);
        assert_eq!(a.estimates, b.estimates);
    }

    #[test]
    #[should_panic]
    fn too_few_coordinates_rejected() {
        let g = generators::complete(10).unwrap();
        let _ = estimate_size(&g, ProposalRule::Uniform, 2, 10, 1);
    }
}
