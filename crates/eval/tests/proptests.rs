//! Property-based tests for the clustering indices.

use lbc_eval::{
    accuracy, adjusted_rand_index, align_labels, hungarian_max, misclassified,
    normalized_mutual_information,
};
use proptest::prelude::*;

fn labelling(max_k: u32, len: std::ops::Range<usize>) -> impl Strategy<Value = Vec<u32>> {
    proptest::collection::vec(0..max_k, len)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// All indices live in their documented ranges.
    #[test]
    fn index_ranges(t in labelling(5, 4..60), p in labelling(5, 4..60)) {
        let n = t.len().min(p.len());
        let (t, p) = (&t[..n], &p[..n]);
        let m = misclassified(t, p);
        prop_assert!(m <= n);
        let acc = accuracy(t, p);
        prop_assert!((0.0..=1.0).contains(&acc));
        prop_assert!((acc - (1.0 - m as f64 / n as f64)).abs() < 1e-12);
        let ari = adjusted_rand_index(t, p);
        prop_assert!((-1.0 - 1e-9..=1.0 + 1e-9).contains(&ari));
        let nmi = normalized_mutual_information(t, p);
        prop_assert!((0.0..=1.0).contains(&nmi));
    }

    /// Self-comparison is perfect for every index.
    #[test]
    fn self_comparison_is_perfect(t in labelling(6, 2..50)) {
        prop_assert_eq!(misclassified(&t, &t), 0);
        prop_assert!((adjusted_rand_index(&t, &t) - 1.0).abs() < 1e-9);
        prop_assert!((normalized_mutual_information(&t, &t) - 1.0).abs() < 1e-9);
    }

    /// ARI and NMI are symmetric in their arguments.
    #[test]
    fn symmetry(t in labelling(4, 4..40), p in labelling(4, 4..40)) {
        let n = t.len().min(p.len());
        let (t, p) = (&t[..n], &p[..n]);
        prop_assert!((adjusted_rand_index(t, p) - adjusted_rand_index(p, t)).abs() < 1e-9);
        prop_assert!(
            (normalized_mutual_information(t, p) - normalized_mutual_information(p, t)).abs()
                < 1e-9
        );
    }

    /// Alignment agreements equal n − misclassified, and the mapping is
    /// injective on real labels.
    #[test]
    fn alignment_consistency(t in labelling(4, 4..40), p in labelling(4, 4..40)) {
        let n = t.len().min(p.len());
        let (t, p) = (&t[..n], &p[..n]);
        let (mapping, agree) = align_labels(t, p);
        prop_assert_eq!(agree + misclassified(t, p), n);
        let mut seen = std::collections::HashSet::new();
        for &m in mapping.iter().filter(|&&m| m != u32::MAX) {
            prop_assert!(seen.insert(m), "mapping not injective");
        }
    }

    /// Hungarian beats any single random permutation.
    #[test]
    fn hungarian_is_optimal_vs_sample(
        k in 2usize..6,
        vals in proptest::collection::vec(0.0f64..10.0, 36),
        perm_seed in 0usize..24,
    ) {
        let w: Vec<Vec<f64>> = (0..k)
            .map(|r| (0..k).map(|c| vals[(r * k + c) % vals.len()]).collect())
            .collect();
        let (_, best) = hungarian_max(&w);
        // A deterministic "random" permutation from the seed.
        let mut perm: Vec<usize> = (0..k).collect();
        let mut s = perm_seed;
        for i in (1..k).rev() {
            perm.swap(i, s % (i + 1));
            s = s.wrapping_mul(31).wrapping_add(7);
        }
        let sample: f64 = perm.iter().enumerate().map(|(r, &c)| w[r][c]).sum();
        prop_assert!(best >= sample - 1e-9);
    }

    /// Relabelling both sides by the same permutation never changes the
    /// indices.
    #[test]
    fn joint_relabelling_invariance(t in labelling(4, 8..40), shift in 1u32..4) {
        let p: Vec<u32> = t.iter().map(|&l| (l + shift) % 4).collect();
        // p is t under a cyclic permutation ⇒ perfect scores.
        prop_assert_eq!(misclassified(&t, &p), 0);
        prop_assert!((adjusted_rand_index(&t, &p) - 1.0).abs() < 1e-9);
    }
}
