//! Confusion matrices and optimal label alignment.

use crate::hungarian::hungarian_max;

/// Confusion matrix `c[t][p]` = number of nodes with true label `t` and
/// predicted label `p`. Dimensions are `(max truth label + 1) ×
/// (max predicted label + 1)`.
///
/// # Panics
/// If the slices have different lengths or are empty.
pub fn confusion_matrix(truth: &[u32], predicted: &[u32]) -> Vec<Vec<usize>> {
    assert_eq!(
        truth.len(),
        predicted.len(),
        "label slices differ in length"
    );
    assert!(!truth.is_empty(), "empty labelling");
    let kt = *truth.iter().max().unwrap() as usize + 1;
    let kp = *predicted.iter().max().unwrap() as usize + 1;
    let mut c = vec![vec![0usize; kp]; kt];
    for (&t, &p) in truth.iter().zip(predicted) {
        c[t as usize][p as usize] += 1;
    }
    c
}

/// Optimal alignment of predicted labels to truth labels (the permutation
/// `σ` of Theorem 1.1). Returns `(mapping, agreements)` where
/// `mapping[p]` is the truth label assigned to predicted label `p`
/// (`u32::MAX` for surplus predicted labels that matched nothing) and
/// `agreements` is the number of nodes correctly labelled under the
/// mapping.
pub fn align_labels(truth: &[u32], predicted: &[u32]) -> (Vec<u32>, usize) {
    let c = confusion_matrix(truth, predicted);
    let kt = c.len();
    let kp = c[0].len();
    // Hungarian wants rows ≤ cols; square the matrix by padding with
    // zero-weight dummy rows/cols on whichever side is short.
    let dim = kt.max(kp);
    let w: Vec<Vec<f64>> = (0..dim)
        .map(|t| {
            (0..dim)
                .map(|p| {
                    if t < kt && p < kp {
                        c[t][p] as f64
                    } else {
                        0.0
                    }
                })
                .collect()
        })
        .collect();
    let (assign, total) = hungarian_max(&w);
    // assign[t] = p; invert to mapping[p] = t for real labels only.
    let mut mapping = vec![u32::MAX; kp];
    for (t, &p) in assign.iter().enumerate() {
        if t < kt && p < kp && c[t][p] > 0 {
            mapping[p] = t as u32;
        }
    }
    (mapping, total as usize)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn confusion_counts() {
        let truth = [0, 0, 1, 1];
        let pred = [1, 1, 0, 1];
        let c = confusion_matrix(&truth, &pred);
        assert_eq!(c, vec![vec![0, 2], vec![1, 1]]);
    }

    #[test]
    fn perfect_alignment_under_permutation() {
        let truth = [0, 0, 1, 1, 2, 2];
        let pred = [2, 2, 0, 0, 1, 1];
        let (mapping, agree) = align_labels(&truth, &pred);
        assert_eq!(agree, 6);
        assert_eq!(mapping, vec![1, 2, 0]);
    }

    #[test]
    fn extra_predicted_labels_map_to_sentinel() {
        let truth = [0, 0, 0, 1];
        let pred = [0, 0, 2, 1];
        let (mapping, agree) = align_labels(&truth, &pred);
        assert_eq!(agree, 3);
        assert_eq!(mapping[0], 0);
        assert_eq!(mapping[1], 1);
        // Label 2 matched a dummy row (zero weight) or nothing real.
        assert_eq!(mapping[2], u32::MAX);
    }

    #[test]
    fn fewer_predicted_labels_than_truth() {
        let truth = [0, 1, 2];
        let pred = [0, 0, 0];
        let (_, agree) = align_labels(&truth, &pred);
        assert_eq!(agree, 1);
    }

    #[test]
    #[should_panic]
    fn mismatched_lengths_panic() {
        let _ = confusion_matrix(&[0, 1], &[0]);
    }

    #[test]
    #[should_panic]
    fn empty_labelling_panics() {
        let _ = confusion_matrix(&[], &[]);
    }
}
