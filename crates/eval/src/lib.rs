//! Clustering quality metrics.
//!
//! Theorem 1.1(1) counts *misclassified nodes up to a permutation of the
//! labels*: `|⋃_i {v ∈ S_i : ℓ_v ≠ σ(i)}| = o(n)` for the best label
//! permutation `σ`. Finding the best `σ` is a maximum-weight bipartite
//! assignment on the confusion matrix, solved exactly here with the
//! Hungarian algorithm ([`hungarian`]). On top of that this crate
//! provides the standard external clustering indices (accuracy, adjusted
//! Rand index, normalised mutual information) and a conductance report
//! for discovered partitions.

pub mod confusion;
pub mod hungarian;
pub mod indices;
pub mod report;

pub use confusion::{align_labels, confusion_matrix};
pub use hungarian::hungarian_max;
pub use indices::{accuracy, adjusted_rand_index, misclassified, normalized_mutual_information};
pub use report::PartitionReport;
