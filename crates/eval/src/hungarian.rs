//! Hungarian (Kuhn–Munkres) algorithm for the assignment problem.
//!
//! Potential-based `O(n²m)` formulation. Inputs are rectangular weight
//! matrices `w[r][c]`; [`hungarian_max`] finds an assignment of each row
//! to a distinct column maximising total weight (rows ≤ columns; callers
//! pad otherwise).

/// Maximum-weight assignment.
///
/// `w` must be rectangular with `rows ≤ cols`. Returns
/// `(assignment, total)` where `assignment[r]` is the column matched to
/// row `r`.
///
/// ```
/// use lbc_eval::hungarian_max;
/// // Greedy would take 9 + 1 = 10; the optimum is 8 + 7 = 15.
/// let (assign, total) = hungarian_max(&[vec![9.0, 8.0], vec![7.0, 1.0]]);
/// assert_eq!(assign, vec![1, 0]);
/// assert_eq!(total, 15.0);
/// ```
///
/// # Panics
/// If `w` is empty, ragged, or has more rows than columns.
pub fn hungarian_max(w: &[Vec<f64>]) -> (Vec<usize>, f64) {
    let n = w.len();
    assert!(n > 0, "empty weight matrix");
    let m = w[0].len();
    assert!(w.iter().all(|r| r.len() == m), "ragged weight matrix");
    assert!(n <= m, "more rows than columns ({n} > {m})");
    // Minimise negated weights.
    let cost: Vec<Vec<f64>> = w
        .iter()
        .map(|row| row.iter().map(|&x| -x).collect())
        .collect();
    let assignment = hungarian_min_core(&cost);
    let total = assignment.iter().enumerate().map(|(r, &c)| w[r][c]).sum();
    (assignment, total)
}

/// Minimum-cost assignment core (e-maxx potentials formulation, 1-based
/// internally).
fn hungarian_min_core(cost: &[Vec<f64>]) -> Vec<usize> {
    let n = cost.len();
    let m = cost[0].len();
    const INF: f64 = f64::INFINITY;
    let mut u = vec![0.0f64; n + 1];
    let mut v = vec![0.0f64; m + 1];
    let mut p = vec![0usize; m + 1]; // p[j] = row matched to column j (1-based; 0 = free)
    let mut way = vec![0usize; m + 1];
    for i in 1..=n {
        p[0] = i;
        let mut j0 = 0usize;
        let mut minv = vec![INF; m + 1];
        let mut used = vec![false; m + 1];
        loop {
            used[j0] = true;
            let i0 = p[j0];
            let mut delta = INF;
            let mut j1 = 0usize;
            for j in 1..=m {
                if used[j] {
                    continue;
                }
                let cur = cost[i0 - 1][j - 1] - u[i0] - v[j];
                if cur < minv[j] {
                    minv[j] = cur;
                    way[j] = j0;
                }
                if minv[j] < delta {
                    delta = minv[j];
                    j1 = j;
                }
            }
            for j in 0..=m {
                if used[j] {
                    u[p[j]] += delta;
                    v[j] -= delta;
                } else {
                    minv[j] -= delta;
                }
            }
            j0 = j1;
            if p[j0] == 0 {
                break;
            }
        }
        // Augment along the alternating path.
        loop {
            let j1 = way[j0];
            p[j0] = p[j1];
            j0 = j1;
            if j0 == 0 {
                break;
            }
        }
    }
    let mut assignment = vec![usize::MAX; n];
    for j in 1..=m {
        if p[j] != 0 {
            assignment[p[j] - 1] = j - 1;
        }
    }
    assignment
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_matrix_assigns_diagonal() {
        let w = vec![
            vec![1.0, 0.0, 0.0],
            vec![0.0, 1.0, 0.0],
            vec![0.0, 0.0, 1.0],
        ];
        let (a, total) = hungarian_max(&w);
        assert_eq!(a, vec![0, 1, 2]);
        assert_eq!(total, 3.0);
    }

    #[test]
    fn antidiagonal_preferred() {
        let w = vec![vec![0.0, 5.0], vec![5.0, 0.0]];
        let (a, total) = hungarian_max(&w);
        assert_eq!(a, vec![1, 0]);
        assert_eq!(total, 10.0);
    }

    #[test]
    fn greedy_trap_is_avoided() {
        // Greedy on rows would pick (0,0)=9 then (1,1)=1 → 10;
        // optimum is (0,1)=8 + (1,0)=7 → 15.
        let w = vec![vec![9.0, 8.0], vec![7.0, 1.0]];
        let (a, total) = hungarian_max(&w);
        assert_eq!(a, vec![1, 0]);
        assert_eq!(total, 15.0);
    }

    #[test]
    fn rectangular_rows_less_than_cols() {
        let w = vec![vec![1.0, 3.0, 2.0], vec![4.0, 1.0, 0.0]];
        let (a, total) = hungarian_max(&w);
        assert_eq!(a, vec![1, 0]);
        assert_eq!(total, 7.0);
        // All assigned columns distinct.
        assert_ne!(a[0], a[1]);
    }

    #[test]
    fn single_cell() {
        let (a, total) = hungarian_max(&[vec![42.0]]);
        assert_eq!(a, vec![0]);
        assert_eq!(total, 42.0);
    }

    #[test]
    fn negative_weights_handled() {
        let w = vec![vec![-1.0, -5.0], vec![-5.0, -1.0]];
        let (a, total) = hungarian_max(&w);
        assert_eq!(a, vec![0, 1]);
        assert_eq!(total, -2.0);
    }

    #[test]
    #[should_panic]
    fn rejects_more_rows_than_cols() {
        let _ = hungarian_max(&[vec![1.0], vec![2.0]]);
    }

    #[test]
    #[should_panic]
    fn rejects_ragged() {
        let _ = hungarian_max(&[vec![1.0, 2.0], vec![3.0]]);
    }

    #[test]
    fn brute_force_agreement_on_random_matrices() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(31);
        for n in [2usize, 3, 4, 5, 6] {
            for _ in 0..10 {
                let w: Vec<Vec<f64>> = (0..n)
                    .map(|_| (0..n).map(|_| rng.random_range(0.0..10.0)).collect())
                    .collect();
                let (_, total) = hungarian_max(&w);
                let best = brute_force_max(&w);
                assert!(
                    (total - best).abs() < 1e-9,
                    "n={n}: hungarian {total} vs brute {best}"
                );
            }
        }
    }

    fn brute_force_max(w: &[Vec<f64>]) -> f64 {
        let n = w.len();
        let mut cols: Vec<usize> = (0..n).collect();
        let mut best = f64::NEG_INFINITY;
        permute(&mut cols, 0, &mut |perm| {
            let s: f64 = perm.iter().enumerate().map(|(r, &c)| w[r][c]).sum();
            if s > best {
                best = s;
            }
        });
        best
    }

    fn permute(arr: &mut Vec<usize>, k: usize, f: &mut impl FnMut(&[usize])) {
        if k == arr.len() {
            f(arr);
            return;
        }
        for i in k..arr.len() {
            arr.swap(k, i);
            permute(arr, k + 1, f);
            arr.swap(k, i);
        }
    }
}
