//! External clustering indices: misclassification (Theorem 1.1's
//! metric), accuracy, adjusted Rand index, normalised mutual information.

use crate::confusion::{align_labels, confusion_matrix};

/// Number of misclassified nodes under the best label permutation —
/// exactly the quantity Theorem 1.1(1) bounds by `o(n)`.
pub fn misclassified(truth: &[u32], predicted: &[u32]) -> usize {
    let (_, agree) = align_labels(truth, predicted);
    truth.len() - agree
}

/// Fraction of correctly labelled nodes under the best permutation.
pub fn accuracy(truth: &[u32], predicted: &[u32]) -> f64 {
    if truth.is_empty() {
        return 1.0;
    }
    1.0 - misclassified(truth, predicted) as f64 / truth.len() as f64
}

fn comb2(x: usize) -> f64 {
    let x = x as f64;
    x * (x - 1.0) / 2.0
}

/// Adjusted Rand index in `[-1, 1]`; 1 for identical partitions, ~0 for
/// independent ones.
pub fn adjusted_rand_index(truth: &[u32], predicted: &[u32]) -> f64 {
    let c = confusion_matrix(truth, predicted);
    let n = truth.len();
    let row_sums: Vec<usize> = c.iter().map(|r| r.iter().sum()).collect();
    let col_sums: Vec<usize> = (0..c[0].len())
        .map(|j| c.iter().map(|r| r[j]).sum())
        .collect();
    let sum_cells: f64 = c.iter().flatten().map(|&x| comb2(x)).sum();
    let sum_rows: f64 = row_sums.iter().map(|&x| comb2(x)).sum();
    let sum_cols: f64 = col_sums.iter().map(|&x| comb2(x)).sum();
    let total = comb2(n);
    if total == 0.0 {
        return 1.0;
    }
    let expected = sum_rows * sum_cols / total;
    let max_index = 0.5 * (sum_rows + sum_cols);
    if (max_index - expected).abs() < 1e-15 {
        // Degenerate (e.g. both partitions trivial): identical ⇒ 1.
        return if sum_cells == max_index { 1.0 } else { 0.0 };
    }
    (sum_cells - expected) / (max_index - expected)
}

fn entropy(counts: &[usize], n: usize) -> f64 {
    let n = n as f64;
    counts
        .iter()
        .filter(|&&c| c > 0)
        .map(|&c| {
            let p = c as f64 / n;
            -p * p.ln()
        })
        .sum()
}

/// Normalised mutual information in `\[0, 1\]` (arithmetic-mean
/// normalisation). 1 for identical partitions (up to relabelling).
pub fn normalized_mutual_information(truth: &[u32], predicted: &[u32]) -> f64 {
    let c = confusion_matrix(truth, predicted);
    let n = truth.len();
    let row_sums: Vec<usize> = c.iter().map(|r| r.iter().sum()).collect();
    let col_sums: Vec<usize> = (0..c[0].len())
        .map(|j| c.iter().map(|r| r[j]).sum())
        .collect();
    let h_t = entropy(&row_sums, n);
    let h_p = entropy(&col_sums, n);
    if h_t == 0.0 && h_p == 0.0 {
        // Both partitions trivial ⇒ identical.
        return 1.0;
    }
    let nf = n as f64;
    let mut mi = 0.0;
    for (i, row) in c.iter().enumerate() {
        for (j, &cell) in row.iter().enumerate() {
            if cell == 0 {
                continue;
            }
            let p_ij = cell as f64 / nf;
            let p_i = row_sums[i] as f64 / nf;
            let p_j = col_sums[j] as f64 / nf;
            mi += p_ij * (p_ij / (p_i * p_j)).ln();
        }
    }
    let denom = 0.5 * (h_t + h_p);
    if denom == 0.0 {
        0.0
    } else {
        (mi / denom).clamp(0.0, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_partitions_are_perfect() {
        let l = [0u32, 0, 1, 1, 2, 2];
        assert_eq!(misclassified(&l, &l), 0);
        assert_eq!(accuracy(&l, &l), 1.0);
        assert!((adjusted_rand_index(&l, &l) - 1.0).abs() < 1e-12);
        assert!((normalized_mutual_information(&l, &l) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn permuted_labels_are_still_perfect() {
        let truth = [0u32, 0, 1, 1, 2, 2];
        let pred = [2u32, 2, 0, 0, 1, 1];
        assert_eq!(misclassified(&truth, &pred), 0);
        assert!((adjusted_rand_index(&truth, &pred) - 1.0).abs() < 1e-12);
        assert!((normalized_mutual_information(&truth, &pred) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn single_error_counted_once() {
        let truth = [0u32, 0, 0, 1, 1, 1];
        let pred = [0u32, 0, 1, 1, 1, 1];
        assert_eq!(misclassified(&truth, &pred), 1);
        assert!((accuracy(&truth, &pred) - 5.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn ari_near_zero_for_unrelated() {
        // Truth alternates in pairs; prediction alternates singly —
        // perfectly balanced independent-ish structure.
        let truth: Vec<u32> = (0..40).map(|i| (i / 20) as u32).collect();
        let pred: Vec<u32> = (0..40).map(|i| (i % 2) as u32).collect();
        let ari = adjusted_rand_index(&truth, &pred);
        assert!(ari.abs() < 0.15, "ari = {ari}");
    }

    #[test]
    fn all_one_cluster_prediction() {
        let truth = [0u32, 0, 1, 1];
        let pred = [0u32, 0, 0, 0];
        assert_eq!(misclassified(&truth, &pred), 2);
        let nmi = normalized_mutual_information(&truth, &pred);
        assert!(nmi.abs() < 1e-12, "nmi = {nmi}");
    }

    #[test]
    fn trivial_partitions_agree() {
        let l = [0u32, 0, 0];
        assert!((adjusted_rand_index(&l, &l) - 1.0).abs() < 1e-12);
        assert!((normalized_mutual_information(&l, &l) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn accuracy_of_empty_is_one() {
        assert_eq!(accuracy(&[], &[]), 1.0);
    }

    #[test]
    fn indices_are_symmetric_in_arguments() {
        let a = [0u32, 0, 1, 1, 2, 2, 0, 1];
        let b = [1u32, 1, 0, 0, 2, 2, 2, 0];
        let ari_ab = adjusted_rand_index(&a, &b);
        let ari_ba = adjusted_rand_index(&b, &a);
        assert!((ari_ab - ari_ba).abs() < 1e-12);
        let nmi_ab = normalized_mutual_information(&a, &b);
        let nmi_ba = normalized_mutual_information(&b, &a);
        assert!((nmi_ab - nmi_ba).abs() < 1e-12);
    }
}
