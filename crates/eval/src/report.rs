//! Human-readable quality report for a discovered partition.

use lbc_graph::{Graph, Partition};

use crate::indices::{accuracy, adjusted_rand_index, misclassified, normalized_mutual_information};

/// Aggregated quality numbers for one clustering run, ready for table
/// output in experiments.
#[derive(Debug, Clone)]
pub struct PartitionReport {
    pub n: usize,
    pub k_truth: usize,
    pub k_found: usize,
    pub misclassified: usize,
    pub accuracy: f64,
    pub ari: f64,
    pub nmi: f64,
    /// `max_i ϕ_G(S_i)` over found clusters (∞ if some cluster empty).
    pub max_conductance: f64,
}

impl PartitionReport {
    /// Evaluate `found` against ground truth on `g`.
    pub fn evaluate(g: &Graph, truth: &Partition, found: &Partition) -> Self {
        assert_eq!(truth.n(), found.n(), "partition sizes differ");
        assert_eq!(g.n(), truth.n(), "graph/partition size mismatch");
        let nonempty_found = found.cluster_sizes().iter().filter(|&&s| s > 0).count();
        PartitionReport {
            n: truth.n(),
            k_truth: truth.k(),
            k_found: nonempty_found,
            misclassified: misclassified(truth.labels(), found.labels()),
            accuracy: accuracy(truth.labels(), found.labels()),
            ari: adjusted_rand_index(truth.labels(), found.labels()),
            nmi: normalized_mutual_information(truth.labels(), found.labels()),
            max_conductance: found
                .cluster_conductances(g)
                .into_iter()
                .filter(|phi| phi.is_finite())
                .fold(0.0, f64::max),
        }
    }

    /// One-line table row: `n k_truth k_found miscl acc ari nmi phi_max`.
    pub fn row(&self) -> String {
        format!(
            "{:>8} {:>4} {:>4} {:>8} {:>8.4} {:>8.4} {:>8.4} {:>10.5}",
            self.n,
            self.k_truth,
            self.k_found,
            self.misclassified,
            self.accuracy,
            self.ari,
            self.nmi,
            self.max_conductance
        )
    }

    /// Header matching [`PartitionReport::row`].
    pub fn header() -> String {
        format!(
            "{:>8} {:>4} {:>4} {:>8} {:>8} {:>8} {:>8} {:>10}",
            "n", "k", "k'", "miscl", "acc", "ari", "nmi", "phi_max"
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lbc_graph::generators;

    #[test]
    fn perfect_recovery_report() {
        let (g, p) = generators::ring_of_cliques(3, 6, 0).unwrap();
        let r = PartitionReport::evaluate(&g, &p, &p);
        assert_eq!(r.misclassified, 0);
        assert_eq!(r.accuracy, 1.0);
        assert_eq!(r.k_found, 3);
        assert!(r.max_conductance < 0.2);
        assert!(r.row().contains("1.0000"));
        assert_eq!(
            PartitionReport::header().split_whitespace().count(),
            r.row().split_whitespace().count()
        );
    }

    #[test]
    fn degraded_recovery_report() {
        let (g, p) = generators::ring_of_cliques(2, 5, 0).unwrap();
        // Flip two nodes into the wrong cluster.
        let mut labels = p.labels().to_vec();
        labels[0] = 1;
        labels[9] = 0;
        let found = Partition::with_k(labels, 2).unwrap();
        let r = PartitionReport::evaluate(&g, &p, &found);
        assert_eq!(r.misclassified, 2);
        assert!(r.accuracy < 1.0);
        assert!(r.ari < 1.0);
        // Mixed clusters have higher conductance than pure cliques.
        assert!(r.max_conductance > 0.2);
    }

    #[test]
    fn empty_found_cluster_not_counted() {
        let (g, p) = generators::ring_of_cliques(2, 4, 0).unwrap();
        let found = Partition::with_k(vec![0; 8], 3).unwrap();
        let r = PartitionReport::evaluate(&g, &p, &found);
        assert_eq!(r.k_found, 1);
    }
}
