//! The replication primary: a dedicated listener that catches
//! followers up (snapshot or WAL tail) and then streams every
//! committed mutation to them, with sequenced roster heartbeats.

use std::collections::HashMap;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::time::{Duration, Instant};

use lbc_net::{FrameDecoder, PeerLag, ReplGate, ReplMsg, ReplStatus, Role};
use lbc_runtime::Registry;
use lbc_store::{format, write_snapshot};

use crate::{recv_msg, send_msg, Backoff, ReplConfig, ReplError, HAVE_NOTHING};

/// One connected follower, as the broadcast fan-out sees it.
struct FollowerSlot {
    follower_id: u64,
    /// Addresses the follower advertised in its `Hello`, echoed into
    /// the roster so peers can poll, vote, and re-follow at failover.
    addr: String,
    repl_addr: String,
    /// Highest seq this follower has acknowledged applying.
    acked_seq: Arc<AtomicU64>,
    /// When the last ack arrived — the step-down lease's evidence that
    /// this follower can still hear us.
    last_ack: Arc<Mutex<Instant>>,
    /// Whether any `Ack` has arrived over the wire at all. A slot is
    /// born with a fresh `last_ack` stamp (catch-up grace), but that
    /// stamp proves nothing about the peer: a connection abandoned in
    /// the accept backlog delivers its buffered `Hello` and then
    /// nothing — such a ghost must never count toward the quorum
    /// lease, or it arms it on registration and trips it on eviction.
    ack_seen: Arc<AtomicBool>,
    /// Commit-hook feed: `(seq, encoded WAL record)`.
    tx: mpsc::Sender<(u64, Vec<u8>)>,
}

struct PrimaryShared {
    registry: Arc<Registry>,
    dataset: String,
    cfg: ReplConfig,
    stop: AtomicBool,
    next_slot: AtomicU64,
    followers: Mutex<HashMap<u64, FollowerSlot>>,
    /// The current heartbeat: one `(epoch, roster)` snapshot taken per
    /// tick by the ticker thread and fanned out verbatim by every feed
    /// loop — so any two followers holding the same epoch hold
    /// byte-identical rosters (per-connection snapshots at different
    /// instants were the split-brain seed).
    heartbeat: Mutex<(u64, Vec<PeerLag>)>,
    /// The replication term this primary serves under, captured once
    /// from the gate at [`ReplServer::set_gate`] (0 for a gateless
    /// server). One `ReplServer` never changes its term: a new
    /// generation means a new election and a new server — which is
    /// what makes "one writer per term" structural. Stamped into every
    /// WalRec and Heartbeat; a `Hello` proposing a higher term fences
    /// this primary on the spot.
    term: AtomicU64,
    /// Quorum-mode step-down lease (see [`ReplServer::stepped_down`]).
    /// Armed only once a quorum of members has been seen alive — a
    /// primary booting alone must be allowed to wait for its group.
    quorum_armed: AtomicBool,
    stepped_down: AtomicBool,
    /// The serving gate, when the caller wired one in: stepping down
    /// flips it to `Follower` so the reactor bounces writes from the
    /// same instant the lease expires.
    gate: Mutex<Option<Arc<ReplGate>>>,
}

impl PrimaryShared {
    /// Acknowledged-progress roster, ordered by follower id so every
    /// heartbeat (and hence every follower's election input) lists
    /// peers identically.
    fn roster(&self) -> Vec<PeerLag> {
        let mut peers: Vec<PeerLag> = self
            .followers
            .lock()
            .unwrap()
            .values()
            .map(|slot| PeerLag {
                follower_id: slot.follower_id,
                applied_seq: slot.acked_seq.load(Ordering::Acquire),
                addr: slot.addr.clone(),
                repl_addr: slot.repl_addr.clone(),
            })
            .collect();
        peers.sort_by_key(|p| (p.follower_id, p.applied_seq));
        peers
    }

    /// Per-follower milliseconds since the last ack, ordered by
    /// follower id — the freshness half of `lbc repl-status`'s
    /// `(records behind, ms since last ack)` pair.
    fn ack_ages(&self) -> Vec<(u64, u64)> {
        let followers = self.followers.lock().unwrap();
        let mut ages: Vec<(u64, u64)> = followers
            .values()
            .map(|slot| {
                (
                    slot.follower_id,
                    slot.last_ack.lock().unwrap().elapsed().as_millis() as u64,
                )
            })
            .collect();
        ages.sort_by_key(|&(id, _)| id);
        ages
    }

    fn status(&self) -> ReplStatus {
        let quorum_mode = !self.cfg.members.is_empty();
        ReplStatus {
            role: if self.stepped_down.load(Ordering::SeqCst) {
                Role::Follower
            } else {
                Role::Primary
            },
            applied_seq: self.registry.applied_seq(&self.dataset),
            term: self.term.load(Ordering::Acquire),
            ack_ages: self.ack_ages(),
            peers: self.roster(),
            members: self.cfg.members.members.clone(),
            votes_seen: if quorum_mode { self.live_members() } else { 0 },
            votes_needed: if quorum_mode {
                self.cfg.members.quorum() as u32
            } else {
                0
            },
            no_quorum: self.stepped_down.load(Ordering::SeqCst),
        }
    }

    /// Members currently in contact, self included: distinct follower
    /// ids that are in the membership and acked within one heartbeat
    /// timeout, plus this primary. Followers outside the membership
    /// replicate fine but carry no quorum weight.
    fn live_members(&self) -> u32 {
        let lease = self.cfg.heartbeat_timeout;
        let followers = self.followers.lock().unwrap();
        let mut seen = std::collections::BTreeSet::new();
        for slot in followers.values() {
            if self.cfg.members.contains(slot.follower_id)
                && slot.ack_seen.load(Ordering::Acquire)
                && slot.last_ack.lock().unwrap().elapsed() < lease
            {
                seen.insert(slot.follower_id);
            }
        }
        seen.len() as u32 + 1
    }

    /// The quorum-mode step-down lease, evaluated once per tick: a
    /// primary that cannot hear a strict majority of its membership
    /// for a heartbeat timeout must stop taking writes *before* the
    /// disconnected majority can finish electing a replacement (their
    /// election starts after the same timeout and then spends vote
    /// rounds — strictly later than this lease, both clocks starting
    /// at the partition instant). Armed only after a quorum has been
    /// seen at least once, so a group booting one node at a time is
    /// not stepped down while it assembles.
    fn check_step_down(&self) {
        if self.stepped_down.load(Ordering::SeqCst) {
            return;
        }
        // Term fence, checked every tick: the gate can observe a higher
        // term out-of-band — a vote request on the query port, a stale-
        // term rejection from a client — and fences itself (read-only)
        // on the spot. This server's frozen term is then deposed; stop
        // serving so the supervisor re-enters follower mode instead of
        // streaming a dead generation forever.
        if let Some(gate) = self.gate.lock().unwrap().as_ref() {
            if gate.term() > self.term.load(Ordering::Acquire) {
                gate.clear_ack_waiter();
                self.stepped_down.store(true, Ordering::SeqCst);
                self.stop.store(true, Ordering::SeqCst);
                return;
            }
        }
        if self.cfg.members.is_empty() {
            return;
        }
        let quorum = self.cfg.members.quorum() as u32;
        let live = self.live_members();
        if live >= quorum {
            self.quorum_armed.store(true, Ordering::SeqCst);
            return;
        }
        if self.quorum_armed.load(Ordering::SeqCst) {
            self.stepped_down.store(true, Ordering::SeqCst);
            if let Some(gate) = self.gate.lock().unwrap().as_ref() {
                gate.set_quorum_status(live, quorum, true);
                gate.set_role(Role::Follower);
            }
            // Stop the acceptor/ticker/feeds: a stepped-down primary
            // streams to nobody. The caller observes `stepped_down()`
            // and re-enters follower mode from scratch.
            self.stop.store(true, Ordering::SeqCst);
        }
    }

    /// `--ack-quorum` write hold: true once a strict majority of the
    /// membership (self included when a member) has acked `seq`, false
    /// on timeout (one heartbeat timeout — the same budget after which
    /// a follower is evicted as dead) or step-down. Runs on the
    /// reactor's pool worker, polling the same per-slot ack atomics
    /// the ticker reads; 1 ms granularity is far below the fsync+RTT
    /// floor of a real ack.
    fn await_quorum_ack(&self, seq: u64) -> bool {
        let quorum = self.cfg.members.quorum();
        let deadline = Instant::now() + self.cfg.heartbeat_timeout;
        loop {
            if self.stop.load(Ordering::SeqCst) || self.stepped_down.load(Ordering::SeqCst) {
                return false;
            }
            let mut acked_members = std::collections::BTreeSet::new();
            if let Some(gate) = self.gate.lock().unwrap().as_ref() {
                if self.cfg.members.contains(gate.node_id()) {
                    acked_members.insert(gate.node_id());
                }
            }
            for slot in self.followers.lock().unwrap().values() {
                if self.cfg.members.contains(slot.follower_id)
                    && slot.acked_seq.load(Ordering::Acquire) >= seq
                {
                    acked_members.insert(slot.follower_id);
                }
            }
            if acked_members.len() >= quorum {
                return true;
            }
            if Instant::now() >= deadline {
                return false;
            }
            std::thread::sleep(Duration::from_millis(1));
        }
    }

    /// Per-tick metrics, recorded against the node registry the gate
    /// carries (if any): heartbeats fanned out, and the worst follower
    /// lag in both records and ack-age milliseconds.
    fn observe_tick(&self, roster: &[PeerLag]) {
        let gate = self.gate.lock().unwrap().clone();
        let Some(obs) = gate.and_then(|g| g.obs()) else {
            return;
        };
        obs.counter("repl_heartbeats_sent_total").inc();
        let head = self.registry.applied_seq(&self.dataset);
        let lag_records = roster
            .iter()
            .map(|p| head.saturating_sub(p.applied_seq))
            .max()
            .unwrap_or(0);
        let lag_ms = self
            .ack_ages()
            .into_iter()
            .map(|(_, ms)| ms)
            .max()
            .unwrap_or(0);
        obs.gauge("repl_max_follower_lag_records")
            .set(lag_records as i64);
        obs.gauge("repl_max_follower_ack_age_ms").set(lag_ms as i64);
        obs.gauge("repl_followers_connected")
            .set(roster.len() as i64);
    }
}

/// The primary's replication endpoint. Binding installs the registry's
/// commit hook (the streaming feed) and spawns an acceptor; each
/// follower connection gets its own catch-up + streaming thread.
/// Dropping the handle stops the acceptor and removes the hook.
pub struct ReplServer {
    addr: SocketAddr,
    shared: Arc<PrimaryShared>,
    accept_join: Option<std::thread::JoinHandle<()>>,
    ticker_join: Option<std::thread::JoinHandle<()>>,
}

impl ReplServer {
    /// Bind the replication listener for `dataset` and start feeding
    /// connected followers from `registry`'s commit stream.
    pub fn bind(
        addr: &str,
        registry: Arc<Registry>,
        dataset: &str,
        cfg: ReplConfig,
    ) -> Result<ReplServer, ReplError> {
        ReplServer::from_listener(
            TcpListener::bind(addr).map_err(ReplError::Io)?,
            registry,
            dataset,
            cfg,
        )
    }

    /// Like [`ReplServer::bind`] but adopting a listener the caller
    /// already bound — a follower binds its promotion listener up
    /// front so the address it advertises in `Hello` is the one it
    /// really serves from after winning a failover election.
    pub fn from_listener(
        listener: TcpListener,
        registry: Arc<Registry>,
        dataset: &str,
        cfg: ReplConfig,
    ) -> Result<ReplServer, ReplError> {
        if cfg.chunk_len == 0 || cfg.chunk_len + 8 > cfg.max_payload as usize {
            return Err(ReplError::Protocol(format!(
                "chunk_len {} does not fit the {}-byte payload cap",
                cfg.chunk_len, cfg.max_payload
            )));
        }
        listener.set_nonblocking(true).map_err(ReplError::Io)?;
        let local = listener.local_addr().map_err(ReplError::Io)?;

        let shared = Arc::new(PrimaryShared {
            registry: Arc::clone(&registry),
            dataset: dataset.to_string(),
            cfg,
            stop: AtomicBool::new(false),
            next_slot: AtomicU64::new(0),
            followers: Mutex::new(HashMap::new()),
            heartbeat: Mutex::new((0, Vec::new())),
            term: AtomicU64::new(0),
            quorum_armed: AtomicBool::new(false),
            stepped_down: AtomicBool::new(false),
            gate: Mutex::new(None),
        });

        // The streaming feed: fires under the registry's mutation lock,
        // strictly in seq order, for local *and* replicated commits.
        // Dead receivers are skipped here and reaped by their own
        // threads; the hook itself never blocks.
        let hook_shared = Arc::clone(&shared);
        registry.set_commit_hook(Box::new(move |ds, seq, bytes| {
            if ds != hook_shared.dataset {
                return;
            }
            let followers = hook_shared.followers.lock().unwrap();
            for slot in followers.values() {
                let _ = slot.tx.send((seq, bytes.to_vec()));
            }
        }));

        let accept_shared = Arc::clone(&shared);
        let accept_join = std::thread::Builder::new()
            .name("lbc-repl-accept".to_string())
            .spawn(move || accept_loop(listener, accept_shared))
            .map_err(ReplError::Io)?;

        // The heartbeat ticker: one global (epoch, roster) snapshot
        // per interval, consumed by every feed loop.
        let tick_shared = Arc::clone(&shared);
        let ticker_join = std::thread::Builder::new()
            .name("lbc-repl-tick".to_string())
            .spawn(move || {
                let interval = tick_shared
                    .cfg
                    .heartbeat_interval
                    .max(Duration::from_millis(1));
                let mut epoch = 0u64;
                while !tick_shared.stop.load(Ordering::SeqCst) {
                    epoch += 1;
                    let roster = tick_shared.roster();
                    tick_shared.observe_tick(&roster);
                    *tick_shared.heartbeat.lock().unwrap() = (epoch, roster);
                    tick_shared.check_step_down();
                    std::thread::sleep(interval);
                }
            })
            .map_err(ReplError::Io)?;

        Ok(ReplServer {
            addr: local,
            shared,
            accept_join: Some(accept_join),
            ticker_join: Some(ticker_join),
        })
    }

    /// Actual bound address (resolves `--repl-listen 127.0.0.1:0`).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Role, watermark, and per-follower acknowledged progress.
    pub fn status(&self) -> ReplStatus {
        self.shared.status()
    }

    /// Number of currently connected followers.
    pub fn follower_count(&self) -> usize {
        self.shared.followers.lock().unwrap().len()
    }

    /// Wire in the serving gate so a quorum-mode step-down flips it to
    /// read-only at the instant the lease expires, not when the caller
    /// next polls. Also freezes this server's replication term to the
    /// gate's current one (a promoted winner observes its won term
    /// *before* calling this), and — in `--ack-quorum` mode with a
    /// membership — installs the write-path waiter that holds each
    /// delta's client response until a majority of the electorate has
    /// acked the WAL record.
    pub fn set_gate(&self, gate: Arc<ReplGate>) {
        self.shared.term.store(gate.term(), Ordering::Release);
        if self.shared.cfg.ack_quorum && !self.shared.cfg.members.is_empty() {
            let weak = Arc::downgrade(&self.shared);
            gate.set_ack_waiter(Arc::new(move |seq| match weak.upgrade() {
                Some(shared) => shared.await_quorum_ack(seq),
                // The server is gone (step-down race): unconfirmable.
                None => false,
            }));
        }
        *self.shared.gate.lock().unwrap() = Some(gate);
    }

    /// True once the quorum-mode lease has fired: this primary lost
    /// contact with a strict majority of its membership for a full
    /// heartbeat timeout and has stopped serving. The caller should
    /// drop the server and re-follow whoever the majority elected,
    /// resyncing from scratch ([`HAVE_NOTHING`]) — a deposed primary
    /// may hold acked records the new lineage never saw.
    pub fn stepped_down(&self) -> bool {
        self.shared.stepped_down.load(Ordering::SeqCst)
    }
}

impl Drop for ReplServer {
    fn drop(&mut self) {
        self.shared.stop.store(true, Ordering::SeqCst);
        // Release any write held on the electorate: a dying primary
        // must fail those waits, not leave them to the full timeout.
        if let Some(gate) = self.shared.gate.lock().unwrap().as_ref() {
            gate.clear_ack_waiter();
        }
        self.shared.registry.clear_commit_hook();
        if let Some(j) = self.accept_join.take() {
            let _ = j.join();
        }
        if let Some(j) = self.ticker_join.take() {
            let _ = j.join();
        }
    }
}

fn accept_loop(listener: TcpListener, shared: Arc<PrimaryShared>) {
    // Jittered idle poll in place of the old fixed 20 ms sleep: the
    // expected first delay matches it, sustained idleness ramps to the
    // cap, and a successful accept resets the ramp — so a burst of
    // followers joining (every failover) is accepted back-to-back.
    let mut idle = Backoff::new(
        Duration::from_millis(20),
        Duration::from_millis(60),
        listener.local_addr().map(|a| a.port() as u64).unwrap_or(1),
    );
    while !shared.stop.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                idle.reset();
                let conn_shared = Arc::clone(&shared);
                let _ = std::thread::Builder::new()
                    .name("lbc-repl-conn".to_string())
                    .spawn(move || {
                        let _ = handle_conn(stream, conn_shared);
                    });
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                idle.sleep();
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(_) => {
                // Accept errors (fd pressure, transient resets) share
                // the same ramp but never spin faster than the old
                // fixed 100 ms retry's floor.
                idle.sleep();
            }
        }
    }
}

fn handle_conn(mut stream: TcpStream, shared: Arc<PrimaryShared>) -> Result<(), ReplError> {
    stream.set_nodelay(true)?;
    stream.set_read_timeout(Some(shared.cfg.heartbeat_timeout))?;
    // A follower that stops draining its socket must wedge only its
    // own feed thread, and only briefly: blocked writes time out, the
    // feed errors out, and the slot leaves the roster.
    stream.set_write_timeout(Some(shared.cfg.heartbeat_timeout))?;
    let mut dec = FrameDecoder::with_max_payload(shared.cfg.max_payload);
    let mut scratch = vec![0u8; 64 * 1024];
    match recv_msg(&mut stream, &mut dec, &mut scratch)? {
        ReplMsg::Hello {
            follower_id,
            have_seq,
            term,
            addr,
            repl_addr,
            members,
        } => {
            // A Hello from a higher term means an election this
            // primary never heard concluded: it is deposed. Fence the
            // gate (reads/writes bounce from this instant — no lease)
            // and stop serving so the supervisor re-enters follower
            // mode; the follower is denied rather than fed a stale
            // lineage.
            if term > shared.term.load(Ordering::Acquire) {
                if let Some(gate) = shared.gate.lock().unwrap().as_ref() {
                    gate.observe_term(term);
                    gate.clear_ack_waiter();
                }
                shared.stepped_down.store(true, Ordering::SeqCst);
                shared.stop.store(true, Ordering::SeqCst);
                let reason = format!(
                    "primary term {} superseded by follower {follower_id} at term {term}",
                    shared.term.load(Ordering::Acquire)
                );
                let _ = send_msg(
                    &mut stream,
                    &ReplMsg::Deny {
                        reason: reason.clone(),
                    },
                    0,
                );
                return Err(ReplError::Protocol(reason));
            }
            // A follower configured with a *different* fixed group
            // must not replicate here — split configurations are how
            // two disjoint quorums arise. Same-or-unset is fine (an
            // unset follower adopts ours from the heartbeat).
            if !members.is_empty()
                && !shared.cfg.members.is_empty()
                && members != shared.cfg.members.members
            {
                let reason = format!(
                    "membership mismatch: follower {follower_id} is configured with a different member set"
                );
                let _ = send_msg(
                    &mut stream,
                    &ReplMsg::Deny {
                        reason: reason.clone(),
                    },
                    0,
                );
                return Err(ReplError::Protocol(reason));
            }
            stream_to_follower(stream, shared, follower_id, have_seq, addr, repl_addr)
        }
        ReplMsg::Status => {
            // A status probe (`lbc repl-status`), not a follower: keep
            // answering until the client hangs up.
            let mut id = 0u64;
            loop {
                send_msg(&mut stream, &ReplMsg::StatusResp(shared.status()), id)?;
                id += 1;
                match recv_msg(&mut stream, &mut dec, &mut scratch) {
                    Ok(ReplMsg::Status) => {}
                    Ok(other) => {
                        return Err(ReplError::Protocol(format!(
                            "unexpected {:#04x} on a status connection",
                            other.opcode()
                        )))
                    }
                    Err(_) => return Ok(()),
                }
            }
        }
        other => Err(ReplError::Protocol(format!(
            "expected Hello or Status first, got opcode {:#04x}",
            other.opcode()
        ))),
    }
}

/// Catch one follower up, then stream records and heartbeats to it
/// until either side dies. The slot is registered in the broadcast
/// fan-out *before* the state capture, so the commit hook queues every
/// record past the captured watermark — the join race is closed by
/// construction, with duplicates dropped by the watermark filter.
fn stream_to_follower(
    mut stream: TcpStream,
    shared: Arc<PrimaryShared>,
    follower_id: u64,
    have_seq: u64,
    addr: String,
    repl_addr: String,
) -> Result<(), ReplError> {
    let slot_id = shared.next_slot.fetch_add(1, Ordering::Relaxed);
    let (tx, rx) = mpsc::channel::<(u64, Vec<u8>)>();
    let acked = Arc::new(AtomicU64::new(if have_seq == HAVE_NOTHING {
        0
    } else {
        have_seq
    }));
    let last_ack = Arc::new(Mutex::new(Instant::now()));
    let ack_seen = Arc::new(AtomicBool::new(false));
    {
        // Uniqueness check and registration under one lock scope, so
        // two racing Hellos with the same id cannot both pass. Ids are
        // the election's identity — two "follower 1"s would satisfy
        // `winner == self` on both nodes and dual-promote.
        let mut followers = shared.followers.lock().unwrap();
        if followers.values().any(|s| s.follower_id == follower_id) {
            drop(followers);
            let reason = format!("follower id {follower_id} already connected");
            let _ = send_msg(
                &mut stream,
                &ReplMsg::Deny {
                    reason: reason.clone(),
                },
                0,
            );
            return Err(ReplError::Protocol(reason));
        }
        followers.insert(
            slot_id,
            FollowerSlot {
                follower_id,
                addr,
                repl_addr,
                acked_seq: Arc::clone(&acked),
                last_ack: Arc::clone(&last_ack),
                ack_seen: Arc::clone(&ack_seen),
                tx,
            },
        );
    }
    // Whatever happens below, leave the roster clean on the way out.
    let result = feed_follower(
        &mut stream,
        &shared,
        have_seq,
        rx,
        &acked,
        &last_ack,
        &ack_seen,
    );
    shared.followers.lock().unwrap().remove(&slot_id);
    result
}

fn feed_follower(
    stream: &mut TcpStream,
    shared: &Arc<PrimaryShared>,
    have_seq: u64,
    rx: mpsc::Receiver<(u64, Vec<u8>)>,
    acked: &Arc<AtomicU64>,
    last_ack: &Arc<Mutex<Instant>>,
    ack_seen: &Arc<AtomicBool>,
) -> Result<(), ReplError> {
    let cfg = &shared.cfg;
    let mut next_id = 0u64;
    let mut send = |stream: &mut TcpStream, msg: &ReplMsg| -> Result<(), ReplError> {
        let id = next_id;
        next_id += 1;
        send_msg(stream, msg, id)
    };

    // Catch-up. The state capture and the watermark come from one lock
    // scope, after slot registration (see `stream_to_follower`).
    let (graph, entries, seq) = shared.registry.replication_state(&shared.dataset)?;
    let mut watermark = seq;
    let tail = if have_seq == seq {
        // Already current (e.g. an instant reconnect): nothing to ship.
        Some(Vec::new())
    } else if have_seq == HAVE_NOTHING || have_seq > seq {
        None
    } else {
        // The follower holds the lineage up to `have_seq`; if the
        // attached WAL still covers every record in (have_seq, seq],
        // ship just the tail instead of a full snapshot.
        let records = shared.registry.wal_tail_after(&shared.dataset, have_seq);
        let contiguous = records.first().map(|r| r.seq) == Some(have_seq + 1)
            && records.last().map(|r| r.seq) == Some(seq)
            && records.len() as u64 == seq - have_seq;
        contiguous.then_some(records)
    };

    let term = shared.term.load(Ordering::Acquire);
    match tail {
        Some(records) => {
            for rec in &records {
                send(
                    stream,
                    &ReplMsg::WalRec {
                        term,
                        bytes: lbc_store::encode_record(rec),
                    },
                )?;
            }
        }
        None => {
            // Full resync: a self-contained (inline-graph) snapshot of
            // the captured state, chunked and CRC-guarded end to end.
            let refs: Vec<_> = entries.iter().map(|(c, o)| (c, o.as_ref())).collect();
            let mut bytes = Vec::new();
            write_snapshot(&graph, &refs, seq, &mut bytes)?;
            let chunk_count = bytes.len().div_ceil(cfg.chunk_len) as u32;
            send(
                stream,
                &ReplMsg::SnapBegin {
                    applied_seq: seq,
                    total_len: bytes.len() as u64,
                    chunk_count,
                },
            )?;
            for (i, chunk) in bytes.chunks(cfg.chunk_len).enumerate() {
                send(
                    stream,
                    &ReplMsg::SnapChunk {
                        offset: (i * cfg.chunk_len) as u64,
                        bytes: chunk.to_vec(),
                    },
                )?;
            }
            send(
                stream,
                &ReplMsg::SnapEnd {
                    crc64: format::crc64(&bytes),
                },
            )?;
        }
    }
    drop((graph, entries));

    // The catch-up can legitimately take a while (full snapshot); only
    // count liveness from the moment the follower is expected to ack.
    *last_ack.lock().unwrap() = Instant::now();

    // Ack reader: its own thread on a cloned handle (it only ever
    // reads, the feed loop only ever writes — no frame interleaving).
    let conn_dead = Arc::new(AtomicBool::new(false));
    let reader_stream = stream.try_clone()?;
    let reader_dead = Arc::clone(&conn_dead);
    let reader_acked = Arc::clone(acked);
    let reader_last_ack = Arc::clone(last_ack);
    let reader_ack_seen = Arc::clone(ack_seen);
    let reader_stop = Arc::clone(shared);
    let reader = std::thread::Builder::new()
        .name("lbc-repl-acks".to_string())
        .spawn(move || {
            ack_loop(
                reader_stream,
                reader_acked,
                reader_last_ack,
                reader_ack_seen,
                reader_dead,
                reader_stop,
            )
        })
        .map_err(ReplError::Io)?;

    // The stream proper: drain the commit feed; fan out the ticker's
    // shared (epoch, roster) heartbeat whenever the epoch advances, so
    // every follower sees byte-identical rosters per epoch; evict the
    // follower once its acks go silent past the heartbeat timeout.
    let mut last_sent_epoch = 0u64;
    let result = loop {
        if shared.stop.load(Ordering::SeqCst) || conn_dead.load(Ordering::SeqCst) {
            break Ok(());
        }
        if last_ack.lock().unwrap().elapsed() >= cfg.heartbeat_timeout {
            // Stalled follower: writes may still succeed (its socket
            // buffer drains slowly) but it is not applying or acking —
            // drop it from the roster so elections stop counting it.
            break Err(ReplError::Timeout);
        }
        match rx.recv_timeout(cfg.heartbeat_interval.max(Duration::from_millis(1))) {
            Ok((seq, bytes)) if seq > watermark => {
                watermark = seq;
                // Re-read per record: a follower that connected in the
                // window before `set_gate` froze the term must still
                // see the real one on everything after.
                let term = shared.term.load(Ordering::Acquire);
                if let Err(e) = send(stream, &ReplMsg::WalRec { term, bytes }) {
                    break Err(e);
                }
            }
            Ok(_) => {} // already covered by the catch-up
            Err(mpsc::RecvTimeoutError::Timeout) => {}
            Err(mpsc::RecvTimeoutError::Disconnected) => break Ok(()),
        }
        let (epoch, roster) = shared.heartbeat.lock().unwrap().clone();
        if epoch != last_sent_epoch {
            last_sent_epoch = epoch;
            let members = shared.cfg.members.members.clone();
            let term = shared.term.load(Ordering::Acquire);
            if let Err(e) = send(
                stream,
                &ReplMsg::Heartbeat {
                    epoch,
                    term,
                    roster,
                    members,
                },
            ) {
                break Err(e);
            }
        }
    };
    conn_dead.store(true, Ordering::SeqCst);
    let _ = stream.shutdown(std::net::Shutdown::Both);
    let _ = reader.join();
    result
}

/// Read Acks off the follower's half of the stream until it dies.
fn ack_loop(
    mut stream: TcpStream,
    acked: Arc<AtomicU64>,
    last_ack: Arc<Mutex<Instant>>,
    ack_seen: Arc<AtomicBool>,
    dead: Arc<AtomicBool>,
    shared: Arc<PrimaryShared>,
) {
    let _ = stream.set_read_timeout(Some(Duration::from_millis(100)));
    let mut dec = FrameDecoder::with_max_payload(shared.cfg.max_payload);
    let mut scratch = vec![0u8; 16 * 1024];
    while !dead.load(Ordering::SeqCst) && !shared.stop.load(Ordering::SeqCst) {
        match recv_msg(&mut stream, &mut dec, &mut scratch) {
            Ok(ReplMsg::Ack { applied_seq }) => {
                acked.fetch_max(applied_seq, Ordering::AcqRel);
                *last_ack.lock().unwrap() = Instant::now();
                ack_seen.store(true, Ordering::Release);
            }
            Ok(_) | Err(ReplError::Timeout) => {}
            Err(_) => break,
        }
    }
    dead.store(true, Ordering::SeqCst);
}
