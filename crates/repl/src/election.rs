//! Failover election: live polls + confirmation votes.
//!
//! A heartbeat roster is only a hint — each snapshot is already stale
//! by the time a follower holds it, and two followers may hold
//! *different* snapshots (one connected between ticks). Electing on
//! rosters alone is therefore a split-brain generator. This module
//! replaces roster-trusting promotion with a two-phase check run by
//! every survivor when its primary link dies:
//!
//! 1. **Live poll.** Ask every rostered peer's query port (plain
//!    `Info`) for its *current* `applied_seq` and role. Once the
//!    primary is dead no follower's seq can advance, so every pollster
//!    observes the same frozen values — the consistency the stale
//!    rosters lacked. Unreachable peers drop out (they cannot promote
//!    either, absent a partition); a peer already `Primary`/`Promoted`
//!    ends the election immediately in its favour.
//! 2. **Vote round.** If the deterministic order (highest seq, ties to
//!    lowest id — [`crate::choose_promoted`]) names *this* node over
//!    the live set, it still must collect a confirmation vote from
//!    every live peer before promoting. A peer grants only while it is
//!    itself an orphaned follower (its own primary link silent past
//!    the liveness window) and only to a candidate that beats it under
//!    the same order — so of two racing candidates at most one can
//!    ever collect the other's vote, and a follower that merely lost
//!    its own link cannot steal promotion from a cluster whose primary
//!    is alive.
//!
//! Denied votes mean "not yet" (typically: the voter has not noticed
//! primary death); the election backs off one heartbeat interval and
//! re-runs, long enough to outlast every peer's liveness window. What
//! this deliberately does **not** solve: a full follower-to-follower
//! partition makes peers indistinguishable from dead ones, and no
//! quorum-free protocol can promote safely there — that residual
//! window is documented at the crate root.

use std::net::SocketAddr;
use std::time::Duration;

use lbc_net::{NetClient, PeerLag, Role};

use crate::ReplConfig;

/// How an election over the member set concluded.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ElectionOutcome {
    /// This node won the deterministic order over the live peers and
    /// every one of them confirmed; the caller may flip to `Promoted`.
    Won,
    /// Another node wins (or already promoted); re-follow it.
    Lost {
        winner: u64,
        /// The winner's query-port address (may be empty).
        winner_addr: String,
        /// The winner's replication listener to re-follow (may be
        /// empty, in which case the caller must re-elect later).
        winner_repl: String,
    },
    /// The round budget expired without unanimous confirmation — some
    /// peer kept denying (its primary looks alive to it, or seqs moved
    /// under us). The caller should keep serving read-only and retry.
    Inconclusive,
}

/// `(seq, id)` promotion order: higher seq wins, ties to lower id.
fn beats(a: (u64, u64), b: (u64, u64)) -> bool {
    a.0 > b.0 || (a.0 == b.0 && a.1 < b.1)
}

/// One live-polled peer, with the client kept open for the vote round.
struct LivePeer {
    id: u64,
    seq: u64,
    addr: String,
    repl_addr: String,
    client: NetClient,
}

/// Run the failover election for `self_id` (currently at `self_seq`)
/// over `members` — the last heartbeat roster, self included or not.
/// Blocks up to roughly `2 × heartbeat_timeout` in the contended case;
/// returns immediately when alone or clearly beaten.
pub fn run_election(
    self_id: u64,
    self_seq: u64,
    members: &[PeerLag],
    cfg: &ReplConfig,
) -> ElectionOutcome {
    let interval = cfg.heartbeat_interval.max(Duration::from_millis(1));
    let probe = cfg.heartbeat_timeout.max(Duration::from_millis(50));
    // Enough back-off rounds to outlast every peer's liveness window
    // (a peer that has not yet noticed primary death denies votes for
    // up to one heartbeat_timeout), plus slack for scheduling.
    let rounds = (cfg.heartbeat_timeout.as_millis() / interval.as_millis()).max(1) as u32 * 2 + 5;

    for round in 0..rounds {
        if round > 0 {
            std::thread::sleep(interval);
        }

        // Phase 1: live-poll every other pollable member.
        let mut live: Vec<LivePeer> = Vec::new();
        for p in members {
            if p.follower_id == self_id || p.addr.is_empty() {
                continue;
            }
            let Ok(sa) = p.addr.parse::<SocketAddr>() else {
                continue;
            };
            let Ok(mut client) = NetClient::connect_timeout(&sa, probe) else {
                continue; // unreachable ⇒ treated as dead
            };
            let Ok(info) = client.info() else { continue };
            if matches!(info.role, Role::Primary | Role::Promoted) {
                // Someone is already serving writes; defer, done.
                return ElectionOutcome::Lost {
                    winner: p.follower_id,
                    winner_addr: p.addr.clone(),
                    winner_repl: p.repl_addr.clone(),
                };
            }
            live.push(LivePeer {
                id: p.follower_id,
                seq: info.applied_seq,
                addr: p.addr.clone(),
                repl_addr: p.repl_addr.clone(),
                client,
            });
        }

        // Phase 2: deterministic order over the live set ∪ self.
        let mut best: Option<&LivePeer> = None;
        let mut best_key = (self_seq, self_id);
        for peer in &live {
            if beats((peer.seq, peer.id), best_key) {
                best_key = (peer.seq, peer.id);
                best = Some(peer);
            }
        }
        if let Some(winner) = best {
            return ElectionOutcome::Lost {
                winner: winner.id,
                winner_addr: winner.addr.clone(),
                winner_repl: winner.repl_addr.clone(),
            };
        }

        // Phase 3: we are the candidate — collect confirmation votes.
        let mut denied = false;
        let mut deferred: Option<ElectionOutcome> = None;
        for peer in &mut live {
            match peer.client.repl_vote(self_id, self_seq) {
                Ok(v) if v.granted => {}
                Ok(v) => {
                    if matches!(v.voter_role, Role::Primary | Role::Promoted) {
                        deferred = Some(ElectionOutcome::Lost {
                            winner: peer.id,
                            winner_addr: peer.addr.clone(),
                            winner_repl: peer.repl_addr.clone(),
                        });
                        break;
                    }
                    denied = true;
                }
                // A peer that answered the poll but not the vote just
                // died mid-round; it no longer constrains us.
                Err(_) => {}
            }
        }
        if let Some(outcome) = deferred {
            return outcome;
        }
        if !denied {
            return ElectionOutcome::Won;
        }
        // Denied: a voter still considers its primary alive (or sees a
        // better candidate). Back off a beat and re-poll fresh.
    }
    ElectionOutcome::Inconclusive
}

#[cfg(test)]
mod tests {
    use super::*;

    fn member(id: u64, seq: u64, addr: &str) -> PeerLag {
        PeerLag {
            follower_id: id,
            applied_seq: seq,
            addr: addr.to_string(),
            repl_addr: String::new(),
        }
    }

    fn quick_cfg() -> ReplConfig {
        ReplConfig {
            heartbeat_interval: Duration::from_millis(5),
            heartbeat_timeout: Duration::from_millis(50),
            ..Default::default()
        }
    }

    #[test]
    fn beats_orders_by_seq_then_id() {
        assert!(beats((5, 9), (4, 1)));
        assert!(beats((5, 1), (5, 2)));
        assert!(!beats((5, 2), (5, 1)));
        assert!(!beats((5, 1), (5, 1))); // never beats itself
        assert!(!beats((4, 1), (5, 9)));
    }

    #[test]
    fn alone_in_the_roster_wins_immediately() {
        let members = [member(3, 7, "")];
        assert_eq!(
            run_election(3, 7, &members, &quick_cfg()),
            ElectionOutcome::Won
        );
        // An empty roster (primary died before the first heartbeat).
        assert_eq!(run_election(3, 7, &[], &quick_cfg()), ElectionOutcome::Won);
    }

    #[test]
    fn unreachable_peers_are_treated_as_dead() {
        // A rostered peer nobody answers for: reserved port 9 on
        // localhost refuses/timeouts; the candidate must still win.
        let members = [member(1, 100, "127.0.0.1:9"), member(2, 0, "")];
        assert_eq!(
            run_election(2, 0, &members, &quick_cfg()),
            ElectionOutcome::Won
        );
    }
}
