//! Failover election: live polls + confirmation votes, with an
//! optional fixed-membership quorum rule.
//!
//! A heartbeat roster is only a hint — each snapshot is already stale
//! by the time a follower holds it, and two followers may hold
//! *different* snapshots (one connected between ticks). Electing on
//! rosters alone is therefore a split-brain generator. This module
//! replaces roster-trusting promotion with a multi-phase check run by
//! every survivor when its primary link dies:
//!
//! 1. **Live poll.** Ask each peer's query port (plain `Info`) for its
//!    *current* `applied_seq` and role. Once the primary is dead no
//!    follower's seq can advance, so every pollster observes the same
//!    frozen values — the consistency the stale rosters lacked. A peer
//!    already `Primary`/`Promoted` ends the election immediately in
//!    its favour. In **quorum mode** (a [`Membership`] is configured)
//!    the polled set is the fixed membership; a round that cannot even
//!    reach a strict majority of it is not allowed to proceed to
//!    votes.
//! 2. **Candidate check.** The deterministic order (highest seq, ties
//!    to lowest id — [`crate::choose_promoted`]) runs over the live
//!    set ∪ self, skipping peers that advertise no replication
//!    listener (they cannot serve if named winner; their higher seq is
//!    recovered by the winner's reconciliation pull instead).
//! 3. **Vote round.** A self-named candidate proposes a **term** (its
//!    gate's current term + 1) and collects confirmation votes for
//!    it: *every* live peer in roster-only mode, a **strict majority
//!    of the membership** (self included) in quorum mode. A peer
//!    grants only while it is itself an orphaned follower, only to a
//!    candidate that beats it under the same order — or, when it
//!    cannot promote itself, to any eligible candidate, so an
//!    unpromotable straggler with a higher seq concedes rather than
//!    deadlocking the group — and to at most **one candidate per
//!    term** ([`lbc_net::ReplGate::try_grant_vote`], persisted across
//!    voter restarts): without that memory, two candidates
//!    partitioned from each other could each collect a shared voter's
//!    grant and both assemble a strict majority. A voter whose term
//!    is already *above* the proposal refuses it outright and reports
//!    its term; the candidate re-proposes one higher next round —
//!    never the same number, which some voter has already bound to a
//!    grant. The candidate binds its *own* grant only at this stage,
//!    never in a round that failed the reachability or candidate
//!    checks — the pre-vote discipline that keeps a hopeless minority
//!    candidate from ratcheting its term and, on heal, deposing the
//!    legitimate winner with a higher-term `Hello`. The self-grant is
//!    *provisional* until the win commits: a rival that beats this
//!    node under the order may supersede it (else two mutual
//!    candidates would wedge the term forever), and the win itself
//!    commits only by **sealing** the self-vote
//!    ([`lbc_net::ReplGate::seal_self_vote`]) — seal and supersession
//!    exclude each other, so one term still has at most one winner.
//!
//! Denied votes mean "not yet" (typically: the voter has not noticed
//! primary death, or another candidate holds the proposed term); the
//! election backs off — jittered, so competing candidates
//! desynchronise — and re-runs, long enough to outlast every peer's
//! liveness window. A quorum-mode election that never reaches a
//! majority ends in [`ElectionOutcome::NoQuorum`]: the caller keeps
//! serving reads and reports the typed status instead of promoting
//! into a minority partition. A win returns the term it was won at;
//! the caller folds it into its gate **before** flipping to
//! `Promoted`, so a writable node always already carries its term.

use std::collections::BTreeSet;
use std::net::SocketAddr;
use std::time::Duration;

use lbc_net::{NetClient, PeerLag, Role};

use crate::{link_up, Backoff, ReplConfig};

/// How an election over the member set concluded.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ElectionOutcome {
    /// This node won the deterministic order over the live peers and
    /// collected the required votes at `term`; the caller observes the
    /// term on its gate, then may flip to `Promoted` (after
    /// reconciling — see [`crate::FollowerConn::run`]'s failover
    /// path).
    Won {
        /// The term the votes were collected under — the new
        /// generation of the replication plane.
        term: u64,
    },
    /// Another node wins (or already promoted); re-follow it.
    Lost {
        winner: u64,
        /// The winner's query-port address (may be empty).
        winner_addr: String,
        /// The winner's replication listener to re-follow (may be
        /// empty, in which case the caller must re-elect later).
        winner_repl: String,
    },
    /// The round budget expired without the required confirmation —
    /// some peer kept denying (its primary looks alive to it, or seqs
    /// moved under us). The caller should keep serving read-only and
    /// retry.
    Inconclusive,
    /// Quorum mode only: a strict majority of the configured
    /// membership was never reachable. Promotion is forbidden — this
    /// node is (as far as it can tell) in a minority partition. Keep
    /// serving reads, report the counts, retry after the partition
    /// heals.
    NoQuorum {
        /// Members reachable in the final round, self included.
        votes_seen: u32,
        /// The strict majority the membership demands.
        votes_needed: u32,
    },
}

/// `(seq, id)` promotion order: higher seq wins, ties to lower id.
fn beats(a: (u64, u64), b: (u64, u64)) -> bool {
    a.0 > b.0 || (a.0 == b.0 && a.1 < b.1)
}

/// One live-polled peer, with the client kept open for the vote round.
struct LivePeer {
    id: u64,
    seq: u64,
    addr: String,
    repl_addr: String,
    client: NetClient,
}

/// A peer this election should poll: identity from the membership (or
/// roster), repl listener from whichever of the two knows it.
struct Target {
    id: u64,
    addr: String,
    repl_addr: String,
}

/// Run the failover election for `self_id` (currently at `self_seq`),
/// proposing term `gate.term() + 1`. The candidate's own vote at each
/// proposed term goes through `gate` (recorded **and persisted**
/// before any peer is asked to grant), so a candidate that crashes
/// mid-election cannot reboot and vote for a rival at a term it
/// already bound to itself — the crash edge that would let two
/// writers share one term. `gate = None` (gateless tests, bare
/// reconciliation probes) proposes term 1 with no self-vote memory.
/// `roster` is the last heartbeat roster (self included or not); with
/// [`ReplConfig::members`] configured the electorate is that fixed
/// membership instead, the roster only enriching it with replication
/// addresses. When a voter reports a term above the proposal, the
/// next round re-proposes one higher. Blocks up to roughly `2 ×
/// heartbeat_timeout` in the contended case; returns immediately when
/// alone or clearly beaten.
pub fn run_election(
    self_id: u64,
    self_seq: u64,
    gate: Option<&lbc_net::ReplGate>,
    roster: &[PeerLag],
    cfg: &ReplConfig,
) -> ElectionOutcome {
    let mut term = gate.map(|g| g.term()).unwrap_or(0) + 1;
    let interval = cfg.heartbeat_interval.max(Duration::from_millis(1));
    let probe = cfg.heartbeat_timeout.max(Duration::from_millis(50));
    let quorum_mode = !cfg.members.is_empty();
    let votes_needed = cfg.members.quorum() as u32;

    let targets: Vec<Target> = if quorum_mode {
        cfg.members
            .members
            .iter()
            .filter(|m| m.id != self_id)
            .map(|m| Target {
                id: m.id,
                addr: m.addr.clone(),
                repl_addr: roster
                    .iter()
                    .find(|p| p.follower_id == m.id)
                    .map(|p| p.repl_addr.clone())
                    .unwrap_or_default(),
            })
            .collect()
    } else {
        roster
            .iter()
            .filter(|p| p.follower_id != self_id)
            .map(|p| Target {
                id: p.follower_id,
                addr: p.addr.clone(),
                repl_addr: p.repl_addr.clone(),
            })
            .collect()
    };

    // Enough back-off rounds to outlast every peer's liveness window
    // (a peer that has not yet noticed primary death denies votes for
    // up to one heartbeat_timeout), plus slack for scheduling. The
    // per-round delay is jittered around the heartbeat interval so two
    // candidates that noticed the death in the same beat stop
    // re-polling in lockstep.
    let rounds = (cfg.heartbeat_timeout.as_millis() / interval.as_millis()).max(1) as u32 * 2 + 5;
    let mut backoff = Backoff::new(interval, interval * 4, self_id ^ self_seq.rotate_left(32));
    let mut reachable = 1u32; // self, updated per round

    for round in 0..rounds {
        if round > 0 {
            backoff.sleep();
        }

        // Phase 1: live-poll every other pollable target.
        let mut live: Vec<LivePeer> = Vec::new();
        for t in &targets {
            if t.addr.is_empty() || !link_up(&cfg.faults, &t.addr) {
                continue;
            }
            let Ok(sa) = t.addr.parse::<SocketAddr>() else {
                continue;
            };
            let Ok(mut client) = NetClient::connect_timeout(&sa, probe) else {
                continue; // unreachable ⇒ treated as dead
            };
            let Ok(info) = client.info() else { continue };
            // The roster may not name this peer's replication listener
            // (membership-only targets never do); the live poll fills
            // the gap so a winner found this way can be re-followed.
            let repl_addr = if t.repl_addr.is_empty() {
                info.repl_addr.clone()
            } else {
                t.repl_addr.clone()
            };
            if matches!(info.role, Role::Primary | Role::Promoted) {
                // Someone is already serving writes; defer, done.
                return ElectionOutcome::Lost {
                    winner: t.id,
                    winner_addr: t.addr.clone(),
                    winner_repl: repl_addr,
                };
            }
            live.push(LivePeer {
                id: t.id,
                seq: info.applied_seq,
                addr: t.addr.clone(),
                repl_addr,
                client,
            });
        }
        reachable = live.len() as u32 + 1;
        if quorum_mode && reachable < votes_needed {
            // Cannot possibly collect a majority this round; spin on
            // the backoff in case the partition heals within budget.
            continue;
        }

        // Phase 2: deterministic order over the live set ∪ self.
        // Peers without a replication listener are skipped as
        // candidates — naming one winner would leave the group with a
        // primary nobody can follow; its higher seq (the reason it
        // would have won) is recovered by the reconciliation pull.
        let mut best: Option<&LivePeer> = None;
        let mut best_key = (self_seq, self_id);
        for peer in live.iter().filter(|p| !p.repl_addr.is_empty()) {
            if beats((peer.seq, peer.id), best_key) {
                best_key = (peer.seq, peer.id);
                best = Some(peer);
            }
        }
        if let Some(winner) = best {
            return ElectionOutcome::Lost {
                winner: winner.id,
                winner_addr: winner.addr.clone(),
                winner_repl: winner.repl_addr.clone(),
            };
        }

        // Phase 3: we are the candidate — bind the proposal to our own
        // (persisted) vote, then collect confirmation votes for it.
        //
        // The self-grant sits *here*, after the poll and the candidate
        // check, deliberately: a round that cannot reach a quorum (or
        // that concedes to a better peer) must not burn a term. A
        // minority-partitioned node that ratcheted its term on every
        // hopeless retry would, on heal, re-follow the legitimate
        // winner with a higher-term `Hello` and depose it — the
        // classic disruptive-server churn. Polls are not votes, so
        // deferring the grant past them costs nothing: the vote-side
        // binding (persisted before any peer's grant is counted, so a
        // candidate crash cannot free its term for a rival) is intact.
        // A refusal means the term is below the gate's or already
        // granted to a rival — propose above both and retry; this
        // converges in at most two steps.
        if let Some(g) = gate {
            while !g.try_grant_vote(term, self_id) {
                term = term.max(g.term()) + 1;
            }
        }
        let mut granted: BTreeSet<u64> = BTreeSet::new();
        let mut denied = false;
        let mut deferred: Option<ElectionOutcome> = None;
        let mut next_term = term;
        for peer in &mut live {
            match peer.client.repl_vote(self_id, self_seq, term) {
                Ok(v) if v.granted => {
                    granted.insert(peer.id);
                }
                Ok(v) => {
                    if matches!(v.voter_role, Role::Primary | Role::Promoted) {
                        deferred = Some(ElectionOutcome::Lost {
                            winner: peer.id,
                            winner_addr: peer.addr.clone(),
                            winner_repl: peer.repl_addr.clone(),
                        });
                        break;
                    }
                    denied = true;
                    // A voter already past our proposal: the number is
                    // burned (someone holds a grant there, or a won
                    // election moved the group on). Re-propose above
                    // it next round. A denial *at* our term keeps the
                    // proposal — the voter's grant memory, not the
                    // term, is what refused us, and competing at a
                    // fresh term would let two candidates split one
                    // voter across terms.
                    if v.term > term {
                        next_term = next_term.max(v.term + 1);
                    }
                }
                // A peer that answered the poll but not the vote just
                // died mid-round; it no longer constrains us.
                Err(_) => {}
            }
        }
        if let Some(outcome) = deferred {
            return outcome;
        }
        let won = if quorum_mode {
            // Strict majority of the *membership*, self-vote included
            // — mid-round deaths shrink the grant set, never the bar.
            granted.len() as u32 + 1 >= votes_needed
        } else {
            !denied
        };
        if won {
            // The win commits only if our provisional self-grant is
            // still ours: a better mutual candidate may have
            // superseded it mid-round and counted it toward *its*
            // majority. Sealing and supersession exclude each other
            // under the gate's vote lock, so of two candidates who
            // both assemble a majority at one term, exactly one can
            // ever commit it.
            match gate {
                Some(g) if !g.seal_self_vote(term, self_id) => {
                    // Superseded: fall through to the next round,
                    // where the self-grant loop proposes past the
                    // stolen term.
                }
                _ => return ElectionOutcome::Won { term },
            }
        }
        term = next_term;
        // Denied or short of quorum: a voter still considers its
        // primary alive (or sees a better candidate), or enough peers
        // died mid-round. Back off a jittered beat and re-poll fresh.
    }
    if quorum_mode && reachable < votes_needed {
        return ElectionOutcome::NoQuorum {
            votes_seen: reachable,
            votes_needed,
        };
    }
    ElectionOutcome::Inconclusive
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Membership;

    fn member(id: u64, seq: u64, addr: &str) -> PeerLag {
        PeerLag {
            follower_id: id,
            applied_seq: seq,
            addr: addr.to_string(),
            repl_addr: String::new(),
        }
    }

    fn quick_cfg() -> ReplConfig {
        ReplConfig {
            heartbeat_interval: Duration::from_millis(5),
            heartbeat_timeout: Duration::from_millis(50),
            ..Default::default()
        }
    }

    #[test]
    fn beats_orders_by_seq_then_id() {
        assert!(beats((5, 9), (4, 1)));
        assert!(beats((5, 1), (5, 2)));
        assert!(!beats((5, 2), (5, 1)));
        assert!(!beats((5, 1), (5, 1))); // never beats itself
        assert!(!beats((4, 1), (5, 9)));
    }

    #[test]
    fn alone_in_the_roster_wins_immediately() {
        let members = [member(3, 7, "")];
        assert_eq!(
            run_election(3, 7, None, &members, &quick_cfg()),
            ElectionOutcome::Won { term: 1 }
        );
        // An empty roster (primary died before the first heartbeat).
        assert_eq!(
            run_election(3, 7, None, &[], &quick_cfg()),
            ElectionOutcome::Won { term: 1 }
        );
    }

    #[test]
    fn election_proposes_one_above_the_gate_term_and_self_votes() {
        let gate = lbc_net::ReplGate::with_id(Role::Follower, 3);
        gate.seed_term_vote(6, u64::MAX);
        assert_eq!(
            run_election(3, 7, Some(&gate), &[], &quick_cfg()),
            ElectionOutcome::Won { term: 7 }
        );
        // The self-vote is bound: no rival can take term 7 here.
        assert_eq!(gate.term(), 7);
        assert!(!gate.try_grant_vote(7, 9));
        assert!(gate.try_grant_vote(7, 3));
    }

    #[test]
    fn election_skips_terms_already_granted_to_a_rival() {
        // The voter granted term 1 to candidate 9 (and was fenced to
        // term 1 by it); a later local election must not try to
        // self-vote at 1 — it proposes 2.
        let gate = lbc_net::ReplGate::with_id(Role::Follower, 3);
        assert!(gate.try_grant_vote(1, 9));
        assert_eq!(
            run_election(3, 7, Some(&gate), &[], &quick_cfg()),
            ElectionOutcome::Won { term: 2 }
        );
    }

    #[test]
    fn unreachable_peers_are_treated_as_dead() {
        // A rostered peer nobody answers for: reserved port 9 on
        // localhost refuses/timeouts; the candidate must still win.
        let members = [member(1, 100, "127.0.0.1:9"), member(2, 0, "")];
        assert_eq!(
            run_election(2, 0, None, &members, &quick_cfg()),
            ElectionOutcome::Won { term: 1 }
        );
    }

    #[test]
    fn quorum_mode_alone_in_a_three_group_is_no_quorum() {
        // Same dead-peer setup, but with a fixed 3-member group: the
        // lone survivor must refuse to promote, reporting 1 of 2.
        let cfg = ReplConfig {
            members: Membership::parse("1@127.0.0.1:9,2@127.0.0.1:9,3@127.0.0.1:9").unwrap(),
            ..quick_cfg()
        };
        assert_eq!(
            run_election(2, 0, None, &[], &cfg),
            ElectionOutcome::NoQuorum {
                votes_seen: 1,
                votes_needed: 2,
            }
        );
    }

    #[test]
    fn quorum_of_a_singleton_membership_is_itself() {
        let cfg = ReplConfig {
            members: Membership::parse("4@127.0.0.1:9").unwrap(),
            ..quick_cfg()
        };
        assert_eq!(
            run_election(4, 0, None, &[], &cfg),
            ElectionOutcome::Won { term: 1 }
        );
    }
}
