//! `lbc-repl` — primary/follower replication for the serving stack.
//!
//! A primary (`lbc serve --repl-listen`) accepts follower connections
//! on a dedicated replication port. Each follower introduces itself
//! with [`ReplMsg::Hello`]; the primary catches it up — a chunked,
//! CRC-guarded copy of the current in-memory snapshot
//! ([`lbc_store::write_snapshot`] over the wire), or just the WAL tail
//! when the follower already holds a prefix of the lineage — and then
//! tails every committed mutation to it as verbatim
//! [`lbc_store::encode_record`] bytes, fed synchronously from
//! [`lbc_runtime::Registry`]'s commit hook so records arrive strictly
//! in sequence order.
//!
//! A follower (`lbc serve --follow`) adopts the streamed state via
//! [`lbc_runtime::Registry::adopt_state`] and applies each record
//! through [`lbc_runtime::Registry::apply_replicated`] — the identical
//! deterministic warm-start path the primary ran — so its served
//! labellings are **bit-for-bit** the primary's at every sequence
//! number. Its own reactor serves reads the whole time; writes bounce
//! with a typed `ReadOnly` error through [`lbc_net::ReplGate`].
//!
//! # Failover
//!
//! The primary heartbeats every [`ReplConfig::heartbeat_interval`],
//! fanning out one **globally epoch-stamped** roster snapshot of all
//! connected followers (ids, acknowledged progress, and the addresses
//! each advertised in its `Hello`). When the stream goes silent past
//! [`ReplConfig::heartbeat_timeout`] (or the socket drops — a `kill
//! -9` produces an EOF/reset immediately), each follower runs an
//! election ([`run_election`]) instead of trusting its possibly-stale
//! roster: it **live-polls** peers' query ports for their current
//! `applied_seq` and role (post-mortem those seqs are frozen, so every
//! pollster sees a consistent view), computes the winner by the
//! deterministic rule — highest `applied_seq`, ties to **lowest**
//! follower id ([`choose_promoted`]) — and, if it names itself,
//! collects confirmation **votes** before flipping its
//! [`lbc_net::ReplGate`] to `Promoted`. Peers grant only once their
//! own primary link has been silent past the liveness window, only
//! to a candidate that beats them under the same rule (or when they
//! cannot promote themselves), and to **at most one candidate per
//! term** — every election proposes a fresh term one above the highest
//! the candidate has observed, and a voter's grant is remembered (and,
//! with a store, persisted across kill -9) keyed by that term — so two
//! mutually-reachable followers can never both promote, and two
//! candidates that cannot see each other cannot both assemble a
//! majority through the voters they share. Losers re-follow the
//! winner's replication port, carrying their lineage watermark.
//! Duplicate follower ids are rejected at `Hello`
//! ([`lbc_net::ReplMsg::Deny`]).
//!
//! # Terms
//!
//! A monotonically increasing **term** is the generation spine of the
//! plane. Every `Hello`, `WalRec`, `Heartbeat`, vote frame, and the
//! client-facing `Info` tail carries the sender's term; every receiver
//! folds higher terms forward ([`lbc_net::ReplGate::observe_term`]) and
//! refuses lower ones. A deposed primary is therefore fenced the
//! instant *any* frame from the successor generation reaches it — a
//! vote request, a follower's `Hello`, anything — rather than after a
//! lease expires, and a client that has seen the new term on one
//! connection rejects answers from the old one
//! ([`lbc_net::NetError::StaleTerm`]).
//!
//! # Quorum mode
//!
//! With a fixed [`Membership`] configured (`--members id@addr,...` on
//! every node, carried in `Hello`/`Heartbeat` and persisted in the
//! store), elections additionally require grants from a **strict
//! majority of the membership** — not merely of whoever answered the
//! poll. A follower cut off with a minority cannot reach quorum, gets
//! [`ElectionOutcome::NoQuorum`], and keeps serving reads with a typed
//! no-quorum status instead of promoting — the follower-to-follower
//! partition that could dual-promote in roster-only mode. The primary
//! holds the mirror-image lease: once it has seen a quorum of members,
//! losing contact with a majority for a heartbeat timeout steps it
//! down to read-only *before* the survivors' election can conclude
//! (their own liveness window plus vote rounds strictly outlasts the
//! primary's lease, measured from the same partition instant).
//!
//! # Promotion-time reconciliation
//!
//! Before an election winner opens its port for writes it pulls any
//! missing WAL suffix ([`lbc_net::Request::WalPull`]) from the live
//! loser with the highest `applied_seq` and applies it through the
//! same deterministic replicated-apply path — so a record the dead
//! primary fanned to *some* follower survives failover even when the
//! winner itself never received it.
//!
//! The three correctness residuals PRs 6–8 recorded here are now
//! closed: acked-record loss by the opt-in `--ack-quorum` write mode
//! ([`ReplConfig::ack_quorum`] — a delta's client response is held
//! until a majority of the electorate acks the WAL record, so every
//! acked write survives any single failover); the deposed-primary
//! stale-read lease by term fencing (the old primary turns read-only
//! on the first successor-term frame it sees, and term-stamped `Info`
//! answers let clients refuse the window in between); and the
//! time-windowed vote hold by persisted single-vote-per-term grant
//! memory. What remains is inherent: without a configured membership
//! the roster-only election is partitionable as before, and a deposed
//! primary that no successor-generation frame can reach (total
//! isolation) still serves stale reads until its own lease steps it
//! down — clients holding the new term refuse those answers. The
//! chaos suite (`crates/repl/tests/chaos.rs`) asserts the closures
//! structurally: at most one writer per term at every sampled
//! instant, no read served from a deposed term after any peer
//! observes the successor, and no acked record lost across any
//! failover in the `--ack-quorum` matrix.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

use lbc_faults::{FaultHook, LinkFault};
use lbc_net::{FrameDecoder, Member, NetError, ReplMsg};

mod backoff;
mod election;
mod follower;
mod primary;

pub use backoff::Backoff;
pub use election::{run_election, ElectionOutcome};
pub use follower::{reconcile, FailoverOutcome, FollowerConn, FollowerHandle, SyncReport};
pub use primary::ReplServer;

/// How a follower introduces itself to the primary: its unique id plus
/// the addresses peers use during failover — the query port where this
/// node answers election polls and votes, and the replication port it
/// would serve from if promoted. Either address may be empty (the node
/// then cannot be polled / cannot be followed after winning).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FollowerIdentity {
    pub id: u64,
    /// Query-port address (`lbc serve --listen`), as peers reach it.
    pub addr: String,
    /// Replication listener this node would serve from when promoted.
    pub repl_addr: String,
}

impl FollowerIdentity {
    /// An identity with no advertised addresses (in-process tests,
    /// single-follower deployments).
    pub fn bare(id: u64) -> FollowerIdentity {
        FollowerIdentity {
            id,
            addr: String::new(),
            repl_addr: String::new(),
        }
    }
}

/// `Hello.have_seq` sentinel: "I hold no state at all, ship me the
/// full snapshot" — distinct from `0`, which means "I hold the state
/// as of sequence number 0" (a legitimate reconnect watermark).
pub const HAVE_NOTHING: u64 = u64::MAX;

/// The fixed replication group for quorum-mode failover: every node is
/// configured with the same `id@addr` list (query-port addresses), and
/// a strict majority of it — [`Membership::quorum`] — is what an
/// election must collect to promote. Empty means quorum mode is off
/// and elections fall back to the roster-only (unanimous-live) rule.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Membership {
    /// Sorted by id, deduplicated.
    pub members: Vec<Member>,
}

impl Membership {
    /// Normalise an arbitrary member list: sort by id, drop duplicate
    /// ids (first address wins).
    pub fn from_members(mut members: Vec<Member>) -> Membership {
        members.sort_by_key(|a| a.id);
        members.dedup_by(|b, a| a.id == b.id);
        Membership { members }
    }

    /// Parse the `--members` syntax: `id@addr,id@addr,...` (e.g.
    /// `1@10.0.0.1:7070,2@10.0.0.2:7070,3@10.0.0.3:7070`). Addresses
    /// are the nodes' *query* ports — where election polls and votes
    /// are answered.
    pub fn parse(spec: &str) -> Result<Membership, String> {
        let mut members = Vec::new();
        for part in spec.split(',').map(str::trim).filter(|p| !p.is_empty()) {
            let (id, addr) = part
                .split_once('@')
                .ok_or_else(|| format!("member '{part}' is not id@addr"))?;
            let id: u64 = id
                .parse()
                .map_err(|_| format!("member id '{id}' is not an integer"))?;
            if addr.is_empty() {
                return Err(format!("member {id} has an empty address"));
            }
            members.push(Member {
                id,
                addr: addr.to_string(),
            });
        }
        let n = members.len();
        let normalised = Membership::from_members(members);
        if normalised.members.len() != n {
            return Err("duplicate member ids in --members".to_string());
        }
        Ok(normalised)
    }

    /// The canonical `id@addr,...` spelling (what `parse` accepts),
    /// used for persistence and status output.
    pub fn to_spec(&self) -> String {
        self.members
            .iter()
            .map(|m| format!("{}@{}", m.id, m.addr))
            .collect::<Vec<_>>()
            .join(",")
    }

    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// Votes (self included) an election must gather: a strict
    /// majority of the configured group.
    pub fn quorum(&self) -> usize {
        self.members.len() / 2 + 1
    }

    pub fn contains(&self, id: u64) -> bool {
        self.members.iter().any(|m| m.id == id)
    }
}

/// Replication tuning knobs, shared by both ends.
#[derive(Debug, Clone)]
pub struct ReplConfig {
    /// Primary → follower heartbeat period.
    pub heartbeat_interval: Duration,
    /// Silence on the stream past this declares the primary dead and
    /// triggers the promotion rule. Keep it several heartbeats wide.
    pub heartbeat_timeout: Duration,
    /// Snapshot chunk size on the wire (must fit in a frame payload
    /// alongside the 8-byte chunk offset).
    pub chunk_len: usize,
    /// Per-frame payload cap for the replication decoder.
    pub max_payload: u32,
    /// Fixed replication group for quorum-mode elections and the
    /// primary's step-down lease. Empty = roster-only failover.
    pub members: Membership,
    /// Fault-injection oracle consulted before every outbound link use
    /// (dials, stream reads) — `None` in production, a seeded
    /// [`lbc_faults::PartitionMatrix`] view under the chaos harness.
    pub faults: Option<Arc<dyn FaultHook>>,
    /// `--ack-quorum`: hold each delta's client response until a
    /// strict majority of the fixed membership has acknowledged the
    /// WAL record. Requires a non-empty [`Membership`]; closes the
    /// acked-but-fanned-to-nobody loss window at the cost of one
    /// replication round-trip of write latency (measured via the
    /// `repl_ack_wait_ns` histogram).
    pub ack_quorum: bool,
}

impl Default for ReplConfig {
    fn default() -> Self {
        ReplConfig {
            heartbeat_interval: Duration::from_millis(100),
            heartbeat_timeout: Duration::from_millis(1500),
            chunk_len: 256 * 1024,
            max_payload: lbc_net::wire::DEFAULT_MAX_PAYLOAD,
            members: Membership::default(),
            faults: None,
            ack_quorum: false,
        }
    }
}

/// Consult the fault oracle for one prospective use of the link to
/// `peer`. `false` means the link is cut and the caller must treat the
/// peer as unreachable; a delay fault sleeps here and then passes.
pub(crate) fn link_up(faults: &Option<Arc<dyn FaultHook>>, peer: &str) -> bool {
    match faults.as_deref().map(|f| f.link(peer)) {
        Some(LinkFault::Cut) => false,
        Some(LinkFault::Delay(d)) => {
            std::thread::sleep(d);
            true
        }
        Some(LinkFault::Pass) | None => true,
    }
}

/// Anything that can go wrong on the replication channel.
#[derive(Debug)]
pub enum ReplError {
    Io(std::io::Error),
    /// Frame- or message-level wire violation.
    Net(NetError),
    /// The peer closed the connection.
    Disconnected,
    /// No bytes within the configured deadline.
    Timeout,
    /// Structurally sound frames in an order or shape the protocol
    /// forbids (e.g. a snapshot chunk before `SnapBegin`).
    Protocol(String),
    /// The primary refused the handshake ([`ReplMsg::Deny`]) — e.g. a
    /// duplicate follower id. Not retryable without reconfiguration.
    Denied(String),
    /// Snapshot or WAL payloads that fail the store codecs.
    Store(lbc_store::StoreError),
    /// Registry-side adoption/apply failure.
    Runtime(lbc_runtime::RuntimeError),
}

impl std::fmt::Display for ReplError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReplError::Io(e) => write!(f, "replication i/o error: {e}"),
            ReplError::Net(e) => write!(f, "replication wire error: {e}"),
            ReplError::Disconnected => write!(f, "replication peer disconnected"),
            ReplError::Timeout => write!(f, "replication stream timed out"),
            ReplError::Protocol(msg) => write!(f, "replication protocol violation: {msg}"),
            ReplError::Denied(reason) => write!(f, "replication handshake denied: {reason}"),
            ReplError::Store(e) => write!(f, "replication payload error: {e}"),
            ReplError::Runtime(e) => write!(f, "replication apply error: {e}"),
        }
    }
}

impl std::error::Error for ReplError {}

impl From<std::io::Error> for ReplError {
    fn from(e: std::io::Error) -> Self {
        match e.kind() {
            std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut => ReplError::Timeout,
            std::io::ErrorKind::ConnectionReset
            | std::io::ErrorKind::ConnectionAborted
            | std::io::ErrorKind::BrokenPipe
            | std::io::ErrorKind::UnexpectedEof => ReplError::Disconnected,
            _ => ReplError::Io(e),
        }
    }
}

impl From<NetError> for ReplError {
    fn from(e: NetError) -> Self {
        ReplError::Net(e)
    }
}

impl From<lbc_net::WireError> for ReplError {
    fn from(e: lbc_net::WireError) -> Self {
        ReplError::Net(NetError::Wire(e))
    }
}

impl From<lbc_store::StoreError> for ReplError {
    fn from(e: lbc_store::StoreError) -> Self {
        ReplError::Store(e)
    }
}

impl From<lbc_runtime::RuntimeError> for ReplError {
    fn from(e: lbc_runtime::RuntimeError) -> Self {
        ReplError::Runtime(e)
    }
}

/// The deterministic promotion order: among the roster, the follower
/// with the highest `applied_seq` wins; ties break to the **lowest**
/// follower id. During failover this rule runs over *live-polled*
/// sequence numbers (see [`run_election`]) — post-mortem they are
/// frozen, so every pollster computes the same winner — and doubles as
/// the vote-granting criterion. `None` only for an empty roster.
pub fn choose_promoted(roster: &[lbc_net::PeerLag]) -> Option<u64> {
    let best = roster.iter().map(|p| p.applied_seq).max()?;
    roster
        .iter()
        .filter(|p| p.applied_seq == best)
        .map(|p| p.follower_id)
        .min()
}

/// Frame-encode and send one replication message.
fn send_msg(stream: &mut TcpStream, msg: &ReplMsg, request_id: u64) -> Result<(), ReplError> {
    let mut buf = Vec::new();
    msg.encode(&mut buf, request_id)?;
    stream.write_all(&buf)?;
    Ok(())
}

/// Blockingly read the next replication message, honouring the
/// stream's read timeout (surfaced as [`ReplError::Timeout`]).
fn recv_msg(
    stream: &mut TcpStream,
    dec: &mut FrameDecoder,
    scratch: &mut [u8],
) -> Result<ReplMsg, ReplError> {
    loop {
        if let Some(frame) = dec.next_frame()? {
            return Ok(ReplMsg::from_frame(&frame)?);
        }
        let n = stream.read(scratch)?;
        if n == 0 {
            return Err(ReplError::Disconnected);
        }
        dec.push(&scratch[..n]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lbc_net::PeerLag;

    fn peer(id: u64, seq: u64) -> PeerLag {
        PeerLag {
            follower_id: id,
            applied_seq: seq,
            addr: String::new(),
            repl_addr: String::new(),
        }
    }

    #[test]
    fn promotion_picks_max_seq_then_lowest_id() {
        assert_eq!(choose_promoted(&[]), None);
        assert_eq!(choose_promoted(&[peer(7, 0)]), Some(7));
        // Highest applied_seq wins outright.
        assert_eq!(
            choose_promoted(&[peer(1, 3), peer(2, 9), peer(3, 5)]),
            Some(2)
        );
        // Ties break to the lowest follower id.
        assert_eq!(
            choose_promoted(&[peer(9, 4), peer(2, 4), peer(5, 4), peer(3, 1)]),
            Some(2)
        );
        // Order of the roster never matters.
        assert_eq!(
            choose_promoted(&[peer(5, 4), peer(9, 4), peer(3, 1), peer(2, 4)]),
            Some(2)
        );
    }
}
