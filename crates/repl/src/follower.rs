//! The replication follower: adopt the primary's streamed state, apply
//! its WAL records through the identical deterministic warm-start
//! path, and run the failover election when the stream goes silent.

use std::collections::VecDeque;
use std::net::{TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use lbc_net::{FrameDecoder, NetClient, PeerLag, ReplGate, ReplMsg, Role};
use lbc_obs::EventKind;
use lbc_runtime::Registry;
use lbc_store::{decode_record, format, parse_snapshot};

use crate::{
    link_up, recv_msg, run_election, send_msg, ElectionOutcome, FollowerIdentity, Membership,
    ReplConfig, ReplError, HAVE_NOTHING,
};

/// What the initial catch-up did.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SyncReport {
    /// Whether a full snapshot was shipped (vs. a WAL-tail-only or
    /// already-current catch-up).
    pub adopted_snapshot: bool,
    /// Snapshot bytes received over the wire (0 without a snapshot).
    pub snapshot_bytes: u64,
    /// Cached outputs adopted from the snapshot.
    pub entries: usize,
    /// Watermark after the synchronous catch-up phase. Tail records
    /// arrive through the streaming loop, not here.
    pub applied_seq: u64,
}

/// How a follower's streaming loop ended.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FailoverOutcome {
    /// Primary died, this follower won the election, and every live
    /// peer confirmed; its [`ReplGate`] now reads `Promoted`.
    Promoted { applied_seq: u64 },
    /// Primary died and another follower won the election. The caller
    /// should re-follow `winner_repl` (when non-empty) from
    /// `applied_seq`, or re-elect over `members` if the winner never
    /// starts serving replication.
    NotPromoted {
        winner: u64,
        applied_seq: u64,
        /// The winner's query-port address (may be empty).
        winner_addr: String,
        /// The winner's replication listener to re-follow (may be
        /// empty).
        winner_repl: String,
        /// The membership the election ran over — the re-election
        /// input if the winner dies before serving.
        members: Vec<PeerLag>,
    },
    /// Primary died but the election's round budget expired without a
    /// unanimous confirmation (a peer still sees its primary as alive,
    /// or a partition). The caller should keep serving read-only and
    /// re-elect over `members` after a back-off.
    Undecided {
        applied_seq: u64,
        members: Vec<PeerLag>,
    },
    /// Quorum mode: primary died but a strict majority of the fixed
    /// membership was unreachable — this node is in a minority
    /// partition and must not promote. The caller should keep serving
    /// read-only (the gate's quorum status is already set) and, once
    /// connectivity returns, re-follow whoever the majority elected
    /// **from scratch** ([`HAVE_NOTHING`]): a minority node may hold a
    /// diverged suffix the winner's lineage never contained.
    NoQuorum {
        applied_seq: u64,
        members: Vec<PeerLag>,
        votes_seen: u32,
        votes_needed: u32,
    },
    /// [`FollowerHandle::stop`] was called; no failover happened.
    Stopped { applied_seq: u64 },
    /// The loop died on a non-failover error (bad payload, registry
    /// apply failure, …).
    Error(String),
}

/// A synced follower connection, ready to stream. Produced by
/// [`FollowerConn::sync`], consumed by [`FollowerConn::run`].
pub struct FollowerConn {
    stream: TcpStream,
    dec: FrameDecoder,
    scratch: Vec<u8>,
    /// Messages read during sync that belong to the streaming phase.
    pending: VecDeque<ReplMsg>,
    registry: Arc<Registry>,
    dataset: String,
    cfg: ReplConfig,
    identity: FollowerIdentity,
    applied_seq: u64,
    next_id: u64,
    /// The primary's address as dialled — the key the fault oracle
    /// knows this link by.
    primary_addr: String,
    /// Snapshot chunk accumulation buffer. Taken empty at the start of
    /// every reception and left empty on any failure, so a resync
    /// after an EOF mid-snapshot can never see a dead attempt's
    /// partial prefix glued onto the fresh stream's chunks.
    snap_buf: Vec<u8>,
}

struct FollowerShared {
    stop: AtomicBool,
    applied_seq: AtomicU64,
    outcome: Mutex<Option<FailoverOutcome>>,
    done: Condvar,
}

/// Handle to a running follower streaming loop.
pub struct FollowerHandle {
    shared: Arc<FollowerShared>,
    join: Option<std::thread::JoinHandle<()>>,
}

impl FollowerHandle {
    /// Highest sequence number applied so far.
    pub fn applied_seq(&self) -> u64 {
        self.shared.applied_seq.load(Ordering::Acquire)
    }

    /// How the loop ended, if it has.
    pub fn outcome(&self) -> Option<FailoverOutcome> {
        self.shared.outcome.lock().unwrap().clone()
    }

    /// Block until the loop ends (or `timeout` elapses).
    pub fn wait_outcome(&self, timeout: Duration) -> Option<FailoverOutcome> {
        let deadline = Instant::now() + timeout;
        let mut guard = self.shared.outcome.lock().unwrap();
        while guard.is_none() {
            let left = deadline.saturating_duration_since(Instant::now());
            if left.is_zero() {
                return None;
            }
            let (g, _) = self.shared.done.wait_timeout(guard, left).unwrap();
            guard = g;
        }
        guard.clone()
    }

    /// Ask the loop to exit without treating it as primary death.
    pub fn stop(&self) {
        self.shared.stop.store(true, Ordering::SeqCst);
    }

    /// Wait for the loop thread to finish.
    pub fn join(mut self) -> Option<FailoverOutcome> {
        if let Some(j) = self.join.take() {
            let _ = j.join();
        }
        self.outcome()
    }
}

impl Drop for FollowerHandle {
    fn drop(&mut self) {
        self.stop();
        if let Some(j) = self.join.take() {
            let _ = j.join();
        }
    }
}

impl FollowerConn {
    /// Connect to a primary's replication port and catch up: send
    /// `Hello` with this node's [`FollowerIdentity`] and the highest
    /// sequence number it already holds (use [`HAVE_NOTHING`] when it
    /// holds no state), then adopt whatever the primary ships — a full
    /// snapshot through [`Registry::adopt_state`], or nothing but a
    /// queued WAL tail when the local lineage suffices. A primary that
    /// already has a follower under the same id refuses with
    /// [`ReplError::Denied`].
    ///
    /// `term` is the highest replication term this node has observed
    /// (its gate's [`ReplGate::term`]); the primary fences itself if
    /// the Hello outranks it. Every call builds the connection from
    /// scratch — decoder, pending queue, snapshot buffer — so a retry
    /// after a mid-snapshot failure starts with no adoption state
    /// left over from the dead attempt.
    pub fn sync(
        addr: impl ToSocketAddrs,
        registry: Arc<Registry>,
        dataset: &str,
        identity: FollowerIdentity,
        have_seq: u64,
        term: u64,
        cfg: ReplConfig,
    ) -> Result<(FollowerConn, SyncReport), ReplError> {
        let stream = TcpStream::connect(addr).map_err(ReplError::Io)?;
        stream.set_nodelay(true)?;
        stream.set_read_timeout(Some(cfg.heartbeat_timeout))?;
        let primary_addr = stream
            .peer_addr()
            .map(|a| a.to_string())
            .unwrap_or_default();
        if !link_up(&cfg.faults, &primary_addr) {
            // The fault plan has this link severed: fail exactly like
            // an unreachable primary would.
            return Err(ReplError::Io(std::io::Error::new(
                std::io::ErrorKind::ConnectionRefused,
                "link cut by fault plan",
            )));
        }
        let mut conn = FollowerConn {
            stream,
            dec: FrameDecoder::with_max_payload(cfg.max_payload),
            scratch: vec![0u8; 64 * 1024],
            pending: VecDeque::new(),
            registry,
            dataset: dataset.to_string(),
            cfg,
            applied_seq: if have_seq == HAVE_NOTHING {
                0
            } else {
                have_seq
            },
            next_id: 0,
            identity,
            primary_addr,
            snap_buf: Vec::new(),
        };
        conn.send(&ReplMsg::Hello {
            follower_id: conn.identity.id,
            have_seq,
            term,
            addr: conn.identity.addr.clone(),
            repl_addr: conn.identity.repl_addr.clone(),
            members: conn.cfg.members.members.clone(),
        })?;

        let first = conn.recv()?;
        let report = match first {
            ReplMsg::SnapBegin {
                applied_seq,
                total_len,
                chunk_count,
            } => {
                let (bytes, entries) =
                    conn.receive_snapshot(applied_seq, total_len, chunk_count)?;
                SyncReport {
                    adopted_snapshot: true,
                    snapshot_bytes: bytes,
                    entries,
                    applied_seq,
                }
            }
            msg @ (ReplMsg::WalRec { .. } | ReplMsg::Heartbeat { .. }) => {
                // Tail-only (or already-current) catch-up: the state we
                // hold is the base; hand the message to the stream loop.
                conn.pending.push_back(msg);
                SyncReport {
                    adopted_snapshot: false,
                    snapshot_bytes: 0,
                    entries: 0,
                    applied_seq: conn.applied_seq,
                }
            }
            ReplMsg::Deny { reason } => return Err(ReplError::Denied(reason)),
            other => {
                return Err(ReplError::Protocol(format!(
                    "expected snapshot or stream after Hello, got opcode {:#04x}",
                    other.opcode()
                )))
            }
        };
        conn.send(&ReplMsg::Ack {
            applied_seq: conn.applied_seq,
        })?;
        Ok((conn, report))
    }

    /// Watermark after the catch-up phase.
    pub fn applied_seq(&self) -> u64 {
        self.applied_seq
    }

    /// Spawn the streaming loop: apply records, ack progress (records
    /// *and* heartbeats, so the primary's liveness eviction sees an
    /// idle-but-healthy follower as alive), install refreshed serving
    /// state via `on_apply(seq)`, and on primary death run the
    /// failover election — flipping `gate` to [`Role::Promoted`] iff
    /// this follower wins it and every live peer confirms.
    pub fn run<F>(self, gate: Arc<ReplGate>, on_apply: F) -> FollowerHandle
    where
        F: Fn(u64) + Send + 'static,
    {
        // A successful (re-)attach to a live primary ends any earlier
        // no-quorum episode: this node is back inside the partition
        // that holds the writer.
        gate.set_quorum_status(0, 0, false);
        let shared = Arc::new(FollowerShared {
            stop: AtomicBool::new(false),
            applied_seq: AtomicU64::new(self.applied_seq),
            outcome: Mutex::new(None),
            done: Condvar::new(),
        });
        let thread_shared = Arc::clone(&shared);
        let join = std::thread::Builder::new()
            .name("lbc-repl-follow".to_string())
            .spawn(move || {
                let outcome = stream_loop(self, gate, on_apply, &thread_shared);
                *thread_shared.outcome.lock().unwrap() = Some(outcome);
                thread_shared.done.notify_all();
            })
            .expect("spawn follower thread");
        FollowerHandle {
            shared,
            join: Some(join),
        }
    }

    fn send(&mut self, msg: &ReplMsg) -> Result<(), ReplError> {
        let id = self.next_id;
        self.next_id += 1;
        send_msg(&mut self.stream, msg, id)
    }

    fn recv(&mut self) -> Result<ReplMsg, ReplError> {
        if let Some(msg) = self.pending.pop_front() {
            return Ok(msg);
        }
        recv_msg(&mut self.stream, &mut self.dec, &mut self.scratch)
    }

    /// Receive `chunk_count` chunks + `SnapEnd`, verify length and
    /// stream CRC, parse, and adopt into the registry. Returns the
    /// byte count and adopted entry count.
    fn receive_snapshot(
        &mut self,
        applied_seq: u64,
        total_len: u64,
        chunk_count: u32,
    ) -> Result<(u64, usize), ReplError> {
        if total_len > 1 << 40 {
            return Err(ReplError::Protocol(format!(
                "implausible snapshot length {total_len}"
            )));
        }
        // Take the buffer empty. On any error below it is simply
        // dropped, so a retry's reception never starts with a dead
        // attempt's partial prefix. Reserve modestly: `total_len` is
        // peer-controlled until the stream CRC verifies.
        self.snap_buf.clear();
        let mut bytes = std::mem::take(&mut self.snap_buf);
        bytes.reserve((total_len as usize).min(4 << 20));
        for _ in 0..chunk_count {
            match self.recv()? {
                ReplMsg::SnapChunk { offset, bytes: b } => {
                    if offset != bytes.len() as u64 {
                        return Err(ReplError::Protocol(format!(
                            "snapshot chunk at offset {offset}, expected {}",
                            bytes.len()
                        )));
                    }
                    bytes.extend_from_slice(&b);
                }
                other => {
                    return Err(ReplError::Protocol(format!(
                        "expected snapshot chunk, got opcode {:#04x}",
                        other.opcode()
                    )))
                }
            }
        }
        let crc = match self.recv()? {
            ReplMsg::SnapEnd { crc64 } => crc64,
            other => {
                return Err(ReplError::Protocol(format!(
                    "expected snapshot end, got opcode {:#04x}",
                    other.opcode()
                )))
            }
        };
        if bytes.len() as u64 != total_len {
            return Err(ReplError::Protocol(format!(
                "snapshot length mismatch: announced {total_len}, received {}",
                bytes.len()
            )));
        }
        if format::crc64(&bytes) != crc {
            return Err(ReplError::Protocol(
                "snapshot stream checksum mismatch".to_string(),
            ));
        }
        let state = parse_snapshot(&bytes)?;
        if state.applied_seq != applied_seq {
            return Err(ReplError::Protocol(format!(
                "snapshot watermark {} disagrees with SnapBegin {applied_seq}",
                state.applied_seq
            )));
        }
        let entry_count = state.entries.len();
        self.registry
            .adopt_state(&self.dataset, state.graph, state.entries, applied_seq);
        self.applied_seq = applied_seq;
        bytes.clear();
        self.snap_buf = bytes; // keep the capacity for a later resync
        Ok((total_len, entry_count))
    }
}

/// The follower's streaming loop body (runs on its own thread).
fn stream_loop<F>(
    mut conn: FollowerConn,
    gate: Arc<ReplGate>,
    on_apply: F,
    shared: &FollowerShared,
) -> FailoverOutcome
where
    F: Fn(u64),
{
    // Poll in short slices so `stop` is honoured promptly; actual
    // death is declared only after `heartbeat_timeout` of silence.
    let poll = conn
        .cfg
        .heartbeat_interval
        .min(Duration::from_millis(100))
        .max(Duration::from_millis(1));
    let _ = conn.stream.set_read_timeout(Some(poll));
    let timeout = conn.cfg.heartbeat_timeout;
    // Vote-grace window: deny promotion votes while the primary was
    // heard from this recently. Two heartbeats longer than the
    // primary's own step-down lease (`heartbeat_timeout` of missing
    // acks), because the primary's last-ack clock can lag our
    // last-contact clock by an in-flight ack: a partitioned primary
    // must provably turn read-only before any vote we grant can
    // produce a second writer.
    gate.set_liveness_window(timeout + conn.cfg.heartbeat_interval * 2);
    gate.note_primary_contact();
    let mut last_msg = Instant::now();
    let mut last_roster: Vec<PeerLag> = Vec::new();
    loop {
        if shared.stop.load(Ordering::SeqCst) {
            return FailoverOutcome::Stopped {
                applied_seq: conn.applied_seq,
            };
        }
        if !link_up(&conn.cfg.faults, &conn.primary_addr) {
            // The fault plan just severed this link: behave exactly
            // like a partitioned follower — drop the stream and start
            // failover (a real partition would get here one heartbeat
            // timeout later; cutting now keeps chaos schedules tight).
            let _ = conn.stream.shutdown(std::net::Shutdown::Both);
            return failover(&mut conn, &gate, &last_roster);
        }
        let msg = match conn.recv() {
            Ok(m) => m,
            Err(ReplError::Timeout) => {
                if last_msg.elapsed() >= timeout {
                    if let Some(obs) = gate.obs() {
                        obs.counter("repl_heartbeats_missed_total").inc();
                    }
                    return failover(&mut conn, &gate, &last_roster);
                }
                continue;
            }
            Err(ReplError::Disconnected) | Err(ReplError::Io(_)) => {
                // A kill -9 lands here: EOF or reset, no timeout wait.
                return failover(&mut conn, &gate, &last_roster);
            }
            Err(e) => return FailoverOutcome::Error(e.to_string()),
        };
        last_msg = Instant::now();
        // Term fencing, before anything else the frame says is
        // believed: a frame below this node's observed term is a
        // deposed primary still streaming — sever the link and fail
        // over (the election poll will find the real winner to
        // re-follow). A frame *above* folds our view forward first,
        // so reads served from this gate are never attributed to a
        // term older than the stream feeding them.
        if let ReplMsg::WalRec { term, .. } | ReplMsg::Heartbeat { term, .. } = &msg {
            let term = *term;
            let seen = gate.term();
            if term < seen {
                if let Some(obs) = gate.obs() {
                    obs.counter("repl_stale_term_frames_total").inc();
                    obs.events.record(
                        EventKind::TermFenced,
                        format!("severed stream at term {term}, node has seen {seen}"),
                    );
                }
                let _ = conn.stream.shutdown(std::net::Shutdown::Both);
                return failover(&mut conn, &gate, &last_roster);
            }
            gate.observe_term(term);
        }
        gate.note_primary_contact();
        match msg {
            ReplMsg::WalRec { term: _, bytes } => {
                let rec = match decode_record(&bytes) {
                    Ok(r) => r,
                    Err(e) => return FailoverOutcome::Error(e.to_string()),
                };
                if rec.seq <= conn.applied_seq {
                    continue; // catch-up overlap duplicate
                }
                if rec.seq != conn.applied_seq + 1 {
                    return FailoverOutcome::Error(format!(
                        "sequence gap: at {}, received {}",
                        conn.applied_seq, rec.seq
                    ));
                }
                if let Err(e) = conn.registry.apply_replicated(&conn.dataset, &rec) {
                    return FailoverOutcome::Error(e.to_string());
                }
                conn.applied_seq = rec.seq;
                shared.applied_seq.store(rec.seq, Ordering::Release);
                on_apply(rec.seq);
                if conn
                    .send(&ReplMsg::Ack {
                        applied_seq: rec.seq,
                    })
                    .is_err()
                {
                    return failover(&mut conn, &gate, &last_roster);
                }
            }
            ReplMsg::Heartbeat {
                term,
                roster,
                members,
                ..
            } => {
                last_roster = roster;
                if conn.cfg.members.is_empty() && !members.is_empty() {
                    // Adopt the primary's configured membership so a
                    // follower started without `--members` still runs
                    // quorum-mode elections. A locally configured
                    // membership is never overridden. Published
                    // through the gate so the serve loop re-elects
                    // under the same quorum rule and persists the
                    // list for restarts (and so `repl-status` shows
                    // the member count immediately).
                    conn.cfg.members = Membership::from_members(members);
                    gate.set_adopted_members(&conn.cfg.members.members, term);
                    gate.set_member_count(conn.cfg.members.len());
                }
                // Ack the heartbeat too: the primary evicts followers
                // whose acks stall, and an idle stream carries no
                // records to ack.
                let seq = conn.applied_seq;
                if conn.send(&ReplMsg::Ack { applied_seq: seq }).is_err() {
                    return failover(&mut conn, &gate, &last_roster);
                }
            }
            other => {
                return FailoverOutcome::Error(format!(
                    "unexpected opcode {:#04x} on the replication stream",
                    other.opcode()
                ))
            }
        }
    }
}

/// Primary is dead: run the failover election over the membership the
/// last heartbeat named. The roster's sequence numbers are only hints
/// — [`run_election`] re-polls every peer live (and this node's own
/// entry is overridden with its true `applied_seq`, which the stale
/// roster may undercount) — what the roster contributes is *who to
/// ask and where*. A follower that never saw a heartbeat (primary
/// died mid-handshake) elects over itself alone — the single-follower
/// bootstrap case.
fn failover(conn: &mut FollowerConn, gate: &ReplGate, roster: &[PeerLag]) -> FailoverOutcome {
    // Deliberately NOT `gate.note_primary_lost()` here: an EOF or a
    // severed link proves only that *this stream* died, not that the
    // primary stopped serving — a partitioned primary keeps accepting
    // writes until its own lease expires, and a primary that evicted
    // us for slow acks is entirely healthy. Votes this node grants
    // must keep waiting out the grace window measured from the last
    // frame actually received, or two writers can overlap.
    let mut members = roster.to_vec();
    match members
        .iter_mut()
        .find(|p| p.follower_id == conn.identity.id)
    {
        Some(me) => {
            // Trust local truth over the roster's last-acked view.
            me.applied_seq = conn.applied_seq;
            me.addr = conn.identity.addr.clone();
            me.repl_addr = conn.identity.repl_addr.clone();
        }
        None => members.push(PeerLag {
            follower_id: conn.identity.id,
            applied_seq: conn.applied_seq,
            addr: conn.identity.addr.clone(),
            repl_addr: conn.identity.repl_addr.clone(),
        }),
    }
    if let Some(obs) = gate.obs() {
        obs.counter("repl_elections_started_total").inc();
        obs.events.record(
            EventKind::ElectionStarted,
            format!(
                "node {} at seq {} over {} peers",
                conn.identity.id,
                conn.applied_seq,
                members.len()
            ),
        );
    }
    match run_election(
        conn.identity.id,
        conn.applied_seq,
        Some(gate),
        &members,
        &conn.cfg,
    ) {
        ElectionOutcome::Won { term } => {
            // Reconciliation *before* the role flip: pull any WAL
            // suffix a live loser holds beyond us and apply it through
            // the deterministic replicated path, so a record the dead
            // primary fanned to someone else survives the failover.
            // Only after that may the gate open for writes.
            conn.applied_seq = reconcile(
                &conn.registry,
                &conn.dataset,
                conn.identity.id,
                conn.applied_seq,
                &members,
                &conn.cfg,
            );
            gate.set_quorum_status(0, 0, false);
            if let Some(obs) = gate.obs() {
                obs.counter("repl_elections_won_total").inc();
                obs.events.record(
                    EventKind::ElectionWon,
                    format!(
                        "node {} at seq {} term {term}",
                        conn.identity.id, conn.applied_seq
                    ),
                );
            }
            // The election's self-grants already folded `term` into
            // the gate, so by the time the role flips to writable the
            // gate's term *is* the won term — a monitor can never
            // sample (writable, stale term) on this node.
            gate.set_role(Role::Promoted);
            FailoverOutcome::Promoted {
                applied_seq: conn.applied_seq,
            }
        }
        ElectionOutcome::Lost {
            winner,
            winner_addr,
            winner_repl,
        } => {
            if let Some(obs) = gate.obs() {
                obs.counter("repl_elections_lost_total").inc();
                obs.events.record(
                    EventKind::ElectionLost,
                    format!("node {} lost to {winner}", conn.identity.id),
                );
            }
            FailoverOutcome::NotPromoted {
                winner,
                applied_seq: conn.applied_seq,
                winner_addr,
                winner_repl,
                members,
            }
        }
        ElectionOutcome::Inconclusive => FailoverOutcome::Undecided {
            applied_seq: conn.applied_seq,
            members,
        },
        ElectionOutcome::NoQuorum {
            votes_seen,
            votes_needed,
        } => {
            gate.set_quorum_status(votes_seen, votes_needed, true);
            FailoverOutcome::NoQuorum {
                applied_seq: conn.applied_seq,
                members,
                votes_seen,
                votes_needed,
            }
        }
    }
}

/// Promotion-time WAL reconciliation: live-poll every reachable peer
/// (roster ∪ membership), and from the one with the highest
/// `applied_seq` beyond `applied_seq` pull the missing suffix
/// ([`NetClient::wal_pull`]) and apply it record by record through
/// [`Registry::apply_replicated`] — the same deterministic path the
/// stream uses, so the adopted records are bit-for-bit what the donor
/// holds. Falls back to the next-best donor on any failure; a donor
/// that cannot serve the suffix contiguously returns nothing and is
/// skipped. Best-effort by design: if every donor is gone the winner
/// proceeds with what it has (the pre-reconciliation status quo).
/// Returns the post-reconciliation watermark.
///
/// Every election winner must run this **before** opening its gate for
/// writes; [`FollowerConn::run`]'s failover path does, and the CLI's
/// re-election loop calls it directly.
pub fn reconcile(
    registry: &Registry,
    dataset: &str,
    self_id: u64,
    mut applied_seq: u64,
    roster: &[PeerLag],
    cfg: &ReplConfig,
) -> u64 {
    let probe = cfg.heartbeat_timeout.max(Duration::from_millis(50));
    // Donor addresses: the roster first, then membership entries for
    // ids the roster never named (a peer that joined after our last
    // heartbeat, or a roster-less bootstrap).
    let mut targets: Vec<(u64, String)> = roster
        .iter()
        .filter(|p| p.follower_id != self_id && !p.addr.is_empty())
        .map(|p| (p.follower_id, p.addr.clone()))
        .collect();
    for m in &cfg.members.members {
        if m.id != self_id && !targets.iter().any(|(id, _)| *id == m.id) {
            targets.push((m.id, m.addr.clone()));
        }
    }

    let mut donors: Vec<(u64, u64, NetClient)> = Vec::new();
    for (id, addr) in targets {
        if !link_up(&cfg.faults, &addr) {
            continue;
        }
        let Ok(sa) = addr.parse::<std::net::SocketAddr>() else {
            continue;
        };
        let Ok(mut client) = NetClient::connect_timeout(&sa, probe) else {
            continue;
        };
        let Ok(info) = client.info() else { continue };
        if info.applied_seq > applied_seq {
            donors.push((info.applied_seq, id, client));
        }
    }
    // Highest watermark first; ties to the lowest id, matching the
    // promotion order's determinism.
    donors.sort_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));

    for (donor_seq, _id, mut client) in donors {
        if donor_seq <= applied_seq {
            break; // an earlier donor already covered everything
        }
        let Ok(records) = client.wal_pull(applied_seq) else {
            continue;
        };
        for bytes in &records {
            let Ok(rec) = decode_record(bytes) else { break };
            if rec.seq <= applied_seq {
                continue; // overlap with what we already hold
            }
            if rec.seq != applied_seq + 1 {
                break; // gap: donor could not serve contiguously
            }
            if registry.apply_replicated(dataset, &rec).is_err() {
                break;
            }
            applied_seq = rec.seq;
        }
        if applied_seq >= donor_seq {
            break; // fully caught up to the best live watermark
        }
        // Partial progress is kept — the applied prefix is valid
        // lineage — and the next donor may hold the rest.
    }
    applied_seq
}
