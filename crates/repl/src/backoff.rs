//! Jittered exponential backoff with an optional deadline.
//!
//! Every retry loop in the replication stack used to sleep a fixed
//! interval — which synchronises competing candidates (two followers
//! that noticed primary death in the same heartbeat re-poll in
//! lockstep forever) and polls exactly as hard under sustained failure
//! as on the first miss. This helper replaces those loops with the
//! standard *equal jitter* scheme: each delay is `cur/2 + uniform(0,
//! cur/2)` with `cur` doubling up to a cap, deterministic per seed
//! (the chaos harness replays schedules byte-for-byte). The expected
//! first delay equals `base × ¾`, so swapping a `sleep(base)` loop for
//! `Backoff::new(base, ..)` leaves happy-path latency unchanged to
//! within a tick.

use std::time::{Duration, Instant};

use lbc_faults::SplitMix64;

/// Jittered exponential retry timer. Not `Clone` on purpose: sharing
/// one across loops would correlate their jitter.
#[derive(Debug)]
pub struct Backoff {
    base: Duration,
    cap: Duration,
    cur: Duration,
    deadline: Option<Instant>,
    rng: SplitMix64,
}

impl Backoff {
    /// `base` is the first (pre-jitter) delay, `cap` the growth limit;
    /// `seed` makes the jitter sequence reproducible — seed it with
    /// something node-unique (the follower id) so competing nodes
    /// desynchronise.
    pub fn new(base: Duration, cap: Duration, seed: u64) -> Backoff {
        let base = base.max(Duration::from_millis(1));
        Backoff {
            base,
            cap: cap.max(base),
            cur: base,
            deadline: None,
            rng: SplitMix64::new(seed),
        }
    }

    /// Refuse to sleep past `deadline`: once it passes, [`sleep`]
    /// returns `false` and the caller's loop should give up.
    ///
    /// [`sleep`]: Backoff::sleep
    pub fn with_deadline(mut self, deadline: Instant) -> Backoff {
        self.deadline = Some(deadline);
        self
    }

    /// Drop back to the initial delay — call after a success so the
    /// next failure starts the ramp from scratch.
    pub fn reset(&mut self) {
        self.cur = self.base;
    }

    /// The next delay: equal jitter over the current stage, then
    /// double the stage (up to the cap). `None` once the deadline has
    /// passed; a delay that would overshoot the deadline is truncated
    /// to land exactly on it.
    pub fn next_delay(&mut self) -> Option<Duration> {
        let half = self.cur / 2;
        let jitter_ns = if half.is_zero() {
            0
        } else {
            self.rng.below(half.as_nanos() as u64 + 1)
        };
        let mut delay = half + Duration::from_nanos(jitter_ns);
        self.cur = (self.cur * 2).min(self.cap);
        if let Some(deadline) = self.deadline {
            let left = deadline.checked_duration_since(Instant::now())?;
            delay = delay.min(left);
        }
        Some(delay)
    }

    /// Sleep the next delay. `false` (without sleeping) once the
    /// deadline has passed.
    pub fn sleep(&mut self) -> bool {
        match self.next_delay() {
            Some(d) => {
                std::thread::sleep(d);
                true
            }
            None => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delays_grow_to_the_cap_and_stay_jittered_in_range() {
        let base = Duration::from_millis(10);
        let cap = Duration::from_millis(80);
        let mut b = Backoff::new(base, cap, 7);
        let mut prev_stage = base;
        for _ in 0..10 {
            let stage = prev_stage; // the stage this draw samples from
            let d = b.next_delay().unwrap();
            assert!(d >= stage / 2, "delay {d:?} below half-stage {stage:?}");
            assert!(d <= stage, "delay {d:?} above stage {stage:?}");
            prev_stage = (stage * 2).min(cap);
        }
        // After enough doublings every draw samples the cap's range.
        let d = b.next_delay().unwrap();
        assert!(d >= cap / 2 && d <= cap);
    }

    #[test]
    fn same_seed_same_schedule_different_seed_differs() {
        let mk = |seed| {
            let mut b = Backoff::new(Duration::from_millis(10), Duration::from_millis(100), seed);
            (0..12).map(|_| b.next_delay().unwrap()).collect::<Vec<_>>()
        };
        assert_eq!(mk(3), mk(3));
        assert_ne!(mk(3), mk(4));
    }

    #[test]
    fn reset_restarts_the_ramp() {
        let mut b = Backoff::new(Duration::from_millis(8), Duration::from_millis(64), 1);
        for _ in 0..6 {
            b.next_delay().unwrap();
        }
        b.reset();
        let d = b.next_delay().unwrap();
        assert!(d <= Duration::from_millis(8));
    }

    #[test]
    fn expired_deadline_refuses_to_sleep() {
        let mut b = Backoff::new(Duration::from_millis(5), Duration::from_millis(5), 9)
            .with_deadline(Instant::now() - Duration::from_millis(1));
        assert_eq!(b.next_delay(), None);
        assert!(!b.sleep());
    }

    #[test]
    fn delay_truncates_to_the_deadline() {
        let mut b = Backoff::new(Duration::from_secs(10), Duration::from_secs(10), 2)
            .with_deadline(Instant::now() + Duration::from_millis(20));
        let d = b.next_delay().unwrap();
        assert!(d <= Duration::from_millis(20));
    }
}
