//! Measure the client-visible write-latency cost of `--ack-quorum`.
//!
//! Brings up an in-process 3-node replication group twice — once with
//! fire-and-forget writes (the default), once with majority-ack writes
//! (`--ack-quorum`) — and times `N` sequential `submit_delta`
//! round-trips against the primary's query port in each mode. The
//! loopback numbers bound the *mechanism* cost (one extra
//! follower-ack round on the WAL stream plus the primary-side wait);
//! on a real network the ack round inherits the follower RTT, so the
//! gap grows with the slower of the two fastest followers.
//!
//! Run with:
//!
//! ```text
//! cargo run --release -p lbc-repl --example ack_latency
//! ```

use std::net::TcpListener;
use std::sync::Arc;
use std::time::{Duration, Instant};

use lbc_core::LbConfig;
use lbc_graph::{generators, GraphDelta};
use lbc_net::{NetClient, NetServer, ReplGate, Role, ServeContext, ServerConfig};
use lbc_obs::Obs;
use lbc_repl::{FollowerConn, FollowerIdentity, Membership, ReplConfig, ReplServer, HAVE_NOTHING};
use lbc_runtime::{Registry, WorkerPool};

const DATASET: &str = "ack-latency";
const WARMUP: u32 = 50;
const SAMPLES: u32 = 500;

fn seeded_registry() -> Arc<Registry> {
    let registry = Arc::new(Registry::with_capacity(8));
    let (g, _) = generators::ring_of_cliques(3, 12, 0).unwrap();
    registry.insert_graph(DATASET, g);
    registry
        .get_or_cluster(DATASET, &LbConfig::new(1.0 / 3.0, 60).with_seed(7))
        .unwrap();
    registry
}

fn flip_delta(i: u32) -> GraphDelta {
    let mut d = GraphDelta::new();
    d.add_edge(i % 5, 12 + (i % 7));
    d
}

fn percentile(sorted: &[Duration], p: f64) -> Duration {
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[idx]
}

/// One trial: seeded primary + two snapshot-synced followers, all in
/// one fixed membership (quorum = 2), then `SAMPLES` sequential write
/// round-trips timed from a plain [`NetClient`].
fn run_trial(ack_quorum: bool) -> Vec<Duration> {
    // Bind everything first so the membership spec is final.
    let query_listeners: Vec<TcpListener> = (0..3)
        .map(|_| TcpListener::bind("127.0.0.1:0").unwrap())
        .collect();
    let repl_listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let repl_addr = repl_listener.local_addr().unwrap().to_string();
    let spec = query_listeners
        .iter()
        .enumerate()
        .map(|(i, l)| format!("{}@{}", i as u64 + 1, l.local_addr().unwrap()))
        .collect::<Vec<_>>()
        .join(",");
    let members = Membership::parse(&spec).unwrap();
    let cfg = ReplConfig {
        heartbeat_interval: Duration::from_millis(30),
        heartbeat_timeout: Duration::from_millis(300),
        members,
        ack_quorum,
        ..Default::default()
    };

    // Primary: node 1, serving replication and the query port.
    let registry = seeded_registry();
    let gate = Arc::new(ReplGate::with_id(Role::Primary, 1));
    gate.set_member_count(3);
    gate.set_repl_addr(&repl_addr);
    let obs = Arc::new(Obs::new());
    gate.attach_obs(Arc::clone(&obs));
    let srv = ReplServer::from_listener(repl_listener, Arc::clone(&registry), DATASET, cfg.clone())
        .unwrap();
    srv.set_gate(Arc::clone(&gate));
    let query_addr = query_listeners[0].local_addr().unwrap();
    let mut listeners = query_listeners.into_iter();
    let _net = NetServer::serve_listener(
        listeners.next().unwrap(),
        ServeContext {
            registry: Arc::clone(&registry),
            pool: Arc::new(WorkerPool::new(2)),
            dataset: DATASET.to_string(),
            cfg: LbConfig::new(1.0 / 3.0, 60).with_seed(7),
            obs,
        },
        ServerConfig::default(),
        Arc::clone(&gate),
    )
    .unwrap();

    // Followers 2 and 3: snapshot-sync then stream. Acks ride the
    // replication connection, so no query servers are needed here —
    // the bound listeners only pin the membership addresses.
    let mut followers = Vec::new();
    for (node, q) in listeners.enumerate() {
        let id = node as u64 + 2;
        let f_registry = Arc::new(Registry::with_capacity(8));
        let f_gate = Arc::new(ReplGate::with_id(Role::Follower, id));
        f_gate.set_member_count(3);
        let identity = FollowerIdentity {
            id,
            addr: q.local_addr().unwrap().to_string(),
            repl_addr: String::new(),
        };
        let (conn, _) = FollowerConn::sync(
            repl_addr.as_str(),
            Arc::clone(&f_registry),
            DATASET,
            identity,
            HAVE_NOTHING,
            f_gate.term(),
            cfg.clone(),
        )
        .expect("follower sync");
        followers.push((conn.run(Arc::clone(&f_gate), |_| {}), f_registry, q));
    }

    let mut client = NetClient::connect_timeout(&query_addr, Duration::from_secs(5)).unwrap();
    for i in 0..WARMUP {
        client.submit_delta(&flip_delta(i)).unwrap();
    }
    let mut samples = Vec::with_capacity(SAMPLES as usize);
    for i in 0..SAMPLES {
        let t = Instant::now();
        client.submit_delta(&flip_delta(WARMUP + i)).unwrap();
        samples.push(t.elapsed());
    }

    for (handle, _, _) in &followers {
        handle.stop();
    }
    drop(srv);
    samples.sort();
    samples
}

fn report(label: &str, sorted: &[Duration]) {
    println!(
        "{label:>14}  p50 {:>8.1?}  p95 {:>8.1?}  p99 {:>8.1?}  max {:>8.1?}",
        percentile(sorted, 0.50),
        percentile(sorted, 0.95),
        percentile(sorted, 0.99),
        sorted[sorted.len() - 1],
    );
}

fn main() {
    println!(
        "ack-quorum write latency, 3-node loopback group, {SAMPLES} sequential \
         submit_delta round-trips after {WARMUP} warm-up writes\n"
    );
    let plain = run_trial(false);
    report("fire-and-forget", &plain);
    let quorum = run_trial(true);
    report("ack-quorum", &quorum);
    println!(
        "\nquorum/plain p50 ratio: {:.2}x",
        percentile(&quorum, 0.50).as_secs_f64() / percentile(&plain, 0.50).as_secs_f64().max(1e-9)
    );
}
