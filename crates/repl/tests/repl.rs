//! In-process primary/follower integration: catch-up, streaming,
//! bit-for-bit identity, WAL-tail reconnect, and promotion.

use std::sync::Arc;
use std::time::{Duration, Instant};

use lbc_core::LbConfig;
use lbc_graph::{generators, GraphDelta};
use lbc_net::{ReplGate, ReplMsg, Role};
use lbc_repl::{
    FailoverOutcome, FollowerConn, FollowerIdentity, ReplConfig, ReplServer, HAVE_NOTHING,
};
use lbc_runtime::{DeltaPolicy, Registry};

const DATASET: &str = "ring";

fn test_cfg() -> ReplConfig {
    ReplConfig {
        heartbeat_interval: Duration::from_millis(20),
        heartbeat_timeout: Duration::from_millis(400),
        chunk_len: 512, // small chunks so every snapshot exercises reassembly
        ..Default::default()
    }
}

fn primary_registry() -> (Arc<Registry>, LbConfig) {
    let registry = Arc::new(Registry::with_capacity(8));
    let (g, _) = generators::ring_of_cliques(3, 12, 0).unwrap();
    registry.insert_graph(DATASET, g);
    let cfg = LbConfig::new(1.0 / 3.0, 60).with_seed(7);
    registry.get_or_cluster(DATASET, &cfg).unwrap();
    (registry, cfg)
}

fn flip_delta(i: u32) -> GraphDelta {
    let mut d = GraphDelta::new();
    d.add_edge(i % 5, 12 + (i % 7));
    d
}

fn wait_until(deadline: Duration, mut cond: impl FnMut() -> bool) -> bool {
    let start = Instant::now();
    while start.elapsed() < deadline {
        if cond() {
            return true;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    cond()
}

fn assert_mirrored(primary: &Registry, follower: &Registry, cfg: &LbConfig) {
    let pg = primary.graph(DATASET).unwrap();
    let fg = follower.graph(DATASET).unwrap();
    assert_eq!(pg.n(), fg.n());
    assert_eq!(pg.m(), fg.m());
    let po = primary.cached(DATASET, cfg).expect("primary cached");
    let fo = follower.cached(DATASET, cfg).expect("follower cached");
    assert_eq!(po.bit_diff(&fo), None, "follower output diverged");
}

#[test]
fn follower_adopts_snapshot_and_mirrors_stream_bit_for_bit() {
    let (primary, cfg) = primary_registry();
    let server =
        ReplServer::bind("127.0.0.1:0", Arc::clone(&primary), DATASET, test_cfg()).unwrap();

    let follower = Arc::new(Registry::with_capacity(8));
    let (conn, report) = FollowerConn::sync(
        server.addr(),
        Arc::clone(&follower),
        DATASET,
        FollowerIdentity::bare(1),
        HAVE_NOTHING,
        0,
        test_cfg(),
    )
    .unwrap();
    assert!(report.adopted_snapshot);
    assert!(report.snapshot_bytes > 0);
    assert_eq!(report.entries, 1);
    assert_eq!(report.applied_seq, 0);
    // The adopted state is already bit-identical before any streaming.
    assert_mirrored(&primary, &follower, &cfg);

    let gate = Arc::new(ReplGate::new(Role::Follower));
    let handle = conn.run(Arc::clone(&gate), |_seq| {});

    for i in 0..4 {
        primary
            .apply_delta(
                DATASET,
                &flip_delta(i),
                &DeltaPolicy::WarmRefresh(Default::default()),
            )
            .unwrap();
    }
    assert!(
        wait_until(Duration::from_secs(10), || handle.applied_seq() == 4),
        "follower stuck at seq {}",
        handle.applied_seq()
    );
    assert_eq!(follower.applied_seq(DATASET), 4);
    assert_mirrored(&primary, &follower, &cfg);
    assert_eq!(gate.role(), Role::Follower);

    // The primary's roster sees the follower's acked progress.
    assert!(wait_until(Duration::from_secs(10), || {
        server
            .status()
            .peers
            .iter()
            .any(|p| p.follower_id == 1 && p.applied_seq == 4)
    }));
    handle.stop();
    assert!(matches!(
        handle.join(),
        Some(FailoverOutcome::Stopped { applied_seq: 4 })
    ));
}

#[test]
fn reconnect_with_live_lineage_skips_the_snapshot() {
    let (primary, cfg) = primary_registry();
    // Attach a store so the primary keeps a WAL tail to resend.
    let dir = std::env::temp_dir().join(format!("lbc-repl-tail-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    primary
        .attach_store(dir.to_str().unwrap(), lbc_runtime::SpillPolicy::OnEvict)
        .unwrap();
    primary.spill_to_store(DATASET).unwrap();
    let server =
        ReplServer::bind("127.0.0.1:0", Arc::clone(&primary), DATASET, test_cfg()).unwrap();

    // First sync + a couple of streamed records.
    let follower = Arc::new(Registry::with_capacity(8));
    let (conn, report) = FollowerConn::sync(
        server.addr(),
        Arc::clone(&follower),
        DATASET,
        FollowerIdentity::bare(2),
        HAVE_NOTHING,
        0,
        test_cfg(),
    )
    .unwrap();
    assert!(report.adopted_snapshot);
    let gate = Arc::new(ReplGate::new(Role::Follower));
    let handle = conn.run(Arc::clone(&gate), |_| {});
    for i in 0..2 {
        primary
            .apply_delta(
                DATASET,
                &flip_delta(i),
                &DeltaPolicy::WarmRefresh(Default::default()),
            )
            .unwrap();
    }
    assert!(wait_until(Duration::from_secs(10), || handle.applied_seq() == 2));
    handle.stop();
    handle.join();

    // Two more commits while the follower is away...
    for i in 2..4 {
        primary
            .apply_delta(
                DATASET,
                &flip_delta(i),
                &DeltaPolicy::WarmRefresh(Default::default()),
            )
            .unwrap();
    }
    // ...and the reconnect ships just the WAL tail, no snapshot.
    let (conn, report) = FollowerConn::sync(
        server.addr(),
        Arc::clone(&follower),
        DATASET,
        FollowerIdentity::bare(2),
        2,
        0,
        test_cfg(),
    )
    .unwrap();
    assert!(!report.adopted_snapshot);
    assert_eq!(report.snapshot_bytes, 0);
    let handle = conn.run(Arc::clone(&gate), |_| {});
    assert!(
        wait_until(Duration::from_secs(10), || handle.applied_seq() == 4),
        "tail catch-up stuck at {}",
        handle.applied_seq()
    );
    assert_mirrored(&primary, &follower, &cfg);
    handle.stop();
    handle.join();
    drop(server);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn sole_follower_promotes_on_primary_death() {
    let (primary, cfg) = primary_registry();
    let server =
        ReplServer::bind("127.0.0.1:0", Arc::clone(&primary), DATASET, test_cfg()).unwrap();

    let follower = Arc::new(Registry::with_capacity(8));
    let (conn, _) = FollowerConn::sync(
        server.addr(),
        Arc::clone(&follower),
        DATASET,
        FollowerIdentity::bare(3),
        HAVE_NOTHING,
        0,
        test_cfg(),
    )
    .unwrap();
    let gate = Arc::new(ReplGate::new(Role::Follower));
    let handle = conn.run(Arc::clone(&gate), |_| {});
    primary
        .apply_delta(
            DATASET,
            &flip_delta(0),
            &DeltaPolicy::WarmRefresh(Default::default()),
        )
        .unwrap();
    assert!(wait_until(Duration::from_secs(10), || handle.applied_seq() == 1));

    // Primary dies (drop closes the listener and every stream).
    drop(server);
    let outcome = handle
        .wait_outcome(Duration::from_secs(10))
        .expect("follower never noticed primary death");
    assert_eq!(outcome, FailoverOutcome::Promoted { applied_seq: 1 });
    assert_eq!(gate.role(), Role::Promoted);

    // The promoted state is exactly the pre-crash primary's, and it
    // accepts local mutations continuing the lineage.
    assert_mirrored(&primary, &follower, &cfg);
    follower
        .apply_delta(
            DATASET,
            &flip_delta(9),
            &DeltaPolicy::WarmRefresh(Default::default()),
        )
        .unwrap();
    assert_eq!(follower.applied_seq(DATASET), 2);
}

#[test]
fn status_probe_reports_role_and_roster() {
    let (primary, _cfg) = primary_registry();
    let server =
        ReplServer::bind("127.0.0.1:0", Arc::clone(&primary), DATASET, test_cfg()).unwrap();

    // Raw status probe against the replication port.
    use std::io::{Read, Write};
    let mut stream = std::net::TcpStream::connect(server.addr()).unwrap();
    let mut buf = Vec::new();
    ReplMsg::Status.encode(&mut buf, 1).unwrap();
    stream.write_all(&buf).unwrap();
    let mut dec = lbc_net::FrameDecoder::new();
    let mut scratch = [0u8; 4096];
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let status = loop {
        if let Some(frame) = dec.next_frame().unwrap() {
            match ReplMsg::from_frame(&frame).unwrap() {
                ReplMsg::StatusResp(s) => break s,
                other => panic!("expected StatusResp, got {other:?}"),
            }
        }
        let n = stream.read(&mut scratch).unwrap();
        assert!(n > 0);
        dec.push(&scratch[..n]);
    };
    assert_eq!(status.role, Role::Primary);
    assert_eq!(status.applied_seq, 0);
    assert!(status.peers.is_empty());
}

#[test]
fn duplicate_follower_id_is_denied() {
    let (primary, _cfg) = primary_registry();
    let server =
        ReplServer::bind("127.0.0.1:0", Arc::clone(&primary), DATASET, test_cfg()).unwrap();

    let follower = Arc::new(Registry::with_capacity(8));
    let (conn, _) = FollowerConn::sync(
        server.addr(),
        Arc::clone(&follower),
        DATASET,
        FollowerIdentity::bare(7),
        HAVE_NOTHING,
        0,
        test_cfg(),
    )
    .unwrap();
    let gate = Arc::new(ReplGate::new(Role::Follower));
    let _handle = conn.run(Arc::clone(&gate), |_| {});

    // A second Hello under the same id must be refused: duplicate ids
    // are the election's identity and would license dual promotion.
    let imposter = Arc::new(Registry::with_capacity(8));
    match FollowerConn::sync(
        server.addr(),
        imposter,
        DATASET,
        FollowerIdentity::bare(7),
        HAVE_NOTHING,
        0,
        test_cfg(),
    ) {
        Err(lbc_repl::ReplError::Denied(_)) => {}
        Err(other) => panic!("expected Denied, got {other:?}"),
        Ok(_) => panic!("duplicate follower id must be denied"),
    }
}

/// The split-brain regression: two followers with live query ports,
/// primary dies, and exactly one of them may promote — the other must
/// concede to it by name.
#[test]
fn two_followers_elect_exactly_one_winner() {
    use lbc_net::{NetServer, ServeContext, ServerConfig};
    use lbc_runtime::WorkerPool;

    let (primary, cfg) = primary_registry();
    let server =
        ReplServer::bind("127.0.0.1:0", Arc::clone(&primary), DATASET, test_cfg()).unwrap();

    // Each follower pre-binds its query listener so the address it
    // advertises in Hello answers election polls and votes.
    let mut nodes = Vec::new();
    for id in [1u64, 2] {
        let registry = Arc::new(Registry::with_capacity(8));
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let query_addr = listener.local_addr().unwrap().to_string();
        let (conn, _) = FollowerConn::sync(
            server.addr(),
            Arc::clone(&registry),
            DATASET,
            FollowerIdentity {
                id,
                addr: query_addr,
                repl_addr: String::new(),
            },
            HAVE_NOTHING,
            0,
            test_cfg(),
        )
        .unwrap();
        let gate = Arc::new(ReplGate::with_id(Role::Follower, id));
        let ctx = ServeContext::new(
            Arc::clone(&registry),
            Arc::new(WorkerPool::new(2)),
            DATASET,
            cfg.clone(),
        );
        let net =
            NetServer::serve_listener(listener, ctx, ServerConfig::default(), Arc::clone(&gate))
                .unwrap();
        let handle = conn.run(Arc::clone(&gate), |_| {});
        nodes.push((id, gate, net, handle));
    }

    primary
        .apply_delta(
            DATASET,
            &flip_delta(0),
            &DeltaPolicy::WarmRefresh(Default::default()),
        )
        .unwrap();
    for (_, _, _, handle) in &nodes {
        assert!(wait_until(Duration::from_secs(10), || {
            handle.applied_seq() == 1
        }));
    }
    // Let heartbeats carry the two-peer roster to both followers.
    assert!(wait_until(Duration::from_secs(10), || {
        let peers = server.status().peers;
        peers.len() == 2 && peers.iter().all(|p| p.applied_seq == 1)
    }));
    std::thread::sleep(test_cfg().heartbeat_interval * 5);

    // Primary dies; both followers run the election concurrently.
    drop(server);
    let mut promoted = Vec::new();
    let mut conceded = Vec::new();
    for (id, gate, _net, handle) in &nodes {
        match handle
            .wait_outcome(Duration::from_secs(20))
            .expect("follower never concluded its election")
        {
            FailoverOutcome::Promoted { applied_seq } => {
                assert_eq!(applied_seq, 1);
                assert_eq!(gate.role(), Role::Promoted);
                promoted.push(*id);
            }
            FailoverOutcome::NotPromoted { winner, .. } => {
                assert_eq!(gate.role(), Role::Follower);
                conceded.push((*id, winner));
            }
            other => panic!("follower {id} ended with {other:?}"),
        }
    }
    assert_eq!(promoted.len(), 1, "exactly one follower may promote");
    // Same seq on both: the deterministic order breaks the tie to the
    // lowest id, and the loser names the winner.
    assert_eq!(promoted, [1]);
    assert_eq!(conceded, [(2, 1)]);
}

/// The mid-snapshot EOF regression, with the tear injected rather than
/// raced: a primary that dies partway through the snapshot transfer
/// must leave the follower with NO partial state — `sync` fails typed
/// and the registry stays empty — and the next attempt, rebuilt from
/// scratch, adopts the full snapshot bit-for-bit. Each connection's
/// fate is drawn from a [`ScriptedIoFaults`] script (`Torn(1)` then
/// `Pass`), served by a scripted primary speaking the real wire
/// protocol, so a failing run is a reproducer.
#[test]
fn torn_snapshot_resync_adopts_clean_state() {
    use lbc_faults::{IoFault, IoFaultHook, ScriptedIoFaults};
    use lbc_net::FrameDecoder;
    use std::io::{Read, Write};

    let (primary, cfg) = primary_registry();
    let faults = Arc::new(ScriptedIoFaults::new(vec![IoFault::Torn(1), IoFault::Pass]));

    // One self-contained snapshot of the seeded state, chunked exactly
    // the way the real primary would ship it.
    let (graph, entries, seq) = primary.replication_state(DATASET).unwrap();
    let refs: Vec<_> = entries.iter().map(|(c, o)| (c, o.as_ref())).collect();
    let mut snap = Vec::new();
    lbc_store::write_snapshot(&graph, &refs, seq, &mut snap).unwrap();
    drop(refs);
    drop((entries, graph));
    let snap_len = snap.len();
    let snap_crc = lbc_store::format::crc64(&snap);
    const CHUNK: usize = 512;

    let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap().to_string();
    let script = Arc::clone(&faults);
    let server = std::thread::spawn(move || {
        for _ in 0..2 {
            let (mut stream, _) = listener.accept().unwrap();
            let mut dec = FrameDecoder::with_max_payload(8 * 1024 * 1024);
            let mut scratch = [0u8; 4096];
            let hello = loop {
                if let Some(f) = dec.next_frame().unwrap() {
                    break ReplMsg::from_frame(&f).unwrap();
                }
                let n = stream.read(&mut scratch).unwrap();
                assert!(n > 0, "EOF before Hello");
                dec.push(&scratch[..n]);
            };
            let ReplMsg::Hello { have_seq, .. } = hello else {
                panic!("expected Hello first, got opcode {:#04x}", hello.opcode())
            };
            // The invariant under test: a retry after a torn transfer
            // carries no residue — it restarts the sync from nothing.
            assert_eq!(have_seq, HAVE_NOTHING, "resync must restart from scratch");

            let send = |stream: &mut std::net::TcpStream, msg: &ReplMsg| {
                let mut buf = Vec::new();
                msg.encode(&mut buf, 0).unwrap();
                stream.write_all(&buf).unwrap();
            };
            let chunk_count = snap.len().div_ceil(CHUNK) as u32;
            send(
                &mut stream,
                &ReplMsg::SnapBegin {
                    applied_seq: seq,
                    total_len: snap.len() as u64,
                    chunk_count,
                },
            );
            let keep = match script.next_append("snapshot") {
                IoFault::Pass => usize::MAX,
                IoFault::Torn(k) => k,
                other => panic!("unexpected scripted fault {other:?}"),
            };
            for (i, chunk) in snap.chunks(CHUNK).enumerate() {
                if i >= keep {
                    break;
                }
                send(
                    &mut stream,
                    &ReplMsg::SnapChunk {
                        offset: (i * CHUNK) as u64,
                        bytes: chunk.to_vec(),
                    },
                );
            }
            if keep >= chunk_count as usize {
                send(&mut stream, &ReplMsg::SnapEnd { crc64: snap_crc });
                // Drain whatever the follower writes (its first ack)
                // until it hangs up, so closing our side never RSTs
                // away bytes it has not read yet.
                let _ = stream.set_read_timeout(Some(Duration::from_secs(10)));
                let mut sink = [0u8; 1024];
                while let Ok(n) = stream.read(&mut sink) {
                    if n == 0 {
                        break;
                    }
                }
            }
            // Dropping the stream here is attempt 1's tear: EOF with
            // `chunk_count - keep` chunks outstanding.
        }
    });

    let follower = Arc::new(Registry::with_capacity(8));

    // Attempt 1: torn after one chunk. The sync must fail typed and
    // leave nothing behind — no dataset, no watermark, no partial
    // buffer a later attempt could adopt.
    let torn = FollowerConn::sync(
        addr.as_str(),
        Arc::clone(&follower),
        DATASET,
        FollowerIdentity::bare(1),
        HAVE_NOTHING,
        0,
        test_cfg(),
    );
    assert!(torn.is_err(), "a torn snapshot must fail the sync");
    assert_eq!(follower.applied_seq(DATASET), 0);
    assert!(
        follower.cached(DATASET, &cfg).is_none(),
        "partial snapshot must never surface as adopted state"
    );

    // Attempt 2: the scripted primary serves the whole snapshot; the
    // from-scratch retry adopts it bit-for-bit.
    let (conn, report) = FollowerConn::sync(
        addr.as_str(),
        Arc::clone(&follower),
        DATASET,
        FollowerIdentity::bare(1),
        HAVE_NOTHING,
        0,
        test_cfg(),
    )
    .unwrap();
    assert!(report.adopted_snapshot);
    assert_eq!(report.snapshot_bytes, snap_len as u64);
    assert_mirrored(&primary, &follower, &cfg);
    assert_eq!(faults.consumed(), 2, "both scripted faults consumed");

    drop(conn);
    server.join().unwrap();
}
