//! Deterministic fault-injection (chaos) matrix for the replication
//! stack: seeded partition/heal/kill schedules over in-process 3- and
//! 5-node clusters, asserting the safety properties the term-numbered
//! quorum design promises —
//!
//!   1. **at most one writer at every instant** (a monitor thread
//!      samples every gate throughout the schedule),
//!   2. **at most one writer per term, ever** — two nodes observed
//!      writable under the same term at any two instants of the run is
//!      a split lineage even if they never overlapped,
//!   3. **no stale-term service**: once any write has been served
//!      under term T, no gate may be writable under a term < T (the
//!      deposed generation is fenced the moment its successor serves —
//!      a read accepted there would be a stale read), and
//!   4. **bit-for-bit convergence after heal** (every node's cached
//!      clustering output is byte-identical once the partition lifts).
//!
//! With `--ack-quorum` (see [`ack_quorum_survives_writer_failover`])
//! the matrix additionally pins durability: a delta the client got an
//! OK for is never lost to a failover, because the OK was held until a
//! majority of the electorate acked the WAL record.
//!
//! Faults are injected, not raced: every schedule is drawn from a
//! [`SplitMix64`] seed through a shared [`PartitionMatrix`], so a
//! failing seed is a reproducer. "Kill -9 of the writer" is modelled
//! as an isolation partition of the writer alone — from every other
//! node's perspective the two are indistinguishable (silence), and the
//! real-process kill is covered by the CLI e2e suite.
//!
//! The default run keeps a few seeds per matrix so tier-1 stays fast;
//! set `LBC_CHAOS_FULL=1` (the CI chaos job does) for the full 20-seed
//! matrix.

use std::net::TcpListener;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use lbc_core::LbConfig;
use lbc_faults::{NodeFaults, PartitionMatrix, SplitMix64};
use lbc_graph::{generators, GraphDelta};
use lbc_net::{NetClient, NetServer, PeerLag, ReplGate, Role, ServeContext, ServerConfig};
use lbc_obs::{EventKind, Obs};
use lbc_repl::{
    reconcile, run_election, Backoff, ElectionOutcome, FailoverOutcome, FollowerConn,
    FollowerHandle, FollowerIdentity, Membership, ReplConfig, ReplServer, HAVE_NOTHING,
};
use lbc_runtime::{DeltaPolicy, Registry, WorkerPool};

const DATASET: &str = "chaos";

/// Replication timing for the matrix. The vote-grace window a follower
/// enforces is `timeout + 2 × interval`, the primary's step-down lease
/// is `timeout` checked every `interval` — so an isolated writer stops
/// serving at least ~2 intervals before any vote it cannot see can
/// elect a successor.
const INTERVAL: Duration = Duration::from_millis(30);
const TIMEOUT: Duration = Duration::from_millis(300);

fn lb_config() -> LbConfig {
    LbConfig::new(1.0 / 3.0, 60).with_seed(7)
}

fn seeded_registry() -> Arc<Registry> {
    let registry = Arc::new(Registry::with_capacity(8));
    let (g, _) = generators::ring_of_cliques(3, 12, 0).unwrap();
    registry.insert_graph(DATASET, g);
    registry.get_or_cluster(DATASET, &lb_config()).unwrap();
    registry
}

fn flip_delta(i: u32) -> GraphDelta {
    let mut d = GraphDelta::new();
    d.add_edge(i % 5, 12 + (i % 7));
    d
}

fn wait_until(deadline: Duration, mut cond: impl FnMut() -> bool) -> bool {
    let start = Instant::now();
    while start.elapsed() < deadline {
        if cond() {
            return true;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    cond()
}

/// What a node is doing right now, from its driver's point of view.
/// Mirrors the CLI's `serve` supervision loop: a primary watches for
/// step-down, a follower waits out its stream, an idle node re-follows
/// or runs an election.
enum Seat {
    Primary(ReplServer),
    Follower(FollowerHandle),
    Idle {
        target_repl: String,
        from_scratch: bool,
        attempts: u32,
    },
}

struct Node {
    id: u64,
    query_addr: String,
    repl_addr: String,
    registry: Arc<Registry>,
    gate: Arc<ReplGate>,
    /// Per-node metrics + structured event ring; attached to the gate
    /// so the replication plane's elections and role flips land here,
    /// and dumped ring-by-ring when a schedule assertion fails.
    obs: Arc<Obs>,
    /// The promotion listener, parked here while the node is not the
    /// primary; taken by `promote`, re-bound after a step-down.
    repl_listener: Mutex<Option<TcpListener>>,
    cfg: ReplConfig,
    stop: Arc<AtomicBool>,
    errors: Mutex<Vec<String>>,
    /// Driver state transitions, for failure diagnostics.
    trail: Mutex<Vec<String>>,
}

impl Node {
    fn identity(&self) -> FollowerIdentity {
        FollowerIdentity {
            id: self.id,
            addr: self.query_addr.clone(),
            repl_addr: self.repl_addr.clone(),
        }
    }

    /// Convert the parked promotion listener into a live replication
    /// endpoint. The gate is already `Promoted` (flipped by the
    /// failover path or the election arm below) — connects that raced
    /// the conversion queued in the listener backlog and are served as
    /// soon as the acceptor starts.
    fn promote(self: &Arc<Node>) -> Seat {
        let listener = self
            .repl_listener
            .lock()
            .unwrap()
            .take()
            .expect("promotion listener parked");
        let srv = ReplServer::from_listener(
            listener,
            Arc::clone(&self.registry),
            DATASET,
            self.cfg.clone(),
        )
        .expect("promotion repl server");
        srv.set_gate(Arc::clone(&self.gate));
        Seat::Primary(srv)
    }

    /// Re-bind the advertised replication address after a step-down
    /// released it, so a later re-election can promote this node again.
    fn rebind_repl_listener(&self) {
        let mut backoff = Backoff::new(INTERVAL, TIMEOUT, self.id ^ 0xb1bd);
        while !self.stop.load(Ordering::SeqCst) {
            match TcpListener::bind(&self.repl_addr) {
                Ok(l) => {
                    *self.repl_listener.lock().unwrap() = Some(l);
                    return;
                }
                Err(_) => {
                    backoff.sleep();
                }
            }
        }
    }
}

/// Per-node supervision loop — the in-process equivalent of what
/// `lbc serve` does around its replication threads.
fn drive(node: Arc<Node>, mut seat: Seat) {
    let mut election_pause = Backoff::new(TIMEOUT, TIMEOUT * 4, node.id ^ 0xe1ec);
    let mut refollow = Backoff::new(INTERVAL, TIMEOUT, node.id ^ 0x5eed);
    loop {
        if node.stop.load(Ordering::SeqCst) {
            break;
        }
        seat = match seat {
            Seat::Primary(srv) => {
                if srv.stepped_down() {
                    // The lease fired: the gate is already read-only.
                    // Release the port, re-bind it for a future
                    // election, and re-follow from scratch — a deposed
                    // primary may hold acked records the majority's
                    // lineage never saw.
                    drop(srv);
                    node.rebind_repl_listener();
                    Seat::Idle {
                        target_repl: String::new(),
                        from_scratch: true,
                        attempts: 0,
                    }
                } else {
                    std::thread::sleep(INTERVAL);
                    Seat::Primary(srv)
                }
            }
            Seat::Follower(fh) => match fh.wait_outcome(INTERVAL) {
                None => Seat::Follower(fh),
                Some(outcome) => {
                    drop(fh);
                    node.trail
                        .lock()
                        .unwrap()
                        .push(format!("outcome {outcome:?}"));
                    match outcome {
                        FailoverOutcome::Promoted { .. } => node.promote(),
                        FailoverOutcome::NotPromoted { winner_repl, .. } => {
                            refollow.reset();
                            Seat::Idle {
                                target_repl: winner_repl,
                                from_scratch: false,
                                attempts: 0,
                            }
                        }
                        FailoverOutcome::Undecided { .. } => {
                            election_pause.sleep();
                            Seat::Idle {
                                target_repl: String::new(),
                                from_scratch: false,
                                attempts: 0,
                            }
                        }
                        FailoverOutcome::NoQuorum { .. } => {
                            // Gate already parked read-only by the
                            // failover path; once the partition heals,
                            // re-sync from scratch — the majority may
                            // have moved to a new lineage meanwhile.
                            election_pause.sleep();
                            Seat::Idle {
                                target_repl: String::new(),
                                from_scratch: true,
                                attempts: 0,
                            }
                        }
                        FailoverOutcome::Stopped { .. } => break,
                        FailoverOutcome::Error(e) => {
                            node.errors.lock().unwrap().push(e);
                            Seat::Idle {
                                target_repl: String::new(),
                                from_scratch: true,
                                attempts: 0,
                            }
                        }
                    }
                }
            },
            Seat::Idle {
                target_repl,
                from_scratch,
                attempts,
            } => {
                if !target_repl.is_empty() {
                    let resume = if from_scratch {
                        HAVE_NOTHING
                    } else {
                        node.registry.applied_seq(DATASET)
                    };
                    match FollowerConn::sync(
                        target_repl.as_str(),
                        Arc::clone(&node.registry),
                        DATASET,
                        node.identity(),
                        resume,
                        node.gate.term(),
                        node.cfg.clone(),
                    ) {
                        Ok((conn, _)) => {
                            election_pause.reset();
                            Seat::Follower(conn.run(Arc::clone(&node.gate), |_| {}))
                        }
                        Err(_) => {
                            refollow.sleep();
                            // A target that stays unreachable is stale
                            // (its owner died or was deposed): fall
                            // back to a fresh election.
                            if attempts >= 8 {
                                Seat::Idle {
                                    target_repl: String::new(),
                                    from_scratch,
                                    attempts: 0,
                                }
                            } else {
                                Seat::Idle {
                                    target_repl,
                                    from_scratch,
                                    attempts: attempts + 1,
                                }
                            }
                        }
                    }
                } else {
                    let roster: Vec<PeerLag> = Vec::new();
                    let elected = run_election(
                        node.id,
                        node.registry.applied_seq(DATASET),
                        Some(&node.gate),
                        &roster,
                        &node.cfg,
                    );
                    node.trail
                        .lock()
                        .unwrap()
                        .push(format!("election {elected:?}"));
                    node.obs.counter("repl_elections_started_total").inc();
                    node.obs.events.record(
                        EventKind::ElectionStarted,
                        format!("node {} re-election", node.id),
                    );
                    match elected {
                        ElectionOutcome::Won { .. } => {
                            // The won term is already observed on the
                            // gate (the election's self-grant did it),
                            // so `promote` freezes the right term.
                            // Reconcile before serving: pull any acked
                            // suffix a higher-seq loser holds, then
                            // open the gate.
                            let _ = reconcile(
                                &node.registry,
                                DATASET,
                                node.id,
                                node.registry.applied_seq(DATASET),
                                &roster,
                                &node.cfg,
                            );
                            node.gate.set_quorum_status(0, 0, false);
                            node.obs.counter("repl_elections_won_total").inc();
                            node.obs.events.record(
                                EventKind::ElectionWon,
                                format!("node {} re-election", node.id),
                            );
                            node.gate.set_role(Role::Promoted);
                            node.promote()
                        }
                        ElectionOutcome::Lost { winner_repl, .. } => {
                            refollow.reset();
                            node.obs.counter("repl_elections_lost_total").inc();
                            Seat::Idle {
                                target_repl: winner_repl,
                                from_scratch,
                                attempts: 0,
                            }
                        }
                        ElectionOutcome::Inconclusive => {
                            election_pause.sleep();
                            Seat::Idle {
                                target_repl: String::new(),
                                from_scratch,
                                attempts: 0,
                            }
                        }
                        ElectionOutcome::NoQuorum {
                            votes_seen,
                            votes_needed,
                        } => {
                            node.gate.set_quorum_status(votes_seen, votes_needed, true);
                            election_pause.sleep();
                            Seat::Idle {
                                target_repl: String::new(),
                                from_scratch: true,
                                attempts: 0,
                            }
                        }
                    }
                }
            }
        };
    }
}

struct Cluster {
    nodes: Vec<Arc<Node>>,
    matrix: Arc<PartitionMatrix>,
    stop: Arc<AtomicBool>,
    drivers: Vec<std::thread::JoinHandle<()>>,
    monitor: Option<std::thread::JoinHandle<()>>,
    max_writers: Arc<AtomicUsize>,
    /// Term-fencing violations the monitor observed: two writers under
    /// one term, or a writer under a term already superseded by a
    /// serving successor. Asserted empty at shutdown.
    term_violations: Arc<Mutex<Vec<String>>>,
    _nets: Vec<lbc_net::ServerHandle>,
    delta_no: u32,
}

impl Cluster {
    /// Bring up `n` nodes — node 0 the seeded primary, the rest synced
    /// followers — all sharing one fixed membership and one partition
    /// matrix.
    fn start(n: usize) -> Cluster {
        Cluster::start_opts(n, false)
    }

    /// Like [`Cluster::start`] but with `--ack-quorum` semantics: the
    /// writer holds each delta's reply until a majority of the
    /// electorate has acked the WAL record.
    fn start_opts(n: usize, ack_quorum: bool) -> Cluster {
        assert!(n >= 3);
        let matrix = Arc::new(PartitionMatrix::new());
        let stop = Arc::new(AtomicBool::new(false));

        // Bind every listener first so the membership spec (query
        // addresses) and each advertised repl address are final.
        let mut query_listeners = Vec::new();
        let mut repl_listeners = Vec::new();
        for _ in 0..n {
            let q = TcpListener::bind("127.0.0.1:0").unwrap();
            let r = TcpListener::bind("127.0.0.1:0").unwrap();
            query_listeners.push(q);
            repl_listeners.push(r);
        }
        let spec = query_listeners
            .iter()
            .enumerate()
            .map(|(i, l)| format!("{}@{}", i as u64 + 1, l.local_addr().unwrap()))
            .collect::<Vec<_>>()
            .join(",");
        let members = Membership::parse(&spec).unwrap();

        let mut nodes = Vec::new();
        for (i, (q, r)) in query_listeners
            .iter()
            .zip(repl_listeners.iter())
            .enumerate()
        {
            let id = i as u64 + 1;
            let query_addr = q.local_addr().unwrap().to_string();
            let repl_addr = r.local_addr().unwrap().to_string();
            let registry = if i == 0 {
                seeded_registry()
            } else {
                Arc::new(Registry::with_capacity(8))
            };
            let gate = Arc::new(ReplGate::with_id(
                if i == 0 {
                    Role::Primary
                } else {
                    Role::Follower
                },
                id,
            ));
            gate.set_promotable(true);
            gate.set_member_count(n);
            gate.set_repl_addr(&repl_addr);
            let obs = Arc::new(Obs::new());
            gate.attach_obs(Arc::clone(&obs));
            let cfg = ReplConfig {
                heartbeat_interval: INTERVAL,
                heartbeat_timeout: TIMEOUT,
                chunk_len: 512,
                members: members.clone(),
                ack_quorum,
                faults: Some(Arc::new(NodeFaults::new(Arc::clone(&matrix), &query_addr))),
                ..Default::default()
            };
            nodes.push(Arc::new(Node {
                id,
                query_addr,
                repl_addr,
                registry,
                gate,
                obs,
                repl_listener: Mutex::new(None),
                cfg,
                stop: Arc::clone(&stop),
                errors: Mutex::new(Vec::new()),
                trail: Mutex::new(Vec::new()),
            }));
        }

        // Node 0 serves replication from its pre-bound listener; every
        // other node syncs a snapshot before any fault is scheduled.
        let mut seats = Vec::new();
        let primary_repl = {
            let mut it = repl_listeners.into_iter();
            let l0 = it.next().unwrap();
            for (node, l) in nodes.iter().skip(1).zip(it) {
                *node.repl_listener.lock().unwrap() = Some(l);
            }
            let srv = ReplServer::from_listener(
                l0,
                Arc::clone(&nodes[0].registry),
                DATASET,
                nodes[0].cfg.clone(),
            )
            .unwrap();
            srv.set_gate(Arc::clone(&nodes[0].gate));
            srv
        };
        seats.push(Seat::Primary(primary_repl));
        for node in nodes.iter().skip(1) {
            let (conn, _) = FollowerConn::sync(
                nodes[0].repl_addr.as_str(),
                Arc::clone(&node.registry),
                DATASET,
                node.identity(),
                HAVE_NOTHING,
                node.gate.term(),
                node.cfg.clone(),
            )
            .expect("initial follower sync");
            seats.push(Seat::Follower(conn.run(Arc::clone(&node.gate), |_| {})));
        }

        // Query-port servers (election polls, votes, wal_pull, and the
        // harness's own write probes all go through these). Brought up
        // after the snapshot syncs: the query engine wants the dataset
        // present in its registry.
        let mut nets = Vec::new();
        for (node, q) in nodes.iter().zip(query_listeners) {
            let ctx = ServeContext {
                registry: Arc::clone(&node.registry),
                pool: Arc::new(WorkerPool::new(2)),
                dataset: DATASET.to_string(),
                cfg: lb_config(),
                obs: Arc::clone(&node.obs),
            };
            nets.push(
                NetServer::serve_listener(q, ctx, ServerConfig::default(), Arc::clone(&node.gate))
                    .unwrap(),
            );
        }

        let drivers = nodes
            .iter()
            .zip(seats)
            .map(|(node, seat)| {
                let node = Arc::clone(node);
                std::thread::Builder::new()
                    .name(format!("chaos-node-{}", node.id))
                    .spawn(move || drive(node, seat))
                    .unwrap()
            })
            .collect();

        // The safety monitor: sample every gate for the whole schedule
        // and record (a) the high-water mark of concurrent writable
        // nodes, (b) which node served under each term — ever seeing a
        // second node under a term some other node already served is a
        // split lineage even if the two never overlapped in time — and
        // (c) stale-term service: once any node has served under term
        // T, a gate writable under a term < T is a deposed generation
        // still accepting traffic (the stale-read hole).
        let max_writers = Arc::new(AtomicUsize::new(0));
        let term_violations = Arc::new(Mutex::new(Vec::<String>::new()));
        let monitor = {
            let gates: Vec<Arc<ReplGate>> = nodes.iter().map(|n| Arc::clone(&n.gate)).collect();
            let stop = Arc::clone(&stop);
            let max = Arc::clone(&max_writers);
            let violations = Arc::clone(&term_violations);
            std::thread::Builder::new()
                .name("chaos-monitor".to_string())
                .spawn(move || {
                    let mut writer_by_term: std::collections::HashMap<u64, usize> =
                        std::collections::HashMap::new();
                    let mut max_served_term = 0u64;
                    while !stop.load(Ordering::SeqCst) {
                        // Per-gate sample: term is read on both sides
                        // of `writable` and the sample dropped unless
                        // they agree, so a fence racing the probe can
                        // never pair an old `writable` with a new term
                        // (the gate flips read-only *before* it stores
                        // an observed term — the other pairing cannot
                        // happen).
                        let mut writers = 0usize;
                        for (i, g) in gates.iter().enumerate() {
                            let before = g.term();
                            let writable = g.writable();
                            if g.term() != before {
                                continue;
                            }
                            if !writable {
                                continue;
                            }
                            writers += 1;
                            match writer_by_term.get(&before) {
                                Some(&first) if first != i => {
                                    violations.lock().unwrap().push(format!(
                                        "two writers under term {before}: node {} and node {}",
                                        first + 1,
                                        i + 1
                                    ));
                                }
                                None => {
                                    writer_by_term.insert(before, i);
                                }
                                _ => {}
                            }
                            if before < max_served_term {
                                violations.lock().unwrap().push(format!(
                                    "node {} writable under deposed term {before} after term \
                                     {max_served_term} already served",
                                    i + 1
                                ));
                            }
                            max_served_term = max_served_term.max(before);
                        }
                        max.fetch_max(writers, Ordering::SeqCst);
                        std::thread::sleep(Duration::from_millis(1));
                    }
                })
                .unwrap()
        };

        Cluster {
            nodes,
            matrix,
            stop,
            drivers,
            monitor: Some(monitor),
            max_writers,
            term_violations,
            _nets: nets,
            delta_no: 0,
        }
    }

    /// Sever `minority` (node indices) from everyone else. Both of a
    /// node's listen addresses move together — the matrix is keyed by
    /// the address an initiator dials.
    fn partition(&self, minority: &[usize]) {
        for &i in minority {
            self.matrix.assign(&self.nodes[i].query_addr, 1);
            self.matrix.assign(&self.nodes[i].repl_addr, 1);
        }
    }

    fn heal(&self) {
        self.matrix.heal();
    }

    /// Offer one fresh delta to every node over its query port and
    /// return which nodes accepted it. The harness client is
    /// omniscient (not subject to the partition matrix), so a minority
    /// node's refusal is the read-only gate, not an unreachable port.
    fn probe_write(&mut self) -> Vec<usize> {
        let delta = flip_delta(self.delta_no);
        self.delta_no += 1;
        let mut accepted = Vec::new();
        for (i, node) in self.nodes.iter().enumerate() {
            let addr = node.query_addr.parse().unwrap();
            if let Ok(mut c) = NetClient::connect_timeout(&addr, TIMEOUT) {
                if c.submit_delta(&delta).is_ok() {
                    accepted.push(i);
                }
            }
        }
        if accepted.len() > 1 {
            let roles: Vec<(u64, Role, bool)> = self
                .nodes
                .iter()
                .map(|n| (n.id, n.gate.role(), n.gate.writable()))
                .collect();
            let trails: Vec<(u64, Vec<String>)> = self
                .nodes
                .iter()
                .map(|n| (n.id, n.trail.lock().unwrap().clone()))
                .collect();
            panic!(
                "two nodes accepted the same write: {accepted:?}; gates {roles:?}; trails {trails:?}\n{}",
                self.dump_events()
            );
        }
        accepted
    }

    /// Wait until exactly one node accepts writes, and return it.
    fn wait_writer(&mut self, deadline: Duration) -> usize {
        let start = Instant::now();
        loop {
            let accepted = self.probe_write();
            if let [w] = accepted[..] {
                return w;
            }
            assert!(
                start.elapsed() < deadline,
                "no writer emerged within {deadline:?}\n{}",
                self.dump_events()
            );
            std::thread::sleep(Duration::from_millis(20));
        }
    }

    /// After a heal: wait until one writer exists and every node holds
    /// its watermark, then push one more write through and check every
    /// node converges to a byte-identical clustering output.
    fn assert_converged(&mut self, deadline: Duration) {
        // A probe whose reply times out under load can still commit
        // server-side and land *after* we sample the watermark, so
        // chase the writer's current watermark on every poll instead
        // of pinning the first sample — stragglers drain into a stable
        // all-equal level.
        let writer = self.wait_writer(deadline);
        let levelled = |nodes: &[Arc<Node>], w: usize| {
            let target = nodes[w].registry.applied_seq(DATASET);
            nodes
                .iter()
                .all(|n| n.registry.applied_seq(DATASET) == target)
        };
        assert!(
            wait_until(deadline, || levelled(&self.nodes, writer)),
            "watermarks never converged: {:?}\n{}",
            self.watermarks(),
            self.dump_events()
        );
        // One more write proves the healed topology still replicates.
        let writer = self.wait_writer(deadline);
        assert!(
            wait_until(deadline, || levelled(&self.nodes, writer)),
            "post-heal write never propagated: {:?}\n{}",
            self.watermarks(),
            self.dump_events()
        );
        // Bit-for-bit convergence, re-read until stable: the watermark
        // bumps under the registry lock but the warm-refreshed entry
        // is reinserted after it releases (briefly absent), and a
        // late-landing straggler shifts every node deterministically
        // to the same new output — equal watermarks imply equal bits.
        let lb = lb_config();
        assert!(
            wait_until(deadline, || {
                let Some(reference) = self.nodes[writer].registry.cached(DATASET, &lb) else {
                    return false;
                };
                levelled(&self.nodes, writer)
                    && self.nodes.iter().all(|n| {
                        n.registry
                            .cached(DATASET, &lb)
                            .is_some_and(|out| reference.bit_diff(&out).is_none())
                    })
            }),
            "nodes never converged bit-for-bit at watermarks {:?}\n{}",
            self.watermarks(),
            self.dump_events()
        );
    }

    fn watermarks(&self) -> Vec<u64> {
        self.nodes
            .iter()
            .map(|n| n.registry.applied_seq(DATASET))
            .collect()
    }

    /// Every node's structured event ring, rendered for the post-mortem
    /// that accompanies each harness failure: who started elections,
    /// who won, every role flip, in ring order with relative times.
    fn dump_events(&self) -> String {
        let mut out = String::from("event rings at failure:\n");
        for node in &self.nodes {
            out.push_str(&format!("node {}:\n", node.id));
            let events = node.obs.events.recent(64);
            if events.is_empty() {
                out.push_str("  (empty)\n");
            }
            for e in events {
                out.push_str(&format!(
                    "  [{}] +{}ms {}: {}\n",
                    e.seq,
                    e.at_ms,
                    e.kind.as_str(),
                    e.detail
                ));
            }
        }
        out
    }

    fn shutdown(mut self) {
        self.stop.store(true, Ordering::SeqCst);
        for d in self.drivers.drain(..) {
            d.join().unwrap();
        }
        if let Some(m) = self.monitor.take() {
            m.join().unwrap();
        }
        let max = self.max_writers.load(Ordering::SeqCst);
        assert!(
            max <= 1,
            "monitor observed {max} concurrent writers — split brain\n{}",
            self.dump_events()
        );
        let violations = self.term_violations.lock().unwrap().clone();
        assert!(
            violations.is_empty(),
            "monitor observed term-fencing violations: {violations:#?}\n{}",
            self.dump_events()
        );
        for node in &self.nodes {
            let errors = node.errors.lock().unwrap();
            assert!(
                errors.is_empty(),
                "node {} stream errors: {errors:?}\n{}",
                node.id,
                self.dump_events()
            );
        }
    }
}

/// One seeded schedule: `rounds` partition/heal episodes. A third of
/// the draws isolate the current writer alone (the in-process stand-in
/// for `kill -9` of the primary); the rest cut a random strict
/// minority. After every episode the cluster must converge back to one
/// writer and byte-identical replicas.
fn run_schedule(n: usize, seed: u64, rounds: usize) {
    let mut rng = SplitMix64::new(seed);
    let mut cluster = Cluster::start(n);
    let settle = Duration::from_secs(30);

    // Pre-fault sanity: node 0 is the sole writer and a write lands
    // everywhere.
    let w = cluster.wait_writer(settle);
    assert_eq!(w, 0, "node 0 starts as the writer");
    cluster.assert_converged(settle);

    for _ in 0..rounds {
        let writer = cluster.wait_writer(settle);
        let minority: Vec<usize> = if rng.below(3) == 0 {
            // "Kill" the writer: isolate it alone.
            vec![writer]
        } else {
            let size = 1 + rng.below(((n - 1) / 2) as u64) as usize;
            let mut picks: Vec<usize> = (0..n).collect();
            // Seeded partial shuffle.
            for i in 0..size {
                let j = i + rng.below((n - i) as u64) as usize;
                picks.swap(i, j);
            }
            picks.truncate(size);
            picks
        };
        cluster.partition(&minority);

        if minority.contains(&writer) {
            // The old writer may keep serving through its grace lease;
            // it must then step down and a majority node take over.
            // Every probe along the way asserts no instant ever shows
            // two acceptors.
            let start = Instant::now();
            loop {
                let accepted = cluster.probe_write();
                if let [w] = accepted[..] {
                    if !minority.contains(&w) {
                        break;
                    }
                }
                assert!(
                    start.elapsed() < settle,
                    "majority never elected a writer; last acceptors {accepted:?}\n{}",
                    cluster.dump_events()
                );
                std::thread::sleep(Duration::from_millis(20));
            }
        } else {
            // The writer kept its quorum: it must still be the one
            // acceptor, and stay so across a full lease.
            std::thread::sleep(TIMEOUT + INTERVAL * 4);
            assert_eq!(cluster.wait_writer(settle), writer);
        }

        // Every minority node must be read-only: role Follower (never
        // promoted) and refusing writes.
        assert!(
            wait_until(settle, || {
                minority.iter().all(|&i| {
                    let g = &cluster.nodes[i].gate;
                    g.role() == Role::Follower && !g.writable()
                })
            }),
            "minority nodes never degraded read-only\n{}",
            cluster.dump_events()
        );
        for &i in &minority {
            let addr = cluster.nodes[i].query_addr.parse().unwrap();
            let delta = flip_delta(9999);
            let refused = match NetClient::connect_timeout(&addr, TIMEOUT) {
                Ok(mut c) => c.submit_delta(&delta).is_err(),
                Err(_) => true,
            };
            assert!(refused, "minority node {} accepted a write", i + 1);
        }

        cluster.heal();
        cluster.assert_converged(settle);
    }

    cluster.shutdown();
}

fn seeds(default_n: u64, full_n: u64, base: u64) -> Vec<u64> {
    let full = std::env::var("LBC_CHAOS_FULL").is_ok();
    let count = if full { full_n } else { default_n };
    (0..count).map(|i| base.wrapping_add(i)).collect()
}

#[test]
fn chaos_three_node_matrix() {
    for seed in seeds(2, 12, 0x00C0_FFEE) {
        run_schedule(3, seed, 2);
    }
}

#[test]
fn chaos_five_node_matrix() {
    for seed in seeds(1, 8, 0x00FA_CADE) {
        run_schedule(5, seed, 2);
    }
}

/// The observability pin for the harness: kill the seeded primary (an
/// isolation partition), let the majority elect, and assert the event
/// rings captured the story — an `ElectionStarted`, an `ElectionWon`,
/// and across *all* nodes exactly one `RoleChange` into `promoted`.
#[test]
fn event_ring_records_election_and_exactly_one_promotion() {
    let mut cluster = Cluster::start(3);
    let settle = Duration::from_secs(30);
    assert_eq!(cluster.wait_writer(settle), 0, "node 0 starts as writer");
    cluster.assert_converged(settle);

    // The in-process kill -9: isolate the writer alone.
    cluster.partition(&[0]);
    let start = Instant::now();
    loop {
        let accepted = cluster.probe_write();
        if let [w] = accepted[..] {
            if w != 0 {
                break;
            }
        }
        assert!(
            start.elapsed() < settle,
            "majority never elected a writer\n{}",
            cluster.dump_events()
        );
        std::thread::sleep(Duration::from_millis(20));
    }
    cluster.heal();
    cluster.assert_converged(settle);

    let rings: Vec<Vec<lbc_obs::Event>> = cluster
        .nodes
        .iter()
        .map(|n| n.obs.events.recent(256))
        .collect();
    let dump = cluster.dump_events();
    cluster.shutdown();

    let all: Vec<&lbc_obs::Event> = rings.iter().flatten().collect();
    assert!(
        all.iter().any(|e| e.kind == EventKind::ElectionStarted),
        "no ElectionStarted event recorded\n{dump}"
    );
    assert!(
        all.iter().any(|e| e.kind == EventKind::ElectionWon),
        "no ElectionWon event recorded\n{dump}"
    );
    let promotions = all
        .iter()
        .filter(|e| e.kind == EventKind::RoleChange && e.detail.ends_with("->promoted"))
        .count();
    assert_eq!(
        promotions, 1,
        "expected exactly one promotion role change\n{dump}"
    );
}

/// Promotion-time WAL reconciliation, pinned deterministically: a
/// record acked to the primary by follower A but never fanned out to
/// follower B must survive a failover that B wins — B pulls the
/// missing suffix from A before serving, bit-for-bit.
#[test]
fn winner_pulls_missing_suffix_before_serving() {
    // Membership: A=1 (no repl listener — can vote and donate, cannot
    // be elected), B=2 (promotable). The primary is not a member; it
    // carries the same membership so Hello checks agree.
    let qa = TcpListener::bind("127.0.0.1:0").unwrap();
    let qb = TcpListener::bind("127.0.0.1:0").unwrap();
    let qa_addr = qa.local_addr().unwrap().to_string();
    let qb_addr = qb.local_addr().unwrap().to_string();
    let members = Membership::parse(&format!("1@{qa_addr},2@{qb_addr}")).unwrap();
    let cfg = ReplConfig {
        heartbeat_interval: Duration::from_millis(20),
        heartbeat_timeout: Duration::from_millis(300),
        chunk_len: 512,
        members,
        ..Default::default()
    };

    let primary = seeded_registry();
    let server =
        ReplServer::bind("127.0.0.1:0", Arc::clone(&primary), DATASET, cfg.clone()).unwrap();

    let apply = |i: u32| {
        primary
            .apply_delta(
                DATASET,
                &flip_delta(i),
                &DeltaPolicy::WarmRefresh(Default::default()),
            )
            .unwrap();
    };
    let serve = |listener: TcpListener, registry: &Arc<Registry>, gate: &Arc<ReplGate>| {
        let ctx = ServeContext::new(
            Arc::clone(registry),
            Arc::new(WorkerPool::new(2)),
            DATASET,
            lb_config(),
        );
        NetServer::serve_listener(listener, ctx, ServerConfig::default(), Arc::clone(gate)).unwrap()
    };

    // Follower A: higher seq at crash time, not promotable.
    let reg_a = Arc::new(Registry::with_capacity(8));
    let gate_a = Arc::new(ReplGate::with_id(Role::Follower, 1));
    gate_a.set_promotable(false);
    let (conn_a, _) = FollowerConn::sync(
        server.addr(),
        Arc::clone(&reg_a),
        DATASET,
        FollowerIdentity {
            id: 1,
            addr: qa_addr.clone(),
            repl_addr: String::new(),
        },
        HAVE_NOTHING,
        gate_a.term(),
        cfg.clone(),
    )
    .unwrap();
    let _net_a = serve(qa, &reg_a, &gate_a);
    let fh_a = conn_a.run(Arc::clone(&gate_a), |_| {});

    // Follower B: promotable (advertises a repl listener it could
    // serve from), detaches early so it misses the tail.
    let rb = TcpListener::bind("127.0.0.1:0").unwrap();
    let rb_addr = rb.local_addr().unwrap().to_string();
    let reg_b = Arc::new(Registry::with_capacity(8));
    let gate_b = Arc::new(ReplGate::with_id(Role::Follower, 2));
    let (conn_b, _) = FollowerConn::sync(
        server.addr(),
        Arc::clone(&reg_b),
        DATASET,
        FollowerIdentity {
            id: 2,
            addr: qb_addr.clone(),
            repl_addr: rb_addr,
        },
        HAVE_NOTHING,
        gate_b.term(),
        cfg.clone(),
    )
    .unwrap();
    let _net_b = serve(qb, &reg_b, &gate_b);
    let fh_b = conn_b.run(Arc::clone(&gate_b), |_| {});

    // Both at seq 1, then B detaches cleanly.
    apply(0);
    assert!(wait_until(Duration::from_secs(10), || {
        fh_a.applied_seq() == 1 && fh_b.applied_seq() == 1
    }));
    fh_b.stop();
    fh_b.join();

    // Three more records acked by A alone — the suffix B never saw.
    for i in 1..4 {
        apply(i);
    }
    assert!(wait_until(Duration::from_secs(10), || {
        fh_a.applied_seq() == 4
    }));
    fh_a.stop();
    fh_a.join();

    // Primary dies. B runs the quorum election: A's vote arrives once
    // its own liveness window lapses, and it concedes despite its
    // higher seq because it cannot itself promote.
    drop(server);
    match run_election(2, reg_b.applied_seq(DATASET), Some(&gate_b), &[], &cfg) {
        ElectionOutcome::Won { term } => assert!(term > 0, "a won election carries its term"),
        other => panic!("B should win the election, got {other:?}"),
    }

    // Reconciliation: B pulls records 2..=4 from A before serving.
    let seq = reconcile(&reg_b, DATASET, 2, reg_b.applied_seq(DATASET), &[], &cfg);
    assert_eq!(seq, 4, "winner must reach the highest acked watermark");
    assert_eq!(reg_b.applied_seq(DATASET), 4);

    // Bit-for-bit: B now matches both A and the pre-crash primary.
    let lb = lb_config();
    let pb = reg_b.cached(DATASET, &lb).expect("B cached");
    let pa = reg_a.cached(DATASET, &lb).expect("A cached");
    let pp = primary.cached(DATASET, &lb).expect("primary cached");
    assert_eq!(pb.bit_diff(&pa), None, "B diverged from donor A");
    assert_eq!(pb.bit_diff(&pp), None, "B diverged from the dead primary");

    // And the lineage continues: B serves writes from the reconciled
    // watermark.
    gate_b.set_role(Role::Promoted);
    reg_b
        .apply_delta(
            DATASET,
            &flip_delta(7),
            &DeltaPolicy::WarmRefresh(Default::default()),
        )
        .unwrap();
    assert_eq!(reg_b.applied_seq(DATASET), 5);
}

/// Two candidates partitioned from *each other* but both reaching a
/// shared third voter must not both assemble a strict majority.
/// Membership {1,2,3}, the 1↔2 link cut, node 3 an orphaned follower:
/// with stateless vote grants, 3 would grant both candidates and each
/// would count 2/2 — the exact split brain quorum mode exists to
/// prevent. The voter's single-vote window must pin its grant to one
/// candidate for the whole race.
#[test]
fn partitioned_candidates_cannot_both_quorum_through_shared_voter() {
    /// One node's view of the non-transitive partition (A↔B cut, both
    /// reach C) — a shape the group-based [`PartitionMatrix`] cannot
    /// express, so the cut list is spelled out per node.
    #[derive(Debug)]
    struct CutPeers(Vec<String>);
    impl lbc_faults::FaultHook for CutPeers {
        fn link(&self, peer: &str) -> lbc_faults::LinkFault {
            if self.0.iter().any(|p| p == peer) {
                lbc_faults::LinkFault::Cut
            } else {
                lbc_faults::LinkFault::Pass
            }
        }
    }

    let listeners: Vec<TcpListener> = (0..3)
        .map(|_| TcpListener::bind("127.0.0.1:0").unwrap())
        .collect();
    let addrs: Vec<String> = listeners
        .iter()
        .map(|l| l.local_addr().unwrap().to_string())
        .collect();
    let spec = addrs
        .iter()
        .enumerate()
        .map(|(i, a)| format!("{}@{a}", i as u64 + 1))
        .collect::<Vec<_>>()
        .join(",");
    let base = ReplConfig {
        heartbeat_interval: INTERVAL,
        heartbeat_timeout: TIMEOUT,
        members: Membership::parse(&spec).unwrap(),
        ..Default::default()
    };

    let mut nets = Vec::new();
    let mut gates = Vec::new();
    for (i, listener) in listeners.into_iter().enumerate() {
        let registry = seeded_registry();
        // Constructed as Primary (no boot contact) then stepped to
        // Follower: an orphaned voter, free to grant immediately.
        let gate = Arc::new(ReplGate::with_id(Role::Primary, i as u64 + 1));
        gate.set_role(Role::Follower);
        let ctx = ServeContext::new(
            Arc::clone(&registry),
            Arc::new(lbc_runtime::WorkerPool::new(2)),
            DATASET,
            lb_config(),
        );
        nets.push(
            NetServer::serve_listener(listener, ctx, ServerConfig::default(), Arc::clone(&gate))
                .unwrap(),
        );
        gates.push(gate);
    }
    // Hold the voter's single-vote window open past the whole election
    // budget: in production the window is bridged by the voter
    // re-following the winner (fresh primary contact keeps denying),
    // which this fixture deliberately does not run.
    gates[2].set_liveness_window(Duration::from_secs(30));

    let cfg_a = ReplConfig {
        faults: Some(Arc::new(CutPeers(vec![addrs[1].clone()]))),
        ..base.clone()
    };
    let cfg_b = ReplConfig {
        faults: Some(Arc::new(CutPeers(vec![addrs[0].clone()]))),
        ..base
    };
    let ta = std::thread::spawn(move || run_election(1, 0, None, &[], &cfg_a));
    let tb = std::thread::spawn(move || run_election(2, 0, None, &[], &cfg_b));
    let ra = ta.join().unwrap();
    let rb = tb.join().unwrap();
    let wins = [&ra, &rb]
        .into_iter()
        .filter(|o| matches!(o, ElectionOutcome::Won { .. }))
        .count();
    assert!(
        wins <= 1,
        "split brain: both candidates won a majority (A: {ra:?}, B: {rb:?})"
    );
    assert_eq!(
        wins, 1,
        "exactly one candidate should win (A: {ra:?}, B: {rb:?})"
    );
}

/// The `--ack-quorum` durability pin: every delta the harness client
/// got an OK for was held until a majority of the electorate acked the
/// WAL record — so after the writer is killed (isolated) and the
/// majority elects a successor, every one of those records must still
/// be in the lineage, on every node. Without the hold, a record the
/// primary applied and confirmed an instant before the partition could
/// exist on no surviving majority node.
#[test]
fn ack_quorum_survives_writer_failover() {
    let mut cluster = Cluster::start_opts(3, true);
    let settle = Duration::from_secs(30);
    assert_eq!(cluster.wait_writer(settle), 0, "node 0 starts as writer");
    cluster.assert_converged(settle);

    // A burst of writes; count only the OKs. An errored submit (e.g.
    // an ack-wait timeout) may or may not have applied — it makes no
    // durability promise, so it is excluded from the floor.
    let base = cluster.nodes[0].registry.applied_seq(DATASET);
    let mut oks = 0u64;
    for _ in 0..6 {
        if cluster.probe_write() == vec![0] {
            oks += 1;
        }
    }
    assert!(oks > 0, "no acked write landed before the kill");
    // Writes apply in submission order, so the last OK'd record sits
    // at seq >= base + oks: the durability floor the failover must
    // carry over.
    let floor = base + oks;

    // Kill the writer (isolate it alone) and wait the majority out.
    cluster.partition(&[0]);
    let start = Instant::now();
    loop {
        let accepted = cluster.probe_write();
        if let [w] = accepted[..] {
            if w != 0 {
                break;
            }
        }
        assert!(
            start.elapsed() < settle,
            "majority never elected a writer\n{}",
            cluster.dump_events()
        );
        std::thread::sleep(Duration::from_millis(20));
    }
    cluster.heal();
    cluster.assert_converged(settle);

    for node in &cluster.nodes {
        let seq = node.registry.applied_seq(DATASET);
        assert!(
            seq >= floor,
            "node {} lost client-acked writes across the failover: at seq {seq}, \
             acked floor {floor}\n{}",
            node.id,
            cluster.dump_events()
        );
    }
    cluster.shutdown();
}
