//! Readiness polling over raw file descriptors.
//!
//! The workspace policy is zero external dependencies, so the Linux
//! backend talks to `epoll` through hand-declared `extern "C"`
//! bindings against the C library `std` already links (the same three
//! calls `mio` would make, without the crate). Everything above this
//! module sees only the [`Poller`] API: register interest per token,
//! wait, get `(token, readable, writable)` events back.
//!
//! Handlers are written for **level-triggered** semantics and tolerate
//! spurious readiness (every read/write path handles `WouldBlock`), so
//! a degraded backend that over-reports readiness is correct, just
//! slower. The non-Linux fallback exploits exactly that: it reports
//! every registered fd as ready after a short sleep, turning the
//! reactor into a polling loop — fine for tests and development on
//! other platforms, while production serving targets Linux.

use std::collections::BTreeMap;
use std::io;
use std::os::unix::io::RawFd;
use std::time::Duration;

/// Opaque per-connection identifier carried through the poller.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Token(pub u64);

/// Readiness interest for one fd.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interest {
    pub readable: bool,
    pub writable: bool,
}

impl Interest {
    pub const READ: Interest = Interest {
        readable: true,
        writable: false,
    };
    pub const WRITE: Interest = Interest {
        readable: false,
        writable: true,
    };
    pub const BOTH: Interest = Interest {
        readable: true,
        writable: true,
    };
}

/// One readiness event.
#[derive(Debug, Clone, Copy)]
pub struct Event {
    pub token: Token,
    pub readable: bool,
    pub writable: bool,
    /// Error/hangup condition on the fd (treated as readable so the
    /// handler observes the EOF/reset through its normal read path).
    pub closed: bool,
}

#[cfg(target_os = "linux")]
mod sys {
    use super::*;
    use std::os::raw::c_int;

    // x86-64 Linux declares epoll_event packed; other 64-bit arches
    // use the naturally aligned layout. Matching the kernel ABI here
    // is what lets us skip the libc crate entirely.
    #[cfg(target_arch = "x86_64")]
    #[repr(C, packed)]
    #[derive(Clone, Copy)]
    pub struct EpollEvent {
        pub events: u32,
        pub data: u64,
    }

    #[cfg(not(target_arch = "x86_64"))]
    #[repr(C)]
    #[derive(Clone, Copy)]
    pub struct EpollEvent {
        pub events: u32,
        pub data: u64,
    }

    pub const EPOLLIN: u32 = 0x001;
    pub const EPOLLOUT: u32 = 0x004;
    pub const EPOLLERR: u32 = 0x008;
    pub const EPOLLHUP: u32 = 0x010;
    pub const EPOLLRDHUP: u32 = 0x2000;

    pub const EPOLL_CTL_ADD: c_int = 1;
    pub const EPOLL_CTL_DEL: c_int = 2;
    pub const EPOLL_CTL_MOD: c_int = 3;
    pub const EPOLL_CLOEXEC: c_int = 0x80000;

    extern "C" {
        pub fn epoll_create1(flags: c_int) -> c_int;
        pub fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut EpollEvent) -> c_int;
        pub fn epoll_wait(
            epfd: c_int,
            events: *mut EpollEvent,
            maxevents: c_int,
            timeout: c_int,
        ) -> c_int;
        pub fn close(fd: c_int) -> c_int;
    }

    pub fn cvt(ret: c_int) -> io::Result<c_int> {
        if ret < 0 {
            Err(io::Error::last_os_error())
        } else {
            Ok(ret)
        }
    }
}

/// Readiness poller: epoll on Linux, a documented sleep-poll fallback
/// elsewhere.
pub struct Poller {
    #[cfg(target_os = "linux")]
    epfd: RawFd,
    #[cfg(target_os = "linux")]
    events: Vec<sys::EpollEvent>,
    /// token → (fd, interest); the fallback iterates it, Linux keeps
    /// it for re-registration bookkeeping and capacity accounting.
    registered: BTreeMap<Token, (RawFd, Interest)>,
}

impl Poller {
    /// Create a poller instance.
    pub fn new() -> io::Result<Poller> {
        #[cfg(target_os = "linux")]
        {
            let epfd = sys::cvt(unsafe { sys::epoll_create1(sys::EPOLL_CLOEXEC) })?;
            Ok(Poller {
                epfd,
                events: vec![sys::EpollEvent { events: 0, data: 0 }; 1024],
                registered: BTreeMap::new(),
            })
        }
        #[cfg(not(target_os = "linux"))]
        {
            Ok(Poller {
                registered: BTreeMap::new(),
            })
        }
    }

    #[cfg(target_os = "linux")]
    fn mask(interest: Interest) -> u32 {
        let mut m = sys::EPOLLRDHUP;
        if interest.readable {
            m |= sys::EPOLLIN;
        }
        if interest.writable {
            m |= sys::EPOLLOUT;
        }
        m
    }

    /// Start watching `fd` under `token`.
    pub fn register(&mut self, fd: RawFd, token: Token, interest: Interest) -> io::Result<()> {
        #[cfg(target_os = "linux")]
        {
            let mut ev = sys::EpollEvent {
                events: Self::mask(interest),
                data: token.0,
            };
            sys::cvt(unsafe { sys::epoll_ctl(self.epfd, sys::EPOLL_CTL_ADD, fd, &mut ev) })?;
        }
        self.registered.insert(token, (fd, interest));
        Ok(())
    }

    /// Change the interest set for `token`.
    pub fn reregister(&mut self, fd: RawFd, token: Token, interest: Interest) -> io::Result<()> {
        #[cfg(target_os = "linux")]
        {
            let mut ev = sys::EpollEvent {
                events: Self::mask(interest),
                data: token.0,
            };
            sys::cvt(unsafe { sys::epoll_ctl(self.epfd, sys::EPOLL_CTL_MOD, fd, &mut ev) })?;
        }
        self.registered.insert(token, (fd, interest));
        Ok(())
    }

    /// Stop watching `token`.
    pub fn deregister(&mut self, fd: RawFd, token: Token) -> io::Result<()> {
        if self.registered.remove(&token).is_some() {
            #[cfg(target_os = "linux")]
            {
                let mut ev = sys::EpollEvent { events: 0, data: 0 };
                sys::cvt(unsafe { sys::epoll_ctl(self.epfd, sys::EPOLL_CTL_DEL, fd, &mut ev) })?;
            }
        }
        #[cfg(not(target_os = "linux"))]
        let _ = fd;
        Ok(())
    }

    /// Number of registered fds.
    pub fn registered_len(&self) -> usize {
        self.registered.len()
    }

    /// Block until readiness or `timeout`, appending events to `out`.
    pub fn wait(&mut self, out: &mut Vec<Event>, timeout: Option<Duration>) -> io::Result<()> {
        #[cfg(target_os = "linux")]
        {
            let timeout_ms: i32 = match timeout {
                None => -1,
                // Round up so a 100µs deadline does not busy-spin at 0.
                Some(d) => d
                    .as_millis()
                    .min(i32::MAX as u128)
                    .max(u128::from(d.as_nanos() > 0)) as i32,
            };
            let n = loop {
                let r = unsafe {
                    sys::epoll_wait(
                        self.epfd,
                        self.events.as_mut_ptr(),
                        self.events.len() as i32,
                        timeout_ms,
                    )
                };
                match sys::cvt(r) {
                    Ok(n) => break n as usize,
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                    Err(e) => return Err(e),
                }
            };
            for ev in &self.events[..n] {
                let bits = ev.events;
                let closed = bits & (sys::EPOLLERR | sys::EPOLLHUP | sys::EPOLLRDHUP) != 0;
                out.push(Event {
                    token: Token(ev.data),
                    readable: bits & sys::EPOLLIN != 0 || closed,
                    writable: bits & sys::EPOLLOUT != 0,
                    closed,
                });
            }
            if n == self.events.len() {
                // Saturated the event buffer; grow so a large fleet of
                // ready connections is drained in one wait next time.
                self.events.resize(
                    self.events.len() * 2,
                    sys::EpollEvent { events: 0, data: 0 },
                );
            }
            Ok(())
        }
        #[cfg(not(target_os = "linux"))]
        {
            // Degraded level-triggered fallback: sleep briefly, then
            // report everything as possibly ready. Handlers absorb the
            // spurious wakeups via WouldBlock.
            std::thread::sleep(
                timeout
                    .unwrap_or(Duration::from_millis(1))
                    .min(Duration::from_millis(1)),
            );
            for (&token, &(_, interest)) in &self.registered {
                out.push(Event {
                    token,
                    readable: interest.readable,
                    writable: interest.writable,
                    closed: false,
                });
            }
            Ok(())
        }
    }
}

impl Drop for Poller {
    fn drop(&mut self) {
        #[cfg(target_os = "linux")]
        unsafe {
            let _ = sys::close(self.epfd);
        }
    }
}

/// Cross-thread reactor wakeup: one end lives in the reactor's poller,
/// the other is cloned into worker threads; writing a byte makes the
/// blocked `epoll_wait` return.
pub struct Waker {
    tx: std::os::unix::net::UnixStream,
}

/// The reactor-owned read side of a [`Waker`] pair.
pub struct WakeReceiver {
    rx: std::os::unix::net::UnixStream,
}

/// Create a connected waker pair (nonblocking both ends).
pub fn waker_pair() -> io::Result<(Waker, WakeReceiver)> {
    let (tx, rx) = std::os::unix::net::UnixStream::pair()?;
    tx.set_nonblocking(true)?;
    rx.set_nonblocking(true)?;
    Ok((Waker { tx }, WakeReceiver { rx }))
}

impl Waker {
    /// Wake the reactor. Failures are ignored: a full pipe means a
    /// wake is already pending, a closed pipe means the reactor is
    /// gone — both are fine.
    pub fn wake(&self) {
        use std::io::Write;
        let _ = (&self.tx).write(&[1u8]);
    }
}

impl Clone for Waker {
    fn clone(&self) -> Self {
        Waker {
            tx: self.tx.try_clone().expect("clone waker stream"),
        }
    }
}

impl WakeReceiver {
    /// Raw fd to register with the poller.
    pub fn fd(&self) -> RawFd {
        use std::os::unix::io::AsRawFd;
        self.rx.as_raw_fd()
    }

    /// Drain all pending wake bytes (level-triggered poller hygiene).
    pub fn drain(&self) {
        use std::io::Read;
        let mut buf = [0u8; 64];
        while let Ok(n) = (&self.rx).read(&mut buf) {
            if n == 0 {
                break;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::{TcpListener, TcpStream};
    use std::os::unix::io::AsRawFd;

    #[test]
    fn poller_sees_readable_data() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = TcpStream::connect(addr).unwrap();
        let (server, _) = listener.accept().unwrap();
        server.set_nonblocking(true).unwrap();

        let mut poller = Poller::new().unwrap();
        poller
            .register(server.as_raw_fd(), Token(7), Interest::READ)
            .unwrap();

        use std::io::Write;
        (&client).write_all(b"hello").unwrap();

        let mut events = Vec::new();
        // Allow a few timeouts for scheduling slop.
        for _ in 0..50 {
            poller
                .wait(&mut events, Some(Duration::from_millis(20)))
                .unwrap();
            if !events.is_empty() {
                break;
            }
        }
        assert!(events.iter().any(|e| e.token == Token(7) && e.readable));
    }

    #[test]
    fn waker_unblocks_wait() {
        let mut poller = Poller::new().unwrap();
        let (waker, rx) = waker_pair().unwrap();
        poller.register(rx.fd(), Token(0), Interest::READ).unwrap();
        let t = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(30));
            waker.wake();
        });
        let mut events = Vec::new();
        let start = std::time::Instant::now();
        poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        t.join().unwrap();
        assert!(
            start.elapsed() < Duration::from_secs(4),
            "wait did not wake early"
        );
        rx.drain();
    }

    #[test]
    fn interest_reregistration_gates_writable() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = TcpStream::connect(addr).unwrap();
        let (server, _) = listener.accept().unwrap();
        server.set_nonblocking(true).unwrap();
        let fd = server.as_raw_fd();

        let mut poller = Poller::new().unwrap();
        poller.register(fd, Token(1), Interest::READ).unwrap();
        let mut events = Vec::new();
        poller
            .wait(&mut events, Some(Duration::from_millis(10)))
            .unwrap();
        assert!(
            events.iter().all(|e| !e.writable),
            "writable reported without write interest"
        );
        events.clear();
        poller.reregister(fd, Token(1), Interest::BOTH).unwrap();
        for _ in 0..50 {
            poller
                .wait(&mut events, Some(Duration::from_millis(20)))
                .unwrap();
            if events.iter().any(|e| e.writable) {
                break;
            }
        }
        assert!(events.iter().any(|e| e.token == Token(1) && e.writable));
        drop(client);
    }
}
