//! Typed errors for the wire protocol and the serving layer.
//!
//! The hard rule, enforced by the protocol proptests: adversarial
//! bytes — corrupt, truncated, oversized, or simply garbage — surface
//! as [`WireError`]s, **never** as panics. A wire error is fatal for
//! its connection (once framing is lost the stream cannot be
//! re-synchronised), but never for the server.

use std::fmt;

/// Protocol-level decode failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The 4 magic bytes at a frame boundary were wrong — the peer is
    /// not speaking this protocol (or the stream lost sync).
    BadMagic { got: [u8; 4] },
    /// Frame version this build does not understand.
    UnsupportedVersion { got: u8 },
    /// Reserved flag bits were set.
    NonZeroFlags { got: u16 },
    /// Declared payload length exceeds the negotiated maximum
    /// (protects the decoder from attacker-controlled allocations).
    Oversized { len: u32, max: u32 },
    /// CRC-32 over header + payload did not match.
    ChecksumMismatch { expected: u32, got: u32 },
    /// Opcode byte names no known message.
    BadOpcode { got: u8 },
    /// A typed payload ended before its declared contents.
    Truncated { opcode: u8 },
    /// A typed payload had bytes left over after its declared contents.
    TrailingBytes { opcode: u8, extra: usize },
    /// A payload field held an invalid value (tag byte, count, …).
    BadField { opcode: u8, what: &'static str },
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::BadMagic { got } => write!(f, "bad frame magic {got:02x?}"),
            WireError::UnsupportedVersion { got } => write!(f, "unsupported frame version {got}"),
            WireError::NonZeroFlags { got } => write!(f, "reserved flag bits set: {got:#06x}"),
            WireError::Oversized { len, max } => {
                write!(f, "declared payload length {len} exceeds maximum {max}")
            }
            WireError::ChecksumMismatch { expected, got } => {
                write!(
                    f,
                    "frame checksum mismatch: expected {expected:08x}, got {got:08x}"
                )
            }
            WireError::BadOpcode { got } => write!(f, "unknown opcode {got:#04x}"),
            WireError::Truncated { opcode } => {
                write!(f, "payload truncated (opcode {opcode:#04x})")
            }
            WireError::TrailingBytes { opcode, extra } => {
                write!(f, "{extra} trailing payload bytes (opcode {opcode:#04x})")
            }
            WireError::BadField { opcode, what } => {
                write!(f, "invalid {what} field (opcode {opcode:#04x})")
            }
        }
    }
}

impl std::error::Error for WireError {}

/// Error code carried by a `Response::Error` frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u16)]
pub enum ErrorCode {
    /// Request payload decoded but made no semantic sense.
    BadRequest = 1,
    /// A query addressed a node outside the served graph.
    QueryFailed = 2,
    /// A delta submission was rejected (validation or apply failure).
    DeltaFailed = 3,
    /// The server is shutting down.
    ShuttingDown = 4,
    /// The server's pending-delta queue is full; retry after earlier
    /// submissions complete.
    Busy = 5,
    /// The server is a read-only replication follower; submit deltas
    /// to the primary (or wait for this node to be promoted).
    ReadOnly = 6,
    /// `--ack-quorum` mode: the delta applied locally but a majority
    /// of the electorate did not acknowledge the WAL record within
    /// the heartbeat timeout. The write may still survive a failover
    /// (it is on disk here); the client must treat it as unconfirmed.
    AckTimeout = 7,
}

impl ErrorCode {
    /// Decode from the wire (unknown codes are preserved as raw).
    pub fn from_u16(v: u16) -> Option<ErrorCode> {
        match v {
            1 => Some(ErrorCode::BadRequest),
            2 => Some(ErrorCode::QueryFailed),
            3 => Some(ErrorCode::DeltaFailed),
            4 => Some(ErrorCode::ShuttingDown),
            5 => Some(ErrorCode::Busy),
            6 => Some(ErrorCode::ReadOnly),
            7 => Some(ErrorCode::AckTimeout),
            _ => None,
        }
    }
}

/// Client- and server-side failure.
#[derive(Debug)]
pub enum NetError {
    /// Socket-level failure.
    Io(std::io::Error),
    /// The peer closed the connection (EOF or reset) — the clean
    /// "server died" signal the kill-9 e2e asserts on.
    Disconnected,
    /// Stream-level protocol violation.
    Wire(WireError),
    /// The server answered with an error frame.
    Server { code: u16, message: String },
    /// The server answered with a frame we did not ask for.
    UnexpectedResponse { opcode: u8 },
    /// The answer carried a replication term below one this connection
    /// already observed — a deposed or lagging node's view, refused so
    /// a fenced generation can never satisfy a read.
    StaleTerm { got: u64, seen: u64 },
    /// Local configuration problem (bad rate, zero connections, …).
    InvalidConfig(String),
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetError::Io(e) => write!(f, "i/o error: {e}"),
            NetError::Disconnected => write!(f, "peer disconnected"),
            NetError::Wire(e) => write!(f, "wire protocol error: {e}"),
            NetError::Server { code, message } => {
                write!(f, "server error {code}: {message}")
            }
            NetError::UnexpectedResponse { opcode } => {
                write!(f, "unexpected response opcode {opcode:#04x}")
            }
            NetError::StaleTerm { got, seen } => {
                write!(f, "stale replication term {got} (connection saw {seen})")
            }
            NetError::InvalidConfig(msg) => write!(f, "invalid config: {msg}"),
        }
    }
}

impl std::error::Error for NetError {}

impl From<std::io::Error> for NetError {
    fn from(e: std::io::Error) -> Self {
        use std::io::ErrorKind;
        // A peer that vanished (kill -9, RST) is a disconnect, not a
        // generic i/o failure — clients match on this.
        match e.kind() {
            ErrorKind::ConnectionReset
            | ErrorKind::ConnectionAborted
            | ErrorKind::BrokenPipe
            | ErrorKind::UnexpectedEof => NetError::Disconnected,
            _ => NetError::Io(e),
        }
    }
}

impl From<WireError> for NetError {
    fn from(e: WireError) -> Self {
        NetError::Wire(e)
    }
}
