//! `lbc-net` — epoll-driven network serving layer for the cluster
//! query engine, with a framed, checksummed binary wire protocol.
//!
//! The rest of the workspace answers queries in-process; this crate
//! puts the engine on a socket so **one reactor thread serves many
//! slow network clients** — the missing piece between `serve-bench`'s
//! in-process numbers and a process real clients can talk to.
//!
//! * [`wire`] — the protocol: `magic + version + request-id + opcode +
//!   len + crc32` frames carrying batched `SameCluster` / `ClusterOf` /
//!   `ClusterSize` queries, delta submissions, cache stats, and info,
//!   with incremental (partial-read tolerant) decode. Adversarial
//!   bytes are typed [`WireError`]s, never panics — a property the
//!   protocol proptests enforce byte by byte.
//! * [`poll`] — readiness: raw-syscall `epoll` on Linux (no external
//!   crates, matching the workspace's vendored-shim policy) plus a
//!   documented degraded fallback elsewhere, and a pipe-based
//!   [`poll::Waker`] so worker threads can interrupt a blocked wait.
//! * [`server`] — the single-threaded reactor: nonblocking accept,
//!   per-connection read/write buffers, bounded outboxes with
//!   read-pause backpressure (a client that never reads stalls only
//!   itself), query batches answered inline from the lock-free
//!   [`lbc_runtime::ClusterHandle`], and delta re-clustering offloaded
//!   to the [`lbc_runtime::WorkerPool`] via its completion-hook seam.
//! * [`client`] — a small blocking client ([`NetClient`]) used by the
//!   CLI, tests, and anyone who wants to talk to `lbc serve`.
//! * [`bench`] — an **open-loop** network load generator
//!   ([`net_bench`]): arrivals follow a fixed rate schedule and every
//!   latency is measured from the *intended* send time, so queueing
//!   delay under overload lands in the percentiles instead of being
//!   coordinated-omission'd away.

pub mod bench;
pub mod client;
pub mod error;
pub mod poll;
pub mod server;
pub mod wire;

pub use bench::{net_bench, NetBenchConfig, NetBenchReport};
pub use client::NetClient;
pub use error::{ErrorCode, NetError, WireError};
pub use server::{NetServer, ReplGate, ServeContext, ServerConfig, ServerHandle, ServerStats};
pub use wire::{
    encode_frame, DeltaSummary, Frame, FrameDecoder, Member, PeerLag, ReplMsg, ReplStatus, Request,
    Response, Role, ServerInfo, VoteResp,
};
