//! Open-loop network load generator (`lbc net-bench`).
//!
//! A closed-loop generator stops sending while the server is slow, so
//! exactly the moments worth measuring are the ones it under-samples —
//! coordinated omission. This one is **open-loop**: batch arrivals
//! follow a fixed global schedule, `intended_j = t0 + j/rate`, dealt
//! round-robin over `conns` connections, and batches are *encoded into
//! the connection's outbox the moment they are due* whether or not the
//! socket (or the server) is keeping up. Latency for batch `j` is
//! measured from `intended_j` to response receipt, so every microsecond
//! of queueing — in our outbox, in the kernel, in the server — lands in
//! the percentiles.
//!
//! One driver thread multiplexes all connections through the same
//! [`Poller`] the server reactor uses; pipelining depth per connection
//! is bounded only by the schedule, which is the open-loop contract.

use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::os::unix::io::AsRawFd;
use std::time::{Duration, Instant};

use lbc_obs::Histogram;
use lbc_runtime::loadgen::{popular_random_query, NodeSampler, QueryRng};
use lbc_runtime::{Popularity, Query};

use crate::client::NetClient;
use crate::error::NetError;
use crate::poll::{Event, Interest, Poller, Token};
use crate::wire::{FrameDecoder, Request, Response, WriteBuf};

/// Open-loop bench configuration.
#[derive(Debug, Clone)]
pub struct NetBenchConfig {
    /// Concurrent connections (the acceptance floor is 64).
    pub conns: usize,
    /// Global batch arrival rate per second.
    pub rate: f64,
    /// Total batches across all connections.
    pub batches: u64,
    /// Queries per batch.
    pub batch: usize,
    /// Seed for deterministic query streams.
    pub seed: u64,
    /// Node-popularity model for generated queries — `Zipf(s)` skews
    /// traffic onto a hot set the way real membership workloads do
    /// (the `lbc net-bench --zipf S` knob).
    pub popularity: Popularity,
    /// Hard deadline for the whole run (guards CI against a wedged
    /// server; generously above `batches / rate`).
    pub deadline: Duration,
}

impl Default for NetBenchConfig {
    fn default() -> Self {
        NetBenchConfig {
            conns: 64,
            rate: 5_000.0,
            batches: 10_000,
            batch: 32,
            seed: 0,
            popularity: Popularity::Uniform,
            deadline: Duration::from_secs(60),
        }
    }
}

/// Aggregated open-loop results.
#[derive(Debug, Clone)]
pub struct NetBenchReport {
    pub conns: usize,
    /// Batches encoded onto sockets (== configured batches unless the
    /// deadline fired).
    pub sent: u64,
    /// Batches answered.
    pub completed: u64,
    /// Batches answered with a server error frame.
    pub errors: u64,
    pub wall: Duration,
    /// Configured arrival rate.
    pub target_rate: f64,
    /// Completions per second actually observed.
    pub achieved_rate: f64,
    /// Queries per second actually observed.
    pub query_throughput: f64,
    /// Batch latency percentiles **from intended send time**. Estimated
    /// from a log-bucketed [`Histogram`] (relative error ≤ 3.125%); `max`
    /// stays exact, so the coordinated-omission guard rail is unsoftened.
    pub p50: Duration,
    pub p95: Duration,
    pub p99: Duration,
    pub max: Duration,
    /// Order-independent fold of every answer (stable across runs of
    /// the same config against the same clustering).
    pub checksum: u64,
}

impl NetBenchReport {
    /// Human-readable rendering (used by `lbc net-bench`).
    pub fn render(&self) -> String {
        format!(
            "open-loop: {} of {} batches answered over {} connections in {:.3} s ({} errors)\n\
             rate: target = {:.0} batches/s, achieved = {:.0} batches/s ({:.0} queries/s)\n\
             latency from intended send: p50 = {:.1} µs, p95 = {:.1} µs, p99 = {:.1} µs, max = {:.1} µs\n\
             checksum = {:016x}\n",
            self.completed,
            self.sent,
            self.conns,
            self.wall.as_secs_f64(),
            self.errors,
            self.target_rate,
            self.achieved_rate,
            self.query_throughput,
            self.p50.as_secs_f64() * 1e6,
            self.p95.as_secs_f64() * 1e6,
            self.p99.as_secs_f64() * 1e6,
            self.max.as_secs_f64() * 1e6,
            self.checksum,
        )
    }
}

/// The same query mix the in-process loadgen uses (its shared
/// [`QueryRng`] stream family + mix + [`NodeSampler`] popularity),
/// keyed by `(seed, batch index)` so the stream does not depend on
/// which connection carries it.
fn generate_batch(
    seed: u64,
    batch_idx: u64,
    len: usize,
    n: u64,
    sampler: &NodeSampler,
    out: &mut Vec<Query>,
) {
    out.clear();
    let mut rng = QueryRng::new(seed, batch_idx);
    for _ in 0..len {
        out.push(popular_random_query(&mut rng, sampler, n as usize));
    }
}

struct BenchConn {
    stream: TcpStream,
    decoder: FrameDecoder,
    outbox: WriteBuf,
    interest: Interest,
}

/// Run the open-loop bench against a serving `lbc serve` process.
pub fn net_bench(
    addr: impl ToSocketAddrs + Copy,
    cfg: &NetBenchConfig,
) -> Result<NetBenchReport, NetError> {
    if cfg.conns == 0 || cfg.batches == 0 || cfg.batch == 0 {
        return Err(NetError::InvalidConfig(
            "conns, batches, and batch must all be positive".into(),
        ));
    }
    if !cfg.rate.is_finite() || cfg.rate <= 0.0 {
        return Err(NetError::InvalidConfig(format!(
            "rate must be finite and positive, got {}",
            cfg.rate
        )));
    }
    if let Popularity::Zipf(s) = cfg.popularity {
        if !s.is_finite() || s < 0.0 {
            return Err(NetError::InvalidConfig(format!(
                "zipf exponent must be finite and non-negative, got {s}"
            )));
        }
    }

    // Shape probe first: query node ids must be in range.
    let info = NetClient::connect(addr)?.info()?;
    if info.n == 0 {
        return Err(NetError::InvalidConfig(
            "server reports an empty dataset".into(),
        ));
    }

    let mut poller = Poller::new().map_err(NetError::Io)?;
    let mut conns: Vec<BenchConn> = Vec::with_capacity(cfg.conns);
    for i in 0..cfg.conns {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        stream.set_nonblocking(true)?;
        poller
            .register(stream.as_raw_fd(), Token(i as u64), Interest::READ)
            .map_err(NetError::Io)?;
        conns.push(BenchConn {
            stream,
            decoder: FrameDecoder::new(),
            outbox: WriteBuf::new(),
            interest: Interest::READ,
        });
    }

    let interval = Duration::from_secs_f64(1.0 / cfg.rate);
    let sampler = NodeSampler::new(cfg.popularity, info.n as usize);
    let mut pending: HashMap<u64, Instant> = HashMap::with_capacity(1024);
    // Fixed-footprint latency capture: recording is five relaxed atomic
    // RMWs, never an allocation, no matter how many batches complete —
    // the measurement path no longer perturbs the tail it measures.
    let latencies = Histogram::new();
    let mut queries: Vec<Query> = Vec::with_capacity(cfg.batch);
    let mut scratch = vec![0u8; 64 * 1024];
    let mut events: Vec<Event> = Vec::new();

    let mut sent: u64 = 0;
    let mut completed: u64 = 0;
    let mut errors: u64 = 0;
    let mut checksum: u64 = 0;

    let t0 = Instant::now();
    let deadline = t0 + cfg.deadline;

    while completed + errors < sent || sent < cfg.batches {
        let now = Instant::now();
        if now >= deadline {
            break;
        }

        // Encode every batch that is due, on schedule, regardless of
        // drain state — the open-loop contract.
        while sent < cfg.batches {
            let intended = t0 + interval.mul_f64(sent as f64);
            if intended > now {
                break;
            }
            let ci = (sent % cfg.conns as u64) as usize;
            generate_batch(cfg.seed, sent, cfg.batch, info.n, &sampler, &mut queries);
            let req = Request::QueryBatch(queries.clone());
            req.encode(conns[ci].outbox.encode_mut(), sent)?;
            pending.insert(sent, intended);
            sent += 1;
            flush(&mut conns[ci])?;
            reconcile_interest(&mut poller, ci, &mut conns[ci]).map_err(NetError::Io)?;
        }

        // Sleep until the next arrival or the next readiness event.
        let timeout = if sent < cfg.batches {
            let next = t0 + interval.mul_f64(sent as f64);
            next.saturating_duration_since(Instant::now())
                .min(Duration::from_millis(100))
        } else {
            Duration::from_millis(100)
        };
        events.clear();
        poller
            .wait(&mut events, Some(timeout))
            .map_err(NetError::Io)?;

        for &ev in &events {
            let ci = ev.token.0 as usize;
            if ci >= conns.len() {
                continue;
            }
            if ev.writable {
                flush(&mut conns[ci])?;
            }
            if ev.readable {
                read_responses(
                    &mut conns[ci],
                    &mut scratch,
                    &mut pending,
                    &latencies,
                    &mut completed,
                    &mut errors,
                    &mut checksum,
                )?;
            }
            reconcile_interest(&mut poller, ci, &mut conns[ci]).map_err(NetError::Io)?;
        }
    }
    let wall = t0.elapsed();

    let lat = latencies.snapshot();
    if lat.is_empty() {
        return Err(NetError::InvalidConfig(
            "no batches completed before the deadline".into(),
        ));
    }
    let pct = |q: f64| -> Duration { Duration::from_nanos(lat.quantile(q)) };
    Ok(NetBenchReport {
        conns: cfg.conns,
        sent,
        completed,
        errors,
        wall,
        target_rate: cfg.rate,
        achieved_rate: completed as f64 / wall.as_secs_f64().max(1e-12),
        query_throughput: (completed * cfg.batch as u64) as f64 / wall.as_secs_f64().max(1e-12),
        p50: pct(0.50),
        p95: pct(0.95),
        p99: pct(0.99),
        max: Duration::from_nanos(lat.max),
        checksum,
    })
}

fn flush(conn: &mut BenchConn) -> Result<(), NetError> {
    loop {
        if conn.outbox.is_empty() {
            return Ok(());
        }
        match conn.stream.write(conn.outbox.as_slice()) {
            Ok(0) => return Err(NetError::Disconnected),
            Ok(n) => conn.outbox.advance(n),
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return Ok(()),
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e.into()),
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn read_responses(
    conn: &mut BenchConn,
    scratch: &mut [u8],
    pending: &mut HashMap<u64, Instant>,
    latencies: &Histogram,
    completed: &mut u64,
    errors: &mut u64,
    checksum: &mut u64,
) -> Result<(), NetError> {
    loop {
        match conn.stream.read(scratch) {
            Ok(0) => return Err(NetError::Disconnected),
            Ok(n) => {
                conn.decoder.push(&scratch[..n]);
                while let Some(frame) = conn.decoder.next_frame()? {
                    let resp = Response::from_frame(&frame)?;
                    let Some(intended) = pending.remove(&frame.request_id) else {
                        continue; // unsolicited id; ignore
                    };
                    // Latency from the *intended* send instant.
                    latencies.record(intended.elapsed().as_nanos() as u64);
                    match resp {
                        Response::Answers(answers) => {
                            *completed += 1;
                            let mut fold = 0u64;
                            for a in answers {
                                fold = fold.rotate_left(7).wrapping_add(a.checksum_word());
                            }
                            // Completion order varies run to run; an
                            // id-keyed XOR keeps the fold deterministic.
                            *checksum ^= fold.rotate_left((frame.request_id % 63) as u32);
                        }
                        _ => *errors += 1,
                    }
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return Ok(()),
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e.into()),
        }
    }
}

fn reconcile_interest(
    poller: &mut Poller,
    token: usize,
    conn: &mut BenchConn,
) -> std::io::Result<()> {
    let want = Interest {
        readable: true,
        writable: !conn.outbox.is_empty(),
    };
    if want != conn.interest {
        poller.reregister(conn.stream.as_raw_fd(), Token(token as u64), want)?;
        conn.interest = want;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::{NetServer, ServeContext, ServerConfig};
    use lbc_core::LbConfig;
    use lbc_graph::generators;
    use lbc_runtime::{Registry, WorkerPool};
    use std::sync::Arc;

    fn spawn_server() -> crate::server::ServerHandle {
        let registry = Arc::new(Registry::with_capacity(4));
        let (g, _) = generators::ring_of_cliques(4, 16, 0).unwrap();
        registry.insert_graph("ring", g);
        let ctx = ServeContext::new(
            registry,
            Arc::new(WorkerPool::new(2)),
            "ring",
            LbConfig::new(0.25, 60).with_seed(1),
        );
        NetServer::bind("127.0.0.1:0", ctx, ServerConfig::default()).unwrap()
    }

    #[test]
    fn sixty_four_connections_through_one_reactor() {
        // The acceptance shape: ≥ 64 concurrent connections, one
        // reactor thread, open-loop latencies from intended send times.
        let server = spawn_server();
        let cfg = NetBenchConfig {
            conns: 64,
            rate: 2_000.0,
            batches: 1_000,
            batch: 16,
            seed: 9,
            popularity: Popularity::Uniform,
            deadline: Duration::from_secs(30),
        };
        let r = net_bench(server.addr(), &cfg).unwrap();
        assert_eq!(r.sent, 1_000);
        assert_eq!(r.completed, 1_000);
        assert_eq!(r.errors, 0);
        assert!(r.p50 <= r.p99 && r.p99 <= r.max);
        let text = r.render();
        assert!(text.contains("64 connections"), "{text}");
        assert!(text.contains("p99"), "{text}");
        server.shutdown();
    }

    #[test]
    fn checksum_is_deterministic_across_runs() {
        let server = spawn_server();
        let cfg = NetBenchConfig {
            conns: 8,
            rate: 5_000.0,
            batches: 400,
            batch: 8,
            seed: 3,
            popularity: Popularity::Uniform,
            deadline: Duration::from_secs(30),
        };
        let a = net_bench(server.addr(), &cfg).unwrap();
        let b = net_bench(server.addr(), &cfg).unwrap();
        assert_eq!(a.checksum, b.checksum);
        let c = net_bench(server.addr(), &NetBenchConfig { seed: 4, ..cfg }).unwrap();
        assert_ne!(a.checksum, c.checksum);
        server.shutdown();
    }

    #[test]
    fn zipf_popularity_is_deterministic_and_distinct_from_uniform() {
        let server = spawn_server();
        let cfg = NetBenchConfig {
            conns: 4,
            rate: 5_000.0,
            batches: 200,
            batch: 8,
            seed: 3,
            popularity: Popularity::Zipf(1.1),
            deadline: Duration::from_secs(30),
        };
        let a = net_bench(server.addr(), &cfg).unwrap();
        let b = net_bench(server.addr(), &cfg).unwrap();
        assert_eq!(a.checksum, b.checksum, "zipf stream must be deterministic");
        let uniform = net_bench(
            server.addr(),
            &NetBenchConfig {
                popularity: Popularity::Uniform,
                ..cfg.clone()
            },
        )
        .unwrap();
        assert_ne!(
            a.checksum, uniform.checksum,
            "skewed node draws must change the query stream"
        );
        // Bad exponents are typed config errors.
        for s in [-1.0, f64::NAN, f64::INFINITY] {
            assert!(matches!(
                net_bench(
                    server.addr(),
                    &NetBenchConfig {
                        popularity: Popularity::Zipf(s),
                        ..cfg.clone()
                    }
                ),
                Err(NetError::InvalidConfig(_))
            ));
        }
        server.shutdown();
    }

    /// Parity pin for the sorted-vector → histogram swap: on a
    /// latency-shaped sample the histogram's p50/p95/p99 track the old
    /// `sort + round((n-1)q)` rule within the documented bucket error
    /// (1/32), and max is bit-exact.
    #[test]
    fn histogram_percentiles_match_sorted_vector_path() {
        let h = Histogram::new();
        let mut sorted: Vec<Duration> = Vec::new();
        let mut x = 0x9E3779B97F4A7C15u64;
        for _ in 0..50_000 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            // Microseconds to tens of ms, like open-loop batch latencies.
            let ns = (x >> 34) % 40_000_000 + 2_000;
            h.record(ns);
            sorted.push(Duration::from_nanos(ns));
        }
        sorted.sort_unstable();
        let exact = |q: f64| -> Duration {
            let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
            sorted[idx]
        };
        let snap = h.snapshot();
        for q in [0.50, 0.95, 0.99] {
            let want = exact(q).as_nanos() as f64;
            let got = snap.quantile(q) as f64;
            let err = (got - want).abs() / want;
            assert!(err <= 1.0 / 32.0, "q={q}: got {got} want {want} err {err}");
        }
        assert_eq!(
            Duration::from_nanos(snap.max),
            *sorted.last().unwrap(),
            "max must stay exact (the CO guard rail)"
        );
    }

    #[test]
    fn bad_configs_are_errors() {
        let server = spawn_server();
        for cfg in [
            NetBenchConfig {
                conns: 0,
                ..Default::default()
            },
            NetBenchConfig {
                batches: 0,
                ..Default::default()
            },
            NetBenchConfig {
                batch: 0,
                ..Default::default()
            },
            NetBenchConfig {
                rate: 0.0,
                ..Default::default()
            },
            NetBenchConfig {
                rate: f64::NAN,
                ..Default::default()
            },
        ] {
            assert!(matches!(
                net_bench(server.addr(), &cfg),
                Err(NetError::InvalidConfig(_))
            ));
        }
        server.shutdown();
    }
}
